#include "core/interest_manager.h"

#include <gtest/gtest.h>

namespace bsub::core {
namespace {

constexpr bloom::BloomParams kPaper{256, 4};
constexpr double kC = 50.0;

InterestManager make_manager(double df = 1.0, std::size_t nodes = 4) {
  return InterestManager(nodes, kPaper, kC, df);
}

TEST(InterestManager, RelayStartsEmpty) {
  auto im = make_manager();
  EXPECT_TRUE(im.relay(0, 0).empty());
}

TEST(InterestManager, MakeGenuineContainsKeyAtFullStrength) {
  auto im = make_manager();
  bloom::Tcbf g = im.make_genuine("NewMoon");
  EXPECT_TRUE(g.contains("NewMoon"));
  EXPECT_EQ(g.min_counter("NewMoon"), kC);
}

TEST(InterestManager, MakeReportIsPlainBloomFilter) {
  auto im = make_manager();
  bloom::BloomFilter report = im.make_report("NewMoon");
  EXPECT_TRUE(report.contains("NewMoon"));
  EXPECT_LE(report.popcount(), 4u);
}

TEST(InterestManager, AbsorbGenuinePutsKeyInRelay) {
  auto im = make_manager();
  im.absorb_genuine(0, im.make_genuine("key"), "key", util::kMinute);
  EXPECT_TRUE(im.relay(0, util::kMinute).contains("key"));
  EXPECT_TRUE(im.genuinely_contains(0, "key", util::kMinute));
}

TEST(InterestManager, ReinforcementAddsCounters) {
  auto im = make_manager(/*df=*/0.0);
  im.absorb_genuine(0, im.make_genuine("key"), "key", 0);
  im.absorb_genuine(0, im.make_genuine("key"), "key", 0);
  EXPECT_EQ(im.relay(0, 0).min_counter("key"), 2 * kC);
}

TEST(InterestManager, LazyDecayAppliedOnAccess) {
  auto im = make_manager(/*df=*/1.0);  // 1 unit per minute
  im.absorb_genuine(0, im.make_genuine("key"), "key", 0);
  // 10 minutes later the counters must have dropped by 10.
  EXPECT_NEAR(*im.relay(0, util::from_minutes(10)).min_counter("key"),
              kC - 10.0, 1e-9);
}

TEST(InterestManager, DecayRemovesKeyAfterCOverDfMinutes) {
  auto im = make_manager(/*df=*/1.0);
  im.absorb_genuine(0, im.make_genuine("key"), "key", 0);
  EXPECT_FALSE(im.relay(0, util::from_minutes(51)).contains("key"));
  EXPECT_FALSE(im.genuinely_contains(0, "key", util::from_minutes(51)));
}

TEST(InterestManager, DecayClockDoesNotRunBackwards) {
  auto im = make_manager(/*df=*/1.0);
  im.absorb_genuine(0, im.make_genuine("key"), "key", util::from_minutes(10));
  double at_10 = *im.relay(0, util::from_minutes(10)).min_counter("key");
  // Accessing with an older timestamp must not decay or crash.
  double at_5 = *im.relay(0, util::from_minutes(5)).min_counter("key");
  EXPECT_DOUBLE_EQ(at_10, at_5);
}

TEST(InterestManager, ZeroDfNeverDecays) {
  auto im = make_manager(/*df=*/0.0);
  im.absorb_genuine(0, im.make_genuine("key"), "key", 0);
  EXPECT_EQ(im.relay(0, 100 * util::kDay).min_counter("key"), kC);
}

TEST(InterestManager, MMergePropagatesAcrossBrokers) {
  auto im = make_manager(/*df=*/0.0);
  im.absorb_genuine(0, im.make_genuine("key"), "key", 0);
  bloom::Tcbf snap = im.relay(0, 0);
  im.merge_relay_from(1, snap, im.shadow_snapshot(0),
                      BrokerMergeMode::kMMerge, 0);
  EXPECT_TRUE(im.relay(1, 0).contains("key"));
  EXPECT_TRUE(im.genuinely_contains(1, "key", 0));
}

TEST(InterestManager, MMergeIsIdempotentAcrossRepeatedMeetings) {
  // Fig. 6's fix: repeated M-merges of the same state do not inflate.
  auto im = make_manager(/*df=*/0.0);
  im.absorb_genuine(0, im.make_genuine("key"), "key", 0);
  bloom::Tcbf snap = im.relay(0, 0);
  auto shadow = im.shadow_snapshot(0);
  im.merge_relay_from(1, snap, shadow, BrokerMergeMode::kMMerge, 0);
  double once = *im.relay(1, 0).min_counter("key");
  im.merge_relay_from(1, snap, shadow, BrokerMergeMode::kMMerge, 0);
  EXPECT_DOUBLE_EQ(*im.relay(1, 0).min_counter("key"), once);
}

TEST(InterestManager, AMergeModeInflatesCounters) {
  // The ablation setting reproduces the bogus-counter loop.
  auto im = make_manager(/*df=*/0.0);
  im.absorb_genuine(0, im.make_genuine("key"), "key", 0);
  bloom::Tcbf snap = im.relay(0, 0);
  auto shadow = im.shadow_snapshot(0);
  im.merge_relay_from(1, snap, shadow, BrokerMergeMode::kAMerge, 0);
  double once = *im.relay(1, 0).min_counter("key");
  im.merge_relay_from(1, snap, shadow, BrokerMergeMode::kAMerge, 0);
  EXPECT_GT(*im.relay(1, 0).min_counter("key"), once);
}

TEST(InterestManager, ShadowTracksGroundTruthUnderDecay) {
  auto im = make_manager(/*df=*/1.0);
  im.absorb_genuine(0, im.make_genuine("real"), "real", 0);
  // "fake" was never absorbed: even if the TCBF happened to match it, the
  // shadow must say no.
  EXPECT_FALSE(im.genuinely_contains(0, "fake", util::kMinute));
  EXPECT_TRUE(im.genuinely_contains(0, "real", util::kMinute));
}

TEST(InterestManager, ClearRelayResetsFilterAndShadow) {
  auto im = make_manager();
  im.absorb_genuine(0, im.make_genuine("key"), "key", 0);
  im.clear_relay(0, util::kMinute);
  EXPECT_TRUE(im.relay(0, util::kMinute).empty());
  EXPECT_FALSE(im.genuinely_contains(0, "key", util::kMinute));
}

TEST(InterestManager, PerNodeDfOverride) {
  auto im = make_manager(/*df=*/0.0);
  im.absorb_genuine(0, im.make_genuine("key"), "key", 0);
  im.absorb_genuine(1, im.make_genuine("key"), "key", 0);
  im.set_node_df(1, 5.0);
  EXPECT_DOUBLE_EQ(im.node_df(0), 0.0);
  EXPECT_DOUBLE_EQ(im.node_df(1), 5.0);
  // Node 0 (global DF 0) keeps the key; node 1 (5/min) loses it.
  EXPECT_TRUE(im.relay(0, util::from_minutes(20)).contains("key"));
  EXPECT_FALSE(im.relay(1, util::from_minutes(20)).contains("key"));
}

TEST(InterestManager, ClearingDfOverrideRestoresGlobal) {
  auto im = make_manager(/*df=*/2.0);
  im.set_node_df(0, 7.0);
  EXPECT_DOUBLE_EQ(im.node_df(0), 7.0);
  im.set_node_df(0, -1.0);
  EXPECT_DOUBLE_EQ(im.node_df(0), 2.0);
}

TEST(InterestManager, DfOverrideSurvivesClearRelay) {
  // Adaptive DF is a property of the node, not of one relay incarnation:
  // demotion resets the filter but must keep the tuned decay factor.
  auto im = make_manager(/*df=*/0.0);
  im.set_node_df(0, 5.0);
  im.absorb_genuine(0, im.make_genuine("key"), "key", 0);
  im.clear_relay(0, 0);
  EXPECT_DOUBLE_EQ(im.node_df(0), 5.0);
  // The override keeps governing the next incarnation's decay.
  im.absorb_genuine(0, im.make_genuine("key"), "key", 0);
  EXPECT_FALSE(im.relay(0, util::from_minutes(20)).contains("key"));
}

TEST(InterestManager, SetNodeDfDoesNotMaterializeRelay) {
  auto im = make_manager();
  im.set_node_df(0, 3.0);
  EXPECT_DOUBLE_EQ(im.node_df(0), 3.0);
  EXPECT_FALSE(im.relay_materialized(0));
  EXPECT_EQ(im.materialized_relays(), 0u);
}

TEST(InterestManager, RelayStateIsLazyUntilFirstTouch) {
  auto im = make_manager();
  // Read-only paths see shared empty state without materializing.
  EXPECT_TRUE(im.relay_snapshot(2).empty());
  EXPECT_FALSE(im.genuinely_contains(2, "key", util::kMinute));
  EXPECT_TRUE(im.shadow_snapshot(2).empty());
  EXPECT_EQ(im.materialized_relays(), 0u);
  im.absorb_genuine(2, im.make_genuine("key"), "key", util::kMinute);
  EXPECT_TRUE(im.relay_materialized(2));
  EXPECT_FALSE(im.relay_materialized(0));
  EXPECT_EQ(im.materialized_relays(), 1u);
}

TEST(InterestManager, ClearRelayReturnsStateToPool) {
  auto im = make_manager();
  im.absorb_genuine(1, im.make_genuine("key"), "key", 0);
  ASSERT_EQ(im.materialized_relays(), 1u);
  EXPECT_EQ(im.pooled_relays(), 0u);
  im.clear_relay(1, 0);
  EXPECT_FALSE(im.relay_materialized(1));
  EXPECT_EQ(im.materialized_relays(), 0u);
  EXPECT_EQ(im.pooled_relays(), 1u);
}

TEST(InterestManager, RePromotionReusesPooledState) {
  // Demote node 1, then promote node 3: the new broker's state must come
  // off the free list (recycled), not from a fresh allocation.
  auto im = make_manager();
  im.absorb_genuine(1, im.make_genuine("old"), "old", 0);
  im.clear_relay(1, 0);
  ASSERT_EQ(im.pooled_relays(), 1u);
  ASSERT_EQ(im.relays_recycled(), 0u);

  im.absorb_genuine(3, im.make_genuine("new"), "new", util::kMinute);
  EXPECT_EQ(im.relays_recycled(), 1u);
  EXPECT_EQ(im.pooled_relays(), 0u);
  EXPECT_EQ(im.materialized_relays(), 1u);
  // The recycled state carries nothing over from its previous owner.
  EXPECT_FALSE(im.genuinely_contains(3, "old", util::kMinute));
  EXPECT_TRUE(im.genuinely_contains(3, "new", util::kMinute));
  EXPECT_FALSE(im.relay(3, util::kMinute).contains("old"));
}

TEST(InterestManager, RecycledStateDecaysFromReacquisitionTime) {
  // A recycled relay's decay clock starts at its new first touch — exactly
  // like an eager empty filter, whose decay up to that point is a no-op.
  auto im = make_manager(/*df=*/1.0);
  im.absorb_genuine(0, im.make_genuine("a"), "a", 0);
  im.clear_relay(0, util::from_minutes(5));
  // Re-promote the same node much later; counters must start at full C.
  const util::Time later = util::from_minutes(500);
  im.absorb_genuine(0, im.make_genuine("b"), "b", later);
  EXPECT_EQ(im.relay(0, later).min_counter("b"), kC);
  // And decay only from `later` on.
  EXPECT_NEAR(*im.relay(0, later + util::from_minutes(10)).min_counter("b"),
              kC - 10.0, 1e-9);
}

TEST(InterestManager, EagerModeMatchesPooledObservables) {
  InterestManager lazy(4, kPaper, kC, 1.0, /*eager_state=*/false);
  InterestManager eager(4, kPaper, kC, 1.0, /*eager_state=*/true);
  for (InterestManager* im : {&lazy, &eager}) {
    im->set_node_df(1, 2.0);
    im->absorb_genuine(1, im->make_genuine("key"), "key", 0);
    im->clear_relay(1, util::kMinute);
    im->absorb_genuine(1, im->make_genuine("key"), "key", util::kMinute);
  }
  EXPECT_DOUBLE_EQ(*lazy.relay(1, util::from_minutes(3)).min_counter("key"),
                   *eager.relay(1, util::from_minutes(3)).min_counter("key"));
  EXPECT_EQ(lazy.genuinely_contains(1, "key", util::from_minutes(3)),
            eager.genuinely_contains(1, "key", util::from_minutes(3)));
}

TEST(InterestManager, RelaySnapshotDoesNotAdvanceClock) {
  auto im = make_manager(/*df=*/1.0);
  im.absorb_genuine(0, im.make_genuine("key"), "key", 0);
  const bloom::Tcbf& snap = im.relay_snapshot(0);
  EXPECT_EQ(snap.min_counter("key"), kC);
}

}  // namespace
}  // namespace bsub::core
