// B-SUB end-to-end with multi-key interests (section V-A extension).
#include <gtest/gtest.h>

#include "core/bsub_protocol.h"
#include "sim/simulator.h"
#include "testing/scenario.h"
#include "trace/synthetic.h"

namespace bsub::core {
namespace {

using bsub::testing::contact;
using bsub::testing::make_message;

workload::KeySet three_keys() {
  return workload::KeySet({{"alpha", 0.4}, {"beta", 0.35}, {"gamma", 0.25}});
}

BsubConfig pinned() {
  BsubConfig cfg;
  cfg.broker_lower = 0;
  cfg.broker_upper = 1000000;
  cfg.df_per_minute = 0.0;
  return cfg;
}

TEST(BsubMultiKey, ConsumerWithTwoInterestsReceivesBoth) {
  auto keys = three_keys();
  trace::ContactTrace t(2, {contact(0, 1, 0)});
  // Node 1 subscribes to alpha AND gamma; node 0 produces one of each key.
  workload::Workload w(keys, 2, std::vector<std::vector<workload::KeyId>>{
                                    {1}, {0, 2}},
                       {make_message(0, 0, 0), make_message(0, 1, 0),
                        make_message(0, 2, 0)});
  metrics::Collector collector;
  BsubProtocol proto(pinned());
  proto.on_start(t, w, collector);
  for (const auto& m : w.messages()) proto.on_message_created(m, m.created);
  sim::Link link(util::kHour, 1e9);
  proto.on_contact(0, 1, util::from_minutes(5), util::kHour, link);
  auto r = collector.results();
  EXPECT_EQ(r.interested_deliveries, 2u);  // alpha + gamma, not beta
  EXPECT_EQ(r.false_deliveries, 0u);
}

TEST(BsubMultiKey, GenuineFilterCarriesAllInterestsToBroker) {
  auto keys = three_keys();
  trace::ContactTrace t(3, {contact(0, 1, 0)});
  workload::Workload w(keys, 3, std::vector<std::vector<workload::KeyId>>{
                                    {0, 1}, {2}, {2}},
                       {});
  metrics::Collector collector;
  BsubProtocol proto(pinned());
  proto.on_start(t, w, collector);
  proto.election_mutable().set_broker(1, true);
  sim::Link link(util::kHour, 1e9);
  proto.on_contact(0, 1, util::from_minutes(1), util::kHour, link);
  auto& relay = proto.interests_mutable().relay(1, util::from_minutes(1));
  EXPECT_TRUE(relay.contains("alpha"));
  EXPECT_TRUE(relay.contains("beta"));
}

TEST(BsubMultiKey, EndToEndOnSyntheticTraceWithThreeInterests) {
  trace::SyntheticTraceConfig tcfg;
  tcfg.node_count = 25;
  tcfg.contact_count = 5000;
  tcfg.duration = util::kDay;
  tcfg.seed = 44;
  auto t = trace::generate_trace(tcfg);
  auto keys = workload::twitter_trend_keys();
  workload::WorkloadConfig wcfg;
  wcfg.ttl = 8 * util::kHour;
  wcfg.interests_per_node = 3;
  workload::Workload w(t, keys, wcfg);
  BsubProtocol proto;
  auto r = sim::Simulator().run(t, w, proto);
  EXPECT_GT(r.delivery_ratio, 0.05);
  EXPECT_GT(r.interested_deliveries, 0u);
}

TEST(BsubMultiKey, MoreInterestsNeverReduceAbsoluteDeliveries) {
  trace::SyntheticTraceConfig tcfg;
  tcfg.node_count = 25;
  tcfg.contact_count = 5000;
  tcfg.duration = util::kDay;
  tcfg.seed = 45;
  auto t = trace::generate_trace(tcfg);
  auto keys = workload::twitter_trend_keys();
  auto run_with = [&](std::uint32_t per_node) {
    workload::WorkloadConfig wcfg;
    wcfg.ttl = 8 * util::kHour;
    wcfg.interests_per_node = per_node;
    workload::Workload w(t, keys, wcfg);
    BsubProtocol proto;
    return sim::Simulator().run(t, w, proto).interested_deliveries;
  };
  EXPECT_GT(run_with(4), run_with(1));
}

}  // namespace
}  // namespace bsub::core
