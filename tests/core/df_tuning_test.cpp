#include "core/df_tuning.h"

#include <gtest/gtest.h>

#include "trace/synthetic.h"

namespace bsub::core {
namespace {

constexpr bloom::BloomParams kPaper{256, 4};

trace::ContactTrace dense_trace(std::uint64_t seed = 13) {
  trace::SyntheticTraceConfig cfg;
  cfg.node_count = 30;
  cfg.contact_count = 10000;
  cfg.duration = util::kDay;
  cfg.seed = seed;
  return trace::generate_trace(cfg);
}

TEST(EstimateKeysPerWindow, EmptyTraceIsZero) {
  trace::ContactTrace empty(5, {});
  EXPECT_DOUBLE_EQ(estimate_keys_per_window(empty, util::kHour), 0.0);
}

TEST(EstimateKeysPerWindow, BoundedByNodeCountMinusOne) {
  auto t = dense_trace();
  double n = estimate_keys_per_window(t, 6 * util::kHour);
  EXPECT_GT(n, 0.0);
  EXPECT_LE(n, 29.0);
}

TEST(EstimateKeysPerWindow, GrowsWithWindow) {
  auto t = dense_trace();
  double small = estimate_keys_per_window(t, util::kHour);
  double large = estimate_keys_per_window(t, 12 * util::kHour);
  EXPECT_LT(small, large);
}

TEST(EstimateKeysPerWindow, WindowLargerThanTraceEqualsFullDegrees) {
  auto t = dense_trace();
  double full = estimate_keys_per_window(t, 10 * util::kDay);
  auto deg = t.degrees();
  double mean = 0.0;
  for (auto d : deg) mean += static_cast<double>(d);
  mean /= static_cast<double>(deg.size());
  EXPECT_NEAR(full, mean, 1e-9);
}

TEST(ComputeDfFromKeys, NoAccidentalHitsGivesBaseRate) {
  // With zero other keys, E[min] = 0 and DF = C/W + delta.
  DfEstimate est =
      compute_df_from_keys(0.0, 10 * util::kHour, kPaper, 50.0, 0.0);
  EXPECT_DOUBLE_EQ(est.expected_min_increment, 0.0);
  EXPECT_NEAR(est.df_per_minute, 50.0 / 600.0, 1e-12);
}

TEST(ComputeDfFromKeys, DeltaIsAdded) {
  DfEstimate a = compute_df_from_keys(0.0, util::kHour, kPaper, 50.0, 0.0);
  DfEstimate b = compute_df_from_keys(0.0, util::kHour, kPaper, 50.0, 0.05);
  EXPECT_NEAR(b.df_per_minute - a.df_per_minute, 0.05, 1e-12);
}

TEST(ComputeDfFromKeys, MoreKeysRaiseDf) {
  DfEstimate sparse =
      compute_df_from_keys(10.0, 10 * util::kHour, kPaper, 50.0);
  DfEstimate dense =
      compute_df_from_keys(200.0, 10 * util::kHour, kPaper, 50.0);
  EXPECT_GT(dense.df_per_minute, sparse.df_per_minute);
  EXPECT_GT(dense.expected_min_increment, sparse.expected_min_increment);
}

TEST(ComputeDfFromKeys, LongerWindowLowersDf) {
  DfEstimate short_w = compute_df_from_keys(50.0, util::kHour, kPaper, 50.0);
  DfEstimate long_w =
      compute_df_from_keys(50.0, 20 * util::kHour, kPaper, 50.0);
  EXPECT_GT(short_w.df_per_minute, long_w.df_per_minute);
}

TEST(ComputeDf, PaperScaleSanity) {
  // The paper reports DF ~ 0.138/min for W = 10 h on the Haggle trace with
  // C = 50. Our synthetic Haggle-like trace should land in the same decade.
  auto t = trace::generate_trace(trace::haggle_infocom06_config(5));
  DfEstimate est = compute_df(t, 10 * util::kHour, kPaper, 50.0);
  EXPECT_GT(est.df_per_minute, 0.05);
  EXPECT_LT(est.df_per_minute, 0.5);
}

TEST(ComputeDf, DrainsWithinRoughlyWindow) {
  // The defining property of Eq. 5: an interest inserted once (counter C,
  // possibly refreshed E[min] times) drains in about W.
  auto t = dense_trace();
  const util::Time window = 5 * util::kHour;
  DfEstimate est = compute_df(t, window, kPaper, 50.0, 0.0);
  const double minutes_to_drain =
      50.0 * (1.0 + est.expected_min_increment) / est.df_per_minute;
  EXPECT_NEAR(minutes_to_drain, util::to_minutes(window), 1e-6);
}

TEST(OnlineDfController, RaisesDfWhenFprTooHigh) {
  OnlineDfController ctl(0.1, 0.02);
  double df = ctl.observe(0.05);
  EXPECT_GT(df, 0.1);
}

TEST(OnlineDfController, LowersDfWhenFprWellBelowTarget) {
  OnlineDfController ctl(0.1, 0.02);
  double df = ctl.observe(0.001);
  EXPECT_LT(df, 0.1);
}

TEST(OnlineDfController, HoldsInDeadband) {
  OnlineDfController ctl(0.1, 0.02);
  double df = ctl.observe(0.015);  // between target/2 and target
  EXPECT_DOUBLE_EQ(df, 0.1);
}

TEST(OnlineDfController, ConvergesTowardTargetInSimulatedLoop) {
  // Toy plant: measured FPR is inversely proportional to DF.
  OnlineDfController ctl(0.01, 0.02);
  double measured = 0.0;
  for (int i = 0; i < 50; ++i) {
    measured = 0.002 / ctl.df();
    ctl.observe(measured);
  }
  EXPECT_LT(measured, 0.05);
  EXPECT_GT(measured, 0.005);
}

}  // namespace
}  // namespace bsub::core
