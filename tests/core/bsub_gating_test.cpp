// Tests for the reverse-path delivery gating (section V-C) and the
// carried_ever loop prevention in broker-to-broker forwarding.
#include <gtest/gtest.h>

#include "core/bsub_protocol.h"
#include "sim/simulator.h"
#include "testing/scenario.h"

namespace bsub::core {
namespace {

using bsub::testing::contact;
using bsub::testing::make_message;
using bsub::testing::two_keys;
using util::from_minutes;

struct Harness {
  workload::KeySet keys = two_keys();
  trace::ContactTrace trace;
  workload::Workload workload;
  metrics::Collector collector;
  BsubProtocol proto;

  Harness(std::size_t nodes, std::vector<workload::KeyId> interests,
          std::vector<workload::Message> messages, BsubConfig cfg)
      : trace(nodes, {contact(0, 1, 0)}),
        workload(keys, nodes, std::move(interests), std::move(messages)),
        proto(cfg) {
    proto.on_start(trace, workload, collector);
    for (const auto& m : workload.messages()) {
      proto.on_message_created(m, m.created);
    }
  }

  void meet(trace::NodeId a, trace::NodeId b, double minute) {
    sim::Link link(util::kHour, 1e9);
    proto.on_contact(a, b, from_minutes(minute), util::kHour, link);
  }
};

BsubConfig pinned(double df, bool gating) {
  BsubConfig cfg;
  cfg.broker_lower = 0;
  cfg.broker_upper = 1000000;
  cfg.df_per_minute = df;
  cfg.relay_gated_delivery = gating;
  return cfg;
}

TEST(RelayGating, StaleRouteMutesCarriedCopy) {
  // Broker 1 picks up a message while the route is fresh, but by the time
  // it meets the consumer the interest has decayed out of its relay: the
  // copy must not be offered.
  Harness h(3, {1, 1, 0}, {make_message(0, 0, 0)},
            pinned(/*df=*/1.0, /*gating=*/true));
  h.proto.election_mutable().set_broker(1, true);
  h.meet(2, 1, 1.0);   // consumer primes broker (counter 50, ~50 min life)
  h.meet(0, 1, 10.0);  // pickup while alive
  ASSERT_EQ(h.collector.results().forwardings, 1u);
  h.meet(1, 2, 80.0);  // relay decayed at t=51: gated, no delivery
  EXPECT_EQ(h.collector.results().interested_deliveries, 0u);
}

TEST(RelayGating, FreshRouteDelivers) {
  Harness h(3, {1, 1, 0}, {make_message(0, 0, 0)},
            pinned(/*df=*/1.0, /*gating=*/true));
  h.proto.election_mutable().set_broker(1, true);
  h.meet(2, 1, 1.0);
  h.meet(0, 1, 10.0);
  h.meet(1, 2, 30.0);  // relay still holds the key (counter ~21)
  EXPECT_EQ(h.collector.results().interested_deliveries, 1u);
}

TEST(RelayGating, DisablingGatingRestoresDelivery) {
  Harness h(3, {1, 1, 0}, {make_message(0, 0, 0)},
            pinned(/*df=*/1.0, /*gating=*/false));
  h.proto.election_mutable().set_broker(1, true);
  h.meet(2, 1, 1.0);
  h.meet(0, 1, 10.0);
  h.meet(1, 2, 80.0);  // stale route, but gating is off
  EXPECT_EQ(h.collector.results().interested_deliveries, 1u);
}

TEST(RelayGating, ReinforcementReopensTheRoute) {
  Harness h(3, {1, 1, 0}, {make_message(0, 0, 0)},
            pinned(/*df=*/1.0, /*gating=*/true));
  h.proto.election_mutable().set_broker(1, true);
  h.meet(2, 1, 1.0);
  h.meet(0, 1, 10.0);
  h.meet(2, 1, 60.0);  // consumer re-primes: route restored...
  h.meet(1, 2, 80.0);  // ...and the stored copy is offered again
  EXPECT_EQ(h.collector.results().interested_deliveries, 1u);
}

TEST(RelayGating, DemotedBrokerServesLeftoversUngated) {
  Harness h(3, {1, 1, 0}, {make_message(0, 0, 0)},
            pinned(/*df=*/1.0, /*gating=*/true));
  h.proto.election_mutable().set_broker(1, true);
  h.meet(2, 1, 1.0);
  h.meet(0, 1, 10.0);
  h.proto.election_mutable().set_broker(1, false);  // demotion
  h.meet(1, 2, 80.0);  // ex-broker, relay authority gone: delivers ungated
  EXPECT_EQ(h.collector.results().interested_deliveries, 1u);
}

TEST(LoopPrevention, CopyNeverRevisitsABroker) {
  // Brokers 1 and 2 with alternating reinforcement could ping-pong a copy
  // forever; carried_ever must hold the walk to one visit each.
  BsubConfig cfg = pinned(1.0, false);
  Harness h(4, {1, 1, 1, 0}, {make_message(0, 0, 0)}, cfg);
  h.proto.election_mutable().set_broker(1, true);
  h.proto.election_mutable().set_broker(2, true);
  h.meet(3, 1, 1.0);   // prime broker 1
  h.meet(0, 1, 2.0);   // pickup at broker 1
  ASSERT_EQ(h.proto.traffic().pickups, 1u);
  h.meet(3, 2, 10.0);  // broker 2 now fresher
  h.meet(1, 2, 11.0);  // copy moves 1 -> 2
  EXPECT_EQ(h.proto.traffic().broker_transfers, 1u);
  h.meet(3, 1, 20.0);  // broker 1 fresher again
  h.meet(1, 2, 21.0);  // must NOT move back: 1 already carried it
  h.meet(2, 1, 30.0);
  EXPECT_EQ(h.proto.traffic().broker_transfers, 1u);
}

TEST(LoopPrevention, BrokerDoesNotRePickUpAfterForwardingAway) {
  BsubConfig cfg = pinned(0.0, false);
  cfg.copy_limit = 5;
  Harness h(4, {1, 1, 1, 0}, {make_message(0, 0, 0)}, cfg);
  h.proto.election_mutable().set_broker(1, true);
  h.proto.election_mutable().set_broker(2, true);
  h.meet(3, 1, 1.0);
  h.meet(3, 2, 2.0);
  h.meet(3, 2, 3.0);   // broker 2 reinforced twice: stronger
  h.meet(0, 1, 5.0);   // pickup #1 at broker 1
  h.meet(1, 2, 6.0);   // moves to broker 2
  h.meet(0, 1, 7.0);   // producer meets broker 1 again: no second pickup
  EXPECT_EQ(h.proto.traffic().pickups, 1u);
}

}  // namespace
}  // namespace bsub::core
