#include "core/broker_allocation.h"

#include <gtest/gtest.h>

#include "trace/synthetic.h"

namespace bsub::core {
namespace {

using util::kHour;
using util::kMinute;

TEST(BrokerElection, StartsWithNoBrokers) {
  BrokerElection e(10, {});
  EXPECT_EQ(e.broker_count(), 0u);
  EXPECT_DOUBLE_EQ(e.broker_fraction(), 0.0);
  for (trace::NodeId n = 0; n < 10; ++n) EXPECT_FALSE(e.is_broker(n));
}

TEST(BrokerElection, SetBrokerDirectly) {
  BrokerElection e(5, {});
  e.set_broker(2, true);
  EXPECT_TRUE(e.is_broker(2));
  EXPECT_EQ(e.broker_count(), 1u);
  EXPECT_DOUBLE_EQ(e.broker_fraction(), 0.2);
}

TEST(BrokerElection, UserBelowLowerBoundPromotesPeer) {
  // A user that has met fewer than B_l brokers designates its peer.
  BrokerElection e(3, {3, 5, 5 * kHour});
  e.on_contact(0, 1, kMinute);
  // Node 0 saw 0 brokers (< 3): promotes 1. Node 1 likewise promotes 0?
  // Node 1's rule runs after 0's flip; the contact already recorded 0 as a
  // non-broker meeting, but the promotion rule only needs the peer's current
  // role, so 1 promotes 0 as well.
  EXPECT_TRUE(e.is_broker(1));
  EXPECT_GE(e.promotions(), 1u);
}

TEST(BrokerElection, BrokersDoNotRunElectionRules) {
  BrokerElection e(3, {3, 5, 5 * kHour});
  e.set_broker(0, true);
  e.on_contact(0, 1, kMinute);
  // Node 0 is a broker: it must not promote node 1. Node 1 is a user that
  // has now met 1 broker (< 3) and will promote its peer — but the peer is
  // already a broker, so nothing changes there.
  EXPECT_EQ(e.promotions(), 0u);
}

TEST(BrokerElection, DegreeCountsDistinctPeersInWindow) {
  BrokerElection e(5, {3, 5, kHour});
  e.on_contact(0, 1, kMinute);
  e.on_contact(0, 2, 2 * kMinute);
  e.on_contact(0, 1, 3 * kMinute);  // repeat
  EXPECT_EQ(e.degree(0, 3 * kMinute), 2u);
}

TEST(BrokerElection, WindowPruningForgetsOldMeetings) {
  BrokerElection e(5, {3, 5, kHour});
  e.on_contact(0, 1, kMinute);
  EXPECT_EQ(e.degree(0, kMinute), 1u);
  EXPECT_EQ(e.degree(0, 2 * kHour), 0u);  // pruned
}

TEST(BrokerElection, BrokersMetTracksRoleAtMeetingTime) {
  BrokerElection e(5, {0, 100, kHour});  // thresholds neutralized
  e.set_broker(1, true);
  e.on_contact(0, 1, kMinute);
  EXPECT_EQ(e.brokers_met(0, kMinute), 1u);
  e.set_broker(2, false);
  e.on_contact(0, 2, 2 * kMinute);
  EXPECT_EQ(e.brokers_met(0, 2 * kMinute), 1u);  // 2 was not a broker
}

TEST(BrokerElection, DemotionRequiresBelowAverageDegree) {
  // Build a user (node 0) that has met more than B_u brokers, then have it
  // meet a low-degree broker: that broker is demoted.
  BrokerElection e(10, {0, 2, 10 * kHour});
  for (trace::NodeId b = 1; b <= 4; ++b) e.set_broker(b, true);
  // Give brokers 1..3 high degree by having them meet many nodes.
  for (trace::NodeId b = 1; b <= 3; ++b) {
    for (trace::NodeId peer = 5; peer <= 9; ++peer) {
      e.on_contact(b, peer, kMinute);
    }
  }
  // Node 0 meets the well-connected brokers (brokers_met climbs to 3 > 2).
  e.on_contact(0, 1, 10 * kMinute);
  e.on_contact(0, 2, 11 * kMinute);
  e.on_contact(0, 3, 12 * kMinute);
  ASSERT_GT(e.brokers_met(0, 13 * kMinute), 2u);
  // Broker 4 has degree 0 (never met anyone) — below average: demoted.
  e.on_contact(0, 4, 13 * kMinute);
  EXPECT_FALSE(e.is_broker(4));
  EXPECT_GE(e.demotions(), 1u);
}

TEST(BrokerElection, HighDegreeBrokerSurvivesDemotionPressure) {
  BrokerElection e(12, {0, 1, 10 * kHour});
  for (trace::NodeId b = 1; b <= 3; ++b) e.set_broker(b, true);
  // Broker 1: degree 6; brokers 2, 3: degree 1.
  for (trace::NodeId peer = 4; peer <= 9; ++peer) {
    e.on_contact(1, peer, kMinute);
  }
  e.on_contact(2, 4, kMinute);
  e.on_contact(3, 4, kMinute);
  // Node 0 meets the two weak brokers first (builds its average), then the
  // strong one: above-average broker 1 must survive.
  e.on_contact(0, 2, 10 * kMinute);
  e.on_contact(0, 3, 11 * kMinute);
  ASSERT_GT(e.brokers_met(0, 12 * kMinute), 1u);
  e.on_contact(0, 1, 12 * kMinute);
  EXPECT_TRUE(e.is_broker(1));
}

TEST(BrokerElection, BootstrapsFromZeroBrokersOnRealTrace) {
  trace::SyntheticTraceConfig cfg;
  cfg.node_count = 40;
  cfg.contact_count = 8000;
  cfg.duration = util::kDay;
  cfg.seed = 17;
  auto t = trace::generate_trace(cfg);
  BrokerElection e(40, {3, 5, 5 * kHour});
  for (const auto& c : t.contacts()) e.on_contact(c.a, c.b, c.start);
  // Some brokers exist; not everyone became one.
  EXPECT_GT(e.broker_count(), 0u);
  EXPECT_LT(e.broker_count(), 40u);
  EXPECT_GT(e.promotions(), 0u);
}

TEST(BrokerElection, PaperThresholdsSustainAStableBrokerMinority) {
  // Section VII-A: thresholds 3/5 with W = 5 h maintain ~30% brokers on the
  // real traces. On our denser synthetic traces the same thresholds settle
  // lower (a handful of hub brokers already satisfies everyone's B_l) —
  // the invariant we hold is a stable non-trivial minority; see
  // bench/ablation_brokers for the threshold-to-fraction mapping.
  auto t = trace::generate_trace(trace::haggle_infocom06_config(23));
  BrokerElection e(t.node_count(), {3, 5, 5 * kHour});
  for (const auto& c : t.contacts()) e.on_contact(c.a, c.b, c.start);
  EXPECT_GT(e.broker_fraction(), 0.03);
  EXPECT_LT(e.broker_fraction(), 0.60);
}

TEST(BrokerElection, PopularNodesEndUpAsBrokers) {
  // The stated goal of V-B: socially active nodes hold brokership. Compare
  // the mean trace-degree of brokers vs non-brokers at the end.
  auto t = trace::generate_trace(trace::haggle_infocom06_config(29));
  BrokerElection e(t.node_count(), {3, 5, 5 * kHour});
  for (const auto& c : t.contacts()) e.on_contact(c.a, c.b, c.start);
  auto deg = t.degrees();
  double broker_deg = 0.0, user_deg = 0.0;
  std::size_t brokers = 0, users = 0;
  for (trace::NodeId n = 0; n < t.node_count(); ++n) {
    if (e.is_broker(n)) {
      broker_deg += static_cast<double>(deg[n]);
      ++brokers;
    } else {
      user_deg += static_cast<double>(deg[n]);
      ++users;
    }
  }
  ASSERT_GT(brokers, 0u);
  ASSERT_GT(users, 0u);
  EXPECT_GE(broker_deg / brokers, user_deg / users * 0.9);
}

TEST(BrokerElection, QueriesAreConstAndDoNotPerturbState) {
  BrokerElection e(5, {3, 5, kHour});
  e.on_contact(0, 1, kMinute);
  e.on_contact(0, 2, 2 * kMinute);
  // degree()/brokers_met() are read-only window filters: callable through a
  // const ref, and repeated queries (including past-window ones that would
  // prune under the old mutate-on-read scheme) see identical answers.
  const BrokerElection& ce = e;
  EXPECT_EQ(ce.degree(0, 2 * kMinute), 2u);
  EXPECT_EQ(ce.degree(0, 2 * kHour), 0u);  // filtered, not pruned
  EXPECT_EQ(ce.degree(0, 2 * kMinute), 2u);
  // Roles are recorded at meeting time: node 0 was a user when node 1 met
  // it, even though that contact then promoted node 0.
  EXPECT_EQ(ce.brokers_met(0, 2 * kMinute), 0u);
  EXPECT_EQ(ce.brokers_met(1, 2 * kMinute), 0u);
}

TEST(BrokerElection, CompactStateMatchesReferenceOnRealTrace) {
  // The pooled ring + open-addressing layout must be observation-for-
  // observation identical to the historical deque + hash-map layout, role
  // flips included, across a dense synthetic trace (rings wrap, tables
  // grow/rehash, windows prune).
  auto t = trace::generate_trace(trace::haggle_infocom06_config(31));
  BrokerElection compact(t.node_count(), {3, 5, 5 * kHour});
  BrokerElection ref(t.node_count(),
                     {3, 5, 5 * kHour, /*reference_state=*/true});
  for (const auto& c : t.contacts()) {
    compact.on_contact(c.a, c.b, c.start);
    ref.on_contact(c.a, c.b, c.start);
    ASSERT_EQ(compact.is_broker(c.a), ref.is_broker(c.a))
        << "role divergence at t=" << c.start << " node " << c.a;
    ASSERT_EQ(compact.is_broker(c.b), ref.is_broker(c.b))
        << "role divergence at t=" << c.start << " node " << c.b;
  }
  EXPECT_EQ(compact.broker_count(), ref.broker_count());
  EXPECT_EQ(compact.promotions(), ref.promotions());
  EXPECT_EQ(compact.demotions(), ref.demotions());
  const util::Time end = t.end_time();
  for (trace::NodeId n = 0; n < t.node_count(); ++n) {
    ASSERT_EQ(compact.degree(n, end), ref.degree(n, end)) << "node " << n;
    ASSERT_EQ(compact.brokers_met(n, end), ref.brokers_met(n, end))
        << "node " << n;
  }
}

TEST(BrokerElection, CompactStateMatchesReferenceUnderWindowChurn) {
  // Tiny window forces constant pruning; a small node set forces repeat
  // meetings (table erasure + backward shift paths).
  trace::SyntheticTraceConfig cfg;
  cfg.node_count = 8;
  cfg.contact_count = 4000;
  cfg.duration = util::kDay;
  cfg.seed = 37;
  auto t = trace::generate_trace(cfg);
  BrokerElection compact(8, {2, 3, 10 * kMinute});
  BrokerElection ref(8, {2, 3, 10 * kMinute, /*reference_state=*/true});
  for (const auto& c : t.contacts()) {
    compact.on_contact(c.a, c.b, c.start);
    ref.on_contact(c.a, c.b, c.start);
  }
  EXPECT_EQ(compact.promotions(), ref.promotions());
  EXPECT_EQ(compact.demotions(), ref.demotions());
  for (trace::NodeId n = 0; n < 8; ++n) {
    EXPECT_EQ(compact.is_broker(n), ref.is_broker(n)) << "node " << n;
    EXPECT_EQ(compact.degree(n, t.end_time()), ref.degree(n, t.end_time()));
  }
}

TEST(BrokerElection, StateBytesReservedGrowsWithActivity) {
  BrokerElection e(100, {3, 5, kHour});
  const std::size_t idle = e.state_bytes_reserved();
  EXPECT_GT(idle, 0u);  // the fixed NodeState array
  for (trace::NodeId p = 1; p < 50; ++p) e.on_contact(0, p, kMinute);
  EXPECT_GT(e.state_bytes_reserved(), idle);  // rings/tables came from pool
}

}  // namespace
}  // namespace bsub::core
