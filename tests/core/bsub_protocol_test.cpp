#include "core/bsub_protocol.h"

#include "core/df_tuning.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "testing/scenario.h"
#include "trace/synthetic.h"

namespace bsub::core {
namespace {

using bsub::testing::contact;
using bsub::testing::make_message;
using bsub::testing::two_keys;
using util::from_minutes;

/// A link with an effectively unlimited budget.
sim::Link big_link() { return sim::Link(util::kHour, 1e9); }

/// Config with the election neutralized so tests control roles directly.
BsubConfig pinned_roles_config() {
  BsubConfig cfg;
  cfg.broker_lower = 0;        // never promote
  cfg.broker_upper = 1000000;  // never demote
  cfg.df_per_minute = 0.0;     // no decay unless a test enables it
  return cfg;
}

/// Drives the protocol by hand: trace only provides node count.
struct Harness {
  workload::KeySet keys = two_keys();
  trace::ContactTrace trace;
  workload::Workload workload;
  metrics::Collector collector;
  BsubProtocol proto;

  Harness(std::size_t nodes, std::vector<workload::KeyId> interests,
          std::vector<workload::Message> messages,
          BsubConfig cfg = pinned_roles_config())
      : trace(nodes, {contact(0, 1, 0)}),  // placeholder contact
        workload(keys, nodes, std::move(interests), std::move(messages)),
        proto(cfg) {
    proto.on_start(trace, workload, collector);
  }

  void create_all_messages() {
    for (const auto& m : workload.messages()) {
      proto.on_message_created(m, m.created);
    }
  }

  void meet(trace::NodeId a, trace::NodeId b, double minute) {
    sim::Link link = big_link();
    proto.on_contact(a, b, from_minutes(minute), util::kHour, link);
  }
};

TEST(BsubProtocol, ConsumerInterestReachesBrokerRelay) {
  Harness h(2, {0, 1}, {});
  h.proto.election_mutable().set_broker(1, true);
  h.meet(0, 1, 1.0);
  // Node 0's interest (key 0 = "alpha") must now be in broker 1's relay.
  EXPECT_TRUE(
      h.proto.interests_mutable().relay(1, from_minutes(1)).contains("alpha"));
}

TEST(BsubProtocol, DirectProducerToConsumerDelivery) {
  Harness h(2, {0, 0}, {make_message(0, 0, 0)});
  h.create_all_messages();
  h.meet(0, 1, 5.0);
  auto r = h.collector.results();
  EXPECT_EQ(r.interested_deliveries, 1u);
  EXPECT_EQ(r.false_deliveries, 0u);
  EXPECT_NEAR(r.mean_delay_minutes, 5.0, 1e-9);
}

TEST(BsubProtocol, NonMatchingMessageNotDeliveredDirectly) {
  // Node 1 wants "beta"; producer has "alpha".
  Harness h(2, {0, 1}, {make_message(0, 0, 0)});
  h.create_all_messages();
  h.meet(0, 1, 5.0);
  EXPECT_EQ(h.collector.results().interested_deliveries, 0u);
}

TEST(BsubProtocol, ThreeHopPubSubPath) {
  // Nodes: 0 producer, 1 broker, 2 consumer (key 0). The consumer never
  // meets the producer; delivery must go through the broker.
  Harness h(3, {1, 1, 0}, {make_message(0, 0, 0)});
  h.proto.election_mutable().set_broker(1, true);
  h.create_all_messages();
  h.meet(2, 1, 1.0);   // interest propagation: consumer -> broker
  h.meet(0, 1, 10.0);  // pickup: producer -> broker
  h.meet(1, 2, 20.0);  // delivery: broker -> consumer
  auto r = h.collector.results();
  EXPECT_EQ(r.interested_deliveries, 1u);
  EXPECT_NEAR(r.mean_delay_minutes, 20.0, 1e-9);
  EXPECT_EQ(r.forwardings, 2u);  // pickup + delivery
  EXPECT_EQ(h.proto.false_injections(), 0u);
}

TEST(BsubProtocol, NoPickupWithoutPropagatedInterest) {
  // The broker's relay is empty: it must not pick anything up.
  Harness h(3, {1, 1, 0}, {make_message(0, 0, 0)});
  h.proto.election_mutable().set_broker(1, true);
  h.create_all_messages();
  h.meet(0, 1, 10.0);  // producer meets broker with empty relay
  EXPECT_EQ(h.collector.results().forwardings, 0u);
}

TEST(BsubProtocol, CopyLimitBoundsBrokerReplicas) {
  BsubConfig cfg = pinned_roles_config();
  cfg.copy_limit = 2;
  // Producer 0; brokers 1, 2, 3 all primed with consumer 4's interest.
  Harness h(5, {1, 1, 1, 1, 0}, {make_message(0, 0, 0)}, cfg);
  for (trace::NodeId b = 1; b <= 3; ++b) {
    h.proto.election_mutable().set_broker(b, true);
  }
  h.create_all_messages();
  for (trace::NodeId b = 1; b <= 3; ++b) h.meet(4, b, 1.0);  // interests
  for (trace::NodeId b = 1; b <= 3; ++b) h.meet(0, b, 10.0); // pickups
  // Only copy_limit pickups may happen.
  EXPECT_EQ(h.collector.results().forwardings, 2u);
  // After the limit, the producer forgot the message: a later direct meeting
  // with the consumer delivers nothing from the producer. The brokers still
  // deliver their copies.
  h.meet(0, 4, 20.0);
  EXPECT_EQ(h.collector.results().interested_deliveries, 0u);
  h.meet(1, 4, 30.0);
  EXPECT_EQ(h.collector.results().interested_deliveries, 1u);
}

TEST(BsubProtocol, DirectDeliveryDoesNotConsumeCopies) {
  BsubConfig cfg = pinned_roles_config();
  cfg.copy_limit = 1;
  // Producer 0, consumers 1 and 2, broker 3 primed by consumer 2.
  Harness h(4, {1, 0, 0, 1}, {make_message(0, 0, 0)}, cfg);
  h.proto.election_mutable().set_broker(3, true);
  h.create_all_messages();
  h.meet(1, 0, 1.0);  // direct delivery to consumer 1 (no copy spent)
  h.meet(2, 3, 2.0);  // consumer 2 primes broker 3
  h.meet(0, 3, 5.0);  // pickup still possible: copy budget intact
  h.meet(3, 2, 9.0);  // broker delivers to consumer 2
  EXPECT_EQ(h.collector.results().interested_deliveries, 2u);
}

TEST(BsubProtocol, BrokerExchangeMMergesRelays) {
  Harness h(3, {0, 1, 1}, {});
  h.proto.election_mutable().set_broker(1, true);
  h.proto.election_mutable().set_broker(2, true);
  h.meet(0, 1, 1.0);  // consumer 0 ("alpha") primes broker 1
  h.meet(1, 2, 5.0);  // broker-broker exchange
  EXPECT_TRUE(
      h.proto.interests_mutable().relay(2, from_minutes(5)).contains("alpha"));
}

TEST(BsubProtocol, PreferentialForwardingMovesMessageToBetterBroker) {
  // Broker 1 carries a message but broker 2 is closer to the consumer
  // (higher relay counter via repeated reinforcement).
  Harness h(4, {1, 1, 1, 0}, {make_message(0, 0, 0)});
  h.proto.election_mutable().set_broker(1, true);
  h.proto.election_mutable().set_broker(2, true);
  h.create_all_messages();
  h.meet(3, 1, 1.0);  // consumer primes broker 1 once
  h.meet(3, 2, 2.0);  // consumer primes broker 2 twice (stronger)
  h.meet(3, 2, 3.0);
  h.meet(0, 1, 10.0);  // producer -> broker 1 pickup
  ASSERT_EQ(h.collector.results().forwardings, 1u);
  h.meet(1, 2, 20.0);  // broker exchange: message should move to broker 2
  EXPECT_EQ(h.collector.results().forwardings, 2u);
  // Single custody: broker 1 dropped it; only broker 2 can deliver now.
  h.meet(1, 3, 25.0);
  EXPECT_EQ(h.collector.results().interested_deliveries, 0u);
  h.meet(2, 3, 30.0);
  EXPECT_EQ(h.collector.results().interested_deliveries, 1u);
}

TEST(BsubProtocol, NoBackwardForwardingBetweenBrokers) {
  // After the message moves 1 -> 2, a second meeting must not bounce it
  // back (reverse preference is negative).
  Harness h(4, {1, 1, 1, 0}, {make_message(0, 0, 0)});
  h.proto.election_mutable().set_broker(1, true);
  h.proto.election_mutable().set_broker(2, true);
  h.create_all_messages();
  h.meet(3, 2, 1.0);
  h.meet(3, 2, 2.0);
  h.meet(3, 1, 3.0);
  h.meet(0, 1, 10.0);
  h.meet(1, 2, 20.0);  // moves to 2
  auto before = h.collector.results().forwardings;
  h.meet(1, 2, 21.0);  // must not move again
  EXPECT_EQ(h.collector.results().forwardings, before);
}

TEST(BsubProtocol, DecayErasesStaleInterests) {
  BsubConfig cfg = pinned_roles_config();
  cfg.df_per_minute = 1.0;  // C=50 drains in 50 minutes
  Harness h(3, {1, 1, 0}, {make_message(0, 0, from_minutes(100))}, cfg);
  h.proto.election_mutable().set_broker(1, true);
  h.meet(2, 1, 1.0);  // consumer primes broker
  h.create_all_messages();
  h.meet(0, 1, 100.0);  // 99 minutes later: interest long gone, no pickup
  EXPECT_EQ(h.collector.results().forwardings, 0u);
}

TEST(BsubProtocol, ReinforcementKeepsInterestAliveUnderDecay) {
  BsubConfig cfg = pinned_roles_config();
  cfg.df_per_minute = 1.0;
  Harness h(3, {1, 1, 0}, {make_message(0, 0, from_minutes(100))}, cfg);
  h.proto.election_mutable().set_broker(1, true);
  // Consumer meets the broker every 30 minutes: counters pile up.
  for (int m = 0; m <= 90; m += 30) h.meet(2, 1, m);
  h.create_all_messages();
  h.meet(0, 1, 100.0);
  EXPECT_EQ(h.collector.results().forwardings, 1u);  // pickup happened
}

TEST(BsubProtocol, ExpiredMessagesPurgedEverywhere) {
  Harness h(3, {1, 1, 0},
            {make_message(0, 0, 0, /*ttl=*/from_minutes(15))});
  h.proto.election_mutable().set_broker(1, true);
  h.create_all_messages();
  h.meet(2, 1, 1.0);
  h.meet(0, 1, 5.0);  // picked up at t=5
  ASSERT_EQ(h.collector.results().forwardings, 1u);
  h.meet(1, 2, 30.0);  // expired at 15: no delivery
  EXPECT_EQ(h.collector.results().interested_deliveries, 0u);
}

TEST(BsubProtocol, ControlBytesAreAccounted) {
  Harness h(2, {0, 1}, {});
  h.proto.election_mutable().set_broker(1, true);
  h.meet(0, 1, 1.0);
  EXPECT_GT(h.collector.results().control_bytes, 0u);
}

TEST(BsubProtocol, RunsEndToEndOnSyntheticTrace) {
  trace::SyntheticTraceConfig tcfg;
  tcfg.node_count = 30;
  tcfg.contact_count = 6000;
  tcfg.duration = util::kDay;
  tcfg.seed = 77;
  auto t = trace::generate_trace(tcfg);
  auto keys = workload::twitter_trend_keys();
  workload::WorkloadConfig wcfg;
  wcfg.ttl = 6 * util::kHour;
  workload::Workload w(t, keys, wcfg);

  BsubConfig cfg;
  cfg.df_per_minute =
      compute_df(t, wcfg.ttl, cfg.filter_params, cfg.initial_counter)
          .df_per_minute;
  BsubProtocol proto(cfg);
  sim::Simulator sim;
  auto r = sim.run(t, w, proto);
  EXPECT_GT(r.delivery_ratio, 0.05);
  EXPECT_GT(r.forwardings, 0u);
  EXPECT_GT(proto.election().broker_count(), 0u);
}

TEST(BsubProtocol, DeterministicAcrossRuns) {
  trace::SyntheticTraceConfig tcfg;
  tcfg.node_count = 20;
  tcfg.contact_count = 3000;
  tcfg.duration = util::kDay;
  tcfg.seed = 88;
  auto t = trace::generate_trace(tcfg);
  auto keys = workload::twitter_trend_keys();
  workload::Workload w(t, keys, {});

  auto run_once = [&] {
    BsubProtocol proto;
    sim::Simulator sim;
    return sim.run(t, w, proto);
  };
  auto r1 = run_once();
  auto r2 = run_once();
  EXPECT_EQ(r1.interested_deliveries, r2.interested_deliveries);
  EXPECT_EQ(r1.forwardings, r2.forwardings);
  EXPECT_EQ(r1.false_deliveries, r2.false_deliveries);
  EXPECT_EQ(r1.control_bytes, r2.control_bytes);
  EXPECT_DOUBLE_EQ(r1.mean_delay_minutes, r2.mean_delay_minutes);
}

TEST(BsubProtocol, AdaptiveDfModeRunsAndDelivers) {
  trace::SyntheticTraceConfig tcfg;
  tcfg.node_count = 25;
  tcfg.contact_count = 4000;
  tcfg.duration = util::kDay;
  tcfg.seed = 91;
  auto t = trace::generate_trace(tcfg);
  auto keys = workload::twitter_trend_keys();
  workload::WorkloadConfig wcfg;
  wcfg.ttl = 6 * util::kHour;
  workload::Workload w(t, keys, wcfg);
  BsubConfig cfg;
  cfg.adaptive_df = true;
  cfg.df_window = wcfg.ttl;
  BsubProtocol proto(cfg);
  sim::Simulator sim;
  auto r = sim.run(t, w, proto);
  EXPECT_GT(r.interested_deliveries, 0u);
}

}  // namespace
}  // namespace bsub::core
