// Fuzz target for the engine frame codec (engine/wire.h).
//
// Invariants checked on every input:
//   - decode either returns a frame or throws util::CodecError — any other
//     exception or a crash is a finding;
//   - an accepted frame re-encodes, and the re-encoded bytes decode again
//     (everything the engine emits must be re-readable by a peer).
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <vector>

#include "engine/wire.h"
#include "util/errors.h"

namespace {

[[noreturn]] void fail(const char* invariant) {
  std::fprintf(stderr, "fuzz invariant violated: %s\n", invariant);
  std::abort();
}

std::vector<std::uint8_t> reencode(const bsub::engine::Frame& f) {
  using bsub::engine::FrameType;
  switch (f.type) {
    case FrameType::kHello:
      return bsub::engine::encode(*f.hello);
    case FrameType::kGenuineFilter:
      return bsub::engine::encode(*f.genuine);
    case FrameType::kRelayFilter:
      return bsub::engine::encode(*f.relay);
    case FrameType::kData:
      return bsub::engine::encode(*f.data);
    case FrameType::kCustodyAck:
      return bsub::engine::encode(*f.custody_ack);
  }
  fail("decoded frame has no payload variant");
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::span<const std::uint8_t> bytes(data, size);
  try {
    const bsub::engine::Frame f = bsub::engine::decode(bytes);
    const auto re = reencode(f);
    try {
      (void)bsub::engine::decode(re);
    } catch (const bsub::util::CodecError&) {
      fail("re-encoded frame failed to decode");
    }
  } catch (const bsub::util::CodecError&) {
    // typed rejection is the expected outcome for garbage
  }
  return 0;
}
