// Writes the seed corpus for the fuzz targets: well-formed traces, TCBF/BF
// encodings, and engine frames (plus a few near-miss mutants, which sit on
// the interesting side of the validators). Outputs are checked in under
// tests/fuzz/corpus/; rerun after a wire-format change:
//
//   ./gen_fuzz_corpus <repo>/tests/fuzz/corpus
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bloom/tcbf_codec.h"
#include "engine/wire.h"
#include "net/fragment.h"
#include "trace/trace_io.h"
#include "util/rng.h"

namespace {

namespace fs = std::filesystem;

void write_file(const fs::path& dir, const std::string& name,
                const std::vector<std::uint8_t>& bytes) {
  fs::create_directories(dir);
  std::ofstream out(dir / name, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

void write_file(const fs::path& dir, const std::string& name,
                const std::string& text) {
  write_file(dir, name,
             std::vector<std::uint8_t>(text.begin(), text.end()));
}

void gen_traces(const fs::path& dir) {
  write_file(dir, "minimal.txt", std::string("0 1 0 10\n"));
  write_file(dir, "headers.txt",
             std::string("# nodes 4\n# contacts 2\n0 1 0.5 10.25\n"
                         "2 3 100 160.125\n"));
  write_file(dir, "comments_crlf.txt",
             std::string("# exported by tool\r\n\r\n0 1 0 10\r\n"));

  bsub::util::Rng rng(0xBEEF);
  std::ostringstream synth;
  synth << "# nodes 12\n";
  double t = 0.0;
  for (int i = 0; i < 40; ++i) {
    const unsigned a = static_cast<unsigned>(rng.next_below(12));
    unsigned b = static_cast<unsigned>(rng.next_below(12));
    if (a == b) b = (b + 1) % 12;
    t += 0.001 * static_cast<double>(1 + rng.next_below(5000));
    const double dur = 0.001 * static_cast<double>(1 + rng.next_below(600000));
    synth << a << ' ' << b << ' ' << t << ' ' << t + dur << '\n';
  }
  write_file(dir, "synthetic.txt", synth.str());

  // Near-misses: each trips exactly one validator.
  write_file(dir, "bad_end_before_start.txt", std::string("0 1 50 10\n"));
  write_file(dir, "bad_id_vs_header.txt",
             std::string("# nodes 2\n0 2 0 10\n"));
  write_file(dir, "bad_nan_time.txt", std::string("0 1 nan 10\n"));
}

void gen_filters(const fs::path& dir) {
  using bsub::bloom::CounterEncoding;
  for (int keys : {0, 3, 40, 200}) {
    bsub::bloom::Tcbf t({512, 4}, 50.0);
    for (int i = 0; i < keys; ++i) t.insert("key" + std::to_string(i));
    if (keys >= 40) {
      bsub::bloom::Tcbf extra({512, 4}, 50.0);
      extra.insert("other");
      t.decay(7.5);
      t.a_merge(extra);  // non-uniform counters for the kFull path
    }
    for (auto enc : {CounterEncoding::kFull, CounterEncoding::kUniform,
                     CounterEncoding::kCounterLess}) {
      write_file(dir,
                 "tcbf_k" + std::to_string(keys) + "_e" +
                     std::to_string(static_cast<int>(enc)) + ".bin",
                 encode_tcbf(t, enc));
    }
    write_file(dir, "bloom_k" + std::to_string(keys) + ".bin",
               encode_bloom(t.to_bloom_filter()));
  }

  // Near-misses: valid prefix, one corrupted byte.
  bsub::bloom::Tcbf t({256, 4}, 50.0);
  t.insert("alpha");
  auto enc = encode_tcbf(t, CounterEncoding::kFull);
  auto bad = enc;
  bad[1] = 9;  // encoding byte
  write_file(dir, "bad_encoding_byte.bin", bad);
  bad = enc;
  bad[2] = 7;  // layout byte
  write_file(dir, "bad_layout_byte.bin", bad);
  enc.pop_back();
  write_file(dir, "truncated.bin", enc);
}

void gen_frames(const fs::path& dir) {
  using namespace bsub::engine;

  HelloFrame h;
  h.sender = 3;
  h.is_broker = true;
  h.interest_report = bsub::bloom::BloomFilter({256, 4});
  h.interest_report.insert("news");
  h.relay_report = bsub::bloom::BloomFilter({256, 4});
  h.relay_report.insert("sports");
  write_file(dir, "hello.bin", encode(h));

  GenuineFrame g;
  g.sender = 4;
  g.filter = bsub::bloom::Tcbf({256, 4}, 50.0);
  g.filter.insert("news");
  write_file(dir, "genuine.bin", encode(g));

  RelayFrame r;
  r.sender = 5;
  r.filter = bsub::bloom::Tcbf({256, 4}, 50.0);
  r.filter.insert("weather");
  r.filter.decay(3.0);
  write_file(dir, "relay.bin", encode(r));

  DataFrame d;
  d.sender = 6;
  d.custody = true;
  d.message.id = 42;
  d.message.key = "news";
  d.message.body = {1, 2, 3, 4};
  d.message.producer = 7;
  d.message.created = bsub::util::from_minutes(10);
  d.message.ttl = bsub::util::kHour;
  write_file(dir, "data.bin", encode(d));

  write_file(dir, "custody_ack.bin", encode(CustodyAckFrame{6, 42, true}));

  // Near-misses.
  auto bytes = encode(d);
  bytes[2] = 0;  // frame type
  write_file(dir, "bad_frame_type.bin", bytes);
  bytes = encode(d);
  bytes[1] ^= 0xFF;  // wire version
  write_file(dir, "bad_version.bin", bytes);
  bytes = encode(d);
  bytes.back() ^= 0x01;  // checksum
  write_file(dir, "bad_checksum.bin", bytes);
  bytes = encode(d);
  bytes.resize(bytes.size() / 2);
  write_file(dir, "truncated.bin", bytes);
}

/// Session fuzz seeds use the fuzz_session op encoding: 0x00 = time jump,
/// 0x01 = local offer, 0x02 = close, op >= 3 = "feed op bytes to
/// on_datagram". A datagram is seeded as [size u8][bytes], so its size byte
/// doubles as the op.
void gen_session(const fs::path& dir) {
  using namespace bsub::net;

  auto push_datagram = [](std::vector<std::uint8_t>& ops,
                          const std::vector<std::uint8_t>& d) {
    ops.push_back(static_cast<std::uint8_t>(d.size()));
    ops.insert(ops.end(), d.begin(), d.end());
  };

  // A whole handshake: the peer's hello frame arrives in fragments, gets
  // acked, then the peer says goodbye.
  bsub::engine::HelloFrame h;
  h.sender = 9;
  h.interest_report = bsub::bloom::BloomFilter({256, 4});
  h.interest_report.insert("news");
  h.relay_report = bsub::bloom::BloomFilter({256, 4});
  const auto hello = bsub::engine::encode(h);
  std::vector<std::vector<std::uint8_t>> frags;
  fragment_frame(/*epoch=*/7, /*seq=*/0, hello, /*mtu=*/96, frags);

  std::vector<std::uint8_t> ops;
  for (const auto& d : frags) push_datagram(ops, d);
  push_datagram(ops, encode_ack(7, 1));
  push_datagram(ops, encode_fin(7, /*is_ack=*/false));
  write_file(dir, "handshake.bin", ops);

  // Local activity with retransmit pressure: offer, jump time (RTO fires),
  // stray ack from a *newer* epoch (receive-state reset), close.
  ops.clear();
  ops.push_back(0x01);
  ops.push_back(40);  // offer a 41-byte frame
  ops.push_back(0x00);
  ops.push_back(5);  // +300ms: several RTO backoffs
  push_datagram(ops, encode_ack(9, 1));
  ops.push_back(0x02);  // close
  ops.push_back(0x00);
  ops.push_back(255);  // ride the FIN retry ladder to peer-lost
  write_file(dir, "retransmit_close.bin", ops);

  // Near-misses: a corrupted fragment, and geometry that lies.
  ops.clear();
  auto bad = frags.front();
  bad[bad.size() / 2] ^= 0xFF;
  push_datagram(ops, bad);
  push_datagram(ops, frags.front());
  write_file(dir, "corrupt_fragment.bin", ops);
}

/// Kernel-differential fuzz seeds use the fuzz_tcbf_kernels op encoding:
/// byte 0 = geometry (bits 0-1: m, bits 2-3: k-2), then ops keyed on the
/// low 3 bits (0/1 = merge fresh keys, 2 = decay, 3 = insert, 4 = cross
/// merge, 5 = queries, 6 = views, 7 = wire encode).
void gen_kernels(const fs::path& dir) {
  // Sparse schedule on the smallest geometry: a few merges and queries.
  std::vector<std::uint8_t> ops;
  ops.push_back(0x04);  // m=64, k=3
  ops.push_back(0x08);  // a_merge 2 keys
  ops.push_back(1);
  ops.push_back(2);
  ops.push_back(0x01);  // m_merge 1 key into f
  ops.push_back(3);
  ops.push_back(0x0A);  // decay both by 10.0
  ops.push_back(40);
  ops.push_back(0x05);  // queries on key 1
  ops.push_back(1);
  ops.push_back(0x06);  // views
  write_file(dir, "sparse.bin", ops);

  // Dense schedule on the largest geometry: fill past the scalar
  // lazy-vs-dense crossover, cross-merge, decay-to-drain, re-encode.
  ops.clear();
  ops.push_back(0x0F);  // m=4096, k=5
  for (int round = 0; round < 64; ++round) {
    ops.push_back(0x18);  // a_merge 4 keys
    for (int j = 0; j < 4; ++j) {
      ops.push_back(static_cast<std::uint8_t>(round * 4 + j));
    }
  }
  ops.push_back(0x0A);  // decay both by 30.0
  ops.push_back(120);
  ops.push_back(0x04);  // b.m_merge(f)
  ops.push_back(0x06);  // views
  ops.push_back(0x07);  // wire encode
  write_file(dir, "dense.bin", ops);

  // Decay-heavy schedule: interleaved drains and revivals keep the decay
  // base and occupancy pruning busy.
  ops.clear();
  ops.push_back(0x01);  // m=256, k=2
  for (int round = 0; round < 8; ++round) {
    ops.push_back(0x03);  // insert into f
    ops.push_back(static_cast<std::uint8_t>(round));
    ops.push_back(0x08);  // a_merge 2 keys
    ops.push_back(static_cast<std::uint8_t>(round));
    ops.push_back(static_cast<std::uint8_t>(round + 32));
    ops.push_back(0x0A);  // decay both by 51.0 (drains fresh counters)
    ops.push_back(204);
    ops.push_back(0x05);  // queries
    ops.push_back(static_cast<std::uint8_t>(round));
  }
  ops.push_back(0x06);
  ops.push_back(0x07);
  write_file(dir, "decay_drain.bin", ops);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <corpus-dir>\n", argv[0]);
    return 2;
  }
  const fs::path root(argv[1]);
  gen_traces(root / "read_trace");
  gen_filters(root / "tcbf_codec");
  gen_kernels(root / "tcbf_kernels");
  gen_frames(root / "wire_decode");
  gen_session(root / "session");
  std::printf("corpus written under %s\n", root.c_str());
  return 0;
}
