// Writes the seed corpus for the fuzz targets: well-formed traces, TCBF/BF
// encodings, and engine frames (plus a few near-miss mutants, which sit on
// the interesting side of the validators). Outputs are checked in under
// tests/fuzz/corpus/; rerun after a wire-format change:
//
//   ./gen_fuzz_corpus <repo>/tests/fuzz/corpus
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bloom/tcbf_codec.h"
#include "engine/wire.h"
#include "trace/trace_io.h"
#include "util/rng.h"

namespace {

namespace fs = std::filesystem;

void write_file(const fs::path& dir, const std::string& name,
                const std::vector<std::uint8_t>& bytes) {
  fs::create_directories(dir);
  std::ofstream out(dir / name, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

void write_file(const fs::path& dir, const std::string& name,
                const std::string& text) {
  write_file(dir, name,
             std::vector<std::uint8_t>(text.begin(), text.end()));
}

void gen_traces(const fs::path& dir) {
  write_file(dir, "minimal.txt", std::string("0 1 0 10\n"));
  write_file(dir, "headers.txt",
             std::string("# nodes 4\n# contacts 2\n0 1 0.5 10.25\n"
                         "2 3 100 160.125\n"));
  write_file(dir, "comments_crlf.txt",
             std::string("# exported by tool\r\n\r\n0 1 0 10\r\n"));

  bsub::util::Rng rng(0xBEEF);
  std::ostringstream synth;
  synth << "# nodes 12\n";
  double t = 0.0;
  for (int i = 0; i < 40; ++i) {
    const unsigned a = static_cast<unsigned>(rng.next_below(12));
    unsigned b = static_cast<unsigned>(rng.next_below(12));
    if (a == b) b = (b + 1) % 12;
    t += 0.001 * static_cast<double>(1 + rng.next_below(5000));
    const double dur = 0.001 * static_cast<double>(1 + rng.next_below(600000));
    synth << a << ' ' << b << ' ' << t << ' ' << t + dur << '\n';
  }
  write_file(dir, "synthetic.txt", synth.str());

  // Near-misses: each trips exactly one validator.
  write_file(dir, "bad_end_before_start.txt", std::string("0 1 50 10\n"));
  write_file(dir, "bad_id_vs_header.txt",
             std::string("# nodes 2\n0 2 0 10\n"));
  write_file(dir, "bad_nan_time.txt", std::string("0 1 nan 10\n"));
}

void gen_filters(const fs::path& dir) {
  using bsub::bloom::CounterEncoding;
  for (int keys : {0, 3, 40, 200}) {
    bsub::bloom::Tcbf t({512, 4}, 50.0);
    for (int i = 0; i < keys; ++i) t.insert("key" + std::to_string(i));
    if (keys >= 40) {
      bsub::bloom::Tcbf extra({512, 4}, 50.0);
      extra.insert("other");
      t.decay(7.5);
      t.a_merge(extra);  // non-uniform counters for the kFull path
    }
    for (auto enc : {CounterEncoding::kFull, CounterEncoding::kUniform,
                     CounterEncoding::kCounterLess}) {
      write_file(dir,
                 "tcbf_k" + std::to_string(keys) + "_e" +
                     std::to_string(static_cast<int>(enc)) + ".bin",
                 encode_tcbf(t, enc));
    }
    write_file(dir, "bloom_k" + std::to_string(keys) + ".bin",
               encode_bloom(t.to_bloom_filter()));
  }

  // Near-misses: valid prefix, one corrupted byte.
  bsub::bloom::Tcbf t({256, 4}, 50.0);
  t.insert("alpha");
  auto enc = encode_tcbf(t, CounterEncoding::kFull);
  auto bad = enc;
  bad[1] = 9;  // encoding byte
  write_file(dir, "bad_encoding_byte.bin", bad);
  bad = enc;
  bad[2] = 7;  // layout byte
  write_file(dir, "bad_layout_byte.bin", bad);
  enc.pop_back();
  write_file(dir, "truncated.bin", enc);
}

void gen_frames(const fs::path& dir) {
  using namespace bsub::engine;

  HelloFrame h;
  h.sender = 3;
  h.is_broker = true;
  h.interest_report = bsub::bloom::BloomFilter({256, 4});
  h.interest_report.insert("news");
  h.relay_report = bsub::bloom::BloomFilter({256, 4});
  h.relay_report.insert("sports");
  write_file(dir, "hello.bin", encode(h));

  GenuineFrame g;
  g.sender = 4;
  g.filter = bsub::bloom::Tcbf({256, 4}, 50.0);
  g.filter.insert("news");
  write_file(dir, "genuine.bin", encode(g));

  RelayFrame r;
  r.sender = 5;
  r.filter = bsub::bloom::Tcbf({256, 4}, 50.0);
  r.filter.insert("weather");
  r.filter.decay(3.0);
  write_file(dir, "relay.bin", encode(r));

  DataFrame d;
  d.sender = 6;
  d.custody = true;
  d.message.id = 42;
  d.message.key = "news";
  d.message.body = {1, 2, 3, 4};
  d.message.producer = 7;
  d.message.created = bsub::util::from_minutes(10);
  d.message.ttl = bsub::util::kHour;
  write_file(dir, "data.bin", encode(d));

  write_file(dir, "custody_ack.bin", encode(CustodyAckFrame{6, 42, true}));

  // Near-misses.
  auto bytes = encode(d);
  bytes[1] = 0;  // frame type
  write_file(dir, "bad_frame_type.bin", bytes);
  bytes = encode(d);
  bytes.back() ^= 0x01;  // checksum
  write_file(dir, "bad_checksum.bin", bytes);
  bytes = encode(d);
  bytes.resize(bytes.size() / 2);
  write_file(dir, "truncated.bin", bytes);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <corpus-dir>\n", argv[0]);
    return 2;
  }
  const fs::path root(argv[1]);
  gen_traces(root / "read_trace");
  gen_filters(root / "tcbf_codec");
  gen_frames(root / "wire_decode");
  std::printf("corpus written under %s\n", root.c_str());
  return 0;
}
