// Fuzz target for the contact-session state machine (net/session.h).
//
// The input is a little op program driving one Session through hostile
// territory: arbitrary datagrams (the attacker-controlled receive path),
// local offers, graceful close, and virtual-time jumps that fire RTO
// retransmits — interleaved in any order the fuzzer likes.
//
//   op 0x00 L   advance the clock by (L+1)*50ms (fires due timers)
//   op 0x01 L   offer a (L % 64 + 1)-byte frame for reliable delivery
//   op 0x02     close() (graceful FIN teardown)
//   op L>=3     feed the next min(L, remaining) input bytes to
//               on_datagram() as one datagram
//
// Invariants checked on every input:
//   - no crash, no uncaught exception: on_datagram() swallows every codec
//     error (hostile bytes must never propagate);
//   - the state machine only moves forward (a closed session stays closed);
//   - per-session receive caps hold (bounded partial/held-back frames).
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <vector>

#include "metrics/collector.h"
#include "net/clock.h"
#include "net/reactor.h"
#include "net/session.h"
#include "net/transport.h"

namespace {

[[noreturn]] void fail(const char* invariant) {
  std::fprintf(stderr, "fuzz invariant violated: %s\n", invariant);
  std::abort();
}

/// Transport that accepts every datagram and drops it on the floor: the
/// fuzzer plays the entire network side through on_datagram().
class SinkTransport final : public bsub::net::Transport {
 public:
  bool send(bsub::net::Endpoint,
            std::span<const std::uint8_t> datagram) override {
    return datagram.size() <= max_datagram_bytes();
  }
  std::size_t max_datagram_bytes() const override { return 96; }
  bsub::net::Endpoint local_endpoint() const override { return 1; }
  void set_receive_handler(ReceiveHandler) override {}
};

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  using namespace bsub::net;

  ManualClock clock;
  Reactor reactor(clock);
  SinkTransport transport;
  bsub::metrics::TransportCounters counters;

  SessionConfig config;
  config.mtu = 96;
  config.rto_initial = 50 * bsub::util::kMillisecond;
  config.max_retries = 3;
  config.max_partial_frames = 4;  // keeps hostile frag_count claims cheap
  config.max_out_of_order = 8;

  Session session(/*peer=*/2, /*local_epoch=*/1, config, transport, reactor,
                  counters);
  bool closed_seen = false;
  session.set_closed_handler([&](SessionCloseReason) {
    if (closed_seen) fail("closed handler fired twice");
    closed_seen = true;
  });
  session.set_frame_handler([&](std::span<const std::uint8_t> frame) {
    if (frame.empty()) fail("delivered frame is empty");
    // Answer like a node would: the response rides the same session.
    const std::vector<std::uint8_t> reply(frame.begin(),
                                          frame.begin() + 1);
    (void)session.offer(reply);
  });

  std::size_t pos = 0;
  while (pos < size) {
    const std::uint8_t op = data[pos++];
    const bool was_closed = session.state() == SessionState::kClosed;
    if (op == 0x00) {
      const std::uint8_t steps = pos < size ? data[pos++] : 0;
      reactor.advance_to(clock, clock.now() + (steps + 1) *
                                                  (50 * bsub::util::kMillisecond));
    } else if (op == 0x01) {
      const std::uint8_t len = pos < size ? data[pos++] : 0;
      const std::vector<std::uint8_t> frame(len % 64 + 1, 0xAB);
      (void)session.offer(frame);
    } else if (op == 0x02) {
      session.close();
    } else {
      const std::size_t len =
          op < size - pos ? static_cast<std::size_t>(op) : size - pos;
      session.on_datagram(std::span<const std::uint8_t>(data + pos, len));
      pos += len;
    }
    if (was_closed && session.state() != SessionState::kClosed) {
      fail("session reopened after close");
    }
  }

  if ((session.state() == SessionState::kClosed) != closed_seen) {
    fail("closed state and closed handler disagree");
  }
  return 0;
}
