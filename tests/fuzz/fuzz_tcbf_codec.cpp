// Fuzz target for the TCBF / BF wire codec (bloom/tcbf_codec.h).
//
// Invariants checked on every input:
//   - decode_tcbf / decode_bloom either return a valid filter or throw
//     util::CodecError — any other exception or a crash is a finding;
//   - a successfully decoded filter re-encodes to a buffer that decodes
//     again (everything we emit must be re-readable);
//   - the re-decode agrees with the first decode on geometry and set bits.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <span>

#include "bloom/tcbf_codec.h"
#include "util/errors.h"

namespace {

[[noreturn]] void fail(const char* invariant) {
  // abort() so both libFuzzer and the replay driver report the input.
  std::fprintf(stderr, "fuzz invariant violated: %s\n", invariant);
  std::abort();
}

void check_tcbf(std::span<const std::uint8_t> bytes) {
  bsub::bloom::Tcbf first(bsub::bloom::BloomParams{8, 1}, 1.0);
  try {
    first = bsub::bloom::decode_tcbf(bytes);
  } catch (const bsub::util::CodecError&) {
    return;  // typed rejection is the expected outcome for garbage
  }
  // Accepted input: the filter must survive a re-encode under its own
  // declared encoding (bytes[1] is valid, or decode would have thrown).
  const auto encoding = static_cast<bsub::bloom::CounterEncoding>(bytes[1]);
  const auto re = bsub::bloom::encode_tcbf(first, encoding);
  bsub::bloom::Tcbf second(bsub::bloom::BloomParams{8, 1}, 1.0);
  try {
    second = bsub::bloom::decode_tcbf(re);
  } catch (const bsub::util::CodecError&) {
    fail("re-encoded TCBF failed to decode");
  }
  if (second.params() != first.params()) fail("TCBF params drift");
  if (second.set_bits() != first.set_bits()) fail("TCBF set-bit drift");
}

void check_bloom(std::span<const std::uint8_t> bytes) {
  try {
    const bsub::bloom::BloomFilter bf = bsub::bloom::decode_bloom(bytes);
    // A decoder may accept the non-preferred bit layout, so assert semantic
    // (not byte) round-trip identity: re-encode must decode back equal.
    if (bsub::bloom::decode_bloom(bsub::bloom::encode_bloom(bf)) != bf) {
      fail("BF re-encode round trip drift");
    }
  } catch (const bsub::util::CodecError&) {
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::span<const std::uint8_t> bytes(data, size);
  check_tcbf(bytes);
  check_bloom(bytes);
  return 0;
}
