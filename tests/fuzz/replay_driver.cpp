// Standalone corpus-replay driver, used when libFuzzer is unavailable (the
// fuzz targets export the standard LLVMFuzzerTestOneInput entry point; clang
// links them against -fsanitize=fuzzer instead of this file).
//
// Usage: <target> <corpus-file-or-dir>...
// Every regular file found (directories are walked recursively) is fed to
// the target once; a crash or abort in the target fails the run.
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

int run_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return 1;
  }
  std::vector<std::uint8_t> bytes{std::istreambuf_iterator<char>(in),
                                  std::istreambuf_iterator<char>()};
  LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <corpus-file-or-dir>...\n", argv[0]);
    return 2;
  }
  std::size_t ran = 0;
  for (int i = 1; i < argc; ++i) {
    const std::filesystem::path arg(argv[i]);
    std::error_code ec;
    if (std::filesystem::is_directory(arg, ec)) {
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(arg)) {
        if (!entry.is_regular_file()) continue;
        if (run_file(entry.path()) != 0) return 1;
        ++ran;
      }
    } else {
      if (run_file(arg) != 0) return 1;
      ++ran;
    }
  }
  std::printf("replayed %zu input(s) without a finding\n", ran);
  return ran == 0 ? 2 : 0;
}
