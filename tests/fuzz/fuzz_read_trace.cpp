// Fuzz target for the contact-trace text parser (trace/trace_io.h).
//
// Invariants checked on every input:
//   - read_trace either returns a trace or throws util::ParseError — any
//     other exception or a crash is a finding;
//   - an accepted trace survives write_trace -> read_trace with identical
//     contacts and node count (the save/load identity the sweep tooling
//     relies on).
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

#include "trace/trace_io.h"
#include "util/errors.h"
#include "util/logging.h"

namespace {

[[noreturn]] void fail(const char* invariant) {
  std::fprintf(stderr, "fuzz invariant violated: %s\n", invariant);
  std::abort();
}

// The parser warns (once per call) on non-monotone traces; at fuzzing
// throughput that would flood stderr.
const bool g_quiet = [] {
  bsub::util::set_log_level(bsub::util::LogLevel::Error);
  return true;
}();

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  (void)g_quiet;
  std::istringstream in(
      std::string(reinterpret_cast<const char*>(data), size));
  bsub::trace::ContactTrace first;
  try {
    first = bsub::trace::read_trace(in, "fuzz");
  } catch (const bsub::util::ParseError&) {
    return 0;  // typed rejection is the expected outcome for garbage
  }

  std::ostringstream out;
  bsub::trace::write_trace(out, first);
  std::istringstream back(out.str());
  bsub::trace::ContactTrace second;
  try {
    second = bsub::trace::read_trace(back, "fuzz");
  } catch (const bsub::util::ParseError&) {
    fail("written trace failed to re-parse");
  }
  if (second.contacts() != first.contacts()) fail("contact drift");
  return 0;
}
