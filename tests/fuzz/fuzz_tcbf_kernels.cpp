// Fuzz target for the TCBF kernel layer (bloom/kernels.h): differential
// execution of the scalar reference against every other runnable backend
// (blocked, avx2, neon) on the same fuzzer-chosen op schedule.
//
// The input is a little op program over two filters, b (merge destination)
// and f (peer filter):
//
//   byte 0      geometry: bits 0-1 pick m from {64, 256, 1024, 4096},
//               bits 2-3 pick k from 2..5
//   op & 0x07 == 0   A-merge a fresh filter of 1..4 keys into b
//            == 1   M-merge a fresh filter of 1..4 keys into f
//            == 2   decay b (and f when op bit 3 is set) by L * 0.25
//            == 3   insert a key into f (while f is still never-merged)
//            == 4   b.m_merge(f)
//            == 5   point queries: contains / min_counter / preference
//            == 6   derived views: popcount / set-bit extraction
//            == 7   encode b to wire bytes (kFull)
//
// Every observable — query answers recorded mid-run, the final raw counter
// bit patterns, occupancy-derived views, and the encoded wire bytes — must
// be byte-identical across backends; any divergence aborts. This is the
// same contract the kernel differential test checks, but with the schedule
// chosen adversarially rather than from a fixed seed list.
#include <bit>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bloom/bloom_params.h"
#include "bloom/kernels.h"
#include "bloom/tcbf.h"
#include "bloom/tcbf_codec.h"
#include "util/hash.h"

namespace {

namespace kernels = bsub::bloom::kernels;

[[noreturn]] void fail(const char* invariant, kernels::Kind kind) {
  std::fprintf(stderr, "fuzz invariant violated: %s (kernel %.*s)\n",
               invariant,
               static_cast<int>(kernels::kind_name(kind).size()),
               kernels::kind_name(kind).data());
  std::abort();
}

const std::string& pool_key(std::uint8_t id) {
  static const std::vector<std::string>* keys = [] {
    auto* k = new std::vector<std::string>;
    for (int i = 0; i < 64; ++i) k->push_back("fk" + std::to_string(i));
    return k;
  }();
  return (*keys)[id % 64];
}

/// Executes the whole op program under the currently forced kernel and
/// returns every observable as one flat word trace.
std::vector<std::uint64_t> run_program(const std::uint8_t* data,
                                       std::size_t size) {
  static constexpr std::size_t kMs[4] = {64, 256, 1024, 4096};
  const bsub::bloom::BloomParams params{
      kMs[data[0] & 0x03],
      static_cast<std::uint32_t>(2 + ((data[0] >> 2) & 0x03))};

  std::vector<std::uint64_t> trace;
  bsub::bloom::Tcbf b(params, 50.0);
  bsub::bloom::Tcbf f(params, 50.0);
  bool f_insertable = true;

  std::size_t pos = 1;
  auto next = [&]() -> std::uint8_t {
    return pos < size ? data[pos++] : 0;
  };

  while (pos < size) {
    const std::uint8_t op = next();
    switch (op & 0x07) {
      case 0:
      case 1: {
        bsub::bloom::Tcbf fresh(params, 50.0);
        const int nk = 1 + ((op >> 3) & 0x03);
        for (int j = 0; j < nk; ++j) fresh.insert(pool_key(next()));
        if ((op & 0x07) == 0) {
          b.a_merge(fresh);
        } else {
          f.m_merge(fresh);
          f_insertable = false;
        }
        break;
      }
      case 2: {
        const double amount = 0.25 * static_cast<double>(next());
        b.decay(amount);
        if ((op & 0x08) != 0) f.decay(amount);
        break;
      }
      case 3:
        if (f_insertable) f.insert(pool_key(next()));
        break;
      case 4:
        b.m_merge(f);
        break;
      case 5: {
        const std::string& k = pool_key(next());
        trace.push_back(b.contains(k));
        trace.push_back(
            std::bit_cast<std::uint64_t>(b.min_counter(k).value_or(-1.0)));
        trace.push_back(
            std::bit_cast<std::uint64_t>(bsub::bloom::preference(b, f, k)));
        const bsub::util::IndexArray idx =
            bsub::util::bloom_indices(k, params.k, params.m);
        trace.push_back(std::bit_cast<std::uint64_t>(
            bsub::bloom::preference_at(b, f, idx)));
        break;
      }
      case 6: {
        trace.push_back(b.popcount());
        trace.push_back(f.popcount());
        for (std::size_t i : b.set_bits()) trace.push_back(i);
        break;
      }
      case 7: {
        for (std::uint8_t byte :
             encode_tcbf(b, bsub::bloom::CounterEncoding::kFull)) {
          trace.push_back(byte);
        }
        break;
      }
    }
  }

  for (double v : b.counters()) {
    trace.push_back(std::bit_cast<std::uint64_t>(v));
  }
  for (double v : f.counters()) {
    trace.push_back(std::bit_cast<std::uint64_t>(v));
  }
  trace.push_back(b.popcount());
  trace.push_back(f.popcount());
  return trace;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size < 2) return 0;

  const kernels::Kind dispatched = kernels::active_kind();
  if (!kernels::force_kernel(kernels::Kind::kScalar)) {
    fail("scalar kernel unavailable", kernels::Kind::kScalar);
  }
  const std::vector<std::uint64_t> reference = run_program(data, size);

  for (kernels::Kind kind :
       {kernels::Kind::kBlocked, kernels::Kind::kAvx2, kernels::Kind::kNeon}) {
    if (!kernels::available(kind)) continue;
    kernels::force_kernel(kind);
    if (run_program(data, size) != reference) {
      fail("kernel diverged from scalar reference", kind);
    }
  }

  kernels::force_kernel(dispatched);
  return 0;
}
