// Tests for the thread pool and the parallel-for/map helpers that run
// experiment sweep points concurrently.
#include "util/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace bsub::util {
namespace {

TEST(DefaultThreadCountTest, RespectsBsubThreadsEnv) {
  ::setenv("BSUB_THREADS", "3", 1);
  EXPECT_EQ(default_thread_count(), 3u);
  ::setenv("BSUB_THREADS", "1", 1);
  EXPECT_EQ(default_thread_count(), 1u);
  ::setenv("BSUB_THREADS", "garbage", 1);
  EXPECT_GE(default_thread_count(), 1u);  // falls back to hardware count
  ::setenv("BSUB_THREADS", "0", 1);
  EXPECT_GE(default_thread_count(), 1u);
  ::unsetenv("BSUB_THREADS");
  EXPECT_GE(default_thread_count(), 1u);
}

TEST(ThreadPoolTest, RunsAllSubmittedJobs) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&count] { count.fetch_add(1); });
    }
    pool.wait_idle();
    EXPECT_EQ(count.load(), 100);
  }
}

TEST(ThreadPoolTest, WaitIdleBlocksUntilDrained) {
  std::atomic<int> done{0};
  ThreadPool pool(2);
  for (int i = 0; i < 8; ++i) {
    pool.submit([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      done.fetch_add(1);
    });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 8);
}

TEST(ThreadPoolTest, WaitIdleRethrowsFirstBatchException) {
  ThreadPool pool(2);
  std::atomic<int> survivors{0};
  pool.submit([] { throw std::runtime_error("batch failure"); });
  for (int i = 0; i < 4; ++i) {
    pool.submit([&survivors] { survivors.fetch_add(1); });
  }
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The throwing job must not have killed its worker: the rest of the
  // batch still ran to completion before the barrier returned.
  EXPECT_EQ(survivors.load(), 4);
}

TEST(ThreadPoolTest, ReusableAcrossSubmitWaitIdleCycles) {
  // Regression: the conflict-batch executor submits a batch, barriers on
  // wait_idle(), and immediately submits the next batch on the same pool —
  // hundreds of cycles per run. The pool must stay fully functional, and a
  // batch's exception must not leak into later batches.
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int cycle = 0; cycle < 50; ++cycle) {
    for (int j = 0; j < 10; ++j) {
      pool.submit([&total] { total.fetch_add(1); });
    }
    pool.wait_idle();
    EXPECT_EQ(total.load(), (cycle + 1) * 10);
  }

  pool.submit([] { throw std::runtime_error("one bad batch"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);

  // The error was consumed by the barrier; the next cycle starts clean.
  pool.submit([&total] { total.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(total.load(), 501);
}

TEST(ParallelForIndexTest, VisitsEveryIndexExactlyOnce) {
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> visits(kN);
  parallel_for_index(
      kN, [&](std::size_t i) { visits[i].fetch_add(1); }, 4);
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForIndexTest, RunsInlineWithOneThread) {
  const auto self = std::this_thread::get_id();
  std::vector<std::thread::id> seen(16);
  parallel_for_index(
      seen.size(), [&](std::size_t i) { seen[i] = std::this_thread::get_id(); },
      1);
  for (const auto& id : seen) EXPECT_EQ(id, self);
}

TEST(ParallelForIndexTest, HandlesZeroItems) {
  parallel_for_index(0, [](std::size_t) { FAIL() << "must not be called"; },
                     4);
}

TEST(ParallelForIndexTest, PropagatesExceptions) {
  EXPECT_THROW(
      parallel_for_index(
          100,
          [](std::size_t i) {
            if (i == 37) throw std::runtime_error("boom");
          },
          4),
      std::runtime_error);
}

TEST(ParallelMapTest, ReturnsResultsInInputOrder) {
  std::vector<int> items(200);
  std::iota(items.begin(), items.end(), 0);
  const auto out = parallel_map(
      items,
      [](int v) {
        if (v % 7 == 0) {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
        return v * v;
      },
      4);
  ASSERT_EQ(out.size(), items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(out[i], items[i] * items[i]);
  }
}

TEST(ParallelMapTest, SerialAndParallelAgree) {
  std::vector<double> items;
  for (int i = 0; i < 64; ++i) items.push_back(0.25 * i);
  auto fn = [](double v) { return v * v + 1.0; };
  const auto serial = parallel_map(items, fn, 1);
  const auto parallel = parallel_map(items, fn, 8);
  EXPECT_EQ(serial, parallel);
}

}  // namespace
}  // namespace bsub::util
