#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

namespace bsub::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += (a() == b());
  EXPECT_LT(equal, 5);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng base(99);
  Rng s1 = base.split(1);
  Rng s2 = base.split(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += (s1() == s2());
  EXPECT_LT(equal, 5);
}

TEST(Rng, SplitIsDeterministic) {
  Rng a(7), b(7);
  Rng sa = a.split(3), sb = b.split(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sa(), sb());
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowOneIsAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  Rng rng(11);
  constexpr int kBuckets = 8;
  constexpr int kSamples = 80000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kSamples; ++i) {
    ++counts[rng.next_below(kBuckets)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kSamples / kBuckets, kSamples / kBuckets * 0.1);
  }
}

TEST(Rng, NextIntCoversInclusiveRange) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    std::int64_t v = rng.next_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, NextDoubleMeanIsHalf) {
  Rng rng(23);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, NextBoolRespectsEdges) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
  }
}

TEST(Rng, NextBoolFrequencyMatchesP) {
  Rng rng(31);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) hits += rng.next_bool(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(37);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.next_exponential(2.0);
  EXPECT_NEAR(sum / kN, 0.5, 0.02);
}

TEST(Rng, ExponentialIsPositive) {
  Rng rng(41);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.next_exponential(1.0), 0.0);
}

TEST(Rng, ParetoRespectsMinimum) {
  Rng rng(43);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.next_pareto(2.0, 1.5), 2.0);
}

TEST(Rng, ParetoMeanMatchesTheory) {
  // E[X] = alpha*xm/(alpha-1) for alpha > 1. Use alpha = 3 so the variance
  // is finite and the sample mean converges.
  Rng rng(47);
  double sum = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += rng.next_pareto(1.0, 3.0);
  EXPECT_NEAR(sum / kN, 1.5, 0.05);
}

TEST(Rng, GaussianMoments) {
  Rng rng(53);
  double sum = 0.0, sq = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    double g = rng.next_gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sq / kN, 1.0, 0.03);
}

TEST(Rng, PoissonSmallMean) {
  Rng rng(59);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += static_cast<double>(rng.next_poisson(3.5));
  EXPECT_NEAR(sum / kN, 3.5, 0.1);
}

TEST(Rng, PoissonLargeMeanUsesNormalApprox) {
  Rng rng(61);
  double sum = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    sum += static_cast<double>(rng.next_poisson(200.0));
  }
  EXPECT_NEAR(sum / kN, 200.0, 1.0);
}

TEST(Rng, PoissonZeroMean) {
  Rng rng(67);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.next_poisson(0.0), 0u);
}

TEST(Rng, WeightedSelectionMatchesWeights) {
  Rng rng(71);
  std::vector<double> weights = {1.0, 2.0, 7.0};
  std::vector<int> counts(3, 0);
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) ++counts[rng.next_weighted(weights)];
  EXPECT_NEAR(counts[0] / static_cast<double>(kN), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(kN), 0.2, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(kN), 0.7, 0.01);
}

TEST(Rng, WeightedSingleElement) {
  Rng rng(73);
  std::vector<double> weights = {42.0};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.next_weighted(weights), 0u);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(79);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto original = v;
  rng.shuffle(v);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), original.begin()));
  EXPECT_NE(v, original);  // 1/100! chance of false failure
}

TEST(Splitmix64, AdvancesState) {
  std::uint64_t s = 1;
  std::uint64_t a = splitmix64(s);
  std::uint64_t b = splitmix64(s);
  EXPECT_NE(a, b);
}

TEST(ZipfDistribution, PmfSumsToOne) {
  ZipfDistribution z(50, 1.0);
  double total = 0.0;
  for (std::size_t r = 0; r < z.size(); ++r) total += z.pmf(r);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(ZipfDistribution, PmfIsMonotoneDecreasing) {
  ZipfDistribution z(30, 0.8);
  for (std::size_t r = 1; r < z.size(); ++r) {
    EXPECT_GT(z.pmf(r - 1), z.pmf(r));
  }
}

TEST(ZipfDistribution, SampleFrequenciesMatchPmf) {
  ZipfDistribution z(10, 1.0);
  Rng rng(83);
  std::vector<int> counts(10, 0);
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) ++counts[z.sample(rng)];
  for (std::size_t r = 0; r < 10; ++r) {
    EXPECT_NEAR(counts[r] / static_cast<double>(kN), z.pmf(r), 0.01);
  }
}

TEST(ZipfDistribution, SingleElement) {
  ZipfDistribution z(1, 2.0);
  Rng rng(89);
  EXPECT_EQ(z.sample(rng), 0u);
  EXPECT_DOUBLE_EQ(z.pmf(0), 1.0);
}

}  // namespace
}  // namespace bsub::util
