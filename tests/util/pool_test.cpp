#include "util/pool.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace bsub::util {
namespace {

struct Tracked {
  int value = 0;
  std::string payload;
};

TEST(ObjectPool, AcquireConstructsFromMake) {
  ObjectPool<Tracked> pool;
  const std::uint32_t h = pool.acquire([] { return Tracked{7, "seven"}; });
  EXPECT_EQ(pool[h].value, 7);
  EXPECT_EQ(pool[h].payload, "seven");
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.free_count(), 0u);
  EXPECT_EQ(pool.recycled(), 0u);
}

TEST(ObjectPool, ReleaseThenAcquireRecycles) {
  ObjectPool<Tracked> pool;
  const std::uint32_t a = pool.acquire([] { return Tracked{1, "x"}; });
  pool.release(a, [](Tracked& t) {
    t.value = 0;
    t.payload.clear();
  });
  EXPECT_EQ(pool.free_count(), 1u);

  // The recycle hook already reset the object, so make() must not run.
  const std::uint32_t b = pool.acquire([]() -> Tracked {
    ADD_FAILURE() << "make() ran for a recycled object";
    return {};
  });
  EXPECT_EQ(b, a);  // same slot comes back
  EXPECT_EQ(pool[b].value, 0);
  EXPECT_TRUE(pool[b].payload.empty());
  EXPECT_EQ(pool.size(), 1u);  // no new construction
  EXPECT_EQ(pool.free_count(), 0u);
  EXPECT_EQ(pool.recycled(), 1u);
}

TEST(ObjectPool, RecycledObjectKeepsHeapCapacity) {
  // The point of releaser-side reset: a demoted broker's buffers survive on
  // the free list, so re-promotion reuses them instead of reallocating.
  ObjectPool<std::vector<int>> pool;
  const std::uint32_t h = pool.acquire([] { return std::vector<int>(); });
  pool[h].resize(1000);
  const std::size_t cap = pool[h].capacity();
  pool.release(h, [](std::vector<int>& v) { v.clear(); });  // keeps capacity
  const std::uint32_t h2 = pool.acquire([] { return std::vector<int>(); });
  EXPECT_EQ(h2, h);
  EXPECT_TRUE(pool[h2].empty());
  EXPECT_GE(pool[h2].capacity(), cap);
}

TEST(ObjectPool, HandlesStayValidAcrossGrowth) {
  // Chunked backing storage: growing the pool must never move live objects,
  // because workers dereference handles without a lock while acquires run.
  ObjectPool<std::uint64_t> pool;
  std::vector<const std::uint64_t*> addrs;
  constexpr std::uint32_t kCount = 5000;  // spans several chunk doublings
  for (std::uint32_t i = 0; i < kCount; ++i) {
    const std::uint32_t h = pool.acquire([i] { return std::uint64_t{i}; });
    ASSERT_EQ(h, i);  // dense handles in acquisition order
    addrs.push_back(&pool[h]);
  }
  for (std::uint32_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(&pool[i], addrs[i]);
    EXPECT_EQ(pool[i], i);
  }
  EXPECT_EQ(pool.size(), kCount);
}

TEST(ObjectPool, FreeListIsLifo) {
  ObjectPool<int> pool;
  const std::uint32_t a = pool.acquire([] { return 1; });
  const std::uint32_t b = pool.acquire([] { return 2; });
  auto reset = [](int& v) { v = 0; };
  pool.release(a, reset);
  pool.release(b, reset);
  EXPECT_EQ(pool.free_count(), 2u);
  EXPECT_EQ(pool.acquire([] { return -1; }), b);
  EXPECT_EQ(pool.acquire([] { return -1; }), a);
  EXPECT_EQ(pool.recycled(), 2u);
}

TEST(BlockPool, RoundsUpToPowerOfTwoClasses) {
  BlockPool pool;
  // 10 bytes rounds to the 16-byte minimum class: releasing as 10 and
  // re-acquiring as 16 hits the same free list, so the block comes back.
  void* p = pool.acquire(10);
  ASSERT_NE(p, nullptr);
  pool.release(p, 10);
  EXPECT_EQ(pool.acquire(16), p);

  void* q = pool.acquire(17);  // 32-byte class, distinct from the above
  EXPECT_NE(q, p);
  pool.release(q, 17);
  EXPECT_EQ(pool.acquire(32), q);
}

TEST(BlockPool, BlocksAreAligned) {
  BlockPool pool;
  for (std::size_t bytes : {1u, 16u, 24u, 100u, 4096u}) {
    void* p = pool.acquire(bytes);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % BlockPool::kMinBlock, 0u)
        << "block of " << bytes << " bytes misaligned";
  }
}

TEST(BlockPool, AcquireArrayIsUsableAndRecycles) {
  BlockPool pool;
  std::uint64_t* a = pool.acquire_array<std::uint64_t>(100);
  ASSERT_NE(a, nullptr);
  for (std::size_t i = 0; i < 100; ++i) a[i] = i * 3;
  for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(a[i], i * 3);
  pool.release_array(a, 100);
  // Same size class (800 -> 1024 bytes) reuses the freed block.
  std::uint64_t* b = pool.acquire_array<std::uint64_t>(128);
  EXPECT_EQ(b, a);
}

TEST(BlockPool, SteadyStateChurnReservesNothingNew) {
  BlockPool pool;
  void* p = pool.acquire(256);
  pool.release(p, 256);
  const std::size_t reserved = pool.bytes_reserved();
  EXPECT_GT(reserved, 0u);
  // Acquire/release cycles at a warmed size class never touch the system.
  for (int i = 0; i < 1000; ++i) {
    void* q = pool.acquire(200);  // same 256-byte class
    EXPECT_EQ(q, p);
    pool.release(q, 200);
  }
  EXPECT_EQ(pool.bytes_reserved(), reserved);
}

TEST(BlockPool, OversizeBlocksWorkAndRecycle) {
  BlockPool pool;
  const std::size_t big = BlockPool::kSlabBytes * 2;  // beyond any slab
  void* p = pool.acquire(big);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0xAB, big);
  const std::size_t reserved = pool.bytes_reserved();
  EXPECT_GE(reserved, big);
  pool.release(p, big);
  EXPECT_EQ(pool.acquire(big), p);
  EXPECT_EQ(pool.bytes_reserved(), reserved);
}

TEST(BlockPool, ReleaseNullIsNoop) {
  BlockPool pool;
  pool.release(nullptr, 64);
  pool.release_array<std::uint32_t>(nullptr, 16);
  EXPECT_EQ(pool.bytes_reserved(), 0u);
}

}  // namespace
}  // namespace bsub::util
