#include "util/errors.h"

#include <gtest/gtest.h>

#include "util/byte_io.h"

namespace bsub::util {
namespace {

TEST(Errors, ParseErrorCarriesContext) {
  ParseError e("malformed contact line", 12, "4 fields", "3 field(s)");
  EXPECT_EQ(e.line(), 12u);
  EXPECT_EQ(e.expected(), "4 fields");
  EXPECT_EQ(e.found(), "3 field(s)");
  const std::string what = e.what();
  EXPECT_NE(what.find("line 12"), std::string::npos);
  EXPECT_NE(what.find("expected 4 fields"), std::string::npos);
  EXPECT_NE(what.find("found 3 field(s)"), std::string::npos);
}

TEST(Errors, ParseErrorWithoutLineOmitsIt) {
  ParseError e("cannot open trace file: /nope");
  EXPECT_EQ(e.line(), 0u);
  EXPECT_EQ(std::string(e.what()).find("line"), std::string::npos);
}

TEST(Errors, CodecErrorCarriesOffset) {
  CodecError e("byte buffer underflow", 17, "4 more byte(s)", "2");
  EXPECT_EQ(e.offset(), 17u);
  const std::string what = e.what();
  EXPECT_NE(what.find("offset 17"), std::string::npos);
  EXPECT_NE(what.find("expected 4 more byte(s)"), std::string::npos);
}

TEST(Errors, CodecErrorWithoutOffset) {
  CodecError e("frame checksum mismatch");
  EXPECT_EQ(e.offset(), CodecError::kNoOffset);
  EXPECT_EQ(std::string(e.what()).find("offset"), std::string::npos);
}

TEST(Errors, TaxonomyRootsAreCatchable) {
  // Both branches are InputErrors and std::runtime_errors, so boundary
  // callers can catch at whichever altitude they need.
  EXPECT_THROW(throw ParseError("x", 1), InputError);
  EXPECT_THROW(throw CodecError("x", 1), InputError);
  EXPECT_THROW(throw ParseError("x", 1), std::runtime_error);
  EXPECT_THROW(throw CodecError("x", 1), std::runtime_error);
}

TEST(Errors, DecodeErrorAliasesCodecError) {
  // Pre-taxonomy catch sites use DecodeError; they must keep catching
  // everything the byte layer throws.
  static_assert(std::is_same_v<DecodeError, CodecError>);
  EXPECT_THROW(throw CodecError("x"), DecodeError);
}

TEST(Errors, ByteReaderUnderflowReportsOffsetAndSizes) {
  const std::uint8_t bytes[] = {1, 2, 3};
  ByteReader r(bytes);
  r.get_u8();
  try {
    r.get_u64();
    FAIL() << "expected CodecError";
  } catch (const CodecError& e) {
    EXPECT_EQ(e.offset(), 1u);
    EXPECT_EQ(e.expected(), "8 more byte(s)");
    EXPECT_EQ(e.found(), "2");
  }
}

TEST(Errors, ByteReaderExpectEndFlagsTrailingBytes) {
  const std::uint8_t bytes[] = {1, 2, 3};
  ByteReader r(bytes);
  r.get_u8();
  EXPECT_THROW(r.expect_end("unit"), CodecError);
  r.get_u16();
  EXPECT_NO_THROW(r.expect_end("unit"));
}

TEST(Errors, ByteReaderGetSpanIsBoundsChecked) {
  const std::uint8_t bytes[] = {9, 8, 7, 6};
  ByteReader r(bytes);
  auto s = r.get_span(3);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0], 9);
  EXPECT_EQ(r.offset(), 3u);
  EXPECT_THROW(r.get_span(2), CodecError);
  EXPECT_NO_THROW(r.get_span(1));
  EXPECT_TRUE(r.at_end());
}

}  // namespace
}  // namespace bsub::util
