#include "util/hash.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

namespace bsub::util {
namespace {

TEST(Fnv1a64, KnownVectors) {
  // Reference values for FNV-1a 64-bit.
  EXPECT_EQ(fnv1a64(""), 0xCBF29CE484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xAF63DC4C8601EC8CULL);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171F73967E8ULL);
}

TEST(Fnv1a64, IsDeterministic) {
  EXPECT_EQ(fnv1a64("NewMoon"), fnv1a64("NewMoon"));
}

TEST(Fnv1a64, DistinguishesNearbyStrings) {
  EXPECT_NE(fnv1a64("key1"), fnv1a64("key2"));
  EXPECT_NE(fnv1a64("abc"), fnv1a64("acb"));
}

TEST(Mix64, IsBijectiveOnSamples) {
  std::set<std::uint64_t> outputs;
  for (std::uint64_t i = 0; i < 10000; ++i) outputs.insert(mix64(i));
  EXPECT_EQ(outputs.size(), 10000u);
}

TEST(Mix64, ZeroMapsToZero) {
  // The murmur3 finalizer maps 0 to 0 (known property).
  EXPECT_EQ(mix64(0), 0u);
}

TEST(Hash64, SeedChangesResult) {
  EXPECT_NE(hash64("key", 1), hash64("key", 2));
}

TEST(HashPair, ComponentsDiffer) {
  HashPair hp = hash_pair("some-key");
  EXPECT_NE(hp.h1, hp.h2);
}

TEST(KmIndex, StaysInRange) {
  HashPair hp = hash_pair("test");
  for (std::uint32_t i = 0; i < 100; ++i) {
    EXPECT_LT(km_index(hp, i, 256), 256u);
    EXPECT_LT(km_index(hp, i, 7), 7u);
  }
}

TEST(KmIndex, OddStepCoversPowerOfTwoTable) {
  // With h2 forced odd and m a power of two, the probe sequence visits all
  // slots before repeating.
  HashPair hp{12345, 2468};  // even h2 on purpose; km_index must fix it
  std::set<std::size_t> seen;
  for (std::uint32_t i = 0; i < 64; ++i) seen.insert(km_index(hp, i, 64));
  EXPECT_EQ(seen.size(), 64u);
}

TEST(BloomIndices, ReturnsKPositions) {
  auto idx = bloom_indices("key", 4, 256);
  EXPECT_EQ(idx.size(), 4u);
  for (std::size_t i : idx) EXPECT_LT(i, 256u);
}

TEST(BloomIndices, DeterministicPerKey) {
  EXPECT_EQ(bloom_indices("key", 4, 256), bloom_indices("key", 4, 256));
  EXPECT_NE(bloom_indices("key", 4, 256), bloom_indices("yek", 4, 256));
}

TEST(BloomIndices, PositionsSpreadAcrossTable) {
  // Over many keys the bit positions should hit most of a 256-slot table.
  std::set<std::size_t> seen;
  for (int i = 0; i < 500; ++i) {
    for (std::size_t p : bloom_indices("key" + std::to_string(i), 4, 256)) {
      seen.insert(p);
    }
  }
  EXPECT_GT(seen.size(), 250u);
}

}  // namespace
}  // namespace bsub::util
