#include "util/time.h"

#include <gtest/gtest.h>

namespace bsub::util {
namespace {

TEST(Time, UnitRelations) {
  EXPECT_EQ(kSecond, 1000 * kMillisecond);
  EXPECT_EQ(kMinute, 60 * kSecond);
  EXPECT_EQ(kHour, 60 * kMinute);
  EXPECT_EQ(kDay, 24 * kHour);
}

TEST(Time, ConversionsRoundTrip) {
  EXPECT_DOUBLE_EQ(to_seconds(from_seconds(12.5)), 12.5);
  EXPECT_DOUBLE_EQ(to_minutes(from_minutes(7.25)), 7.25);
  EXPECT_DOUBLE_EQ(to_hours(from_hours(3.5)), 3.5);
}

TEST(Time, CrossUnitConsistency) {
  EXPECT_DOUBLE_EQ(to_minutes(kHour), 60.0);
  EXPECT_DOUBLE_EQ(to_seconds(kMinute), 60.0);
  EXPECT_DOUBLE_EQ(to_hours(kDay), 24.0);
  EXPECT_EQ(from_minutes(90), kHour + 30 * kMinute);
}

TEST(Time, FractionalConversionsTruncateToMilliseconds) {
  // 0.1234 s = 123.4 ms -> 123 ms.
  EXPECT_EQ(from_seconds(0.1234), 123);
}

TEST(Time, NegativeDurations) {
  EXPECT_DOUBLE_EQ(to_minutes(-kHour), -60.0);
  EXPECT_EQ(from_minutes(-5), -5 * kMinute);
}

TEST(Time, MaxIsSentinel) {
  EXPECT_GT(kTimeMax, 1000000 * kDay);
}

}  // namespace
}  // namespace bsub::util
