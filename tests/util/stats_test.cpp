#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace bsub::util {
namespace {

TEST(RunningStats, EmptyDefaults) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, NegativeValues) {
  RunningStats s;
  s.add(-3.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all, left, right;
  for (int i = 0; i < 50; ++i) {
    double x = std::sin(i) * 10.0;
    all.add(x);
    (i < 20 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats a, b;
  a.add(1.0);
  a.add(2.0);
  RunningStats a_copy = a;
  a.merge(b);  // empty rhs: unchanged
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 1.5);
  b.merge(a_copy);  // empty lhs: adopt
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(PercentileTracker, MedianOfOddCount) {
  PercentileTracker p;
  for (double x : {3.0, 1.0, 2.0}) p.add(x);
  EXPECT_DOUBLE_EQ(p.median(), 2.0);
}

TEST(PercentileTracker, InterpolatesBetweenSamples) {
  PercentileTracker p;
  for (double x : {0.0, 10.0}) p.add(x);
  EXPECT_DOUBLE_EQ(p.percentile(50.0), 5.0);
  EXPECT_DOUBLE_EQ(p.percentile(25.0), 2.5);
}

TEST(PercentileTracker, ExtremesAreMinMax) {
  PercentileTracker p;
  for (double x : {5.0, 1.0, 9.0, 3.0}) p.add(x);
  EXPECT_DOUBLE_EQ(p.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(p.percentile(100.0), 9.0);
}

TEST(PercentileTracker, SingleSample) {
  PercentileTracker p;
  p.add(7.0);
  EXPECT_DOUBLE_EQ(p.percentile(0.0), 7.0);
  EXPECT_DOUBLE_EQ(p.percentile(50.0), 7.0);
  EXPECT_DOUBLE_EQ(p.percentile(100.0), 7.0);
}

TEST(PercentileTracker, QueriesInterleavedWithAdds) {
  PercentileTracker p;
  p.add(1.0);
  p.add(3.0);
  EXPECT_DOUBLE_EQ(p.median(), 2.0);
  p.add(100.0);  // re-sorts lazily
  EXPECT_DOUBLE_EQ(p.median(), 3.0);
}

TEST(PercentileTracker, MeanMatches) {
  PercentileTracker p;
  for (double x : {1.0, 2.0, 3.0, 4.0}) p.add(x);
  EXPECT_DOUBLE_EQ(p.mean(), 2.5);
}

TEST(Histogram, BucketsCountCorrectly) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bucket 0
  h.add(3.0);   // bucket 1
  h.add(9.99);  // bucket 4
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(4), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, OutOfRangeClampsToEdges) {
  Histogram h(0.0, 10.0, 5);
  h.add(-100.0);
  h.add(12.0);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(4), 1u);
}

TEST(Histogram, BucketBoundaries) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(4), 10.0);
}

TEST(Histogram, ValueOnBucketEdgeGoesRight) {
  Histogram h(0.0, 10.0, 5);
  h.add(2.0);  // exactly on 0/1 boundary -> bucket 1
  EXPECT_EQ(h.bucket(0), 0u);
  EXPECT_EQ(h.bucket(1), 1u);
}

}  // namespace
}  // namespace bsub::util
