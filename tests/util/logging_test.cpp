#include "util/logging.h"

#include <gtest/gtest.h>

namespace bsub::util {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = log_level(); }
  void TearDown() override { set_log_level(saved_); }
  LogLevel saved_;
};

TEST_F(LoggingTest, DefaultLevelIsWarn) {
  // The suite may have changed it; assert the documented default contractually
  // by resetting first.
  set_log_level(LogLevel::Warn);
  EXPECT_EQ(log_level(), LogLevel::Warn);
}

TEST_F(LoggingTest, SetAndGetRoundTrip) {
  for (LogLevel level : {LogLevel::Debug, LogLevel::Info, LogLevel::Warn,
                         LogLevel::Error, LogLevel::Off}) {
    set_log_level(level);
    EXPECT_EQ(log_level(), level);
  }
}

TEST_F(LoggingTest, MessagesBelowLevelAreCheapNoops) {
  set_log_level(LogLevel::Off);
  // No observable output check without capturing stderr; assert the calls
  // are safe at every level and with mixed argument types.
  log_debug("debug ", 1, " x");
  log_info("info ", 2.5);
  log_warn("warn ", std::string("s"));
  log_error("error ", 'c');
}

TEST_F(LoggingTest, LevelOrdering) {
  EXPECT_LT(static_cast<int>(LogLevel::Debug),
            static_cast<int>(LogLevel::Info));
  EXPECT_LT(static_cast<int>(LogLevel::Info), static_cast<int>(LogLevel::Warn));
  EXPECT_LT(static_cast<int>(LogLevel::Warn),
            static_cast<int>(LogLevel::Error));
  EXPECT_LT(static_cast<int>(LogLevel::Error),
            static_cast<int>(LogLevel::Off));
}

}  // namespace
}  // namespace bsub::util
