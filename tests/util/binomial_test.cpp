#include "util/binomial.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace bsub::util {
namespace {

TEST(LogBinomialCoefficient, SmallValues) {
  EXPECT_NEAR(std::exp(log_binomial_coefficient(5, 2)), 10.0, 1e-9);
  EXPECT_NEAR(std::exp(log_binomial_coefficient(10, 0)), 1.0, 1e-9);
  EXPECT_NEAR(std::exp(log_binomial_coefficient(10, 10)), 1.0, 1e-9);
  EXPECT_NEAR(std::exp(log_binomial_coefficient(52, 5)), 2598960.0, 1.0);
}

TEST(LogBinomialCoefficient, KGreaterThanNIsMinusInfinity) {
  EXPECT_TRUE(std::isinf(log_binomial_coefficient(3, 4)));
  EXPECT_LT(log_binomial_coefficient(3, 4), 0.0);
}

TEST(BinomialPmf, SumsToOne) {
  double total = 0.0;
  for (std::uint64_t x = 0; x <= 20; ++x) total += binomial_pmf(x, 20, 0.3);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(BinomialPmf, KnownValue) {
  // P[X=2] for Bin(4, 0.5) = 6/16.
  EXPECT_NEAR(binomial_pmf(2, 4, 0.5), 0.375, 1e-12);
}

TEST(BinomialPmf, DegenerateP) {
  EXPECT_DOUBLE_EQ(binomial_pmf(0, 10, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(1, 10, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(10, 10, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(9, 10, 1.0), 0.0);
}

TEST(BinomialPmf, XBeyondNIsZero) {
  EXPECT_DOUBLE_EQ(binomial_pmf(11, 10, 0.5), 0.0);
}

TEST(BinomialCdf, MonotoneAndBounded) {
  double prev = -1.0;
  for (std::uint64_t x = 0; x <= 30; ++x) {
    double c = binomial_cdf(x, 30, 0.4);
    EXPECT_GE(c, prev);
    EXPECT_LE(c, 1.0);
    prev = c;
  }
  EXPECT_NEAR(binomial_cdf(30, 30, 0.4), 1.0, 1e-12);
}

TEST(BinomialCdf, MedianOfSymmetricCase) {
  // Bin(10, 0.5): CDF(4) < 0.5 <= CDF(5).
  EXPECT_LT(binomial_cdf(4, 10, 0.5), 0.5);
  EXPECT_GE(binomial_cdf(5, 10, 0.5), 0.5);
}

TEST(ExpectedMinBinomial, SingleVariableIsPlainMean) {
  // k = 1: E[min] = E[X] = n*p.
  EXPECT_NEAR(expected_min_binomial(100, 0.1, 1), 10.0, 1e-6);
}

TEST(ExpectedMinBinomial, ZeroCases) {
  EXPECT_DOUBLE_EQ(expected_min_binomial(0, 0.5, 4), 0.0);
  EXPECT_DOUBLE_EQ(expected_min_binomial(100, 0.0, 4), 0.0);
}

TEST(ExpectedMinBinomial, DecreasesWithK) {
  double prev = 1e18;
  for (std::uint32_t k = 1; k <= 6; ++k) {
    double e = expected_min_binomial(60, 4.0 / 256.0, k);
    EXPECT_LT(e, prev);
    prev = e;
  }
}

TEST(ExpectedMinBinomial, IncreasesWithN) {
  EXPECT_LT(expected_min_binomial(20, 4.0 / 256.0, 4),
            expected_min_binomial(200, 4.0 / 256.0, 4));
}

TEST(ExpectedMinBinomial, BoundedByMeanOfOne) {
  // min of k iid variables cannot exceed any single one in expectation.
  double e = expected_min_binomial(60, 4.0 / 256.0, 4);
  EXPECT_LE(e, 60 * 4.0 / 256.0 + 1e-9);
  EXPECT_GE(e, 0.0);
}

TEST(ExpectedMinBinomial, MatchesMonteCarlo) {
  // Eq. 4 against direct simulation of min of k binomials.
  const std::uint64_t n = 60;
  const double p = 4.0 / 256.0;
  const std::uint32_t k = 4;
  Rng rng(12345);
  double sum = 0.0;
  constexpr int kTrials = 40000;
  for (int t = 0; t < kTrials; ++t) {
    std::uint64_t mn = n + 1;
    for (std::uint32_t j = 0; j < k; ++j) {
      std::uint64_t x = 0;
      for (std::uint64_t i = 0; i < n; ++i) x += rng.next_bool(p);
      mn = std::min(mn, x);
    }
    sum += static_cast<double>(mn);
  }
  const double mc = sum / kTrials;
  const double analytic = expected_min_binomial(n, p, k);
  EXPECT_NEAR(analytic, mc, 0.03);
}

}  // namespace
}  // namespace bsub::util
