#include "util/byte_io.h"

#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

namespace bsub::util {
namespace {

TEST(ByteIo, FixedWidthRoundTrip) {
  ByteWriter w;
  w.put_u8(0xAB);
  w.put_u16(0x1234);
  w.put_u32(0xDEADBEEF);
  w.put_u64(0x0123456789ABCDEFULL);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_u8(), 0xAB);
  EXPECT_EQ(r.get_u16(), 0x1234);
  EXPECT_EQ(r.get_u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.get_u64(), 0x0123456789ABCDEFULL);
  EXPECT_TRUE(r.at_end());
}

TEST(ByteIo, VarintRoundTripBoundaries) {
  const std::uint64_t values[] = {0,       1,       127,        128,
                                  16383,   16384,   0xFFFFFFFF, 1ULL << 56,
                                  UINT64_MAX};
  ByteWriter w;
  for (auto v : values) w.put_varint(v);
  ByteReader r(w.bytes());
  for (auto v : values) EXPECT_EQ(r.get_varint(), v);
  EXPECT_TRUE(r.at_end());
}

TEST(ByteIo, VarintIsCompactForSmallValues) {
  ByteWriter w;
  w.put_varint(100);
  EXPECT_EQ(w.size(), 1u);
  ByteWriter w2;
  w2.put_varint(300);
  EXPECT_EQ(w2.size(), 2u);
}

TEST(ByteIo, DoubleRoundTrip) {
  const double values[] = {0.0, -1.5, 3.14159265358979,
                           std::numeric_limits<double>::infinity(),
                           std::numeric_limits<double>::denorm_min()};
  ByteWriter w;
  for (double v : values) w.put_double(v);
  ByteReader r(w.bytes());
  for (double v : values) EXPECT_EQ(r.get_double(), v);
}

TEST(ByteIo, StringRoundTrip) {
  ByteWriter w;
  w.put_string("hello");
  w.put_string("");
  w.put_string(std::string(1000, 'x'));
  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_string(), "hello");
  EXPECT_EQ(r.get_string(), "");
  EXPECT_EQ(r.get_string(), std::string(1000, 'x'));
}

TEST(ByteIo, UnderflowThrows) {
  ByteWriter w;
  w.put_u8(1);
  ByteReader r(w.bytes());
  r.get_u8();
  EXPECT_THROW(r.get_u8(), DecodeError);
}

TEST(ByteIo, TruncatedStringThrows) {
  ByteWriter w;
  w.put_varint(100);  // claims 100 bytes, provides none
  ByteReader r(w.bytes());
  EXPECT_THROW(r.get_string(), DecodeError);
}

TEST(ByteIo, OverlongVarintThrows) {
  std::vector<std::uint8_t> bad(11, 0x80);  // never terminates
  ByteReader r(bad);
  EXPECT_THROW(r.get_varint(), DecodeError);
}

TEST(ByteIo, BitPackingRoundTrip) {
  ByteWriter w;
  w.put_bits(0b101, 3);
  w.put_bits(0xFF, 8);
  w.put_bits(0, 1);
  w.put_bits(0x1234, 13);
  w.flush_bits();
  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_bits(3), 0b101u);
  EXPECT_EQ(r.get_bits(8), 0xFFu);
  EXPECT_EQ(r.get_bits(1), 0u);
  EXPECT_EQ(r.get_bits(13), 0x1234u);
}

TEST(ByteIo, BitPackingUsesMinimalBytes) {
  ByteWriter w;
  for (int i = 0; i < 8; ++i) w.put_bits(1, 9);  // 72 bits
  w.flush_bits();
  EXPECT_EQ(w.size(), 9u);  // ceil(72/8)
}

TEST(ByteIo, BitsThenBytesWithFlush) {
  ByteWriter w;
  w.put_bits(0b11, 2);
  w.flush_bits();
  w.put_u8(0x42);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_bits(2), 0b11u);
  r.align_bits();
  EXPECT_EQ(r.get_u8(), 0x42);
}

TEST(ByteIo, SixtyFourBitBitField) {
  ByteWriter w;
  w.put_bits(UINT64_MAX, 64);
  w.flush_bits();
  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_bits(64), UINT64_MAX);
}

TEST(ByteIo, PutBitsMasksHighBits) {
  ByteWriter w;
  w.put_bits(0xFF, 4);  // only low 4 bits should be kept
  w.flush_bits();
  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_bits(4), 0xFu);
}

TEST(BitsFor, ComputesCeilLog2) {
  EXPECT_EQ(bits_for(1), 1u);
  EXPECT_EQ(bits_for(2), 1u);
  EXPECT_EQ(bits_for(3), 2u);
  EXPECT_EQ(bits_for(4), 2u);
  EXPECT_EQ(bits_for(5), 3u);
  EXPECT_EQ(bits_for(256), 8u);
  EXPECT_EQ(bits_for(257), 9u);
  EXPECT_EQ(bits_for(1ULL << 32), 32u);
}

TEST(ByteIo, PutBytesRoundTrip) {
  std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
  ByteWriter w;
  w.put_bytes(payload);
  ByteReader r(w.bytes());
  for (auto b : payload) EXPECT_EQ(r.get_u8(), b);
}

}  // namespace
}  // namespace bsub::util
