// Session state machine over the loopback hub: in-order reliable delivery,
// retransmission under injected loss, retry exhaustion, graceful close, and
// epoch hygiene.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "metrics/collector.h"
#include "net/clock.h"
#include "net/loopback.h"
#include "net/reactor.h"
#include "net/session.h"
#include "util/time.h"

namespace bsub::net {
namespace {

std::vector<std::uint8_t> frame_of(const std::string& text) {
  return std::vector<std::uint8_t>(text.begin(), text.end());
}

std::string text_of(std::span<const std::uint8_t> frame) {
  return std::string(frame.begin(), frame.end());
}

/// Two sessions joined by a hub, with all the reactor plumbing.
struct Pair {
  explicit Pair(LoopbackHub::Config hub_config = {},
                SessionConfig session_config = {})
      : reactor(clock), hub(hub_config) {
    LoopbackTransport& ta = hub.attach(1);
    LoopbackTransport& tb = hub.attach(2);
    a = std::make_unique<Session>(2, 1, session_config, ta, reactor,
                                  counters);
    b = std::make_unique<Session>(1, 1, session_config, tb, reactor,
                                  counters);
    ta.set_receive_handler(
        [this](Endpoint, std::span<const std::uint8_t> bytes) {
          a->on_datagram(bytes);
        });
    tb.set_receive_handler(
        [this](Endpoint, std::span<const std::uint8_t> bytes) {
          b->on_datagram(bytes);
        });
    a->set_frame_handler([this](std::span<const std::uint8_t> f) {
      received_by_a.push_back(text_of(f));
    });
    b->set_frame_handler([this](std::span<const std::uint8_t> f) {
      received_by_b.push_back(text_of(f));
    });
  }

  /// Drains the hub and fires retransmit deadlines until both sessions are
  /// idle or `cap` virtual time has passed.
  void pump(util::Time cap = 60 * util::kSecond) {
    for (;;) {
      hub.deliver_all();
      if (a->idle() && b->idle()) return;
      const util::Time next = reactor.next_deadline();
      if (next == util::kTimeMax || next > cap) return;
      reactor.advance_to(clock, next);
    }
  }

  ManualClock clock;
  Reactor reactor;
  metrics::TransportCounters counters;
  LoopbackHub hub;
  std::unique_ptr<Session> a;
  std::unique_ptr<Session> b;
  std::vector<std::string> received_by_a;
  std::vector<std::string> received_by_b;
};

TEST(Session, DeliversFramesInOfferOrder) {
  Pair p;
  EXPECT_TRUE(p.a->offer(frame_of("one")));
  EXPECT_TRUE(p.a->offer(frame_of("two")));
  EXPECT_TRUE(p.b->offer(frame_of("reply")));
  p.pump();
  EXPECT_EQ(p.received_by_b, (std::vector<std::string>{"one", "two"}));
  EXPECT_EQ(p.received_by_a, (std::vector<std::string>{"reply"}));
  EXPECT_TRUE(p.a->idle());
  EXPECT_EQ(p.a->retransmits(), 0u);
  EXPECT_EQ(p.counters.frames_received.load(), 3u);
}

TEST(Session, LargeFrameFragmentsAndReassembles) {
  SessionConfig config;
  config.mtu = 128;
  Pair p({.mtu = 128}, config);
  const std::string big(10000, 'x');
  EXPECT_TRUE(p.a->offer(frame_of(big)));
  p.pump();
  ASSERT_EQ(p.received_by_b.size(), 1u);
  EXPECT_EQ(p.received_by_b[0], big);
}

TEST(Session, RetransmitsThroughInjectedLoss) {
  LoopbackHub::Config hub_config;
  hub_config.loss_probability = 0.4;
  hub_config.loss_seed = 0xFEED;
  Pair p(hub_config);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(p.a->offer(frame_of("msg" + std::to_string(i))));
  }
  p.pump(10 * util::kMinute);
  ASSERT_EQ(p.received_by_b.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(p.received_by_b[static_cast<std::size_t>(i)],
              "msg" + std::to_string(i));
  }
  // Loss actually happened and was repaired.
  EXPECT_GT(p.hub.dropped_loss(), 0u);
  EXPECT_GT(p.a->retransmits() + p.b->retransmits(), 0u);
  EXPECT_GT(p.counters.frames_retransmitted.load(), 0u);
}

TEST(Session, BackoffGrowsBetweenRetries) {
  // Peer never answers: RTO deadlines must space out exponentially.
  ManualClock clock;
  Reactor reactor(clock);
  metrics::TransportCounters counters;
  LoopbackHub hub;  // b never attached: datagrams to it are unroutable
  LoopbackTransport& ta = hub.attach(1);
  SessionConfig config;
  config.rto_initial = 100;
  config.rto_backoff = 2.0;
  config.rto_max = 100000;
  config.max_retries = 4;
  Session s(2, 1, config, ta, reactor, counters);

  SessionCloseReason reason = SessionCloseReason::kNone;
  s.set_closed_handler([&](SessionCloseReason r) { reason = r; });
  EXPECT_TRUE(s.offer(frame_of("hello?")));

  std::vector<util::Time> gaps;
  util::Time last = 0;
  while (s.state() != SessionState::kClosed) {
    const util::Time next = reactor.next_deadline();
    ASSERT_NE(next, util::kTimeMax);
    gaps.push_back(next - last);
    last = next;
    reactor.advance_to(clock, next);
    hub.deliver_all();  // drops them all (unroutable)
  }
  // 100, 200, 400, 800, then the fifth timeout exceeds max_retries.
  ASSERT_EQ(gaps.size(), 5u);
  EXPECT_EQ(gaps[0], 100);
  EXPECT_EQ(gaps[1], 200);
  EXPECT_EQ(gaps[2], 400);
  EXPECT_EQ(gaps[3], 800);
  EXPECT_EQ(reason, SessionCloseReason::kPeerLost);
  EXPECT_EQ(counters.session_timeouts.load(), 1u);
}

TEST(Session, GracefulCloseHandshake) {
  Pair p;
  EXPECT_TRUE(p.a->offer(frame_of("payload")));
  p.pump();

  SessionCloseReason reason_a = SessionCloseReason::kNone;
  SessionCloseReason reason_b = SessionCloseReason::kNone;
  p.a->set_closed_handler([&](SessionCloseReason r) { reason_a = r; });
  p.b->set_closed_handler([&](SessionCloseReason r) { reason_b = r; });
  p.a->close();
  p.hub.deliver_all();
  EXPECT_EQ(p.a->state(), SessionState::kClosed);
  EXPECT_EQ(p.b->state(), SessionState::kClosed);
  EXPECT_EQ(reason_a, SessionCloseReason::kLocalClose);
  EXPECT_EQ(reason_b, SessionCloseReason::kPeerClose);
  // A closed session refuses new work.
  EXPECT_FALSE(p.a->offer(frame_of("too late")));
}

TEST(Session, StaleEpochDatagramsDropped) {
  Pair p;
  EXPECT_TRUE(p.a->offer(frame_of("current")));
  p.pump();

  // Craft a datagram from an older incarnation of a (epoch 0 < 1).
  std::vector<std::vector<std::uint8_t>> stale;
  fragment_frame(/*epoch=*/0, /*seq=*/0, frame_of("ghost"), 1400, stale);
  const std::uint64_t dropped_before = p.counters.datagrams_dropped.load();
  p.b->on_datagram(stale[0]);
  EXPECT_EQ(p.counters.datagrams_dropped.load(), dropped_before + 1);
  EXPECT_EQ(p.received_by_b, (std::vector<std::string>{"current"}));
}

TEST(Session, NewerEpochResetsReceiveState) {
  Pair p;
  EXPECT_TRUE(p.a->offer(frame_of("old world")));
  p.pump();
  ASSERT_EQ(p.received_by_b.size(), 1u);

  // The peer restarts with a higher epoch and reuses seq 0: b must accept
  // the new incarnation's stream from scratch.
  std::vector<std::vector<std::uint8_t>> fresh;
  fragment_frame(/*epoch=*/5, /*seq=*/0, frame_of("new world"), 1400, fresh);
  for (const auto& d : fresh) p.b->on_datagram(d);
  ASSERT_EQ(p.received_by_b.size(), 2u);
  EXPECT_EQ(p.received_by_b[1], "new world");
}

TEST(Session, BudgetChargesOfferOnceAndDropsWhenExhausted) {
  Pair p;
  // 300 bytes of budget: the first small frame fits, a big one does not.
  auto budget = std::make_shared<sim::Link>(
      /*duration=*/util::kSecond, /*bandwidth_bytes_per_second=*/300.0);
  p.a->set_budget(budget);
  EXPECT_TRUE(p.a->offer(frame_of(std::string(100, 'a'))));
  EXPECT_FALSE(p.a->offer(frame_of(std::string(400, 'b'))));
  EXPECT_TRUE(p.a->offer(frame_of(std::string(50, 'c'))));
  p.pump();
  ASSERT_EQ(p.received_by_b.size(), 2u);
  EXPECT_EQ(p.counters.frames_dropped.load(), 1u);
  EXPECT_EQ(budget->used_bytes(), 150u);
}

TEST(Session, AbortFiresClosedHandlerOnce) {
  Pair p;
  int closed = 0;
  p.a->set_closed_handler([&](SessionCloseReason) { ++closed; });
  p.a->abort(SessionCloseReason::kPeerLost);
  p.a->abort(SessionCloseReason::kPeerLost);
  p.a->close();
  EXPECT_EQ(closed, 1);
  EXPECT_EQ(p.a->state(), SessionState::kClosed);
}

}  // namespace
}  // namespace bsub::net
