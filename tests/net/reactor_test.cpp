// Reactor: virtual-time driving (advance_to), real-time dispatch over a
// pipe on both readiness backends, EINTR hardening, O(1) fd churn, and
// timer registration plumbing.
#include <gtest/gtest.h>

#include <pthread.h>
#include <csignal>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#if defined(__linux__)
#include <sys/eventfd.h>
#endif

#include "net/clock.h"
#include "net/reactor.h"
#include "util/time.h"

namespace bsub::net {
namespace {

std::vector<ReactorBackend> available_backends() {
  std::vector<ReactorBackend> out{ReactorBackend::kPoll};
  if (reactor_backend_available(ReactorBackend::kEpoll)) {
    out.push_back(ReactorBackend::kEpoll);
  }
  return out;
}

TEST(Reactor, AdvanceToFiresDeadlinesInOrderAndLandsOnTarget) {
  ManualClock clock;
  Reactor reactor(clock);
  std::vector<std::pair<int, util::Time>> fired;
  reactor.schedule_at(30, [&] { fired.push_back({3, reactor.now()}); });
  reactor.schedule_at(10, [&] { fired.push_back({1, reactor.now()}); });
  reactor.schedule_after(20, [&] { fired.push_back({2, reactor.now()}); });
  reactor.advance_to(clock, 100);
  // Each callback observes the clock standing at its own deadline — the
  // property the session RTO ladder and decay ticks rely on.
  ASSERT_EQ(fired.size(), 3u);
  EXPECT_EQ(fired[0], (std::pair<int, util::Time>{1, 10}));
  EXPECT_EQ(fired[1], (std::pair<int, util::Time>{2, 20}));
  EXPECT_EQ(fired[2], (std::pair<int, util::Time>{3, 30}));
  EXPECT_EQ(clock.now(), 100);
}

TEST(Reactor, CancelledTimerNeverFires) {
  ManualClock clock;
  Reactor reactor(clock);
  int fired = 0;
  const Reactor::TimerId id = reactor.schedule_after(10, [&] { ++fired; });
  EXPECT_TRUE(reactor.cancel(id));
  reactor.advance_to(clock, 50);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(reactor.pending_timers(), 0u);
}

TEST(Reactor, TimerChainsAcrossAdvances) {
  ManualClock clock;
  Reactor reactor(clock);
  std::vector<util::Time> ticks;
  std::function<void()> tick = [&] {
    ticks.push_back(reactor.now());
    if (ticks.size() < 3) reactor.schedule_after(100, tick);
  };
  reactor.schedule_after(100, tick);
  reactor.advance_to(clock, 1000);
  EXPECT_EQ(ticks, (std::vector<util::Time>{100, 200, 300}));
}

TEST(Reactor, RunOnceDispatchesReadableFd) {
  SteadyClock clock;
  Reactor reactor(clock);
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  int reads = 0;
  reactor.add_fd(fds[0], [&] {
    char buf[8];
    (void)!::read(fds[0], buf, sizeof(buf));
    ++reads;
    reactor.stop();
  });
  ASSERT_EQ(::write(fds[1], "x", 1), 1);
  while (!reactor.stopped()) {
    reactor.run_once(10 * util::kMillisecond);
  }
  EXPECT_EQ(reads, 1);
  reactor.remove_fd(fds[0]);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(Reactor, RunOnceFiresDueTimersWithoutFds) {
  SteadyClock clock;
  Reactor reactor(clock);
  int fired = 0;
  reactor.schedule_after(5, [&] { ++fired; });
  // A few poll rounds with a short cap must reach the deadline.
  for (int i = 0; i < 100 && fired == 0; ++i) {
    reactor.run_once(10 * util::kMillisecond);
  }
  EXPECT_EQ(fired, 1);
}

TEST(ReactorBackend_, ParseAndNamesRoundTrip) {
  EXPECT_EQ(parse_reactor_backend("poll"), ReactorBackend::kPoll);
  EXPECT_EQ(parse_reactor_backend("epoll"), ReactorBackend::kEpoll);
  EXPECT_EQ(parse_reactor_backend("auto"), ReactorBackend::kAuto);
  EXPECT_FALSE(parse_reactor_backend("EPOLL").has_value());
  EXPECT_FALSE(parse_reactor_backend("").has_value());
  EXPECT_FALSE(parse_reactor_backend("io_uring").has_value());
  for (const ReactorBackend b : available_backends()) {
    EXPECT_EQ(parse_reactor_backend(reactor_backend_name(b)), b);
  }
  EXPECT_TRUE(reactor_backend_available(ReactorBackend::kPoll));
  EXPECT_TRUE(reactor_backend_available(ReactorBackend::kAuto));
}

TEST(ReactorBackend_, AutoResolvesToAnAvailableBackend) {
  SteadyClock clock;
  Reactor reactor(clock);
  EXPECT_NE(reactor.backend(), ReactorBackend::kAuto);
  EXPECT_TRUE(reactor_backend_available(reactor.backend()));
#if defined(__linux__)
  // On Linux with no BSUB_REACTOR override, auto means epoll.
  if (::getenv("BSUB_REACTOR") == nullptr) {
    EXPECT_EQ(reactor.backend(), ReactorBackend::kEpoll);
  }
#endif
}

// Each available backend must dispatch a readable pipe end the same way.
TEST(ReactorBackend_, DispatchesReadableFdOnEveryBackend) {
  for (const ReactorBackend b : available_backends()) {
    SteadyClock clock;
    Reactor reactor(clock, b);
    ASSERT_EQ(reactor.backend(), b);
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    int reads = 0;
    reactor.add_fd(fds[0], [&] {
      char buf[8];
      (void)!::read(fds[0], buf, sizeof(buf));
      ++reads;
      reactor.stop();
    });
    ASSERT_EQ(::write(fds[1], "x", 1), 1);
    while (!reactor.stopped()) {
      reactor.run_once(10 * util::kMillisecond);
    }
    EXPECT_EQ(reads, 1) << reactor_backend_name(b);
    reactor.remove_fd(fds[0]);
    ::close(fds[0]);
    ::close(fds[1]);
  }
}

// Re-registering an fd replaces its callback; removing inside a callback is
// safe; removing an unknown fd is a no-op.
TEST(ReactorBackend_, ReRegisterReplacesAndSelfRemoveIsSafe) {
  for (const ReactorBackend b : available_backends()) {
    SteadyClock clock;
    Reactor reactor(clock, b);
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    int first = 0;
    int second = 0;
    reactor.add_fd(fds[0], [&] { ++first; });
    reactor.add_fd(fds[0], [&] {
      char buf[8];
      (void)!::read(fds[0], buf, sizeof(buf));
      ++second;
      reactor.remove_fd(fds[0]);  // self-remove mid-dispatch
      reactor.stop();
    });
    EXPECT_EQ(reactor.fd_count(), 1u);
    reactor.remove_fd(9999);  // never registered: no-op
    ASSERT_EQ(::write(fds[1], "x", 1), 1);
    while (!reactor.stopped()) {
      reactor.run_once(10 * util::kMillisecond);
    }
    EXPECT_EQ(first, 0) << reactor_backend_name(b);
    EXPECT_EQ(second, 1) << reactor_backend_name(b);
    EXPECT_EQ(reactor.fd_count(), 0u);
    ::close(fds[0]);
    ::close(fds[1]);
  }
}

// Satellite: fd registration must be O(1) on both backends. 10k fds
// registered, half removed from the middle (the old erase_if walked the
// whole vector per removal, i.e. O(n^2) for this loop), readiness still
// lands on the surviving registrations. Kept brisk enough that a quadratic
// regression shows up as a timeout-scale slowdown, not flakiness.
TEST(ReactorBackend_, TenThousandFdChurn) {
  for (const ReactorBackend b : available_backends()) {
    SteadyClock clock;
    Reactor reactor(clock, b);
    constexpr int kFds = 10000;
    std::vector<int> fds;
    fds.reserve(kFds);
#if defined(__linux__)
    for (int i = 0; i < kFds; ++i) {
      const int fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
      ASSERT_GE(fd, 0) << "eventfd " << i;
      fds.push_back(fd);
    }
#else
    // Portable fallback: pipes cost two fds each, so halve the count.
    for (int i = 0; i < kFds / 2; ++i) {
      int p[2];
      ASSERT_EQ(::pipe(p), 0);
      fds.push_back(p[0]);
      fds.push_back(p[1]);
    }
#endif
    std::atomic<int> hits{0};
    for (const int fd : fds) {
      reactor.add_fd(fd, [&hits] { ++hits; });
    }
    EXPECT_EQ(reactor.fd_count(), fds.size());
    // Remove every even registration (middle-of-array removals exercise the
    // swap-erase path), then re-add a quarter of them.
    for (std::size_t i = 0; i < fds.size(); i += 2) {
      reactor.remove_fd(fds[i]);
    }
    EXPECT_EQ(reactor.fd_count(), fds.size() / 2);
    for (std::size_t i = 0; i < fds.size(); i += 4) {
      reactor.add_fd(fds[i], [&hits] { ++hits; });
    }

#if defined(__linux__)
    // Make a few live and a few removed fds readable: only live ones fire.
    const std::uint64_t one = 1;
    ASSERT_EQ(::write(fds[1], &one, sizeof(one)), (ssize_t)sizeof(one));
    ASSERT_EQ(::write(fds[4], &one, sizeof(one)), (ssize_t)sizeof(one));
    ASSERT_EQ(::write(fds[2], &one, sizeof(one)), (ssize_t)sizeof(one));
    reactor.run_once(0);
    EXPECT_EQ(hits.load(), 2) << reactor_backend_name(b);
#endif

    for (const int fd : fds) {
      reactor.remove_fd(fd);
      ::close(fd);
    }
    EXPECT_EQ(reactor.fd_count(), 0u);
  }
}

// Satellite regression: a signal interrupting the wait must look like a
// timeout (nothing ready, due timers still fire), never a spurious error or
// a missed dispatch. Before the backend refactor a negative poll() return
// skipped dispatch silently but still had no EINTR retry contract.
TEST(ReactorBackend_, SignalDuringWaitIsHarmless) {
  // Install a no-op handler (no SA_RESTART, so the wait really returns
  // EINTR instead of being transparently restarted).
  struct sigaction sa{};
  sa.sa_handler = [](int) {};
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  struct sigaction old{};
  ASSERT_EQ(::sigaction(SIGUSR1, &sa, &old), 0);

  for (const ReactorBackend b : available_backends()) {
    SteadyClock clock;
    Reactor reactor(clock, b);
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    std::atomic<int> reads{0};
    std::atomic<int> timer_fired{0};
    reactor.add_fd(fds[0], [&] {
      char buf[8];
      (void)!::read(fds[0], buf, sizeof(buf));
      ++reads;
    });
    reactor.schedule_after(40, [&] { ++timer_fired; });

    std::atomic<bool> done{false};
    std::thread loop([&] {
      while (!done.load() && reads.load() == 0) {
        reactor.run_once(500 * util::kMillisecond);
      }
      // Drain remaining deadlines.
      while (!done.load() && timer_fired.load() == 0) {
        reactor.run_once(50 * util::kMillisecond);
      }
    });

    // Pepper the loop thread with signals while it blocks in the wait.
    for (int i = 0; i < 20; ++i) {
      pthread_kill(loop.native_handle(), SIGUSR1);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    ASSERT_EQ(::write(fds[1], "x", 1), 1);
    for (int i = 0; i < 500 && (reads.load() == 0 || timer_fired.load() == 0);
         ++i) {
      pthread_kill(loop.native_handle(), SIGUSR1);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    done = true;
    loop.join();

    EXPECT_EQ(reads.load(), 1) << reactor_backend_name(b);
    EXPECT_EQ(timer_fired.load(), 1) << reactor_backend_name(b);
    reactor.remove_fd(fds[0]);
    ::close(fds[0]);
    ::close(fds[1]);
  }
  ASSERT_EQ(::sigaction(SIGUSR1, &old, nullptr), 0);
}

// Satellite: the wait must not undershoot a timer deadline because of ms
// rounding — run_once with an unbounded cap sleeps to the deadline and
// fires it without a busy-spin of zero-timeout wakeups.
TEST(Reactor, DeadlineRoundingFiresWithoutSpin) {
  SteadyClock clock;
  Reactor reactor(clock);
  int fired = 0;
  reactor.schedule_after(30, [&] { ++fired; });
  int rounds = 0;
  while (fired == 0 && rounds < 50) {
    reactor.run_once(-1);  // "sleep to next deadline"
    ++rounds;
  }
  EXPECT_EQ(fired, 1);
  // One wake for the deadline plus at most a couple of scheduler hiccups —
  // a floor-rounded sleep would spin hundreds of times here.
  EXPECT_LE(rounds, 10);
}

TEST(Reactor, RebaseStartsAFreshVirtualEpisode) {
  ManualClock clock(5000);
  Reactor reactor(clock);
  std::vector<util::Time> fired;
  reactor.schedule_at(5010, [&] { fired.push_back(reactor.now()); });
  reactor.advance_to(clock, 6000);
  ASSERT_EQ(fired, (std::vector<util::Time>{5010}));
  ASSERT_EQ(reactor.pending_timers(), 0u);

  // A fleet lane reuses the reactor for an earlier contact: rewind both.
  clock.reset(100);
  reactor.rebase(100);
  EXPECT_EQ(reactor.now(), 100);
  EXPECT_EQ(reactor.next_deadline(), util::kTimeMax);
  reactor.schedule_after(25, [&] { fired.push_back(reactor.now()); });
  reactor.advance_to(clock, 200);
  EXPECT_EQ(fired, (std::vector<util::Time>{5010, 125}));
}

}  // namespace
}  // namespace bsub::net
