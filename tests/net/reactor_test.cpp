// Reactor: virtual-time driving (advance_to), real-time poll dispatch over
// a pipe, and timer registration plumbing.
#include <gtest/gtest.h>

#include <unistd.h>

#include <vector>

#include "net/clock.h"
#include "net/reactor.h"
#include "util/time.h"

namespace bsub::net {
namespace {

TEST(Reactor, AdvanceToFiresDeadlinesInOrderAndLandsOnTarget) {
  ManualClock clock;
  Reactor reactor(clock);
  std::vector<std::pair<int, util::Time>> fired;
  reactor.schedule_at(30, [&] { fired.push_back({3, reactor.now()}); });
  reactor.schedule_at(10, [&] { fired.push_back({1, reactor.now()}); });
  reactor.schedule_after(20, [&] { fired.push_back({2, reactor.now()}); });
  reactor.advance_to(clock, 100);
  // Each callback observes the clock standing at its own deadline — the
  // property the session RTO ladder and decay ticks rely on.
  ASSERT_EQ(fired.size(), 3u);
  EXPECT_EQ(fired[0], (std::pair<int, util::Time>{1, 10}));
  EXPECT_EQ(fired[1], (std::pair<int, util::Time>{2, 20}));
  EXPECT_EQ(fired[2], (std::pair<int, util::Time>{3, 30}));
  EXPECT_EQ(clock.now(), 100);
}

TEST(Reactor, CancelledTimerNeverFires) {
  ManualClock clock;
  Reactor reactor(clock);
  int fired = 0;
  const Reactor::TimerId id = reactor.schedule_after(10, [&] { ++fired; });
  EXPECT_TRUE(reactor.cancel(id));
  reactor.advance_to(clock, 50);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(reactor.pending_timers(), 0u);
}

TEST(Reactor, TimerChainsAcrossAdvances) {
  ManualClock clock;
  Reactor reactor(clock);
  std::vector<util::Time> ticks;
  std::function<void()> tick = [&] {
    ticks.push_back(reactor.now());
    if (ticks.size() < 3) reactor.schedule_after(100, tick);
  };
  reactor.schedule_after(100, tick);
  reactor.advance_to(clock, 1000);
  EXPECT_EQ(ticks, (std::vector<util::Time>{100, 200, 300}));
}

TEST(Reactor, RunOnceDispatchesReadableFd) {
  SteadyClock clock;
  Reactor reactor(clock);
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  int reads = 0;
  reactor.add_fd(fds[0], [&] {
    char buf[8];
    (void)!::read(fds[0], buf, sizeof(buf));
    ++reads;
    reactor.stop();
  });
  ASSERT_EQ(::write(fds[1], "x", 1), 1);
  while (!reactor.stopped()) {
    reactor.run_once(10 * util::kMillisecond);
  }
  EXPECT_EQ(reads, 1);
  reactor.remove_fd(fds[0]);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(Reactor, RunOnceFiresDueTimersWithoutFds) {
  SteadyClock clock;
  Reactor reactor(clock);
  int fired = 0;
  reactor.schedule_after(5, [&] { ++fired; });
  // A few poll rounds with a short cap must reach the deadline.
  for (int i = 0; i < 100 && fired == 0; ++i) {
    reactor.run_once(10 * util::kMillisecond);
  }
  EXPECT_EQ(fired, 1);
}

}  // namespace
}  // namespace bsub::net
