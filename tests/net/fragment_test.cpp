// Datagram codec and fragment reassembly: roundtrips at every MTU,
// hostile-input rejection, and inconsistent-fragment handling.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "net/fragment.h"
#include "util/errors.h"

namespace bsub::net {
namespace {

std::vector<std::uint8_t> test_frame(std::size_t n) {
  std::vector<std::uint8_t> frame(n);
  std::iota(frame.begin(), frame.end(), std::uint8_t{1});
  return frame;
}

std::vector<std::uint8_t> reassemble(
    const std::vector<std::vector<std::uint8_t>>& datagrams) {
  FragmentBuffer buffer;
  for (const auto& d : datagrams) {
    const DatagramView view = parse_datagram(d);
    EXPECT_EQ(view.kind, DatagramKind::kData);
    const auto result = buffer.add(view);
    EXPECT_TRUE(result == FragmentBuffer::Add::kIncomplete ||
                result == FragmentBuffer::Add::kComplete);
  }
  EXPECT_TRUE(buffer.complete());
  return std::move(buffer).take();
}

TEST(Fragment, SingleDatagramRoundtrip) {
  const auto frame = test_frame(10);
  std::vector<std::vector<std::uint8_t>> out;
  fragment_frame(7, 3, frame, 1400, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_LE(out[0].size(), 1400u);
  const DatagramView view = parse_datagram(out[0]);
  EXPECT_EQ(view.epoch, 7u);
  EXPECT_EQ(view.seq, 3u);
  EXPECT_EQ(view.frag_count, 1u);
  EXPECT_EQ(reassemble(out), frame);
}

TEST(Fragment, MultiFragmentRoundtripAtEveryAwkwardMtu) {
  const auto frame = test_frame(5000);
  for (std::size_t mtu : {kMinMtu, kMinMtu + 1, std::size_t{100},
                          std::size_t{1399}, std::size_t{1400}}) {
    std::vector<std::vector<std::uint8_t>> out;
    fragment_frame(1, 0, frame, mtu, out);
    ASSERT_GE(out.size(), 2u) << mtu;
    for (const auto& d : out) EXPECT_LE(d.size(), mtu) << mtu;
    EXPECT_EQ(reassemble(out), frame) << mtu;
  }
}

TEST(Fragment, OutOfOrderAndDuplicateFragmentsReassemble) {
  const auto frame = test_frame(2000);
  std::vector<std::vector<std::uint8_t>> out;
  fragment_frame(1, 0, frame, 100, out);
  ASSERT_GE(out.size(), 3u);

  FragmentBuffer buffer;
  // Deliver in reverse, then replay the first fragment as a duplicate.
  for (auto it = out.rbegin(); it != out.rend(); ++it) {
    buffer.add(parse_datagram(*it));
  }
  EXPECT_TRUE(buffer.complete());
  EXPECT_EQ(buffer.add(parse_datagram(out[0])),
            FragmentBuffer::Add::kDuplicate);
  EXPECT_EQ(buffer.bytes(), frame);
}

TEST(Fragment, GeometryMismatchRejected) {
  const auto frame_a = test_frame(2000);
  const auto frame_b = test_frame(3000);
  std::vector<std::vector<std::uint8_t>> a, b;
  fragment_frame(1, 0, frame_a, 100, a);
  fragment_frame(1, 0, frame_b, 100, b);

  FragmentBuffer buffer;
  EXPECT_EQ(buffer.add(parse_datagram(a[0])),
            FragmentBuffer::Add::kIncomplete);
  // Same seq, different frame geometry: must be rejected, not spliced.
  EXPECT_EQ(buffer.add(parse_datagram(b[1])), FragmentBuffer::Add::kMismatch);
}

TEST(Fragment, AckAndFinRoundtrip) {
  const DatagramView ack = parse_datagram(encode_ack(9, 42));
  EXPECT_EQ(ack.kind, DatagramKind::kAck);
  EXPECT_EQ(ack.epoch, 9u);
  EXPECT_EQ(ack.ack_next, 42u);

  const DatagramView fin = parse_datagram(encode_fin(9, false));
  EXPECT_EQ(fin.kind, DatagramKind::kFin);
  const DatagramView fin_ack = parse_datagram(encode_fin(9, true));
  EXPECT_EQ(fin_ack.kind, DatagramKind::kFinAck);
}

TEST(Fragment, HostileDatagramsRejectedTyped) {
  auto good = encode_ack(1, 1);

  auto bad_magic = good;
  bad_magic[0] ^= 0xFF;
  EXPECT_THROW(parse_datagram(bad_magic), util::CodecError);

  auto bad_version = good;
  bad_version[1] ^= 0xFF;
  EXPECT_THROW(parse_datagram(bad_version), util::CodecError);

  auto bad_kind = good;
  bad_kind[2] = 0x99;
  EXPECT_THROW(parse_datagram(bad_kind), util::CodecError);

  auto trailing = good;
  trailing.push_back(0);
  EXPECT_THROW(parse_datagram(trailing), util::CodecError);

  EXPECT_THROW(parse_datagram({}), util::CodecError);
  for (std::size_t len = 0; len < good.size(); ++len) {
    std::vector<std::uint8_t> cut(good.begin(),
                                  good.begin() + static_cast<long>(len));
    EXPECT_THROW(parse_datagram(cut), util::CodecError) << len;
  }
}

TEST(Fragment, LyingGeometryRejectedAtParse) {
  // A DATA datagram whose offset points past the claimed frame length must
  // be rejected before any buffer write.
  const auto frame = test_frame(100);
  std::vector<std::vector<std::uint8_t>> out;
  fragment_frame(1, 0, frame, 1400, out);
  // Re-craft: bump the offset varint region by corrupting payload-adjacent
  // header bytes until parse either rejects or keeps bounds intact.
  FragmentBuffer buffer;
  for (std::size_t i = 3; i < out[0].size(); ++i) {
    auto mutated = out[0];
    mutated[i] ^= 0xFF;
    try {
      const DatagramView v = parse_datagram(mutated);
      if (v.kind != DatagramKind::kData) continue;
      // Whatever parsed must satisfy the documented bounds.
      EXPECT_LE(v.offset + v.payload.size(), v.frame_len);
      EXPECT_LT(v.frag_index, v.frag_count);
      EXPECT_LE(v.frame_len, kMaxFrameBytes);
    } catch (const util::CodecError&) {
      // typed rejection is fine
    }
  }
}

TEST(Fragment, MinMtuEnforcedByContract) {
  // kMinMtu leaves room for at least a few payload bytes per datagram even
  // with worst-case headers.
  const auto frame = test_frame(64);
  std::vector<std::vector<std::uint8_t>> out;
  fragment_frame(0xFFFFFFFF, ~0ULL >> 1, frame, kMinMtu, out);
  EXPECT_EQ(reassemble(out), frame);
}

}  // namespace
}  // namespace bsub::net
