// Fleet UDP plane: config validation, the node-id mux header, shard-socket
// and per-node-socket modes, batched (sendmmsg/recvmmsg) and single-syscall
// paths — all over real loopback sockets. Environments without loopback
// make the shard constructor throw; those tests skip rather than fail.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "net/clock.h"
#include "net/fleet/fleet_udp.h"
#include "net/reactor.h"
#include "util/errors.h"
#include "util/time.h"

namespace bsub::net {
namespace {

constexpr util::Time kDeadline = 10 * util::kSecond;

TEST(FleetUdpConfig, ValidateRejectsUnsupportedCombinations) {
  FleetUdpConfig ok;
  ok.batched_io = fleet_udp_batched_available();
  EXPECT_NO_THROW(ok.validate());

  FleetUdpConfig both = ok;
  both.batched_io = true;
  both.per_node_sockets = true;
  EXPECT_THROW(both.validate(), util::ConfigError);

  FleetUdpConfig burst = ok;
  burst.batch_burst = 0;
  EXPECT_THROW(burst.validate(), util::ConfigError);
  burst.batch_burst = 100000;
  EXPECT_THROW(burst.validate(), util::ConfigError);

  FleetUdpConfig mtu = ok;
  mtu.mtu = 8;
  EXPECT_THROW(mtu.validate(), util::ConfigError);
}

struct Plane {
  SteadyClock clock;
  Reactor reactor;
  std::vector<std::unique_ptr<FleetUdpShard>> shards;

  Plane(std::size_t shard_count, FleetUdpConfig config,
        ReactorBackend backend = ReactorBackend::kAuto)
      : reactor(clock, backend) {
    for (std::size_t s = 0; s < shard_count; ++s) {
      shards.push_back(
          std::make_unique<FleetUdpShard>(reactor, s, shard_count, config));
    }
  }
};

using Received = std::pair<Endpoint, std::vector<std::uint8_t>>;

void pump_until(Plane& p, const std::function<bool()>& done) {
  const util::Time start = p.clock.now();
  while (!done() && p.clock.now() - start < kDeadline) {
    p.reactor.run_once(20 * util::kMillisecond);
    for (auto& s : p.shards) s->flush();
  }
}

void roundtrip_case(FleetUdpConfig config, std::size_t shard_count) {
  std::unique_ptr<Plane> p;
  try {
    p = std::make_unique<Plane>(shard_count, config);
  } catch (const std::runtime_error& e) {
    GTEST_SKIP() << "no loopback sockets here: " << e.what();
  }
  // Nodes 0..3 homed round-robin across the shards.
  std::vector<FleetPort*> ports;
  for (std::uint32_t n = 0; n < 4; ++n) {
    ports.push_back(&p->shards[n % shard_count]->add_node(n));
  }
  std::optional<Received> got;
  ports[3]->set_receive_handler(
      [&](Endpoint from, std::span<const std::uint8_t> bytes) {
        got = {from, std::vector<std::uint8_t>(bytes.begin(), bytes.end())};
      });

  const std::vector<std::uint8_t> payload = {0xA, 0xB, 0xC, 0xD, 0xE};
  ASSERT_TRUE(ports[0]->send(/*to=*/3, payload));
  // Oversize datagrams are refused locally, never truncated on the wire.
  EXPECT_FALSE(ports[0]->send(
      3, std::vector<std::uint8_t>(ports[0]->max_datagram_bytes() + 1)));

  pump_until(*p, [&] { return got.has_value(); });
  ASSERT_TRUE(got.has_value()) << "datagram never arrived";
  EXPECT_EQ(got->second, payload);
  EXPECT_EQ(got->first, 0u);  // endpoints are node ids

  std::uint64_t out = 0, in = 0;
  for (auto& s : p->shards) {
    out += s->datagrams_out();
    in += s->datagrams_in();
  }
  EXPECT_EQ(out, 1u);
  EXPECT_EQ(in, 1u);
}

TEST(FleetUdp, SingleSyscallShardSockets) {
  FleetUdpConfig config;
  config.base_port = 46110;
  config.batched_io = false;
  roundtrip_case(config, 2);
}

TEST(FleetUdp, BatchedShardSockets) {
  if (!fleet_udp_batched_available()) {
    GTEST_SKIP() << "sendmmsg/recvmmsg unavailable on this platform";
  }
  FleetUdpConfig config;
  config.base_port = 46130;
  config.batched_io = true;
  config.batch_burst = 8;
  roundtrip_case(config, 2);
}

TEST(FleetUdp, PerNodeSocketBaseline) {
  FleetUdpConfig config;
  config.base_port = 46150;
  config.batched_io = false;
  config.per_node_sockets = true;
  roundtrip_case(config, 1);
}

TEST(FleetUdp, BatchedBurstCrossesShards) {
  // More datagrams than one burst, both directions at once, across two
  // shard sockets: exercises the sendmmsg queue flush and the recvmmsg
  // scatter loop rather than the one-datagram happy path.
  if (!fleet_udp_batched_available()) {
    GTEST_SKIP() << "sendmmsg/recvmmsg unavailable on this platform";
  }
  FleetUdpConfig config;
  config.base_port = 46170;
  config.batched_io = true;
  config.batch_burst = 4;
  std::unique_ptr<Plane> p;
  try {
    p = std::make_unique<Plane>(2, config);
  } catch (const std::runtime_error& e) {
    GTEST_SKIP() << "no loopback sockets here: " << e.what();
  }
  FleetPort& a = p->shards[0]->add_node(0);  // shard 0
  FleetPort& b = p->shards[1]->add_node(1);  // shard 1
  std::vector<std::vector<std::uint8_t>> at_a, at_b;
  a.set_receive_handler([&](Endpoint, std::span<const std::uint8_t> bytes) {
    at_a.emplace_back(bytes.begin(), bytes.end());
  });
  b.set_receive_handler([&](Endpoint, std::span<const std::uint8_t> bytes) {
    at_b.emplace_back(bytes.begin(), bytes.end());
  });

  constexpr std::size_t kCount = 25;  // 6+ bursts of 4
  for (std::uint8_t i = 0; i < kCount; ++i) {
    ASSERT_TRUE(a.send(1, std::vector<std::uint8_t>{std::uint8_t(i), 1}));
    ASSERT_TRUE(b.send(0, std::vector<std::uint8_t>{std::uint8_t(i), 2}));
  }
  pump_until(*p,
             [&] { return at_a.size() >= kCount && at_b.size() >= kCount; });
  ASSERT_EQ(at_a.size(), kCount);
  ASSERT_EQ(at_b.size(), kCount);
  // UDP order within one loopback socket pair is preserved in practice,
  // but only assert contents as a multiset-by-index.
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(at_b[i][1], 1);  // everything b saw came from a
    EXPECT_EQ(at_a[i][1], 2);
  }
  // Batching actually batched: fewer send syscalls than datagrams.
  const std::uint64_t syscalls =
      p->shards[0]->send_syscalls() + p->shards[1]->send_syscalls();
  EXPECT_LT(syscalls, 2 * kCount);
  EXPECT_EQ(p->shards[0]->datagrams_out() + p->shards[1]->datagrams_out(),
            2 * kCount);
}

TEST(FleetUdp, MalformedAndUnroutableDatagramsAreCounted) {
  FleetUdpConfig config;
  config.base_port = 46190;
  config.batched_io = false;
  std::unique_ptr<Plane> p;
  try {
    p = std::make_unique<Plane>(1, config);
  } catch (const std::runtime_error& e) {
    GTEST_SKIP() << "no loopback sockets here: " << e.what();
  }
  FleetPort& a = p->shards[0]->add_node(0);
  bool delivered = false;
  a.set_receive_handler(
      [&](Endpoint, std::span<const std::uint8_t>) { delivered = true; });

  // A datagram for a node this shard has never heard of: well-formed wire
  // bytes, no route. Send it from node 0's port to node 7 (homed on this
  // same single shard but never added).
  ASSERT_TRUE(a.send(7, std::vector<std::uint8_t>{1, 2, 3}));
  pump_until(*p, [&] { return p->shards[0]->unroutable_drops() >= 1; });
  EXPECT_EQ(p->shards[0]->unroutable_drops(), 1u);
  EXPECT_FALSE(delivered);
}

}  // namespace
}  // namespace bsub::net
