// NodeRuntime over the loopback hub: a full B-SUB encounter (HELLO, filter
// exchange, message transfer) through real sessions, passive opens, decay
// ticks, and teardown.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "engine/node.h"
#include "metrics/collector.h"
#include "net/clock.h"
#include "net/loopback.h"
#include "net/node_runtime.h"
#include "net/reactor.h"
#include "util/time.h"

namespace bsub::net {
namespace {

struct Mesh {
  explicit Mesh(std::size_t nodes, RuntimeConfig config = {}) {
    reactor = std::make_unique<Reactor>(clock);
    hub = std::make_unique<LoopbackHub>();
    for (std::size_t n = 0; n < nodes; ++n) {
      runtimes.push_back(std::make_unique<NodeRuntime>(
          n, config, hub->attach(n), *reactor, counters));
    }
  }

  ManualClock clock;
  metrics::TransportCounters counters;
  std::unique_ptr<Reactor> reactor;
  std::unique_ptr<LoopbackHub> hub;
  std::vector<std::unique_ptr<NodeRuntime>> runtimes;
};

engine::ContentMessage message(std::uint64_t id, const std::string& key,
                               util::Time now) {
  engine::ContentMessage m;
  m.id = id;
  m.key = key;
  m.body = {1, 2, 3};
  m.created = now;
  m.ttl = util::kHour;
  return m;
}

TEST(NodeRuntime, ContactDeliversPublishedMessage) {
  Mesh mesh(2);
  std::vector<std::uint64_t> delivered;
  mesh.runtimes[1]->node().subscribe("news");
  mesh.runtimes[1]->node().set_delivery_handler(
      [&](const engine::ContentMessage& m, util::Time) {
        delivered.push_back(m.id);
      });
  mesh.runtimes[0]->node().publish(message(42, "news", 0), 0);

  mesh.runtimes[0]->connect(1);
  mesh.hub->deliver_all();

  EXPECT_EQ(delivered, (std::vector<std::uint64_t>{42}));
  // The passive side opened its own session and said HELLO back.
  EXPECT_TRUE(mesh.runtimes[1]->has_session(0));
  EXPECT_EQ(mesh.counters.session_opens.load(), 2u);
}

TEST(NodeRuntime, CloseTearsDownBothSides) {
  Mesh mesh(2);
  mesh.runtimes[0]->connect(1);
  mesh.hub->deliver_all();
  ASSERT_TRUE(mesh.runtimes[0]->has_session(1));
  ASSERT_TRUE(mesh.runtimes[1]->has_session(0));

  std::vector<std::pair<Endpoint, SessionCloseReason>> closed;
  mesh.runtimes[0]->set_session_closed_handler(
      [&](Endpoint peer, SessionCloseReason r) {
        closed.push_back({peer, r});
      });
  mesh.runtimes[0]->close_all();
  mesh.hub->deliver_all();
  EXPECT_FALSE(mesh.runtimes[0]->has_session(1));
  EXPECT_FALSE(mesh.runtimes[1]->has_session(0));
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed[0].first, Endpoint{1});
  EXPECT_EQ(closed[0].second, SessionCloseReason::kLocalClose);
  EXPECT_TRUE(mesh.runtimes[0]->all_sessions_idle());
}

TEST(NodeRuntime, RepeatContactsUseFreshEpochs) {
  Mesh mesh(2);
  Session& first = mesh.runtimes[0]->connect(1);
  const std::uint32_t epoch1 = first.local_epoch();
  mesh.hub->deliver_all();
  mesh.runtimes[0]->close_all();
  mesh.runtimes[1]->close_all();
  mesh.hub->deliver_all();

  Session& second = mesh.runtimes[0]->connect(1);
  EXPECT_GT(second.local_epoch(), epoch1);
}

TEST(NodeRuntime, DecayTickPurgesExpiredMessages) {
  RuntimeConfig config;
  config.decay_tick = util::kMinute;
  Mesh mesh(1, config);
  engine::ContentMessage m = message(7, "news", 0);
  m.ttl = 2 * util::kMinute;
  mesh.runtimes[0]->node().publish(std::move(m), 0);
  EXPECT_EQ(mesh.runtimes[0]->node().produced_count(), 1u);

  mesh.reactor->advance_to(mesh.clock, 3 * util::kMinute);
  EXPECT_EQ(mesh.runtimes[0]->node().produced_count(), 0u);
}

TEST(NodeRuntime, GarbageDatagramDoesNotOpenSession) {
  Mesh mesh(2);
  LoopbackTransport& rogue = mesh.hub->attach(99);
  const std::vector<std::uint8_t> garbage = {0xDE, 0xAD, 0xBE, 0xEF};
  ASSERT_TRUE(rogue.send(0, garbage));
  // A well-formed non-DATA datagram from a stranger is dropped too.
  ASSERT_TRUE(rogue.send(0, encode_ack(1, 1)));
  mesh.hub->deliver_all();
  EXPECT_EQ(mesh.runtimes[0]->session_count(), 0u);
  EXPECT_EQ(mesh.counters.datagrams_dropped.load(), 2u);
}

TEST(NodeRuntime, BrokerRelayPathMovesCustodyOverTransport) {
  // producer 0 -> broker 1 -> consumer 2, in two separate contacts: the
  // paper's store-and-forward relay riding real sessions.
  Mesh mesh(3);
  mesh.runtimes[1]->node().set_broker(true);
  std::vector<std::uint64_t> delivered;
  mesh.runtimes[2]->node().subscribe("news");
  mesh.runtimes[2]->node().set_delivery_handler(
      [&](const engine::ContentMessage& m, util::Time) {
        delivered.push_back(m.id);
      });

  mesh.runtimes[0]->node().publish(message(7, "news", 0), 0);

  // Contact A: producer meets broker; the genuine filter the broker learned
  // from an earlier consumer encounter is what routes pickup, so run the
  // consumer contact first.
  mesh.runtimes[2]->connect(1);
  mesh.hub->deliver_all();
  mesh.runtimes[2]->close(1);
  mesh.runtimes[1]->close(2);
  mesh.hub->deliver_all();

  mesh.runtimes[0]->connect(1);
  mesh.hub->deliver_all();
  EXPECT_GT(mesh.runtimes[1]->node().carried_count(), 0u);

  mesh.runtimes[0]->close(1);
  mesh.runtimes[1]->close(0);
  mesh.hub->deliver_all();

  // Contact B: broker meets consumer and hands the message over.
  mesh.runtimes[1]->connect(2);
  mesh.hub->deliver_all();
  EXPECT_EQ(delivered, (std::vector<std::uint64_t>{7}));
}

}  // namespace
}  // namespace bsub::net
