// Hierarchical timer wheel: deterministic firing order, cancellation
// (including across level cascades and in the overflow bucket), level
// promotion, slot wraparound, and the overflow horizon — driven both
// directly and through a ManualClock-backed Reactor.
#include <gtest/gtest.h>

#include <vector>

#include "net/clock.h"
#include "net/reactor.h"
#include "net/timer_wheel.h"
#include "util/time.h"

namespace bsub::net {
namespace {

TEST(TimerWheel, FiresInDeadlineThenScheduleOrder) {
  TimerWheel wheel;
  std::vector<int> fired;
  wheel.schedule(30, [&] { fired.push_back(3); });
  wheel.schedule(10, [&] { fired.push_back(1); });
  wheel.schedule(20, [&] { fired.push_back(2); });
  wheel.schedule(10, [&] { fired.push_back(11); });  // same deadline, later id
  EXPECT_EQ(wheel.pending(), 4u);
  EXPECT_EQ(wheel.advance(25), 3u);
  EXPECT_EQ(fired, (std::vector<int>{1, 11, 2}));
  EXPECT_EQ(wheel.advance(30), 1u);
  EXPECT_EQ(fired, (std::vector<int>{1, 11, 2, 3}));
  EXPECT_EQ(wheel.pending(), 0u);
}

TEST(TimerWheel, CancelPreventsFiring) {
  TimerWheel wheel;
  int fired = 0;
  const TimerWheel::TimerId id = wheel.schedule(10, [&] { ++fired; });
  wheel.schedule(10, [&] { ++fired; });
  EXPECT_TRUE(wheel.cancel(id));
  EXPECT_FALSE(wheel.cancel(id));  // already dead
  EXPECT_FALSE(wheel.cancel(TimerWheel::kInvalidTimer));
  wheel.advance(100);
  EXPECT_EQ(fired, 1);
}

TEST(TimerWheel, NextDeadlineTracksEarliestPending) {
  TimerWheel wheel;
  EXPECT_EQ(wheel.next_deadline(), util::kTimeMax);
  const auto far = wheel.schedule(500, [] {});
  wheel.schedule(90, [] {});
  EXPECT_EQ(wheel.next_deadline(), 90);
  wheel.advance(90);
  EXPECT_EQ(wheel.next_deadline(), 500);
  wheel.cancel(far);
  EXPECT_EQ(wheel.next_deadline(), util::kTimeMax);
}

TEST(TimerWheel, LongDeadlinesPromoteAcrossLevels) {
  // Deadlines spanning every wheel level (1ms .. days) fire exactly once,
  // at or after their deadline, in deadline order.
  TimerWheel wheel;
  std::vector<util::Time> fired;
  const std::vector<util::Time> deadlines = {
      1,    63,   64,    65,     4095,      4096,
      4097, 262143, 262144, 1'000'000, 16'777'216, 100'000'000};
  for (util::Time d : deadlines) {
    wheel.schedule(d, [&, d] { fired.push_back(d); });
  }
  // Advance in awkward uneven hops.
  for (util::Time t = 0; t <= 100'000'001; t += 997'003) wheel.advance(t);
  wheel.advance(100'000'001);
  EXPECT_EQ(fired, deadlines);
  EXPECT_EQ(wheel.pending(), 0u);
}

TEST(TimerWheel, OverflowEntriesSurviveHugeJumps) {
  // A deadline beyond the wheel's ~4.7h horizon (64^4 ms) parks in the
  // overflow bucket; one giant advance must still find and fire it.
  constexpr util::Time kHorizon = 64LL * 64 * 64 * 64;
  TimerWheel wheel;
  int fired = 0;
  wheel.schedule(kHorizon * 3, [&] { ++fired; });
  EXPECT_EQ(wheel.next_deadline(), kHorizon * 3);
  wheel.advance(kHorizon * 4);
  EXPECT_EQ(fired, 1);
}

TEST(TimerWheel, CallbackMayRescheduleWithinSameAdvance) {
  // The contract: timers scheduled during an advance whose deadlines are
  // already due fire within that same call.
  TimerWheel wheel;
  int fired = 0;
  std::function<void()> tick = [&] {
    if (++fired < 5) {
      wheel.schedule(static_cast<util::Time>(fired + 1) * 10, tick);
    }
  };
  wheel.schedule(10, tick);
  EXPECT_EQ(wheel.advance(1000), 5u);
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(wheel.pending(), 0u);
}

TEST(TimerWheel, OverdueScheduleFiresOnNextAdvance) {
  TimerWheel wheel;
  wheel.advance(100);
  int fired = 0;
  wheel.schedule(50, [&] { ++fired; });  // already past due
  wheel.advance(100);
  EXPECT_EQ(fired, 1);
}

TEST(TimerWheel, CancelSurvivesCascadeAcrossLevelBoundaries) {
  // A deadline parked in a coarse level is re-placed into finer slots as
  // the wheel approaches it. Cancelling BETWEEN those cascades must stick:
  // the tombstone travels with the entry, and the timer never fires.
  constexpr util::Time kDeadline = 5000;  // level 2 (4.1s granularity) at t=0
  TimerWheel wheel;
  int fired = 0;
  const auto id = wheel.schedule(kDeadline, [&] { ++fired; });
  wheel.schedule(kDeadline + 7, [&] { ++fired; });  // survivor control
  // First cascade: cross into level-1 territory, then cancel.
  wheel.advance(4500);
  EXPECT_TRUE(wheel.cancel(id));
  EXPECT_FALSE(wheel.cancel(id));
  // Second cascade plus the firing pass.
  wheel.advance(4990);
  wheel.advance(kDeadline + 10);
  EXPECT_EQ(fired, 1);  // only the survivor
  EXPECT_EQ(wheel.pending(), 0u);
}

TEST(TimerWheel, CancelAtEveryCascadeDepth) {
  // One timer per wheel level plus overflow; cancel each after advancing
  // to just before its deadline (maximum cascade depth), none may fire.
  constexpr util::Time kHorizon = 64LL * 64 * 64 * 64;
  const std::vector<util::Time> deadlines = {40,     3000,       200'000,
                                             10'000'000, kHorizon * 2};
  TimerWheel wheel;
  int fired = 0;
  std::vector<TimerWheel::TimerId> ids;
  for (util::Time d : deadlines) {
    ids.push_back(wheel.schedule(d, [&] { ++fired; }));
  }
  for (std::size_t i = 0; i < deadlines.size(); ++i) {
    wheel.advance(deadlines[i] - 1);
    EXPECT_TRUE(wheel.cancel(ids[i])) << "deadline " << deadlines[i];
    wheel.advance(deadlines[i] + 1);
  }
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(wheel.pending(), 0u);
  EXPECT_EQ(wheel.next_deadline(), util::kTimeMax);
}

TEST(TimerWheel, SlotIndexWraparound) {
  // Start the wheel late enough that level-0 slot indices wrap modulo 64
  // between "now" and the deadlines; ordering must be unaffected.
  TimerWheel wheel(60);  // slot 60 of 64: deadlines 61..130 wrap the level
  std::vector<util::Time> fired;
  for (util::Time d : {61, 63, 64, 65, 100, 123, 124, 130}) {
    wheel.schedule(d, [&, d] { fired.push_back(d); });
  }
  wheel.advance(130);
  EXPECT_EQ(fired,
            (std::vector<util::Time>{61, 63, 64, 65, 100, 123, 124, 130}));
}

TEST(TimerWheel, FarFutureCancelInOverflowBeforeAndAfterRecascade) {
  constexpr util::Time kHorizon = 64LL * 64 * 64 * 64;
  TimerWheel wheel;
  int fired = 0;
  // Cancelled while still parked in the overflow bucket.
  const auto parked = wheel.schedule(kHorizon * 5, [&] { ++fired; });
  // Cancelled after the horizon crossing re-cascaded it into the wheel.
  const auto cascaded = wheel.schedule(kHorizon + 500, [&] { ++fired; });
  // Far-future survivor: must still fire after both cancellations.
  wheel.schedule(kHorizon * 5 + 1, [&] { ++fired; });
  EXPECT_TRUE(wheel.cancel(parked));
  wheel.advance(kHorizon + 100);  // pulls `cascaded` out of overflow
  EXPECT_TRUE(wheel.cancel(cascaded));
  wheel.advance(kHorizon * 6);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(wheel.pending(), 0u);
}

TEST(TimerWheel, VeryFarFutureDeadlineDoesNotOverflowArithmetic) {
  // A deadline centuries out (but far from kTimeMax, which is the "no
  // deadline" sentinel) parks and is still cancellable and queryable.
  constexpr util::Time kCenturies = 400LL * 365 * 24 * 3600 * 1000;
  TimerWheel wheel;
  int fired = 0;
  const auto id = wheel.schedule(kCenturies, [&] { ++fired; });
  EXPECT_EQ(wheel.next_deadline(), kCenturies);
  wheel.advance(10'000'000);
  EXPECT_EQ(fired, 0);
  EXPECT_TRUE(wheel.cancel(id));
  wheel.advance(20'000'000);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(wheel.pending(), 0u);
}

TEST(TimerWheel, ManualClockReactorCancelAcrossLevels) {
  // The same cancellation discipline driven the way the runtime drives it:
  // a Reactor over a ManualClock, with a callback cancelling a timer that
  // currently sits in a coarser level.
  ManualClock clock;
  Reactor reactor(clock);
  std::vector<util::Time> fired;
  Reactor::TimerId victim =
      reactor.schedule_at(300'000, [&] { fired.push_back(reactor.now()); });
  reactor.schedule_at(100, [&] {
    fired.push_back(reactor.now());
    EXPECT_TRUE(reactor.cancel(victim));
    // Replacement beyond the original, proving the wheel stays coherent.
    reactor.schedule_at(400'000, [&] { fired.push_back(reactor.now()); });
  });
  reactor.advance_to(clock, 500'000);
  EXPECT_EQ(fired, (std::vector<util::Time>{100, 400'000}));
  EXPECT_EQ(reactor.pending_timers(), 0u);
}

}  // namespace
}  // namespace bsub::net
