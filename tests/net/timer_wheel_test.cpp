// Hierarchical timer wheel: deterministic firing order, cancellation,
// level promotion, and the overflow horizon.
#include <gtest/gtest.h>

#include <vector>

#include "net/timer_wheel.h"
#include "util/time.h"

namespace bsub::net {
namespace {

TEST(TimerWheel, FiresInDeadlineThenScheduleOrder) {
  TimerWheel wheel;
  std::vector<int> fired;
  wheel.schedule(30, [&] { fired.push_back(3); });
  wheel.schedule(10, [&] { fired.push_back(1); });
  wheel.schedule(20, [&] { fired.push_back(2); });
  wheel.schedule(10, [&] { fired.push_back(11); });  // same deadline, later id
  EXPECT_EQ(wheel.pending(), 4u);
  EXPECT_EQ(wheel.advance(25), 3u);
  EXPECT_EQ(fired, (std::vector<int>{1, 11, 2}));
  EXPECT_EQ(wheel.advance(30), 1u);
  EXPECT_EQ(fired, (std::vector<int>{1, 11, 2, 3}));
  EXPECT_EQ(wheel.pending(), 0u);
}

TEST(TimerWheel, CancelPreventsFiring) {
  TimerWheel wheel;
  int fired = 0;
  const TimerWheel::TimerId id = wheel.schedule(10, [&] { ++fired; });
  wheel.schedule(10, [&] { ++fired; });
  EXPECT_TRUE(wheel.cancel(id));
  EXPECT_FALSE(wheel.cancel(id));  // already dead
  EXPECT_FALSE(wheel.cancel(TimerWheel::kInvalidTimer));
  wheel.advance(100);
  EXPECT_EQ(fired, 1);
}

TEST(TimerWheel, NextDeadlineTracksEarliestPending) {
  TimerWheel wheel;
  EXPECT_EQ(wheel.next_deadline(), util::kTimeMax);
  const auto far = wheel.schedule(500, [] {});
  wheel.schedule(90, [] {});
  EXPECT_EQ(wheel.next_deadline(), 90);
  wheel.advance(90);
  EXPECT_EQ(wheel.next_deadline(), 500);
  wheel.cancel(far);
  EXPECT_EQ(wheel.next_deadline(), util::kTimeMax);
}

TEST(TimerWheel, LongDeadlinesPromoteAcrossLevels) {
  // Deadlines spanning every wheel level (1ms .. days) fire exactly once,
  // at or after their deadline, in deadline order.
  TimerWheel wheel;
  std::vector<util::Time> fired;
  const std::vector<util::Time> deadlines = {
      1,    63,   64,    65,     4095,      4096,
      4097, 262143, 262144, 1'000'000, 16'777'216, 100'000'000};
  for (util::Time d : deadlines) {
    wheel.schedule(d, [&, d] { fired.push_back(d); });
  }
  // Advance in awkward uneven hops.
  for (util::Time t = 0; t <= 100'000'001; t += 997'003) wheel.advance(t);
  wheel.advance(100'000'001);
  EXPECT_EQ(fired, deadlines);
  EXPECT_EQ(wheel.pending(), 0u);
}

TEST(TimerWheel, OverflowEntriesSurviveHugeJumps) {
  // A deadline beyond the wheel's ~4.7h horizon (64^4 ms) parks in the
  // overflow bucket; one giant advance must still find and fire it.
  constexpr util::Time kHorizon = 64LL * 64 * 64 * 64;
  TimerWheel wheel;
  int fired = 0;
  wheel.schedule(kHorizon * 3, [&] { ++fired; });
  EXPECT_EQ(wheel.next_deadline(), kHorizon * 3);
  wheel.advance(kHorizon * 4);
  EXPECT_EQ(fired, 1);
}

TEST(TimerWheel, CallbackMayRescheduleWithinSameAdvance) {
  // The contract: timers scheduled during an advance whose deadlines are
  // already due fire within that same call.
  TimerWheel wheel;
  int fired = 0;
  std::function<void()> tick = [&] {
    if (++fired < 5) {
      wheel.schedule(static_cast<util::Time>(fired + 1) * 10, tick);
    }
  };
  wheel.schedule(10, tick);
  EXPECT_EQ(wheel.advance(1000), 5u);
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(wheel.pending(), 0u);
}

TEST(TimerWheel, OverdueScheduleFiresOnNextAdvance) {
  TimerWheel wheel;
  wheel.advance(100);
  int fired = 0;
  wheel.schedule(50, [&] { ++fired; });  // already past due
  wheel.advance(100);
  EXPECT_EQ(fired, 1);
}

}  // namespace
}  // namespace bsub::net
