// FleetRuntime: the deterministic loopback engine must be bit-identical to
// the single-reactor ContactOrchestrator (and therefore to the engine
// harness); the real-time UDP engine must complete every contact and
// deliver end to end over real sockets.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

#include "core/df_tuning.h"
#include "engine/trace_runner.h"
#include "net/fleet/fleet_runtime.h"
#include "net/orchestrator.h"
#include "trace/synthetic.h"
#include "util/errors.h"
#include "workload/workload.h"

namespace bsub::net {
namespace {

struct Scenario {
  trace::ContactTrace trace;
  workload::KeySet keys;
  workload::Workload workload;

  explicit Scenario(std::uint64_t seed, std::size_t nodes = 12,
                    std::size_t contacts = 600)
      : trace([&] {
          trace::SyntheticTraceConfig cfg;
          cfg.node_count = nodes;
          cfg.contact_count = contacts;
          cfg.duration = 8 * util::kHour;
          cfg.seed = seed;
          return trace::generate_trace(cfg);
        }()),
        keys(workload::twitter_trend_keys()), workload([&] {
          workload::WorkloadConfig wcfg;
          wcfg.ttl = 3 * util::kHour;
          wcfg.seed = seed + 1;
          return workload::Workload(trace, keys, wcfg);
        }()) {}
};

engine::NodeConfig node_config_for(const Scenario& s) {
  engine::NodeConfig cfg;
  cfg.df_per_minute = core::compute_df(s.trace, 3 * util::kHour,
                                       cfg.filter_params, cfg.initial_counter)
                          .df_per_minute;
  return cfg;
}

using DeliveryTuple =
    std::tuple<engine::NodeId, std::uint64_t, std::string, util::Time>;

std::vector<DeliveryTuple> tuples(
    const std::vector<engine::DeliveryRecord>& records) {
  std::vector<DeliveryTuple> out;
  out.reserve(records.size());
  for (const auto& r : records) {
    out.emplace_back(r.consumer, r.message_id, r.key, r.at);
  }
  return out;
}

TEST(FleetRuntimeLoopback, BitIdenticalToOrchestrator) {
  Scenario s(101);
  const engine::NodeConfig node_config = node_config_for(s);

  OrchestratorConfig ocfg;
  ocfg.runtime.node = node_config;
  ocfg.runtime.decay_tick = 0;
  ContactOrchestrator orch(ocfg);
  const LiveRunResults expect = orch.run(s.trace, s.workload);
  ASSERT_GT(expect.protocol.deliveries, 0u);

  FleetConfig fcfg;
  fcfg.runtime.node = node_config;
  fcfg.runtime.decay_tick = 0;
  fcfg.threads = 2;
  FleetRuntime fleet(fcfg);
  const FleetRunResults got = fleet.run_loopback(s.trace, s.workload);

  // Protocol results: integers exactly, floats bitwise (identical delivery
  // logs summed in the same node-major order).
  EXPECT_EQ(got.protocol.deliveries, expect.protocol.deliveries);
  EXPECT_EQ(got.protocol.expected_deliveries,
            expect.protocol.expected_deliveries);
  EXPECT_EQ(got.protocol.contacts_processed,
            expect.protocol.contacts_processed);
  EXPECT_EQ(got.protocol.frames_delivered, expect.protocol.frames_delivered);
  EXPECT_EQ(got.protocol.frames_dropped, expect.protocol.frames_dropped);
  EXPECT_EQ(got.protocol.bytes_used, expect.protocol.bytes_used);
  EXPECT_EQ(got.protocol.delivery_ratio, expect.protocol.delivery_ratio);
  EXPECT_EQ(got.protocol.mean_delay_minutes,
            expect.protocol.mean_delay_minutes);

  // Transport tallies: the same sessions sent the same datagrams.
  EXPECT_EQ(got.transport.datagrams_sent, expect.transport.datagrams_sent);
  EXPECT_EQ(got.transport.datagrams_received,
            expect.transport.datagrams_received);
  EXPECT_EQ(got.transport.frames_sent, expect.transport.frames_sent);
  EXPECT_EQ(got.transport.frames_received, expect.transport.frames_received);
  EXPECT_EQ(got.transport.session_opens, expect.transport.session_opens);

  // The delivery logs agree record for record.
  EXPECT_EQ(tuples(fleet.deliveries()), tuples(orch.deliveries()));
}

TEST(FleetRuntimeLoopback, ThreadCountDoesNotChangeResults) {
  Scenario s(202);
  const engine::NodeConfig node_config = node_config_for(s);

  auto run_with = [&](std::size_t threads) {
    FleetConfig cfg;
    cfg.runtime.node = node_config;
    cfg.runtime.decay_tick = 0;
    cfg.threads = threads;
    auto fleet = std::make_unique<FleetRuntime>(cfg);
    auto results = fleet->run_loopback(s.trace, s.workload);
    return std::make_pair(std::move(results), tuples(fleet->deliveries()));
  };

  const auto [serial, serial_log] = run_with(1);
  const auto [parallel, parallel_log] = run_with(4);
  ASSERT_GT(serial.protocol.deliveries, 0u);
  EXPECT_EQ(serial_log, parallel_log);
  EXPECT_EQ(serial.protocol.bytes_used, parallel.protocol.bytes_used);
  EXPECT_EQ(serial.protocol.mean_delay_minutes,
            parallel.protocol.mean_delay_minutes);
  EXPECT_EQ(serial.transport.datagrams_sent,
            parallel.transport.datagrams_sent);
}

TEST(FleetRuntimeLoopback, RejectsDecayTicksAndSecondRuns) {
  Scenario s(303, 6, 40);
  FleetConfig cfg;
  cfg.runtime.decay_tick = util::kMinute;
  FleetRuntime bad(cfg);
  EXPECT_THROW(bad.run_loopback(s.trace, s.workload), util::ConfigError);

  FleetConfig good;
  good.runtime.node = node_config_for(s);
  good.runtime.decay_tick = 0;
  good.threads = 1;
  FleetRuntime fleet(good);
  fleet.run_loopback(s.trace, s.workload);
  EXPECT_THROW(fleet.run_loopback(s.trace, s.workload), std::logic_error);
}

TEST(FleetRuntimeUdp, MiniScenarioDeliversOverRealSockets) {
  // Hand-built guaranteed delivery: node 0 publishes, node 1 subscribes to
  // the same key, they meet directly. Two shards exercise the cross-shard
  // path (0 and 1 home on different shards).
  const workload::KeySet keys = workload::twitter_trend_keys();
  std::vector<workload::KeyId> interests = {1, 0, 2, 3};
  std::vector<workload::Message> messages;
  workload::Message m;
  m.id = 1;
  m.key = 0;
  m.producer = 0;
  m.size_bytes = 64;
  m.created = 0;
  m.ttl = util::kHour;
  messages.push_back(m);
  workload::Workload workload(keys, 4, std::move(interests),
                              std::move(messages));

  std::vector<trace::Contact> contacts;
  for (int i = 0; i < 8; ++i) {
    trace::Contact c;
    c.a = static_cast<trace::NodeId>(i % 2 == 0 ? 0 : 2);
    c.b = static_cast<trace::NodeId>(i % 2 == 0 ? 1 : 3);
    c.start = util::kMinute + i * util::kMinute;
    c.end = c.start + util::kMinute;
    contacts.push_back(c);
  }
  trace::ContactTrace trace(4, std::move(contacts), "fleet-mini");

  FleetConfig cfg;
  cfg.runtime.decay_tick = 0;
  cfg.shards = 2;
  cfg.udp.base_port = 46210;
  cfg.udp.batched_io = fleet_udp_batched_available();
  cfg.contact_timeout = 5 * util::kSecond;
  FleetRuntime fleet(cfg);
  FleetRunResults results;
  try {
    results = fleet.run_udp(trace, workload);
  } catch (const std::runtime_error& e) {
    GTEST_SKIP() << "no loopback sockets here: " << e.what();
  }

  EXPECT_EQ(results.protocol.contacts_processed, 8u);
  EXPECT_GE(results.protocol.deliveries, 1u);
  EXPECT_GT(results.transport.frames_received, 0u);
  EXPECT_GT(results.datagrams_out, 0u);
  EXPECT_EQ(results.unroutable_drops, 0u);
  EXPECT_GT(results.wall_seconds, 0.0);
  EXPECT_GT(results.contacts_per_second, 0.0);
}

}  // namespace
}  // namespace bsub::net
