// Real-socket smoke tests: two UdpTransports on 127.0.0.1 ephemeral ports,
// raw datagram exchange and then a full B-SUB contact (NodeRuntime sessions
// end to end over actual UDP).
//
// Environments that forbid even loopback sockets make the constructor
// throw; those tests skip rather than fail.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "engine/node.h"
#include "metrics/collector.h"
#include "net/clock.h"
#include "net/node_runtime.h"
#include "net/reactor.h"
#include "net/udp.h"
#include "util/time.h"

namespace bsub::net {
namespace {

constexpr Endpoint kLoopbackAny = make_udp_endpoint(0x7F000001, 0);
constexpr util::Time kDeadline = 10 * util::kSecond;

TEST(UdpTransport, EndpointFormatting) {
  Endpoint ep = 0;
  ASSERT_TRUE(parse_udp_endpoint("127.0.0.1:9000", ep));
  EXPECT_EQ(endpoint_ipv4(ep), 0x7F000001u);
  EXPECT_EQ(endpoint_port(ep), 9000u);
  EXPECT_EQ(format_udp_endpoint(ep), "127.0.0.1:9000");
  EXPECT_FALSE(parse_udp_endpoint("not-an-endpoint", ep));
  EXPECT_FALSE(parse_udp_endpoint("127.0.0.1", ep));
  EXPECT_FALSE(parse_udp_endpoint("127.0.0.1:99999", ep));
}

TEST(UdpTransport, DatagramRoundtripOverLoopback) {
  SteadyClock clock;
  Reactor reactor(clock);
  std::unique_ptr<UdpTransport> a, b;
  try {
    a = std::make_unique<UdpTransport>(reactor, kLoopbackAny);
    b = std::make_unique<UdpTransport>(reactor, kLoopbackAny);
  } catch (const std::runtime_error& e) {
    GTEST_SKIP() << "no loopback sockets here: " << e.what();
  }
  ASSERT_NE(endpoint_port(a->local_endpoint()), 0u);
  ASSERT_NE(endpoint_port(b->local_endpoint()), 0u);

  std::optional<std::pair<Endpoint, std::vector<std::uint8_t>>> got;
  b->set_receive_handler([&](Endpoint from,
                             std::span<const std::uint8_t> bytes) {
    got = {from, std::vector<std::uint8_t>(bytes.begin(), bytes.end())};
    reactor.stop();
  });

  const std::vector<std::uint8_t> payload = {9, 8, 7, 6};
  ASSERT_TRUE(a->send(b->local_endpoint(), payload));
  // Oversize datagrams are refused locally, not truncated.
  EXPECT_FALSE(a->send(b->local_endpoint(),
                       std::vector<std::uint8_t>(a->max_datagram_bytes() + 1)));

  const util::Time start = clock.now();
  while (!reactor.stopped() && clock.now() - start < kDeadline) {
    reactor.run_once(50 * util::kMillisecond);
  }
  ASSERT_TRUE(got.has_value()) << "datagram never arrived";
  EXPECT_EQ(got->second, payload);
  EXPECT_EQ(got->first, a->local_endpoint());
}

TEST(UdpTransport, BsubContactDeliversEndToEnd) {
  // Publisher and subscriber as full NodeRuntimes over real sockets: the
  // acceptance smoke for the daemon's data path.
  SteadyClock clock;
  Reactor reactor(clock);
  std::unique_ptr<UdpTransport> ta, tb;
  try {
    ta = std::make_unique<UdpTransport>(reactor, kLoopbackAny);
    tb = std::make_unique<UdpTransport>(reactor, kLoopbackAny);
  } catch (const std::runtime_error& e) {
    GTEST_SKIP() << "no loopback sockets here: " << e.what();
  }

  metrics::TransportCounters counters;
  RuntimeConfig config;
  config.decay_tick = 0;
  NodeRuntime publisher(1, config, *ta, reactor, counters);
  NodeRuntime subscriber(2, config, *tb, reactor, counters);

  std::vector<std::uint64_t> delivered;
  subscriber.node().subscribe("news");
  subscriber.node().set_delivery_handler(
      [&](const engine::ContentMessage& m, util::Time) {
        delivered.push_back(m.id);
      });

  engine::ContentMessage m;
  m.id = 77;
  m.key = "news";
  m.body.assign(4000, 0x5A);  // forces multi-datagram fragmentation
  m.created = clock.now();
  m.ttl = util::kHour;
  publisher.node().publish(std::move(m), clock.now());

  publisher.connect(tb->local_endpoint());
  const util::Time start = clock.now();
  while (delivered.empty() && clock.now() - start < kDeadline) {
    reactor.run_once(50 * util::kMillisecond);
  }
  ASSERT_EQ(delivered, (std::vector<std::uint64_t>{77}));
  EXPECT_TRUE(subscriber.has_session(publisher.endpoint()));
  EXPECT_GE(counters.frames_received.load(), 2u);  // HELLOs + data

  publisher.close_all();
  subscriber.close_all();
  const util::Time drain = clock.now();
  while (clock.now() - drain < util::kSecond &&
         (publisher.session_count() > 0 || subscriber.session_count() > 0)) {
    reactor.run_once(20 * util::kMillisecond);
  }
  EXPECT_EQ(publisher.session_count(), 0u);
  EXPECT_EQ(subscriber.session_count(), 0u);
}

}  // namespace
}  // namespace bsub::net
