// Shared helpers for protocol tests: hand-built traces and workloads with
// exact control over contacts, interests, and messages.
#pragma once

#include <vector>

#include "sim/simulator.h"
#include "trace/trace.h"
#include "workload/keys.h"
#include "workload/workload.h"

namespace bsub::testing {

/// A tiny two-key universe: key 0 "alpha", key 1 "beta".
inline workload::KeySet two_keys() {
  return workload::KeySet({{"alpha", 0.5}, {"beta", 0.5}});
}

/// Builds a message; id is provisional (Workload re-numbers in time order).
inline workload::Message make_message(trace::NodeId producer,
                                      workload::KeyId key, util::Time created,
                                      util::Time ttl = util::kDay,
                                      std::uint32_t size = 100) {
  workload::Message m;
  m.id = 0;
  m.key = key;
  m.producer = producer;
  m.size_bytes = size;
  m.created = created;
  m.ttl = ttl;
  return m;
}

/// One contact, minute-resolution convenience.
inline trace::Contact contact(trace::NodeId a, trace::NodeId b,
                              double start_min, double duration_min = 5.0) {
  trace::Contact c;
  c.a = a;
  c.b = b;
  c.start = util::from_minutes(start_min);
  c.end = util::from_minutes(start_min + duration_min);
  return c;
}

}  // namespace bsub::testing
