// Epoch-cached wire encodings and exact-size accounting.
//
// The contact-loop fast path never encodes a filter whose epoch is
// unchanged (cache hit) and never encodes at all when only the byte count
// is needed (encoded_*_wire_size). Both shortcuts must be indistinguishable
// from the real encoder: these tests pin (a) the size formulas against the
// actual encodings across randomized filters and geometries, (b) the cache
// hit/miss contract, and (c) the epoch semantics the caches key on.
#include "bloom/tcbf_codec.h"

#include <gtest/gtest.h>

#include <string>

#include "bloom/bloom_filter.h"
#include "bloom/tcbf.h"
#include "util/rng.h"

namespace bsub::bloom {
namespace {

const BloomParams kGeometries[] = {
    {64, 2}, {128, 3}, {256, 4}, {300, 4}, {1024, 5}, {4096, 7},
};

const CounterEncoding kEncodings[] = {
    CounterEncoding::kFull,
    CounterEncoding::kUniform,
    CounterEncoding::kCounterLess,
};

TEST(EncodeCache, TcbfWireSizeMatchesEncodingExactly) {
  util::Rng rng(42);
  for (const BloomParams& params : kGeometries) {
    for (int density = 0; density <= 4; ++density) {
      Tcbf filter(params, 50.0);
      // density 0 = empty; otherwise insert enough keys to sweep from the
      // location-list regime into the raw-bitmap fallback.
      const int keys = density * static_cast<int>(params.m) / 24;
      for (int i = 0; i < keys; ++i) {
        filter.insert("key-" + std::to_string(rng()));
      }
      if (density >= 2) filter.decay(rng.next_double() * 30.0);
      for (CounterEncoding enc : kEncodings) {
        EXPECT_EQ(encoded_tcbf_wire_size(filter, enc),
                  encode_tcbf(filter, enc).size())
            << "m=" << params.m << " k=" << params.k << " density=" << density
            << " enc=" << static_cast<int>(enc);
      }
    }
  }
}

TEST(EncodeCache, BloomWireSizeMatchesEncodingExactly) {
  util::Rng rng(43);
  for (const BloomParams& params : kGeometries) {
    for (int density = 0; density <= 4; ++density) {
      BloomFilter filter(params);
      const int keys = density * static_cast<int>(params.m) / 24;
      for (int i = 0; i < keys; ++i) {
        filter.insert("key-" + std::to_string(rng()));
      }
      EXPECT_EQ(encoded_bloom_wire_size(filter),
                encode_bloom(filter).size())
          << "m=" << params.m << " k=" << params.k << " density=" << density;
      EXPECT_EQ(encoded_bloom_wire_size(filter.popcount(), params),
                encode_bloom(filter).size());
    }
  }
}

TEST(EncodeCache, TcbfCacheHitsUntilEpochAdvances) {
  Tcbf filter({256, 4}, 50.0);
  filter.insert("a");
  EncodedFilterCache cache;
  const auto& first =
      encode_tcbf_cached(filter, CounterEncoding::kFull, cache);
  EXPECT_EQ(cache.misses, 1u);
  EXPECT_EQ(first, encode_tcbf(filter, CounterEncoding::kFull));

  const auto& again =
      encode_tcbf_cached(filter, CounterEncoding::kFull, cache);
  EXPECT_EQ(cache.hits, 1u);
  EXPECT_EQ(&again, &cache.bytes);  // replayed verbatim, no re-encode

  filter.insert("b");  // epoch moves -> miss and re-encode
  const auto& rebuilt =
      encode_tcbf_cached(filter, CounterEncoding::kFull, cache);
  EXPECT_EQ(cache.misses, 2u);
  EXPECT_EQ(rebuilt, encode_tcbf(filter, CounterEncoding::kFull));
}

TEST(EncodeCache, TcbfCacheKeysOnEncodingToo) {
  Tcbf filter({256, 4}, 50.0);
  filter.insert("a");
  EncodedFilterCache cache;
  encode_tcbf_cached(filter, CounterEncoding::kFull, cache);
  const auto& uniform =
      encode_tcbf_cached(filter, CounterEncoding::kUniform, cache);
  EXPECT_EQ(cache.misses, 2u);  // same epoch, different encoding
  EXPECT_EQ(uniform, encode_tcbf(filter, CounterEncoding::kUniform));
}

TEST(EncodeCache, BloomCacheHitsUntilEpochAdvances) {
  BloomFilter filter({256, 4});
  filter.insert("a");
  EncodedFilterCache cache;
  encode_bloom_cached(filter, cache);
  encode_bloom_cached(filter, cache);
  EXPECT_EQ(cache.misses, 1u);
  EXPECT_EQ(cache.hits, 1u);
  filter.insert("b");
  const auto& rebuilt = encode_bloom_cached(filter, cache);
  EXPECT_EQ(cache.misses, 2u);
  EXPECT_EQ(rebuilt, encode_bloom(filter));
}

TEST(EncodeCache, EpochAdvancesOnEveryMutation) {
  Tcbf t({256, 4}, 50.0);
  std::uint64_t e = t.epoch();
  t.insert("a");
  EXPECT_NE(t.epoch(), e);
  e = t.epoch();

  Tcbf other({256, 4}, 50.0);
  other.insert("b");
  t.a_merge(other);
  EXPECT_NE(t.epoch(), e);
  e = t.epoch();

  t.m_merge(other);
  EXPECT_NE(t.epoch(), e);
  e = t.epoch();

  t.decay(1.0);  // drains counters -> observable change
  EXPECT_NE(t.epoch(), e);
  e = t.epoch();

  t.clear();
  EXPECT_NE(t.epoch(), e);
}

TEST(EncodeCache, NoOpDecayKeepsEpoch) {
  // Decay on an empty filter (or by zero) changes nothing observable, so
  // the cached encoding must stay valid.
  Tcbf empty({256, 4}, 50.0);
  const std::uint64_t e = empty.epoch();
  empty.decay(5.0);
  EXPECT_EQ(empty.epoch(), e);

  Tcbf t({256, 4}, 50.0);
  t.insert("a");
  const std::uint64_t e2 = t.epoch();
  t.decay(0.0);
  EXPECT_EQ(t.epoch(), e2);
}

TEST(EncodeCache, CopiesKeepTheSourceEpoch) {
  // Same contents, same encoding: a copy may reuse cached bytes keyed on
  // the source's epoch.
  Tcbf t({256, 4}, 50.0);
  t.insert("a");
  const Tcbf copy = t;
  EXPECT_EQ(copy.epoch(), t.epoch());

  BloomFilter b({256, 4});
  b.insert("a");
  const BloomFilter bcopy = b;
  EXPECT_EQ(bcopy.epoch(), b.epoch());
}

TEST(EncodeCache, EpochsAreProcessUnique) {
  // Two independently built filters never share an epoch, even with equal
  // contents — so a cache can never false-hit across filters.
  Tcbf t1({256, 4}, 50.0);
  Tcbf t2({256, 4}, 50.0);
  t1.insert("a");
  t2.insert("a");
  EXPECT_NE(t1.epoch(), t2.epoch());
  EXPECT_NE(t1.epoch(), 0u);  // 0 is the empty-cache sentinel
  EXPECT_NE(t2.epoch(), 0u);
}

TEST(EncodeCache, ContainsAtMatchesContains) {
  // The interned-index probe must be bit-identical to contains() — FPs and
  // all — since the differential test compares semantic outcomes exactly.
  util::Rng rng(44);
  for (const BloomParams& params : kGeometries) {
    Tcbf t(params, 50.0);
    BloomFilter b(params);
    for (int i = 0; i < 12; ++i) {
      const std::string key = "in-" + std::to_string(rng());
      t.insert(key);
      b.insert(key);
    }
    for (int i = 0; i < 200; ++i) {
      const std::string probe = "probe-" + std::to_string(rng());
      const util::HashPair hp = util::hash_pair(probe);
      const util::IndexArray idx =
          util::bloom_indices(hp, params.k, params.m);
      EXPECT_EQ(t.contains_at(idx), t.contains(hp));
      EXPECT_EQ(b.contains_at(idx), b.contains(hp));
    }
  }
}

}  // namespace
}  // namespace bsub::bloom
