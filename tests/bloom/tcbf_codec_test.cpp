#include "bloom/tcbf_codec.h"

#include <gtest/gtest.h>

#include <string>

#include "util/byte_io.h"

namespace bsub::bloom {
namespace {

Tcbf sample_tcbf(int keys, double c = 50.0, BloomParams params = {256, 4}) {
  Tcbf t(params, c);
  for (int i = 0; i < keys; ++i) t.insert("key" + std::to_string(i));
  return t;
}

TEST(TcbfCodec, FullRoundTripPreservesBits) {
  Tcbf t = sample_tcbf(10);
  Tcbf u = decode_tcbf(encode_tcbf(t, CounterEncoding::kFull));
  EXPECT_EQ(u.set_bits(), t.set_bits());
  EXPECT_EQ(u.params(), t.params());
}

TEST(TcbfCodec, FullRoundTripCountersWithinQuantization) {
  Tcbf t = sample_tcbf(5);
  t.decay(13.7);  // non-uniform? still uniform; A-merge for variety:
  Tcbf extra = sample_tcbf(1);
  t.a_merge(extra);  // now bits of key0 have higher counters
  const double max_counter = 50.0 + 36.3;
  const double scale = max_counter / 255.0;
  Tcbf u = decode_tcbf(encode_tcbf(t, CounterEncoding::kFull));
  for (std::size_t b : t.set_bits()) {
    EXPECT_NEAR(u.counter(b), t.counter(b), scale / 2.0 + 1e-9) << b;
  }
}

TEST(TcbfCodec, UniformRoundTripExactForFreshFilters) {
  // Fresh insert-only filters have identical counters; uniform encoding is
  // lossless for them.
  Tcbf t = sample_tcbf(8);
  Tcbf u = decode_tcbf(encode_tcbf(t, CounterEncoding::kUniform));
  EXPECT_EQ(u.set_bits(), t.set_bits());
  for (std::size_t b : t.set_bits()) {
    EXPECT_DOUBLE_EQ(u.counter(b), 50.0);
  }
}

TEST(TcbfCodec, CounterLessReinflatesWithInitialValue) {
  Tcbf t = sample_tcbf(4);
  t.decay(20.0);
  Tcbf u = decode_tcbf(encode_tcbf(t, CounterEncoding::kCounterLess));
  EXPECT_EQ(u.set_bits(), t.set_bits());
  for (std::size_t b : u.set_bits()) EXPECT_DOUBLE_EQ(u.counter(b), 50.0);
}

TEST(TcbfCodec, EncodingSizesAreOrdered) {
  Tcbf t = sample_tcbf(10);
  auto full = encode_tcbf(t, CounterEncoding::kFull);
  auto uniform = encode_tcbf(t, CounterEncoding::kUniform);
  auto bare = encode_tcbf(t, CounterEncoding::kCounterLess);
  EXPECT_LT(bare.size(), uniform.size());
  EXPECT_LT(uniform.size(), full.size());
}

TEST(TcbfCodec, EmptyFilterRoundTrip) {
  Tcbf t({256, 4}, 50.0);
  Tcbf u = decode_tcbf(encode_tcbf(t, CounterEncoding::kFull));
  EXPECT_TRUE(u.empty());
  EXPECT_EQ(u.params(), t.params());
}

TEST(TcbfCodec, DenseFilterFallsBackToBitmap) {
  // With most bits set, the location list exceeds the raw bitmap; the codec
  // must pick the bitmap and still round-trip.
  Tcbf t({64, 4}, 50.0);
  for (int i = 0; i < 100; ++i) t.insert("k" + std::to_string(i));
  ASSERT_GT(t.popcount(), 32u);
  Tcbf u = decode_tcbf(encode_tcbf(t, CounterEncoding::kFull));
  EXPECT_EQ(u.set_bits(), t.set_bits());
}

TEST(TcbfCodec, SparseEncodingBeatsRawBitVector) {
  // The section VI-C claim: a low-fill filter encodes in far less than m/8
  // bytes (+ counters).
  Tcbf t = sample_tcbf(2, 50.0, {1024, 4});
  auto bare = encode_tcbf(t, CounterEncoding::kCounterLess);
  EXPECT_LT(bare.size(), 1024 / 8);
}

TEST(TcbfCodec, DecodedFilterIsMergedAndRefusesInsert) {
  Tcbf t = sample_tcbf(3);
  Tcbf u = decode_tcbf(encode_tcbf(t, CounterEncoding::kFull));
  EXPECT_TRUE(u.merged());
  EXPECT_THROW(u.insert("new"), std::logic_error);
}

TEST(TcbfCodec, GarbageThrowsDecodeError) {
  std::vector<std::uint8_t> garbage = {0x00, 0x01, 0x02};
  EXPECT_THROW(decode_tcbf(garbage), util::DecodeError);
}

TEST(TcbfCodec, TruncatedPayloadThrows) {
  Tcbf t = sample_tcbf(10);
  auto enc = encode_tcbf(t, CounterEncoding::kFull);
  enc.resize(enc.size() / 2);
  EXPECT_THROW(decode_tcbf(enc), util::DecodeError);
}

TEST(TcbfCodec, PreservesQuerySemantics) {
  Tcbf t = sample_tcbf(12);
  Tcbf u = decode_tcbf(encode_tcbf(t, CounterEncoding::kFull));
  for (int i = 0; i < 12; ++i) {
    EXPECT_TRUE(u.contains("key" + std::to_string(i)));
  }
  for (int i = 0; i < 100; ++i) {
    std::string probe = "probe" + std::to_string(i);
    EXPECT_EQ(u.contains(probe), t.contains(probe)) << probe;
  }
}

TEST(BloomCodec, RoundTrip) {
  BloomFilter bf({256, 4});
  bf.insert("alpha");
  bf.insert("beta");
  BloomFilter out = decode_bloom(encode_bloom(bf));
  EXPECT_EQ(out, bf);
}

TEST(BloomCodec, EmptyRoundTrip) {
  BloomFilter bf({128, 3});
  BloomFilter out = decode_bloom(encode_bloom(bf));
  EXPECT_EQ(out, bf);
}

TEST(BloomCodec, SingleInterestReportIsTiny) {
  // The interest report a consumer sends: one key, 4 locations x 8 bits
  // plus a small header — the "at most 5 bytes to encode a single key"
  // economy the paper cites (section VII-A).
  BloomFilter bf({256, 4});
  bf.insert("NewMoon");
  auto enc = encode_bloom(bf);
  EXPECT_LE(enc.size(), 10u);  // 4 location bytes + header
}

TEST(BloomCodec, DenseBitmapFallback) {
  BloomFilter bf({64, 4});
  for (int i = 0; i < 200; ++i) bf.insert("k" + std::to_string(i));
  BloomFilter out = decode_bloom(encode_bloom(bf));
  EXPECT_EQ(out, bf);
}

TEST(BloomCodec, GarbageThrows) {
  std::vector<std::uint8_t> garbage = {0x12, 0x34};
  EXPECT_THROW(decode_bloom(garbage), util::DecodeError);
}

TEST(ModelWireSize, MatchesPaperAccounting) {
  // m = 256 -> 8 bits per location = 1 byte.
  EXPECT_DOUBLE_EQ(model_wire_size_bytes(10, 256, CounterEncoding::kFull),
                   10.0 + 10.0);  // location byte + counter byte per set bit
  EXPECT_DOUBLE_EQ(model_wire_size_bytes(10, 256, CounterEncoding::kUniform),
                   10.0 + 1.0);
  EXPECT_DOUBLE_EQ(
      model_wire_size_bytes(10, 256, CounterEncoding::kCounterLess), 10.0);
}

TEST(ModelWireSize, CapsAtRawBitmap) {
  // 200 set bits of 256: location list (200 bytes) exceeds bitmap (32B).
  EXPECT_DOUBLE_EQ(
      model_wire_size_bytes(200, 256, CounterEncoding::kCounterLess), 32.0);
}

}  // namespace
}  // namespace bsub::bloom
