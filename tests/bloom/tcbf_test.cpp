#include "bloom/tcbf.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace bsub::bloom {
namespace {

constexpr double kC = 50.0;  // paper's initial counter value

Tcbf make(std::initializer_list<const char*> keys, double c = kC) {
  Tcbf t({256, 4}, c);
  for (const char* k : keys) t.insert(k);
  return t;
}

TEST(Tcbf, InsertSetsCountersToInitialValue) {
  Tcbf t = make({"key"});
  EXPECT_TRUE(t.contains("key"));
  EXPECT_EQ(t.min_counter("key"), kC);
  for (std::size_t b : t.set_bits()) EXPECT_DOUBLE_EQ(t.counter(b), kC);
}

TEST(Tcbf, ReinsertDoesNotChangeCounters) {
  // Paper section IV-A: "If the counter has already been set, we do not
  // change its value" — any insertion sequence yields uniform counters C.
  Tcbf t = make({"a", "b", "a", "a"});
  for (std::size_t b : t.set_bits()) EXPECT_DOUBLE_EQ(t.counter(b), kC);
}

TEST(Tcbf, InsertAfterDecayRestoresOnlyClearedBits) {
  Tcbf t = make({"key"});
  t.decay(10.0);
  t.insert("key");  // counters are 40, already set: unchanged
  EXPECT_EQ(t.min_counter("key"), 40.0);
}

TEST(Tcbf, ExistentialQueryNoFalseNegatives) {
  Tcbf t({256, 4}, kC);
  for (int i = 0; i < 38; ++i) t.insert("key" + std::to_string(i));
  for (int i = 0; i < 38; ++i) {
    EXPECT_TRUE(t.contains("key" + std::to_string(i)));
  }
}

TEST(Tcbf, AMergeSumsCounters) {
  Tcbf a = make({"key"});
  Tcbf b = make({"key"});
  a.a_merge(b);
  EXPECT_EQ(a.min_counter("key"), 2 * kC);
}

TEST(Tcbf, AMergeUnionsBits) {
  Tcbf a = make({"x"});
  Tcbf b = make({"y"});
  a.a_merge(b);
  EXPECT_TRUE(a.contains("x"));
  EXPECT_TRUE(a.contains("y"));
}

TEST(Tcbf, MMergeTakesMaximum) {
  Tcbf a = make({"key"});
  a.decay(20.0);  // counters 30
  Tcbf b = make({"key"});
  b.decay(5.0);  // counters 45
  a.m_merge(b);
  EXPECT_EQ(a.min_counter("key"), 45.0);
}

TEST(Tcbf, MMergeIsIdempotent) {
  // M-merging the same filter twice changes nothing — the property that
  // kills the bogus-counter loop of paper Fig. 6.
  Tcbf a = make({"key"});
  Tcbf b = make({"other"});
  a.m_merge(b);
  const auto counters_once = a.counters();
  a.m_merge(b);
  EXPECT_EQ(a.counters(), counters_once);
}

TEST(Tcbf, AMergeIsNotIdempotent) {
  // The contrast with M-merge: repeated A-merges inflate counters (the
  // bogus-counter failure mode between frequently-meeting brokers).
  Tcbf a = make({"key"});
  Tcbf b = make({"key"});
  a.a_merge(b);
  double after_one = *a.min_counter("key");
  a.a_merge(b);
  EXPECT_GT(*a.min_counter("key"), after_one);
}

TEST(Tcbf, InsertIntoMergedFilterThrows) {
  Tcbf a = make({"x"});
  Tcbf b = make({"y"});
  a.a_merge(b);
  EXPECT_TRUE(a.merged());
  EXPECT_THROW(a.insert("z"), std::logic_error);
}

TEST(Tcbf, MergeParamMismatchThrows) {
  Tcbf a({256, 4}, kC);
  Tcbf b({128, 4}, kC);
  EXPECT_THROW(a.a_merge(b), std::invalid_argument);
  EXPECT_THROW(a.m_merge(b), std::invalid_argument);
}

TEST(Tcbf, DecayRemovesKeyExactlyWhenCounterDrains) {
  Tcbf t = make({"key"});
  t.decay(kC - 1.0);
  EXPECT_TRUE(t.contains("key"));
  t.decay(1.0);
  EXPECT_FALSE(t.contains("key"));
  EXPECT_TRUE(t.empty());
}

TEST(Tcbf, DecayClampsAtZero) {
  Tcbf t = make({"key"});
  t.decay(1000.0);
  for (std::size_t i = 0; i < 256; ++i) EXPECT_GE(t.counter(i), 0.0);
  EXPECT_TRUE(t.empty());
}

TEST(Tcbf, FractionalDecayAccumulates) {
  Tcbf t = make({"key"});
  for (int i = 0; i < 100; ++i) t.decay(0.138);  // the paper's DF value
  EXPECT_NEAR(*t.min_counter("key"), kC - 13.8, 1e-9);
}

TEST(Tcbf, DecayZeroIsNoop) {
  Tcbf t = make({"key"});
  t.decay(0.0);
  EXPECT_EQ(t.min_counter("key"), kC);
}

TEST(Tcbf, TemporalDeletionOrdering) {
  // Key inserted later (via fresh filter + A-merge) outlives earlier keys:
  // the Fig. 4 scenario where only the most recent key remains.
  Tcbf t = make({"old"});
  t.decay(30.0);  // old at 20
  Tcbf fresh = make({"new"});
  t.a_merge(fresh);
  t.decay(25.0);  // old would be at -5 -> gone, new at 25
  EXPECT_FALSE(t.contains("old"));
  EXPECT_TRUE(t.contains("new"));
}

TEST(Tcbf, ReinforcementExtendsLifetime) {
  // A consumer that keeps meeting a broker A-merges its genuine filter in
  // repeatedly; the interest then survives proportionally longer.
  Tcbf relay = make({"interest"});
  Tcbf genuine = make({"interest"});
  relay.a_merge(genuine);  // counter 100
  relay.decay(80.0);
  EXPECT_TRUE(relay.contains("interest"));
  relay.decay(25.0);
  EXPECT_FALSE(relay.contains("interest"));
}

TEST(Tcbf, MinCounterAbsentKeyIsNullopt) {
  Tcbf t = make({"key"});
  EXPECT_FALSE(t.min_counter("missing").has_value());
}

TEST(Tcbf, MinCounterTracksPartialDecayOverlap) {
  // When two keys share bits, the minimum counter reflects the weakest bit.
  Tcbf t({256, 4}, kC);
  t.insert("a");
  t.decay(10.0);
  // Merge a fresh filter with "b"; if the two keys share any bit, "a" keeps
  // its decayed value and "b" gets at least the max of shared bits.
  Tcbf u = make({"b"});
  t.a_merge(u);
  ASSERT_TRUE(t.min_counter("a").has_value());
  EXPECT_LE(*t.min_counter("a"), kC);
}

TEST(Tcbf, ToBloomFilterStripsCounters) {
  Tcbf t = make({"alpha", "beta"});
  BloomFilter bf = t.to_bloom_filter();
  EXPECT_TRUE(bf.contains("alpha"));
  EXPECT_TRUE(bf.contains("beta"));
  EXPECT_EQ(bf.popcount(), t.popcount());
}

TEST(Tcbf, ClearAllowsInsertAgain) {
  Tcbf a = make({"x"});
  Tcbf b = make({"y"});
  a.a_merge(b);
  a.clear();
  EXPECT_FALSE(a.merged());
  EXPECT_NO_THROW(a.insert("z"));
  EXPECT_TRUE(a.contains("z"));
}

TEST(Tcbf, FromCountersRoundTrip) {
  Tcbf t = make({"key"});
  t.decay(7.5);
  Tcbf u = Tcbf::from_counters(t.params(), t.initial_counter(), t.counters());
  EXPECT_EQ(u.counters(), t.counters());
  EXPECT_TRUE(u.merged());
  EXPECT_EQ(u.min_counter("key"), t.min_counter("key"));
}

TEST(Tcbf, FromCountersSizeMismatchThrows) {
  EXPECT_THROW(
      Tcbf::from_counters({256, 4}, kC, std::vector<double>(100, 0.0)),
      std::invalid_argument);
}

TEST(TcbfPreference, KeyInBothFiltersIsDifference) {
  Tcbf b = make({"key"});  // c_b = 50
  Tcbf f = make({"key"});
  f.decay(20.0);  // c_f = 30
  EXPECT_DOUBLE_EQ(preference(b, f, "key"), 20.0);
  EXPECT_DOUBLE_EQ(preference(f, b, "key"), -20.0);
}

TEST(TcbfPreference, KeyAbsentFromSecondFilterIsCb) {
  // Paper section IV-A: the preference is c_b when c_f = 0.
  Tcbf b = make({"key"});
  Tcbf f = make({"unrelated"});
  EXPECT_DOUBLE_EQ(preference(b, f, "key"), kC);
}

TEST(TcbfPreference, KeyAbsentFromBothIsZero) {
  Tcbf b = make({"x"});
  Tcbf f = make({"y"});
  EXPECT_DOUBLE_EQ(preference(b, f, "z"), 0.0);
}

TEST(TcbfPreference, ReinforcedBrokerWins) {
  // The broker that met the consumer more often has the higher counter and
  // therefore positive preference — the forwarder-selection rule of V-C.
  Tcbf close_broker = make({"interest"});
  Tcbf genuine = make({"interest"});
  close_broker.a_merge(genuine);
  close_broker.a_merge(genuine);  // 3C total
  Tcbf far_broker = make({"interest"});
  far_broker.decay(30.0);  // 0.4C
  EXPECT_GT(preference(close_broker, far_broker, "interest"), 0.0);
  EXPECT_LT(preference(far_broker, close_broker, "interest"), 0.0);
}

class TcbfParamTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint32_t>> {
};

TEST_P(TcbfParamTest, InsertContainsDecayAcrossGeometries) {
  auto [m, k] = GetParam();
  Tcbf t({m, k}, kC);
  for (int i = 0; i < 10; ++i) t.insert("key" + std::to_string(i));
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(t.contains("key" + std::to_string(i)));
  }
  t.decay(kC);
  EXPECT_TRUE(t.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, TcbfParamTest,
    ::testing::Values(std::make_tuple(64, 2), std::make_tuple(128, 3),
                      std::make_tuple(256, 4), std::make_tuple(512, 5),
                      std::make_tuple(1000, 4), std::make_tuple(4096, 8)));

}  // namespace
}  // namespace bsub::bloom
