#include "bloom/allocation.h"

#include <gtest/gtest.h>

#include <string>

#include "bloom/fpr.h"

namespace bsub::bloom {
namespace {

constexpr BloomParams kPaper{256, 4};

TEST(OptimizeAllocation, RespectsStorageBound) {
  AllocationPlan plan = optimize_allocation(100, 500, kPaper);
  ASSERT_TRUE(plan.feasible);
  EXPECT_LT(plan.memory_bytes, 500.0);
}

TEST(OptimizeAllocation, PicksLargestFeasibleH) {
  AllocationPlan plan = optimize_allocation(100, 500, kPaper);
  ASSERT_TRUE(plan.feasible);
  // One more filter must bust the bound (or exceed the key count).
  if (plan.filter_count < 100) {
    EXPECT_GE(multi_filter_memory_bytes(100, plan.filter_count + 1, kPaper),
              500.0);
  }
}

TEST(OptimizeAllocation, MoreStorageNeverHurtsFpr) {
  AllocationPlan tight = optimize_allocation(100, 450, kPaper);
  AllocationPlan roomy = optimize_allocation(100, 900, kPaper);
  ASSERT_TRUE(tight.feasible);
  ASSERT_TRUE(roomy.feasible);
  EXPECT_GE(roomy.filter_count, tight.filter_count);
  EXPECT_LE(roomy.joint_fpr, tight.joint_fpr);
}

TEST(OptimizeAllocation, InfeasibleBoundReported) {
  // A bound smaller than even one filter's cost.
  AllocationPlan plan = optimize_allocation(100, 10, kPaper);
  EXPECT_FALSE(plan.feasible);
  EXPECT_EQ(plan.filter_count, 1u);
}

TEST(OptimizeAllocation, HNeverExceedsKeyCount) {
  AllocationPlan plan = optimize_allocation(5, 1e9, kPaper);
  ASSERT_TRUE(plan.feasible);
  EXPECT_LE(plan.filter_count, 5u);
}

TEST(OptimizeAllocation, ThetaMatchesPerFilterLoad) {
  AllocationPlan plan = optimize_allocation(100, 500, kPaper);
  ASSERT_TRUE(plan.feasible);
  EXPECT_NEAR(plan.fill_threshold,
              expected_fill_ratio(plan.keys_per_filter, kPaper), 1e-12);
}

TEST(OptimizeAllocation, MaxFiltersCapHonored) {
  AllocationPlan plan = optimize_allocation(100, 1e9, kPaper, 3);
  ASSERT_TRUE(plan.feasible);
  EXPECT_LE(plan.filter_count, 3u);
}

TEST(TcbfPool, InsertAndQueryAcrossFilters) {
  TcbfPool pool(kPaper, 50.0, 0.2);  // low threshold: forces new filters
  for (int i = 0; i < 60; ++i) pool.insert("key" + std::to_string(i));
  EXPECT_GT(pool.filter_count(), 1u);
  for (int i = 0; i < 60; ++i) {
    EXPECT_TRUE(pool.contains("key" + std::to_string(i))) << i;
  }
}

TEST(TcbfPool, SingleFilterWhileUnderThreshold) {
  TcbfPool pool(kPaper, 50.0, 0.9);
  for (int i = 0; i < 10; ++i) pool.insert("key" + std::to_string(i));
  EXPECT_EQ(pool.filter_count(), 1u);
}

TEST(TcbfPool, FillThresholdControlsPerFilterLoad) {
  TcbfPool pool(kPaper, 50.0, 0.3);
  for (int i = 0; i < 100; ++i) pool.insert("key" + std::to_string(i));
  for (const Tcbf& f : pool.filters()) {
    // A filter may exceed the threshold by one insertion only.
    EXPECT_LE(f.fill_ratio(), 0.3 + 4.0 / 256.0 + 1e-12);
  }
}

TEST(TcbfPool, DecayDrainsAndReleasesFilters) {
  TcbfPool pool(kPaper, 50.0, 0.2);
  for (int i = 0; i < 60; ++i) pool.insert("key" + std::to_string(i));
  ASSERT_GT(pool.filter_count(), 1u);
  pool.decay(50.0);
  EXPECT_EQ(pool.filter_count(), 1u);  // all drained, one kept for inserts
  EXPECT_FALSE(pool.contains("key0"));
}

TEST(TcbfPool, PartialDecayKeepsRecentKeys) {
  TcbfPool pool(kPaper, 50.0, 0.15);
  pool.insert("old");
  pool.decay(30.0);  // old at 20
  pool.insert("new");
  pool.decay(25.0);  // old gone, new at 25
  EXPECT_FALSE(pool.contains("old"));
  EXPECT_TRUE(pool.contains("new"));
}

TEST(TcbfPool, MinCounterTakesBestAcrossFilters) {
  TcbfPool pool(kPaper, 50.0, 0.01);  // every insert may open a filter
  pool.insert("key");
  pool.decay(10.0);
  pool.insert("key");  // likely lands in a newer filter at full strength
  auto c = pool.min_counter("key");
  ASSERT_TRUE(c.has_value());
  EXPECT_DOUBLE_EQ(*c, 50.0);
}

TEST(TcbfPool, MinCounterAbsentIsNullopt) {
  TcbfPool pool(kPaper, 50.0, 0.5);
  pool.insert("present");
  EXPECT_FALSE(pool.min_counter("absent-key-xyz").has_value());
}

TEST(TcbfPool, EncodedSizeGrowsWithContent) {
  TcbfPool pool(kPaper, 50.0, 0.5);
  std::size_t empty_size = pool.encoded_size_bytes();
  for (int i = 0; i < 20; ++i) pool.insert("key" + std::to_string(i));
  EXPECT_GT(pool.encoded_size_bytes(), empty_size);
}

TEST(TcbfPool, PlanDrivenPoolStaysNearPlannedFpr) {
  // End-to-end VI-D: derive a plan, run a pool at the plan's threshold, and
  // check the realized per-filter loads stay near the planned load.
  const double n_total = 120;
  AllocationPlan plan = optimize_allocation(n_total, 800, kPaper);
  ASSERT_TRUE(plan.feasible);
  TcbfPool pool(kPaper, 50.0, plan.fill_threshold);
  for (int i = 0; i < static_cast<int>(n_total); ++i) {
    pool.insert("key" + std::to_string(i));
  }
  for (const Tcbf& f : pool.filters()) {
    double est_keys = keys_from_fill_ratio(f.fill_ratio(), kPaper);
    EXPECT_LE(est_keys, plan.keys_per_filter * 1.5 + 4.0);
  }
}

}  // namespace
}  // namespace bsub::bloom
