// Decoder rejection suite: hand-crafted truncated / oversized / garbage
// buffers for the TCBF & BF codec must fail with a typed util::CodecError —
// never read out of bounds (the CI ASan job runs this suite) and never
// accept a non-canonical encoding.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "bloom/tcbf_codec.h"
#include "util/byte_io.h"

namespace bsub::bloom {
namespace {

Tcbf sample_tcbf(int keys, BloomParams params = {256, 4}) {
  Tcbf t(params, 50.0);
  for (int i = 0; i < keys; ++i) t.insert("key" + std::to_string(i));
  return t;
}

/// Crafts a TCBF wire header with arbitrary (possibly hostile) fields.
util::ByteWriter tcbf_header(std::uint8_t encoding, std::uint8_t layout,
                             std::uint64_t m, std::uint64_t k, double initial,
                             std::uint64_t count) {
  util::ByteWriter w;
  w.put_u8(0xB5);
  w.put_u8(encoding);
  w.put_u8(layout);
  w.put_varint(m);
  w.put_varint(k);
  w.put_double(initial);
  w.put_varint(count);
  return w;
}

void expect_offset_known(const std::vector<std::uint8_t>& bytes) {
  try {
    (void)decode_tcbf(bytes);
    FAIL() << "expected CodecError";
  } catch (const util::CodecError& e) {
    EXPECT_NE(e.offset(), util::CodecError::kNoOffset) << e.what();
  }
}

TEST(CodecRejection, BadLayoutByte) {
  auto enc = encode_tcbf(sample_tcbf(3), CounterEncoding::kFull);
  enc[2] = 7;  // layout must be 0 or 1
  EXPECT_THROW(decode_tcbf(enc), util::CodecError);
  expect_offset_known(enc);
}

TEST(CodecRejection, BadEncodingByte) {
  auto enc = encode_tcbf(sample_tcbf(3), CounterEncoding::kFull);
  enc[1] = 9;  // encoding must be 0, 1, or 2
  EXPECT_THROW(decode_tcbf(enc), util::CodecError);
}

TEST(CodecRejection, NonFiniteInitialCounter) {
  for (double bad : {std::numeric_limits<double>::infinity(),
                     std::numeric_limits<double>::quiet_NaN(), -1.0, 0.0,
                     kCounterSaturation * 2.0}) {
    auto w = tcbf_header(2 /*counter-less*/, 0, 256, 4, bad, 0);
    EXPECT_THROW(decode_tcbf(w.bytes()), util::CodecError) << bad;
  }
}

TEST(CodecRejection, NonFiniteOrHostileScale) {
  // kFull layout: header, then scale double, then positions/counters.
  for (double bad : {std::numeric_limits<double>::infinity(),
                     std::numeric_limits<double>::quiet_NaN(), -3.0, 0.0,
                     kCounterSaturation}) {  // > saturation/255
    auto w = tcbf_header(0 /*full*/, 0, 256, 4, 50.0, 0);
    w.put_double(bad);
    EXPECT_THROW(decode_tcbf(w.bytes()), util::CodecError) << bad;
  }
}

TEST(CodecRejection, GeometryClaimsAreCappedBeforeAllocation) {
  // m beyond the decode cap must be rejected from the tiny header alone —
  // no multi-gigabyte counter array may be allocated for it.
  auto w = tcbf_header(0, 0, std::uint64_t{1} << 40, 4, 50.0, 0);
  EXPECT_THROW(decode_tcbf(w.bytes()), util::CodecError);
  auto w2 = tcbf_header(0, 0, 256, 1000 /*k*/, 50.0, 0);
  EXPECT_THROW(decode_tcbf(w2.bytes()), util::CodecError);
  auto w3 = tcbf_header(0, 0, 0 /*m*/, 4, 50.0, 0);
  EXPECT_THROW(decode_tcbf(w3.bytes()), util::CodecError);
}

TEST(CodecRejection, CountAboveMIsRejected) {
  auto w = tcbf_header(2, 0, 64, 4, 50.0, 65);
  EXPECT_THROW(decode_tcbf(w.bytes()), util::CodecError);
}

TEST(CodecRejection, NonAscendingPositionsRejected) {
  // m=256 -> 8-bit positions. Duplicate and descending lists are both
  // non-canonical and must be rejected.
  for (auto positions : {std::vector<std::uint8_t>{5, 5},
                         std::vector<std::uint8_t>{9, 3}}) {
    auto w = tcbf_header(2, 0 /*locations*/, 256, 4, 50.0, positions.size());
    for (std::uint8_t p : positions) w.put_bits(p, 8);
    w.flush_bits();
    EXPECT_THROW(decode_tcbf(w.bytes()), util::CodecError);
  }
}

TEST(CodecRejection, PositionPastMRejected) {
  // m=200 -> 8-bit positions, but 250 >= m.
  auto w = tcbf_header(2, 0, 200, 4, 50.0, 1);
  w.put_bits(250, 8);
  w.flush_bits();
  EXPECT_THROW(decode_tcbf(w.bytes()), util::CodecError);
}

TEST(CodecRejection, BitmapPopcountMismatch) {
  // Bitmap layout, count=1, but the bitmap is all zeros.
  auto w = tcbf_header(2, 1 /*bitmap*/, 64, 4, 50.0, 1);
  for (int i = 0; i < 8; ++i) w.put_u8(0);
  EXPECT_THROW(decode_tcbf(w.bytes()), util::CodecError);
}

TEST(CodecRejection, BitmapPaddingBitsRejected) {
  // m=4: one bitmap byte, bits 4..7 are padding and must be zero.
  auto w = tcbf_header(2, 1, 4, 2, 50.0, 1);
  w.put_u8(0b0001'0001);  // bit 0 set (valid) + padding bit 4 set (hostile)
  EXPECT_THROW(decode_tcbf(w.bytes()), util::CodecError);
}

TEST(CodecRejection, ZeroQuantizedCounterRejected) {
  // A zero counter byte would silently drop the bit during re-inflation.
  Tcbf t = sample_tcbf(1);
  auto enc = encode_tcbf(t, CounterEncoding::kFull);
  const std::size_t set_bits = t.popcount();
  // Counter bytes are the trailing s bytes of the kFull encoding.
  enc[enc.size() - set_bits] = 0;
  EXPECT_THROW(decode_tcbf(enc), util::CodecError);
}

TEST(CodecRejection, TrailingGarbageRejected) {
  for (auto encoding : {CounterEncoding::kFull, CounterEncoding::kUniform,
                        CounterEncoding::kCounterLess}) {
    auto enc = encode_tcbf(sample_tcbf(5), encoding);
    enc.push_back(0xEE);
    EXPECT_THROW(decode_tcbf(enc), util::CodecError)
        << static_cast<int>(encoding);
  }
  auto bloom = encode_bloom(sample_tcbf(5).to_bloom_filter());
  bloom.push_back(0xEE);
  EXPECT_THROW(decode_bloom(bloom), util::CodecError);
}

TEST(CodecRejection, EveryTruncationThrowsTyped) {
  for (auto encoding : {CounterEncoding::kFull, CounterEncoding::kUniform,
                        CounterEncoding::kCounterLess}) {
    const auto full = encode_tcbf(sample_tcbf(12), encoding);
    for (std::size_t len = 0; len < full.size(); ++len) {
      std::vector<std::uint8_t> cut(full.begin(),
                                    full.begin() + static_cast<long>(len));
      EXPECT_THROW(decode_tcbf(cut), util::CodecError)
          << "enc=" << static_cast<int>(encoding) << " len=" << len;
    }
  }
}

TEST(CodecRejection, BloomBadLayoutAndTruncation) {
  BloomFilter bf({256, 4});
  bf.insert("alpha");
  auto enc = encode_bloom(bf);
  auto bad = enc;
  bad[1] = 3;  // layout byte
  EXPECT_THROW(decode_bloom(bad), util::CodecError);
  for (std::size_t len = 0; len < enc.size(); ++len) {
    std::vector<std::uint8_t> cut(enc.begin(),
                                  enc.begin() + static_cast<long>(len));
    EXPECT_THROW(decode_bloom(cut), util::CodecError) << len;
  }
}

TEST(CodecRejection, OverlongVarintRejected) {
  // 11 continuation bytes: more than any uint64 varint can need.
  util::ByteWriter w;
  w.put_u8(0xB5);
  w.put_u8(0);
  w.put_u8(0);
  for (int i = 0; i < 11; ++i) w.put_u8(0x80);
  EXPECT_THROW(decode_tcbf(w.bytes()), util::CodecError);
}

TEST(CodecRejection, DecodedCountersNeverExceedSaturation) {
  // Even a maximal legal scale cannot reconstruct counters past the
  // in-memory ceiling (from_counters clamps; scale is capped at
  // saturation/255 so 255 * scale == saturation exactly).
  auto w = tcbf_header(1 /*uniform*/, 0, 256, 4, 50.0, 1);
  w.put_double(kCounterSaturation / 255.0);
  w.put_bits(17, 8);
  w.flush_bits();
  w.put_u8(255);
  Tcbf t = decode_tcbf(w.bytes());
  EXPECT_LE(t.counter(17), kCounterSaturation);
  EXPECT_GT(t.counter(17), 0.0);
}

}  // namespace
}  // namespace bsub::bloom
