// Counter saturation: the A-merge feedback loop (paper Fig. 6) must not be
// able to push counters past the ceiling (real counters are one byte on the
// wire; in memory they saturate instead of overflowing).
#include <gtest/gtest.h>

#include <cmath>

#include "bloom/tcbf.h"

namespace bsub::bloom {
namespace {

TEST(TcbfSaturation, AMergeLoopSaturatesInsteadOfOverflowing) {
  Tcbf a({256, 4}, 50.0), b({256, 4}, 50.0);
  a.insert("key");
  b.insert("key");
  // Simulate the Fig. 6 loop: two brokers A-merging each other repeatedly
  // doubles counters each round — 2^200 would overflow without saturation.
  for (int round = 0; round < 200; ++round) {
    a.a_merge(b);
    b.a_merge(a);
  }
  ASSERT_TRUE(a.min_counter("key").has_value());
  EXPECT_TRUE(std::isfinite(*a.min_counter("key")));
  EXPECT_LE(*a.min_counter("key"), kCounterSaturation);
  EXPECT_LE(*b.min_counter("key"), kCounterSaturation);
}

TEST(TcbfSaturation, SaturatedCountersStillDecay) {
  Tcbf a({256, 4}, kCounterSaturation), b({256, 4}, kCounterSaturation);
  a.insert("key");
  b.insert("key");
  a.a_merge(b);  // saturates at the ceiling
  a.decay(kCounterSaturation - 1.0);
  ASSERT_TRUE(a.min_counter("key").has_value());
  EXPECT_DOUBLE_EQ(*a.min_counter("key"), 1.0);
  a.decay(2.0);
  EXPECT_FALSE(a.contains("key"));
}

TEST(TcbfSaturation, NormalValuesUnaffected) {
  Tcbf a({256, 4}, 50.0), b({256, 4}, 50.0);
  a.insert("key");
  b.insert("key");
  a.a_merge(b);
  EXPECT_DOUBLE_EQ(*a.min_counter("key"), 100.0);
}

}  // namespace
}  // namespace bsub::bloom
