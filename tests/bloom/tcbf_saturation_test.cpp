// Counter saturation: the A-merge feedback loop (paper Fig. 6) must not be
// able to push counters past the ceiling (real counters are one byte on the
// wire; in memory they saturate instead of overflowing).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "bloom/tcbf.h"

namespace bsub::bloom {
namespace {

TEST(TcbfSaturation, AMergeLoopSaturatesInsteadOfOverflowing) {
  Tcbf a({256, 4}, 50.0), b({256, 4}, 50.0);
  a.insert("key");
  b.insert("key");
  // Simulate the Fig. 6 loop: two brokers A-merging each other repeatedly
  // doubles counters each round — 2^200 would overflow without saturation.
  for (int round = 0; round < 200; ++round) {
    a.a_merge(b);
    b.a_merge(a);
  }
  ASSERT_TRUE(a.min_counter("key").has_value());
  EXPECT_TRUE(std::isfinite(*a.min_counter("key")));
  EXPECT_LE(*a.min_counter("key"), kCounterSaturation);
  EXPECT_LE(*b.min_counter("key"), kCounterSaturation);
}

TEST(TcbfSaturation, SaturatedCountersStillDecay) {
  Tcbf a({256, 4}, kCounterSaturation), b({256, 4}, kCounterSaturation);
  a.insert("key");
  b.insert("key");
  a.a_merge(b);  // saturates at the ceiling
  a.decay(kCounterSaturation - 1.0);
  ASSERT_TRUE(a.min_counter("key").has_value());
  EXPECT_DOUBLE_EQ(*a.min_counter("key"), 1.0);
  a.decay(2.0);
  EXPECT_FALSE(a.contains("key"));
}

TEST(TcbfSaturation, NormalValuesUnaffected) {
  Tcbf a({256, 4}, 50.0), b({256, 4}, 50.0);
  a.insert("key");
  b.insert("key");
  a.a_merge(b);
  EXPECT_DOUBLE_EQ(*a.min_counter("key"), 100.0);
}

TEST(TcbfSaturation, InsertClampsOversizedInitialCounter) {
  // An initial counter above the ceiling must be stored clamped, or the
  // very first A-merge would overshoot the representable max.
  Tcbf a({256, 4}, kCounterSaturation * 8.0);
  a.insert("key");
  EXPECT_DOUBLE_EQ(*a.min_counter("key"), kCounterSaturation);
}

TEST(TcbfSaturation, AMergeAtExactBoundaryStaysAtCeiling) {
  Tcbf a({256, 4}, kCounterSaturation), b({256, 4}, kCounterSaturation);
  a.insert("key");
  b.insert("key");
  a.a_merge(b);  // sum would be 2x ceiling
  EXPECT_DOUBLE_EQ(*a.min_counter("key"), kCounterSaturation);
  a.a_merge(b);  // and it must be idempotent at the boundary
  EXPECT_DOUBLE_EQ(*a.min_counter("key"), kCounterSaturation);
}

TEST(TcbfSaturation, MMergeClampsOversizedSource) {
  // from_counters clamps, so a decoded filter can carry at most the
  // ceiling; m_merge must uphold the invariant even for a hostile source.
  std::vector<double> counters(256, 0.0);
  counters[7] = kCounterSaturation * 3.0;  // pre-clamp value
  Tcbf hostile = Tcbf::from_counters({256, 4}, 50.0, std::move(counters));
  EXPECT_DOUBLE_EQ(hostile.counter(7), kCounterSaturation);

  Tcbf a({256, 4}, 50.0);
  a.insert("key");
  a.m_merge(hostile);
  EXPECT_LE(a.counter(7), kCounterSaturation);
}

TEST(TcbfSaturation, FromCountersRejectsNaNAndNegativeClampsToZero) {
  std::vector<double> nan_counters(256, 0.0);
  nan_counters[3] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(Tcbf::from_counters({256, 4}, 50.0, std::move(nan_counters)),
               std::invalid_argument);

  std::vector<double> neg(256, 0.0);
  neg[3] = -5.0;
  Tcbf t = Tcbf::from_counters({256, 4}, 50.0, std::move(neg));
  EXPECT_DOUBLE_EQ(t.counter(3), 0.0);
  EXPECT_EQ(t.popcount(), 0u);
}

TEST(TcbfSaturation, FromCountersRejectsBadInitialCounter) {
  for (double bad : {0.0, -1.0, std::numeric_limits<double>::infinity(),
                     std::numeric_limits<double>::quiet_NaN()}) {
    EXPECT_THROW(
        Tcbf::from_counters({64, 2}, bad, std::vector<double>(64, 0.0)),
        std::invalid_argument)
        << bad;
  }
}

}  // namespace
}  // namespace bsub::bloom
