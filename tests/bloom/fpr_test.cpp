#include "bloom/fpr.h"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

namespace bsub::bloom {
namespace {

constexpr BloomParams kPaper{256, 4};

TEST(Fpr, PaperWorstCaseIsAboutFourPercent) {
  // Section VII-A: "The worst case FPR of the filter storing 38 keys, in
  // theory, in this setting, is 0.04."
  EXPECT_NEAR(false_positive_rate(38, kPaper), 0.04, 0.005);
  EXPECT_NEAR(false_positive_rate_exact(38, kPaper), 0.04, 0.005);
}

TEST(Fpr, ZeroKeysMeansZeroFpr) {
  EXPECT_DOUBLE_EQ(false_positive_rate(0, kPaper), 0.0);
  EXPECT_DOUBLE_EQ(false_positive_rate_exact(0, kPaper), 0.0);
}

TEST(Fpr, MonotoneIncreasingInN) {
  double prev = -1.0;
  for (std::uint64_t n = 0; n <= 100; n += 5) {
    double f = false_positive_rate(n, kPaper);
    EXPECT_GT(f, prev);
    prev = f;
  }
}

TEST(Fpr, ApproxMatchesExactForLargeM) {
  for (std::uint64_t n : {1u, 10u, 38u, 100u}) {
    EXPECT_NEAR(false_positive_rate(n, kPaper),
                false_positive_rate_exact(n, kPaper), 2e-3)
        << n;
  }
}

TEST(Fpr, ApproachesOneUnderOverload) {
  EXPECT_GT(false_positive_rate(10000, kPaper), 0.999);
}

TEST(ExpectedSetBits, ZeroAndSaturation) {
  EXPECT_DOUBLE_EQ(expected_set_bits(0, kPaper), 0.0);
  EXPECT_NEAR(expected_set_bits(1e9, kPaper), 256.0, 1e-6);
}

TEST(ExpectedSetBits, SingleKeyNearlyK) {
  // One key sets ~k bits (slightly fewer due to self-collision).
  double s = expected_set_bits(1, kPaper);
  EXPECT_GT(s, 3.9);
  EXPECT_LE(s, 4.0);
}

TEST(FillRatio, ConsistentWithSetBits) {
  for (double n : {1.0, 10.0, 38.0, 64.0}) {
    EXPECT_NEAR(expected_fill_ratio(n, kPaper),
                expected_set_bits(n, kPaper) / 256.0, 1e-12);
  }
}

TEST(KeysFromFillRatio, InvertsExpectedFillRatio) {
  for (double n : {1.0, 5.0, 38.0, 80.0}) {
    double fr = expected_fill_ratio(n, kPaper);
    EXPECT_NEAR(keys_from_fill_ratio(fr, kPaper), n, 1e-9) << n;
  }
}

TEST(KeysFromFillRatio, FullFilterIsInfinite) {
  EXPECT_TRUE(std::isinf(keys_from_fill_ratio(1.0, kPaper)));
}

TEST(KeysFromFillRatio, EmptyFilterIsZero) {
  EXPECT_DOUBLE_EQ(keys_from_fill_ratio(0.0, kPaper), 0.0);
}

TEST(ExpectedUniqueKeys, BoundaryBehavior) {
  EXPECT_DOUBLE_EQ(expected_unique_keys(0, 38), 0.0);
  EXPECT_NEAR(expected_unique_keys(1, 38), 1.0, 1e-12);
  // Far more draws than the universe: almost every key seen.
  EXPECT_NEAR(expected_unique_keys(1000, 38), 38.0, 0.01);
}

TEST(ExpectedUniqueKeys, LessThanDrawnWhenDuplicatesPossible) {
  double u = expected_unique_keys(38, 38);
  EXPECT_LT(u, 38.0);
  EXPECT_GT(u, 20.0);  // 38(1-(1-1/38)^38) ~ 24.3
}

TEST(JointFpr, SingleFilterMatchesEquationOne) {
  std::array<std::uint64_t, 1> keys = {38};
  EXPECT_NEAR(joint_false_positive_rate(keys, kPaper),
              false_positive_rate(38, kPaper), 1e-12);
}

TEST(JointFpr, EmptyCollectionIsZero) {
  EXPECT_DOUBLE_EQ(joint_false_positive_rate({}, kPaper), 0.0);
}

TEST(JointFpr, UnionBoundHolds) {
  std::array<std::uint64_t, 3> keys = {10, 20, 30};
  double joint = joint_false_positive_rate(keys, kPaper);
  double sum = 0.0;
  for (auto n : keys) sum += false_positive_rate(n, kPaper);
  EXPECT_LE(joint, sum);
  EXPECT_GE(joint, false_positive_rate(30, kPaper));  // at least the worst
}

TEST(JointFprUniform, SplittingReducesJointFpr) {
  // The section VI-D monotonicity: for fixed total keys, more filters =
  // lower joint FPR (each filter is much emptier).
  double prev = 1.1;
  for (std::uint32_t h : {1u, 2u, 4u, 8u}) {
    double f = joint_false_positive_rate_uniform(76, h, kPaper);
    EXPECT_LT(f, prev) << h;
    prev = f;
  }
}

TEST(JointFprUniform, MatchesExplicitUniformSplit) {
  std::array<std::uint64_t, 4> keys = {19, 19, 19, 19};
  EXPECT_NEAR(joint_false_positive_rate(keys, kPaper),
              joint_false_positive_rate_uniform(76, 4, kPaper), 1e-12);
}

TEST(MultiFilterMemory, IncreasesWithH) {
  // The other side of the VI-D trade-off: memory grows with h.
  double prev = 0.0;
  for (std::uint32_t h : {1u, 2u, 4u, 8u, 16u}) {
    double m = multi_filter_memory_bits(76, h, kPaper);
    EXPECT_GT(m, prev) << h;
    prev = m;
  }
}

TEST(MultiFilterMemory, SingleFilterFormula) {
  // h = 1: s * (8 + ceil(log2 m)) bits with s from Eq. 2.
  double s = expected_set_bits(38, kPaper);
  EXPECT_NEAR(multi_filter_memory_bits(38, 1, kPaper), s * (8 + 8), 1e-9);
}

TEST(MultiFilterMemory, BytesIsCeilOfBits) {
  double bits = multi_filter_memory_bits(38, 2, kPaper);
  EXPECT_DOUBLE_EQ(multi_filter_memory_bytes(38, 2, kPaper),
                   std::ceil(bits / 8.0));
}

TEST(WasteRatios, SectionSixBFormulas) {
  EXPECT_DOUBLE_EQ(completely_wasted_ratio(0.04), 0.0016);
  EXPECT_DOUBLE_EQ(partially_useful_ratio(0.04), 0.04 * 0.96);
  EXPECT_DOUBLE_EQ(completely_wasted_ratio(0.0), 0.0);
  EXPECT_DOUBLE_EQ(partially_useful_ratio(1.0), 0.0);
}

TEST(WasteRatios, WasteIsSmallAtPaperOperatingPoint) {
  double fpr = false_positive_rate(38, kPaper);
  EXPECT_LT(completely_wasted_ratio(fpr), 0.002);
}

}  // namespace
}  // namespace bsub::bloom
