#include "bloom/counting_bloom_filter.h"

#include <gtest/gtest.h>

#include <string>

namespace bsub::bloom {
namespace {

TEST(CountingBloomFilter, InsertThenContains) {
  CountingBloomFilter cbf;
  cbf.insert("key");
  EXPECT_TRUE(cbf.contains("key"));
}

TEST(CountingBloomFilter, RemoveDeletesKey) {
  CountingBloomFilter cbf;
  cbf.insert("key");
  EXPECT_TRUE(cbf.remove("key"));
  EXPECT_FALSE(cbf.contains("key"));
}

TEST(CountingBloomFilter, RemoveAbsentKeyFails) {
  CountingBloomFilter cbf;
  cbf.insert("other");
  EXPECT_FALSE(cbf.remove("key"));
  EXPECT_TRUE(cbf.contains("other"));
}

TEST(CountingBloomFilter, DoubleInsertNeedsDoubleRemove) {
  CountingBloomFilter cbf;
  cbf.insert("key");
  cbf.insert("key");
  EXPECT_TRUE(cbf.remove("key"));
  EXPECT_TRUE(cbf.contains("key"));
  EXPECT_TRUE(cbf.remove("key"));
  EXPECT_FALSE(cbf.contains("key"));
}

TEST(CountingBloomFilter, RemoveDoesNotDisturbOtherKeys) {
  CountingBloomFilter cbf;
  for (int i = 0; i < 20; ++i) cbf.insert("key" + std::to_string(i));
  EXPECT_TRUE(cbf.remove("key7"));
  for (int i = 0; i < 20; ++i) {
    if (i == 7) continue;
    EXPECT_TRUE(cbf.contains("key" + std::to_string(i))) << i;
  }
}

TEST(CountingBloomFilter, MergeSumsCounters) {
  CountingBloomFilter a, b;
  a.insert("key");
  b.insert("key");
  a.merge(b);
  // Two logical copies: one removal must leave the key present.
  EXPECT_TRUE(a.remove("key"));
  EXPECT_TRUE(a.contains("key"));
}

TEST(CountingBloomFilter, MergeMismatchedParamsThrows) {
  CountingBloomFilter a({256, 4}), b({512, 4});
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(CountingBloomFilter, ToBloomFilterPreservesMembership) {
  CountingBloomFilter cbf;
  cbf.insert("alpha");
  cbf.insert("beta");
  BloomFilter bf = cbf.to_bloom_filter();
  EXPECT_TRUE(bf.contains("alpha"));
  EXPECT_TRUE(bf.contains("beta"));
  EXPECT_EQ(bf.popcount(), cbf.popcount());
}

TEST(CountingBloomFilter, PopcountAndFillRatio) {
  CountingBloomFilter cbf({100, 2});
  EXPECT_EQ(cbf.popcount(), 0u);
  cbf.insert("x");
  EXPECT_GE(cbf.popcount(), 1u);
  EXPECT_LE(cbf.popcount(), 2u);
  EXPECT_DOUBLE_EQ(cbf.fill_ratio(),
                   static_cast<double>(cbf.popcount()) / 100.0);
}

TEST(CountingBloomFilter, ClearResets) {
  CountingBloomFilter cbf;
  cbf.insert("key");
  cbf.clear();
  EXPECT_FALSE(cbf.contains("key"));
  EXPECT_EQ(cbf.popcount(), 0u);
}

TEST(CountingBloomFilter, CounterAccessor) {
  CountingBloomFilter cbf({64, 1});
  cbf.insert("key");
  std::uint32_t total = 0;
  for (std::size_t i = 0; i < 64; ++i) total += cbf.counter(i);
  EXPECT_EQ(total, 1u);  // single hash, single insert
}

}  // namespace
}  // namespace bsub::bloom
