// Cross-kernel differential test: the same seeded schedule of interleaved
// insert / A-merge / M-merge / decay / query operations is replayed under
// every compiled-and-runnable kernel backend (scalar, blocked, avx2, neon),
// and the complete observable state — every raw counter bit pattern, the
// derived views, every point-query answer, the preferential query, and the
// encoded wire bytes — must be identical to the scalar reference run.
//
// This is the contract the kernel layer advertises (bloom/kernels.h): all
// backends compute element-wise IEEE add/sub/min/max with no reassociation,
// so switching the dispatch target can never change a result bit, only the
// instruction schedule. Counters are compared through std::bit_cast so that
// even a 0.0 / -0.0 discrepancy (which double== would forgive) fails.
#include "bloom/kernels.h"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "bloom/bloom_params.h"
#include "bloom/tcbf.h"
#include "bloom/tcbf_codec.h"
#include "util/hash.h"
#include "util/rng.h"

namespace bsub::bloom {
namespace {

namespace kernels = bsub::bloom::kernels;

/// Restores default dispatch after each test so a failing run cannot leak a
/// forced backend into later tests in the same process.
class KernelDifferentialTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = kernels::active_kind(); }
  void TearDown() override { kernels::force_kernel(saved_); }

 private:
  kernels::Kind saved_;
};

std::vector<kernels::Kind> runnable_kernels() {
  std::vector<kernels::Kind> kinds;
  for (kernels::Kind k :
       {kernels::Kind::kScalar, kernels::Kind::kBlocked, kernels::Kind::kAvx2,
        kernels::Kind::kNeon}) {
    if (kernels::available(k)) kinds.push_back(k);
  }
  return kinds;
}

std::vector<std::string> key_pool(std::size_t n) {
  std::vector<std::string> keys;
  keys.reserve(n);
  for (std::size_t i = 0; i < n; ++i) keys.push_back("kd" + std::to_string(i));
  return keys;
}

/// Everything a backend can influence, captured bit-exactly. The mid-run
/// trace records query answers observed *while* the schedule executes (so a
/// kernel that corrupts state transiently, then self-heals, still fails).
struct Snapshot {
  std::vector<std::uint64_t> counter_bits_b;
  std::vector<std::uint64_t> counter_bits_f;
  std::vector<std::size_t> set_bits_b;
  std::size_t popcount_b = 0;
  std::size_t popcount_f = 0;
  std::vector<std::uint64_t> trace;
  std::vector<std::uint8_t> wire_full;
  std::vector<std::uint8_t> wire_uniform;

  bool operator==(const Snapshot&) const = default;
};

std::vector<std::uint64_t> counter_bits(const Tcbf& f) {
  std::vector<std::uint64_t> bits;
  for (double v : f.counters()) bits.push_back(std::bit_cast<std::uint64_t>(v));
  return bits;
}

/// Replays one seed's schedule start-to-finish under the currently forced
/// kernel and captures the resulting snapshot.
Snapshot run_schedule(std::uint64_t seed) {
  util::Rng rng(seed);
  const BloomParams params{
      static_cast<std::size_t>(64u << rng.next_below(4)),  // m in 64..512
      static_cast<std::uint32_t>(rng.next_int(2, 5))};
  const double c0 = 50.0;
  const auto keys = key_pool(48);

  Snapshot snap;
  Tcbf b(params, c0);  // broker-side filter: receives A-merges
  Tcbf f(params, c0);  // peer filter: receives M-merges and direct inserts

  // f stays never-merged for the first stretch so insert() is exercised too.
  bool f_insertable = true;

  for (int op = 0; op < 600; ++op) {
    switch (rng.next_below(6)) {
      case 0: {  // A-merge a fresh filter of 1..5 keys into b
        Tcbf fresh(params, c0);
        const int nk = static_cast<int>(rng.next_int(1, 5));
        for (int j = 0; j < nk; ++j) {
          fresh.insert(keys[rng.next_below(keys.size())]);
        }
        b.a_merge(fresh);
        break;
      }
      case 1: {  // M-merge: either fresh->f, or b<-f (filters with history)
        if (rng.next_bool(0.3) && !f.empty()) {
          b.m_merge(f);
        } else {
          Tcbf fresh(params, c0);
          const int nk = static_cast<int>(rng.next_int(1, 4));
          for (int j = 0; j < nk; ++j) {
            fresh.insert(keys[rng.next_below(keys.size())]);
          }
          f.m_merge(fresh);
          f_insertable = false;
        }
        break;
      }
      case 2: {  // decay one or both filters (dyadic amounts: exact floats)
        const double amount = 0.25 * static_cast<double>(rng.next_int(1, 80));
        b.decay(amount);
        if (rng.next_bool(0.5)) f.decay(amount);
        break;
      }
      case 3: {  // direct insert while still allowed
        if (f_insertable) f.insert(keys[rng.next_below(keys.size())]);
        break;
      }
      case 4: {  // point queries, recorded into the trace
        const std::string& k = keys[rng.next_below(keys.size())];
        snap.trace.push_back(b.contains(k));
        snap.trace.push_back(
            std::bit_cast<std::uint64_t>(b.min_counter(k).value_or(-1.0)));
        snap.trace.push_back(std::bit_cast<std::uint64_t>(preference(b, f, k)));
        const util::IndexArray idx =
            util::bloom_indices(k, params.k, params.m);
        snap.trace.push_back(
            std::bit_cast<std::uint64_t>(preference_at(b, f, idx)));
        break;
      }
      case 5: {  // derived views, recorded into the trace
        snap.trace.push_back(b.popcount());
        snap.trace.push_back(f.popcount());
        snap.trace.push_back(b.to_bloom_filter().set_bits().size());
        break;
      }
    }
  }

  snap.counter_bits_b = counter_bits(b);
  snap.counter_bits_f = counter_bits(f);
  snap.set_bits_b = b.set_bits();
  snap.popcount_b = b.popcount();
  snap.popcount_f = f.popcount();
  snap.wire_full = encode_tcbf(b, CounterEncoding::kFull);
  snap.wire_uniform = encode_tcbf(b, CounterEncoding::kUniform);
  return snap;
}

TEST_F(KernelDifferentialTest, AllKernelsBitIdenticalAcrossSeeds) {
  const auto kinds = runnable_kernels();
  ASSERT_FALSE(kinds.empty());
  ASSERT_EQ(kinds.front(), kernels::Kind::kScalar);

  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    ASSERT_TRUE(kernels::force_kernel(kernels::Kind::kScalar));
    const Snapshot reference = run_schedule(seed);
    for (std::size_t i = 1; i < kinds.size(); ++i) {
      ASSERT_TRUE(kernels::force_kernel(kinds[i]));
      const Snapshot got = run_schedule(seed);
      EXPECT_EQ(got, reference)
          << "kernel " << kernels::kind_name(kinds[i])
          << " diverged from scalar on seed " << seed;
    }
  }
}

TEST_F(KernelDifferentialTest, LargeFilterDenseRegimeBitIdentical) {
  // m=65536 pushes every merge through the word/byte-skip machinery with
  // many full occupancy words; enough keys to cross the scalar kernel's
  // lazy-vs-dense crossover (1/16 occupancy) so the dense sweep runs too.
  const auto kinds = runnable_kernels();
  const BloomParams params{65536, 4};
  const auto keys = key_pool(2048);

  std::vector<Snapshot> snaps;
  for (kernels::Kind kind : kinds) {
    ASSERT_TRUE(kernels::force_kernel(kind));
    Tcbf b(params, 50.0);
    Tcbf dense_src(params, 50.0);
    for (const std::string& k : keys) dense_src.insert(k);
    b.a_merge(dense_src);
    b.decay(12.5);
    b.m_merge(dense_src);
    b.decay(40.0);  // drains the first-generation contribution in places
    b.a_merge(dense_src);

    Snapshot snap;
    snap.counter_bits_b = counter_bits(b);
    snap.set_bits_b = b.set_bits();
    snap.popcount_b = b.popcount();
    snap.wire_full = encode_tcbf(b, CounterEncoding::kFull);
    snaps.push_back(std::move(snap));
  }
  for (std::size_t i = 1; i < snaps.size(); ++i) {
    EXPECT_EQ(snaps[i], snaps[0])
        << "kernel " << kernels::kind_name(kinds[i]) << " diverged";
  }
}

TEST_F(KernelDifferentialTest, ForceKernelRoundTrip) {
  for (kernels::Kind kind : runnable_kernels()) {
    ASSERT_TRUE(kernels::force_kernel(kind));
    EXPECT_EQ(kernels::active_kind(), kind);
    EXPECT_EQ(kernels::active().kind, kind);
  }
  // Unavailable kinds must refuse and leave dispatch unchanged.
#if !defined(__aarch64__)
  const kernels::Kind before = kernels::active_kind();
  EXPECT_FALSE(kernels::force_kernel(kernels::Kind::kNeon));
  EXPECT_EQ(kernels::active_kind(), before);
#endif
}

}  // namespace
}  // namespace bsub::bloom
