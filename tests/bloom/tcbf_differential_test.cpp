// Randomized differential test: bloom::Tcbf (lazy decay base + occupancy
// bitmap) against a dense eager reference that replicates the original
// O(m)-per-op implementation verbatim. Thousands of interleaved
// insert/decay/merge/query operations must observe identical state.
//
// Exactness note: the lazy representation folds a *sum* of decay amounts
// into one subtraction, while the eager reference subtracts step by step.
// To make EXPECT_EQ (not NEAR) valid, all decay amounts are multiples of
// 0.25 and counters are dyadic rationals of modest magnitude, so every
// intermediate value is exactly representable and (a - x) - y == a - (x + y)
// holds bit-for-bit.
#include "bloom/tcbf.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <string>
#include <vector>

#include "bloom/bloom_params.h"
#include "util/hash.h"
#include "util/rng.h"

namespace bsub::bloom {
namespace {

/// Verbatim port of the pre-optimization Tcbf: one dense counter array,
/// every operation sweeps it eagerly.
class DenseRefTcbf {
 public:
  DenseRefTcbf(BloomParams params, double initial_counter)
      : params_(params),
        initial_counter_(initial_counter),
        counters_(params.m, 0.0) {}

  void insert(std::string_view key) {
    const util::HashPair hp = util::hash_pair(key);
    for (std::uint32_t i = 0; i < params_.k; ++i) {
      double& c = counters_[util::km_index(hp, i, params_.m)];
      if (c == 0.0) c = initial_counter_;
    }
  }

  void a_merge(const DenseRefTcbf& other) {
    for (std::size_t i = 0; i < counters_.size(); ++i) {
      counters_[i] =
          std::min(counters_[i] + other.counters_[i], kCounterSaturation);
    }
  }

  void m_merge(const DenseRefTcbf& other) {
    for (std::size_t i = 0; i < counters_.size(); ++i) {
      counters_[i] = std::max(counters_[i], other.counters_[i]);
    }
  }

  void decay(double amount) {
    if (amount == 0.0) return;
    for (double& c : counters_) {
      if (c > 0.0) c = std::max(0.0, c - amount);
    }
  }

  bool contains(std::string_view key) const {
    const util::HashPair hp = util::hash_pair(key);
    for (std::uint32_t i = 0; i < params_.k; ++i) {
      if (counters_[util::km_index(hp, i, params_.m)] <= 0.0) return false;
    }
    return true;
  }

  std::optional<double> min_counter(std::string_view key) const {
    const util::HashPair hp = util::hash_pair(key);
    double min_c = 0.0;
    bool first = true;
    for (std::uint32_t i = 0; i < params_.k; ++i) {
      const double c = counters_[util::km_index(hp, i, params_.m)];
      if (c <= 0.0) return std::nullopt;
      min_c = first ? c : std::min(min_c, c);
      first = false;
    }
    return min_c;
  }

  std::size_t popcount() const {
    std::size_t n = 0;
    for (double c : counters_) n += (c > 0.0);
    return n;
  }

  std::vector<std::size_t> set_bits() const {
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < counters_.size(); ++i) {
      if (counters_[i] > 0.0) out.push_back(i);
    }
    return out;
  }

  const std::vector<double>& counters() const { return counters_; }

 private:
  BloomParams params_;
  double initial_counter_;
  std::vector<double> counters_;
};

std::vector<std::string> key_pool(std::size_t n) {
  std::vector<std::string> keys;
  keys.reserve(n);
  for (std::size_t i = 0; i < n; ++i) keys.push_back("dk" + std::to_string(i));
  return keys;
}

/// Full-state equivalence: every counter, plus the derived views the
/// protocol reads.
void expect_same_state(const Tcbf& lazy, const DenseRefTcbf& dense,
                       const std::vector<std::string>& keys) {
  const std::vector<double> lc = lazy.counters();
  ASSERT_EQ(lc.size(), dense.counters().size());
  for (std::size_t i = 0; i < lc.size(); ++i) {
    ASSERT_EQ(lc[i], dense.counters()[i]) << "counter " << i;
    ASSERT_EQ(lazy.counter(i), dense.counters()[i]) << "counter() " << i;
  }
  EXPECT_EQ(lazy.popcount(), dense.popcount());
  EXPECT_EQ(lazy.set_bits(), dense.set_bits());
  EXPECT_EQ(lazy.empty(), dense.popcount() == 0);
  for (const std::string& k : keys) {
    const util::HashPair hp = util::hash_pair(k);
    EXPECT_EQ(lazy.contains(k), dense.contains(k)) << k;
    EXPECT_EQ(lazy.contains(hp), dense.contains(k)) << k << " (hashed)";
    EXPECT_EQ(lazy.min_counter(k), dense.min_counter(k)) << k;
    EXPECT_EQ(lazy.min_counter(hp), dense.min_counter(k)) << k << " (hashed)";
  }
}

/// Dyadic decay amount: a multiple of 0.25 in (0, 15].
double dyadic_amount(util::Rng& rng) {
  return 0.25 * static_cast<double>(rng.next_int(1, 60));
}

TEST(TcbfDifferentialTest, InterleavedOpsOnMergedFilter) {
  const BloomParams params{128, 3};
  const double c0 = 50.0;
  const auto keys = key_pool(64);
  util::Rng rng(0xD1FFu);

  Tcbf lazy(params, c0);
  DenseRefTcbf dense(params, c0);

  for (int op = 0; op < 4000; ++op) {
    switch (rng.next_below(5)) {
      case 0:
      case 1: {  // merge in a fresh filter holding 1..4 keys
        Tcbf lf(params, c0);
        DenseRefTcbf df(params, c0);
        const int nk = static_cast<int>(rng.next_int(1, 4));
        for (int j = 0; j < nk; ++j) {
          const std::string& k = keys[rng.next_below(keys.size())];
          // Exercise both insert entry points on the lazy side.
          if (rng.next_bool(0.5)) {
            lf.insert(k);
          } else {
            lf.insert(util::hash_pair(k));
          }
          df.insert(k);
        }
        if (rng.next_bool(0.5)) {
          lazy.a_merge(lf);
          dense.a_merge(df);
        } else {
          lazy.m_merge(lf);
          dense.m_merge(df);
        }
        break;
      }
      case 2: {  // decay, sometimes repeatedly (accumulates the lazy base)
        const int reps = static_cast<int>(rng.next_int(1, 3));
        for (int r = 0; r < reps; ++r) {
          const double amount = dyadic_amount(rng);
          lazy.decay(amount);
          dense.decay(amount);
        }
        break;
      }
      case 3: {  // point queries
        const std::string& k = keys[rng.next_below(keys.size())];
        EXPECT_EQ(lazy.contains(k), dense.contains(k));
        EXPECT_EQ(lazy.min_counter(k), dense.min_counter(k));
        break;
      }
      case 4: {  // derived views
        EXPECT_EQ(lazy.popcount(), dense.popcount());
        EXPECT_EQ(lazy.to_bloom_filter().set_bits(), dense.set_bits());
        break;
      }
    }
    if (op % 250 == 0) expect_same_state(lazy, dense, keys);
  }
  expect_same_state(lazy, dense, keys);
}

TEST(TcbfDifferentialTest, InterleavedInsertDecayOnFreshFilter) {
  // A never-merged filter keeps insert() available: decay can drain a
  // counter to zero and a re-insert must revive it to C in both worlds.
  const BloomParams params{64, 4};
  const double c0 = 8.0;  // small C so decay genuinely drains counters
  const auto keys = key_pool(24);
  util::Rng rng(0xF12E5u);

  Tcbf lazy(params, c0);
  DenseRefTcbf dense(params, c0);

  for (int op = 0; op < 3000; ++op) {
    switch (rng.next_below(3)) {
      case 0: {
        const std::string& k = keys[rng.next_below(keys.size())];
        lazy.insert(k);
        dense.insert(k);
        break;
      }
      case 1: {
        const double amount = dyadic_amount(rng);
        lazy.decay(amount);
        dense.decay(amount);
        break;
      }
      case 2: {
        const std::string& k = keys[rng.next_below(keys.size())];
        EXPECT_EQ(lazy.min_counter(k), dense.min_counter(k));
        break;
      }
    }
    if (op % 250 == 0) expect_same_state(lazy, dense, keys);
  }
  expect_same_state(lazy, dense, keys);
}

TEST(TcbfDifferentialTest, PreferenceMatchesReferenceArithmetic) {
  const BloomParams params{128, 3};
  const auto keys = key_pool(32);
  util::Rng rng(77);

  Tcbf lb(params, 50.0), lf(params, 50.0);
  DenseRefTcbf db(params, 50.0), df(params, 50.0);
  for (int round = 0; round < 40; ++round) {
    Tcbf fresh_b(params, 50.0), fresh_f(params, 50.0);
    DenseRefTcbf dfresh_b(params, 50.0), dfresh_f(params, 50.0);
    for (int j = 0; j < 3; ++j) {
      const std::string& kb = keys[rng.next_below(keys.size())];
      const std::string& kf = keys[rng.next_below(keys.size())];
      fresh_b.insert(kb);
      dfresh_b.insert(kb);
      fresh_f.insert(kf);
      dfresh_f.insert(kf);
    }
    lb.a_merge(fresh_b);
    db.a_merge(dfresh_b);
    lf.m_merge(fresh_f);
    df.m_merge(dfresh_f);
    const double amount = dyadic_amount(rng);
    lb.decay(amount);
    db.decay(amount);
    lf.decay(amount);
    df.decay(amount);

    for (const std::string& k : keys) {
      const double ref_cb = db.min_counter(k).value_or(0.0);
      const std::optional<double> ref_cf = df.min_counter(k);
      const double expected = ref_cf.has_value() ? ref_cb - *ref_cf : ref_cb;
      EXPECT_EQ(preference(lb, lf, k), expected) << k;
      EXPECT_EQ(preference(lb, lf, util::hash_pair(k)), expected) << k;
    }
  }
}

}  // namespace
}  // namespace bsub::bloom
