// Property suite for the wire codec: randomized filters of every geometry
// must round-trip bit-exactly (positions) and within quantization error
// (counters), for every counter encoding and across the sparse/dense layout
// boundary.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "bloom/tcbf_codec.h"
#include "util/byte_io.h"
#include "util/rng.h"

namespace bsub::bloom {
namespace {

using Params = std::tuple<std::size_t /*m*/, std::uint32_t /*k*/,
                          int /*keys*/, int /*encoding*/>;

class CodecRoundTrip : public ::testing::TestWithParam<Params> {};

TEST_P(CodecRoundTrip, PositionsExactCountersQuantized) {
  auto [m, k, keys, enc_i] = GetParam();
  const auto encoding = static_cast<CounterEncoding>(enc_i);
  util::Rng rng(static_cast<std::uint64_t>(m * 1315423911u + k * 2654435761u +
                                           static_cast<unsigned>(keys)));

  for (int trial = 0; trial < 8; ++trial) {
    Tcbf t({m, k}, 50.0);
    for (int i = 0; i < keys; ++i) {
      t.insert("key" + std::to_string(rng()));
    }
    if (encoding == CounterEncoding::kFull && trial % 2 == 1) {
      // Exercise non-uniform counters: partial decay + an A-merge.
      Tcbf extra({m, k}, 50.0);
      extra.insert("extra" + std::to_string(rng()));
      t.decay(rng.next_double(0.0, 20.0));
      t.a_merge(extra);
    }

    const Tcbf u = decode_tcbf(encode_tcbf(t, encoding));
    ASSERT_EQ(u.params(), t.params());
    ASSERT_EQ(u.set_bits(), t.set_bits());

    if (encoding == CounterEncoding::kFull) {
      double max_counter = 0.0;
      for (std::size_t b : t.set_bits()) {
        max_counter = std::max(max_counter, t.counter(b));
      }
      const double tolerance = max_counter / 255.0 / 2.0 + 1e-9;
      for (std::size_t b : t.set_bits()) {
        EXPECT_NEAR(u.counter(b), t.counter(b), tolerance);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CodecRoundTrip,
    ::testing::Combine(::testing::Values<std::size_t>(64, 256, 1000, 4096),
                       ::testing::Values<std::uint32_t>(2, 4, 6),
                       ::testing::Values(0, 3, 38, 200),  // sparse -> dense
                       ::testing::Values(0, 1, 2)));      // encodings

class BloomCodecRoundTrip
    : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(BloomCodecRoundTrip, Exact) {
  auto [m, keys] = GetParam();
  util::Rng rng(m * 31 + static_cast<unsigned>(keys));
  for (int trial = 0; trial < 8; ++trial) {
    BloomFilter bf({m, 4});
    for (int i = 0; i < keys; ++i) bf.insert("k" + std::to_string(rng()));
    EXPECT_EQ(decode_bloom(encode_bloom(bf)), bf);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, BloomCodecRoundTrip,
    ::testing::Combine(::testing::Values<std::size_t>(64, 256, 1000),
                       ::testing::Values(0, 1, 38, 500)));

TEST_P(CodecRoundTrip, EncodeDecodeEncodeIsByteIdentical) {
  // Wire canonicality: decoding and re-encoding must reproduce the exact
  // byte sequence. The max counter always quantizes to byte 255, so the
  // recovered scale equals the original and every counter byte survives.
  auto [m, k, keys, enc_i] = GetParam();
  const auto encoding = static_cast<CounterEncoding>(enc_i);
  util::Rng rng(static_cast<std::uint64_t>(m * 2246822519u + k * 3266489917u +
                                           static_cast<unsigned>(keys)));
  for (int trial = 0; trial < 4; ++trial) {
    Tcbf t({m, k}, 50.0);
    for (int i = 0; i < keys; ++i) t.insert("key" + std::to_string(rng()));
    if (encoding == CounterEncoding::kFull && trial % 2 == 1) {
      Tcbf extra({m, k}, 50.0);
      extra.insert("extra" + std::to_string(rng()));
      t.decay(rng.next_double(0.0, 20.0));
      t.a_merge(extra);
    }
    const auto first = encode_tcbf(t, encoding);
    const auto second = encode_tcbf(decode_tcbf(first), encoding);
    EXPECT_EQ(first, second);
  }
}

TEST_P(BloomCodecRoundTrip, EncodeDecodeEncodeIsByteIdentical) {
  auto [m, keys] = GetParam();
  util::Rng rng(m * 37 + static_cast<unsigned>(keys));
  for (int trial = 0; trial < 4; ++trial) {
    BloomFilter bf({m, 4});
    for (int i = 0; i < keys; ++i) bf.insert("k" + std::to_string(rng()));
    const auto first = encode_bloom(bf);
    const auto second = encode_bloom(decode_bloom(first));
    EXPECT_EQ(first, second);
  }
}

TEST(CodecFuzz, RandomBytesNeverCrash) {
  // Decoding attacker-controlled bytes must throw DecodeError or produce a
  // valid filter — never crash or hang.
  util::Rng rng(0xFEED);
  int decoded = 0, rejected = 0;
  for (int trial = 0; trial < 5000; ++trial) {
    std::vector<std::uint8_t> bytes(rng.next_below(64));
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng());
    try {
      Tcbf t = decode_tcbf(bytes);
      ++decoded;
      (void)t.popcount();
    } catch (const util::DecodeError&) {
      ++rejected;
    }
    try {
      BloomFilter bf = decode_bloom(bytes);
      ++decoded;
      (void)bf.popcount();
    } catch (const util::DecodeError&) {
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0);
}

TEST(CodecFuzz, TruncationsOfValidPayloadNeverCrash) {
  Tcbf t({256, 4}, 50.0);
  for (int i = 0; i < 20; ++i) t.insert("key" + std::to_string(i));
  const auto full = encode_tcbf(t, CounterEncoding::kFull);
  for (std::size_t len = 0; len < full.size(); ++len) {
    std::vector<std::uint8_t> cut(full.begin(),
                                  full.begin() + static_cast<long>(len));
    EXPECT_THROW(decode_tcbf(cut), util::DecodeError) << len;
  }
}

}  // namespace
}  // namespace bsub::bloom
