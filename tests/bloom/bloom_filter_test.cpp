#include "bloom/bloom_filter.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bloom/fpr.h"

namespace bsub::bloom {
namespace {

TEST(BloomFilter, StartsEmpty) {
  BloomFilter bf;
  EXPECT_TRUE(bf.empty());
  EXPECT_EQ(bf.popcount(), 0u);
  EXPECT_DOUBLE_EQ(bf.fill_ratio(), 0.0);
  EXPECT_FALSE(bf.contains("anything"));
}

TEST(BloomFilter, NoFalseNegatives) {
  BloomFilter bf;
  std::vector<std::string> keys;
  for (int i = 0; i < 30; ++i) keys.push_back("key" + std::to_string(i));
  for (const auto& k : keys) bf.insert(k);
  for (const auto& k : keys) EXPECT_TRUE(bf.contains(k)) << k;
}

TEST(BloomFilter, SingleKeySetsAtMostKBits) {
  BloomFilter bf({256, 4});
  bf.insert("NewMoon");
  EXPECT_LE(bf.popcount(), 4u);
  EXPECT_GE(bf.popcount(), 1u);
}

TEST(BloomFilter, InsertIsIdempotent) {
  BloomFilter bf;
  bf.insert("key");
  auto once = bf.set_bits();
  bf.insert("key");
  EXPECT_EQ(bf.set_bits(), once);
}

TEST(BloomFilter, MergeIsUnion) {
  BloomFilter a, b;
  a.insert("alpha");
  b.insert("beta");
  a.merge(b);
  EXPECT_TRUE(a.contains("alpha"));
  EXPECT_TRUE(a.contains("beta"));
}

TEST(BloomFilter, MergeMismatchedParamsThrows) {
  BloomFilter a({256, 4}), b({128, 4});
  EXPECT_THROW(a.merge(b), std::invalid_argument);
  BloomFilter c({256, 3});
  EXPECT_THROW(a.merge(c), std::invalid_argument);
}

TEST(BloomFilter, MergeIsCommutative) {
  BloomFilter a1({64, 3}), b1({64, 3});
  a1.insert("x");
  b1.insert("y");
  BloomFilter a2 = a1, b2 = b1;
  a1.merge(b1);
  b2.merge(a2);
  EXPECT_EQ(a1, b2);
}

TEST(BloomFilter, SetBitsMatchesTestBit) {
  BloomFilter bf({100, 4});
  bf.insert("one");
  bf.insert("two");
  auto bits = bf.set_bits();
  std::size_t count = 0;
  for (std::size_t i = 0; i < 100; ++i) {
    if (bf.test_bit(i)) ++count;
  }
  EXPECT_EQ(bits.size(), count);
  for (std::size_t b : bits) EXPECT_TRUE(bf.test_bit(b));
}

TEST(BloomFilter, ClearResets) {
  BloomFilter bf;
  bf.insert("key");
  bf.clear();
  EXPECT_TRUE(bf.empty());
  EXPECT_FALSE(bf.contains("key"));
}

TEST(BloomFilter, NonMultipleOf64Bits) {
  BloomFilter bf({100, 4});
  for (int i = 0; i < 20; ++i) bf.insert("k" + std::to_string(i));
  for (std::size_t b : bf.set_bits()) EXPECT_LT(b, 100u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(bf.contains("k" + std::to_string(i)));
  }
}

TEST(BloomFilter, FillRatioIncreasesWithLoad) {
  BloomFilter bf({256, 4});
  double prev = 0.0;
  for (int i = 0; i < 40; ++i) {
    bf.insert("key" + std::to_string(i));
    double fr = bf.fill_ratio();
    EXPECT_GE(fr, prev);
    prev = fr;
  }
  EXPECT_GT(prev, 0.3);
}

TEST(BloomFilter, EmpiricalFprTracksEquationOne) {
  // Insert n keys, probe with fresh keys, and compare the observed FPR with
  // the paper's Eq. 1 at the paper's settings (m=256, k=4, n=38).
  BloomParams params{256, 4};
  BloomFilter bf(params);
  const int n = 38;
  for (int i = 0; i < n; ++i) bf.insert("stored" + std::to_string(i));
  int fp = 0;
  const int probes = 200000;
  for (int i = 0; i < probes; ++i) {
    fp += bf.contains("probe" + std::to_string(i));
  }
  const double observed = static_cast<double>(fp) / probes;
  const double expected = false_positive_rate(n, params);
  // Eq. 1 is an expectation over random filters; a single filter deviates,
  // so allow a generous band around the ~0.04 theoretical value.
  EXPECT_NEAR(observed, expected, 0.03);
}

TEST(BloomFilter, DistinctKeysMostlyDistinguishable) {
  BloomFilter bf({1024, 4});
  bf.insert("present");
  int fp = 0;
  for (int i = 0; i < 1000; ++i) {
    fp += bf.contains("absent" + std::to_string(i));
  }
  EXPECT_LE(fp, 2);  // nearly empty filter: FPR ~ (4/1024)^4
}

TEST(BloomFilter, EqualityComparesContent) {
  BloomFilter a, b;
  a.insert("k");
  EXPECT_NE(a, b);
  b.insert("k");
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace bsub::bloom
