#include "metrics/collector.h"

#include <gtest/gtest.h>

namespace bsub::metrics {
namespace {

workload::Message msg(workload::MessageId id, util::Time created = 0) {
  workload::Message m;
  m.id = id;
  m.key = 0;
  m.producer = 0;
  m.size_bytes = 100;
  m.created = created;
  m.ttl = util::kHour;
  return m;
}

TEST(Collector, EmptyResults) {
  Collector c;
  RunResults r = c.results();
  EXPECT_EQ(r.interested_deliveries, 0u);
  EXPECT_DOUBLE_EQ(r.delivery_ratio, 0.0);
  EXPECT_DOUBLE_EQ(r.false_positive_rate, 0.0);
  EXPECT_DOUBLE_EQ(r.forwardings_per_delivery, 0.0);
}

TEST(Collector, DeliveryRatio) {
  Collector c;
  c.set_expected(10, 4);
  c.record_delivery(msg(1), 1, util::kMinute, true);
  c.record_delivery(msg(2), 2, util::kMinute, true);
  RunResults r = c.results();
  EXPECT_EQ(r.interested_deliveries, 2u);
  EXPECT_DOUBLE_EQ(r.delivery_ratio, 0.5);
}

TEST(Collector, DuplicateDeliveriesIgnored) {
  Collector c;
  c.set_expected(10, 4);
  c.record_delivery(msg(1), 1, util::kMinute, true);
  c.record_delivery(msg(1), 1, 2 * util::kMinute, true);
  EXPECT_EQ(c.results().interested_deliveries, 1u);
}

TEST(Collector, SameMessageDifferentNodesBothCount) {
  Collector c;
  c.set_expected(10, 4);
  c.record_delivery(msg(1), 1, util::kMinute, true);
  c.record_delivery(msg(1), 2, util::kMinute, true);
  EXPECT_EQ(c.results().interested_deliveries, 2u);
}

TEST(Collector, DelayStatistics) {
  Collector c;
  c.set_expected(10, 10);
  c.record_delivery(msg(1, 0), 1, 10 * util::kMinute, true);
  c.record_delivery(msg(2, 0), 2, 30 * util::kMinute, true);
  RunResults r = c.results();
  EXPECT_DOUBLE_EQ(r.mean_delay_minutes, 20.0);
  EXPECT_DOUBLE_EQ(r.median_delay_minutes, 20.0);
}

TEST(Collector, UninterestedDeliveryCountsAsFalse) {
  Collector c;
  c.set_expected(10, 10);
  c.record_delivery(msg(1), 1, util::kMinute, true);
  c.record_delivery(msg(2), 2, util::kMinute, false);
  RunResults r = c.results();
  EXPECT_EQ(r.false_deliveries, 1u);
  EXPECT_DOUBLE_EQ(r.false_positive_rate, 0.5);
}

TEST(Collector, FalselyInjectedInterestedDeliveryCountsBothWays) {
  // Delivered to an interested consumer, but via a false-positive pickup:
  // counts toward delivery ratio AND toward the FPR numerator.
  Collector c;
  c.set_expected(10, 10);
  c.record_delivery(msg(1), 1, util::kMinute, true, /*falsely_injected=*/true);
  RunResults r = c.results();
  EXPECT_EQ(r.interested_deliveries, 1u);
  EXPECT_EQ(r.false_deliveries, 1u);
  EXPECT_DOUBLE_EQ(r.false_positive_rate, 1.0);
}

TEST(Collector, FalseDeliveriesExcludedFromDelay) {
  Collector c;
  c.set_expected(10, 10);
  c.record_delivery(msg(1, 0), 1, 10 * util::kMinute, true);
  c.record_delivery(msg(2, 0), 2, 1000 * util::kMinute, false);
  EXPECT_DOUBLE_EQ(c.results().mean_delay_minutes, 10.0);
}

TEST(Collector, ForwardingsPerDelivery) {
  Collector c;
  c.set_expected(10, 10);
  c.record_forwarding(msg(1));
  c.record_forwarding(msg(1));
  c.record_forwarding(msg(2));
  c.record_delivery(msg(1), 1, util::kMinute, true);
  RunResults r = c.results();
  EXPECT_EQ(r.forwardings, 3u);
  EXPECT_DOUBLE_EQ(r.forwardings_per_delivery, 3.0);
}

TEST(Collector, ByteAccounting) {
  Collector c;
  c.record_forwarding(msg(1));  // 100 bytes
  c.record_control_bytes(42);
  RunResults r = c.results();
  EXPECT_EQ(r.message_bytes, 100u);
  EXPECT_EQ(r.control_bytes, 42u);
}

TEST(Collector, DeliveredLookup) {
  Collector c;
  c.record_delivery(msg(5), 3, util::kMinute, true);
  EXPECT_TRUE(c.delivered(5, 3));
  EXPECT_FALSE(c.delivered(5, 4));
  EXPECT_FALSE(c.delivered(6, 3));
}

TEST(Collector, TransportCountersSurfaceInResults) {
  Collector c;
  ++c.transport().datagrams_sent;
  c.transport().datagrams_sent += 2;
  ++c.transport().datagrams_dropped;
  ++c.transport().frames_retransmitted;
  ++c.transport().session_opens;
  ++c.transport().session_timeouts;
  RunResults r = c.results();
  EXPECT_EQ(r.transport.datagrams_sent, 3u);
  EXPECT_EQ(r.transport.datagrams_dropped, 1u);
  EXPECT_EQ(r.transport.frames_retransmitted, 1u);
  EXPECT_EQ(r.transport.session_opens, 1u);
  EXPECT_EQ(r.transport.session_timeouts, 1u);
  EXPECT_EQ(r.transport.frames_received, 0u);
}

TEST(Collector, TransportStatsMergeSums) {
  TransportStats a{.datagrams_sent = 2, .frames_sent = 5, .session_opens = 1};
  TransportStats b{.datagrams_sent = 3, .frames_sent = 1,
                   .reassembly_failures = 4};
  a.merge(b);
  EXPECT_EQ(a.datagrams_sent, 5u);
  EXPECT_EQ(a.frames_sent, 6u);
  EXPECT_EQ(a.session_opens, 1u);
  EXPECT_EQ(a.reassembly_failures, 4u);
}

TEST(Collector, FalseDeliveryAlsoDedupes) {
  Collector c;
  c.set_expected(10, 10);
  c.record_delivery(msg(1), 1, util::kMinute, false);
  c.record_delivery(msg(1), 1, util::kMinute, true);  // ignored: already seen
  RunResults r = c.results();
  EXPECT_EQ(r.interested_deliveries, 0u);
  EXPECT_EQ(r.false_deliveries, 1u);
}

}  // namespace
}  // namespace bsub::metrics
