#include "workload/workload.h"

#include <gtest/gtest.h>

#include <map>

#include "trace/synthetic.h"

namespace bsub::workload {
namespace {

trace::ContactTrace small_trace(std::uint64_t seed = 4) {
  trace::SyntheticTraceConfig cfg;
  cfg.node_count = 20;
  cfg.contact_count = 2000;
  cfg.duration = util::kDay;
  cfg.seed = seed;
  return trace::generate_trace(cfg);
}

TEST(Workload, EveryNodeHasOneInterest) {
  auto t = small_trace();
  KeySet keys = twitter_trend_keys();
  Workload w(t, keys, {});
  EXPECT_EQ(w.node_count(), 20u);
  for (trace::NodeId n = 0; n < 20; ++n) {
    EXPECT_EQ(w.interests_of(n).size(), 1u);
    EXPECT_LT(w.interest_of(n), keys.size());
  }
}

TEST(Workload, SubscriberListsAreConsistent) {
  auto t = small_trace();
  KeySet keys = twitter_trend_keys();
  Workload w(t, keys, {});
  for (KeyId k = 0; k < keys.size(); ++k) {
    for (trace::NodeId n : w.subscribers_of(k)) {
      EXPECT_EQ(w.interest_of(n), k);
    }
  }
  std::size_t total = 0;
  for (KeyId k = 0; k < keys.size(); ++k) total += w.subscribers_of(k).size();
  EXPECT_EQ(total, 20u);  // each node subscribes exactly once
}

TEST(Workload, MessagesSortedAndWithinHorizon) {
  auto t = small_trace();
  KeySet keys = twitter_trend_keys();
  WorkloadConfig cfg;
  cfg.ttl = 2 * util::kHour;
  Workload w(t, keys, cfg);
  ASSERT_FALSE(w.messages().empty());
  util::Time prev = -1;
  for (const Message& m : w.messages()) {
    EXPECT_GE(m.created, prev);
    prev = m.created;
    EXPECT_GE(m.created, t.start_time());
    EXPECT_LT(m.created, t.end_time());
    EXPECT_EQ(m.ttl, cfg.ttl);
    EXPECT_GE(m.size_bytes, 1u);
    EXPECT_LE(m.size_bytes, kMaxMessageBytes);
    EXPECT_LT(m.producer, 20u);
    EXPECT_LT(m.key, keys.size());
  }
}

TEST(Workload, MessageIdsAreDense) {
  auto t = small_trace();
  Workload w(t, twitter_trend_keys(), {});
  for (std::size_t i = 0; i < w.messages().size(); ++i) {
    EXPECT_EQ(w.messages()[i].id, i);
  }
}

TEST(Workload, DeterministicForSameSeed) {
  auto t = small_trace();
  KeySet keys = twitter_trend_keys();
  WorkloadConfig cfg;
  cfg.seed = 42;
  Workload w1(t, keys, cfg);
  Workload w2(t, keys, cfg);
  ASSERT_EQ(w1.node_count(), w2.node_count());
  for (trace::NodeId n = 0; n < w1.node_count(); ++n) {
    const auto i1 = w1.interests_of(n);
    const auto i2 = w2.interests_of(n);
    ASSERT_TRUE(std::equal(i1.begin(), i1.end(), i2.begin(), i2.end()));
  }
  ASSERT_EQ(w1.messages().size(), w2.messages().size());
  for (std::size_t i = 0; i < w1.messages().size(); ++i) {
    EXPECT_EQ(w1.messages()[i].created, w2.messages()[i].created);
    EXPECT_EQ(w1.messages()[i].key, w2.messages()[i].key);
  }
}

TEST(Workload, HigherCentralityProducesMore) {
  auto t = small_trace();
  Workload w(t, twitter_trend_keys(), {});
  std::map<trace::NodeId, int> produced;
  for (const Message& m : w.messages()) ++produced[m.producer];
  // Compare the most and least central nodes with nonzero centrality.
  trace::NodeId hi = 0, lo = 0;
  for (trace::NodeId n = 1; n < 20; ++n) {
    if (w.centrality()[n] > w.centrality()[hi]) hi = n;
    if (w.centrality()[n] < w.centrality()[lo]) lo = n;
  }
  if (w.centrality()[hi] > 2.0 * w.centrality()[lo] &&
      w.centrality()[lo] > 0.0) {
    EXPECT_GT(produced[hi], produced[lo]);
  }
}

TEST(Workload, BaseRateCalibration) {
  // The minimum-centrality node produces ~R_hat * duration messages.
  auto t = small_trace();
  WorkloadConfig cfg;
  cfg.base_rate_per_minute = 1.0 / 30.0;
  Workload w(t, twitter_trend_keys(), cfg);
  const double duration_min = util::to_minutes(t.end_time() - t.start_time());
  const double min_expected = duration_min / 30.0;
  // Total across 20 nodes is at least 20x the base-rate count.
  EXPECT_GT(static_cast<double>(w.messages().size()), min_expected * 10.0);
}

TEST(Workload, ExpectedDeliveriesExcludesProducer) {
  auto t = small_trace();
  Workload w(t, twitter_trend_keys(), {});
  std::uint64_t manual = 0;
  for (const Message& m : w.messages()) {
    for (trace::NodeId s : w.subscribers_of(m.key)) {
      manual += (s != m.producer);
    }
  }
  EXPECT_EQ(w.expected_deliveries(), manual);
  EXPECT_GT(w.expected_deliveries(), 0u);
}

TEST(Workload, EmptyTraceYieldsNoMessages) {
  trace::ContactTrace empty(5, {});
  Workload w(empty, twitter_trend_keys(), {});
  EXPECT_TRUE(w.messages().empty());
  EXPECT_EQ(w.expected_deliveries(), 0u);
}

}  // namespace
}  // namespace bsub::workload
