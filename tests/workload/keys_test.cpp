#include "workload/keys.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace bsub::workload {
namespace {

TEST(KeySet, RejectsInvalidInput) {
  EXPECT_THROW(KeySet({}), std::invalid_argument);
  EXPECT_THROW(KeySet({{"a", -1.0}}), std::invalid_argument);
  EXPECT_THROW(KeySet({{"a", 0.0}, {"b", 0.0}}), std::invalid_argument);
}

TEST(KeySet, AccessorsWork) {
  KeySet ks({{"alpha", 0.7}, {"beta", 0.3}});
  EXPECT_EQ(ks.size(), 2u);
  EXPECT_EQ(ks.name(0), "alpha");
  EXPECT_DOUBLE_EQ(ks.weight(1), 0.3);
  EXPECT_EQ(ks[0].name, "alpha");
}

TEST(KeySet, SampleMatchesWeights) {
  KeySet ks({{"hot", 0.8}, {"cold", 0.2}});
  util::Rng rng(5);
  int hot = 0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) hot += (ks.sample(rng) == 0);
  EXPECT_NEAR(hot / static_cast<double>(kN), 0.8, 0.01);
}

TEST(KeySet, AverageKeyLength) {
  KeySet ks({{"ab", 1.0}, {"abcd", 1.0}});
  EXPECT_DOUBLE_EQ(ks.average_key_length(), 3.0);
  EXPECT_EQ(ks.total_key_bytes(), 6u);
}

TEST(TwitterTrendKeys, HasThirtyEightKeys) {
  KeySet ks = twitter_trend_keys();
  EXPECT_EQ(ks.size(), 38u);
}

TEST(TwitterTrendKeys, TableTwoTopFourPublishedWeights) {
  KeySet ks = twitter_trend_keys();
  EXPECT_EQ(ks.name(0), "NewMoon");
  EXPECT_DOUBLE_EQ(ks.weight(0), 0.132);
  EXPECT_EQ(ks.name(1), "Twitter'sNew");
  EXPECT_DOUBLE_EQ(ks.weight(1), 0.103);
  EXPECT_EQ(ks.name(2), "funnybutnotcool");
  EXPECT_DOUBLE_EQ(ks.weight(2), 0.0887);
  EXPECT_EQ(ks.name(3), "openwebawards");
  EXPECT_DOUBLE_EQ(ks.weight(3), 0.0739);
}

TEST(TwitterTrendKeys, WeightsSumToOne) {
  KeySet ks = twitter_trend_keys();
  double total = 0.0;
  for (const KeyInfo& k : ks) total += k.weight;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(TwitterTrendKeys, WeightsAreMonotoneDecreasing) {
  KeySet ks = twitter_trend_keys();
  for (KeyId i = 1; i < ks.size(); ++i) {
    EXPECT_GE(ks.weight(i - 1), ks.weight(i)) << i;
  }
}

TEST(TwitterTrendKeys, AverageLengthNearPaperValue) {
  // Paper section VII-A: "The average length of the keys is 11.5 bytes."
  KeySet ks = twitter_trend_keys();
  EXPECT_NEAR(ks.average_key_length(), 11.5, 1.0);
}

TEST(TwitterTrendKeys, NamesAreUniqueAndSpaceFree) {
  KeySet ks = twitter_trend_keys();
  std::set<std::string> names;
  for (const KeyInfo& k : ks) {
    EXPECT_TRUE(names.insert(k.name).second) << k.name;
    EXPECT_EQ(k.name.find(' '), std::string::npos) << k.name;
    EXPECT_FALSE(k.name.empty());
  }
}

TEST(TwitterTrendKeys, SamplingHitsHeadHeavily) {
  KeySet ks = twitter_trend_keys();
  util::Rng rng(9);
  int top4 = 0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) top4 += (ks.sample(rng) < 4);
  // Top-4 mass = 0.132+0.103+0.0887+0.0739 = 0.3976.
  EXPECT_NEAR(top4 / static_cast<double>(kN), 0.3976, 0.01);
}

}  // namespace
}  // namespace bsub::workload
