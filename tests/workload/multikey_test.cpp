// Multi-interest workload construction (the section V-A extension).
#include <gtest/gtest.h>

#include <set>

#include "trace/synthetic.h"
#include "workload/workload.h"

namespace bsub::workload {
namespace {

trace::ContactTrace small_trace() {
  trace::SyntheticTraceConfig cfg;
  cfg.node_count = 20;
  cfg.contact_count = 1500;
  cfg.duration = util::kDay;
  cfg.seed = 14;
  return trace::generate_trace(cfg);
}

TEST(MultiKeyWorkload, EachNodeGetsRequestedInterestCount) {
  auto t = small_trace();
  KeySet keys = twitter_trend_keys();
  WorkloadConfig cfg;
  cfg.interests_per_node = 3;
  Workload w(t, keys, cfg);
  for (trace::NodeId n = 0; n < 20; ++n) {
    EXPECT_EQ(w.interests_of(n).size(), 3u);
  }
}

TEST(MultiKeyWorkload, InterestsAreDistinctPerNode) {
  auto t = small_trace();
  KeySet keys = twitter_trend_keys();
  WorkloadConfig cfg;
  cfg.interests_per_node = 5;
  Workload w(t, keys, cfg);
  for (trace::NodeId n = 0; n < 20; ++n) {
    std::set<KeyId> distinct(w.interests_of(n).begin(),
                             w.interests_of(n).end());
    EXPECT_EQ(distinct.size(), 5u);
  }
}

TEST(MultiKeyWorkload, RequestCappedByUniverse) {
  auto t = small_trace();
  KeySet keys({{"a", 0.5}, {"b", 0.3}, {"c", 0.2}});
  WorkloadConfig cfg;
  cfg.interests_per_node = 10;  // only 3 keys exist
  Workload w(t, keys, cfg);
  for (trace::NodeId n = 0; n < 20; ++n) {
    EXPECT_EQ(w.interests_of(n).size(), 3u);
  }
}

TEST(MultiKeyWorkload, IsInterestedMatchesAnyOfTheKeys) {
  auto t = small_trace();
  KeySet keys = twitter_trend_keys();
  WorkloadConfig cfg;
  cfg.interests_per_node = 4;
  Workload w(t, keys, cfg);
  for (trace::NodeId n = 0; n < 20; ++n) {
    for (KeyId k : w.interests_of(n)) EXPECT_TRUE(w.is_interested(n, k));
    std::size_t interested = 0;
    for (KeyId k = 0; k < keys.size(); ++k) interested += w.is_interested(n, k);
    EXPECT_EQ(interested, 4u);
  }
}

TEST(MultiKeyWorkload, SubscribersIndexCoversAllInterests) {
  auto t = small_trace();
  KeySet keys = twitter_trend_keys();
  WorkloadConfig cfg;
  cfg.interests_per_node = 2;
  Workload w(t, keys, cfg);
  std::size_t total = 0;
  for (KeyId k = 0; k < keys.size(); ++k) {
    for (trace::NodeId n : w.subscribers_of(k)) {
      EXPECT_TRUE(w.is_interested(n, k));
    }
    total += w.subscribers_of(k).size();
  }
  EXPECT_EQ(total, 40u);  // 20 nodes x 2 interests
}

TEST(MultiKeyWorkload, ExpectedDeliveriesScaleWithInterests) {
  auto t = small_trace();
  KeySet keys = twitter_trend_keys();
  WorkloadConfig one;
  one.interests_per_node = 1;
  WorkloadConfig four;
  four.interests_per_node = 4;
  Workload w1(t, keys, one);
  Workload w4(t, keys, four);
  EXPECT_GT(w4.expected_deliveries(), 2 * w1.expected_deliveries());
}

TEST(MultiKeyWorkload, ExplicitMultiInterestConstructor) {
  KeySet keys({{"a", 0.5}, {"b", 0.3}, {"c", 0.2}});
  Workload w(keys, 2, std::vector<std::vector<KeyId>>{{0, 2}, {1}}, {});
  EXPECT_TRUE(w.is_interested(0, 0));
  EXPECT_FALSE(w.is_interested(0, 1));
  EXPECT_TRUE(w.is_interested(0, 2));
  EXPECT_TRUE(w.is_interested(1, 1));
  EXPECT_EQ(w.interest_of(0), 0u);  // primary = first listed
}

}  // namespace
}  // namespace bsub::workload
