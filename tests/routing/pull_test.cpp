#include "routing/pull.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "testing/scenario.h"
#include "trace/synthetic.h"

namespace bsub::routing {
namespace {

using bsub::testing::contact;
using bsub::testing::make_message;
using bsub::testing::two_keys;

TEST(Pull, CollectsMatchingMessageFromNeighbor) {
  auto keys = two_keys();
  trace::ContactTrace t(2, {contact(0, 1, 10)});
  workload::Workload w(keys, 2, {1, 0}, {make_message(0, 0, 0)});
  PullProtocol pull;
  sim::Simulator sim;
  auto r = sim.run(t, w, pull);
  EXPECT_EQ(r.interested_deliveries, 1u);
  EXPECT_EQ(r.forwardings, 1u);
  EXPECT_GT(r.control_bytes, 0u);  // the interest announcement
}

TEST(Pull, IgnoresNonMatchingMessages) {
  auto keys = two_keys();
  trace::ContactTrace t(2, {contact(0, 1, 10)});
  // Node 1 wants key 1; node 0 produced key 0.
  workload::Workload w(keys, 2, {0, 1}, {make_message(0, 0, 0)});
  PullProtocol pull;
  sim::Simulator sim;
  auto r = sim.run(t, w, pull);
  EXPECT_EQ(r.interested_deliveries, 0u);
  EXPECT_EQ(r.forwardings, 0u);
}

TEST(Pull, StrictlyOneHop) {
  // Chain 0-1-2 with node 2 interested: PULL never relays through 1.
  auto keys = two_keys();
  trace::ContactTrace t(3, {contact(0, 1, 10), contact(1, 2, 20)});
  workload::Workload w(keys, 3, {1, 0, 0}, {make_message(0, 0, 0)});
  PullProtocol pull;
  sim::Simulator sim;
  auto r = sim.run(t, w, pull);
  // Node 1 is interested (key 0) and adjacent: delivered. Node 2 never
  // meets the producer: not delivered.
  EXPECT_EQ(r.interested_deliveries, 1u);
  EXPECT_LT(r.delivery_ratio, 1.0);
}

TEST(Pull, NoDuplicatePulls) {
  auto keys = two_keys();
  trace::ContactTrace t(2, {contact(0, 1, 10), contact(0, 1, 20)});
  workload::Workload w(keys, 2, {1, 0}, {make_message(0, 0, 0)});
  PullProtocol pull;
  sim::Simulator sim;
  auto r = sim.run(t, w, pull);
  EXPECT_EQ(r.forwardings, 1u);
}

TEST(Pull, ExpiredMessagesNotServed) {
  auto keys = two_keys();
  trace::ContactTrace t(2, {contact(0, 1, 60)});
  workload::Workload w(keys, 2, {1, 0},
                       {make_message(0, 0, 0, util::from_minutes(30))});
  PullProtocol pull;
  sim::Simulator sim;
  auto r = sim.run(t, w, pull);
  EXPECT_EQ(r.interested_deliveries, 0u);
}

TEST(Pull, PullsBothDirectionsInOneContact) {
  auto keys = two_keys();
  trace::ContactTrace t(2, {contact(0, 1, 10)});
  workload::Workload w(keys, 2, {1, 0},
                       {make_message(0, 0, 0), make_message(1, 1, 0)});
  PullProtocol pull;
  sim::Simulator sim;
  auto r = sim.run(t, w, pull);
  EXPECT_EQ(r.interested_deliveries, 2u);
}

TEST(Pull, AnnounceBytesMatchTheWireSizeFormula) {
  auto keys = two_keys();
  // Node 0 wants "beta" (4 bytes), node 1 wants "alpha" (5 bytes); they
  // meet three times. Every contact announces both directions from the
  // cached sizes, so control bytes are exactly 3 x (4 + 5).
  trace::ContactTrace t(2, {contact(0, 1, 10), contact(0, 1, 30),
                            contact(0, 1, 50)});
  workload::Workload w(keys, 2, {1, 0}, {make_message(0, 0, 0)});
  EXPECT_EQ(pull_announce_wire_size(w, 0), 4u);
  EXPECT_EQ(pull_announce_wire_size(w, 1), 5u);
  PullProtocol pull;
  sim::Simulator sim;
  auto r = sim.run(t, w, pull);
  EXPECT_EQ(r.control_bytes, 3u * (4u + 5u));
  // Two consumers fill the cache once each; the remaining four announces
  // are cache hits.
  EXPECT_EQ(r.hot_path.encode_cache_misses, 2u);
  EXPECT_EQ(r.hot_path.encode_cache_hits, 4u);
}

TEST(Pull, CachedAnnounceSizesMatchNaiveRecomputationReference) {
  trace::SyntheticTraceConfig cfg;
  cfg.node_count = 15;
  cfg.contact_count = 2000;
  cfg.duration = util::kDay;
  cfg.seed = 43;
  auto t = trace::generate_trace(cfg);
  auto keys = workload::twitter_trend_keys();
  workload::Workload w(t, keys, {});
  sim::Simulator sim;
  PullProtocol cached;
  auto fast = sim.run(t, w, cached);
  PullProtocol naive(/*naive_purge=*/true);
  auto ref = sim.run(t, w, naive);
  // Semantic fields identical; only the execution-shape counters differ.
  EXPECT_EQ(fast.control_bytes, ref.control_bytes);
  EXPECT_EQ(fast.message_bytes, ref.message_bytes);
  EXPECT_EQ(fast.interested_deliveries, ref.interested_deliveries);
  EXPECT_EQ(fast.forwardings, ref.forwardings);
  EXPECT_GT(fast.hot_path.encode_cache_hits, 0u);
  EXPECT_EQ(ref.hot_path.encode_cache_hits, 0u);
}

TEST(Pull, NeverFalseDelivers) {
  trace::SyntheticTraceConfig cfg;
  cfg.node_count = 15;
  cfg.contact_count = 2000;
  cfg.duration = util::kDay;
  cfg.seed = 31;
  auto t = trace::generate_trace(cfg);
  auto keys = workload::twitter_trend_keys();
  workload::Workload w(t, keys, {});
  PullProtocol pull;
  sim::Simulator sim;
  auto r = sim.run(t, w, pull);
  EXPECT_EQ(r.false_deliveries, 0u);  // exact string matching, no filters
}

TEST(Pull, ForwardingsPerDeliveryIsOne) {
  // Every PULL transfer is itself a delivery, so the ratio is exactly 1
  // whenever anything is delivered.
  trace::SyntheticTraceConfig cfg;
  cfg.node_count = 15;
  cfg.contact_count = 2000;
  cfg.duration = util::kDay;
  cfg.seed = 37;
  auto t = trace::generate_trace(cfg);
  auto keys = workload::twitter_trend_keys();
  workload::Workload w(t, keys, {});
  PullProtocol pull;
  sim::Simulator sim;
  auto r = sim.run(t, w, pull);
  ASSERT_GT(r.interested_deliveries, 0u);
  EXPECT_DOUBLE_EQ(r.forwardings_per_delivery, 1.0);
}

}  // namespace
}  // namespace bsub::routing
