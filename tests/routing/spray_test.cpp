#include "routing/spray.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "testing/scenario.h"
#include "trace/synthetic.h"

namespace bsub::routing {
namespace {

using bsub::testing::contact;
using bsub::testing::make_message;
using bsub::testing::two_keys;

TEST(Spray, SpraysToFirstEncounteredNodes) {
  auto keys = two_keys();
  // Producer 0 meets 1, 2, 3 in order with a 2-copy budget.
  trace::ContactTrace t(4, {contact(0, 1, 10), contact(0, 2, 20),
                            contact(0, 3, 30)});
  workload::Workload w(keys, 4, {1, 1, 1, 1}, {make_message(0, 0, 0)});
  SprayProtocol spray(2);
  sim::Simulator sim;
  auto r = sim.run(t, w, spray);
  EXPECT_EQ(r.forwardings, 2u);  // only the first two meetings get copies
}

TEST(Spray, RelayDeliversToMatchingConsumer) {
  auto keys = two_keys();
  // 0 -> 1 (relay, uninterested) -> 2 (consumer); 0 never meets 2.
  trace::ContactTrace t(3, {contact(0, 1, 10), contact(1, 2, 20)});
  workload::Workload w(keys, 3, {1, 1, 0}, {make_message(0, 0, 0)});
  SprayProtocol spray(3);
  sim::Simulator sim;
  auto r = sim.run(t, w, spray);
  EXPECT_EQ(r.interested_deliveries, 1u);
  EXPECT_NEAR(r.mean_delay_minutes, 20.0, 1e-9);
}

TEST(Spray, RelaysDoNotReSpray) {
  auto keys = two_keys();
  // Relay 1 meets 2 and 3 (both uninterested): the copy must not multiply.
  trace::ContactTrace t(4, {contact(0, 1, 10), contact(1, 2, 20),
                            contact(1, 3, 30)});
  workload::Workload w(keys, 4, {1, 1, 1, 1}, {make_message(0, 0, 0)});
  SprayProtocol spray(1);
  sim::Simulator sim;
  auto r = sim.run(t, w, spray);
  EXPECT_EQ(r.forwardings, 1u);  // the single spray; no relay-to-relay copies
}

TEST(Spray, ProducerStopsSprayingAtBudgetButConsumersStillDeliverable) {
  auto keys = two_keys();
  trace::ContactTrace t(4, {contact(0, 1, 10), contact(0, 2, 20),
                            contact(0, 3, 30)});
  // Node 3 is an interested consumer the producer meets after the budget
  // ran out; the message left the producer's buffer, so no delivery.
  workload::Workload w(keys, 4, {1, 1, 1, 0}, {make_message(0, 0, 0)});
  SprayProtocol spray(2);
  sim::Simulator sim;
  auto r = sim.run(t, w, spray);
  EXPECT_EQ(r.interested_deliveries, 0u);
}

TEST(Spray, SprayLandingOnConsumerCountsAsDelivery) {
  auto keys = two_keys();
  trace::ContactTrace t(2, {contact(0, 1, 10)});
  workload::Workload w(keys, 2, {1, 0}, {make_message(0, 0, 0)});
  SprayProtocol spray(3);
  sim::Simulator sim;
  auto r = sim.run(t, w, spray);
  EXPECT_EQ(r.interested_deliveries, 1u);
}

TEST(Spray, ExpiredMessagesPurged) {
  auto keys = two_keys();
  trace::ContactTrace t(3, {contact(0, 1, 5), contact(1, 2, 40)});
  workload::Workload w(keys, 3, {1, 1, 0},
                       {make_message(0, 0, 0, util::from_minutes(20))});
  SprayProtocol spray(3);
  sim::Simulator sim;
  auto r = sim.run(t, w, spray);
  EXPECT_EQ(r.interested_deliveries, 0u);  // relay copy expired before t=40
}

// Regression: spraying must carry the same delivered-guard as delivery.
// Without it, deliver() satisfies the consumer and spray() then re-sends
// the identical body to the now-satisfied consumer in the same contact —
// the delivery count stays correct (the collector dedups), but forwardings
// and message bytes double-charge and a spray copy is wasted.
TEST(Spray, DoesNotResprayToSatisfiedConsumer) {
  auto keys = two_keys();
  // Producer 0 meets interested consumer 1 twice.
  trace::ContactTrace t(2, {contact(0, 1, 10), contact(0, 1, 30)});
  workload::Workload w(keys, 2, {1, 0}, {make_message(0, 0, 0)});
  SprayProtocol spray(3);
  sim::Simulator sim;
  auto r = sim.run(t, w, spray);
  EXPECT_EQ(r.interested_deliveries, 1u);
  EXPECT_EQ(r.forwardings, 1u);  // one body transfer satisfies the consumer
  EXPECT_EQ(r.message_bytes, 100u);
}

// Regression: a consumer reachable via multiple paths (relay first, then
// the producer directly) must not be charged a second body transfer by the
// producer's spray loop once the relay has already delivered.
TEST(Spray, MultiPathConsumerIsNotDoubleCharged) {
  auto keys = two_keys();
  // 0 sprays to relay 1 (uninterested); 1 delivers to 2; 0 then meets 2.
  trace::ContactTrace t(3, {contact(0, 1, 10), contact(1, 2, 20),
                            contact(0, 2, 30)});
  workload::Workload w(keys, 3, {1, 1, 0}, {make_message(0, 0, 0)});
  SprayProtocol spray(3);
  sim::Simulator sim;
  auto r = sim.run(t, w, spray);
  EXPECT_EQ(r.interested_deliveries, 1u);
  // Spray to the relay + the relay's delivery; the producer-consumer
  // meeting at t=30 moves no body (delivered-guard on both paths).
  EXPECT_EQ(r.forwardings, 2u);
  EXPECT_EQ(r.message_bytes, 200u);
}

// The guard must not cost copy budget: skipping a satisfied consumer
// leaves the copy for the next unserved node.
TEST(Spray, SatisfiedConsumerDoesNotConsumeSprayBudget) {
  auto keys = two_keys();
  // Budget 1: consumer 1 is served directly at t=10; the single spray copy
  // must still reach relay 2 at t=20 and deliver to consumer 3 at t=30.
  trace::ContactTrace t(4, {contact(0, 1, 10), contact(0, 2, 20),
                            contact(2, 3, 30)});
  workload::Workload w(keys, 4, {0, 0, 1, 0}, {make_message(0, 0, 0)});
  SprayProtocol spray(1);
  sim::Simulator sim;
  auto r = sim.run(t, w, spray);
  EXPECT_EQ(r.interested_deliveries, 2u);
}

TEST(Spray, SitsBetweenPullAndPushOnDeliveryRatio) {
  trace::SyntheticTraceConfig cfg;
  cfg.node_count = 30;
  cfg.contact_count = 6000;
  cfg.duration = util::kDay;
  cfg.seed = 61;
  auto t = trace::generate_trace(cfg);
  auto keys = workload::twitter_trend_keys();
  workload::WorkloadConfig wcfg;
  wcfg.ttl = 8 * util::kHour;
  workload::Workload w(t, keys, wcfg);
  SprayProtocol spray(3);
  sim::Simulator sim;
  auto r = sim.run(t, w, spray);
  EXPECT_GT(r.delivery_ratio, 0.05);
  EXPECT_LT(r.delivery_ratio, 0.99);
  EXPECT_EQ(r.false_deliveries, 0u);  // exact matching, no filters
}

}  // namespace
}  // namespace bsub::routing
