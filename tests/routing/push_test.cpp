#include "routing/push.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "testing/scenario.h"
#include "trace/synthetic.h"

namespace bsub::routing {
namespace {

using bsub::testing::contact;
using bsub::testing::make_message;
using bsub::testing::two_keys;

TEST(Push, DirectDeliveryToInterestedNeighbor) {
  // 0 produces a key-0 message; 1 subscribes to key 0; they meet once.
  auto keys = two_keys();
  trace::ContactTrace t(2, {contact(0, 1, 10)});
  workload::Workload w(keys, 2, {1, 0}, {make_message(0, 0, 0)});
  PushProtocol push;
  sim::Simulator sim;
  auto r = sim.run(t, w, push);
  EXPECT_EQ(r.interested_deliveries, 1u);
  EXPECT_DOUBLE_EQ(r.delivery_ratio, 1.0);
  EXPECT_EQ(r.forwardings, 1u);
  EXPECT_NEAR(r.mean_delay_minutes, 10.0, 1e-9);
}

TEST(Push, FloodsThroughRelays) {
  // Chain 0-1-2: message reaches node 2 only via epidemic relay through 1.
  auto keys = two_keys();
  trace::ContactTrace t(3, {contact(0, 1, 10), contact(1, 2, 20)});
  workload::Workload w(keys, 3, {1, 1, 0}, {make_message(0, 0, 0)});
  PushProtocol push;
  sim::Simulator sim;
  auto r = sim.run(t, w, push);
  EXPECT_EQ(r.interested_deliveries, 1u);  // node 2
  EXPECT_EQ(r.forwardings, 2u);            // 0->1, 1->2
  EXPECT_NEAR(r.mean_delay_minutes, 20.0, 1e-9);
}

TEST(Push, ReplicatesToUninterestedNodesToo) {
  // Epidemic: the copy to an uninterested node is a forwarding but not a
  // delivery.
  auto keys = two_keys();
  trace::ContactTrace t(2, {contact(0, 1, 10)});
  workload::Workload w(keys, 2, {1, 1}, {make_message(0, 0, 0)});
  PushProtocol push;
  sim::Simulator sim;
  auto r = sim.run(t, w, push);
  EXPECT_EQ(r.interested_deliveries, 0u);
  EXPECT_EQ(r.forwardings, 1u);
}

TEST(Push, NoDuplicateCopies) {
  // Repeated meetings do not re-send.
  auto keys = two_keys();
  trace::ContactTrace t(2, {contact(0, 1, 10), contact(0, 1, 20),
                            contact(0, 1, 30)});
  workload::Workload w(keys, 2, {1, 0}, {make_message(0, 0, 0)});
  PushProtocol push;
  sim::Simulator sim;
  auto r = sim.run(t, w, push);
  EXPECT_EQ(r.forwardings, 1u);
}

TEST(Push, TtlExpiredMessagesAreNotForwarded) {
  auto keys = two_keys();
  trace::ContactTrace t(2, {contact(0, 1, 30)});
  workload::Workload w(keys, 2, {1, 0},
                       {make_message(0, 0, 0, util::from_minutes(20))});
  PushProtocol push;
  sim::Simulator sim;
  auto r = sim.run(t, w, push);
  EXPECT_EQ(r.interested_deliveries, 0u);
  EXPECT_EQ(r.forwardings, 0u);
}

TEST(Push, BandwidthLimitsTransfersPerContact) {
  // A 1-second contact at 100 B/s moves at most 100 bytes: one 100-byte
  // message, not two.
  auto keys = two_keys();
  trace::Contact c;
  c.a = 0;
  c.b = 1;
  c.start = util::from_minutes(10);
  c.end = c.start + util::kSecond;
  trace::ContactTrace t(2, {c});
  workload::Workload w(keys, 2, {1, 0},
                       {make_message(0, 0, 0), make_message(0, 0, 0)});
  PushProtocol push;
  sim::SimulatorConfig cfg;
  cfg.bandwidth_bytes_per_second = 100.0;
  sim::Simulator sim(cfg);
  auto r = sim.run(t, w, push);
  EXPECT_EQ(r.forwardings, 1u);
  EXPECT_EQ(r.interested_deliveries, 1u);
}

TEST(Push, DeliveryRatioIsUpperBoundOnLargerScenario) {
  trace::SyntheticTraceConfig cfg;
  cfg.node_count = 15;
  cfg.contact_count = 3000;
  cfg.duration = util::kDay;
  cfg.seed = 21;
  auto t = trace::generate_trace(cfg);
  auto keys = workload::twitter_trend_keys();
  workload::WorkloadConfig wcfg;
  wcfg.ttl = 6 * util::kHour;
  workload::Workload w(t, keys, wcfg);
  PushProtocol push;
  sim::Simulator sim;
  auto r = sim.run(t, w, push);
  EXPECT_GT(r.delivery_ratio, 0.5);  // flooding a dense 1-day trace
  EXPECT_EQ(r.false_deliveries, 0u);  // PUSH has no Bloom filters
}

TEST(Push, MessageCreatedAfterContactIsNotTimeTravelled) {
  auto keys = two_keys();
  trace::ContactTrace t(2, {contact(0, 1, 10)});
  workload::Workload w(keys, 2, {1, 0},
                       {make_message(0, 0, util::from_minutes(15))});
  PushProtocol push;
  sim::Simulator sim;
  auto r = sim.run(t, w, push);
  EXPECT_EQ(r.interested_deliveries, 0u);
}

}  // namespace
}  // namespace bsub::routing
