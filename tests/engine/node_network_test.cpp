#include <gtest/gtest.h>

#include "engine/network.h"

namespace bsub::engine {
namespace {

using util::from_minutes;
using util::kHour;

ContentMessage msg(std::uint64_t id, std::string key, util::Time created,
                   util::Time ttl = util::kDay) {
  ContentMessage m;
  m.id = id;
  m.key = std::move(key);
  m.body = std::vector<std::uint8_t>(100, 0xAB);
  m.created = created;
  m.ttl = ttl;
  return m;
}

NodeConfig no_decay() {
  NodeConfig cfg;
  cfg.df_per_minute = 0.0;
  return cfg;
}

TEST(Engine, DirectDeliveryProducerToConsumer) {
  Network net(no_decay());
  BsubNode& producer = net.add_node(1);
  BsubNode& consumer = net.add_node(2);
  consumer.subscribe("NewMoon");
  producer.publish(msg(1, "NewMoon", from_minutes(1)), from_minutes(1));

  net.contact(1, 2, from_minutes(5), kHour);
  ASSERT_EQ(net.deliveries().size(), 1u);
  EXPECT_EQ(net.deliveries()[0].consumer, 2u);
  EXPECT_EQ(net.deliveries()[0].key, "NewMoon");
  EXPECT_EQ(net.deliveries()[0].at, from_minutes(5));
}

TEST(Engine, NonSubscriberGetsNothing) {
  Network net(no_decay());
  net.add_node(1).publish(msg(1, "NewMoon", 0), 0);
  net.add_node(2).subscribe("Yankees");
  net.contact(1, 2, from_minutes(5), kHour);
  EXPECT_TRUE(net.deliveries().empty());
}

TEST(Engine, DuplicateContactsDeliverOnce) {
  Network net(no_decay());
  net.add_node(1).publish(msg(1, "NewMoon", 0), 0);
  net.add_node(2).subscribe("NewMoon");
  net.contact(1, 2, from_minutes(5), kHour);
  net.contact(1, 2, from_minutes(10), kHour);
  EXPECT_EQ(net.deliveries().size(), 1u);
}

TEST(Engine, ThreeHopViaBroker) {
  Network net(no_decay());
  BsubNode& producer = net.add_node(1);
  BsubNode& broker = net.add_node(2);
  BsubNode& consumer = net.add_node(3);
  broker.set_broker(true);
  consumer.subscribe("NewMoon");
  producer.publish(msg(1, "NewMoon", 0), 0);

  // Consumer primes the broker, broker picks up from producer, broker
  // delivers; producer and consumer never meet.
  net.contact(3, 2, from_minutes(1), kHour);
  EXPECT_TRUE(broker.relay_filter().contains("NewMoon"));
  net.contact(1, 2, from_minutes(10), kHour);
  EXPECT_EQ(broker.carried_count(), 1u);
  net.contact(2, 3, from_minutes(20), kHour);
  ASSERT_EQ(net.deliveries().size(), 1u);
  EXPECT_EQ(net.deliveries()[0].consumer, 3u);
}

TEST(Engine, NoPickupWithoutPrimedRelay) {
  Network net(no_decay());
  net.add_node(1).publish(msg(1, "NewMoon", 0), 0);
  BsubNode& broker = net.add_node(2);
  broker.set_broker(true);
  net.contact(1, 2, from_minutes(5), kHour);
  EXPECT_EQ(broker.carried_count(), 0u);
}

TEST(Engine, CopyLimitStopsReplication) {
  NodeConfig cfg = no_decay();
  cfg.copy_limit = 2;
  Network net(cfg);
  BsubNode& producer = net.add_node(1);
  producer.publish(msg(1, "NewMoon", 0), 0);
  for (NodeId b = 2; b <= 4; ++b) {
    BsubNode& broker = net.add_node(b);
    broker.set_broker(true);
  }
  BsubNode& consumer = net.add_node(5);
  consumer.subscribe("NewMoon");
  for (NodeId b = 2; b <= 4; ++b) net.contact(5, b, from_minutes(1), kHour);
  for (NodeId b = 2; b <= 4; ++b) net.contact(1, b, from_minutes(10), kHour);
  std::size_t carried = 0;
  for (NodeId b = 2; b <= 4; ++b) carried += net.node(b).carried_count();
  EXPECT_EQ(carried, 2u);
  EXPECT_EQ(producer.produced_count(), 0u);  // budget exhausted, forgotten
}

TEST(Engine, DecayErasesRouteAndGatesDelivery) {
  NodeConfig cfg;
  cfg.df_per_minute = 1.0;  // C = 50 -> 50-minute route lifetime
  Network net(cfg);
  net.add_node(1).publish(msg(1, "NewMoon", 0, 10 * kHour), 0);
  BsubNode& broker = net.add_node(2);
  broker.set_broker(true);
  BsubNode& consumer = net.add_node(3);
  consumer.subscribe("NewMoon");

  net.contact(3, 2, from_minutes(1), kHour);   // prime
  net.contact(1, 2, from_minutes(10), kHour);  // pickup (route alive)
  ASSERT_EQ(broker.carried_count(), 1u);
  net.contact(2, 3, from_minutes(120), kHour);  // route decayed: gated
  EXPECT_TRUE(net.deliveries().empty());
  // Re-priming reopens the route.
  net.contact(3, 2, from_minutes(130), kHour);
  net.contact(2, 3, from_minutes(131), kHour);
  EXPECT_EQ(net.deliveries().size(), 1u);
}

TEST(Engine, PreferentialTransferBetweenBrokers) {
  Network net(no_decay());
  net.add_node(1).publish(msg(1, "NewMoon", 0), 0);
  BsubNode& b1 = net.add_node(2);
  BsubNode& b2 = net.add_node(3);
  b1.set_broker(true);
  b2.set_broker(true);
  BsubNode& consumer = net.add_node(4);
  consumer.subscribe("NewMoon");

  net.contact(4, 2, from_minutes(1), kHour);  // prime b1 once
  net.contact(4, 3, from_minutes(2), kHour);  // prime b2 twice: stronger
  net.contact(4, 3, from_minutes(3), kHour);
  net.contact(1, 2, from_minutes(10), kHour);  // pickup at b1
  ASSERT_EQ(b1.carried_count(), 1u);
  net.contact(2, 3, from_minutes(20), kHour);  // moves to b2
  EXPECT_EQ(b1.carried_count(), 0u);
  EXPECT_EQ(b2.carried_count(), 1u);
}

TEST(Engine, BudgetExhaustionDropsFrames) {
  Network net(no_decay());
  BsubNode& producer = net.add_node(1);
  BsubNode& consumer = net.add_node(2);
  consumer.subscribe("NewMoon");
  for (std::uint64_t i = 0; i < 50; ++i) {
    producer.publish(msg(i, "NewMoon", 0), 0);
  }
  // A very short/slow contact: only part of the exchange fits.
  ContactReport report =
      net.contact(1, 2, from_minutes(5), util::kSecond, 500.0);
  EXPECT_GT(report.frames_dropped, 0u);
  EXPECT_LT(net.deliveries().size(), 50u);
  EXPECT_LE(report.bytes_used, 500u);
}

TEST(Engine, TtlExpiryPurgesEverywhere) {
  Network net(no_decay());
  net.add_node(1).publish(msg(1, "NewMoon", 0, from_minutes(30)), 0);
  BsubNode& consumer = net.add_node(2);
  consumer.subscribe("NewMoon");
  net.contact(1, 2, from_minutes(60), kHour);  // expired before the meeting
  EXPECT_TRUE(net.deliveries().empty());
}

TEST(Engine, MultiSubscriptionConsumer) {
  Network net(no_decay());
  BsubNode& producer = net.add_node(1);
  producer.publish(msg(1, "NewMoon", 0), 0);
  producer.publish(msg(2, "Yankees", 0), 0);
  producer.publish(msg(3, "LadyGaga", 0), 0);
  BsubNode& consumer = net.add_node(2);
  consumer.subscribe("NewMoon");
  consumer.subscribe("LadyGaga");
  net.contact(1, 2, from_minutes(5), kHour);
  EXPECT_EQ(net.deliveries().size(), 2u);
}

TEST(Engine, DuplicateNodeIdThrows) {
  Network net;
  net.add_node(1);
  EXPECT_THROW(net.add_node(1), std::invalid_argument);
  EXPECT_THROW(net.node(99), std::out_of_range);
}

TEST(Engine, GarbageFramesAreDropped) {
  Network net(no_decay());
  BsubNode& node = net.add_node(1);
  std::vector<std::uint8_t> garbage = {0xDE, 0xAD, 0xBE, 0xEF};
  EXPECT_TRUE(node.handle(garbage, from_minutes(1)).empty());
}

}  // namespace
}  // namespace bsub::engine
