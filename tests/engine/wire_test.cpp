#include "engine/wire.h"

#include <gtest/gtest.h>

#include "util/byte_io.h"
#include "util/rng.h"

namespace bsub::engine {
namespace {

ContentMessage sample_message() {
  ContentMessage m;
  m.id = 42;
  m.key = "NewMoon";
  m.body = {1, 2, 3, 4, 5};
  m.producer = 7;
  m.created = util::from_minutes(10);
  m.ttl = util::kHour;
  return m;
}

TEST(Wire, HelloRoundTrip) {
  HelloFrame h;
  h.sender = 99;
  h.is_broker = true;
  h.interest_report.insert("NewMoon");
  h.relay_report.insert("TigerWoods");
  h.relay_report.insert("Yankees");

  Frame f = decode(encode(h));
  ASSERT_EQ(f.type, FrameType::kHello);
  ASSERT_TRUE(f.hello.has_value());
  EXPECT_EQ(f.hello->sender, 99u);
  EXPECT_TRUE(f.hello->is_broker);
  EXPECT_EQ(f.hello->interest_report, h.interest_report);
  EXPECT_EQ(f.hello->relay_report, h.relay_report);
}

TEST(Wire, GenuineRoundTrip) {
  GenuineFrame g;
  g.sender = 3;
  g.filter = bloom::Tcbf({256, 4}, 50.0);
  g.filter.insert("alpha");
  g.filter.insert("beta");
  Frame f = decode(encode(g));
  ASSERT_EQ(f.type, FrameType::kGenuineFilter);
  EXPECT_EQ(f.genuine->sender, 3u);
  EXPECT_TRUE(f.genuine->filter.contains("alpha"));
  EXPECT_TRUE(f.genuine->filter.contains("beta"));
  // Uniform encoding preserves the (identical) counters exactly.
  EXPECT_DOUBLE_EQ(f.genuine->filter.min_counter("alpha").value(), 50.0);
}

TEST(Wire, RelayRoundTripPreservesCountersApproximately) {
  RelayFrame r;
  r.sender = 8;
  r.filter = bloom::Tcbf({256, 4}, 50.0);
  r.filter.insert("alpha");
  bloom::Tcbf other({256, 4}, 50.0);
  other.insert("beta");
  r.filter.a_merge(other);
  r.filter.decay(7.5);
  Frame f = decode(encode(r));
  ASSERT_EQ(f.type, FrameType::kRelayFilter);
  EXPECT_TRUE(f.relay->filter.contains("alpha"));
  EXPECT_TRUE(f.relay->filter.contains("beta"));
  EXPECT_NEAR(f.relay->filter.min_counter("alpha").value(),
              r.filter.min_counter("alpha").value(), 50.0 / 255.0 + 1e-9);
}

TEST(Wire, DataRoundTrip) {
  DataFrame d;
  d.sender = 5;
  d.message = sample_message();
  d.custody = true;
  Frame f = decode(encode(d));
  ASSERT_EQ(f.type, FrameType::kData);
  EXPECT_EQ(f.data->sender, 5u);
  EXPECT_EQ(f.data->message, sample_message());
  EXPECT_TRUE(f.data->custody);
}

TEST(Wire, EmptyBodyMessage) {
  DataFrame d;
  d.sender = 5;
  d.message = sample_message();
  d.message.body.clear();
  Frame f = decode(encode(d));
  EXPECT_TRUE(f.data->message.body.empty());
}

TEST(Wire, ChecksumDetectsCorruption) {
  auto bytes = encode(sample_message().id == 42 ? DataFrame{5, sample_message(), false}
                                                : DataFrame{});
  // Flip one payload bit.
  bytes[bytes.size() / 2] ^= 0x10;
  EXPECT_THROW(decode(bytes), util::DecodeError);
}

TEST(Wire, TruncationRejectedAtEveryLength) {
  HelloFrame h;
  h.sender = 1;
  h.interest_report.insert("k");
  auto bytes = encode(h);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    std::vector<std::uint8_t> cut(bytes.begin(),
                                  bytes.begin() + static_cast<long>(len));
    EXPECT_THROW(decode(cut), util::DecodeError) << len;
  }
}

TEST(Wire, BadMagicRejected) {
  auto bytes = encode(DataFrame{5, sample_message(), false});
  bytes[0] = 0x00;
  EXPECT_THROW(decode(bytes), util::DecodeError);
}

TEST(Wire, UnknownFrameTypeRejected) {
  auto bytes = encode(DataFrame{5, sample_message(), false});
  bytes[1] = 0x7F;
  EXPECT_THROW(decode(bytes), util::DecodeError);
}

TEST(Wire, FuzzRandomBytesNeverCrash) {
  util::Rng rng(0xF00D);
  int rejected = 0;
  for (int trial = 0; trial < 5000; ++trial) {
    std::vector<std::uint8_t> bytes(rng.next_below(128));
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng());
    try {
      (void)decode(bytes);
    } catch (const util::DecodeError&) {
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 4000);  // nearly everything random must be rejected
}

TEST(Wire, ExpiryHelpers) {
  ContentMessage m = sample_message();
  EXPECT_EQ(m.expiry(), m.created + m.ttl);
  EXPECT_FALSE(m.expired_at(m.created));
  EXPECT_TRUE(m.expired_at(m.expiry()));
}

}  // namespace
}  // namespace bsub::engine
