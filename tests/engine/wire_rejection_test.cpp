// Decoder rejection suite for engine frames: hand-crafted truncated,
// oversized, and garbage buffers must fail with a typed util::CodecError —
// never read out of bounds (the CI ASan job runs this suite), never accept
// trailing bytes, and never admit out-of-range message timestamps.
#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include "engine/wire.h"
#include "util/byte_io.h"
#include "util/hash.h"
#include "util/time.h"

namespace bsub::engine {
namespace {

/// Seals an arbitrary payload into a frame with a *correct* checksum, so
/// the tests below reach the payload validators rather than the checksum.
std::vector<std::uint8_t> seal(std::uint8_t type,
                               const std::vector<std::uint8_t>& payload) {
  util::ByteWriter w;
  w.put_u8(kFrameMagic);
  w.put_u8(kWireVersion);
  w.put_u8(type);
  w.put_varint(payload.size());
  w.put_bytes(payload);
  const std::string_view view(reinterpret_cast<const char*>(payload.data()),
                              payload.size());
  w.put_u32(static_cast<std::uint32_t>(util::fnv1a64(view)));
  return std::move(w).take();
}

util::ByteWriter message_payload(std::uint64_t created, std::uint64_t ttl,
                                 std::size_t key_len = 3,
                                 std::uint64_t body_len = 2) {
  util::ByteWriter w;
  w.put_u64(7);  // sender
  w.put_u64(42);  // message id
  w.put_string(std::string(key_len, 'k'));
  w.put_varint(body_len);
  for (std::uint64_t i = 0; i < body_len && i < 1024; ++i) w.put_u8(0xAB);
  w.put_u64(9);  // producer
  w.put_u64(created);
  w.put_u64(ttl);
  w.put_u8(0);  // custody flag
  return w;
}

ContentMessage sample_message() {
  ContentMessage m;
  m.id = 42;
  m.key = "NewMoon";
  m.body = {1, 2, 3};
  m.producer = 7;
  m.created = util::from_minutes(10);
  m.ttl = util::kHour;
  return m;
}

TEST(WireRejection, AbsurdPayloadLengthClaimRejectedBeforeUse) {
  // A 6-byte buffer claiming a 1 GiB payload must die on the length check.
  util::ByteWriter w;
  w.put_u8(kFrameMagic);
  w.put_u8(kWireVersion);
  w.put_u8(4);  // kData
  w.put_varint(std::uint64_t{1} << 30);
  try {
    (void)decode(std::move(w).take());
    FAIL() << "expected CodecError";
  } catch (const util::CodecError& e) {
    EXPECT_NE(std::string(e.what()).find("payload too long"),
              std::string::npos)
        << e.what();
  }
}

TEST(WireRejection, TrailingBytesAfterFrameRejected) {
  auto bytes = encode(CustodyAckFrame{1, 99, true});
  bytes.push_back(0x00);
  EXPECT_THROW(decode(bytes), util::CodecError);
}

TEST(WireRejection, TrailingBytesInsidePayloadRejected) {
  // Valid custody-ack payload plus one stray byte, re-sealed with a correct
  // checksum: the payload parser itself must notice the leftover.
  util::ByteWriter p;
  p.put_u64(1);   // sender
  p.put_u64(99);  // message id
  p.put_u8(1);    // accepted
  p.put_u8(0xEE);  // stray
  EXPECT_THROW(decode(seal(5, std::move(p).take())), util::CodecError);
}

TEST(WireRejection, NegativeMessageTimesRejected) {
  // A u64 with the sign bit set is not a valid util::Time.
  const std::uint64_t negative = std::uint64_t{1} << 63;
  EXPECT_THROW(decode(seal(4, std::move(message_payload(negative, 5)).take())),
               util::CodecError);
  EXPECT_THROW(decode(seal(4, std::move(message_payload(5, negative)).take())),
               util::CodecError);
}

TEST(WireRejection, ExpiryOverflowRejected) {
  const auto max = static_cast<std::uint64_t>(util::kTimeMax);
  EXPECT_THROW(
      decode(seal(4, std::move(message_payload(max - 10, 11)).take())),
      util::CodecError);
  // Boundary: created + ttl == kTimeMax is still representable.
  Frame f = decode(seal(4, std::move(message_payload(max - 10, 10)).take()));
  EXPECT_EQ(f.data->message.expiry(), util::kTimeMax);
}

TEST(WireRejection, OversizedKeyRejected) {
  auto p = message_payload(0, 5, /*key_len=*/5000);
  EXPECT_THROW(decode(seal(4, std::move(p).take())), util::CodecError);
}

TEST(WireRejection, OversizedBodyClaimRejected) {
  // Claims a body just past the cap; the writer emits only 1024 bytes, so
  // acceptance would mean a huge allocation plus an out-of-bounds read.
  auto p = message_payload(0, 5, 3, (std::uint64_t{1} << 20) + 1);
  EXPECT_THROW(decode(seal(4, std::move(p).take())), util::CodecError);
}

TEST(WireRejection, BlobLengthLiesRejected) {
  // Hello frame whose interest-report blob claims more bytes than exist.
  util::ByteWriter p;
  p.put_u64(3);
  p.put_u8(0);
  p.put_varint(200);  // blob length claim
  p.put_u8(0xBF);     // ...but only one byte follows
  EXPECT_THROW(decode(seal(1, std::move(p).take())), util::CodecError);
}

TEST(WireRejection, EmbeddedFilterGarbageRejected) {
  // Structurally valid frame + checksum, but the TCBF blob is garbage: the
  // codec error must surface as a typed failure, not a crash.
  util::ByteWriter p;
  p.put_u64(3);
  p.put_varint(3);
  p.put_u8(0x00);
  p.put_u8(0x01);
  p.put_u8(0x02);
  EXPECT_THROW(decode(seal(2, std::move(p).take())), util::CodecError);
}

TEST(WireRejection, EveryTruncationOfEveryFrameTypeThrowsTyped) {
  GenuineFrame g;
  g.sender = 3;
  g.filter = bloom::Tcbf({256, 4}, 50.0);
  g.filter.insert("alpha");
  RelayFrame rf;
  rf.sender = 4;
  rf.filter = bloom::Tcbf({256, 4}, 50.0);
  rf.filter.insert("beta");
  const std::vector<std::vector<std::uint8_t>> frames = {
      encode(g), encode(rf), encode(DataFrame{5, sample_message(), true}),
      encode(CustodyAckFrame{1, 2, false})};
  for (const auto& bytes : frames) {
    for (std::size_t len = 0; len < bytes.size(); ++len) {
      std::vector<std::uint8_t> cut(bytes.begin(),
                                    bytes.begin() + static_cast<long>(len));
      EXPECT_THROW(decode(cut), util::CodecError) << len;
    }
  }
}

TEST(WireRejection, FrameTypeZeroAndUnknownRejected) {
  auto bytes = encode(CustodyAckFrame{1, 2, true});
  for (std::uint8_t bad : {std::uint8_t{0}, std::uint8_t{6},
                           std::uint8_t{0xFF}}) {
    auto mutated = bytes;
    mutated[2] = bad;
    EXPECT_THROW(decode(mutated), util::CodecError) << int(bad);
  }
}

TEST(WireRejection, WireVersionMismatchRejected) {
  auto bytes = encode(CustodyAckFrame{1, 2, true});
  ASSERT_EQ(bytes[1], kWireVersion);
  for (std::uint8_t bad :
       {std::uint8_t{0}, std::uint8_t{kWireVersion + 1}, std::uint8_t{0xFF}}) {
    auto mutated = bytes;
    mutated[1] = bad;
    try {
      (void)decode(mutated);
      FAIL() << "expected CodecError for version " << int(bad);
    } catch (const util::CodecError& e) {
      EXPECT_EQ(e.offset(), 1u);
      EXPECT_NE(std::string(e.what()).find("unsupported wire version"),
                std::string::npos)
          << e.what();
    }
  }
}

TEST(WireRejection, EncodeDecodeEncodeByteIdentity) {
  // The version byte must round-trip: re-encoding a decoded frame yields
  // the exact original bytes.
  GenuineFrame g;
  g.sender = 3;
  g.filter = bloom::Tcbf({256, 4}, 50.0);
  g.filter.insert("alpha");
  const std::vector<std::vector<std::uint8_t>> frames = {
      encode(g), encode(DataFrame{5, sample_message(), true}),
      encode(CustodyAckFrame{1, 2, false})};
  for (const auto& bytes : frames) {
    const Frame f = decode(bytes);
    std::vector<std::uint8_t> again;
    switch (f.type) {
      case FrameType::kGenuineFilter:
        again = encode(*f.genuine);
        break;
      case FrameType::kData:
        again = encode(*f.data);
        break;
      case FrameType::kCustodyAck:
        again = encode(*f.custody_ack);
        break;
      default:
        FAIL() << "unexpected type";
    }
    EXPECT_EQ(again, bytes);
  }
}

TEST(WireRejection, ChecksumMismatchStillRejected) {
  auto bytes = encode(DataFrame{5, sample_message(), false});
  bytes[bytes.size() - 1] ^= 0x01;  // corrupt the checksum itself
  EXPECT_THROW(decode(bytes), util::CodecError);
}

}  // namespace
}  // namespace bsub::engine
