// Cross-substrate validation: the live frame-driven engine replaying a
// scenario must agree qualitatively with the strategy-object simulator
// running core::BsubProtocol on the same scenario.
#include "engine/trace_runner.h"

#include <gtest/gtest.h>

#include "core/bsub_protocol.h"
#include "core/df_tuning.h"
#include "sim/simulator.h"
#include "trace/synthetic.h"

namespace bsub::engine {
namespace {

struct Scenario {
  trace::ContactTrace trace;
  workload::KeySet keys;
  workload::Workload workload;

  explicit Scenario(std::uint64_t seed)
      : trace([&] {
          trace::SyntheticTraceConfig cfg;
          cfg.node_count = 25;
          cfg.contact_count = 4000;
          cfg.duration = util::kDay;
          cfg.seed = seed;
          return trace::generate_trace(cfg);
        }()),
        keys(workload::twitter_trend_keys()), workload([&] {
          workload::WorkloadConfig wcfg;
          wcfg.ttl = 6 * util::kHour;
          wcfg.seed = seed + 1;
          return workload::Workload(trace, keys, wcfg);
        }()) {}
};

NodeConfig node_config_for(const Scenario& s, util::Time ttl) {
  NodeConfig cfg;
  cfg.df_per_minute =
      core::compute_df(s.trace, ttl, cfg.filter_params, cfg.initial_counter)
          .df_per_minute;
  return cfg;
}

TEST(TraceRunner, DeliversOnRealScenario) {
  Scenario s(71);
  TraceRunner runner(node_config_for(s, 6 * util::kHour), {3, 5, 5 * util::kHour});
  TraceRunResults r = runner.run(s.trace, s.workload);
  EXPECT_EQ(r.contacts_processed, s.trace.contacts().size());
  EXPECT_GT(r.deliveries, 0u);
  EXPECT_GT(r.delivery_ratio, 0.05);
  EXPECT_LE(r.delivery_ratio, 1.0);
  EXPECT_GT(r.frames_delivered, r.deliveries);
  EXPECT_GT(r.bytes_used, 0u);
}

TEST(TraceRunner, IsDeterministic) {
  Scenario s(72);
  NodeConfig cfg = node_config_for(s, 6 * util::kHour);
  TraceRunner runner(cfg, {3, 5, 5 * util::kHour});
  TraceRunResults a = runner.run(s.trace, s.workload);
  TraceRunResults b = runner.run(s.trace, s.workload);
  EXPECT_EQ(a.deliveries, b.deliveries);
  EXPECT_EQ(a.frames_delivered, b.frames_delivered);
  EXPECT_EQ(a.bytes_used, b.bytes_used);
  EXPECT_DOUBLE_EQ(a.mean_delay_minutes, b.mean_delay_minutes);
}

TEST(TraceRunner, AgreesWithSimulatorSubstrate) {
  // The engine charges real frame bytes and the simulator charges analytic
  // sizes, and their handshake granularity differs slightly — but both run
  // the same protocol on the same scenario, so the delivery ratios must
  // land in the same neighborhood and far from the baselines.
  Scenario s(73);
  const util::Time ttl = 6 * util::kHour;

  TraceRunner runner(node_config_for(s, ttl), {3, 5, 5 * util::kHour});
  TraceRunResults engine_r = runner.run(s.trace, s.workload);

  core::BsubConfig sim_cfg;
  sim_cfg.df_per_minute =
      core::compute_df(s.trace, ttl, sim_cfg.filter_params,
                       sim_cfg.initial_counter)
          .df_per_minute;
  core::BsubProtocol proto(sim_cfg);
  metrics::RunResults sim_r = sim::Simulator().run(s.trace, s.workload, proto);

  EXPECT_NEAR(engine_r.delivery_ratio, sim_r.delivery_ratio, 0.15);
  // Delays in the same regime too (minutes-scale agreement).
  if (engine_r.deliveries > 0 && sim_r.interested_deliveries > 0) {
    EXPECT_NEAR(engine_r.mean_delay_minutes, sim_r.mean_delay_minutes,
                0.6 * std::max(engine_r.mean_delay_minutes,
                               sim_r.mean_delay_minutes));
  }
}

TEST(TraceRunner, StarvedBandwidthDropsFrames) {
  Scenario s(74);
  TraceRunner runner(node_config_for(s, 6 * util::kHour),
                     {3, 5, 5 * util::kHour},
                     /*bandwidth=*/30.0);  // bytes per second: brutal
  TraceRunResults r = runner.run(s.trace, s.workload);
  EXPECT_GT(r.frames_dropped, 0u);
}

TEST(TraceRunner, EmptyWorkloadDeliversNothing) {
  Scenario s(75);
  workload::Workload empty(s.keys, s.trace.node_count(),
                           std::vector<workload::KeyId>(
                               s.trace.node_count(), 0),
                           {});
  TraceRunner runner(node_config_for(s, 6 * util::kHour),
                     {3, 5, 5 * util::kHour});
  TraceRunResults r = runner.run(s.trace, empty);
  EXPECT_EQ(r.deliveries, 0u);
  EXPECT_EQ(r.expected_deliveries, 0u);
}

}  // namespace
}  // namespace bsub::engine
