#include "sim/link.h"

#include <gtest/gtest.h>

namespace bsub::sim {
namespace {

TEST(Link, BudgetIsDurationTimesRate) {
  Link link(10 * util::kSecond, 1000.0);  // 10 s at 1000 B/s
  EXPECT_EQ(link.budget_bytes(), 10000u);
  EXPECT_EQ(link.remaining_bytes(), 10000u);
  EXPECT_EQ(link.used_bytes(), 0u);
}

TEST(Link, TrySendConsumesBudget) {
  Link link(util::kSecond, 1000.0);
  EXPECT_TRUE(link.try_send(400));
  EXPECT_EQ(link.used_bytes(), 400u);
  EXPECT_EQ(link.remaining_bytes(), 600u);
}

TEST(Link, TrySendFailsWithoutConsumingWhenTooBig) {
  Link link(util::kSecond, 1000.0);
  EXPECT_FALSE(link.try_send(1001));
  EXPECT_EQ(link.used_bytes(), 0u);
  EXPECT_TRUE(link.try_send(1000));  // exact fit still works
}

TEST(Link, ExhaustedLinkRejectsEverything) {
  Link link(util::kSecond, 100.0);
  EXPECT_TRUE(link.try_send(100));
  EXPECT_FALSE(link.try_send(1));
}

TEST(Link, ZeroByteSendAlwaysSucceeds) {
  Link link(0, 1000.0);
  EXPECT_TRUE(link.try_send(0));
}

TEST(Link, DefaultBandwidthIsPaperValue) {
  // 250 Kbps = 31250 B/s (paper section VII-A).
  EXPECT_DOUBLE_EQ(kDefaultBandwidthBytesPerSecond, 31250.0);
  Link link(2 * util::kMinute, kDefaultBandwidthBytesPerSecond);
  EXPECT_EQ(link.budget_bytes(), 120u * 31250u);
}

TEST(Link, SubSecondDurationRoundsDown) {
  Link link(1500, 1000.0);  // 1.5 s
  EXPECT_EQ(link.budget_bytes(), 1500u);
}

}  // namespace
}  // namespace bsub::sim
