#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

#include "trace/synthetic.h"
#include "workload/workload.h"

namespace bsub::sim {
namespace {

/// Records the event sequence it sees, for ordering assertions.
class RecordingProtocol final : public Protocol {
 public:
  struct Event {
    enum Kind { kMessage, kContact } kind;
    util::Time time;
    trace::NodeId a = 0, b = 0;
  };

  using Protocol::on_start;
  void on_start(const ScenarioInfo& scenario,
                const workload::Workload& workload,
                metrics::Collector& collector) override {
    started = true;
    node_count = scenario.node_count;
    collector_ = &collector;
    (void)workload;
  }
  void on_message_created(const workload::Message& msg,
                          util::Time now) override {
    events.push_back({Event::kMessage, now, msg.producer, 0});
  }
  void on_contact(trace::NodeId a, trace::NodeId b, util::Time now,
                  util::Time duration, Link& link) override {
    events.push_back({Event::kContact, now, a, b});
    last_budget = link.budget_bytes();
    last_duration = duration;
  }
  void on_end(util::Time now) override { end_time = now; }
  const char* name() const override { return "recorder"; }

  bool started = false;
  std::size_t node_count = 0;
  std::vector<Event> events;
  std::uint64_t last_budget = 0;
  util::Time last_duration = 0;
  util::Time end_time = -1;
  metrics::Collector* collector_ = nullptr;
};

struct Scenario {
  trace::ContactTrace trace;
  workload::KeySet keys;
  workload::Workload workload;

  explicit Scenario(std::uint64_t seed = 11)
      : trace([&] {
          trace::SyntheticTraceConfig cfg;
          cfg.node_count = 10;
          cfg.contact_count = 300;
          cfg.duration = util::kDay;
          cfg.seed = seed;
          return trace::generate_trace(cfg);
        }()),
        keys(workload::twitter_trend_keys()),
        workload(trace, keys, {}) {}
};

TEST(Simulator, DispatchesAllEvents) {
  Scenario s;
  RecordingProtocol proto;
  Simulator sim;
  sim.run(s.trace, s.workload, proto);
  EXPECT_TRUE(proto.started);
  EXPECT_EQ(proto.node_count, 10u);
  std::size_t contacts = 0, messages = 0;
  for (const auto& e : proto.events) {
    (e.kind == RecordingProtocol::Event::kContact ? contacts : messages)++;
  }
  EXPECT_EQ(contacts, s.trace.contacts().size());
  EXPECT_EQ(messages, s.workload.messages().size());
}

TEST(Simulator, EventsAreTimeOrdered) {
  Scenario s;
  RecordingProtocol proto;
  Simulator sim;
  sim.run(s.trace, s.workload, proto);
  util::Time prev = -1;
  for (const auto& e : proto.events) {
    EXPECT_GE(e.time, prev);
    prev = e.time;
  }
  EXPECT_EQ(proto.end_time, prev);
}

TEST(Simulator, MessageCreationPrecedesSimultaneousContact) {
  // A message created at time t must be visible to a contact starting at t.
  std::vector<trace::Contact> contacts = {{0, 1, 100, 200}};
  trace::ContactTrace t(2, std::move(contacts));
  // Hand-build a workload-like message at exactly t = 100 is impractical via
  // the Poisson generator; instead assert the merge rule on the recorded
  // order: every message with created == contact start appears first.
  Scenario s;
  RecordingProtocol proto;
  Simulator sim;
  sim.run(s.trace, s.workload, proto);
  for (std::size_t i = 1; i < proto.events.size(); ++i) {
    const auto& prev = proto.events[i - 1];
    const auto& cur = proto.events[i];
    if (prev.time == cur.time &&
        prev.kind == RecordingProtocol::Event::kContact) {
      EXPECT_NE(cur.kind, RecordingProtocol::Event::kMessage)
          << "message after contact at same timestamp";
    }
  }
}

TEST(Simulator, LinkBudgetMatchesContactDuration) {
  std::vector<trace::Contact> contacts = {{0, 1, 0, 4 * util::kSecond}};
  trace::ContactTrace t(2, std::move(contacts), "tiny");
  workload::KeySet keys = workload::twitter_trend_keys();
  workload::Workload w(t, keys, {});
  RecordingProtocol proto;
  SimulatorConfig cfg;
  cfg.bandwidth_bytes_per_second = 500.0;
  Simulator sim(cfg);
  sim.run(t, w, proto);
  EXPECT_EQ(proto.last_budget, 2000u);
  EXPECT_EQ(proto.last_duration, 4 * util::kSecond);
}

TEST(Simulator, ResultsCarryExpectedCounts) {
  Scenario s;
  RecordingProtocol proto;
  Simulator sim;
  metrics::RunResults r = sim.run(s.trace, s.workload, proto);
  EXPECT_EQ(r.messages_created, s.workload.messages().size());
  EXPECT_EQ(r.expected_deliveries, s.workload.expected_deliveries());
  EXPECT_EQ(r.interested_deliveries, 0u);  // recorder delivers nothing
  EXPECT_DOUBLE_EQ(r.delivery_ratio, 0.0);
}

TEST(Simulator, RunIsRepeatable) {
  Scenario s;
  RecordingProtocol p1, p2;
  Simulator sim;
  sim.run(s.trace, s.workload, p1);
  sim.run(s.trace, s.workload, p2);
  ASSERT_EQ(p1.events.size(), p2.events.size());
  for (std::size_t i = 0; i < p1.events.size(); ++i) {
    EXPECT_EQ(p1.events[i].time, p2.events[i].time);
    EXPECT_EQ(p1.events[i].kind, p2.events[i].kind);
  }
}

}  // namespace
}  // namespace bsub::sim
