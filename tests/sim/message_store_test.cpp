#include "sim/message_store.h"

#include <gtest/gtest.h>

namespace bsub::sim {
namespace {

workload::Message msg(workload::MessageId id, util::Time created = 0,
                      util::Time ttl = util::kHour) {
  workload::Message m;
  m.id = id;
  m.key = 0;
  m.producer = 0;
  m.size_bytes = 100;
  m.created = created;
  m.ttl = ttl;
  return m;
}

TEST(MessageStore, AddAndContains) {
  MessageStore s;
  EXPECT_TRUE(s.add(msg(1)));
  EXPECT_TRUE(s.contains(1));
  EXPECT_FALSE(s.contains(2));
  EXPECT_EQ(s.size(), 1u);
}

TEST(MessageStore, DuplicateAddRejected) {
  MessageStore s;
  EXPECT_TRUE(s.add(msg(1)));
  EXPECT_FALSE(s.add(msg(1)));
  EXPECT_EQ(s.size(), 1u);
}

TEST(MessageStore, RemoveWorks) {
  MessageStore s;
  s.add(msg(1));
  EXPECT_TRUE(s.remove(1));
  EXPECT_FALSE(s.remove(1));
  EXPECT_TRUE(s.empty());
}

TEST(MessageStore, FindReturnsStoredMessage) {
  MessageStore s;
  s.add(msg(7, 123));
  const workload::Message* m = s.find(7);
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->created, 123);
  EXPECT_EQ(s.find(8), nullptr);
}

TEST(MessageStore, PurgeExpiredDropsOnlyExpired) {
  MessageStore s;
  s.add(msg(1, 0, util::kMinute));        // expires at 1 min
  s.add(msg(2, 0, 10 * util::kMinute));   // expires at 10 min
  s.purge_expired(5 * util::kMinute);
  EXPECT_FALSE(s.contains(1));
  EXPECT_TRUE(s.contains(2));
}

TEST(MessageStore, ExpiryIsInclusiveAtDeadline) {
  MessageStore s;
  s.add(msg(1, 0, util::kMinute));
  s.purge_expired(util::kMinute);  // exactly at expiry: gone
  EXPECT_FALSE(s.contains(1));
}

TEST(MessageStore, IterationIsIdOrdered) {
  MessageStore s;
  s.add(msg(5));
  s.add(msg(1));
  s.add(msg(3));
  std::vector<workload::MessageId> order;
  for (const auto& [id, m] : s) order.push_back(id);
  EXPECT_EQ(order, (std::vector<workload::MessageId>{1, 3, 5}));
}

TEST(MessageStore, ClearEmpties) {
  MessageStore s;
  s.add(msg(1));
  s.clear();
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
}

TEST(MessageStore, PurgeReportsDroppedCount) {
  MessageStore s;
  s.add(msg(1, 0, util::kMinute));
  s.add(msg(2, 0, util::kMinute));
  s.add(msg(3, 0, util::kHour));
  EXPECT_EQ(s.purge_expired(util::kMinute), 2u);
  EXPECT_EQ(s.purge_expired(util::kMinute), 0u);  // nothing left to drop
  EXPECT_EQ(s.size(), 1u);
}

TEST(MessageStore, PurgeIsSkippedWhenNothingIsDue) {
  MessageStore s;
  s.add(msg(1, 0, util::kHour));
  const std::uint64_t skipped_before = s.stats().purges_skipped;
  EXPECT_EQ(s.purge_expired(util::kMinute), 0u);
  EXPECT_EQ(s.stats().purges_skipped, skipped_before + 1);
  EXPECT_EQ(s.stats().purges_scanned, 0u);
}

TEST(MessageStore, SharedAddKeepsPayloadIdentity) {
  workload::Message m = msg(7, 123);
  MessageRef ref = std::make_shared<const workload::Message>(m);
  MessageStore a;
  MessageStore b;
  a.add(ref);
  b.add(a.find_ref(7));  // custody move: same payload, no copy
  EXPECT_EQ(a.find_ref(7).get(), ref.get());
  EXPECT_EQ(b.find_ref(7).get(), ref.get());
  EXPECT_EQ(a.stats().shared_adds, 1u);
  EXPECT_EQ(b.stats().shared_adds, 1u);
  EXPECT_EQ(a.stats().copied_adds, 0u);
}

TEST(MessageStore, CopyingAddMakesAnOwnedPayload) {
  workload::Message m = msg(7);
  MessageStore s;
  s.add(m);  // const Message& overload: deep copy
  EXPECT_NE(s.find(7), &m);
  EXPECT_EQ(s.stats().copied_adds, 1u);
  EXPECT_EQ(s.stats().shared_adds, 0u);
}

TEST(MessageStore, BorrowedMessageIsNonOwning) {
  workload::Message m = msg(9, 5);
  MessageRef ref = borrow_message(m);
  EXPECT_EQ(ref.get(), &m);
  MessageStore s;
  s.add(ref);
  EXPECT_EQ(s.find(9), &m);
}

TEST(MessageStore, StaleHeapEntriesDoNotDropLiveMessages) {
  // Remove a message before its expiry: its heap entry goes stale. A later
  // purge at that expiry must pop the stale entry without touching the
  // still-live remainder.
  MessageStore s;
  s.add(msg(1, 0, util::kMinute));
  s.add(msg(2, 0, util::kHour));
  s.remove(1);
  EXPECT_EQ(s.purge_expired(util::kMinute), 0u);
  EXPECT_TRUE(s.contains(2));
  // The stale pop consumed the due entry; the next purge is O(1) again.
  const std::uint64_t skipped_before = s.stats().purges_skipped;
  s.purge_expired(util::kMinute);
  EXPECT_EQ(s.stats().purges_skipped, skipped_before + 1);
}

TEST(MessageStore, FastAndScanPurgeAgreeOnRandomizedModel) {
  // Differential model check: drive a fast store and a naive-scan store
  // through an identical randomized op sequence (add / remove / purge at
  // advancing times) and require identical contents at every purge.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    std::uint64_t state = seed * 0x9E3779B97F4A7C15ULL;
    auto next = [&state]() {
      state ^= state << 13;
      state ^= state >> 7;
      state ^= state << 17;
      return state;
    };
    MessageStore fast;
    MessageStore scan;
    util::Time now = 0;
    workload::MessageId next_id = 1;
    for (int op = 0; op < 400; ++op) {
      switch (next() % 4) {
        case 0:
        case 1: {  // add with randomized ttl
          const workload::Message m =
              msg(next_id++, now, 1 + static_cast<util::Time>(
                                          next() % (2 * util::kHour)));
          fast.add(m);
          scan.add(m);
          break;
        }
        case 2: {  // remove a random (maybe absent) id
          const workload::MessageId id = 1 + next() % next_id;
          fast.remove(id);
          scan.remove(id);
          break;
        }
        case 3: {  // advance time and purge both ways
          now += static_cast<util::Time>(next() % util::kHour);
          EXPECT_EQ(fast.purge_expired(now), scan.purge_expired_scan(now))
              << "seed " << seed << " op " << op;
          break;
        }
      }
      ASSERT_EQ(fast.size(), scan.size()) << "seed " << seed << " op " << op;
    }
    now += 3 * util::kHour;
    EXPECT_EQ(fast.purge_expired(now), scan.purge_expired_scan(now));
    auto fit = fast.begin();
    for (const auto& e : scan) {
      ASSERT_NE(fit, fast.end());
      EXPECT_EQ(fit->id, e.id);
      ++fit;
    }
    EXPECT_EQ(fit, fast.end());
  }
}

}  // namespace
}  // namespace bsub::sim
