#include "sim/message_store.h"

#include <gtest/gtest.h>

namespace bsub::sim {
namespace {

workload::Message msg(workload::MessageId id, util::Time created = 0,
                      util::Time ttl = util::kHour) {
  workload::Message m;
  m.id = id;
  m.key = 0;
  m.producer = 0;
  m.size_bytes = 100;
  m.created = created;
  m.ttl = ttl;
  return m;
}

TEST(MessageStore, AddAndContains) {
  MessageStore s;
  EXPECT_TRUE(s.add(msg(1)));
  EXPECT_TRUE(s.contains(1));
  EXPECT_FALSE(s.contains(2));
  EXPECT_EQ(s.size(), 1u);
}

TEST(MessageStore, DuplicateAddRejected) {
  MessageStore s;
  EXPECT_TRUE(s.add(msg(1)));
  EXPECT_FALSE(s.add(msg(1)));
  EXPECT_EQ(s.size(), 1u);
}

TEST(MessageStore, RemoveWorks) {
  MessageStore s;
  s.add(msg(1));
  EXPECT_TRUE(s.remove(1));
  EXPECT_FALSE(s.remove(1));
  EXPECT_TRUE(s.empty());
}

TEST(MessageStore, FindReturnsStoredMessage) {
  MessageStore s;
  s.add(msg(7, 123));
  const workload::Message* m = s.find(7);
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->created, 123);
  EXPECT_EQ(s.find(8), nullptr);
}

TEST(MessageStore, PurgeExpiredDropsOnlyExpired) {
  MessageStore s;
  s.add(msg(1, 0, util::kMinute));        // expires at 1 min
  s.add(msg(2, 0, 10 * util::kMinute));   // expires at 10 min
  s.purge_expired(5 * util::kMinute);
  EXPECT_FALSE(s.contains(1));
  EXPECT_TRUE(s.contains(2));
}

TEST(MessageStore, ExpiryIsInclusiveAtDeadline) {
  MessageStore s;
  s.add(msg(1, 0, util::kMinute));
  s.purge_expired(util::kMinute);  // exactly at expiry: gone
  EXPECT_FALSE(s.contains(1));
}

TEST(MessageStore, IterationIsIdOrdered) {
  MessageStore s;
  s.add(msg(5));
  s.add(msg(1));
  s.add(msg(3));
  std::vector<workload::MessageId> order;
  for (const auto& [id, m] : s) order.push_back(id);
  EXPECT_EQ(order, (std::vector<workload::MessageId>{1, 3, 5}));
}

TEST(MessageStore, ClearEmpties) {
  MessageStore s;
  s.add(msg(1));
  s.clear();
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
}

}  // namespace
}  // namespace bsub::sim
