#include "sim/expiry_index.h"

#include <gtest/gtest.h>

#include <vector>

namespace bsub::sim {
namespace {

TEST(ExpiryIndex, EmptyIsNeverDue) {
  ExpiryIndex idx;
  EXPECT_TRUE(idx.empty());
  EXPECT_EQ(idx.next_due(), util::kTimeMax);
  EXPECT_FALSE(idx.due(util::kTimeMax - 1));
}

TEST(ExpiryIndex, NextDueTracksMinimum) {
  ExpiryIndex idx;
  idx.add(30, 1);
  idx.add(10, 2);
  idx.add(20, 3);
  EXPECT_EQ(idx.next_due(), 10);
  EXPECT_EQ(idx.size(), 3u);
}

TEST(ExpiryIndex, DueIsInclusiveAtDeadline) {
  ExpiryIndex idx;
  idx.add(100, 1);
  EXPECT_FALSE(idx.due(99));
  EXPECT_TRUE(idx.due(100));  // expiry inclusive, matching expired_at
  EXPECT_TRUE(idx.due(101));
}

TEST(ExpiryIndex, PopDueYieldsOnlyDueEntries) {
  ExpiryIndex idx;
  idx.add(10, 1);
  idx.add(20, 2);
  idx.add(30, 3);
  std::vector<workload::MessageId> popped;
  idx.pop_due(20, [&](workload::MessageId id) { popped.push_back(id); });
  EXPECT_EQ(popped, (std::vector<workload::MessageId>{1, 2}));
  EXPECT_EQ(idx.next_due(), 30);
}

TEST(ExpiryIndex, EqualExpiriesPopInIdOrder) {
  ExpiryIndex idx;
  idx.add(10, 5);
  idx.add(10, 1);
  idx.add(10, 3);
  std::vector<workload::MessageId> popped;
  idx.pop_due(10, [&](workload::MessageId id) { popped.push_back(id); });
  EXPECT_EQ(popped, (std::vector<workload::MessageId>{1, 3, 5}));
}

TEST(ExpiryIndex, DropDueDiscardsWithoutVisiting) {
  ExpiryIndex idx;
  idx.add(10, 1);
  idx.add(50, 2);
  idx.drop_due(10);
  EXPECT_EQ(idx.size(), 1u);
  EXPECT_EQ(idx.next_due(), 50);
}

TEST(ExpiryIndex, StaleEntriesAreTheCallersProblem) {
  // The index never removes an id eagerly: an entry for a message that left
  // its buffer early is still popped, and the callee validates lazily.
  ExpiryIndex idx;
  idx.add(10, 1);
  idx.add(10, 1);  // duplicate registration (e.g. re-added after transfer)
  int calls = 0;
  idx.pop_due(10, [&](workload::MessageId) { ++calls; });
  EXPECT_EQ(calls, 2);
  EXPECT_TRUE(idx.empty());
}

TEST(ExpiryIndex, ClearEmpties) {
  ExpiryIndex idx;
  idx.add(10, 1);
  idx.clear();
  EXPECT_TRUE(idx.empty());
  EXPECT_EQ(idx.next_due(), util::kTimeMax);
}

}  // namespace
}  // namespace bsub::sim
