// Unit tests for the conflict-batch scheduler in isolation: node-disjoint
// batches, exactly-once scheduling, and trace-order preservation between
// conflicting events — the three properties the parallel engine's
// determinism argument stands on.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <unordered_map>
#include <vector>

#include "sim/conflict_schedule.h"
#include "util/rng.h"

namespace bsub::sim {
namespace {

constexpr trace::NodeId kNone = EventNodes::kNoNode;

std::vector<EventNodes> contacts(
    std::initializer_list<std::pair<trace::NodeId, trace::NodeId>> pairs) {
  std::vector<EventNodes> out;
  for (auto [a, b] : pairs) out.push_back({a, b});
  return out;
}

/// Checks the three scheduler invariants for any event list.
void check_invariants(std::span<const EventNodes> events,
                      const ConflictSchedule& s) {
  // Every event scheduled exactly once.
  std::vector<std::uint32_t> sorted(s.order);
  std::sort(sorted.begin(), sorted.end());
  ASSERT_EQ(sorted.size(), events.size());
  for (std::uint32_t i = 0; i < sorted.size(); ++i) EXPECT_EQ(sorted[i], i);

  // Batches are node-disjoint.
  for (std::size_t k = 0; k < s.batch_count(); ++k) {
    std::set<trace::NodeId> seen;
    for (std::uint32_t idx : s.batch(k)) {
      const EventNodes& e = events[idx];
      if (e.a != kNone) {
        EXPECT_TRUE(seen.insert(e.a).second)
            << "node " << e.a << " twice in batch " << k;
      }
      if (e.b != kNone) {
        EXPECT_TRUE(seen.insert(e.b).second)
            << "node " << e.b << " twice in batch " << k;
      }
    }
  }

  // Conflicting events preserve input (trace) order: for any two events
  // sharing a node, the earlier event sits in a strictly earlier batch.
  std::vector<std::size_t> batch_of(events.size());
  for (std::size_t k = 0; k < s.batch_count(); ++k) {
    for (std::uint32_t idx : s.batch(k)) batch_of[idx] = k;
  }
  for (std::size_t i = 0; i < events.size(); ++i) {
    for (std::size_t j = i + 1; j < events.size(); ++j) {
      const EventNodes& x = events[i];
      const EventNodes& y = events[j];
      const bool conflict =
          (x.a != kNone && (x.a == y.a || x.a == y.b)) ||
          (x.b != kNone && (x.b == y.a || x.b == y.b));
      if (conflict) {
        EXPECT_LT(batch_of[i], batch_of[j])
            << "events " << i << " and " << j << " conflict but are not in "
            << "strictly increasing batches";
      }
    }
  }
}

TEST(ConflictScheduler, EmptyWindow) {
  ConflictScheduler sched(8);
  const ConflictSchedule s = sched.schedule({});
  EXPECT_EQ(s.batch_count(), 0u);
  EXPECT_TRUE(s.order.empty());
}

TEST(ConflictScheduler, DisjointContactsShareOneBatch) {
  ConflictScheduler sched(8);
  const auto events = contacts({{0, 1}, {2, 3}, {4, 5}, {6, 7}});
  const ConflictSchedule s = sched.schedule(events);
  EXPECT_EQ(s.batch_count(), 1u);
  check_invariants(events, s);
}

TEST(ConflictScheduler, ChainOnOneNodeSerializesFully) {
  // Every contact shares node 0: the schedule must degenerate to serial.
  ConflictScheduler sched(8);
  const auto events = contacts({{0, 1}, {0, 2}, {0, 3}, {0, 4}});
  const ConflictSchedule s = sched.schedule(events);
  EXPECT_EQ(s.batch_count(), 4u);
  for (std::size_t k = 0; k < 4; ++k) {
    ASSERT_EQ(s.batch(k).size(), 1u);
    EXPECT_EQ(s.batch(k)[0], k);  // trace order preserved
  }
  check_invariants(events, s);
}

TEST(ConflictScheduler, SameTimestampContactsSharingANodeStayOrdered) {
  // Contacts at identical timestamps are still distinct stream positions;
  // the scheduler only sees stream order, and must keep {1,2} before {2,3}
  // (they share node 2) while letting {4,5} ride in the first batch.
  ConflictScheduler sched(8);
  const auto events = contacts({{1, 2}, {2, 3}, {4, 5}});
  const ConflictSchedule s = sched.schedule(events);
  ASSERT_EQ(s.batch_count(), 2u);
  check_invariants(events, s);
  // Batch 0 holds {1,2} and {4,5}; batch 1 holds {2,3}.
  EXPECT_EQ(s.batch(0).size(), 2u);
  EXPECT_EQ(s.batch(1).size(), 1u);
  EXPECT_EQ(s.batch(1)[0], 1u);
}

TEST(ConflictScheduler, SingleNodeCreationEventsConflictWithContacts) {
  // A message creation only touches its producer (b == kNoNode), but must
  // still order against contacts involving that producer.
  ConflictScheduler sched(8);
  std::vector<EventNodes> events;
  events.push_back({3, kNone});  // creation at node 3
  events.push_back({3, 4});      // contact using node 3 -> later batch
  events.push_back({5, kNone});  // creation elsewhere -> batch 0
  events.push_back({5, kNone});  // second creation at 5 -> must serialize
  const ConflictSchedule s = sched.schedule(events);
  check_invariants(events, s);
  ASSERT_EQ(s.batch_count(), 2u);
  EXPECT_EQ(s.batch(0).size(), 2u);  // creation@3, creation@5
  EXPECT_EQ(s.batch(1).size(), 2u);  // contact{3,4}, creation@5 (again)
}

TEST(ConflictScheduler, SchedulerIsReusableAcrossWindows) {
  // The epoch-reset trick must fully forget the previous window: the same
  // events re-scheduled later get the same batches.
  ConflictScheduler sched(16);
  const auto w1 = contacts({{0, 1}, {1, 2}, {3, 4}});
  const ConflictSchedule first = sched.schedule(w1);
  // An unrelated window in between.
  (void)sched.schedule(contacts({{0, 5}, {5, 1}, {2, 3}, {0, 5}}));
  const ConflictSchedule again = sched.schedule(w1);
  EXPECT_EQ(first.order, again.order);
  EXPECT_EQ(first.offsets, again.offsets);
  check_invariants(w1, again);
}

TEST(ConflictScheduler, RandomizedWindowsHoldAllInvariants) {
  util::Rng rng(2010);
  for (int round = 0; round < 50; ++round) {
    const std::size_t nodes = 2 + rng.next_below(60);
    const std::size_t count = rng.next_below(300);
    std::vector<EventNodes> events;
    events.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      const auto a = static_cast<trace::NodeId>(rng.next_below(nodes));
      if (rng.next_below(8) == 0) {
        events.push_back({a, kNone});  // creation
        continue;
      }
      auto b = static_cast<trace::NodeId>(rng.next_below(nodes));
      while (b == a) b = static_cast<trace::NodeId>(rng.next_below(nodes));
      events.push_back({a, b});
    }
    ConflictScheduler sched(nodes);
    const ConflictSchedule s = sched.schedule(events);
    check_invariants(events, s);
  }
}

}  // namespace
}  // namespace bsub::sim
