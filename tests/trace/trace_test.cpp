#include "trace/trace.h"

#include <gtest/gtest.h>

#include <vector>

namespace bsub::trace {
namespace {

using bsub::util::kHour;
using bsub::util::kMinute;

ContactTrace sample_trace() {
  // 4 nodes; times in minutes.
  std::vector<Contact> contacts = {
      {0, 1, 0 * kMinute, 5 * kMinute},
      {1, 2, 10 * kMinute, 12 * kMinute},
      {2, 0, 20 * kMinute, 25 * kMinute},  // will normalize to (0,2)
      {0, 1, 30 * kMinute, 31 * kMinute},
      {2, 3, 40 * kMinute, 45 * kMinute},
  };
  return ContactTrace(4, std::move(contacts), "sample");
}

TEST(ContactTrace, NormalizesEndpointOrder) {
  ContactTrace t = sample_trace();
  for (const Contact& c : t.contacts()) EXPECT_LT(c.a, c.b);
}

TEST(ContactTrace, SortsByStartTime) {
  std::vector<Contact> contacts = {
      {0, 1, 50 * kMinute, 51 * kMinute},
      {1, 2, 10 * kMinute, 12 * kMinute},
  };
  ContactTrace t(3, std::move(contacts));
  EXPECT_EQ(t.contacts().front().start, 10 * kMinute);
  EXPECT_EQ(t.contacts().back().start, 50 * kMinute);
}

TEST(ContactTrace, DropsInvalidContacts) {
  std::vector<Contact> contacts = {
      {0, 0, 0, 100},          // self-contact
      {1, 2, 100, 100},        // empty duration
      {1, 2, 200, 100},        // negative duration
      {9, 1, 0, 100},          // out-of-range node
      {0, 1, 0, 100},          // valid
  };
  ContactTrace t(3, std::move(contacts));
  EXPECT_EQ(t.contacts().size(), 1u);
}

TEST(ContactTrace, EmptyTrace) {
  ContactTrace t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.start_time(), 0);
  EXPECT_EQ(t.end_time(), 0);
  TraceStats s = t.stats();
  EXPECT_EQ(s.contact_count, 0u);
}

TEST(ContactTrace, StartAndEndTimes) {
  ContactTrace t = sample_trace();
  EXPECT_EQ(t.start_time(), 0);
  EXPECT_EQ(t.end_time(), 45 * kMinute);
}

TEST(ContactTrace, EndTimeSeesLongOverlappingContact) {
  // A contact that starts early but ends last must define end_time.
  std::vector<Contact> contacts = {
      {0, 1, 0, 100 * kMinute},
      {1, 2, 10 * kMinute, 20 * kMinute},
  };
  ContactTrace t(3, std::move(contacts));
  EXPECT_EQ(t.end_time(), 100 * kMinute);
}

TEST(ContactTrace, StatsMatchHandComputation) {
  ContactTrace t = sample_trace();
  TraceStats s = t.stats();
  EXPECT_EQ(s.node_count, 4u);
  EXPECT_EQ(s.contact_count, 5u);
  EXPECT_EQ(s.duration, 45 * kMinute);
  // Durations: 5, 2, 5, 1, 5 minutes -> mean 3.6 min = 216 s.
  EXPECT_NEAR(s.mean_contact_duration_s, 216.0, 1e-9);
  // 10 participations over 4 nodes.
  EXPECT_NEAR(s.mean_contacts_per_node, 2.5, 1e-12);
}

TEST(ContactTrace, DegreesCountDistinctPeers) {
  ContactTrace t = sample_trace();
  auto deg = t.degrees();
  EXPECT_EQ(deg[0], 2u);  // meets 1, 2
  EXPECT_EQ(deg[1], 2u);  // meets 0, 2
  EXPECT_EQ(deg[2], 3u);  // meets 0, 1, 3
  EXPECT_EQ(deg[3], 1u);  // meets 2
}

TEST(ContactTrace, DegreesInWindowRespectsBounds) {
  ContactTrace t = sample_trace();
  auto deg = t.degrees_in_window(0, 15 * kMinute);
  EXPECT_EQ(deg[0], 1u);  // only contact with 1
  EXPECT_EQ(deg[1], 2u);  // 0 and 2
  EXPECT_EQ(deg[3], 0u);  // contact at 40min excluded
}

TEST(ContactTrace, ContactCounts) {
  ContactTrace t = sample_trace();
  auto counts = t.contact_counts();
  EXPECT_EQ(counts[0], 3u);
  EXPECT_EQ(counts[1], 3u);
  EXPECT_EQ(counts[2], 3u);
  EXPECT_EQ(counts[3], 1u);
}

TEST(ContactTrace, RepeatedMeetingsCountOnceInDegree) {
  std::vector<Contact> contacts = {
      {0, 1, 0, kMinute},
      {0, 1, 2 * kMinute, 3 * kMinute},
      {0, 1, 4 * kMinute, 5 * kMinute},
  };
  ContactTrace t(2, std::move(contacts));
  EXPECT_EQ(t.degrees()[0], 1u);
  EXPECT_EQ(t.contact_counts()[0], 3u);
}

}  // namespace
}  // namespace bsub::trace
