#include "trace/centrality.h"

#include <gtest/gtest.h>

#include <vector>

namespace bsub::trace {
namespace {

using util::kMinute;

ContactTrace star_trace() {
  // Node 0 is the hub meeting everyone; leaves meet only the hub.
  std::vector<Contact> contacts;
  for (NodeId leaf = 1; leaf < 5; ++leaf) {
    contacts.push_back({0, leaf, leaf * kMinute, (leaf + 1) * kMinute});
  }
  return ContactTrace(5, std::move(contacts));
}

TEST(DegreeCentrality, HubScoresHighest) {
  auto c = degree_centrality(star_trace());
  EXPECT_DOUBLE_EQ(c[0], 1.0);  // meets all 4 others
  for (std::size_t i = 1; i < 5; ++i) EXPECT_DOUBLE_EQ(c[i], 0.25);
}

TEST(DegreeCentrality, IsolatedNodeScoresZero) {
  std::vector<Contact> contacts = {{0, 1, 0, kMinute}};
  ContactTrace t(3, std::move(contacts));
  auto c = degree_centrality(t);
  EXPECT_DOUBLE_EQ(c[2], 0.0);
}

TEST(DegreeCentrality, SingleNodeTraceIsAllZero) {
  ContactTrace t(1, {});
  auto c = degree_centrality(t);
  ASSERT_EQ(c.size(), 1u);
  EXPECT_DOUBLE_EQ(c[0], 0.0);
}

TEST(ContactCentrality, SharesSumToOne) {
  auto c = contact_centrality(star_trace());
  double sum = 0.0;
  for (double v : c) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(ContactCentrality, HubDominates) {
  auto c = contact_centrality(star_trace());
  EXPECT_DOUBLE_EQ(c[0], 0.5);  // participates in all 4 of 8 endpoints
  for (std::size_t i = 1; i < 5; ++i) EXPECT_DOUBLE_EQ(c[i], 0.125);
}

TEST(ContactCentrality, EmptyTraceIsAllZero) {
  ContactTrace t(3, {});
  auto c = contact_centrality(t);
  for (double v : c) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(CentralityRange, FindsExtremes) {
  std::vector<double> c = {0.2, 0.8, 0.5};
  auto [mn, mx] = centrality_range(c);
  EXPECT_DOUBLE_EQ(mn, 0.2);
  EXPECT_DOUBLE_EQ(mx, 0.8);
}

TEST(CentralityRange, EmptyVector) {
  auto [mn, mx] = centrality_range({});
  EXPECT_DOUBLE_EQ(mn, 0.0);
  EXPECT_DOUBLE_EQ(mx, 0.0);
}

}  // namespace
}  // namespace bsub::trace
