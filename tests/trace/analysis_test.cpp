#include "trace/analysis.h"

#include <gtest/gtest.h>

#include "trace/synthetic.h"
#include "util/stats.h"

namespace bsub::trace {
namespace {

using util::kMinute;

ContactTrace small_trace() {
  std::vector<Contact> contacts = {
      {0, 1, 0, kMinute},
      {0, 1, 10 * kMinute, 11 * kMinute},
      {0, 1, 40 * kMinute, 41 * kMinute},
      {1, 2, 5 * kMinute, 6 * kMinute},
  };
  return ContactTrace(4, std::move(contacts));
}

TEST(PairStats, CountsPairsAndContacts) {
  PairStats s = pair_stats(small_trace());
  EXPECT_EQ(s.pairs_meeting, 2u);            // (0,1) and (1,2)
  EXPECT_DOUBLE_EQ(s.mean_contacts_per_pair, 2.0);
  EXPECT_EQ(s.max_contacts_per_pair, 3u);
  EXPECT_DOUBLE_EQ(s.pair_coverage, 2.0 / 6.0);  // 4 nodes -> 6 pairs
}

TEST(PairStats, EmptyTrace) {
  PairStats s = pair_stats(ContactTrace(3, {}));
  EXPECT_EQ(s.pairs_meeting, 0u);
  EXPECT_DOUBLE_EQ(s.mean_contacts_per_pair, 0.0);
  EXPECT_DOUBLE_EQ(s.pair_coverage, 0.0);
}

TEST(PairInterContactTimes, GapsBetweenSamePairOnly) {
  auto gaps = pair_inter_contact_times_s(small_trace());
  // Pair (0,1) has gaps 10 min and 30 min; pair (1,2) has none.
  ASSERT_EQ(gaps.size(), 2u);
  std::sort(gaps.begin(), gaps.end());
  EXPECT_DOUBLE_EQ(gaps[0], 600.0);
  EXPECT_DOUBLE_EQ(gaps[1], 1800.0);
}

TEST(NodeInterContactTimes, PoolsAcrossPeers) {
  auto gaps = node_inter_contact_times_s(small_trace());
  // Node 0: starts 0, 10, 40 -> gaps 10, 30. Node 1: 0, 5, 10, 40 ->
  // gaps 5, 5, 30. Node 2: single contact -> none. Total 5 gaps.
  EXPECT_EQ(gaps.size(), 5u);
}

TEST(ContactDurations, MatchesContacts) {
  auto d = contact_durations_s(small_trace());
  ASSERT_EQ(d.size(), 4u);
  for (double v : d) EXPECT_DOUBLE_EQ(v, 60.0);
}

TEST(FractionAbove, Basics) {
  std::vector<double> s = {1.0, 5.0, 10.0, 20.0};
  EXPECT_DOUBLE_EQ(fraction_above(s, 4.0), 0.75);
  EXPECT_DOUBLE_EQ(fraction_above(s, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(fraction_above({}, 1.0), 0.0);
}

TEST(SyntheticTraceAnalysis, SessionStructureShowsBurstyGaps) {
  // The session generator must produce a bimodal-ish pair-gap distribution:
  // plenty of short within-session gaps AND a heavy tail of hours-long
  // silences (which real human traces exhibit and interest decay relies on).
  ContactTrace t = generate_trace(haggle_infocom06_config(99));
  auto gaps = pair_inter_contact_times_s(t);
  ASSERT_GT(gaps.size(), 1000u);
  EXPECT_GT(fraction_above(gaps, 3600.0), 0.05);  // long silences exist
  double short_frac = 1.0 - fraction_above(gaps, 1800.0);
  EXPECT_GT(short_frac, 0.3);                     // session revisits exist
}

TEST(SyntheticTraceAnalysis, MostPairsEventuallyMeetAtAConference) {
  ContactTrace t = generate_trace(haggle_infocom06_config(99));
  PairStats s = pair_stats(t);
  EXPECT_GT(s.pair_coverage, 0.5);
  EXPECT_GT(s.max_contacts_per_pair, 10u);  // hub pairs meet a lot
}

TEST(SyntheticTraceAnalysis, CampusTraceIsMoreCliquish) {
  PairStats conf = pair_stats(generate_trace(haggle_infocom06_config(5)));
  PairStats campus = pair_stats(generate_trace(mit_reality_config(5)));
  EXPECT_LT(campus.pair_coverage, conf.pair_coverage);
}

}  // namespace
}  // namespace bsub::trace
