#include "trace/synthetic.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "trace/centrality.h"
#include "util/errors.h"

namespace bsub::trace {
namespace {

TEST(Synthetic, ProducesRequestedShape) {
  SyntheticTraceConfig cfg;
  cfg.node_count = 20;
  cfg.contact_count = 1000;
  cfg.duration = util::kDay;
  ContactTrace t = generate_trace(cfg);
  EXPECT_EQ(t.node_count(), 20u);
  EXPECT_EQ(t.contacts().size(), 1000u);
  EXPECT_GE(t.start_time(), 0);
  EXPECT_LE(t.end_time(), cfg.duration);
}

TEST(Synthetic, DeterministicForSameSeed) {
  SyntheticTraceConfig cfg;
  cfg.node_count = 15;
  cfg.contact_count = 500;
  cfg.seed = 99;
  ContactTrace a = generate_trace(cfg);
  ContactTrace b = generate_trace(cfg);
  EXPECT_EQ(a.contacts(), b.contacts());
}

TEST(Synthetic, DifferentSeedsDiffer) {
  SyntheticTraceConfig cfg;
  cfg.node_count = 15;
  cfg.contact_count = 500;
  cfg.seed = 1;
  ContactTrace a = generate_trace(cfg);
  cfg.seed = 2;
  ContactTrace b = generate_trace(cfg);
  EXPECT_NE(a.contacts(), b.contacts());
}

TEST(Synthetic, ContactsAreValid) {
  SyntheticTraceConfig cfg;
  cfg.node_count = 10;
  cfg.contact_count = 2000;
  ContactTrace t = generate_trace(cfg);
  for (const Contact& c : t.contacts()) {
    EXPECT_LT(c.a, c.b);
    EXPECT_LT(c.b, 10u);
    EXPECT_LT(c.start, c.end);
    EXPECT_GE(util::to_seconds(c.duration()),
              cfg.min_contact_duration_s - 1e-9);
  }
}

TEST(Synthetic, HourlyIntensityShapesActivity) {
  SyntheticTraceConfig cfg;
  cfg.node_count = 20;
  cfg.contact_count = 20000;
  cfg.duration = util::kDay;
  // All session/encounter starts in hour 12; sessions may run for up to
  // session_duration_max beyond it.
  cfg.hourly_intensity.fill(0.0);
  cfg.hourly_intensity[12] = 1.0;
  ContactTrace t = generate_trace(cfg);
  for (const Contact& c : t.contacts()) {
    EXPECT_GE(c.start, 12 * util::kHour);
    EXPECT_LT(c.start, 13 * util::kHour + cfg.session_duration_max);
  }
}

TEST(Synthetic, SociabilityYieldsSkewedDegrees) {
  SyntheticTraceConfig cfg;
  cfg.node_count = 40;
  cfg.contact_count = 5000;
  cfg.sociability_alpha = 1.2;  // strongly skewed
  ContactTrace t = generate_trace(cfg);
  auto counts = t.contact_counts();
  auto [mn, mx] = std::minmax_element(counts.begin(), counts.end());
  // Hubs should dominate: max participation several times the min.
  EXPECT_GT(*mx, 3 * std::max<std::size_t>(*mn, 1));
}

TEST(Synthetic, CommunityBiasConcentratesContacts) {
  SyntheticTraceConfig base;
  base.node_count = 30;
  base.contact_count = 8000;
  base.community_count = 3;  // communities are i % 3
  base.sociability_alpha = 10.0;  // near-uniform weights isolate the bias

  base.intra_community_bias = 0.95;
  ContactTrace biased = generate_trace(base);
  base.intra_community_bias = 0.0;
  base.seed = base.seed + 1;
  ContactTrace mixed = generate_trace(base);

  auto intra_fraction = [](const ContactTrace& t) {
    std::size_t intra = 0;
    for (const Contact& c : t.contacts()) intra += (c.a % 3 == c.b % 3);
    return static_cast<double>(intra) /
           static_cast<double>(t.contacts().size());
  };
  EXPECT_GT(intra_fraction(biased), 0.8);
  EXPECT_LT(intra_fraction(mixed), 0.6);
}

TEST(Synthetic, HagglepresetMatchesTableOne) {
  ContactTrace t = generate_trace(haggle_infocom06_config(7));
  TraceStats s = t.stats();
  EXPECT_EQ(s.node_count, 79u);
  EXPECT_EQ(s.contact_count, 67360u);
  EXPECT_LE(s.duration, 3 * util::kDay);
  EXPECT_GE(s.duration, 2 * util::kDay);  // activity spans most of 3 days
}

TEST(Synthetic, RealityPresetMatchesTableOne) {
  ContactTrace t = generate_trace(mit_reality_config(7));
  TraceStats s = t.stats();
  EXPECT_EQ(s.node_count, 97u);
  EXPECT_EQ(s.contact_count, 54667u);
}

TEST(Synthetic, RealityIsSparserThanHaggle) {
  // The paper observes the Reality slice forms a sparser network with lower
  // contact frequencies; our presets must preserve that ordering.
  ContactTrace haggle = generate_trace(haggle_infocom06_config(3));
  ContactTrace reality = generate_trace(mit_reality_config(3));
  EXPECT_GT(haggle.stats().mean_contacts_per_node,
            reality.stats().mean_contacts_per_node);
  auto mean_centrality = [](const ContactTrace& t) {
    auto c = degree_centrality(t);
    double sum = 0.0;
    for (double v : c) sum += v;
    return sum / static_cast<double>(c.size());
  };
  EXPECT_GT(mean_centrality(haggle), mean_centrality(reality));
}

TEST(Synthetic, ValidateRejectsDegenerateConfigs) {
  const auto rejects = [](void (*tweak)(SyntheticTraceConfig&),
                          const std::string& field) {
    SyntheticTraceConfig cfg;
    tweak(cfg);
    try {
      validate(cfg);
      FAIL() << "expected ConfigError for " << field;
    } catch (const util::ConfigError& e) {
      EXPECT_EQ(e.field(), field);
    }
  };

  rejects([](SyntheticTraceConfig& c) { c.node_count = 1; }, "node_count");
  rejects([](SyntheticTraceConfig& c) { c.community_count = 0; },
          "community_count");
  rejects([](SyntheticTraceConfig& c) { c.community_count = c.node_count + 1; },
          "community_count");
  rejects([](SyntheticTraceConfig& c) { c.duration = 0; }, "duration");
  rejects([](SyntheticTraceConfig& c) { c.mean_contact_duration_s = -5.0; },
          "mean_contact_duration_s");
  rejects([](SyntheticTraceConfig& c) { c.min_contact_duration_s = -1.0; },
          "min_contact_duration_s");
  rejects(
      [](SyntheticTraceConfig& c) {
        c.max_contact_duration_s = c.min_contact_duration_s - 1.0;
      },
      "max_contact_duration_s");
  rejects([](SyntheticTraceConfig& c) { c.intra_community_bias = 1.5; },
          "intra_community_bias");
  rejects([](SyntheticTraceConfig& c) { c.random_encounter_fraction = -0.2; },
          "random_encounter_fraction");
  rejects([](SyntheticTraceConfig& c) { c.sociability_alpha = 0.0; },
          "sociability_alpha");
  rejects([](SyntheticTraceConfig& c) { c.session_size_mean = 1.0; },
          "session_size_mean");
  rejects([](SyntheticTraceConfig& c) { c.session_duration_min = 0; },
          "session_duration_min");
  rejects(
      [](SyntheticTraceConfig& c) {
        c.session_duration_max = c.session_duration_min - 1;
      },
      "session_duration_max");
  rejects([](SyntheticTraceConfig& c) { c.contacts_per_member = 0.0; },
          "contacts_per_member");
  rejects([](SyntheticTraceConfig& c) { c.hourly_intensity[3] = -1.0; },
          "hourly_intensity");
  rejects([](SyntheticTraceConfig& c) { c.hourly_intensity.fill(0.0); },
          "hourly_intensity");

  EXPECT_NO_THROW(validate(SyntheticTraceConfig{}));
  EXPECT_NO_THROW(validate(haggle_infocom06_config()));
  EXPECT_NO_THROW(validate(mit_reality_config()));
}

TEST(Synthetic, GenerateTraceThrowsOnInvalidConfig) {
  SyntheticTraceConfig cfg;
  cfg.node_count = 0;
  EXPECT_THROW(generate_trace(cfg), util::ConfigError);
}

}  // namespace
}  // namespace bsub::trace
