#include "trace/city.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <vector>

#include "util/errors.h"

namespace bsub::trace {
namespace {

CityTraceConfig small_city() {
  CityTraceConfig cfg;
  cfg.node_count = 2000;
  cfg.contact_count = 20000;
  cfg.days = 2;
  cfg.seed = 7;
  return cfg;
}

std::vector<Contact> drain(ContactStream& s) {
  std::vector<Contact> out;
  Contact c;
  while (s.next(c)) out.push_back(c);
  return out;
}

TEST(CityStream, HonorsTheOrderingContractAndNodeBounds) {
  const CityTraceConfig cfg = small_city();
  auto stream = make_city_stream(cfg);
  const util::Time duration =
      static_cast<util::Time>(cfg.days) * util::kDay;

  const std::vector<Contact> contacts = drain(*stream);
  ASSERT_FALSE(contacts.empty());
  for (std::size_t i = 0; i < contacts.size(); ++i) {
    const Contact& c = contacts[i];
    EXPECT_LT(c.a, c.b);
    EXPECT_LT(c.b, cfg.node_count);
    EXPECT_GE(c.start, 0);
    EXPECT_LT(c.start, duration);
    EXPECT_GT(c.end, c.start);
    EXPECT_LE(c.end, duration);
    if (i > 0) {
      EXPECT_FALSE(contact_order_less(c, contacts[i - 1]))
          << "out of order at index " << i;
    }
  }
}

TEST(CityStream, DeterministicAcrossResetAndReconstruction) {
  const CityTraceConfig cfg = small_city();
  auto stream = make_city_stream(cfg);
  const std::vector<Contact> first = drain(*stream);

  stream->reset();
  EXPECT_EQ(drain(*stream), first);

  auto again = make_city_stream(cfg);
  EXPECT_EQ(drain(*again), first);

  CityTraceConfig reseeded = cfg;
  reseeded.seed = cfg.seed + 1;
  auto other = make_city_stream(reseeded);
  EXPECT_NE(drain(*other), first);
}

TEST(CityStream, IsLazyWithNoSizeHint) {
  const CityTraceConfig cfg = small_city();
  auto stream = make_city_stream(cfg);
  EXPECT_FALSE(stream->size_hint().has_value());
  EXPECT_EQ(stream->node_count(), cfg.node_count);
  EXPECT_EQ(stream->name(), cfg.name);
}

TEST(CityStream, CommuterBudgetIsNearlyExactWithoutChurn) {
  CityTraceConfig cfg = small_city();
  cfg.early_leave_fraction = 0.0;
  cfg.late_join_fraction = 0.0;
  auto commuter = make_commuter_stream(cfg);
  const std::vector<Contact> contacts = drain(*commuter);
  // pick_pair can only drop a draw after 8 consecutive self-pair rejections;
  // the shortfall is negligible without churn.
  EXPECT_LE(contacts.size(), cfg.contact_count);
  EXPECT_GE(contacts.size(), cfg.contact_count * 99 / 100);
}

TEST(CityStream, MergeAccountsForEverySubStreamContact) {
  const CityTraceConfig cfg = small_city();
  const std::size_t commuter = drain(*make_commuter_stream(cfg)).size();
  const std::size_t flash = drain(*make_flash_crowd_stream(cfg)).size();
  EXPECT_GT(flash, 0u);
  EXPECT_EQ(drain(*make_city_stream(cfg)).size(), commuter + flash);
}

TEST(CityStream, FlashCrowdsStayInTheirDaytimeWindows) {
  CityTraceConfig cfg = small_city();
  cfg.early_leave_fraction = 0.0;
  cfg.late_join_fraction = 0.0;
  cfg.flash_crowd_size = 100;
  auto flash = make_flash_crowd_stream(cfg);
  const std::vector<Contact> contacts = drain(*flash);

  // Per event: contacts_per_member * size / 2 pairs; the per-slot floor
  // allocation telescopes to the full budget, so only self-pair rejection
  // can shave contacts.
  const std::size_t expected =
      cfg.days * cfg.flash_crowds_per_day *
      static_cast<std::size_t>(cfg.flash_crowd_contacts_per_member *
                               static_cast<double>(cfg.flash_crowd_size) / 2.0);
  EXPECT_LE(contacts.size(), expected);
  EXPECT_GE(contacts.size(), expected * 98 / 100);

  for (const Contact& c : contacts) {
    const util::Time in_day = c.start % util::kDay;
    EXPECT_GE(in_day, 9 * util::kHour);
    EXPECT_LT(in_day, 21 * util::kHour);
  }
}

TEST(CityStream, ChurnShapesNodeActivityWindows) {
  CityTraceConfig cfg = small_city();
  cfg.node_count = 1000;
  cfg.contact_count = 40000;
  cfg.early_leave_fraction = 0.45;
  cfg.late_join_fraction = 0.45;
  cfg.flash_crowds_per_day = 0;
  const util::Time duration =
      static_cast<util::Time>(cfg.days) * util::kDay;

  const std::vector<Contact> contacts = drain(*make_city_stream(cfg));
  std::vector<util::Time> first(cfg.node_count,
                                std::numeric_limits<util::Time>::max());
  std::vector<util::Time> last(cfg.node_count, -1);
  for (const Contact& c : contacts) {
    for (const NodeId n : {c.a, c.b}) {
      first[n] = std::min(first[n], c.start);
      last[n] = std::max(last[n], c.start);
    }
  }

  // Leavers drop out at 30-90% of the trace and joiners appear at 10-50%
  // in, so with ~45% of the population in each class a solid fraction of
  // appearing nodes must go quiet well before the end / wake well after the
  // start. Deterministic seed, so the thresholds are stable.
  std::size_t appearing = 0, early_quiet = 0, late_wake = 0;
  for (std::size_t n = 0; n < cfg.node_count; ++n) {
    if (last[n] < 0) continue;
    ++appearing;
    if (last[n] < (duration * 8) / 10) ++early_quiet;
    if (first[n] > duration / 10) ++late_wake;
  }
  ASSERT_GT(appearing, 0u);
  EXPECT_GE(early_quiet, appearing / 5);
  EXPECT_GE(late_wake, appearing / 5);

  // And churn shaves the delivered budget (dropped inactive draws).
  EXPECT_LT(contacts.size(), cfg.contact_count);
}

TEST(CityStream, ValidateRejectsDegenerateConfigs) {
  const auto rejects = [](void (*tweak)(CityTraceConfig&),
                          const std::string& field) {
    CityTraceConfig cfg;
    cfg.node_count = 100;
    cfg.contact_count = 1000;
    tweak(cfg);
    try {
      validate(cfg);
      FAIL() << "expected ConfigError for " << field;
    } catch (const util::ConfigError& e) {
      EXPECT_EQ(e.field(), field);
    }
  };

  rejects([](CityTraceConfig& c) { c.node_count = 1; }, "node_count");
  rejects([](CityTraceConfig& c) { c.contact_count = 0; }, "contact_count");
  rejects([](CityTraceConfig& c) { c.days = 0; }, "days");
  rejects([](CityTraceConfig& c) { c.home_communities = 101; },
          "home_communities");
  rejects([](CityTraceConfig& c) { c.work_communities = 101; },
          "work_communities");
  rejects([](CityTraceConfig& c) { c.early_leave_fraction = 1.5; },
          "early_leave_fraction");
  rejects([](CityTraceConfig& c) { c.late_join_fraction = -0.1; },
          "late_join_fraction");
  rejects(
      [](CityTraceConfig& c) {
        c.early_leave_fraction = 0.5;
        c.late_join_fraction = 0.5;
      },
      "early_leave_fraction + late_join_fraction");
  rejects([](CityTraceConfig& c) { c.mean_contact_duration_s = 0.0; },
          "mean_contact_duration_s");
  rejects([](CityTraceConfig& c) { c.min_contact_duration_s = -1.0; },
          "min_contact_duration_s");
  rejects([](CityTraceConfig& c) { c.max_contact_duration_s = 1.0; },
          "max_contact_duration_s");
  rejects([](CityTraceConfig& c) { c.flash_crowd_duration = 13 * util::kHour; },
          "flash_crowd_duration");
  rejects([](CityTraceConfig& c) { c.flash_crowd_size = 1; },
          "flash_crowd_size");

  // Valid defaults pass, and flash checks are skipped when disabled.
  CityTraceConfig ok;
  ok.node_count = 100;
  ok.contact_count = 1000;
  EXPECT_NO_THROW(validate(ok));
  ok.flash_crowds_per_day = 0;
  ok.flash_crowd_duration = 0;
  EXPECT_NO_THROW(validate(ok));
}

TEST(CityConfig, ScalesDaysToHoldDailyDensityConstant) {
  const CityTraceConfig one = city_config(10000, 100000);
  const CityTraceConfig ten = city_config(10000, 1000000);
  EXPECT_EQ(one.days, 1u);
  EXPECT_EQ(ten.days, 10u);
  // Sparse scenarios clamp at one day rather than rounding to zero.
  EXPECT_EQ(city_config(1000000, 100000).days, 1u);
}

}  // namespace
}  // namespace bsub::trace
