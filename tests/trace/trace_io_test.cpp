#include "trace/trace_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "trace/synthetic.h"
#include "util/errors.h"
#include "util/rng.h"

namespace bsub::trace {
namespace {

TEST(TraceIo, ParsesSimpleFormat) {
  std::istringstream in("# nodes 3\n0 1 0 60\n1 2 120 180.5\n");
  ContactTrace t = read_trace(in);
  EXPECT_EQ(t.node_count(), 3u);
  ASSERT_EQ(t.contacts().size(), 2u);
  EXPECT_EQ(t.contacts()[0].a, 0u);
  EXPECT_EQ(t.contacts()[0].b, 1u);
  EXPECT_EQ(t.contacts()[0].start, util::from_seconds(0));
  EXPECT_EQ(t.contacts()[0].end, util::from_seconds(60));
  EXPECT_EQ(t.contacts()[1].end, util::from_seconds(180.5));
}

TEST(TraceIo, InfersNodeCountWithoutHeader) {
  std::istringstream in("0 5 0 10\n");
  ContactTrace t = read_trace(in);
  EXPECT_EQ(t.node_count(), 6u);
}

TEST(TraceIo, SkipsCommentsAndBlankLines) {
  std::istringstream in("# a comment\n\n0 1 0 10\n# trailing\n");
  ContactTrace t = read_trace(in);
  EXPECT_EQ(t.contacts().size(), 1u);
}

TEST(TraceIo, MalformedLineThrows) {
  std::istringstream in("0 1 zero 10\n");
  EXPECT_THROW(read_trace(in), std::runtime_error);
}

TEST(TraceIo, EmptyInputGivesEmptyTrace) {
  std::istringstream in("");
  ContactTrace t = read_trace(in);
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.node_count(), 0u);
}

TEST(TraceIo, WriteReadRoundTrip) {
  std::vector<Contact> contacts = {
      {0, 1, util::from_seconds(0), util::from_seconds(60)},
      {1, 2, util::from_seconds(120), util::from_seconds(300)},
  };
  ContactTrace original(5, std::move(contacts), "rt");
  std::ostringstream out;
  write_trace(out, original);
  std::istringstream in(out.str());
  ContactTrace parsed = read_trace(in);
  EXPECT_EQ(parsed.node_count(), original.node_count());
  EXPECT_EQ(parsed.contacts(), original.contacts());
}

TEST(TraceIo, SyntheticTraceSurvivesRoundTrip) {
  SyntheticTraceConfig cfg;
  cfg.node_count = 10;
  cfg.contact_count = 200;
  cfg.duration = util::kDay;
  ContactTrace original = generate_trace(cfg);
  std::ostringstream out;
  write_trace(out, original);
  std::istringstream in(out.str());
  ContactTrace parsed = read_trace(in);
  EXPECT_EQ(parsed.node_count(), original.node_count());
  ASSERT_EQ(parsed.contacts().size(), original.contacts().size());
  // Millisecond times survive the seconds-resolution text format to within
  // printing precision.
  for (std::size_t i = 0; i < parsed.contacts().size(); ++i) {
    EXPECT_EQ(parsed.contacts()[i].a, original.contacts()[i].a);
    EXPECT_EQ(parsed.contacts()[i].b, original.contacts()[i].b);
    EXPECT_NEAR(static_cast<double>(parsed.contacts()[i].start),
                static_cast<double>(original.contacts()[i].start), 1000.0);
  }
}

TEST(TraceIo, FileSaveLoadRoundTrip) {
  std::vector<Contact> contacts = {
      {0, 1, util::from_seconds(5), util::from_seconds(15)}};
  ContactTrace original(2, std::move(contacts));
  const std::string path =
      (std::filesystem::temp_directory_path() / "bsub_trace_io_test.txt")
          .string();
  save_trace(path, original);
  ContactTrace loaded = load_trace(path);
  EXPECT_EQ(loaded.contacts(), original.contacts());
  std::remove(path.c_str());
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW(load_trace("/nonexistent/path/trace.txt"), std::runtime_error);
}

// --- strict validation (ingestion hardening) --------------------------------

TEST(TraceIoValidation, NodeIdAboveDeclaredCountRejected) {
  // Id 3 with "# nodes 3" would undersize every per-node vector downstream.
  std::istringstream in("# nodes 3\n0 1 0 10\n0 3 20 30\n");
  try {
    read_trace(in);
    FAIL() << "expected ParseError";
  } catch (const util::ParseError& e) {
    EXPECT_EQ(e.line(), 3u);
    EXPECT_NE(std::string(e.what()).find("declared node count"),
              std::string::npos);
  }
}

TEST(TraceIoValidation, EndBeforeStartRejected) {
  std::istringstream in("0 1 100 40\n");
  try {
    read_trace(in);
    FAIL() << "expected ParseError";
  } catch (const util::ParseError& e) {
    EXPECT_EQ(e.line(), 1u);
    EXPECT_EQ(e.expected(), "end >= start");
  }
}

TEST(TraceIoValidation, NonFiniteTimestampsRejected) {
  for (const char* bad : {"0 1 nan 10\n", "0 1 0 inf\n", "0 1 -inf 0\n",
                          "0 1 0 1e300\n"}) {
    std::istringstream in(bad);
    EXPECT_THROW(read_trace(in), util::ParseError) << bad;
  }
}

TEST(TraceIoValidation, NegativeNodeIdRejected) {
  std::istringstream in("-1 1 0 10\n");
  EXPECT_THROW(read_trace(in), util::ParseError);
}

TEST(TraceIoValidation, TrailingTokensRejected) {
  std::istringstream in("0 1 0 10 junk\n");
  EXPECT_THROW(read_trace(in), util::ParseError);
}

TEST(TraceIoValidation, TooFewFieldsReportsCount) {
  std::istringstream in("0 1 5\n");
  try {
    read_trace(in);
    FAIL() << "expected ParseError";
  } catch (const util::ParseError& e) {
    EXPECT_EQ(e.found(), "3 field(s)");
  }
}

TEST(TraceIoValidation, BadNodesHeaderRejected) {
  for (const char* bad : {"# nodes\n", "# nodes abc\n", "# nodes -3\n",
                          "# nodes 3 extra\n"}) {
    std::istringstream in(bad);
    EXPECT_THROW(read_trace(in), util::ParseError) << bad;
  }
}

TEST(TraceIoValidation, DuplicateNodesHeaderRejected) {
  std::istringstream in("# nodes 3\n# nodes 4\n0 1 0 10\n");
  EXPECT_THROW(read_trace(in), util::ParseError);
}

TEST(TraceIoValidation, ContactCountMismatchRejected) {
  std::istringstream in("# nodes 3\n# contacts 2\n0 1 0 10\n");
  try {
    read_trace(in);
    FAIL() << "expected ParseError";
  } catch (const util::ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("contact count mismatch"),
              std::string::npos);
  }
}

TEST(TraceIoValidation, FreeFormCommentsStillIgnored) {
  std::istringstream in(
      "# exported by some tool\n#nodes-not-a-header ok\n0 1 0 10\n");
  ContactTrace t = read_trace(in);
  EXPECT_EQ(t.contacts().size(), 1u);
}

TEST(TraceIoValidation, CrlfLineEndingsAccepted) {
  std::istringstream in("# nodes 2\r\n0 1 0 10\r\n");
  ContactTrace t = read_trace(in);
  EXPECT_EQ(t.node_count(), 2u);
  ASSERT_EQ(t.contacts().size(), 1u);
  EXPECT_EQ(t.contacts()[0].end, util::from_seconds(10));
}

TEST(TraceIoValidation, EqualStartEndAcceptedByParser) {
  // A zero-duration contact is valid input (the ContactTrace container
  // normalizes it away); the parser must not reject it.
  std::istringstream in("0 1 10 10\n");
  EXPECT_NO_THROW(read_trace(in));
}

// --- timestamp precision (save -> load -> save identity) --------------------

TEST(TraceIoPrecision, SubSecondTimesSurviveRoundTripExactly) {
  // Millisecond-resolution times at large offsets used to drift through the
  // default 6-significant-digit ostream precision.
  std::vector<Contact> contacts = {
      {0, 1, 123456789 /*ms*/, 123457300},
      {1, 2, util::kDay + 1 /*ms*/, 2 * util::kDay + 999},
  };
  ContactTrace original(3, std::move(contacts), "precision");
  std::ostringstream out;
  write_trace(out, original);
  std::istringstream in(out.str());
  ContactTrace parsed = read_trace(in);
  EXPECT_EQ(parsed.contacts(), original.contacts());
}

TEST(TraceIoPrecision, SaveLoadSaveIsByteIdentical) {
  util::Rng rng(0xC0FFEE);
  std::vector<Contact> contacts;
  for (int i = 0; i < 500; ++i) {
    Contact c;
    c.a = static_cast<NodeId>(rng.next_below(40));
    c.b = static_cast<NodeId>(rng.next_below(40));
    if (c.a == c.b) c.b = c.a + 1;
    c.start = static_cast<util::Time>(rng.next_below(30 * util::kDay));
    c.end = c.start + 1 + static_cast<util::Time>(rng.next_below(util::kHour));
    contacts.push_back(c);
  }
  ContactTrace original(41, std::move(contacts), "prop");

  std::ostringstream first;
  write_trace(first, original);
  std::istringstream in(first.str());
  ContactTrace reloaded = read_trace(in, "prop");
  std::ostringstream second;
  write_trace(second, reloaded);
  EXPECT_EQ(first.str(), second.str());
  EXPECT_EQ(reloaded.contacts(), original.contacts());
  EXPECT_EQ(reloaded.node_count(), original.node_count());
}

}  // namespace
}  // namespace bsub::trace
