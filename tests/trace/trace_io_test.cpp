#include "trace/trace_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "trace/synthetic.h"

namespace bsub::trace {
namespace {

TEST(TraceIo, ParsesSimpleFormat) {
  std::istringstream in("# nodes 3\n0 1 0 60\n1 2 120 180.5\n");
  ContactTrace t = read_trace(in);
  EXPECT_EQ(t.node_count(), 3u);
  ASSERT_EQ(t.contacts().size(), 2u);
  EXPECT_EQ(t.contacts()[0].a, 0u);
  EXPECT_EQ(t.contacts()[0].b, 1u);
  EXPECT_EQ(t.contacts()[0].start, util::from_seconds(0));
  EXPECT_EQ(t.contacts()[0].end, util::from_seconds(60));
  EXPECT_EQ(t.contacts()[1].end, util::from_seconds(180.5));
}

TEST(TraceIo, InfersNodeCountWithoutHeader) {
  std::istringstream in("0 5 0 10\n");
  ContactTrace t = read_trace(in);
  EXPECT_EQ(t.node_count(), 6u);
}

TEST(TraceIo, SkipsCommentsAndBlankLines) {
  std::istringstream in("# a comment\n\n0 1 0 10\n# trailing\n");
  ContactTrace t = read_trace(in);
  EXPECT_EQ(t.contacts().size(), 1u);
}

TEST(TraceIo, MalformedLineThrows) {
  std::istringstream in("0 1 zero 10\n");
  EXPECT_THROW(read_trace(in), std::runtime_error);
}

TEST(TraceIo, EmptyInputGivesEmptyTrace) {
  std::istringstream in("");
  ContactTrace t = read_trace(in);
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.node_count(), 0u);
}

TEST(TraceIo, WriteReadRoundTrip) {
  std::vector<Contact> contacts = {
      {0, 1, util::from_seconds(0), util::from_seconds(60)},
      {1, 2, util::from_seconds(120), util::from_seconds(300)},
  };
  ContactTrace original(5, std::move(contacts), "rt");
  std::ostringstream out;
  write_trace(out, original);
  std::istringstream in(out.str());
  ContactTrace parsed = read_trace(in);
  EXPECT_EQ(parsed.node_count(), original.node_count());
  EXPECT_EQ(parsed.contacts(), original.contacts());
}

TEST(TraceIo, SyntheticTraceSurvivesRoundTrip) {
  SyntheticTraceConfig cfg;
  cfg.node_count = 10;
  cfg.contact_count = 200;
  cfg.duration = util::kDay;
  ContactTrace original = generate_trace(cfg);
  std::ostringstream out;
  write_trace(out, original);
  std::istringstream in(out.str());
  ContactTrace parsed = read_trace(in);
  EXPECT_EQ(parsed.node_count(), original.node_count());
  ASSERT_EQ(parsed.contacts().size(), original.contacts().size());
  // Millisecond times survive the seconds-resolution text format to within
  // printing precision.
  for (std::size_t i = 0; i < parsed.contacts().size(); ++i) {
    EXPECT_EQ(parsed.contacts()[i].a, original.contacts()[i].a);
    EXPECT_EQ(parsed.contacts()[i].b, original.contacts()[i].b);
    EXPECT_NEAR(static_cast<double>(parsed.contacts()[i].start),
                static_cast<double>(original.contacts()[i].start), 1000.0);
  }
}

TEST(TraceIo, FileSaveLoadRoundTrip) {
  std::vector<Contact> contacts = {
      {0, 1, util::from_seconds(5), util::from_seconds(15)}};
  ContactTrace original(2, std::move(contacts));
  const std::string path =
      (std::filesystem::temp_directory_path() / "bsub_trace_io_test.txt")
          .string();
  save_trace(path, original);
  ContactTrace loaded = load_trace(path);
  EXPECT_EQ(loaded.contacts(), original.contacts());
  std::remove(path.c_str());
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW(load_trace("/nonexistent/path/trace.txt"), std::runtime_error);
}

}  // namespace
}  // namespace bsub::trace
