#include "trace/contact_stream.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "trace/synthetic.h"

namespace bsub::trace {
namespace {

Contact make_contact(util::Time start, util::Time end, NodeId a, NodeId b) {
  Contact c;
  c.start = start;
  c.end = end;
  c.a = a;
  c.b = b;
  return c;
}

std::vector<Contact> drain(ContactStream& s) {
  std::vector<Contact> out;
  Contact c;
  while (s.next(c)) out.push_back(c);
  return out;
}

TEST(ContactOrder, LexicographicOnStartEndAB) {
  const Contact base = make_contact(100, 200, 1, 2);
  EXPECT_FALSE(contact_order_less(base, base));
  EXPECT_TRUE(contact_order_less(base, make_contact(101, 200, 1, 2)));
  EXPECT_TRUE(contact_order_less(base, make_contact(100, 201, 1, 2)));
  EXPECT_TRUE(contact_order_less(base, make_contact(100, 200, 2, 3)));
  EXPECT_TRUE(contact_order_less(base, make_contact(100, 200, 1, 3)));
  EXPECT_FALSE(contact_order_less(make_contact(101, 0, 0, 0), base));
}

TEST(MaterializedStream, YieldsTraceInOrderWithHintAndName) {
  SyntheticTraceConfig cfg;
  cfg.node_count = 12;
  cfg.contact_count = 400;
  cfg.name = "unit";
  const ContactTrace t = generate_trace(cfg);

  MaterializedStream s(t);
  EXPECT_EQ(s.node_count(), t.node_count());
  EXPECT_EQ(s.name(), "unit");
  ASSERT_TRUE(s.size_hint().has_value());
  EXPECT_EQ(*s.size_hint(), t.contacts().size());

  EXPECT_EQ(drain(s), t.contacts());
  Contact c;
  EXPECT_FALSE(s.next(c));  // exhausted stays exhausted
}

TEST(MaterializedStream, ResetReplaysIdentically) {
  SyntheticTraceConfig cfg;
  cfg.node_count = 10;
  cfg.contact_count = 200;
  const ContactTrace t = generate_trace(cfg);

  MaterializedStream s(t);
  const std::vector<Contact> first = drain(s);
  s.reset();
  EXPECT_EQ(drain(s), first);
}

TEST(MergedContactStream, InterleavesSourcesInCanonicalOrder) {
  // Two disjoint halves of one trace, fed as separate ordered sources: the
  // merge must reproduce the full canonically-ordered sequence.
  SyntheticTraceConfig cfg;
  cfg.node_count = 16;
  cfg.contact_count = 600;
  const ContactTrace whole = generate_trace(cfg);

  std::vector<Contact> evens, odds;
  for (std::size_t i = 0; i < whole.contacts().size(); ++i) {
    (i % 2 == 0 ? evens : odds).push_back(whole.contacts()[i]);
  }
  const ContactTrace even_t(cfg.node_count, std::move(evens));
  const ContactTrace odd_t(cfg.node_count, std::move(odds));

  std::vector<std::unique_ptr<ContactStream>> parts;
  parts.push_back(std::make_unique<MaterializedStream>(even_t));
  parts.push_back(std::make_unique<MaterializedStream>(odd_t));
  MergedContactStream merged(std::move(parts), "halves");

  EXPECT_EQ(merged.node_count(), cfg.node_count);
  EXPECT_EQ(merged.name(), "halves");
  ASSERT_TRUE(merged.size_hint().has_value());
  EXPECT_EQ(*merged.size_hint(), whole.contacts().size());
  EXPECT_EQ(drain(merged), whole.contacts());
}

TEST(MergedContactStream, TiesResolveToLowerSourceIndex) {
  // Both sources yield a contact with the identical key; the merged order
  // must be deterministic regardless of which source is polled first.
  const Contact tie = make_contact(50, 60, 0, 1);
  const ContactTrace ta(4, {tie, make_contact(70, 80, 2, 3)});
  const ContactTrace tb(4, {tie});

  std::vector<std::unique_ptr<ContactStream>> parts;
  parts.push_back(std::make_unique<MaterializedStream>(ta));
  parts.push_back(std::make_unique<MaterializedStream>(tb));
  MergedContactStream merged(std::move(parts));

  const std::vector<Contact> out = drain(merged);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], tie);
  EXPECT_EQ(out[1], tie);
  EXPECT_EQ(out[2], make_contact(70, 80, 2, 3));
}

TEST(MergedContactStream, ResetReplaysAndNodeCountIsMax) {
  const ContactTrace small(3, {make_contact(10, 20, 0, 1)});
  const ContactTrace large(9, {make_contact(5, 15, 7, 8)});

  std::vector<std::unique_ptr<ContactStream>> parts;
  parts.push_back(std::make_unique<MaterializedStream>(small));
  parts.push_back(std::make_unique<MaterializedStream>(large));
  MergedContactStream merged(std::move(parts));

  EXPECT_EQ(merged.node_count(), 9u);
  const std::vector<Contact> first = drain(merged);
  ASSERT_EQ(first.size(), 2u);
  EXPECT_EQ(first[0], make_contact(5, 15, 7, 8));
  merged.reset();
  EXPECT_EQ(drain(merged), first);
}

TEST(Materialize, RoundTripsAConformingStream) {
  SyntheticTraceConfig cfg;
  cfg.node_count = 14;
  cfg.contact_count = 500;
  cfg.name = "roundtrip";
  const ContactTrace t = generate_trace(cfg);

  MaterializedStream s(t);
  const ContactTrace copy = materialize(s);
  EXPECT_EQ(copy.node_count(), t.node_count());
  EXPECT_EQ(copy.contacts(), t.contacts());
  EXPECT_EQ(copy.name(), t.name());
}

}  // namespace
}  // namespace bsub::trace
