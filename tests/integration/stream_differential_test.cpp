// Streamed-vs-materialized differential: running a lazy city ContactStream
// directly must be bit-identical to materializing the same stream into a
// ContactTrace and running that — on both execution substrates (the
// strategy-object simulator and the live frame-driven engine), serially and
// through the windowed parallel executor, across many seeds.
//
// This is the enforcement half of ContactStream's ordering contract: a
// conforming generator yields the exact total order ContactTrace's
// constructor sorts into, so the event sequence — and therefore every
// semantic result field — cannot differ.
#include <gtest/gtest.h>

#include "core/bsub_protocol.h"
#include "engine/trace_runner.h"
#include "sim/simulator.h"
#include "trace/city.h"
#include "trace/contact_stream.h"
#include "workload/workload.h"

namespace bsub {
namespace {

constexpr std::uint64_t kSeeds[] = {11, 12, 13, 14, 15, 16, 17, 18, 19, 20};

trace::CityTraceConfig city_for(std::uint64_t seed) {
  trace::CityTraceConfig cfg;
  cfg.node_count = 300;
  cfg.contact_count = 4000;
  cfg.days = 1;
  cfg.seed = seed;
  return cfg;
}

void expect_equal(const metrics::RunResults& s, const metrics::RunResults& m,
                  std::uint64_t seed, std::size_t threads) {
  SCOPED_TRACE("simulator seed " + std::to_string(seed) + " threads " +
               std::to_string(threads));
  EXPECT_EQ(s.messages_created, m.messages_created);
  EXPECT_EQ(s.expected_deliveries, m.expected_deliveries);
  EXPECT_EQ(s.interested_deliveries, m.interested_deliveries);
  EXPECT_EQ(s.false_deliveries, m.false_deliveries);
  EXPECT_EQ(s.forwardings, m.forwardings);
  EXPECT_EQ(s.message_bytes, m.message_bytes);
  EXPECT_EQ(s.control_bytes, m.control_bytes);
  EXPECT_EQ(s.delivery_ratio, m.delivery_ratio);
  EXPECT_EQ(s.mean_delay_minutes, m.mean_delay_minutes);
  EXPECT_EQ(s.median_delay_minutes, m.median_delay_minutes);
  EXPECT_EQ(s.max_delay_minutes, m.max_delay_minutes);
  EXPECT_EQ(s.forwardings_per_delivery, m.forwardings_per_delivery);
  EXPECT_EQ(s.false_positive_rate, m.false_positive_rate);
}

void expect_equal(const engine::TraceRunResults& s,
                  const engine::TraceRunResults& m, std::uint64_t seed,
                  std::size_t threads) {
  SCOPED_TRACE("engine seed " + std::to_string(seed) + " threads " +
               std::to_string(threads));
  EXPECT_EQ(s.deliveries, m.deliveries);
  EXPECT_EQ(s.expected_deliveries, m.expected_deliveries);
  EXPECT_EQ(s.delivery_ratio, m.delivery_ratio);
  EXPECT_EQ(s.mean_delay_minutes, m.mean_delay_minutes);
  EXPECT_EQ(s.contacts_processed, m.contacts_processed);
  EXPECT_EQ(s.frames_delivered, m.frames_delivered);
  EXPECT_EQ(s.frames_dropped, m.frames_dropped);
  EXPECT_EQ(s.bytes_used, m.bytes_used);
}

TEST(StreamDifferential, SimulatorIsBitIdenticalStreamedVsMaterialized) {
  const workload::KeySet keys = workload::twitter_trend_keys();
  for (const std::uint64_t seed : kSeeds) {
    auto stream = trace::make_city_stream(city_for(seed));
    const trace::ContactTrace materialized = trace::materialize(*stream);
    ASSERT_FALSE(materialized.empty());

    workload::WorkloadConfig wcfg;
    wcfg.ttl = 6 * util::kHour;
    wcfg.seed = seed + 1;
    const workload::Workload w(materialized, keys, wcfg);

    core::BsubConfig cfg;
    cfg.df_per_minute = 0.5;

    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      sim::SimulatorConfig scfg;
      scfg.threads = threads;
      scfg.window_events = 256;  // several windows even at this size
      sim::Simulator simulator(scfg);

      stream->reset();
      core::BsubProtocol streamed_proto(cfg);
      const metrics::RunResults streamed =
          simulator.run(*stream, w, streamed_proto);
      const std::uint64_t streamed_events = simulator.last_run_stats().events;

      core::BsubProtocol materialized_proto(cfg);
      const metrics::RunResults from_trace =
          simulator.run(materialized, w, materialized_proto);

      expect_equal(streamed, from_trace, seed, threads);
      EXPECT_EQ(streamed_events, simulator.last_run_stats().events);
      // The runs must actually exercise the protocol, not compare two
      // empty scenarios.
      EXPECT_GT(streamed.messages_created, 0u);
      EXPECT_GT(streamed.forwardings, 0u);
    }
  }
}

TEST(StreamDifferential, TraceRunnerIsBitIdenticalStreamedVsMaterialized) {
  const workload::KeySet keys = workload::twitter_trend_keys();
  for (const std::uint64_t seed : kSeeds) {
    auto stream = trace::make_city_stream(city_for(seed));
    const trace::ContactTrace materialized = trace::materialize(*stream);

    workload::WorkloadConfig wcfg;
    wcfg.ttl = 6 * util::kHour;
    wcfg.seed = seed + 1;
    const workload::Workload w(materialized, keys, wcfg);

    engine::NodeConfig node_cfg;
    node_cfg.df_per_minute = 0.5;

    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      engine::TraceRunnerOptions opts;
      opts.threads = threads;
      opts.window_events = 256;
      engine::TraceRunner runner(node_cfg, {3, 5, 5 * util::kHour},
                                 sim::kDefaultBandwidthBytesPerSecond, opts);

      stream->reset();
      const engine::TraceRunResults streamed = runner.run(*stream, w);
      const engine::TraceRunResults from_trace = runner.run(materialized, w);

      expect_equal(streamed, from_trace, seed, threads);
      EXPECT_EQ(streamed.contacts_processed, materialized.contacts().size());
    }
  }
}

}  // namespace
}  // namespace bsub
