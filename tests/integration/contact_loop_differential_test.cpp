// Differential test for the contact-loop fast path.
//
// The fast path (expiry watermark + index, epoch-cached encodings, interned
// probe indices, shared payloads) claims *exactly* the observable semantics
// of the seed's naive loop — not statistically similar, identical. This test
// runs B-SUB with reference_contact_path on and off, and the baselines with
// naive_purge on and off, over randomized synthetic scenarios (>= 10 seeds)
// and requires every semantic RunResults field, the traffic breakdown, the
// false-injection count, and the measured relay FPR to match bit for bit.
// Only the hot_path execution-shape counters may differ.
#include <gtest/gtest.h>

#include <vector>

#include "core/bsub_protocol.h"
#include "core/df_tuning.h"
#include "metrics/collector.h"
#include "routing/pull.h"
#include "routing/push.h"
#include "routing/spray.h"
#include "sim/simulator.h"
#include "trace/synthetic.h"
#include "workload/workload.h"

namespace bsub {
namespace {

struct ScenarioCase {
  // Workload holds a pointer to the KeySet, so the set lives here too.
  workload::KeySet keys;
  trace::ContactTrace trace;
  workload::Workload workload;

  explicit ScenarioCase(std::uint64_t seed)
      : keys(workload::twitter_trend_keys()),
        trace(trace::generate_trace(trace_config(seed))),
        workload(trace, keys, workload_config(seed)) {}

  static trace::SyntheticTraceConfig trace_config(std::uint64_t seed) {
    trace::SyntheticTraceConfig tcfg;
    tcfg.name = "diff";
    tcfg.node_count = 14 + seed % 7;
    tcfg.contact_count = 1500 + 100 * (seed % 5);
    tcfg.duration = util::kDay;
    tcfg.community_count = 3;
    tcfg.seed = seed;
    return tcfg;
  }

  static workload::WorkloadConfig workload_config(std::uint64_t seed) {
    workload::WorkloadConfig wcfg;
    wcfg.ttl = static_cast<util::Time>(2 + seed % 6) * util::kHour;
    wcfg.seed = seed + 1;
    return wcfg;
  }
};

void expect_semantically_identical(const metrics::RunResults& a,
                                   const metrics::RunResults& b,
                                   std::uint64_t seed, const char* what) {
  // Field-by-field: RunResults carries the hot_path execution counters,
  // which legitimately differ — everything else must not.
  EXPECT_EQ(a.messages_created, b.messages_created) << what << " s" << seed;
  EXPECT_EQ(a.expected_deliveries, b.expected_deliveries)
      << what << " s" << seed;
  EXPECT_EQ(a.interested_deliveries, b.interested_deliveries)
      << what << " s" << seed;
  EXPECT_EQ(a.false_deliveries, b.false_deliveries) << what << " s" << seed;
  EXPECT_EQ(a.forwardings, b.forwardings) << what << " s" << seed;
  EXPECT_EQ(a.message_bytes, b.message_bytes) << what << " s" << seed;
  EXPECT_EQ(a.control_bytes, b.control_bytes) << what << " s" << seed;
  EXPECT_EQ(a.delivery_ratio, b.delivery_ratio) << what << " s" << seed;
  EXPECT_EQ(a.mean_delay_minutes, b.mean_delay_minutes)
      << what << " s" << seed;
  EXPECT_EQ(a.median_delay_minutes, b.median_delay_minutes)
      << what << " s" << seed;
  EXPECT_EQ(a.max_delay_minutes, b.max_delay_minutes) << what << " s" << seed;
  EXPECT_EQ(a.forwardings_per_delivery, b.forwardings_per_delivery)
      << what << " s" << seed;
  EXPECT_EQ(a.false_positive_rate, b.false_positive_rate)
      << what << " s" << seed;
}

TEST(ContactLoopDifferential, BsubFastPathMatchesReferenceOnTenSeeds) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const ScenarioCase sc(seed);
    core::BsubConfig cfg;
    cfg.df_per_minute =
        core::compute_df(sc.trace, 4 * util::kHour, cfg.filter_params,
                         cfg.initial_counter)
            .df_per_minute;

    core::BsubConfig ref_cfg = cfg;
    ref_cfg.reference_contact_path = true;
    core::BsubProtocol ref(ref_cfg);
    const metrics::RunResults ref_r =
        sim::Simulator().run(sc.trace, sc.workload, ref);

    core::BsubProtocol fast(cfg);
    const metrics::RunResults fast_r =
        sim::Simulator().run(sc.trace, sc.workload, fast);

    expect_semantically_identical(ref_r, fast_r, seed, "bsub");
    EXPECT_EQ(ref.traffic().deliveries, fast.traffic().deliveries)
        << "s" << seed;
    EXPECT_EQ(ref.traffic().pickups, fast.traffic().pickups) << "s" << seed;
    EXPECT_EQ(ref.traffic().broker_transfers, fast.traffic().broker_transfers)
        << "s" << seed;
    EXPECT_EQ(ref.false_injections(), fast.false_injections()) << "s" << seed;
    EXPECT_EQ(ref.measured_relay_fpr(), fast.measured_relay_fpr())
        << "s" << seed;

    // The fast path must actually be exercising its machinery, not silently
    // falling back to scans and re-encodes.
    EXPECT_EQ(ref_r.hot_path.encode_cache_hits, 0u) << "s" << seed;
    EXPECT_GT(fast_r.hot_path.encode_cache_hits, 0u) << "s" << seed;
    EXPECT_GT(fast_r.hot_path.purge_scans_skipped, 0u) << "s" << seed;
    EXPECT_GT(fast_r.hot_path.payload_copies_avoided, 0u) << "s" << seed;
    EXPECT_EQ(fast_r.hot_path.payload_copies_made, 0u) << "s" << seed;
  }
}

TEST(ContactLoopDifferential, BaselinesMatchNaivePurgeOnTenSeeds) {
  for (std::uint64_t seed = 11; seed <= 20; ++seed) {
    const ScenarioCase sc(seed);

    {
      routing::PushProtocol naive(/*naive_purge=*/true);
      routing::PushProtocol fast;
      const metrics::RunResults a =
          sim::Simulator().run(sc.trace, sc.workload, naive);
      const metrics::RunResults b =
          sim::Simulator().run(sc.trace, sc.workload, fast);
      expect_semantically_identical(a, b, seed, "push");
    }
    {
      routing::PullProtocol naive(/*naive_purge=*/true);
      routing::PullProtocol fast;
      const metrics::RunResults a =
          sim::Simulator().run(sc.trace, sc.workload, naive);
      const metrics::RunResults b =
          sim::Simulator().run(sc.trace, sc.workload, fast);
      expect_semantically_identical(a, b, seed, "pull");
    }
    {
      routing::SprayProtocol naive(3, /*naive_purge=*/true);
      routing::SprayProtocol fast(3);
      const metrics::RunResults a =
          sim::Simulator().run(sc.trace, sc.workload, naive);
      const metrics::RunResults b =
          sim::Simulator().run(sc.trace, sc.workload, fast);
      expect_semantically_identical(a, b, seed, "spray");
    }
  }
}

}  // namespace
}  // namespace bsub
