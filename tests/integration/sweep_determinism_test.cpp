// Determinism of the parallel experiment harness: a sweep executed on the
// parallel runner must serialize to exactly the same BENCH point array as a
// serial (BSUB_THREADS=1-equivalent) run. Uses a miniature synthetic
// scenario so the full simulate-and-serialize path is exercised cheaply.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "experiment_common.h"

namespace bsub::bench {
namespace {

Scenario mini_scenario() {
  trace::SyntheticTraceConfig cfg;
  cfg.name = "mini-sweep";
  cfg.node_count = 12;
  cfg.contact_count = 600;
  cfg.duration = 12 * util::kHour;
  cfg.community_count = 3;
  cfg.seed = kExperimentSeed;
  return Scenario(cfg);
}

std::vector<std::string> sweep_points(const Scenario& scenario,
                                      std::size_t threads) {
  const std::vector<double> ttl_minutes = {30, 60, 120, 240};
  const std::vector<ProtocolRun> runs = run_points_parallel(
      ttl_minutes,
      [&](double ttl_min) {
        const util::Time ttl = util::from_minutes(ttl_min);
        const workload::Workload w = scenario.make_workload(ttl);
        return run_bsub(scenario, w, bsub_config_for(scenario, ttl));
      },
      threads);

  std::vector<std::string> points;
  for (std::size_t i = 0; i < ttl_minutes.size(); ++i) {
    points.push_back(
        JsonObject()
            .field("ttl_min", ttl_minutes[i])
            .field("delivery", runs[i].results.delivery_ratio)
            .field("delay_min", runs[i].results.mean_delay_minutes)
            .field("fwd", runs[i].results.forwardings_per_delivery)
            .field("relay_fpr", runs[i].relay_fpr)
            .str());
  }
  return points;
}

TEST(SweepDeterminismTest, ParallelPointsMatchSerialBitForBit) {
  const Scenario scenario = mini_scenario();
  const std::vector<std::string> serial = sweep_points(scenario, 1);
  const std::vector<std::string> parallel = sweep_points(scenario, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "point " << i;
  }
  EXPECT_EQ(points_json(serial), points_json(parallel));
}

TEST(SweepDeterminismTest, RepeatedParallelRunsAreStable) {
  const Scenario scenario = mini_scenario();
  const std::vector<std::string> a = sweep_points(scenario, 4);
  const std::vector<std::string> b = sweep_points(scenario, 4);
  EXPECT_EQ(a, b);
}

TEST(JsonObjectTest, RendersFieldsInOrderWithFullPrecision) {
  const std::string s = JsonObject()
                            .field("a", 0.1)
                            .field("b", std::uint64_t{42})
                            .field("c", std::string("x\"y"))
                            .field("d", -3)
                            .str();
  EXPECT_EQ(s,
            "{\"a\": 0.10000000000000001, \"b\": 42, \"c\": \"x\\\"y\", "
            "\"d\": -3}");
}

TEST(JsonObjectTest, PointsJsonWrapsRows) {
  EXPECT_EQ(points_json({}), "[\n]");
  EXPECT_EQ(points_json({"{\"a\": 1}"}), "[\n  {\"a\": 1}\n]");
  EXPECT_EQ(points_json({"{}", "{}"}), "[\n  {},\n  {}\n]");
}

}  // namespace
}  // namespace bsub::bench
