// Lazy/pooled-vs-eager node-state differential: the lazy, pooled,
// cache-dense per-node layouts (lazy relay materialization, pooled ring +
// open-addressing election state, deduplicated interest-filter caches)
// must be bit-identical to the retained eager reference layouts — on both
// execution substrates (the strategy-object simulator and the live
// frame-driven engine), serially and through the windowed parallel
// executor, across many seeds.
//
// This is the enforcement half of the memory-floor work's contract: the
// compact layouts change where bytes live, never what the protocol
// computes. Every semantic result field must match exactly, including the
// float-valued ones (the compact election replays the reference's exact
// floating-point add/subtract order on the degree sum).
#include <gtest/gtest.h>

#include "core/bsub_protocol.h"
#include "engine/trace_runner.h"
#include "sim/simulator.h"
#include "trace/city.h"
#include "trace/contact_stream.h"
#include "workload/workload.h"

namespace bsub {
namespace {

constexpr std::uint64_t kSeeds[] = {31, 32, 33, 34, 35, 36, 37, 38, 39, 40};

trace::CityTraceConfig city_for(std::uint64_t seed) {
  trace::CityTraceConfig cfg;
  cfg.node_count = 300;
  cfg.contact_count = 4000;
  cfg.days = 1;
  cfg.seed = seed;
  return cfg;
}

void expect_equal(const metrics::RunResults& lazy,
                  const metrics::RunResults& eager, std::uint64_t seed,
                  std::size_t threads) {
  SCOPED_TRACE("simulator seed " + std::to_string(seed) + " threads " +
               std::to_string(threads));
  EXPECT_EQ(lazy.messages_created, eager.messages_created);
  EXPECT_EQ(lazy.expected_deliveries, eager.expected_deliveries);
  EXPECT_EQ(lazy.interested_deliveries, eager.interested_deliveries);
  EXPECT_EQ(lazy.false_deliveries, eager.false_deliveries);
  EXPECT_EQ(lazy.forwardings, eager.forwardings);
  EXPECT_EQ(lazy.message_bytes, eager.message_bytes);
  EXPECT_EQ(lazy.control_bytes, eager.control_bytes);
  EXPECT_EQ(lazy.delivery_ratio, eager.delivery_ratio);
  EXPECT_EQ(lazy.mean_delay_minutes, eager.mean_delay_minutes);
  EXPECT_EQ(lazy.median_delay_minutes, eager.median_delay_minutes);
  EXPECT_EQ(lazy.max_delay_minutes, eager.max_delay_minutes);
  EXPECT_EQ(lazy.forwardings_per_delivery, eager.forwardings_per_delivery);
  EXPECT_EQ(lazy.false_positive_rate, eager.false_positive_rate);
}

void expect_equal(const engine::TraceRunResults& lazy,
                  const engine::TraceRunResults& eager, std::uint64_t seed,
                  std::size_t threads) {
  SCOPED_TRACE("engine seed " + std::to_string(seed) + " threads " +
               std::to_string(threads));
  EXPECT_EQ(lazy.deliveries, eager.deliveries);
  EXPECT_EQ(lazy.expected_deliveries, eager.expected_deliveries);
  EXPECT_EQ(lazy.delivery_ratio, eager.delivery_ratio);
  EXPECT_EQ(lazy.mean_delay_minutes, eager.mean_delay_minutes);
  EXPECT_EQ(lazy.contacts_processed, eager.contacts_processed);
  EXPECT_EQ(lazy.frames_delivered, eager.frames_delivered);
  EXPECT_EQ(lazy.frames_dropped, eager.frames_dropped);
  EXPECT_EQ(lazy.bytes_used, eager.bytes_used);
}

TEST(NodeStateDifferential, SimulatorIsBitIdenticalLazyVsEager) {
  const workload::KeySet keys = workload::twitter_trend_keys();
  for (const std::uint64_t seed : kSeeds) {
    auto stream = trace::make_city_stream(city_for(seed));
    const trace::ContactTrace trace = trace::materialize(*stream);
    ASSERT_FALSE(trace.empty());

    workload::WorkloadConfig wcfg;
    wcfg.ttl = 6 * util::kHour;
    wcfg.seed = seed + 1;
    const workload::Workload w(trace, keys, wcfg);

    core::BsubConfig lazy_cfg;
    lazy_cfg.df_per_minute = 0.5;
    core::BsubConfig eager_cfg = lazy_cfg;
    eager_cfg.reference_node_state = true;

    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      sim::SimulatorConfig scfg;
      scfg.threads = threads;
      scfg.window_events = 256;  // several windows even at this size
      sim::Simulator simulator(scfg);

      core::BsubProtocol lazy_proto(lazy_cfg);
      const metrics::RunResults lazy = simulator.run(trace, w, lazy_proto);

      core::BsubProtocol eager_proto(eager_cfg);
      const metrics::RunResults eager = simulator.run(trace, w, eager_proto);

      expect_equal(lazy, eager, seed, threads);
      EXPECT_EQ(lazy_proto.false_injections(), eager_proto.false_injections());
      EXPECT_EQ(lazy_proto.traffic().pickups, eager_proto.traffic().pickups);
      EXPECT_EQ(lazy_proto.traffic().broker_transfers,
                eager_proto.traffic().broker_transfers);
      EXPECT_EQ(lazy_proto.traffic().deliveries,
                eager_proto.traffic().deliveries);
      // The runs must exercise the protocol and the laziness must bite:
      // some relays materialize (brokers exist), most nodes' never do.
      EXPECT_GT(lazy.messages_created, 0u);
      EXPECT_GT(lazy.forwardings, 0u);
      EXPECT_GT(lazy_proto.interests().materialized_relays(), 0u);
      EXPECT_LT(lazy_proto.interests().materialized_relays(),
                trace.node_count());
    }
  }
}

TEST(NodeStateDifferential, TraceRunnerIsBitIdenticalLazyVsEager) {
  const workload::KeySet keys = workload::twitter_trend_keys();
  for (const std::uint64_t seed : kSeeds) {
    auto stream = trace::make_city_stream(city_for(seed));
    const trace::ContactTrace trace = trace::materialize(*stream);

    workload::WorkloadConfig wcfg;
    wcfg.ttl = 6 * util::kHour;
    wcfg.seed = seed + 1;
    const workload::Workload w(trace, keys, wcfg);

    engine::NodeConfig node_cfg;
    node_cfg.df_per_minute = 0.5;

    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      engine::TraceRunnerOptions opts;
      opts.threads = threads;
      opts.window_events = 256;
      engine::TraceRunner lazy_runner(
          node_cfg, {3, 5, 5 * util::kHour, /*reference_state=*/false},
          sim::kDefaultBandwidthBytesPerSecond, opts);
      engine::TraceRunner eager_runner(
          node_cfg, {3, 5, 5 * util::kHour, /*reference_state=*/true},
          sim::kDefaultBandwidthBytesPerSecond, opts);

      const engine::TraceRunResults lazy = lazy_runner.run(trace, w);
      const engine::TraceRunResults eager = eager_runner.run(trace, w);

      expect_equal(lazy, eager, seed, threads);
      EXPECT_EQ(lazy.contacts_processed, trace.contacts().size());
    }
  }
}

}  // namespace
}  // namespace bsub
