// Registry round-trip suite: every registered protocol constructs from its
// canonical name and reports that name back, specs parse and print
// canonically, every failure mode raises the typed ConfigError, and a
// registry-constructed protocol is run-for-run identical to direct
// construction.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/bsub_protocol.h"
#include "core/protocol_registry.h"
#include "routing/pull.h"
#include "routing/push.h"
#include "routing/spray.h"
#include "sim/simulator.h"
#include "trace/synthetic.h"
#include "util/errors.h"
#include "workload/workload.h"

namespace bsub {
namespace {

const sim::ProtocolRegistry& registry() {
  static const sim::ProtocolRegistry r = core::make_protocol_registry();
  return r;
}

TEST(ProtocolRegistry, EveryEntryConstructsAndReportsItsKey) {
  ASSERT_GE(registry().entries().size(), 4u);
  for (const auto& entry : registry().entries()) {
    auto protocol = registry().make(entry.name);
    ASSERT_NE(protocol, nullptr) << entry.name;
    EXPECT_EQ(protocol->name(), entry.name)
        << "registered key and Protocol::name() must agree";
    EXPECT_FALSE(entry.summary.empty()) << entry.name;
  }
}

TEST(ProtocolRegistry, LookupIsCaseInsensitiveAndAliasAware) {
  EXPECT_STREQ(registry().make("push")->name(), "PUSH");
  EXPECT_STREQ(registry().make("Pull")->name(), "PULL");
  EXPECT_STREQ(registry().make("spray")->name(), "SPRAY");
  EXPECT_STREQ(registry().make("bsub")->name(), "B-SUB");
  EXPECT_STREQ(registry().make("B-sub")->name(), "B-SUB");
}

TEST(ProtocolRegistry, UnknownNameRaisesTypedErrorListingTheTable) {
  try {
    registry().make("gossip");
    FAIL() << "expected util::ConfigError";
  } catch (const util::ConfigError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("gossip"), std::string::npos);
    // The message enumerates what IS available.
    EXPECT_NE(what.find("B-SUB"), std::string::npos);
    EXPECT_NE(what.find("SPRAY"), std::string::npos);
  }
}

TEST(ProtocolRegistry, UnknownParameterIsRejectedNotIgnored) {
  EXPECT_THROW(registry().make("push:copies=3"), util::ConfigError);
  EXPECT_THROW(registry().make("spray:coppies=3"), util::ConfigError);
  EXPECT_THROW(registry().make("bsub:dff=0.5"), util::ConfigError);
}

TEST(ProtocolRegistry, MalformedAndOutOfDomainValuesAreRejected) {
  EXPECT_THROW(registry().make(""), util::ConfigError);
  EXPECT_THROW(registry().make("spray:copies"), util::ConfigError);
  EXPECT_THROW(registry().make("spray:=3"), util::ConfigError);
  EXPECT_THROW(registry().make("spray:copies=0"), util::ConfigError);
  EXPECT_THROW(registry().make("spray:copies=-1"), util::ConfigError);
  EXPECT_THROW(registry().make("spray:copies=many"), util::ConfigError);
  EXPECT_THROW(registry().make("spray:copies=3,copies=4"),
               util::ConfigError);
  EXPECT_THROW(registry().make("bsub:df=-0.1"), util::ConfigError);
  EXPECT_THROW(registry().make("bsub:df=nan"), util::ConfigError);
  EXPECT_THROW(registry().make("bsub:merge=x"), util::ConfigError);
  EXPECT_THROW(registry().make("bsub:counter=0"), util::ConfigError);
  EXPECT_THROW(registry().make("bsub:bl=5,bu=3"), util::ConfigError);
  EXPECT_THROW(registry().make("pull:reference=maybe"), util::ConfigError);
}

TEST(ProtocolRegistry, SpecParsePrintRoundTrips) {
  for (const char* s :
       {"PUSH", "SPRAY:copies=8", "B-SUB:df=0.5,merge=a,copies=5"}) {
    EXPECT_EQ(sim::ProtocolSpec::parse(s).str(), s);
  }
}

TEST(ProtocolRegistry, BsubSpecReproducesTheConfigExactly) {
  core::BsubConfig cfg;
  cfg.filter_params = {1024, 6};
  cfg.initial_counter = 40.0;
  cfg.df_per_minute = 0.12345678901234567;  // needs all 17 digits
  cfg.copy_limit = 7;
  cfg.broker_lower = 2;
  cfg.broker_upper = 9;
  cfg.election_window = 3 * util::kHour;
  cfg.broker_merge = core::BrokerMergeMode::kAMerge;
  cfg.relay_gated_delivery = false;
  cfg.adaptive_df = true;
  cfg.df_window = 7 * util::kHour;
  cfg.reference_contact_path = true;
  cfg.reference_node_state = true;

  const std::string spec = core::bsub_spec(cfg);
  const core::BsubConfig back = core::bsub_config_from_spec(spec);
  EXPECT_EQ(back.filter_params, cfg.filter_params);
  EXPECT_EQ(back.initial_counter, cfg.initial_counter);
  EXPECT_EQ(back.df_per_minute, cfg.df_per_minute);
  EXPECT_EQ(back.copy_limit, cfg.copy_limit);
  EXPECT_EQ(back.broker_lower, cfg.broker_lower);
  EXPECT_EQ(back.broker_upper, cfg.broker_upper);
  EXPECT_EQ(back.election_window, cfg.election_window);
  EXPECT_EQ(back.broker_merge, cfg.broker_merge);
  EXPECT_EQ(back.relay_gated_delivery, cfg.relay_gated_delivery);
  EXPECT_EQ(back.adaptive_df, cfg.adaptive_df);
  EXPECT_EQ(back.df_window, cfg.df_window);
  EXPECT_EQ(back.reference_contact_path, cfg.reference_contact_path);
  EXPECT_EQ(back.reference_node_state, cfg.reference_node_state);

  // Defaults render with no parameters at all.
  EXPECT_EQ(core::bsub_spec(core::BsubConfig{}), "B-SUB");
  // A config that only came from a spec round-trips textually too.
  EXPECT_EQ(core::bsub_spec(back), spec);
}

TEST(ProtocolRegistry, NonBsubSpecCannotBecomeABsubConfig) {
  EXPECT_THROW(core::bsub_config_from_spec("push"), util::ConfigError);
  EXPECT_THROW(core::bsub_config_from_spec("SPRAY:copies=3"),
               util::ConfigError);
}

// Same scenario, same seed: the registry-made protocol must produce
// Collector output identical to a directly constructed instance — the
// factory adds configuration plumbing, never behavior.
class RegistryDeterminism : public ::testing::Test {
 protected:
  metrics::RunResults run(sim::Protocol& protocol) {
    trace::SyntheticTraceConfig tcfg;
    tcfg.node_count = 25;
    tcfg.contact_count = 4000;
    tcfg.duration = util::kDay;
    tcfg.seed = 77;
    const auto trace = trace::generate_trace(tcfg);
    const auto keys = workload::twitter_trend_keys();
    workload::WorkloadConfig wcfg;
    wcfg.ttl = 4 * util::kHour;
    wcfg.seed = 78;
    const workload::Workload w(trace, keys, wcfg);
    return sim::Simulator().run(trace, w, protocol);
  }

  void expect_identical(const metrics::RunResults& a,
                        const metrics::RunResults& b) {
    EXPECT_EQ(a.interested_deliveries, b.interested_deliveries);
    EXPECT_EQ(a.false_deliveries, b.false_deliveries);
    EXPECT_EQ(a.forwardings, b.forwardings);
    EXPECT_EQ(a.message_bytes, b.message_bytes);
    EXPECT_EQ(a.control_bytes, b.control_bytes);
    EXPECT_EQ(a.expected_deliveries, b.expected_deliveries);
    EXPECT_DOUBLE_EQ(a.mean_delay_minutes, b.mean_delay_minutes);
    EXPECT_DOUBLE_EQ(a.median_delay_minutes, b.median_delay_minutes);
    EXPECT_DOUBLE_EQ(a.max_delay_minutes, b.max_delay_minutes);
  }
};

TEST_F(RegistryDeterminism, Push) {
  routing::PushProtocol direct;
  auto via_registry = registry().make("PUSH");
  expect_identical(run(*via_registry), run(direct));
}

TEST_F(RegistryDeterminism, Pull) {
  routing::PullProtocol direct;
  auto via_registry = registry().make("PULL");
  expect_identical(run(*via_registry), run(direct));
}

TEST_F(RegistryDeterminism, SprayWithCopiesParameter) {
  routing::SprayProtocol direct(8);
  auto via_registry = registry().make("SPRAY:copies=8");
  expect_identical(run(*via_registry), run(direct));
}

TEST_F(RegistryDeterminism, BsubWithParameters) {
  core::BsubConfig cfg;
  cfg.df_per_minute = 0.25;
  cfg.copy_limit = 5;
  cfg.broker_merge = core::BrokerMergeMode::kAMerge;
  core::BsubProtocol direct(cfg);
  auto via_registry = registry().make("bsub:df=0.25,copies=5,merge=a");
  expect_identical(run(*via_registry), run(direct));
  // And through the exact-round-trip spec printer.
  auto via_spec = registry().make(core::bsub_spec(cfg));
  expect_identical(run(*via_spec), run(direct));
}

}  // namespace
}  // namespace bsub
