// Differential test for the deterministic parallel execution core.
//
// The conflict-batch executor claims *exactly* the observable semantics of
// the serial event loop — not statistically similar, identical. This test
// runs every protocol with threads=1 (the plain serial merge) and threads=4
// (windowed conflict batches on the thread pool, with a small window so
// many windows and batches are exercised even on short traces) over
// randomized synthetic scenarios, 10 seeds for B-SUB and 10 for the
// baselines, and requires every semantic RunResults field, the traffic
// breakdown, the false-injection count, and the measured relay FPR to
// match bit for bit. The engine's TraceRunner gets the same treatment.
#include <gtest/gtest.h>

#include <vector>

#include "core/bsub_protocol.h"
#include "core/df_tuning.h"
#include "engine/trace_runner.h"
#include "metrics/collector.h"
#include "routing/pull.h"
#include "routing/push.h"
#include "routing/spray.h"
#include "sim/simulator.h"
#include "trace/synthetic.h"
#include "workload/workload.h"

namespace bsub {
namespace {

struct ScenarioCase {
  // Workload holds a pointer to the KeySet, so the set lives here too.
  workload::KeySet keys;
  trace::ContactTrace trace;
  workload::Workload workload;

  explicit ScenarioCase(std::uint64_t seed)
      : keys(workload::twitter_trend_keys()),
        trace(trace::generate_trace(trace_config(seed))),
        workload(trace, keys, workload_config(seed)) {}

  static trace::SyntheticTraceConfig trace_config(std::uint64_t seed) {
    trace::SyntheticTraceConfig tcfg;
    tcfg.name = "pdiff";
    tcfg.node_count = 14 + seed % 7;
    tcfg.contact_count = 1500 + 100 * (seed % 5);
    tcfg.duration = util::kDay;
    tcfg.community_count = 3;
    tcfg.seed = seed;
    return tcfg;
  }

  static workload::WorkloadConfig workload_config(std::uint64_t seed) {
    workload::WorkloadConfig wcfg;
    wcfg.ttl = static_cast<util::Time>(2 + seed % 6) * util::kHour;
    wcfg.seed = seed + 1;
    return wcfg;
  }
};

/// threads=1 -> plain serial merge; threads=4, tiny window -> many windows
/// and batches even on these short traces.
sim::SimulatorConfig serial_config() {
  sim::SimulatorConfig cfg;
  cfg.threads = 1;
  return cfg;
}

sim::SimulatorConfig parallel_config() {
  sim::SimulatorConfig cfg;
  cfg.threads = 4;
  cfg.window_events = 256;
  cfg.min_batch_fanout = 1;  // fan out even tiny batches: worst case
  return cfg;
}

void expect_bit_identical(const metrics::RunResults& a,
                          const metrics::RunResults& b, std::uint64_t seed,
                          const char* what) {
  // Field-by-field: RunResults carries the hot_path execution counters,
  // which are schedule-independent too (commutative tallies) — but they
  // are not semantic, so only the semantic fields are pinned here.
  EXPECT_EQ(a.messages_created, b.messages_created) << what << " s" << seed;
  EXPECT_EQ(a.expected_deliveries, b.expected_deliveries)
      << what << " s" << seed;
  EXPECT_EQ(a.interested_deliveries, b.interested_deliveries)
      << what << " s" << seed;
  EXPECT_EQ(a.false_deliveries, b.false_deliveries) << what << " s" << seed;
  EXPECT_EQ(a.forwardings, b.forwardings) << what << " s" << seed;
  EXPECT_EQ(a.message_bytes, b.message_bytes) << what << " s" << seed;
  EXPECT_EQ(a.control_bytes, b.control_bytes) << what << " s" << seed;
  EXPECT_EQ(a.delivery_ratio, b.delivery_ratio) << what << " s" << seed;
  EXPECT_EQ(a.mean_delay_minutes, b.mean_delay_minutes)
      << what << " s" << seed;
  EXPECT_EQ(a.median_delay_minutes, b.median_delay_minutes)
      << what << " s" << seed;
  EXPECT_EQ(a.max_delay_minutes, b.max_delay_minutes) << what << " s" << seed;
  EXPECT_EQ(a.forwardings_per_delivery, b.forwardings_per_delivery)
      << what << " s" << seed;
  EXPECT_EQ(a.false_positive_rate, b.false_positive_rate)
      << what << " s" << seed;
}

TEST(ParallelDifferential, BsubParallelMatchesSerialOnTenSeeds) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const ScenarioCase sc(seed);
    core::BsubConfig cfg;
    cfg.df_per_minute =
        core::compute_df(sc.trace, 4 * util::kHour, cfg.filter_params,
                         cfg.initial_counter)
            .df_per_minute;

    core::BsubProtocol serial_proto(cfg);
    sim::Simulator serial_sim(serial_config());
    const metrics::RunResults serial_r =
        serial_sim.run(sc.trace, sc.workload, serial_proto);
    EXPECT_EQ(serial_sim.last_run_stats().threads_used, 1u);

    core::BsubProtocol parallel_proto(cfg);
    sim::Simulator parallel_sim(parallel_config());
    const metrics::RunResults parallel_r =
        parallel_sim.run(sc.trace, sc.workload, parallel_proto);

    expect_bit_identical(serial_r, parallel_r, seed, "bsub");
    EXPECT_EQ(serial_proto.traffic().pickups, parallel_proto.traffic().pickups)
        << "s" << seed;
    EXPECT_EQ(serial_proto.traffic().broker_transfers,
              parallel_proto.traffic().broker_transfers)
        << "s" << seed;
    EXPECT_EQ(serial_proto.traffic().deliveries,
              parallel_proto.traffic().deliveries)
        << "s" << seed;
    EXPECT_EQ(serial_proto.false_injections(),
              parallel_proto.false_injections())
        << "s" << seed;
    EXPECT_EQ(serial_proto.measured_relay_fpr(),
              parallel_proto.measured_relay_fpr())
        << "s" << seed;

    // The parallel run must actually have used the conflict-batch path.
    const sim::ParallelRunStats& ps = parallel_sim.last_run_stats();
    EXPECT_EQ(ps.threads_used, 4u) << "s" << seed;
    EXPECT_GT(ps.windows, 1u) << "s" << seed;
    EXPECT_GT(ps.batches, 0u) << "s" << seed;
  }
}

TEST(ParallelDifferential, BaselinesParallelMatchSerialOnTenSeeds) {
  for (std::uint64_t seed = 11; seed <= 20; ++seed) {
    const ScenarioCase sc(seed);

    {
      routing::PushProtocol serial_proto;
      routing::PushProtocol parallel_proto;
      const metrics::RunResults a = sim::Simulator(serial_config())
                                        .run(sc.trace, sc.workload,
                                             serial_proto);
      const metrics::RunResults b = sim::Simulator(parallel_config())
                                        .run(sc.trace, sc.workload,
                                             parallel_proto);
      expect_bit_identical(a, b, seed, "push");
    }
    {
      routing::PullProtocol serial_proto;
      routing::PullProtocol parallel_proto;
      const metrics::RunResults a = sim::Simulator(serial_config())
                                        .run(sc.trace, sc.workload,
                                             serial_proto);
      const metrics::RunResults b = sim::Simulator(parallel_config())
                                        .run(sc.trace, sc.workload,
                                             parallel_proto);
      expect_bit_identical(a, b, seed, "pull");
    }
    {
      routing::SprayProtocol serial_proto(3);
      routing::SprayProtocol parallel_proto(3);
      const metrics::RunResults a = sim::Simulator(serial_config())
                                        .run(sc.trace, sc.workload,
                                             serial_proto);
      const metrics::RunResults b = sim::Simulator(parallel_config())
                                        .run(sc.trace, sc.workload,
                                             parallel_proto);
      expect_bit_identical(a, b, seed, "spray");
    }
  }
}

TEST(ParallelDifferential, ProtocolsWithoutOptInStaySerial) {
  // A protocol that does not override parallel_contacts_safe() must take
  // the serial path even when the simulator asks for threads.
  struct OrderLogger final : sim::Protocol {
    std::vector<std::pair<trace::NodeId, trace::NodeId>> order;
    using sim::Protocol::on_start;
    void on_start(const sim::ScenarioInfo&, const workload::Workload&,
                  metrics::Collector&) override {}
    void on_message_created(const workload::Message&, util::Time) override {}
    void on_contact(trace::NodeId a, trace::NodeId b, util::Time,
                    util::Time, sim::Link&) override {
      order.push_back({a, b});  // deliberately not thread-safe
    }
    const char* name() const override { return "logger"; }
  };

  const ScenarioCase sc(7);
  OrderLogger one, four;
  sim::Simulator s1(serial_config());
  sim::Simulator s4(parallel_config());
  s1.run(sc.trace, sc.workload, one);
  s4.run(sc.trace, sc.workload, four);
  EXPECT_EQ(s4.last_run_stats().threads_used, 1u);
  EXPECT_EQ(one.order, four.order);
}

TEST(ParallelDifferential, TraceRunnerParallelMatchesSerial) {
  for (std::uint64_t seed = 3; seed <= 7; ++seed) {
    const ScenarioCase sc(seed);
    engine::NodeConfig node_cfg;
    node_cfg.df_per_minute =
        core::compute_df(sc.trace, 4 * util::kHour, node_cfg.filter_params,
                         node_cfg.initial_counter)
            .df_per_minute;

    engine::TraceRunnerOptions serial_opts;
    serial_opts.threads = 1;
    engine::TraceRunner serial_runner(node_cfg, {3, 5, 5 * util::kHour},
                                      sim::kDefaultBandwidthBytesPerSecond,
                                      serial_opts);
    const engine::TraceRunResults a = serial_runner.run(sc.trace, sc.workload);

    engine::TraceRunnerOptions parallel_opts;
    parallel_opts.threads = 4;
    parallel_opts.window_events = 256;
    parallel_opts.min_batch_fanout = 1;
    engine::TraceRunner parallel_runner(node_cfg, {3, 5, 5 * util::kHour},
                                        sim::kDefaultBandwidthBytesPerSecond,
                                        parallel_opts);
    const engine::TraceRunResults b =
        parallel_runner.run(sc.trace, sc.workload);

    EXPECT_EQ(a.deliveries, b.deliveries) << "s" << seed;
    EXPECT_EQ(a.expected_deliveries, b.expected_deliveries) << "s" << seed;
    EXPECT_EQ(a.delivery_ratio, b.delivery_ratio) << "s" << seed;
    EXPECT_EQ(a.mean_delay_minutes, b.mean_delay_minutes) << "s" << seed;
    EXPECT_EQ(a.contacts_processed, b.contacts_processed) << "s" << seed;
    EXPECT_EQ(a.frames_delivered, b.frames_delivered) << "s" << seed;
    EXPECT_EQ(a.frames_dropped, b.frames_dropped) << "s" << seed;
    EXPECT_EQ(a.bytes_used, b.bytes_used) << "s" << seed;
    EXPECT_EQ(parallel_runner.last_run_stats().threads_used, 4u);
    EXPECT_GT(parallel_runner.last_run_stats().batches, 0u);
  }
}

}  // namespace
}  // namespace bsub
