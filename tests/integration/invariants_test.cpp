// Cross-protocol invariant suite: properties every protocol implementation
// must satisfy on randomized scenarios, checked over a (protocol x seed)
// parameter grid.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>

#include "core/bsub_protocol.h"
#include "routing/pull.h"
#include "routing/push.h"
#include "routing/spray.h"
#include "sim/simulator.h"
#include "trace/synthetic.h"
#include "workload/workload.h"

namespace bsub {
namespace {

std::unique_ptr<sim::Protocol> make_protocol(const std::string& name) {
  if (name == "push") return std::make_unique<routing::PushProtocol>();
  if (name == "pull") return std::make_unique<routing::PullProtocol>();
  if (name == "spray") return std::make_unique<routing::SprayProtocol>(3);
  core::BsubConfig cfg;
  cfg.df_per_minute = 0.2;
  return std::make_unique<core::BsubProtocol>(cfg);
}

class ProtocolInvariants
    : public ::testing::TestWithParam<std::tuple<std::string, std::uint64_t>> {
 protected:
  metrics::RunResults run(util::Time ttl = 4 * util::kHour) {
    auto [name, seed] = GetParam();
    trace::SyntheticTraceConfig tcfg;
    tcfg.node_count = 25;
    tcfg.contact_count = 4000;
    tcfg.duration = util::kDay;
    tcfg.seed = seed;
    trace_ = trace::generate_trace(tcfg);
    keys_ = std::make_unique<workload::KeySet>(
        workload::twitter_trend_keys());
    workload::WorkloadConfig wcfg;
    wcfg.ttl = ttl;
    wcfg.seed = seed + 1;
    workload_ =
        std::make_unique<workload::Workload>(trace_, *keys_, wcfg);
    auto protocol = make_protocol(name);
    return sim::Simulator().run(trace_, *workload_, *protocol);
  }

  trace::ContactTrace trace_;
  std::unique_ptr<workload::KeySet> keys_;
  std::unique_ptr<workload::Workload> workload_;
};

TEST_P(ProtocolInvariants, DeliveriesNeverExceedExpected) {
  auto r = run();
  EXPECT_LE(r.interested_deliveries, r.expected_deliveries);
  EXPECT_LE(r.delivery_ratio, 1.0 + 1e-12);
}

TEST_P(ProtocolInvariants, DelaysRespectTtl) {
  const util::Time ttl = 4 * util::kHour;
  auto r = run(ttl);
  if (r.interested_deliveries > 0) {
    EXPECT_LE(r.max_delay_minutes, util::to_minutes(ttl) + 1e-9);
    EXPECT_GE(r.mean_delay_minutes, 0.0);
    EXPECT_LE(r.median_delay_minutes, r.max_delay_minutes);
  }
}

TEST_P(ProtocolInvariants, ForwardingsCoverDeliveries) {
  // Every delivery is a transmission, so forwardings >= deliveries.
  auto r = run();
  EXPECT_GE(r.forwardings, r.interested_deliveries + r.false_deliveries);
}

TEST_P(ProtocolInvariants, ByteAccountingIsConsistent) {
  auto r = run();
  if (r.forwardings > 0) {
    EXPECT_GT(r.message_bytes, 0u);
    // Bodies are 1..140 bytes.
    EXPECT_LE(r.message_bytes, r.forwardings * 140);
    EXPECT_GE(r.message_bytes, r.forwardings * 1);
  }
}

TEST_P(ProtocolInvariants, RunsAreDeterministic) {
  auto r1 = run();
  auto r2 = run();
  EXPECT_EQ(r1.interested_deliveries, r2.interested_deliveries);
  EXPECT_EQ(r1.false_deliveries, r2.false_deliveries);
  EXPECT_EQ(r1.forwardings, r2.forwardings);
  EXPECT_EQ(r1.message_bytes, r2.message_bytes);
  EXPECT_EQ(r1.control_bytes, r2.control_bytes);
  EXPECT_DOUBLE_EQ(r1.mean_delay_minutes, r2.mean_delay_minutes);
}

TEST_P(ProtocolInvariants, FprIsAFraction) {
  auto r = run();
  EXPECT_GE(r.false_positive_rate, 0.0);
  EXPECT_LE(r.false_positive_rate, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ProtocolInvariants,
    ::testing::Combine(::testing::Values("push", "pull", "spray", "bsub"),
                       ::testing::Values<std::uint64_t>(11, 47, 93)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace bsub
