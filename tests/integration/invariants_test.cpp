// Cross-protocol invariant suite: properties every protocol implementation
// must satisfy on randomized scenarios, checked over a (protocol x seed)
// parameter grid. Protocols are resolved through the registry — the grid
// parameter IS the spec string every runtime surface accepts.
#include <gtest/gtest.h>

#include <cctype>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "core/protocol_registry.h"
#include "sim/simulator.h"
#include "trace/synthetic.h"
#include "workload/workload.h"

namespace bsub {
namespace {

const sim::ProtocolRegistry& registry() {
  static const sim::ProtocolRegistry r = core::make_protocol_registry();
  return r;
}

class ProtocolInvariants
    : public ::testing::TestWithParam<std::tuple<std::string, std::uint64_t>> {
 protected:
  /// The spec under test, e.g. "SPRAY:copies=3".
  const std::string& spec() const { return std::get<0>(GetParam()); }
  bool is_bsub() const { return spec().rfind("B-SUB", 0) == 0; }

  void build_scenario(util::Time ttl) {
    const std::uint64_t seed = std::get<1>(GetParam());
    trace::SyntheticTraceConfig tcfg;
    tcfg.node_count = 25;
    tcfg.contact_count = 4000;
    tcfg.duration = util::kDay;
    tcfg.seed = seed;
    trace_ = trace::generate_trace(tcfg);
    keys_ = std::make_unique<workload::KeySet>(
        workload::twitter_trend_keys());
    workload::WorkloadConfig wcfg;
    wcfg.ttl = ttl;
    wcfg.seed = seed + 1;
    workload_ =
        std::make_unique<workload::Workload>(trace_, *keys_, wcfg);
  }

  metrics::RunResults run(util::Time ttl = 4 * util::kHour) {
    build_scenario(ttl);
    return sim::Simulator().run(trace_, *workload_, registry(), spec());
  }

  trace::ContactTrace trace_;
  std::unique_ptr<workload::KeySet> keys_;
  std::unique_ptr<workload::Workload> workload_;
};

TEST_P(ProtocolInvariants, DeliveriesNeverExceedExpected) {
  auto r = run();
  EXPECT_LE(r.interested_deliveries, r.expected_deliveries);
  EXPECT_LE(r.delivery_ratio, 1.0 + 1e-12);
}

TEST_P(ProtocolInvariants, DelaysRespectTtl) {
  const util::Time ttl = 4 * util::kHour;
  auto r = run(ttl);
  if (r.interested_deliveries > 0) {
    EXPECT_LE(r.max_delay_minutes, util::to_minutes(ttl) + 1e-9);
    EXPECT_GE(r.mean_delay_minutes, 0.0);
    EXPECT_LE(r.median_delay_minutes, r.max_delay_minutes);
  }
}

TEST_P(ProtocolInvariants, ForwardingsCoverDeliveries) {
  // Every delivery is a transmission, so forwardings >= deliveries.
  auto r = run();
  EXPECT_GE(r.forwardings, r.interested_deliveries + r.false_deliveries);
}

TEST_P(ProtocolInvariants, ByteAccountingIsConsistent) {
  auto r = run();
  if (r.forwardings > 0) {
    EXPECT_GT(r.message_bytes, 0u);
    // Bodies are 1..140 bytes.
    EXPECT_LE(r.message_bytes, r.forwardings * 140);
    EXPECT_GE(r.message_bytes, r.forwardings * 1);
  }
}

TEST_P(ProtocolInvariants, RunsAreDeterministic) {
  auto r1 = run();
  auto r2 = run();
  EXPECT_EQ(r1.interested_deliveries, r2.interested_deliveries);
  EXPECT_EQ(r1.false_deliveries, r2.false_deliveries);
  EXPECT_EQ(r1.forwardings, r2.forwardings);
  EXPECT_EQ(r1.message_bytes, r2.message_bytes);
  EXPECT_EQ(r1.control_bytes, r2.control_bytes);
  EXPECT_DOUBLE_EQ(r1.mean_delay_minutes, r2.mean_delay_minutes);
}

TEST_P(ProtocolInvariants, FprIsAFraction) {
  auto r = run();
  EXPECT_GE(r.false_positive_rate, 0.0);
  EXPECT_LE(r.false_positive_rate, 1.0);
}

// The accounting-audit invariant behind the Spray/Pull fixes: replaying
// every contact twice must move no additional message bodies for the
// baselines — every body path carries a dedup guard (PUSH's ever-seen
// bitmap, PULL's and SPRAY's delivered-guards, SPRAY's relayed-store
// check), so a repeated meeting re-transfers nothing. Control bytes are
// exempt (PULL legitimately re-announces per contact). B-SUB is excluded
// by design: between the two copies of a contact its relay filters have
// already merged, which can open new legitimate custody routes.
TEST_P(ProtocolInvariants, DuplicatedContactsMoveNoExtraBodies) {
  if (is_bsub()) GTEST_SKIP() << "filter merges legitimately change routes";
  build_scenario(4 * util::kHour);
  sim::Simulator sim;
  const auto once = sim.run(trace_, *workload_, registry(), spec());

  std::vector<trace::Contact> doubled;
  doubled.reserve(trace_.contacts().size() * 2);
  for (const trace::Contact& c : trace_.contacts()) {
    doubled.push_back(c);
    doubled.push_back(c);
  }
  const trace::ContactTrace doubled_trace(trace_.node_count(),
                                          std::move(doubled));
  const auto twice = sim.run(doubled_trace, *workload_, registry(), spec());

  EXPECT_EQ(twice.forwardings, once.forwardings);
  EXPECT_EQ(twice.message_bytes, once.message_bytes);
  EXPECT_EQ(twice.interested_deliveries, once.interested_deliveries);
}

// Control-plane accounting by protocol class: PUSH and SPRAY never send
// filters or announcements, so any nonzero control tally would be a
// charging bug; PULL pays an announcement per pull and B-SUB pays filter
// exchanges.
TEST_P(ProtocolInvariants, ControlBytesMatchProtocolClass) {
  auto r = run();
  const bool has_control_plane =
      is_bsub() || spec().rfind("PULL", 0) == 0;
  if (has_control_plane) {
    EXPECT_GT(r.control_bytes, 0u);
  } else {
    EXPECT_EQ(r.control_bytes, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ProtocolInvariants,
    ::testing::Combine(::testing::Values("PUSH", "PULL", "SPRAY:copies=3",
                                         "B-SUB:df=0.2"),
                       ::testing::Values<std::uint64_t>(11, 47, 93)),
    [](const auto& info) {
      std::string label = std::get<0>(info.param) + "_seed" +
                          std::to_string(std::get<1>(info.param));
      for (char& c : label) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return label;
    });

}  // namespace
}  // namespace bsub
