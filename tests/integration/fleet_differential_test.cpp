// Fleet loopback engine vs engine harness at fleet scale: a thousand live
// nodes sharded across reactor lanes must reproduce engine::TraceRunner
// *bit for bit* — delivery logs, frame tallies, byte usage, float summaries
// — across seeds, with >= 2 reactor threads. Custody sets (which nodes ever
// carried each message) are compared against a serial engine replay, so the
// messages traveled the same broker paths on both substrates.
//
// decay_tick is 0 throughout: both substrates decay TCBF counters lazily
// over identical intervals (see live_loopback_differential_test.cpp).
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "core/df_tuning.h"
#include "engine/network.h"
#include "engine/trace_runner.h"
#include "net/fleet/fleet_runtime.h"
#include "trace/synthetic.h"
#include "workload/workload.h"

namespace bsub::net {
namespace {

constexpr std::size_t kNodes = 1000;
constexpr std::size_t kContacts = 8000;
constexpr util::Time kTtl = 6 * util::kHour;

struct Scenario {
  trace::ContactTrace trace;
  workload::KeySet keys;
  workload::Workload workload;

  explicit Scenario(std::uint64_t seed)
      : trace([&] {
          trace::SyntheticTraceConfig cfg;
          cfg.node_count = kNodes;
          cfg.contact_count = kContacts;
          cfg.duration = 12 * util::kHour;
          cfg.community_count = 20;
          cfg.seed = seed;
          return trace::generate_trace(cfg);
        }()),
        keys(workload::twitter_trend_keys()), workload([&] {
          workload::WorkloadConfig wcfg;
          wcfg.ttl = kTtl;
          // Keep the message population proportionate to the sparse
          // contact plan (~8 contacts per node).
          wcfg.base_rate_per_minute = 1.0 / 1440.0;
          wcfg.seed = seed + 1;
          return workload::Workload(trace, keys, wcfg);
        }()) {}
};

engine::NodeConfig node_config_for(const Scenario& s) {
  engine::NodeConfig cfg;
  cfg.df_per_minute =
      core::compute_df(s.trace, kTtl, cfg.filter_params, cfg.initial_counter)
          .df_per_minute;
  return cfg;
}

using DeliveryTuple =
    std::tuple<engine::NodeId, std::uint64_t, std::string, util::Time>;

std::vector<DeliveryTuple> tuples(
    const std::vector<engine::DeliveryRecord>& records) {
  std::vector<DeliveryTuple> out;
  out.reserve(records.size());
  for (const auto& r : records) {
    out.emplace_back(r.consumer, r.message_id, r.key, r.at);
  }
  return out;
}

FleetConfig fleet_config_for(engine::NodeConfig node_config) {
  FleetConfig cfg;
  cfg.runtime.node = node_config;
  cfg.runtime.decay_tick = 0;
  cfg.threads = 2;  // >= 2 reactor threads, per the acceptance bar
  return cfg;
}

/// Serial engine replay that keeps its Network for custody introspection
/// (TraceRunner discards its Network at return).
class EngineReplay {
 public:
  EngineReplay(const Scenario& s, engine::NodeConfig node_config,
               core::BrokerElection::Config election_config)
      : net_(node_config), election_(s.trace.node_count(), election_config) {
    net_.use_per_node_delivery_log(s.trace.node_count());
    for (trace::NodeId n = 0; n < s.trace.node_count(); ++n) {
      engine::BsubNode& node = net_.add_node(n);
      for (workload::KeyId k : s.workload.interests_of(n)) {
        node.subscribe(s.workload.keys().name(k));
      }
    }
    const auto& contacts = s.trace.contacts();
    const auto& messages = s.workload.messages();
    std::size_t ci = 0, mi = 0;
    while (ci < contacts.size() || mi < messages.size()) {
      const bool take_message =
          mi < messages.size() &&
          (ci >= contacts.size() ||
           messages[mi].created <= contacts[ci].start);
      if (take_message) {
        const workload::Message& m = messages[mi++];
        engine::ContentMessage cm;
        cm.id = m.id;
        cm.key = s.workload.keys().name(m.key);
        cm.body.assign(m.size_bytes, 0x5A);
        cm.created = m.created;
        cm.ttl = m.ttl;
        net_.node(m.producer).publish(std::move(cm), m.created);
        continue;
      }
      const trace::Contact& c = contacts[ci++];
      election_.on_contact(c.a, c.b, c.start);
      net_.node(c.a).set_broker(election_.is_broker(c.a));
      net_.node(c.b).set_broker(election_.is_broker(c.b));
      net_.contact(c.a, c.b, c.start, c.duration());
    }
  }

  engine::Network& net() { return net_; }

 private:
  engine::Network net_;
  core::BrokerElection election_;
};

TEST(FleetDifferential, BitForBitVsTraceRunnerAcrossSeeds) {
  for (std::uint64_t seed : {11u, 22u, 33u, 44u, 55u, 66u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Scenario s(seed);
    const engine::NodeConfig node_config = node_config_for(s);
    const core::BrokerElection::Config election{3, 5, 5 * util::kHour};

    engine::TraceRunner runner(node_config, election);
    const engine::TraceRunResults expect = runner.run(s.trace, s.workload);
    ASSERT_GT(expect.deliveries, 0u);

    FleetRuntime fleet(fleet_config_for(node_config));
    const FleetRunResults got = fleet.run_loopback(s.trace, s.workload);
    EXPECT_GE(got.reactor_threads, 2u);

    EXPECT_EQ(got.protocol.deliveries, expect.deliveries);
    EXPECT_EQ(got.protocol.expected_deliveries, expect.expected_deliveries);
    EXPECT_EQ(got.protocol.contacts_processed, expect.contacts_processed);
    EXPECT_EQ(got.protocol.frames_delivered, expect.frames_delivered);
    EXPECT_EQ(got.protocol.frames_dropped, expect.frames_dropped);
    EXPECT_EQ(got.protocol.bytes_used, expect.bytes_used);
    EXPECT_EQ(got.protocol.delivery_ratio, expect.delivery_ratio);
    EXPECT_EQ(got.protocol.mean_delay_minutes, expect.mean_delay_minutes);
  }
}

TEST(FleetDifferential, DeliveryLogsAndCustodySetsMatch) {
  Scenario s(77);
  const engine::NodeConfig node_config = node_config_for(s);
  const core::BrokerElection::Config election{3, 5, 5 * util::kHour};

  EngineReplay replay(s, node_config, election);

  FleetRuntime fleet(fleet_config_for(node_config));
  const FleetRunResults got = fleet.run_loopback(s.trace, s.workload);
  ASSERT_GT(got.protocol.deliveries, 0u);

  // Record-for-record delivery logs in the canonical node-major order.
  EXPECT_EQ(tuples(fleet.deliveries()), tuples(replay.net().deliveries()));

  // Custody sets: every message was ever carried by exactly the same nodes
  // on both substrates — same brokers, same relay paths.
  std::set<std::uint64_t> message_ids;
  for (const workload::Message& m : s.workload.messages()) {
    message_ids.insert(m.id);
  }
  std::size_t custody_hops = 0;
  std::size_t mismatches = 0;
  for (std::uint64_t id : message_ids) {
    for (trace::NodeId n = 0; n < s.trace.node_count(); ++n) {
      const bool fleet_carried = fleet.node(n).ever_carried(id);
      if (fleet_carried != replay.net().node(n).ever_carried(id)) {
        ++mismatches;
      }
      custody_hops += fleet_carried ? 1u : 0u;
    }
  }
  EXPECT_EQ(mismatches, 0u);
  EXPECT_GT(custody_hops, 0u);  // the relay path was actually exercised
}

}  // namespace
}  // namespace bsub::net
