// Loopback runtime vs engine harness: the live transport substrate
// (sessions, fragmentation, acks, budget charging at the datagram layer)
// must reproduce the engine::TraceRunner's results *bit for bit* on the
// same scenario — identical delivery sets, frame tallies, byte usage, and
// per-message hop counts — across seeds.
//
// One deliberate knob: periodic decay ticks are disabled (decay_tick = 0)
// so both substrates decay TCBF counters lazily over identical intervals.
// Splitting a decay interval across ticks changes the floating-point sum
// (df*t1 + df*t2 != df*(t1+t2) bitwise), which would perturb counter
// values without changing protocol semantics. Tick-driven decay semantics
// are covered separately in tests/net/loopback_runtime_test.cpp.
#include <gtest/gtest.h>

#include <set>
#include <tuple>
#include <vector>

#include "core/df_tuning.h"
#include "engine/network.h"
#include "engine/trace_runner.h"
#include "net/orchestrator.h"
#include "trace/synthetic.h"
#include "workload/workload.h"

namespace bsub::net {
namespace {

struct Scenario {
  trace::ContactTrace trace;
  workload::KeySet keys;
  workload::Workload workload;

  explicit Scenario(std::uint64_t seed)
      : trace([&] {
          trace::SyntheticTraceConfig cfg;
          cfg.node_count = 12;
          cfg.contact_count = 600;
          cfg.duration = 8 * util::kHour;
          cfg.seed = seed;
          return trace::generate_trace(cfg);
        }()),
        keys(workload::twitter_trend_keys()), workload([&] {
          workload::WorkloadConfig wcfg;
          wcfg.ttl = 3 * util::kHour;
          wcfg.seed = seed + 1;
          return workload::Workload(trace, keys, wcfg);
        }()) {}
};

engine::NodeConfig node_config_for(const Scenario& s, util::Time ttl) {
  engine::NodeConfig cfg;
  cfg.df_per_minute =
      core::compute_df(s.trace, ttl, cfg.filter_params, cfg.initial_counter)
          .df_per_minute;
  return cfg;
}

using DeliveryTuple =
    std::tuple<engine::NodeId, std::uint64_t, std::string, util::Time>;

std::vector<DeliveryTuple> tuples(
    const std::vector<engine::DeliveryRecord>& records) {
  std::vector<DeliveryTuple> out;
  out.reserve(records.size());
  for (const auto& r : records) {
    out.emplace_back(r.consumer, r.message_id, r.key, r.at);
  }
  return out;
}

/// Replays the scenario on the raw engine::Network substrate (serially,
/// with the TraceRunner's exact event merge) so per-node custody history
/// stays inspectable — TraceRunner itself discards its Network.
class EngineReplay {
 public:
  EngineReplay(const Scenario& s, engine::NodeConfig node_config,
               core::BrokerElection::Config election_config)
      : net_(node_config), election_(s.trace.node_count(), election_config) {
    net_.use_per_node_delivery_log(s.trace.node_count());
    for (trace::NodeId n = 0; n < s.trace.node_count(); ++n) {
      engine::BsubNode& node = net_.add_node(n);
      for (workload::KeyId k : s.workload.interests_of(n)) {
        node.subscribe(s.workload.keys().name(k));
      }
    }
    const auto& contacts = s.trace.contacts();
    const auto& messages = s.workload.messages();
    std::size_t ci = 0, mi = 0;
    while (ci < contacts.size() || mi < messages.size()) {
      const bool take_message =
          mi < messages.size() &&
          (ci >= contacts.size() ||
           messages[mi].created <= contacts[ci].start);
      if (take_message) {
        const workload::Message& m = messages[mi++];
        engine::ContentMessage cm;
        cm.id = m.id;
        cm.key = s.workload.keys().name(m.key);
        cm.body.assign(m.size_bytes, 0x5A);
        cm.created = m.created;
        cm.ttl = m.ttl;
        net_.node(m.producer).publish(std::move(cm), m.created);
        continue;
      }
      const trace::Contact& c = contacts[ci++];
      election_.on_contact(c.a, c.b, c.start);
      net_.node(c.a).set_broker(election_.is_broker(c.a));
      net_.node(c.b).set_broker(election_.is_broker(c.b));
      net_.contact(c.a, c.b, c.start, c.duration());
    }
  }

  engine::Network& net() { return net_; }

 private:
  engine::Network net_;
  core::BrokerElection election_;
};

TEST(LiveLoopbackDifferential, BitForBitAcrossSeeds) {
  for (std::uint64_t seed : {101u, 202u, 303u, 404u, 505u, 606u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Scenario s(seed);
    const util::Time ttl = 3 * util::kHour;
    const engine::NodeConfig node_config = node_config_for(s, ttl);
    const core::BrokerElection::Config election{3, 5, 5 * util::kHour};

    engine::TraceRunner runner(node_config, election);
    const engine::TraceRunResults expect = runner.run(s.trace, s.workload);
    ASSERT_GT(expect.deliveries, 0u);

    OrchestratorConfig config;
    config.runtime.node = node_config;
    config.runtime.decay_tick = 0;  // see file header
    config.election = election;
    ContactOrchestrator orch(config);
    const LiveRunResults live = orch.run(s.trace, s.workload);

    // Scalar results: integers exactly, floats bitwise (same summation
    // order over identical delivery logs).
    EXPECT_EQ(live.protocol.deliveries, expect.deliveries);
    EXPECT_EQ(live.protocol.expected_deliveries, expect.expected_deliveries);
    EXPECT_EQ(live.protocol.contacts_processed, expect.contacts_processed);
    EXPECT_EQ(live.protocol.frames_delivered, expect.frames_delivered);
    EXPECT_EQ(live.protocol.frames_dropped, expect.frames_dropped);
    EXPECT_EQ(live.protocol.bytes_used, expect.bytes_used);
    EXPECT_EQ(live.protocol.delivery_ratio, expect.delivery_ratio);
    EXPECT_EQ(live.protocol.mean_delay_minutes, expect.mean_delay_minutes);
    EXPECT_EQ(live.datagrams_lost, 0u);
  }
}

TEST(LiveLoopbackDifferential, DeliverySetsAndHopCountsMatch) {
  Scenario s(707);
  const util::Time ttl = 3 * util::kHour;
  const engine::NodeConfig node_config = node_config_for(s, ttl);
  const core::BrokerElection::Config election{3, 5, 5 * util::kHour};

  // Serial engine replay that keeps its Network for introspection.
  EngineReplay replay(s, node_config, election);

  OrchestratorConfig config;
  config.runtime.node = node_config;
  config.runtime.decay_tick = 0;
  config.election = election;
  ContactOrchestrator orch(config);
  const LiveRunResults live = orch.run(s.trace, s.workload);

  // The full delivery logs — consumer, message, key, timestamp — agree
  // record for record in the canonical node-major order.
  ASSERT_GT(live.protocol.deliveries, 0u);
  EXPECT_EQ(tuples(orch.deliveries()), tuples(replay.net().deliveries()));

  // Per-message hop counts: the set of nodes that ever took broker custody
  // of each message is identical, so every message traveled the same path
  // through the same brokers on both substrates.
  std::set<std::uint64_t> message_ids;
  for (const workload::Message& m : s.workload.messages()) {
    message_ids.insert(m.id);
  }
  std::size_t custody_hops = 0;
  for (std::uint64_t id : message_ids) {
    for (trace::NodeId n = 0; n < s.trace.node_count(); ++n) {
      const bool live_carried = orch.node(n).ever_carried(id);
      EXPECT_EQ(live_carried, replay.net().node(n).ever_carried(id))
          << "message " << id << " node " << n;
      custody_hops += live_carried ? 1u : 0u;
    }
  }
  // The scenario actually exercised the relay path.
  EXPECT_GT(custody_hops, 0u);
}

}  // namespace
}  // namespace bsub::net
