// Integration tests: the paper's qualitative results (section VII) must
// hold end-to-end on a reduced-scale synthetic scenario —
//   delivery ratio: PUSH >= B-SUB > PULL (B-SUB close to PUSH)
//   delay:          PUSH <= B-SUB << PULL
//   overhead:       PUSH >> B-SUB, PULL lowest
#include <gtest/gtest.h>

#include "core/bsub_protocol.h"
#include "core/df_tuning.h"
#include "routing/pull.h"
#include "routing/push.h"
#include "sim/simulator.h"
#include "trace/synthetic.h"
#include "workload/workload.h"

namespace bsub {
namespace {

struct ComparisonResults {
  metrics::RunResults push;
  metrics::RunResults bsub;
  metrics::RunResults pull;
};

ComparisonResults run_comparison(util::Time ttl, std::uint64_t seed) {
  trace::SyntheticTraceConfig tcfg;
  tcfg.node_count = 40;
  tcfg.contact_count = 12000;
  tcfg.duration = util::kDay;
  tcfg.seed = seed;
  auto t = trace::generate_trace(tcfg);
  auto keys = workload::twitter_trend_keys();
  workload::WorkloadConfig wcfg;
  wcfg.ttl = ttl;
  wcfg.seed = seed + 1;
  workload::Workload w(t, keys, wcfg);

  ComparisonResults out;
  {
    routing::PushProtocol proto;
    out.push = sim::Simulator().run(t, w, proto);
  }
  {
    core::BsubConfig cfg;
    cfg.df_per_minute =
        core::compute_df(t, ttl, cfg.filter_params, cfg.initial_counter)
            .df_per_minute;
    core::BsubProtocol proto(cfg);
    out.bsub = sim::Simulator().run(t, w, proto);
  }
  {
    routing::PullProtocol proto;
    out.pull = sim::Simulator().run(t, w, proto);
  }
  return out;
}

class ProtocolComparison : public ::testing::Test {
 protected:
  static const ComparisonResults& results() {
    static const ComparisonResults r =
        run_comparison(8 * util::kHour, /*seed=*/123);
    return r;
  }
};

TEST_F(ProtocolComparison, PushDeliversTheMost) {
  EXPECT_GE(results().push.delivery_ratio, results().bsub.delivery_ratio);
  EXPECT_GE(results().push.delivery_ratio, results().pull.delivery_ratio);
}

TEST_F(ProtocolComparison, BsubBeatsPullOnDeliveryRatio) {
  EXPECT_GT(results().bsub.delivery_ratio, results().pull.delivery_ratio);
}

TEST_F(ProtocolComparison, AllProtocolsDeliverSomething) {
  EXPECT_GT(results().push.interested_deliveries, 0u);
  EXPECT_GT(results().bsub.interested_deliveries, 0u);
  EXPECT_GT(results().pull.interested_deliveries, 0u);
}

TEST_F(ProtocolComparison, PullHasWorstDelay) {
  EXPECT_GT(results().pull.mean_delay_minutes,
            results().bsub.mean_delay_minutes);
  EXPECT_GT(results().pull.mean_delay_minutes,
            results().push.mean_delay_minutes);
}

TEST_F(ProtocolComparison, PushHasHighestOverhead) {
  EXPECT_GT(results().push.forwardings_per_delivery,
            results().bsub.forwardings_per_delivery);
  EXPECT_GT(results().push.forwardings_per_delivery,
            results().pull.forwardings_per_delivery);
}

TEST_F(ProtocolComparison, PullForwardingsPerDeliveryIsOne) {
  EXPECT_DOUBLE_EQ(results().pull.forwardings_per_delivery, 1.0);
}

TEST_F(ProtocolComparison, OnlyBsubCanFalseDeliver) {
  EXPECT_EQ(results().push.false_deliveries, 0u);
  EXPECT_EQ(results().pull.false_deliveries, 0u);
  // B-SUB's false deliveries are bounded by the theoretical worst case
  // (plus slack for the skewed key distribution, as the paper observes).
  EXPECT_LT(results().bsub.false_positive_rate, 0.15);
}

TEST(ProtocolTrends, LongerTtlImprovesDeliveryRatio) {
  // On a dense synthetic day, a multi-hour TTL already saturates flooding;
  // a 15-minute TTL is where the Fig. 7(a) slope lives.
  auto short_ttl = run_comparison(15 * util::kMinute, 55);
  auto long_ttl = run_comparison(8 * util::kHour, 55);
  EXPECT_GT(long_ttl.push.delivery_ratio, short_ttl.push.delivery_ratio);
  EXPECT_GT(long_ttl.bsub.delivery_ratio, short_ttl.bsub.delivery_ratio);
}

TEST(ProtocolTrends, HigherDfReducesForwardingsAndDelivery) {
  // Fig. 9 dynamics: raising DF shrinks the interest-propagation scope,
  // cutting both overhead and delivery ratio.
  trace::SyntheticTraceConfig tcfg;
  tcfg.node_count = 40;
  tcfg.contact_count = 12000;
  tcfg.duration = util::kDay;
  tcfg.seed = 321;
  auto t = trace::generate_trace(tcfg);
  auto keys = workload::twitter_trend_keys();
  workload::WorkloadConfig wcfg;
  wcfg.ttl = 12 * util::kHour;
  workload::Workload w(t, keys, wcfg);

  auto run_with_df = [&](double df) {
    core::BsubConfig cfg;
    cfg.df_per_minute = df;
    core::BsubProtocol proto(cfg);
    return sim::Simulator().run(t, w, proto);
  };
  auto no_decay = run_with_df(0.0);
  auto heavy_decay = run_with_df(2.0);
  EXPECT_GE(no_decay.delivery_ratio, heavy_decay.delivery_ratio);
  EXPECT_GT(no_decay.interested_deliveries, heavy_decay.interested_deliveries);
}

}  // namespace
}  // namespace bsub
