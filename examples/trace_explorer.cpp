// Trace explorer: generate (or load) a human-contact trace, print its
// Table-I-style statistics, the hour-of-day activity profile, the degree
// distribution, and the Eq. 5 decay-factor the trace implies for a range of
// delay bounds.
//
// Usage:
//   trace_explorer                  # built-in Haggle-like preset
//   trace_explorer <trace-file>     # CRAWDAD-style text trace
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/df_tuning.h"
#include "trace/analysis.h"
#include "trace/centrality.h"
#include "trace/synthetic.h"
#include "trace/trace_io.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  using namespace bsub;

  trace::ContactTrace t;
  if (argc > 1) {
    try {
      t = trace::load_trace(argv[1]);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  } else {
    t = trace::generate_trace(trace::haggle_infocom06_config(2010));
  }

  const trace::TraceStats s = t.stats();
  std::printf("trace: %s\n", t.name().c_str());
  std::printf("  nodes:                 %zu\n", s.node_count);
  std::printf("  contacts:              %zu\n", s.contact_count);
  std::printf("  duration:              %.1f h\n", util::to_hours(s.duration));
  std::printf("  mean contact duration: %.0f s\n", s.mean_contact_duration_s);
  std::printf("  mean contacts/node:    %.0f\n", s.mean_contacts_per_node);
  std::printf("  mean degree:           %.1f distinct peers\n\n",
              s.mean_degree);

  // Hour-of-day activity histogram (ASCII sparkline).
  std::vector<std::size_t> by_hour(24, 0);
  for (const trace::Contact& c : t.contacts()) {
    ++by_hour[static_cast<std::size_t>((c.start / util::kHour) % 24)];
  }
  const std::size_t peak = *std::max_element(by_hour.begin(), by_hour.end());
  std::printf("activity by hour of day:\n");
  for (int h = 0; h < 24; ++h) {
    int bars = peak == 0 ? 0 : static_cast<int>(40.0 * by_hour[h] / peak);
    std::printf("  %02d:00 %6zu %s\n", h, by_hour[h],
                std::string(static_cast<std::size_t>(bars), '#').c_str());
  }

  // Degree centrality extremes — who would make a good broker?
  const auto centrality = trace::degree_centrality(t);
  auto [lo, hi] = trace::centrality_range(centrality);
  std::printf("\ndegree centrality: min %.2f, max %.2f\n", lo, hi);

  // Pair structure and inter-contact gaps (what interest decay fights).
  const trace::PairStats ps = trace::pair_stats(t);
  std::printf("\npair structure:\n");
  std::printf("  pairs that ever meet:   %zu (%.0f%% of all pairs)\n",
              ps.pairs_meeting, 100 * ps.pair_coverage);
  std::printf("  contacts per pair:      mean %.1f, max %zu\n",
              ps.mean_contacts_per_pair, ps.max_contacts_per_pair);
  auto gaps = trace::pair_inter_contact_times_s(t);
  if (!gaps.empty()) {
    util::PercentileTracker pct;
    for (double g : gaps) pct.add(g);
    std::printf("  pair inter-contact gap: p50 %.0f s, p90 %.0f s, "
                ">1 h share %.0f%%\n",
                pct.percentile(50), pct.percentile(90),
                100 * trace::fraction_above(gaps, 3600.0));
  }

  // The DF that Eq. 5 implies for a range of delay bounds.
  std::printf("\nEq. 5 decay factors (C = 50):\n");
  std::printf("  %10s | %14s | %8s | %10s\n", "W (hours)", "keys/window",
              "E[min]", "DF (/min)");
  for (double hours : {2.0, 5.0, 10.0, 20.0}) {
    const core::DfEstimate est = core::compute_df(
        t, util::from_hours(hours), bloom::BloomParams{256, 4}, 50.0);
    std::printf("  %10.0f | %14.1f | %8.3f | %10.3f\n", hours,
                est.keys_per_window, est.expected_min_increment,
                est.df_per_minute);
  }
  return 0;
}
