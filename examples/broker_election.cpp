// Broker-election walkthrough (paper section V-B): replays a trace through
// the decentralized election and shows how the broker set evolves — the
// fraction over time, promotion/demotion counts, and the degree advantage
// of the final broker set over normal users.
#include <cstdio>
#include <vector>

#include "core/broker_allocation.h"
#include "trace/synthetic.h"

int main() {
  using namespace bsub;

  const trace::ContactTrace t =
      trace::generate_trace(trace::haggle_infocom06_config(2010));
  core::BrokerElection election(
      t.node_count(),
      {/*lower=*/3, /*upper=*/5, /*window=*/5 * util::kHour});

  std::printf("election on %s: thresholds (3, 5), window 5 h\n\n",
              t.name().c_str());
  std::printf("%10s | %8s | %10s | %10s\n", "hour", "brokers", "promotions",
              "demotions");

  util::Time next_report = 0;
  for (const trace::Contact& c : t.contacts()) {
    election.on_contact(c.a, c.b, c.start);
    if (c.start >= next_report) {
      std::printf("%10.0f | %7.1f%% | %10llu | %10llu\n",
                  util::to_hours(c.start), 100 * election.broker_fraction(),
                  static_cast<unsigned long long>(election.promotions()),
                  static_cast<unsigned long long>(election.demotions()));
      next_report = c.start + 6 * util::kHour;
    }
  }

  // Are the elected brokers actually the social hubs?
  const auto deg = t.degrees();
  double broker_deg = 0, user_deg = 0;
  std::size_t brokers = 0, users = 0;
  for (trace::NodeId n = 0; n < t.node_count(); ++n) {
    if (election.is_broker(n)) {
      broker_deg += static_cast<double>(deg[n]);
      ++brokers;
    } else {
      user_deg += static_cast<double>(deg[n]);
      ++users;
    }
  }
  std::printf("\nfinal: %zu brokers (%.0f%%), %zu users\n", brokers,
              100 * election.broker_fraction(), users);
  if (brokers > 0 && users > 0) {
    std::printf("mean trace degree: brokers %.1f vs users %.1f\n",
                broker_deg / static_cast<double>(brokers),
                user_deg / static_cast<double>(users));
  }
  std::printf("\nthe paper's (3, 5) thresholds keep roughly 30%% of nodes "
              "as brokers,\nbiased toward socially active (high-degree) "
              "nodes.\n");
  return 0;
}
