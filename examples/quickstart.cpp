// Quickstart: the Temporal Counting Bloom Filter in 60 lines.
//
// Builds genuine and relay filters, shows A-merge reinforcement, M-merge
// between brokers, decaying, and the preferential query that picks the
// better forwarder — the primitives everything else in B-SUB rests on.
#include <cstdio>

#include "bloom/tcbf.h"
#include "bloom/tcbf_codec.h"

int main() {
  using namespace bsub::bloom;

  // The paper's geometry: 256 bits, 4 hash functions, initial counter 50.
  const BloomParams params{256, 4};
  const double kC = 50.0;

  // A consumer's genuine filter holds its interests.
  Tcbf genuine(params, kC);
  genuine.insert("NewMoon");
  genuine.insert("WorldSeries");
  std::printf("genuine filter: %zu bits set, contains(NewMoon)=%d, "
              "contains(Yankees)=%d\n",
              genuine.popcount(), genuine.contains("NewMoon"),
              genuine.contains("Yankees"));

  // A broker absorbs the consumer's interests into its relay filter with an
  // additive merge; meeting the consumer again reinforces the counters.
  Tcbf relay_a(params, kC);
  relay_a.a_merge(genuine);
  relay_a.a_merge(genuine);  // second meeting
  std::printf("relay A after 2 meetings: min counter for NewMoon = %.0f\n",
              relay_a.min_counter("NewMoon").value_or(0.0));

  // Another broker met the consumer only once, longer ago.
  Tcbf relay_b(params, kC);
  relay_b.a_merge(genuine);
  relay_b.decay(30.0);  // 30 counter-units of elapsed decay
  std::printf("relay B (stale): min counter for NewMoon = %.0f\n",
              relay_b.min_counter("NewMoon").value_or(0.0));

  // The preferential query ranks forwarders: positive means the first
  // filter is the better custodian for this key.
  std::printf("preference(A over B, NewMoon) = %.0f  -> forward to A\n",
              preference(relay_a, relay_b, "NewMoon"));

  // Brokers combine each other's relay filters with the *maximum* merge so
  // that frequent broker meetings cannot inflate counters (bogus counters).
  relay_b.m_merge(relay_a);
  std::printf("relay B after M-merge: min counter = %.0f (max, not sum)\n",
              relay_b.min_counter("NewMoon").value_or(0.0));

  // Temporal deletion: without reinforcement, interests drain away.
  relay_b.decay(100.0);
  std::printf("relay B after heavy decay: contains(NewMoon)=%d\n",
              relay_b.contains("NewMoon"));

  // Wire format: dozens of bytes, not kilobytes (section VI-C).
  auto wire = encode_tcbf(relay_a, CounterEncoding::kFull);
  std::printf("relay A encodes to %zu bytes; round-trips: %d\n", wire.size(),
              decode_tcbf(wire).contains("NewMoon"));
  return 0;
}
