// Live protocol engine demo: five devices exchanging real wire frames.
//
// Unlike the trace-driven simulator (which models protocols as strategy
// objects), this drives actual BsubNode state machines through the byte-
// budgeted Network harness — every interest report, relay exchange, and
// message is an encoded, checksummed frame. This is the shape of the
// paper's future-work "prototype HUNET system".
#include <cstdio>

#include "engine/network.h"

int main() {
  using namespace bsub;
  using engine::ContentMessage;
  using util::from_minutes;
  using util::kHour;

  engine::NodeConfig cfg;
  cfg.df_per_minute = 0.2;  // relay routes live ~250 minutes per priming

  engine::Network net(cfg);
  auto& alice = net.add_node(1);    // produces concert updates
  auto& bob = net.add_node(2);      // broker (the socially active one)
  auto& carla = net.add_node(3);    // follows #NewMoon
  auto& daniel = net.add_node(4);   // follows #MichaelJackson
  auto& erin = net.add_node(5);     // broker

  bob.set_broker(true);
  erin.set_broker(true);
  carla.subscribe("NewMoon");
  daniel.subscribe("MichaelJackson");

  auto post = [&](engine::BsubNode& who, std::uint64_t id, const char* key,
                  double minute) {
    ContentMessage m;
    m.id = id;
    m.key = key;
    m.body.assign(120, 0x42);
    m.created = from_minutes(minute);
    m.ttl = 12 * kHour;
    who.publish(std::move(m), from_minutes(minute));
    std::printf("[%6.0f min] node %llu posts #%s (id %llu)\n", minute,
                static_cast<unsigned long long>(who.id()), key,
                static_cast<unsigned long long>(id));
  };

  auto meet = [&](engine::NodeId a, engine::NodeId b, double minute) {
    auto before = net.deliveries().size();
    engine::ContactReport r =
        net.contact(a, b, from_minutes(minute), 2 * from_minutes(1));
    std::printf("[%6.0f min] %llu <-> %llu: %zu frames, %llu bytes\n", minute,
                static_cast<unsigned long long>(a),
                static_cast<unsigned long long>(b), r.frames_delivered,
                static_cast<unsigned long long>(r.bytes_used));
    for (std::size_t i = before; i < net.deliveries().size(); ++i) {
      const auto& d = net.deliveries()[i];
      std::printf("             -> delivered #%s (id %llu) to node %llu\n",
                  d.key.c_str(), static_cast<unsigned long long>(d.message_id),
                  static_cast<unsigned long long>(d.consumer));
    }
  };

  std::printf("--- morning: subscriptions spread through the brokers ---\n");
  meet(3, 2, 10);   // Carla primes Bob with #NewMoon
  meet(4, 5, 20);   // Daniel primes Erin with #MichaelJackson
  meet(2, 5, 30);   // brokers merge relay filters
  meet(4, 5, 40);   // Daniel reinforces Erin: she is his closest broker

  std::printf("\n--- noon: Alice posts, brokers pick up ---\n");
  post(alice, 100, "NewMoon", 60);
  post(alice, 101, "MichaelJackson", 61);
  post(alice, 102, "openwebawards", 62);  // nobody follows this one
  meet(1, 2, 70);   // Bob picks up both subscribed topics (merged relay)

  std::printf("\n--- afternoon: brokers meet, messages chase interests ---\n");
  meet(2, 5, 120);  // preferential exchange Bob -> Erin where Erin is closer

  std::printf("\n--- evening: consumers collect their feeds ---\n");
  meet(2, 3, 200);  // Bob delivers #NewMoon to Carla
  meet(5, 4, 210);  // Erin delivers #MichaelJackson to Daniel

  std::printf("\ntotal deliveries: %zu (the #openwebawards post found no "
              "subscribers)\n",
              net.deliveries().size());
  std::printf("Bob's relay filter now holds %zu set bits; carried buffers: "
              "bob=%zu erin=%zu\n",
              net.node(2).relay_filter().popcount(),
              net.node(2).carried_count(), net.node(5).carried_count());
  return 0;
}
