// bsub_sim: a command-line experiment runner over the full library.
//
// Compose any scenario from the shell:
//
//   bsub_sim [--trace haggle|reality|FILE] [--protocol bsub|push|pull|spray]
//            [--ttl-min N] [--df X | --df auto | --df adaptive]
//            [--copies N] [--interests N] [--seed N] [--bandwidth BPS]
//            [--merge m|a] [--no-relay-gating]
//
// Prints a machine-greppable "key value" report. Examples:
//
//   bsub_sim --trace haggle --protocol bsub --ttl-min 600 --df auto
//   bsub_sim --trace reality --protocol push --ttl-min 120
//   bsub_sim --trace mytrace.txt --protocol spray --copies 5
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "core/bsub_protocol.h"
#include "core/df_tuning.h"
#include "routing/pull.h"
#include "routing/push.h"
#include "routing/spray.h"
#include "sim/simulator.h"
#include "trace/synthetic.h"
#include "trace/trace_io.h"
#include "workload/workload.h"

namespace {

using namespace bsub;

struct Options {
  std::string trace = "haggle";
  std::string protocol = "bsub";
  double ttl_min = 600;
  std::string df = "auto";  // number | "auto" | "adaptive"
  std::uint32_t copies = 3;
  std::uint32_t interests = 1;
  std::uint64_t seed = 2010;
  double bandwidth = sim::kDefaultBandwidthBytesPerSecond;
  core::BrokerMergeMode merge = core::BrokerMergeMode::kMMerge;
  bool relay_gating = true;
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--trace haggle|reality|FILE] [--protocol "
      "bsub|push|pull|spray]\n"
      "          [--ttl-min N] [--df X|auto|adaptive] [--copies N]\n"
      "          [--interests N] [--seed N] [--bandwidth BPS] [--merge m|a]\n"
      "          [--no-relay-gating]\n",
      argv0);
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        usage(argv[0]);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--trace")) {
      opt.trace = need("--trace");
    } else if (!std::strcmp(argv[i], "--protocol")) {
      opt.protocol = need("--protocol");
    } else if (!std::strcmp(argv[i], "--ttl-min")) {
      opt.ttl_min = std::atof(need("--ttl-min"));
    } else if (!std::strcmp(argv[i], "--df")) {
      opt.df = need("--df");
    } else if (!std::strcmp(argv[i], "--copies")) {
      opt.copies = static_cast<std::uint32_t>(std::atoi(need("--copies")));
    } else if (!std::strcmp(argv[i], "--interests")) {
      opt.interests =
          static_cast<std::uint32_t>(std::atoi(need("--interests")));
    } else if (!std::strcmp(argv[i], "--seed")) {
      opt.seed = static_cast<std::uint64_t>(std::atoll(need("--seed")));
    } else if (!std::strcmp(argv[i], "--bandwidth")) {
      opt.bandwidth = std::atof(need("--bandwidth"));
    } else if (!std::strcmp(argv[i], "--merge")) {
      const char* m = need("--merge");
      opt.merge = (m[0] == 'a') ? core::BrokerMergeMode::kAMerge
                                : core::BrokerMergeMode::kMMerge;
    } else if (!std::strcmp(argv[i], "--no-relay-gating")) {
      opt.relay_gating = false;
    } else if (!std::strcmp(argv[i], "--help")) {
      usage(argv[0]);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      usage(argv[0]);
    }
  }
  if (opt.ttl_min <= 0 || opt.copies == 0 || opt.interests == 0) {
    std::fprintf(stderr, "ttl-min, copies, and interests must be positive\n");
    usage(argv[0]);
  }
  return opt;
}

trace::ContactTrace load(const Options& opt) {
  if (opt.trace == "haggle") {
    return trace::generate_trace(trace::haggle_infocom06_config(opt.seed));
  }
  if (opt.trace == "reality") {
    return trace::generate_trace(trace::mit_reality_config(opt.seed));
  }
  return trace::load_trace(opt.trace);
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);

  trace::ContactTrace t;
  try {
    t = load(opt);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error loading trace: %s\n", e.what());
    return 1;
  }

  const workload::KeySet keys = workload::twitter_trend_keys();
  workload::WorkloadConfig wcfg;
  wcfg.ttl = util::from_minutes(opt.ttl_min);
  wcfg.interests_per_node = opt.interests;
  wcfg.seed = opt.seed + 1;
  const workload::Workload w(t, keys, wcfg);

  sim::SimulatorConfig scfg;
  scfg.bandwidth_bytes_per_second = opt.bandwidth;
  sim::Simulator sim(scfg);

  std::unique_ptr<sim::Protocol> protocol;
  core::BsubProtocol* bsub = nullptr;
  double df_used = 0.0;
  if (opt.protocol == "push") {
    protocol = std::make_unique<routing::PushProtocol>();
  } else if (opt.protocol == "pull") {
    protocol = std::make_unique<routing::PullProtocol>();
  } else if (opt.protocol == "spray") {
    protocol = std::make_unique<routing::SprayProtocol>(opt.copies);
  } else if (opt.protocol == "bsub") {
    core::BsubConfig cfg;
    cfg.copy_limit = opt.copies;
    cfg.broker_merge = opt.merge;
    cfg.relay_gated_delivery = opt.relay_gating;
    if (opt.df == "auto") {
      cfg.df_per_minute = core::compute_df(t, wcfg.ttl, cfg.filter_params,
                                           cfg.initial_counter)
                              .df_per_minute;
    } else if (opt.df == "adaptive") {
      cfg.adaptive_df = true;
      cfg.df_window = wcfg.ttl;
    } else {
      cfg.df_per_minute = std::atof(opt.df.c_str());
    }
    df_used = cfg.df_per_minute;
    auto owned = std::make_unique<core::BsubProtocol>(cfg);
    bsub = owned.get();
    protocol = std::move(owned);
  } else {
    std::fprintf(stderr, "unknown protocol: %s\n", opt.protocol.c_str());
    return 2;
  }

  const metrics::RunResults r = sim.run(t, w, *protocol);

  std::printf("trace                 %s\n", t.name().c_str());
  std::printf("protocol              %s\n", protocol->name());
  std::printf("nodes                 %zu\n", t.node_count());
  std::printf("contacts              %zu\n", t.contacts().size());
  std::printf("messages              %llu\n",
              static_cast<unsigned long long>(r.messages_created));
  std::printf("ttl_minutes           %.0f\n", opt.ttl_min);
  if (bsub != nullptr) {
    std::printf("df_per_minute         %s\n",
                opt.df == "adaptive" ? "adaptive"
                                     : std::to_string(df_used).c_str());
  }
  std::printf("delivery_ratio        %.4f\n", r.delivery_ratio);
  std::printf("mean_delay_minutes    %.1f\n", r.mean_delay_minutes);
  std::printf("median_delay_minutes  %.1f\n", r.median_delay_minutes);
  std::printf("forwardings           %llu\n",
              static_cast<unsigned long long>(r.forwardings));
  std::printf("forwardings_per_deliv %.2f\n", r.forwardings_per_delivery);
  std::printf("false_positive_rate   %.4f\n", r.false_positive_rate);
  std::printf("message_bytes         %llu\n",
              static_cast<unsigned long long>(r.message_bytes));
  std::printf("control_bytes         %llu\n",
              static_cast<unsigned long long>(r.control_bytes));
  if (bsub != nullptr) {
    std::printf("brokers               %zu\n",
                bsub->election().broker_count());
    std::printf("relay_fpr             %.4f\n", bsub->measured_relay_fpr());
    std::printf("false_injections      %llu\n",
                static_cast<unsigned long long>(bsub->false_injections()));
  }
  return 0;
}
