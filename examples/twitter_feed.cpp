// The paper's motivating scenario (section I): a Twitter-like social feed
// over a human network. People carry phones, subscribe to one trending
// topic each, and posts spread via store-carry-forward through B-SUB's
// elected brokers — no infrastructure involved.
//
// Runs the full stack on a conference-sized synthetic trace and prints a
// per-topic digest of what got delivered, plus the protocol economics.
#include <cstdio>
#include <map>
#include <vector>

#include "core/bsub_protocol.h"
#include "core/df_tuning.h"
#include "sim/simulator.h"
#include "trace/synthetic.h"
#include "workload/workload.h"

int main() {
  using namespace bsub;

  // A two-day gathering of 50 people.
  trace::SyntheticTraceConfig tcfg;
  tcfg.name = "meetup";
  tcfg.node_count = 50;
  tcfg.contact_count = 20000;
  tcfg.duration = 2 * util::kDay;
  tcfg.seed = 7;
  const trace::ContactTrace t = trace::generate_trace(tcfg);

  const workload::KeySet keys = workload::twitter_trend_keys();
  workload::WorkloadConfig wcfg;
  wcfg.ttl = 10 * util::kHour;  // a post is stale after 10 hours
  const workload::Workload w(t, keys, wcfg);

  std::printf("scenario: %zu people, %zu contacts over %.0f h\n",
              t.node_count(), t.contacts().size(),
              util::to_hours(t.end_time() - t.start_time()));
  std::printf("%zu posts produced; %llu (post, follower) deliveries "
              "possible\n\n",
              w.messages().size(),
              static_cast<unsigned long long>(w.expected_deliveries()));

  core::BsubConfig cfg;
  cfg.df_per_minute =
      core::compute_df(t, wcfg.ttl, cfg.filter_params, cfg.initial_counter)
          .df_per_minute;
  core::BsubProtocol bsub(cfg);
  sim::Simulator sim;
  const metrics::RunResults r = sim.run(t, w, bsub);

  // Per-topic digest.
  std::map<workload::KeyId, std::size_t> followers, posts;
  for (trace::NodeId n = 0; n < t.node_count(); ++n) {
    ++followers[w.interest_of(n)];
  }
  for (const auto& m : w.messages()) ++posts[m.key];
  std::printf("top topics (followers / posts):\n");
  for (workload::KeyId k = 0; k < 6; ++k) {
    std::printf("  #%-16s %2zu followers, %4zu posts\n",
                keys.name(k).c_str(), followers[k], posts[k]);
  }

  std::printf("\nfeed outcome with B-SUB (DF = %.3f/min from Eq. 5):\n",
              cfg.df_per_minute);
  std::printf("  delivery ratio:        %.1f%%\n", 100 * r.delivery_ratio);
  std::printf("  median delivery delay: %.0f minutes\n",
              r.median_delay_minutes);
  std::printf("  forwardings/delivery:  %.2f\n", r.forwardings_per_delivery);
  std::printf("  brokers elected:       %zu of %zu (%.0f%%)\n",
              bsub.election().broker_count(), t.node_count(),
              100 * bsub.election().broker_fraction());
  std::printf("  bytes moved:           %llu message + %llu control\n",
              static_cast<unsigned long long>(r.message_bytes),
              static_cast<unsigned long long>(r.control_bytes));
  const auto& traffic = bsub.traffic();
  std::printf("  traffic breakdown:     %llu pickups, %llu broker moves, "
              "%llu deliveries\n",
              static_cast<unsigned long long>(traffic.pickups),
              static_cast<unsigned long long>(traffic.broker_transfers),
              static_cast<unsigned long long>(traffic.deliveries));
  return 0;
}
