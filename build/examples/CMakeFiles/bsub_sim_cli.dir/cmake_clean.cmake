file(REMOVE_RECURSE
  "CMakeFiles/bsub_sim_cli.dir/bsub_sim_cli.cpp.o"
  "CMakeFiles/bsub_sim_cli.dir/bsub_sim_cli.cpp.o.d"
  "bsub_sim_cli"
  "bsub_sim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsub_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
