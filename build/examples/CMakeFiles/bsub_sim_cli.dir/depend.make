# Empty dependencies file for bsub_sim_cli.
# This may be replaced when dependencies are built.
