
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/broker_election.cpp" "examples/CMakeFiles/broker_election.dir/broker_election.cpp.o" "gcc" "examples/CMakeFiles/broker_election.dir/broker_election.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bsub_core.dir/DependInfo.cmake"
  "/root/repo/build/src/bloom/CMakeFiles/bsub_bloom.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bsub_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/bsub_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/bsub_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/bsub_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bsub_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
