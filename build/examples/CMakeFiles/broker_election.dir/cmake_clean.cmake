file(REMOVE_RECURSE
  "CMakeFiles/broker_election.dir/broker_election.cpp.o"
  "CMakeFiles/broker_election.dir/broker_election.cpp.o.d"
  "broker_election"
  "broker_election.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/broker_election.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
