# Empty compiler generated dependencies file for broker_election.
# This may be replaced when dependencies are built.
