file(REMOVE_RECURSE
  "CMakeFiles/live_mesh.dir/live_mesh.cpp.o"
  "CMakeFiles/live_mesh.dir/live_mesh.cpp.o.d"
  "live_mesh"
  "live_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
