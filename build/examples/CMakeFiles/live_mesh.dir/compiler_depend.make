# Empty compiler generated dependencies file for live_mesh.
# This may be replaced when dependencies are built.
