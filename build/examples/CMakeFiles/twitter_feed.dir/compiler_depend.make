# Empty compiler generated dependencies file for twitter_feed.
# This may be replaced when dependencies are built.
