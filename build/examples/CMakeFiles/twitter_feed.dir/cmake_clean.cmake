file(REMOVE_RECURSE
  "CMakeFiles/twitter_feed.dir/twitter_feed.cpp.o"
  "CMakeFiles/twitter_feed.dir/twitter_feed.cpp.o.d"
  "twitter_feed"
  "twitter_feed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twitter_feed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
