# Empty compiler generated dependencies file for df_tuning_test.
# This may be replaced when dependencies are built.
