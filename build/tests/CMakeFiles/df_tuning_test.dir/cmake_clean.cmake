file(REMOVE_RECURSE
  "CMakeFiles/df_tuning_test.dir/core/df_tuning_test.cpp.o"
  "CMakeFiles/df_tuning_test.dir/core/df_tuning_test.cpp.o.d"
  "df_tuning_test"
  "df_tuning_test.pdb"
  "df_tuning_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/df_tuning_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
