file(REMOVE_RECURSE
  "CMakeFiles/tcbf_saturation_test.dir/bloom/tcbf_saturation_test.cpp.o"
  "CMakeFiles/tcbf_saturation_test.dir/bloom/tcbf_saturation_test.cpp.o.d"
  "tcbf_saturation_test"
  "tcbf_saturation_test.pdb"
  "tcbf_saturation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcbf_saturation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
