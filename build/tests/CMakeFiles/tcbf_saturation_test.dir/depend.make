# Empty dependencies file for tcbf_saturation_test.
# This may be replaced when dependencies are built.
