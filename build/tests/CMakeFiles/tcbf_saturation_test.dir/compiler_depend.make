# Empty compiler generated dependencies file for tcbf_saturation_test.
# This may be replaced when dependencies are built.
