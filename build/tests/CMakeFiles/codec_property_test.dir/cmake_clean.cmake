file(REMOVE_RECURSE
  "CMakeFiles/codec_property_test.dir/bloom/codec_property_test.cpp.o"
  "CMakeFiles/codec_property_test.dir/bloom/codec_property_test.cpp.o.d"
  "codec_property_test"
  "codec_property_test.pdb"
  "codec_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codec_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
