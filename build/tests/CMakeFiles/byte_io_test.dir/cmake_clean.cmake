file(REMOVE_RECURSE
  "CMakeFiles/byte_io_test.dir/util/byte_io_test.cpp.o"
  "CMakeFiles/byte_io_test.dir/util/byte_io_test.cpp.o.d"
  "byte_io_test"
  "byte_io_test.pdb"
  "byte_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/byte_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
