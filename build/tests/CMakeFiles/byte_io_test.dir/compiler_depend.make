# Empty compiler generated dependencies file for byte_io_test.
# This may be replaced when dependencies are built.
