# Empty compiler generated dependencies file for bsub_gating_test.
# This may be replaced when dependencies are built.
