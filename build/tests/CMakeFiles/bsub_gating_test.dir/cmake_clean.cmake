file(REMOVE_RECURSE
  "CMakeFiles/bsub_gating_test.dir/core/bsub_gating_test.cpp.o"
  "CMakeFiles/bsub_gating_test.dir/core/bsub_gating_test.cpp.o.d"
  "bsub_gating_test"
  "bsub_gating_test.pdb"
  "bsub_gating_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsub_gating_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
