file(REMOVE_RECURSE
  "CMakeFiles/trace_runner_test.dir/engine/trace_runner_test.cpp.o"
  "CMakeFiles/trace_runner_test.dir/engine/trace_runner_test.cpp.o.d"
  "trace_runner_test"
  "trace_runner_test.pdb"
  "trace_runner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_runner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
