# Empty compiler generated dependencies file for trace_runner_test.
# This may be replaced when dependencies are built.
