file(REMOVE_RECURSE
  "CMakeFiles/node_network_test.dir/engine/node_network_test.cpp.o"
  "CMakeFiles/node_network_test.dir/engine/node_network_test.cpp.o.d"
  "node_network_test"
  "node_network_test.pdb"
  "node_network_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/node_network_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
