# Empty dependencies file for node_network_test.
# This may be replaced when dependencies are built.
