# Empty dependencies file for tcbf_codec_test.
# This may be replaced when dependencies are built.
