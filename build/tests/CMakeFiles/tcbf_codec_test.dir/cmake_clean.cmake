file(REMOVE_RECURSE
  "CMakeFiles/tcbf_codec_test.dir/bloom/tcbf_codec_test.cpp.o"
  "CMakeFiles/tcbf_codec_test.dir/bloom/tcbf_codec_test.cpp.o.d"
  "tcbf_codec_test"
  "tcbf_codec_test.pdb"
  "tcbf_codec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcbf_codec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
