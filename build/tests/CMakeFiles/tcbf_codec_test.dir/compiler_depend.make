# Empty compiler generated dependencies file for tcbf_codec_test.
# This may be replaced when dependencies are built.
