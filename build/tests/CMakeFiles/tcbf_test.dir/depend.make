# Empty dependencies file for tcbf_test.
# This may be replaced when dependencies are built.
