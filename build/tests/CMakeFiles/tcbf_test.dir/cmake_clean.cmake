file(REMOVE_RECURSE
  "CMakeFiles/tcbf_test.dir/bloom/tcbf_test.cpp.o"
  "CMakeFiles/tcbf_test.dir/bloom/tcbf_test.cpp.o.d"
  "tcbf_test"
  "tcbf_test.pdb"
  "tcbf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcbf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
