file(REMOVE_RECURSE
  "CMakeFiles/protocol_comparison_test.dir/integration/protocol_comparison_test.cpp.o"
  "CMakeFiles/protocol_comparison_test.dir/integration/protocol_comparison_test.cpp.o.d"
  "protocol_comparison_test"
  "protocol_comparison_test.pdb"
  "protocol_comparison_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_comparison_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
