# Empty dependencies file for protocol_comparison_test.
# This may be replaced when dependencies are built.
