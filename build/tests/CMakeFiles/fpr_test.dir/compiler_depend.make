# Empty compiler generated dependencies file for fpr_test.
# This may be replaced when dependencies are built.
