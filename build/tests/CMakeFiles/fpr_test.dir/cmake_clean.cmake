file(REMOVE_RECURSE
  "CMakeFiles/fpr_test.dir/bloom/fpr_test.cpp.o"
  "CMakeFiles/fpr_test.dir/bloom/fpr_test.cpp.o.d"
  "fpr_test"
  "fpr_test.pdb"
  "fpr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
