file(REMOVE_RECURSE
  "CMakeFiles/pull_test.dir/routing/pull_test.cpp.o"
  "CMakeFiles/pull_test.dir/routing/pull_test.cpp.o.d"
  "pull_test"
  "pull_test.pdb"
  "pull_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pull_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
