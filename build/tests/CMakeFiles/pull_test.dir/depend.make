# Empty dependencies file for pull_test.
# This may be replaced when dependencies are built.
