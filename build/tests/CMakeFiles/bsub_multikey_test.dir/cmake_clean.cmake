file(REMOVE_RECURSE
  "CMakeFiles/bsub_multikey_test.dir/core/bsub_multikey_test.cpp.o"
  "CMakeFiles/bsub_multikey_test.dir/core/bsub_multikey_test.cpp.o.d"
  "bsub_multikey_test"
  "bsub_multikey_test.pdb"
  "bsub_multikey_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsub_multikey_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
