# Empty compiler generated dependencies file for bsub_multikey_test.
# This may be replaced when dependencies are built.
