file(REMOVE_RECURSE
  "CMakeFiles/message_store_test.dir/sim/message_store_test.cpp.o"
  "CMakeFiles/message_store_test.dir/sim/message_store_test.cpp.o.d"
  "message_store_test"
  "message_store_test.pdb"
  "message_store_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/message_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
