# Empty dependencies file for message_store_test.
# This may be replaced when dependencies are built.
