file(REMOVE_RECURSE
  "CMakeFiles/interest_manager_test.dir/core/interest_manager_test.cpp.o"
  "CMakeFiles/interest_manager_test.dir/core/interest_manager_test.cpp.o.d"
  "interest_manager_test"
  "interest_manager_test.pdb"
  "interest_manager_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interest_manager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
