# Empty dependencies file for interest_manager_test.
# This may be replaced when dependencies are built.
