# Empty compiler generated dependencies file for broker_allocation_test.
# This may be replaced when dependencies are built.
