file(REMOVE_RECURSE
  "CMakeFiles/broker_allocation_test.dir/core/broker_allocation_test.cpp.o"
  "CMakeFiles/broker_allocation_test.dir/core/broker_allocation_test.cpp.o.d"
  "broker_allocation_test"
  "broker_allocation_test.pdb"
  "broker_allocation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/broker_allocation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
