file(REMOVE_RECURSE
  "CMakeFiles/bsub_protocol_test.dir/core/bsub_protocol_test.cpp.o"
  "CMakeFiles/bsub_protocol_test.dir/core/bsub_protocol_test.cpp.o.d"
  "bsub_protocol_test"
  "bsub_protocol_test.pdb"
  "bsub_protocol_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsub_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
