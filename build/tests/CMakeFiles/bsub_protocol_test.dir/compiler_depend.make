# Empty compiler generated dependencies file for bsub_protocol_test.
# This may be replaced when dependencies are built.
