# Empty dependencies file for engine_overhead.
# This may be replaced when dependencies are built.
