file(REMOVE_RECURSE
  "CMakeFiles/engine_overhead.dir/engine_overhead.cpp.o"
  "CMakeFiles/engine_overhead.dir/engine_overhead.cpp.o.d"
  "engine_overhead"
  "engine_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
