file(REMOVE_RECURSE
  "CMakeFiles/ablation_copies.dir/ablation_copies.cpp.o"
  "CMakeFiles/ablation_copies.dir/ablation_copies.cpp.o.d"
  "ablation_copies"
  "ablation_copies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_copies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
