# Empty compiler generated dependencies file for ablation_copies.
# This may be replaced when dependencies are built.
