# Empty compiler generated dependencies file for fpr_theory.
# This may be replaced when dependencies are built.
