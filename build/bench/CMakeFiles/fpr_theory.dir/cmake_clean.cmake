file(REMOVE_RECURSE
  "CMakeFiles/fpr_theory.dir/fpr_theory.cpp.o"
  "CMakeFiles/fpr_theory.dir/fpr_theory.cpp.o.d"
  "fpr_theory"
  "fpr_theory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpr_theory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
