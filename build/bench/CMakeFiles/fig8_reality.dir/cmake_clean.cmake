file(REMOVE_RECURSE
  "CMakeFiles/fig8_reality.dir/fig8_reality.cpp.o"
  "CMakeFiles/fig8_reality.dir/fig8_reality.cpp.o.d"
  "fig8_reality"
  "fig8_reality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_reality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
