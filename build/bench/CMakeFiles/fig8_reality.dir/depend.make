# Empty dependencies file for fig8_reality.
# This may be replaced when dependencies are built.
