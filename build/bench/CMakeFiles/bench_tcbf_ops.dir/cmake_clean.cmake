file(REMOVE_RECURSE
  "CMakeFiles/bench_tcbf_ops.dir/bench_tcbf_ops.cpp.o"
  "CMakeFiles/bench_tcbf_ops.dir/bench_tcbf_ops.cpp.o.d"
  "bench_tcbf_ops"
  "bench_tcbf_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tcbf_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
