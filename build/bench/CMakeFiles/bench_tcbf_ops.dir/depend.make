# Empty dependencies file for bench_tcbf_ops.
# This may be replaced when dependencies are built.
