file(REMOVE_RECURSE
  "CMakeFiles/ablation_adaptive_df.dir/ablation_adaptive_df.cpp.o"
  "CMakeFiles/ablation_adaptive_df.dir/ablation_adaptive_df.cpp.o.d"
  "ablation_adaptive_df"
  "ablation_adaptive_df.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_adaptive_df.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
