# Empty compiler generated dependencies file for ablation_adaptive_df.
# This may be replaced when dependencies are built.
