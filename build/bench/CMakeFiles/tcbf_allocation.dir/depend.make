# Empty dependencies file for tcbf_allocation.
# This may be replaced when dependencies are built.
