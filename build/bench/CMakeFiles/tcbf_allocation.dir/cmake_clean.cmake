file(REMOVE_RECURSE
  "CMakeFiles/tcbf_allocation.dir/tcbf_allocation.cpp.o"
  "CMakeFiles/tcbf_allocation.dir/tcbf_allocation.cpp.o.d"
  "tcbf_allocation"
  "tcbf_allocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcbf_allocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
