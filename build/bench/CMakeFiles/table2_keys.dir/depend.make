# Empty dependencies file for table2_keys.
# This may be replaced when dependencies are built.
