file(REMOVE_RECURSE
  "CMakeFiles/table2_keys.dir/table2_keys.cpp.o"
  "CMakeFiles/table2_keys.dir/table2_keys.cpp.o.d"
  "table2_keys"
  "table2_keys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_keys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
