file(REMOVE_RECURSE
  "CMakeFiles/ablation_multikey.dir/ablation_multikey.cpp.o"
  "CMakeFiles/ablation_multikey.dir/ablation_multikey.cpp.o.d"
  "ablation_multikey"
  "ablation_multikey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_multikey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
