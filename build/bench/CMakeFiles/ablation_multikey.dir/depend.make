# Empty dependencies file for ablation_multikey.
# This may be replaced when dependencies are built.
