# Empty dependencies file for fig7_haggle.
# This may be replaced when dependencies are built.
