file(REMOVE_RECURSE
  "CMakeFiles/fig7_haggle.dir/fig7_haggle.cpp.o"
  "CMakeFiles/fig7_haggle.dir/fig7_haggle.cpp.o.d"
  "fig7_haggle"
  "fig7_haggle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_haggle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
