# Empty dependencies file for fig9_df_sweep.
# This may be replaced when dependencies are built.
