file(REMOVE_RECURSE
  "CMakeFiles/memory_comparison.dir/memory_comparison.cpp.o"
  "CMakeFiles/memory_comparison.dir/memory_comparison.cpp.o.d"
  "memory_comparison"
  "memory_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
