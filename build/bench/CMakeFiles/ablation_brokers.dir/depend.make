# Empty dependencies file for ablation_brokers.
# This may be replaced when dependencies are built.
