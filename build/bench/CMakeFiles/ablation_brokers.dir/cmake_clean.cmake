file(REMOVE_RECURSE
  "CMakeFiles/ablation_brokers.dir/ablation_brokers.cpp.o"
  "CMakeFiles/ablation_brokers.dir/ablation_brokers.cpp.o.d"
  "ablation_brokers"
  "ablation_brokers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_brokers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
