file(REMOVE_RECURSE
  "CMakeFiles/bsub_trace.dir/analysis.cpp.o"
  "CMakeFiles/bsub_trace.dir/analysis.cpp.o.d"
  "CMakeFiles/bsub_trace.dir/centrality.cpp.o"
  "CMakeFiles/bsub_trace.dir/centrality.cpp.o.d"
  "CMakeFiles/bsub_trace.dir/synthetic.cpp.o"
  "CMakeFiles/bsub_trace.dir/synthetic.cpp.o.d"
  "CMakeFiles/bsub_trace.dir/trace.cpp.o"
  "CMakeFiles/bsub_trace.dir/trace.cpp.o.d"
  "CMakeFiles/bsub_trace.dir/trace_io.cpp.o"
  "CMakeFiles/bsub_trace.dir/trace_io.cpp.o.d"
  "libbsub_trace.a"
  "libbsub_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsub_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
