# Empty compiler generated dependencies file for bsub_trace.
# This may be replaced when dependencies are built.
