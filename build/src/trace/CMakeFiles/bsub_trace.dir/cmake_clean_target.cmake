file(REMOVE_RECURSE
  "libbsub_trace.a"
)
