file(REMOVE_RECURSE
  "libbsub_core.a"
)
