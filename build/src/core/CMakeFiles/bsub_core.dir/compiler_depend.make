# Empty compiler generated dependencies file for bsub_core.
# This may be replaced when dependencies are built.
