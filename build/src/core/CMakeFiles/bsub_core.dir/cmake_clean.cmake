file(REMOVE_RECURSE
  "CMakeFiles/bsub_core.dir/broker_allocation.cpp.o"
  "CMakeFiles/bsub_core.dir/broker_allocation.cpp.o.d"
  "CMakeFiles/bsub_core.dir/bsub_protocol.cpp.o"
  "CMakeFiles/bsub_core.dir/bsub_protocol.cpp.o.d"
  "CMakeFiles/bsub_core.dir/df_tuning.cpp.o"
  "CMakeFiles/bsub_core.dir/df_tuning.cpp.o.d"
  "CMakeFiles/bsub_core.dir/interest_manager.cpp.o"
  "CMakeFiles/bsub_core.dir/interest_manager.cpp.o.d"
  "libbsub_core.a"
  "libbsub_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsub_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
