file(REMOVE_RECURSE
  "libbsub_bloom.a"
)
