
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bloom/allocation.cpp" "src/bloom/CMakeFiles/bsub_bloom.dir/allocation.cpp.o" "gcc" "src/bloom/CMakeFiles/bsub_bloom.dir/allocation.cpp.o.d"
  "/root/repo/src/bloom/bloom_filter.cpp" "src/bloom/CMakeFiles/bsub_bloom.dir/bloom_filter.cpp.o" "gcc" "src/bloom/CMakeFiles/bsub_bloom.dir/bloom_filter.cpp.o.d"
  "/root/repo/src/bloom/counting_bloom_filter.cpp" "src/bloom/CMakeFiles/bsub_bloom.dir/counting_bloom_filter.cpp.o" "gcc" "src/bloom/CMakeFiles/bsub_bloom.dir/counting_bloom_filter.cpp.o.d"
  "/root/repo/src/bloom/fpr.cpp" "src/bloom/CMakeFiles/bsub_bloom.dir/fpr.cpp.o" "gcc" "src/bloom/CMakeFiles/bsub_bloom.dir/fpr.cpp.o.d"
  "/root/repo/src/bloom/tcbf.cpp" "src/bloom/CMakeFiles/bsub_bloom.dir/tcbf.cpp.o" "gcc" "src/bloom/CMakeFiles/bsub_bloom.dir/tcbf.cpp.o.d"
  "/root/repo/src/bloom/tcbf_codec.cpp" "src/bloom/CMakeFiles/bsub_bloom.dir/tcbf_codec.cpp.o" "gcc" "src/bloom/CMakeFiles/bsub_bloom.dir/tcbf_codec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bsub_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
