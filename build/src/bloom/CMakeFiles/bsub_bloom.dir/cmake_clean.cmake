file(REMOVE_RECURSE
  "CMakeFiles/bsub_bloom.dir/allocation.cpp.o"
  "CMakeFiles/bsub_bloom.dir/allocation.cpp.o.d"
  "CMakeFiles/bsub_bloom.dir/bloom_filter.cpp.o"
  "CMakeFiles/bsub_bloom.dir/bloom_filter.cpp.o.d"
  "CMakeFiles/bsub_bloom.dir/counting_bloom_filter.cpp.o"
  "CMakeFiles/bsub_bloom.dir/counting_bloom_filter.cpp.o.d"
  "CMakeFiles/bsub_bloom.dir/fpr.cpp.o"
  "CMakeFiles/bsub_bloom.dir/fpr.cpp.o.d"
  "CMakeFiles/bsub_bloom.dir/tcbf.cpp.o"
  "CMakeFiles/bsub_bloom.dir/tcbf.cpp.o.d"
  "CMakeFiles/bsub_bloom.dir/tcbf_codec.cpp.o"
  "CMakeFiles/bsub_bloom.dir/tcbf_codec.cpp.o.d"
  "libbsub_bloom.a"
  "libbsub_bloom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsub_bloom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
