# Empty dependencies file for bsub_bloom.
# This may be replaced when dependencies are built.
