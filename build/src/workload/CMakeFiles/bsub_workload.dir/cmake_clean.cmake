file(REMOVE_RECURSE
  "CMakeFiles/bsub_workload.dir/keys.cpp.o"
  "CMakeFiles/bsub_workload.dir/keys.cpp.o.d"
  "CMakeFiles/bsub_workload.dir/workload.cpp.o"
  "CMakeFiles/bsub_workload.dir/workload.cpp.o.d"
  "libbsub_workload.a"
  "libbsub_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsub_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
