# Empty dependencies file for bsub_workload.
# This may be replaced when dependencies are built.
