file(REMOVE_RECURSE
  "libbsub_workload.a"
)
