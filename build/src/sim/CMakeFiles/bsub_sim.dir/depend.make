# Empty dependencies file for bsub_sim.
# This may be replaced when dependencies are built.
