file(REMOVE_RECURSE
  "CMakeFiles/bsub_sim.dir/simulator.cpp.o"
  "CMakeFiles/bsub_sim.dir/simulator.cpp.o.d"
  "libbsub_sim.a"
  "libbsub_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsub_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
