file(REMOVE_RECURSE
  "libbsub_sim.a"
)
