file(REMOVE_RECURSE
  "libbsub_metrics.a"
)
