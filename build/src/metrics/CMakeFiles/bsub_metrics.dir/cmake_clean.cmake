file(REMOVE_RECURSE
  "CMakeFiles/bsub_metrics.dir/collector.cpp.o"
  "CMakeFiles/bsub_metrics.dir/collector.cpp.o.d"
  "libbsub_metrics.a"
  "libbsub_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsub_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
