# Empty compiler generated dependencies file for bsub_metrics.
# This may be replaced when dependencies are built.
