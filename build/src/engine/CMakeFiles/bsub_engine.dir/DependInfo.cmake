
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/network.cpp" "src/engine/CMakeFiles/bsub_engine.dir/network.cpp.o" "gcc" "src/engine/CMakeFiles/bsub_engine.dir/network.cpp.o.d"
  "/root/repo/src/engine/node.cpp" "src/engine/CMakeFiles/bsub_engine.dir/node.cpp.o" "gcc" "src/engine/CMakeFiles/bsub_engine.dir/node.cpp.o.d"
  "/root/repo/src/engine/trace_runner.cpp" "src/engine/CMakeFiles/bsub_engine.dir/trace_runner.cpp.o" "gcc" "src/engine/CMakeFiles/bsub_engine.dir/trace_runner.cpp.o.d"
  "/root/repo/src/engine/wire.cpp" "src/engine/CMakeFiles/bsub_engine.dir/wire.cpp.o" "gcc" "src/engine/CMakeFiles/bsub_engine.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bsub_util.dir/DependInfo.cmake"
  "/root/repo/build/src/bloom/CMakeFiles/bsub_bloom.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/bsub_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bsub_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/bsub_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/bsub_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/bsub_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
