file(REMOVE_RECURSE
  "CMakeFiles/bsub_engine.dir/network.cpp.o"
  "CMakeFiles/bsub_engine.dir/network.cpp.o.d"
  "CMakeFiles/bsub_engine.dir/node.cpp.o"
  "CMakeFiles/bsub_engine.dir/node.cpp.o.d"
  "CMakeFiles/bsub_engine.dir/trace_runner.cpp.o"
  "CMakeFiles/bsub_engine.dir/trace_runner.cpp.o.d"
  "CMakeFiles/bsub_engine.dir/wire.cpp.o"
  "CMakeFiles/bsub_engine.dir/wire.cpp.o.d"
  "libbsub_engine.a"
  "libbsub_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsub_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
