file(REMOVE_RECURSE
  "libbsub_engine.a"
)
