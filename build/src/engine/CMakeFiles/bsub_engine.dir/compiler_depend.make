# Empty compiler generated dependencies file for bsub_engine.
# This may be replaced when dependencies are built.
