# Empty compiler generated dependencies file for bsub_util.
# This may be replaced when dependencies are built.
