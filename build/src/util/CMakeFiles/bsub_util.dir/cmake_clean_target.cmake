file(REMOVE_RECURSE
  "libbsub_util.a"
)
