file(REMOVE_RECURSE
  "CMakeFiles/bsub_util.dir/binomial.cpp.o"
  "CMakeFiles/bsub_util.dir/binomial.cpp.o.d"
  "CMakeFiles/bsub_util.dir/byte_io.cpp.o"
  "CMakeFiles/bsub_util.dir/byte_io.cpp.o.d"
  "CMakeFiles/bsub_util.dir/hash.cpp.o"
  "CMakeFiles/bsub_util.dir/hash.cpp.o.d"
  "CMakeFiles/bsub_util.dir/logging.cpp.o"
  "CMakeFiles/bsub_util.dir/logging.cpp.o.d"
  "CMakeFiles/bsub_util.dir/rng.cpp.o"
  "CMakeFiles/bsub_util.dir/rng.cpp.o.d"
  "CMakeFiles/bsub_util.dir/stats.cpp.o"
  "CMakeFiles/bsub_util.dir/stats.cpp.o.d"
  "libbsub_util.a"
  "libbsub_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsub_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
