# Empty compiler generated dependencies file for bsub_routing.
# This may be replaced when dependencies are built.
