file(REMOVE_RECURSE
  "libbsub_routing.a"
)
