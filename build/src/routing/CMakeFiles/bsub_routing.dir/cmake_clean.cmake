file(REMOVE_RECURSE
  "CMakeFiles/bsub_routing.dir/pull.cpp.o"
  "CMakeFiles/bsub_routing.dir/pull.cpp.o.d"
  "CMakeFiles/bsub_routing.dir/push.cpp.o"
  "CMakeFiles/bsub_routing.dir/push.cpp.o.d"
  "CMakeFiles/bsub_routing.dir/spray.cpp.o"
  "CMakeFiles/bsub_routing.dir/spray.cpp.o.d"
  "libbsub_routing.a"
  "libbsub_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsub_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
