// Ablation: broker-election thresholds (paper section V-B). Sweeps the
// (B_l, B_u) pair and reports the emergent broker fraction plus the
// delivery/overhead consequences; the paper's 3/5 setting maintains about
// 30% brokers.
#include "experiment_common.h"

int main() {
  using namespace bsub::bench;
  using namespace bsub;
  print_header("Ablation — broker-election thresholds (section V-B)");

  const Scenario scenario = haggle_scenario();
  const util::Time ttl = 10 * util::kHour;
  const workload::Workload w = scenario.make_workload(ttl);

  struct Setting {
    std::uint32_t lower, upper;
  };
  const Setting settings[] = {{1, 2}, {2, 3}, {3, 5}, {5, 8}, {8, 12}};

  std::printf("trace: %s, TTL = 10 h, window W = 5 h\n\n",
              scenario.trace.name().c_str());
  std::printf("%9s | %8s | %8s | %10s | %9s\n", "(Bl, Bu)", "brokers",
              "delivery", "delay(min)", "fwd/deliv");
  for (const Setting& s : settings) {
    core::BsubConfig cfg = bsub_config_for(scenario, ttl);
    cfg.broker_lower = s.lower;
    cfg.broker_upper = s.upper;
    core::BsubProtocol proto(cfg);
    const auto r = sim::Simulator().run(scenario.trace, w, proto);
    std::printf("%4u, %-4u | %7.1f%% | %8.3f | %10.1f | %9.2f\n", s.lower,
                s.upper, 100.0 * proto.election().broker_fraction(),
                r.delivery_ratio, r.mean_delay_minutes,
                r.forwardings_per_delivery);
  }
  std::printf(
      "\nExpected: higher thresholds sustain more brokers — better delivery "
      "at more\noverhead; the paper's (3,5) keeps roughly a third of the "
      "nodes as brokers.\n");
  return 0;
}
