// Ablation: the copy limit C (paper section V-D fixes it at 3). Sweeps the
// number of broker replicas a producer may spawn per message and reports
// the delivery/overhead trade-off, plus the SPRAY baseline at the same
// budget (interest-oblivious placement) to isolate what TCBF-guided pickup
// buys.
#include "experiment_common.h"

#include "routing/spray.h"

int main() {
  using namespace bsub::bench;
  using namespace bsub;
  print_header("Ablation — copy limit C (section V-D)");

  const Scenario scenario = haggle_scenario();
  const util::Time ttl = 10 * util::kHour;
  const workload::Workload w = scenario.make_workload(ttl);

  std::printf("trace: %s, TTL = 10 h\n\n", scenario.trace.name().c_str());
  std::printf("%6s | %17s | %21s | %19s\n", "", "delivery ratio",
              "mean delay (minutes)", "fwd/delivery");
  std::printf("%6s | %8s %8s | %10s %10s | %9s %9s\n", "copies", "B-SUB",
              "SPRAY", "B-SUB", "SPRAY", "B-SUB", "SPRAY");
  for (std::uint32_t copies : {1u, 2u, 3u, 5u, 8u}) {
    core::BsubConfig cfg = bsub_config_for(scenario, ttl);
    cfg.copy_limit = copies;
    const ProtocolRun bsub = run_bsub(scenario, w, cfg);

    routing::SprayProtocol spray(copies);
    const metrics::RunResults sr =
        sim::Simulator().run(scenario.trace, w, spray);

    std::printf("%6u | %8.3f %8.3f | %10.1f %10.1f | %9.2f %9.2f\n", copies,
                bsub.results.delivery_ratio, sr.delivery_ratio,
                bsub.results.mean_delay_minutes, sr.mean_delay_minutes,
                bsub.results.forwardings_per_delivery,
                sr.forwardings_per_delivery);
  }
  std::printf(
      "\nExpected: delivery grows with the copy budget for both, with "
      "diminishing\nreturns; B-SUB's interest-guided placement beats blind "
      "spraying per copy.\n");
  return 0;
}
