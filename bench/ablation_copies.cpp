// Ablation: the copy limit C (paper section V-D fixes it at 3). Sweeps the
// number of broker replicas a producer may spawn per message and reports
// the delivery/overhead trade-off, plus the SPRAY baseline at the same
// budget (interest-oblivious placement) to isolate what TCBF-guided pickup
// buys. Each budget point is an independent pair of runs, executed on the
// parallel sweep runner.
#include "experiment_common.h"

#include <string>

int main() {
  using namespace bsub::bench;
  using namespace bsub;
  print_header("Ablation — copy limit C (section V-D)");

  const Scenario scenario = haggle_scenario();
  const util::Time ttl = 10 * util::kHour;
  const workload::Workload w = scenario.make_workload(ttl);

  struct Row {
    ProtocolRun bsub;
    metrics::RunResults spray;
  };

  WallTimer timer;
  const std::vector<std::uint32_t> budgets = {1, 2, 3, 5, 8};
  const std::vector<Row> rows =
      run_points_parallel(budgets, [&](std::uint32_t copies) {
        core::BsubConfig cfg = bsub_config_for(scenario, ttl);
        cfg.copy_limit = copies;
        Row r;
        r.bsub = run_bsub(scenario, w, cfg);
        r.spray = run_spec(scenario, w,
                           "SPRAY:copies=" + std::to_string(copies))
                      .results;
        return r;
      });

  std::printf("trace: %s, TTL = 10 h\n\n", scenario.trace.name().c_str());
  std::printf("%6s | %17s | %21s | %19s\n", "", "delivery ratio",
              "mean delay (minutes)", "fwd/delivery");
  std::printf("%6s | %8s %8s | %10s %10s | %9s %9s\n", "copies", "B-SUB",
              "SPRAY", "B-SUB", "SPRAY", "B-SUB", "SPRAY");
  std::vector<std::string> points;
  for (std::size_t i = 0; i < budgets.size(); ++i) {
    const Row& r = rows[i];
    std::printf("%6u | %8.3f %8.3f | %10.1f %10.1f | %9.2f %9.2f\n",
                budgets[i], r.bsub.results.delivery_ratio,
                r.spray.delivery_ratio, r.bsub.results.mean_delay_minutes,
                r.spray.mean_delay_minutes,
                r.bsub.results.forwardings_per_delivery,
                r.spray.forwardings_per_delivery);
    points.push_back(
        JsonObject()
            .field("copies", static_cast<std::uint64_t>(budgets[i]))
            .field("bsub_delivery", r.bsub.results.delivery_ratio)
            .field("spray_delivery", r.spray.delivery_ratio)
            .field("bsub_delay_min", r.bsub.results.mean_delay_minutes)
            .field("spray_delay_min", r.spray.mean_delay_minutes)
            .field("bsub_fwd", r.bsub.results.forwardings_per_delivery)
            .field("spray_fwd", r.spray.forwardings_per_delivery)
            .str());
  }
  std::printf(
      "\nExpected: delivery grows with the copy budget for both, with "
      "diminishing\nreturns; B-SUB's interest-guided placement beats blind "
      "spraying per copy.\n");
  write_bench_json("ablation_copies", timer.seconds(), points);
  return 0;
}
