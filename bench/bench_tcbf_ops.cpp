// Micro-benchmarks of the TCBF primitives (google-benchmark): the paper's
// efficiency argument rests on these being trivial (hashing + table
// lookups), so they are pinned here.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bloom/bloom_filter.h"
#include "bloom/fpr.h"
#include "bloom/tcbf.h"
#include "bloom/tcbf_codec.h"
#include "util/rng.h"

namespace {

using namespace bsub;

std::vector<std::string> make_keys(std::size_t n) {
  std::vector<std::string> keys;
  keys.reserve(n);
  for (std::size_t i = 0; i < n; ++i) keys.push_back("key" + std::to_string(i));
  return keys;
}

void BM_BloomInsert(benchmark::State& state) {
  const auto keys = make_keys(64);
  bloom::BloomFilter bf({256, 4});
  std::size_t i = 0;
  for (auto _ : state) {
    bf.insert(keys[i++ % keys.size()]);
    benchmark::DoNotOptimize(bf);
  }
}
BENCHMARK(BM_BloomInsert);

void BM_BloomQuery(benchmark::State& state) {
  const auto keys = make_keys(64);
  bloom::BloomFilter bf({256, 4});
  for (std::size_t i = 0; i < 38; ++i) bf.insert(keys[i]);
  std::size_t i = 0;
  bool hit = false;
  for (auto _ : state) {
    hit ^= bf.contains(keys[i++ % keys.size()]);
    benchmark::DoNotOptimize(hit);
  }
}
BENCHMARK(BM_BloomQuery);

void BM_TcbfInsert(benchmark::State& state) {
  const auto keys = make_keys(64);
  bloom::Tcbf t({256, 4}, 50.0);
  std::size_t i = 0;
  for (auto _ : state) {
    t.insert(keys[i++ % keys.size()]);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_TcbfInsert);

void BM_TcbfExistentialQuery(benchmark::State& state) {
  const auto keys = make_keys(64);
  bloom::Tcbf t({256, 4}, 50.0);
  for (std::size_t i = 0; i < 38; ++i) t.insert(keys[i]);
  std::size_t i = 0;
  bool hit = false;
  for (auto _ : state) {
    hit ^= t.contains(keys[i++ % keys.size()]);
    benchmark::DoNotOptimize(hit);
  }
}
BENCHMARK(BM_TcbfExistentialQuery);

void BM_TcbfPreferentialQuery(benchmark::State& state) {
  const auto keys = make_keys(64);
  bloom::Tcbf a({256, 4}, 50.0), b({256, 4}, 50.0);
  for (std::size_t i = 0; i < 20; ++i) a.insert(keys[i]);
  for (std::size_t i = 10; i < 30; ++i) b.insert(keys[i]);
  std::size_t i = 0;
  double p = 0.0;
  for (auto _ : state) {
    p += bloom::preference(a, b, keys[i++ % keys.size()]);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_TcbfPreferentialQuery);

void BM_TcbfDecay(benchmark::State& state) {
  const auto keys = make_keys(38);
  bloom::Tcbf t({256, 4}, 1e12);  // effectively never drains mid-benchmark
  for (const auto& k : keys) t.insert(k);
  for (auto _ : state) {
    t.decay(0.138);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_TcbfDecay);

void BM_TcbfAMerge(benchmark::State& state) {
  const auto keys = make_keys(38);
  bloom::Tcbf src({256, 4}, 50.0);
  for (const auto& k : keys) src.insert(k);
  bloom::Tcbf dst({256, 4}, 50.0);
  for (auto _ : state) {
    dst.a_merge(src);
    benchmark::DoNotOptimize(dst);
  }
}
BENCHMARK(BM_TcbfAMerge);

void BM_TcbfMMerge(benchmark::State& state) {
  const auto keys = make_keys(38);
  bloom::Tcbf src({256, 4}, 50.0);
  for (const auto& k : keys) src.insert(k);
  bloom::Tcbf dst({256, 4}, 50.0);
  for (auto _ : state) {
    dst.m_merge(src);
    benchmark::DoNotOptimize(dst);
  }
}
BENCHMARK(BM_TcbfMMerge);

void BM_TcbfEncodeFull(benchmark::State& state) {
  bloom::Tcbf t({256, 4}, 50.0);
  const auto keys = make_keys(static_cast<std::size_t>(state.range(0)));
  for (const auto& k : keys) t.insert(k);
  for (auto _ : state) {
    auto enc = bloom::encode_tcbf(t, bloom::CounterEncoding::kFull);
    benchmark::DoNotOptimize(enc);
  }
}
BENCHMARK(BM_TcbfEncodeFull)->Arg(1)->Arg(10)->Arg(38);

void BM_TcbfDecode(benchmark::State& state) {
  bloom::Tcbf t({256, 4}, 50.0);
  const auto keys = make_keys(38);
  for (const auto& k : keys) t.insert(k);
  const auto enc = bloom::encode_tcbf(t, bloom::CounterEncoding::kFull);
  for (auto _ : state) {
    auto dec = bloom::decode_tcbf(enc);
    benchmark::DoNotOptimize(dec);
  }
}
BENCHMARK(BM_TcbfDecode);

}  // namespace

BENCHMARK_MAIN();
