// Micro-benchmarks of the TCBF primitives (google-benchmark): the paper's
// efficiency argument rests on these being trivial (hashing + table
// lookups), so they are pinned here.
//
// Besides the google-benchmark cases, main() runs a before/after comparison
// against `DenseTcbf` — a seed-faithful reference with eager O(m) decay,
// dense O(m) merges, and per-query string hashing — at m in {1024, 8192,
// 65536}, and records ns-per-op for decay/merge/query to BENCH_tcbf_ops.json.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "bloom/bloom_filter.h"
#include "bloom/fpr.h"
#include "bloom/tcbf.h"
#include "bloom/tcbf_codec.h"
#include "util/errors.h"
#include "util/hash.h"
#include "util/rng.h"

namespace {

using namespace bsub;

std::vector<std::string> make_keys(std::size_t n) {
  std::vector<std::string> keys;
  keys.reserve(n);
  for (std::size_t i = 0; i < n; ++i) keys.push_back("key" + std::to_string(i));
  return keys;
}

void BM_BloomInsert(benchmark::State& state) {
  const auto keys = make_keys(64);
  bloom::BloomFilter bf({256, 4});
  std::size_t i = 0;
  for (auto _ : state) {
    bf.insert(keys[i++ % keys.size()]);
    benchmark::DoNotOptimize(bf);
  }
}
BENCHMARK(BM_BloomInsert);

void BM_BloomQuery(benchmark::State& state) {
  const auto keys = make_keys(64);
  bloom::BloomFilter bf({256, 4});
  for (std::size_t i = 0; i < 38; ++i) bf.insert(keys[i]);
  std::size_t i = 0;
  bool hit = false;
  for (auto _ : state) {
    hit ^= bf.contains(keys[i++ % keys.size()]);
    benchmark::DoNotOptimize(hit);
  }
}
BENCHMARK(BM_BloomQuery);

void BM_TcbfInsert(benchmark::State& state) {
  const auto keys = make_keys(64);
  bloom::Tcbf t({256, 4}, 50.0);
  std::size_t i = 0;
  for (auto _ : state) {
    t.insert(keys[i++ % keys.size()]);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_TcbfInsert);

void BM_TcbfExistentialQuery(benchmark::State& state) {
  const auto keys = make_keys(64);
  bloom::Tcbf t({256, 4}, 50.0);
  for (std::size_t i = 0; i < 38; ++i) t.insert(keys[i]);
  std::size_t i = 0;
  bool hit = false;
  for (auto _ : state) {
    hit ^= t.contains(keys[i++ % keys.size()]);
    benchmark::DoNotOptimize(hit);
  }
}
BENCHMARK(BM_TcbfExistentialQuery);

void BM_TcbfHashedQuery(benchmark::State& state) {
  const auto keys = make_keys(64);
  std::vector<util::HashPair> hps;
  for (const auto& k : keys) hps.push_back(util::hash_pair(k));
  bloom::Tcbf t({256, 4}, 50.0);
  for (std::size_t i = 0; i < 38; ++i) t.insert(hps[i]);
  std::size_t i = 0;
  bool hit = false;
  for (auto _ : state) {
    hit ^= t.contains(hps[i++ % hps.size()]);
    benchmark::DoNotOptimize(hit);
  }
}
BENCHMARK(BM_TcbfHashedQuery);

void BM_TcbfPreferentialQuery(benchmark::State& state) {
  const auto keys = make_keys(64);
  bloom::Tcbf a({256, 4}, 50.0), b({256, 4}, 50.0);
  for (std::size_t i = 0; i < 20; ++i) a.insert(keys[i]);
  for (std::size_t i = 10; i < 30; ++i) b.insert(keys[i]);
  std::size_t i = 0;
  double p = 0.0;
  for (auto _ : state) {
    p += bloom::preference(a, b, keys[i++ % keys.size()]);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_TcbfPreferentialQuery);

void BM_TcbfDecay(benchmark::State& state) {
  const auto keys = make_keys(38);
  const auto m = static_cast<std::uint32_t>(state.range(0));
  bloom::Tcbf t({m, 4}, 1e12);  // effectively never drains mid-benchmark
  for (const auto& k : keys) t.insert(k);
  for (auto _ : state) {
    t.decay(0.138);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_TcbfDecay)->Arg(256)->Arg(1024)->Arg(8192)->Arg(65536);

void BM_TcbfAMerge(benchmark::State& state) {
  const auto keys = make_keys(38);
  const auto m = static_cast<std::uint32_t>(state.range(0));
  bloom::Tcbf src({m, 4}, 50.0);
  for (const auto& k : keys) src.insert(k);
  bloom::Tcbf dst({m, 4}, 50.0);
  for (auto _ : state) {
    dst.a_merge(src);
    benchmark::DoNotOptimize(dst);
  }
}
BENCHMARK(BM_TcbfAMerge)->Arg(256)->Arg(1024)->Arg(8192)->Arg(65536);

void BM_TcbfMMerge(benchmark::State& state) {
  const auto keys = make_keys(38);
  const auto m = static_cast<std::uint32_t>(state.range(0));
  bloom::Tcbf src({m, 4}, 50.0);
  for (const auto& k : keys) src.insert(k);
  bloom::Tcbf dst({m, 4}, 50.0);
  for (auto _ : state) {
    dst.m_merge(src);
    benchmark::DoNotOptimize(dst);
  }
}
BENCHMARK(BM_TcbfMMerge)->Arg(256)->Arg(1024)->Arg(8192)->Arg(65536);

void BM_TcbfEncodeFull(benchmark::State& state) {
  bloom::Tcbf t({256, 4}, 50.0);
  const auto keys = make_keys(static_cast<std::size_t>(state.range(0)));
  for (const auto& k : keys) t.insert(k);
  for (auto _ : state) {
    auto enc = bloom::encode_tcbf(t, bloom::CounterEncoding::kFull);
    benchmark::DoNotOptimize(enc);
  }
}
BENCHMARK(BM_TcbfEncodeFull)->Arg(1)->Arg(10)->Arg(38);

void BM_TcbfDecode(benchmark::State& state) {
  bloom::Tcbf t({256, 4}, 50.0);
  const auto keys = make_keys(38);
  for (const auto& k : keys) t.insert(k);
  const auto enc = bloom::encode_tcbf(t, bloom::CounterEncoding::kFull);
  for (auto _ : state) {
    auto dec = bloom::decode_tcbf(enc);
    benchmark::DoNotOptimize(dec);
  }
}
BENCHMARK(BM_TcbfDecode);

void BM_TcbfDecodeReject(benchmark::State& state) {
  // Cost of turning away hostile bytes: a valid encoding truncated to the
  // given fraction (x1000) of its length. The length-prefix sanity check
  // should reject long-but-truncated buffers before any O(m) allocation,
  // so this stays flat as the cut point moves.
  bloom::Tcbf t({65536, 4}, 50.0);
  const auto keys = make_keys(2000);
  for (const auto& k : keys) t.insert(k);
  auto enc = bloom::encode_tcbf(t, bloom::CounterEncoding::kFull);
  enc.resize(enc.size() * static_cast<std::size_t>(state.range(0)) / 1000);
  std::size_t rejected = 0;
  for (auto _ : state) {
    try {
      auto dec = bloom::decode_tcbf(enc);
      benchmark::DoNotOptimize(dec);
    } catch (const util::DecodeError&) {
      ++rejected;
    }
  }
  if (rejected != static_cast<std::size_t>(state.iterations())) {
    state.SkipWithError("truncated buffer unexpectedly decoded");
  }
}
BENCHMARK(BM_TcbfDecodeReject)->Arg(10)->Arg(500)->Arg(999);

// --- before/after comparison -----------------------------------------------

/// Seed-faithful reference TCBF: the representation this repo shipped with —
/// one dense counter array, eager O(m) decay and merge sweeps, and string
/// hashing on every operation. Semantically identical to bloom::Tcbf (the
/// randomized differential test in tests/bloom/ proves it); only the cost
/// model differs.
class DenseTcbf {
 public:
  DenseTcbf(bloom::BloomParams params, double initial_counter)
      : params_(params),
        initial_counter_(initial_counter),
        counters_(params.m, 0.0) {}

  void insert(std::string_view key) {
    for (std::size_t idx : util::bloom_indices(key, params_.k, params_.m)) {
      if (counters_[idx] <= 0.0) counters_[idx] = initial_counter_;
    }
  }

  void decay(double amount) {
    for (double& c : counters_) c = c > amount ? c - amount : 0.0;
  }

  void a_merge(const DenseTcbf& other) {
    for (std::size_t i = 0; i < counters_.size(); ++i) {
      const double sum = counters_[i] + other.counters_[i];
      counters_[i] = sum < bloom::kCounterSaturation
                         ? sum
                         : bloom::kCounterSaturation;
    }
  }

  void m_merge(const DenseTcbf& other) {
    for (std::size_t i = 0; i < counters_.size(); ++i) {
      if (other.counters_[i] > counters_[i]) counters_[i] = other.counters_[i];
    }
  }

  std::optional<double> min_counter(std::string_view key) const {
    double mn = std::numeric_limits<double>::infinity();
    for (std::size_t idx : util::bloom_indices(key, params_.k, params_.m)) {
      if (counters_[idx] <= 0.0) return std::nullopt;
      if (counters_[idx] < mn) mn = counters_[idx];
    }
    return mn;
  }

 private:
  bloom::BloomParams params_;
  double initial_counter_;
  std::vector<double> counters_;
};

/// Measures fn's cost by doubling the iteration count until the timed batch
/// is long enough to trust the clock.
template <class Fn>
double ns_per_op(Fn&& fn) {
  using clock = std::chrono::steady_clock;
  fn();  // warm-up
  for (std::size_t iters = 8;; iters *= 4) {
    const auto t0 = clock::now();
    for (std::size_t i = 0; i < iters; ++i) fn();
    const double elapsed =
        std::chrono::duration<double>(clock::now() - t0).count();
    if (elapsed >= 0.02 || iters >= (std::size_t{1} << 28)) {
      return elapsed * 1e9 / static_cast<double>(iters);
    }
  }
}

struct OpTiming {
  const char* op;
  std::uint32_t m;
  double dense_ns;
  double lazy_ns;
};

std::vector<OpTiming> run_comparison() {
  constexpr std::uint32_t kHashes = 4;
  constexpr std::size_t kKeys = 38;  // the paper's key-set size
  const auto keys = make_keys(kKeys);
  std::vector<util::HashPair> hps;
  for (const auto& k : keys) hps.push_back(util::hash_pair(k));

  std::vector<OpTiming> out;
  for (std::uint32_t m : {1024u, 8192u, 65536u}) {
    const bloom::BloomParams params{m, kHashes};
    // Huge initial counter so sustained decay never drains the filters.
    DenseTcbf dense(params, 1e12);
    bloom::Tcbf lazy(params, 1e12);
    for (std::size_t i = 0; i < kKeys; ++i) {
      dense.insert(keys[i]);
      lazy.insert(hps[i]);
    }

    const double dense_decay = ns_per_op([&] {
      dense.decay(0.138);
      benchmark::DoNotOptimize(dense);
    });
    const double lazy_decay = ns_per_op([&] {
      lazy.decay(0.138);
      benchmark::DoNotOptimize(lazy);
    });
    out.push_back({"decay", m, dense_decay, lazy_decay});

    DenseTcbf dense_src(params, 50.0);
    bloom::Tcbf lazy_src(params, 50.0);
    for (std::size_t i = 0; i < kKeys; ++i) {
      dense_src.insert(keys[i]);
      lazy_src.insert(hps[i]);
    }
    DenseTcbf dense_dst(params, 50.0);
    bloom::Tcbf lazy_dst(params, 50.0);
    const double dense_merge = ns_per_op([&] {
      dense_dst.a_merge(dense_src);
      benchmark::DoNotOptimize(dense_dst);
    });
    const double lazy_merge = ns_per_op([&] {
      lazy_dst.a_merge(lazy_src);
      benchmark::DoNotOptimize(lazy_dst);
    });
    out.push_back({"a_merge", m, dense_merge, lazy_merge});

    std::size_t qi = 0;
    const double dense_query = ns_per_op([&] {
      auto c = dense.min_counter(keys[qi++ % kKeys]);
      benchmark::DoNotOptimize(c);
    });
    qi = 0;
    const double lazy_query = ns_per_op([&] {
      auto c = lazy.min_counter(hps[qi++ % kKeys]);
      benchmark::DoNotOptimize(c);
    });
    out.push_back({"min_counter", m, dense_query, lazy_query});
  }
  return out;
}

void report_comparison(const std::vector<OpTiming>& timings,
                       double wall_seconds) {
  std::printf("TCBF dense-reference vs current representation (ns/op)\n");
  std::printf("%12s | %6s | %12s | %12s | %8s\n", "op", "m", "dense(ns)",
              "current(ns)", "speedup");
  for (const OpTiming& t : timings) {
    std::printf("%12s | %6u | %12.1f | %12.1f | %7.1fx\n", t.op, t.m,
                t.dense_ns, t.lazy_ns,
                t.lazy_ns > 0.0 ? t.dense_ns / t.lazy_ns : 0.0);
  }

  std::FILE* f = std::fopen("BENCH_tcbf_ops.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write BENCH_tcbf_ops.json\n");
    return;
  }
  std::fprintf(f,
               "{\"bench\": \"tcbf_ops\", \"wall_seconds\": %.3f, "
               "\"points\": [",
               wall_seconds);
  for (std::size_t i = 0; i < timings.size(); ++i) {
    const OpTiming& t = timings[i];
    std::fprintf(f,
                 "%s\n  {\"op\": \"%s\", \"m\": %u, \"dense_ns\": %.2f, "
                 "\"lazy_ns\": %.2f, \"speedup\": %.2f}",
                 i == 0 ? "" : ",", t.op, t.m, t.dense_ns, t.lazy_ns,
                 t.lazy_ns > 0.0 ? t.dense_ns / t.lazy_ns : 0.0);
  }
  std::fprintf(f, "\n]}\n");
  std::fclose(f);
  std::printf("-> BENCH_tcbf_ops.json (%.2fs wall)\n\n", wall_seconds);
}

}  // namespace

int main(int argc, char** argv) {
  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<OpTiming> timings = run_comparison();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  report_comparison(timings, wall);

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
