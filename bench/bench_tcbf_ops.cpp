// Micro-benchmarks of the TCBF primitives (google-benchmark): the paper's
// efficiency argument rests on these being trivial (hashing + table
// lookups), so they are pinned here.
//
// Besides the google-benchmark cases, main() runs a before/after comparison
// against `DenseTcbf` — a seed-faithful reference with eager O(m) decay,
// dense O(m) merges, and per-query string hashing — once per available
// kernel backend (scalar, blocked, avx2/neon), at m in {1024, 8192, 65536},
// and records ns-per-op for decay/merge/query to BENCH_tcbf_ops.json. It
// exits non-zero if a pinned performance floor regresses (see
// check_regressions below).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <limits>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "bloom/bloom_filter.h"
#include "bloom/fpr.h"
#include "bloom/kernels.h"
#include "bloom/tcbf.h"
#include "bloom/tcbf_codec.h"
#include "util/errors.h"
#include "util/hash.h"
#include "util/rng.h"

namespace {

using namespace bsub;

std::vector<std::string> make_keys(std::size_t n) {
  std::vector<std::string> keys;
  keys.reserve(n);
  for (std::size_t i = 0; i < n; ++i) keys.push_back("key" + std::to_string(i));
  return keys;
}

void BM_BloomInsert(benchmark::State& state) {
  const auto keys = make_keys(64);
  bloom::BloomFilter bf({256, 4});
  std::size_t i = 0;
  for (auto _ : state) {
    bf.insert(keys[i++ % keys.size()]);
    benchmark::DoNotOptimize(bf);
  }
}
BENCHMARK(BM_BloomInsert);

void BM_BloomQuery(benchmark::State& state) {
  const auto keys = make_keys(64);
  bloom::BloomFilter bf({256, 4});
  for (std::size_t i = 0; i < 38; ++i) bf.insert(keys[i]);
  std::size_t i = 0;
  bool hit = false;
  for (auto _ : state) {
    hit ^= bf.contains(keys[i++ % keys.size()]);
    benchmark::DoNotOptimize(hit);
  }
}
BENCHMARK(BM_BloomQuery);

void BM_TcbfInsert(benchmark::State& state) {
  const auto keys = make_keys(64);
  bloom::Tcbf t({256, 4}, 50.0);
  std::size_t i = 0;
  for (auto _ : state) {
    t.insert(keys[i++ % keys.size()]);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_TcbfInsert);

void BM_TcbfExistentialQuery(benchmark::State& state) {
  const auto keys = make_keys(64);
  bloom::Tcbf t({256, 4}, 50.0);
  for (std::size_t i = 0; i < 38; ++i) t.insert(keys[i]);
  std::size_t i = 0;
  bool hit = false;
  for (auto _ : state) {
    hit ^= t.contains(keys[i++ % keys.size()]);
    benchmark::DoNotOptimize(hit);
  }
}
BENCHMARK(BM_TcbfExistentialQuery);

void BM_TcbfHashedQuery(benchmark::State& state) {
  const auto keys = make_keys(64);
  std::vector<util::HashPair> hps;
  for (const auto& k : keys) hps.push_back(util::hash_pair(k));
  bloom::Tcbf t({256, 4}, 50.0);
  for (std::size_t i = 0; i < 38; ++i) t.insert(hps[i]);
  std::size_t i = 0;
  bool hit = false;
  for (auto _ : state) {
    hit ^= t.contains(hps[i++ % hps.size()]);
    benchmark::DoNotOptimize(hit);
  }
}
BENCHMARK(BM_TcbfHashedQuery);

void BM_TcbfPreferentialQuery(benchmark::State& state) {
  const auto keys = make_keys(64);
  bloom::Tcbf a({256, 4}, 50.0), b({256, 4}, 50.0);
  for (std::size_t i = 0; i < 20; ++i) a.insert(keys[i]);
  for (std::size_t i = 10; i < 30; ++i) b.insert(keys[i]);
  std::size_t i = 0;
  double p = 0.0;
  for (auto _ : state) {
    p += bloom::preference(a, b, keys[i++ % keys.size()]);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_TcbfPreferentialQuery);

void BM_TcbfDecay(benchmark::State& state) {
  const auto keys = make_keys(38);
  const auto m = static_cast<std::uint32_t>(state.range(0));
  bloom::Tcbf t({m, 4}, 1e12);  // effectively never drains mid-benchmark
  for (const auto& k : keys) t.insert(k);
  for (auto _ : state) {
    t.decay(0.138);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_TcbfDecay)->Arg(256)->Arg(1024)->Arg(8192)->Arg(65536);

void BM_TcbfAMerge(benchmark::State& state) {
  const auto keys = make_keys(38);
  const auto m = static_cast<std::uint32_t>(state.range(0));
  bloom::Tcbf src({m, 4}, 50.0);
  for (const auto& k : keys) src.insert(k);
  bloom::Tcbf dst({m, 4}, 50.0);
  for (auto _ : state) {
    dst.a_merge(src);
    benchmark::DoNotOptimize(dst);
  }
}
BENCHMARK(BM_TcbfAMerge)->Arg(256)->Arg(1024)->Arg(8192)->Arg(65536);

void BM_TcbfMMerge(benchmark::State& state) {
  const auto keys = make_keys(38);
  const auto m = static_cast<std::uint32_t>(state.range(0));
  bloom::Tcbf src({m, 4}, 50.0);
  for (const auto& k : keys) src.insert(k);
  bloom::Tcbf dst({m, 4}, 50.0);
  for (auto _ : state) {
    dst.m_merge(src);
    benchmark::DoNotOptimize(dst);
  }
}
BENCHMARK(BM_TcbfMMerge)->Arg(256)->Arg(1024)->Arg(8192)->Arg(65536);

void BM_TcbfEncodeFull(benchmark::State& state) {
  bloom::Tcbf t({256, 4}, 50.0);
  const auto keys = make_keys(static_cast<std::size_t>(state.range(0)));
  for (const auto& k : keys) t.insert(k);
  for (auto _ : state) {
    auto enc = bloom::encode_tcbf(t, bloom::CounterEncoding::kFull);
    benchmark::DoNotOptimize(enc);
  }
}
BENCHMARK(BM_TcbfEncodeFull)->Arg(1)->Arg(10)->Arg(38);

void BM_TcbfDecode(benchmark::State& state) {
  bloom::Tcbf t({256, 4}, 50.0);
  const auto keys = make_keys(38);
  for (const auto& k : keys) t.insert(k);
  const auto enc = bloom::encode_tcbf(t, bloom::CounterEncoding::kFull);
  for (auto _ : state) {
    auto dec = bloom::decode_tcbf(enc);
    benchmark::DoNotOptimize(dec);
  }
}
BENCHMARK(BM_TcbfDecode);

void BM_TcbfDecodeReject(benchmark::State& state) {
  // Cost of turning away hostile bytes: a valid encoding truncated to the
  // given fraction (x1000) of its length. The length-prefix sanity check
  // should reject long-but-truncated buffers before any O(m) allocation,
  // so this stays flat as the cut point moves.
  bloom::Tcbf t({65536, 4}, 50.0);
  const auto keys = make_keys(2000);
  for (const auto& k : keys) t.insert(k);
  auto enc = bloom::encode_tcbf(t, bloom::CounterEncoding::kFull);
  enc.resize(enc.size() * static_cast<std::size_t>(state.range(0)) / 1000);
  std::size_t rejected = 0;
  for (auto _ : state) {
    try {
      auto dec = bloom::decode_tcbf(enc);
      benchmark::DoNotOptimize(dec);
    } catch (const util::DecodeError&) {
      ++rejected;
    }
  }
  if (rejected != static_cast<std::size_t>(state.iterations())) {
    state.SkipWithError("truncated buffer unexpectedly decoded");
  }
}
BENCHMARK(BM_TcbfDecodeReject)->Arg(10)->Arg(500)->Arg(999);

// --- before/after comparison -----------------------------------------------

/// Seed-faithful reference TCBF: the representation this repo shipped with —
/// one dense counter array, eager O(m) decay and merge sweeps, and string
/// hashing on every operation. Semantically identical to bloom::Tcbf (the
/// randomized differential test in tests/bloom/ proves it); only the cost
/// model differs.
class DenseTcbf {
 public:
  DenseTcbf(bloom::BloomParams params, double initial_counter)
      : params_(params),
        initial_counter_(initial_counter),
        counters_(params.m, 0.0) {}

  void insert(std::string_view key) {
    for (std::size_t idx : util::bloom_indices(key, params_.k, params_.m)) {
      if (counters_[idx] <= 0.0) counters_[idx] = initial_counter_;
    }
  }

  void decay(double amount) {
    for (double& c : counters_) c = c > amount ? c - amount : 0.0;
  }

  void a_merge(const DenseTcbf& other) {
    for (std::size_t i = 0; i < counters_.size(); ++i) {
      const double sum = counters_[i] + other.counters_[i];
      counters_[i] = sum < bloom::kCounterSaturation
                         ? sum
                         : bloom::kCounterSaturation;
    }
  }

  void m_merge(const DenseTcbf& other) {
    for (std::size_t i = 0; i < counters_.size(); ++i) {
      if (other.counters_[i] > counters_[i]) counters_[i] = other.counters_[i];
    }
  }

  std::optional<double> min_counter(std::string_view key) const {
    double mn = std::numeric_limits<double>::infinity();
    for (std::size_t idx : util::bloom_indices(key, params_.k, params_.m)) {
      if (counters_[idx] <= 0.0) return std::nullopt;
      if (counters_[idx] < mn) mn = counters_[idx];
    }
    return mn;
  }

 private:
  bloom::BloomParams params_;
  double initial_counter_;
  std::vector<double> counters_;
};

/// Measures fn's cost by growing the iteration count until the timed batch
/// is long enough to trust the clock, then keeps the fastest of three such
/// batches (min is the robust estimator under scheduler noise).
template <class Fn>
double ns_per_op(Fn&& fn) {
  using clock = std::chrono::steady_clock;
  fn();  // warm-up
  auto one_batch = [&] {
    for (std::size_t iters = 8;; iters *= 4) {
      const auto t0 = clock::now();
      for (std::size_t i = 0; i < iters; ++i) fn();
      const double elapsed =
          std::chrono::duration<double>(clock::now() - t0).count();
      if (elapsed >= 0.02 || iters >= (std::size_t{1} << 28)) {
        return elapsed * 1e9 / static_cast<double>(iters);
      }
    }
  };
  double best = one_batch();
  for (int r = 1; r < 3; ++r) {
    const double ns = one_batch();
    if (ns < best) best = ns;
  }
  return best;
}

struct OpTiming {
  const char* op;
  std::uint32_t m;
  bloom::kernels::Kind kernel;
  double dense_ns;
  double kernel_ns;

  double speedup() const {
    return kernel_ns > 0.0 ? dense_ns / kernel_ns : 0.0;
  }
};

/// One comparison pass against the dense reference with `kind` forced as
/// the dispatched kernel. Covers the sparse contact regime (the paper's 38
/// keys) and, for merges, a dense regime (~39% occupancy) where the kernels
/// take their full-sweep path.
void run_comparison(bloom::kernels::Kind kind, std::vector<OpTiming>& out) {
  namespace kernels = bloom::kernels;
  const bool forced = kernels::force_kernel(kind);
  (void)forced;
  constexpr std::uint32_t kHashes = 4;
  constexpr std::size_t kKeys = 38;  // the paper's key-set size
  const auto keys = make_keys(kKeys);
  std::vector<util::HashPair> hps;
  for (const auto& k : keys) hps.push_back(util::hash_pair(k));

  for (std::uint32_t m : {1024u, 8192u, 65536u}) {
    const bloom::BloomParams params{m, kHashes};
    // Huge initial counter so sustained decay never drains the filters.
    DenseTcbf dense(params, 1e12);
    bloom::Tcbf lazy(params, 1e12);
    for (std::size_t i = 0; i < kKeys; ++i) {
      dense.insert(keys[i]);
      lazy.insert(hps[i]);
    }

    const double dense_decay = ns_per_op([&] {
      dense.decay(0.138);
      benchmark::DoNotOptimize(dense);
    });
    const double lazy_decay = ns_per_op([&] {
      lazy.decay(0.138);
      benchmark::DoNotOptimize(lazy);
    });
    out.push_back({"decay", m, kind, dense_decay, lazy_decay});

    DenseTcbf dense_src(params, 50.0);
    bloom::Tcbf lazy_src(params, 50.0);
    for (std::size_t i = 0; i < kKeys; ++i) {
      dense_src.insert(keys[i]);
      lazy_src.insert(hps[i]);
    }
    DenseTcbf dense_dst(params, 50.0);
    bloom::Tcbf lazy_dst(params, 50.0);
    const double dense_merge = ns_per_op([&] {
      dense_dst.a_merge(dense_src);
      benchmark::DoNotOptimize(dense_dst);
    });
    const double lazy_merge = ns_per_op([&] {
      lazy_dst.a_merge(lazy_src);
      benchmark::DoNotOptimize(lazy_dst);
    });
    out.push_back({"a_merge", m, kind, dense_merge, lazy_merge});

    // Dense regime: m/48 keys * k=4 hashes fill ~8% of the table — past the
    // scalar lazy-vs-dense crossover (1/16 of slots occupied), so this
    // times the dense sweeps (where the SIMD lanes and the cache-line skip
    // earn their keep). Much beyond this fill the paper's FPR budget is
    // blown anyway, so higher densities are not the regime that matters.
    {
      const std::size_t n = m / 48;
      const auto fill_keys = make_keys(n);
      DenseTcbf dense_fsrc(params, 50.0);
      bloom::Tcbf lazy_fsrc(params, 50.0);
      for (const auto& k : fill_keys) {
        dense_fsrc.insert(k);
        lazy_fsrc.insert(util::hash_pair(k));
      }
      DenseTcbf dense_fdst(params, 50.0);
      bloom::Tcbf lazy_fdst(params, 50.0);
      const double dense_fmerge = ns_per_op([&] {
        dense_fdst.a_merge(dense_fsrc);
        benchmark::DoNotOptimize(dense_fdst);
      });
      const double lazy_fmerge = ns_per_op([&] {
        lazy_fdst.a_merge(lazy_fsrc);
        benchmark::DoNotOptimize(lazy_fdst);
      });
      out.push_back({"a_merge_dense", m, kind, dense_fmerge, lazy_fmerge});
    }

    std::size_t qi = 0;
    const double dense_query = ns_per_op([&] {
      auto c = dense.min_counter(keys[qi++ % kKeys]);
      benchmark::DoNotOptimize(c);
    });
    qi = 0;
    const double lazy_query = ns_per_op([&] {
      auto c = lazy.min_counter(hps[qi++ % kKeys]);
      benchmark::DoNotOptimize(c);
    });
    out.push_back({"min_counter", m, kind, dense_query, lazy_query});
  }
}

void report_comparison(const std::vector<OpTiming>& timings,
                       double wall_seconds) {
  namespace kernels = bloom::kernels;
  std::printf("TCBF dense-reference vs kernel backends (ns/op)\n");
  std::printf("%14s | %6s | %8s | %12s | %12s | %8s\n", "op", "m", "kernel",
              "dense(ns)", "kernel(ns)", "speedup");
  for (const OpTiming& t : timings) {
    std::printf("%14s | %6u | %8s | %12.1f | %12.1f | %7.1fx\n", t.op, t.m,
                std::string(kernels::kind_name(t.kernel)).c_str(), t.dense_ns,
                t.kernel_ns, t.speedup());
  }

  std::FILE* f = std::fopen("BENCH_tcbf_ops.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write BENCH_tcbf_ops.json\n");
    return;
  }
  std::fprintf(f,
               "{\"bench\": \"tcbf_ops\", \"wall_seconds\": %.3f, "
               "\"points\": [",
               wall_seconds);
  for (std::size_t i = 0; i < timings.size(); ++i) {
    const OpTiming& t = timings[i];
    std::fprintf(
        f,
        "%s\n  {\"op\": \"%s\", \"m\": %u, \"kernel\": \"%s\", "
        "\"dense_ns\": %.2f, \"kernel_ns\": %.2f, \"speedup\": %.2f}",
        i == 0 ? "" : ",", t.op, t.m,
        std::string(kernels::kind_name(t.kernel)).c_str(), t.dense_ns,
        t.kernel_ns, t.speedup());
  }
  std::fprintf(f, "\n]}\n");
  std::fclose(f);
  std::printf("-> BENCH_tcbf_ops.json (%.2fs wall)\n\n", wall_seconds);
}

/// Pinned performance floors, checked on the widest available kernel — the
/// one default dispatch puts on the contact fast path. Returns the number
/// of violations:
///   - the 38-key a_merge at m=1024 must at least break even against the
///     dense reference (the historical regression this layer closes: the
///     sparse per-bit walk used to lose to a plain sweep there);
///   - with a SIMD kernel, the dense-regime merge and min_counter at
///     m=65536 must beat the dense reference >= 2x.
int check_regressions(const std::vector<OpTiming>& timings,
                      bloom::kernels::Kind best) {
  namespace kernels = bloom::kernels;
  int violations = 0;
  auto fail = [&](const OpTiming& t, double floor) {
    std::fprintf(stderr,
                 "REGRESSION: %s @ m=%u on kernel %s: %.2fx < required "
                 "%.1fx\n",
                 t.op, t.m, std::string(kernels::kind_name(t.kernel)).c_str(),
                 t.speedup(), floor);
    ++violations;
  };
  const bool simd =
      best == kernels::Kind::kAvx2 || best == kernels::Kind::kNeon;
  for (const OpTiming& t : timings) {
    if (t.kernel != best) continue;
    const std::string_view op(t.op);
    if (op == "a_merge" && t.m == 1024 && t.speedup() < 1.0) fail(t, 1.0);
    if (simd && t.m == 65536 && (op == "a_merge_dense" || op == "min_counter")
        && t.speedup() < 2.0) {
      fail(t, 2.0);
    }
  }
  return violations;
}

}  // namespace

int main(int argc, char** argv) {
  namespace kernels = bsub::bloom::kernels;
  const kernels::Kind dispatched = kernels::active_kind();

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<OpTiming> timings;
  kernels::Kind best = kernels::Kind::kScalar;
  for (kernels::Kind kind :
       {kernels::Kind::kScalar, kernels::Kind::kBlocked, kernels::Kind::kAvx2,
        kernels::Kind::kNeon}) {
    if (!kernels::available(kind)) continue;
    run_comparison(kind, timings);
    best = kind;  // iteration order matches dispatch preference (widest last)
  }
  kernels::force_kernel(dispatched);  // micro-benchmarks use default dispatch
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  report_comparison(timings, wall);
  const int violations = check_regressions(timings, best);
  if (violations > 0) {
    std::fprintf(stderr, "bench_tcbf_ops: %d performance floor(s) violated\n",
                 violations);
    return 1;
  }

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
