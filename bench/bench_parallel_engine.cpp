// Microbench for the deterministic parallel execution core: one B-SUB trace
// run sharded across cores by the windowed conflict-batch executor.
//
// A dense synthetic trace (many nodes, so windows split into a few large
// node-disjoint batches) is replayed at 1/2/4/8 threads; every multi-thread
// run is checked semantically identical to the serial run before its
// timing counts. Reports contacts/sec and speedup vs serial and writes
// BENCH_parallel_engine.json with the thread count, window size, and
// batch-size histogram per point so perf comparisons across machines and
// PRs stay apples-to-apples.
//
// Exit code: fails (1) only when the host actually has >= 8 hardware
// threads and the 8-thread speedup misses the >= 3x acceptance target —
// smaller hosts still run everything (the determinism checks matter
// everywhere) but cannot judge scaling.
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "experiment_common.h"
#include "resource_stats.h"

namespace bsub::bench {
namespace {

struct PointResult {
  std::size_t threads = 0;
  double seconds = 0.0;
  double contacts_per_sec = 0.0;
  double speedup = 1.0;
  sim::ParallelRunStats stats;
  metrics::RunResults results;
  core::BsubProtocol::TrafficBreakdown traffic;
  double relay_fpr = 0.0;
  std::uint64_t false_injections = 0;
};

bool semantically_equal(const PointResult& a, const PointResult& b) {
  return a.results.interested_deliveries == b.results.interested_deliveries &&
         a.results.false_deliveries == b.results.false_deliveries &&
         a.results.forwardings == b.results.forwardings &&
         a.results.message_bytes == b.results.message_bytes &&
         a.results.control_bytes == b.results.control_bytes &&
         a.results.delivery_ratio == b.results.delivery_ratio &&
         a.results.mean_delay_minutes == b.results.mean_delay_minutes &&
         a.results.median_delay_minutes == b.results.median_delay_minutes &&
         a.results.max_delay_minutes == b.results.max_delay_minutes &&
         a.traffic.pickups == b.traffic.pickups &&
         a.traffic.broker_transfers == b.traffic.broker_transfers &&
         a.traffic.deliveries == b.traffic.deliveries &&
         a.relay_fpr == b.relay_fpr &&
         a.false_injections == b.false_injections;
}

std::string histogram_json(const std::vector<std::uint64_t>& h) {
  std::string out = "[";
  for (std::size_t i = 0; i < h.size(); ++i) {
    if (i != 0) out += ", ";
    out += std::to_string(h[i]);
  }
  out += "]";
  return out;
}

int run() {
  // Dense trace: enough nodes that a 4096-event window splits into a few
  // wide node-disjoint batches (parallelism ~ node_count / 2 per batch).
  trace::SyntheticTraceConfig tcfg;
  tcfg.name = "parallel-engine";
  tcfg.node_count = 800;
  tcfg.contact_count = 120000;
  tcfg.duration = util::kDay;
  tcfg.community_count = 8;
  tcfg.seed = kExperimentSeed;
  const Scenario s(tcfg);

  workload::WorkloadConfig wcfg;
  wcfg.ttl = 6 * util::kHour;
  // Tamer production rate than the paper default: with 800 producers the
  // default floods the run with ~1M messages and the bench measures buffer
  // churn instead of contact execution.
  wcfg.base_rate_per_minute = 1.0 / 300.0;
  wcfg.seed = kExperimentSeed + 1;
  const workload::Workload w(s.trace, s.keys, wcfg);

  core::BsubConfig cfg = bsub_config_for(s, wcfg.ttl);

  print_header("bench_parallel_engine: one trace run sharded across cores");
  std::printf("trace: %zu nodes, %zu contacts, %zu messages\n",
              s.trace.node_count(), s.trace.contacts().size(),
              w.messages().size());

  const std::size_t kWindowEvents = 4096;
  const std::vector<std::size_t> kThreadCounts = {1, 2, 4, 8};
  std::vector<PointResult> points;

  WallTimer total;
  for (std::size_t threads : kThreadCounts) {
    sim::SimulatorConfig scfg;
    scfg.threads = threads;
    scfg.window_events = kWindowEvents;
    sim::Simulator simulator(scfg);
    core::BsubProtocol proto(cfg);

    WallTimer timer;
    PointResult p;
    p.results = simulator.run(s.trace, w, proto);
    p.seconds = timer.seconds();
    p.threads = threads;
    p.contacts_per_sec =
        static_cast<double>(s.trace.contacts().size()) / p.seconds;
    p.stats = simulator.last_run_stats();
    p.traffic = proto.traffic();
    p.relay_fpr = proto.measured_relay_fpr();
    p.false_injections = proto.false_injections();
    points.push_back(std::move(p));
  }

  bool identical = true;
  for (std::size_t i = 1; i < points.size(); ++i) {
    points[i].speedup = points[0].seconds / points[i].seconds;
    if (!semantically_equal(points[0], points[i])) identical = false;
  }

  std::printf("\n%8s %10s %14s %9s %9s %11s %10s\n", "threads", "secs",
              "contacts/s", "speedup", "windows", "batches", "max_batch");
  std::vector<std::string> rows;
  for (const PointResult& p : points) {
    std::printf("%8zu %10.3f %14.0f %8.2fx %9llu %11llu %10llu\n", p.threads,
                p.seconds, p.contacts_per_sec, p.speedup,
                static_cast<unsigned long long>(p.stats.windows),
                static_cast<unsigned long long>(p.stats.batches),
                static_cast<unsigned long long>(p.stats.max_batch));
    JsonObject jo;
    jo.field("threads", static_cast<std::uint64_t>(p.threads))
        .field("window_events", static_cast<std::uint64_t>(kWindowEvents))
        .field("seconds", p.seconds)
        .field("contacts_per_sec", p.contacts_per_sec)
        .field("speedup", p.speedup)
        .field("windows", p.stats.windows)
        .field("batches", p.stats.batches)
        .field("inline_batches", p.stats.inline_batches)
        .field("parallel_batches", p.stats.parallel_batches)
        .field("max_batch", p.stats.max_batch)
        .field("delivery_ratio", p.results.delivery_ratio)
        .field("forwardings", p.results.forwardings)
        .field("peak_rss_bytes", peak_rss_bytes());
    // Splice the histogram array in raw (JsonObject only does scalars).
    std::string row = jo.str();
    row.insert(row.size() - 1, ", \"batch_size_log2\": " +
                                   histogram_json(p.stats.batch_size_log2));
    rows.push_back(std::move(row));
  }
  write_bench_json("parallel_engine", total.seconds(), rows);

  if (!identical) {
    std::printf("\nFAIL: multi-thread results diverged from serial\n");
    return 1;
  }
  std::printf("\nall thread counts semantically identical to serial\n");

  const unsigned hw = std::thread::hardware_concurrency();
  const double speedup8 = points.back().speedup;
  if (hw >= 8) {
    std::printf("8-thread speedup %.2fx on %u hardware threads (target 3x)\n",
                speedup8, hw);
    if (speedup8 < 3.0) return 1;
  } else {
    std::printf("host has %u hardware thread(s): scaling target (>=3x at 8 "
                "threads) not judged\n",
                hw);
  }
  return 0;
}

}  // namespace
}  // namespace bsub::bench

int main() { return bsub::bench::run(); }
