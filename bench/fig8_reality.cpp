// Reproduces paper Fig. 8(a-c): PUSH / B-SUB / PULL on the MIT Reality
// (3-day slice)-calibrated trace across TTL values.
#include "fig_ttl_sweep.h"

int main() {
  using namespace bsub::bench;
  print_header("Figure 8 — MIT Reality (3-day) trace");
  run_ttl_sweep("Fig. 8", "fig8_reality", reality_scenario());
  std::printf(
      "\nCross-figure check (paper section VII-B): the Reality trace is "
      "sparser,\nso its delivery ratios sit below the Haggle trace's at "
      "equal TTL.\n");
  return 0;
}
