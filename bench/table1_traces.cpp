// Reproduces paper Table I: characteristics of the two evaluation traces.
// Ours are synthetic substitutes calibrated to the published node and
// contact counts (see DESIGN.md section 3).
#include "experiment_common.h"

int main() {
  using namespace bsub::bench;
  print_header("Table I — trace characteristics");

  std::printf("%-28s | %-22s | %-22s\n", "Data set", "Haggle(Infocom'06)",
              "MIT Reality (3-day)");
  std::printf("%-28s | %-22s | %-22s\n", "Device", "iMote (synthetic)",
              "phone (synthetic)");
  std::printf("%-28s | %-22s | %-22s\n", "Communication method", "Bluetooth",
              "Bluetooth");

  const Scenario haggle = haggle_scenario();
  const Scenario reality = reality_scenario();
  const auto hs = haggle.trace.stats();
  const auto rs = reality.trace.stats();

  std::printf("%-28s | %-22.1f | %-22.1f\n", "Duration (days)",
              bsub::util::to_hours(hs.duration) / 24.0,
              bsub::util::to_hours(rs.duration) / 24.0);
  std::printf("%-28s | %-22zu | %-22zu\n", "Number of nodes", hs.node_count,
              rs.node_count);
  std::printf("%-28s | %-22zu | %-22zu\n", "Number of contacts",
              hs.contact_count, rs.contact_count);
  std::printf("%-28s | %-22.1f | %-22.1f\n", "Mean contact duration (s)",
              hs.mean_contact_duration_s, rs.mean_contact_duration_s);
  std::printf("%-28s | %-22.1f | %-22.1f\n", "Mean contacts per node",
              hs.mean_contacts_per_node, rs.mean_contacts_per_node);
  std::printf("%-28s | %-22.1f | %-22.1f\n", "Mean degree (distinct peers)",
              hs.mean_degree, rs.mean_degree);

  std::printf(
      "\nPaper values: Haggle 79 nodes / 67,360 contacts / 3 days; Reality\n"
      "97 nodes / 54,667 contacts (3-day slice used in the simulation).\n");
  return 0;
}
