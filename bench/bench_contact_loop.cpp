// Contact-loop fast path: reference vs. optimized hot loop.
//
// The simulator's inner loop (purge -> encode reports -> match -> transfer)
// is where every experiment binary spends its time. This bench pits the
// seed-faithful reference path (full purge scans, per-contact re-encoding,
// deep message copies; BsubConfig::reference_contact_path = true) against
// the fast path (expiry watermark + index, epoch-cached encodings, shared
// payloads) on the same synthetic scenario, and checks three things:
//
//   1. throughput: contacts/sec must improve by >= 2x,
//   2. semantics: the two paths produce identical RunResults,
//   3. allocation: the steady-state encode path (cache-hit case) performs
//      zero heap allocations per contact, verified by the shared
//      resource_stats.h new/delete counting hooks.
#define BSUB_RESOURCE_STATS_COUNT_ALLOCS
#include "resource_stats.h"

#include "experiment_common.h"

#include "bloom/tcbf_codec.h"
#include "engine/wire.h"

namespace {

using bsub::bench::allocs_now;

struct PathRun {
  bsub::bench::ProtocolRun run;
  double seconds = 0.0;
  std::uint64_t allocs = 0;
};

PathRun run_path(const bsub::trace::ContactTrace& t,
                 const bsub::workload::Workload& w,
                 const bsub::core::BsubConfig& cfg, int reps) {
  using namespace bsub;
  PathRun best;
  best.seconds = 1e300;
  for (int r = 0; r < reps; ++r) {
    core::BsubProtocol proto(cfg);
    const std::uint64_t a0 = allocs_now();
    bench::WallTimer timer;
    metrics::RunResults results = sim::Simulator().run(t, w, proto);
    const double secs = timer.seconds();
    const std::uint64_t allocs = allocs_now() - a0;
    if (secs < best.seconds) {
      best.run.results = std::move(results);
      best.run.traffic = proto.traffic();
      best.run.relay_fpr = proto.measured_relay_fpr();
      best.seconds = secs;
      best.allocs = allocs;
    }
  }
  return best;
}

/// Steady-state encode probe: with warm caches and unchanged filters, a
/// contact's outbound encodings must be pure cache hits with zero heap
/// allocations. Returns the allocation count over `iters` cache-hit rounds.
std::uint64_t steady_state_encode_allocs(std::size_t iters) {
  using namespace bsub;
  const bloom::BloomParams params{256, 4};
  bloom::BloomFilter interest(params);
  bloom::BloomFilter relay_report(params);
  bloom::Tcbf genuine(params, 50.0);
  bloom::Tcbf relay(params, 50.0);
  for (int i = 0; i < 8; ++i) {
    const util::HashPair hp = util::hash_pair("key-" + std::to_string(i));
    interest.insert(hp);
    relay_report.insert(hp);
    genuine.insert(hp);
    relay.insert(hp);
  }

  engine::FrameCache hello, gen, rel;
  bloom::EncodedFilterCache tcbf_cache, bloom_cache;
  // Warm every cache (the one allowed miss per epoch).
  engine::encode_hello_cached(1, true, interest, relay_report, hello);
  engine::encode_genuine_cached(1, genuine, gen);
  engine::encode_relay_cached(1, relay, rel);
  bloom::encode_tcbf_cached(relay, bloom::CounterEncoding::kFull, tcbf_cache);
  bloom::encode_bloom_cached(interest, bloom_cache);

  std::size_t checksum = 0;
  const std::uint64_t a0 = allocs_now();
  for (std::size_t i = 0; i < iters; ++i) {
    checksum +=
        engine::encode_hello_cached(1, true, interest, relay_report, hello)
            .size();
    checksum += engine::encode_genuine_cached(1, genuine, gen).size();
    checksum += engine::encode_relay_cached(1, relay, rel).size();
    checksum += bloom::encode_tcbf_cached(relay, bloom::CounterEncoding::kFull,
                                          tcbf_cache)
                    .size();
    checksum += bloom::encode_bloom_cached(interest, bloom_cache).size();
  }
  const std::uint64_t allocs = allocs_now() - a0;
  if (checksum == 0) std::abort();  // keep the loop observable
  return allocs;
}

}  // namespace

int main() {
  using namespace bsub::bench;
  using namespace bsub;
  print_header("Contact-loop fast path — reference vs optimized hot loop");
  WallTimer wall;

  trace::SyntheticTraceConfig tcfg;
  tcfg.name = "contact_loop";
  tcfg.node_count = 60;
  tcfg.contact_count = 60000;
  tcfg.duration = 3 * util::kDay;
  tcfg.seed = kExperimentSeed;
  const trace::ContactTrace t = trace::generate_trace(tcfg);
  const workload::KeySet keys = workload::twitter_trend_keys();
  workload::WorkloadConfig wcfg;
  wcfg.ttl = 6 * util::kHour;
  wcfg.seed = kExperimentSeed + 1;
  const workload::Workload w(t, keys, wcfg);

  core::BsubConfig cfg;
  cfg.df_per_minute =
      core::compute_df(t, wcfg.ttl, cfg.filter_params, cfg.initial_counter)
          .df_per_minute;

  constexpr int kReps = 3;
  core::BsubConfig ref_cfg = cfg;
  ref_cfg.reference_contact_path = true;
  const PathRun ref = run_path(t, w, ref_cfg, kReps);
  const PathRun fast = run_path(t, w, cfg, kReps);

  const double contacts = static_cast<double>(t.contacts().size());
  const double ref_cps = contacts / ref.seconds;
  const double fast_cps = contacts / fast.seconds;
  const double speedup = ref_cps > 0.0 ? fast_cps / ref_cps : 0.0;

  const bool semantics_match =
      ref.run.results.delivery_ratio == fast.run.results.delivery_ratio &&
      ref.run.results.mean_delay_minutes ==
          fast.run.results.mean_delay_minutes &&
      ref.run.results.message_bytes == fast.run.results.message_bytes &&
      ref.run.results.control_bytes == fast.run.results.control_bytes &&
      ref.run.traffic.broker_transfers == fast.run.traffic.broker_transfers &&
      ref.run.relay_fpr == fast.run.relay_fpr;

  constexpr std::size_t kEncodeIters = 200000;
  const std::uint64_t encode_allocs = steady_state_encode_allocs(kEncodeIters);

  const metrics::HotPathStats& hp = fast.run.results.hot_path;

  std::printf("scenario: %zu nodes, %zu contacts, %zu messages, TTL = 6 h\n\n",
              t.node_count(), t.contacts().size(), w.messages().size());
  std::printf("%-34s | %14s | %14s\n", "", "reference", "fast path");
  std::printf("%-34s | %14.0f | %14.0f\n", "contacts/sec", ref_cps, fast_cps);
  std::printf("%-34s | %14.1f | %14.1f\n", "heap allocs per contact",
              static_cast<double>(ref.allocs) / contacts,
              static_cast<double>(fast.allocs) / contacts);
  std::printf("%-34s | %14.3f | %14.3f\n", "delivery ratio",
              ref.run.results.delivery_ratio, fast.run.results.delivery_ratio);
  std::printf("%-34s | %14llu | %14llu\n", "message bytes",
              static_cast<unsigned long long>(ref.run.results.message_bytes),
              static_cast<unsigned long long>(fast.run.results.message_bytes));
  std::printf("%-34s | %14llu | %14llu\n", "control bytes",
              static_cast<unsigned long long>(ref.run.results.control_bytes),
              static_cast<unsigned long long>(fast.run.results.control_bytes));
  std::printf("\nspeedup: %.2fx (floor: 2x)   semantics identical: %s\n",
              speedup, semantics_match ? "yes" : "NO");
  std::printf("steady-state encode allocs over %zu cache-hit rounds: %llu\n",
              kEncodeIters, static_cast<unsigned long long>(encode_allocs));
  std::printf(
      "fast-path counters: %llu purge scans skipped / %llu run, "
      "%llu encode cache hits / %llu misses, "
      "%llu payload copies avoided / %llu made\n",
      static_cast<unsigned long long>(hp.purge_scans_skipped),
      static_cast<unsigned long long>(hp.purge_scans_run),
      static_cast<unsigned long long>(hp.encode_cache_hits),
      static_cast<unsigned long long>(hp.encode_cache_misses),
      static_cast<unsigned long long>(hp.payload_copies_avoided),
      static_cast<unsigned long long>(hp.payload_copies_made));

  std::vector<std::string> points;
  points.push_back(
      JsonObject()
          .field("path", std::string("reference"))
          .field("contacts_per_sec", ref_cps)
          .field("seconds", ref.seconds)
          .field("allocs", ref.allocs)
          .field("allocs_per_contact", static_cast<double>(ref.allocs) /
                                           contacts)
          .field("message_bytes", ref.run.results.message_bytes)
          .field("control_bytes", ref.run.results.control_bytes)
          .field("delivery_ratio", ref.run.results.delivery_ratio)
          .str());
  points.push_back(
      JsonObject()
          .field("path", std::string("fast"))
          .field("contacts_per_sec", fast_cps)
          .field("seconds", fast.seconds)
          .field("allocs", fast.allocs)
          .field("allocs_per_contact", static_cast<double>(fast.allocs) /
                                           contacts)
          .field("message_bytes", fast.run.results.message_bytes)
          .field("control_bytes", fast.run.results.control_bytes)
          .field("delivery_ratio", fast.run.results.delivery_ratio)
          .field("speedup", speedup)
          .field("semantics_match", std::string(semantics_match ? "yes" : "no"))
          .field("steady_state_encode_allocs", encode_allocs)
          .field("steady_state_encode_iters",
                 static_cast<std::uint64_t>(kEncodeIters))
          .field("peak_rss_bytes", bsub::bench::peak_rss_bytes())
          .field("purge_scans_skipped", hp.purge_scans_skipped)
          .field("purge_scans_run", hp.purge_scans_run)
          .field("encode_cache_hits", hp.encode_cache_hits)
          .field("encode_cache_misses", hp.encode_cache_misses)
          .field("payload_copies_avoided", hp.payload_copies_avoided)
          .field("payload_copies_made", hp.payload_copies_made)
          .str());
  write_bench_json("contact_loop", wall.seconds(), points);

  return (speedup >= 2.0 && semantics_match && encode_allocs == 0) ? 0 : 1;
}
