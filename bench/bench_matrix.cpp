// Scenario x protocol x kernel x threads matrix: every registered protocol
// replayed over every scenario class (two materialized paper traces plus a
// streamed city) on every TCBF kernel backend this machine has, serial and
// 4-threaded, each point fork-isolated so its peak RSS and kernel forcing
// are its own. This is the harness that locks in the baseline-accounting
// fixes: the gates below re-assert the cross-cutting invariants on every
// cell of the matrix, so a protocol that starts double-charging bytes (the
// old SPRAY re-spray bug), charging control bytes it never sends, or
// diverging between kernels or thread counts fails CI, not a reader of
// BENCH_matrix.json.
//
// Gates (exit 1 on violation):
//   1. Deliveries never exceed the workload's expected deliveries.
//   2. Serial == 4-thread: per (scenario, protocol, kernel), all semantic
//      fields identical (node-disjoint conflict batches are order-free).
//   3. Kernel identity: per (scenario, protocol, threads), results are
//      identical across every available backend (the kernels contract:
//      bit-identical filters => bit-identical routing). Skipped when the
//      build has a single backend (-DBSUB_FORCE_SCALAR).
//   4. Flooding dominates: PUSH's delivery ratio is an upper bound for
//      PULL and SPRAY on every scenario (they move strict subsets of the
//      bodies PUSH moves at unconstrained bandwidth).
//   5. SPRAY cost is monotone in its copy budget (haggle sub-sweep): a
//      bigger budget may never move fewer bytes — the delivered-guard fix
//      keeps re-sprays out without deflating legitimate spraying.
//   6. Control-plane class: PULL and B-SUB pay control bytes; PUSH and
//      SPRAY must report exactly zero.
//
// `--smoke` runs the CI slice: haggle x {B-SUB, PUSH} x (<= 2 kernels) x
// {1, 4} threads with gates 1, 2, 3 and 6.
#include "scale_common.h"

#include <cstring>
#include <string>
#include <vector>

#include "bloom/kernels.h"
#include "trace/city.h"

namespace {

using namespace bsub;
using namespace bsub::bench;
namespace kernels = bsub::bloom::kernels;

enum class Scene { kHaggle, kReality, kCity };

const char* scene_name(Scene s) {
  switch (s) {
    case Scene::kHaggle: return "haggle";
    case Scene::kReality: return "reality";
    case Scene::kCity: return "city-stream";
  }
  return "?";
}

/// Placeholder token expanded per scenario in the child: the materialized
/// traces tune DF from Eq. 5 (which needs trace centrality), the streamed
/// city uses the fixed scale default.
constexpr const char* kTunedBsub = "B-SUB@tuned";

constexpr util::Time kMaterializedTtl = 10 * util::kHour;
constexpr std::size_t kCityNodes = 5000;
constexpr std::uint64_t kCityContacts = 100000;
constexpr std::size_t kCityMessages = 200;

/// Plain-old-data result so the forked child can ship it through a pipe.
struct MatrixResult {
  char protocol[96] = {};  ///< the expanded spec actually run
  std::uint64_t interested_deliveries = 0;
  std::uint64_t false_deliveries = 0;
  std::uint64_t expected_deliveries = 0;
  std::uint64_t forwardings = 0;
  std::uint64_t message_bytes = 0;
  std::uint64_t control_bytes = 0;
  double delivery_ratio = 0.0;
  double mean_delay_minutes = 0.0;
  std::uint64_t events = 0;
  double seconds = 0.0;
  double events_per_sec = 0.0;
  std::uint64_t peak_rss_bytes = 0;
  std::uint64_t threads_used = 0;
};

struct MatrixPoint {
  Scene scene;
  std::string protocol;  ///< spec string or kTunedBsub
  kernels::Kind kernel;
  std::size_t threads;
};

/// Everything below runs in the forked child: kernel forcing is process
/// global and the scenario is rebuilt from its deterministic config, so
/// the parent stays small and every point is independent.
MatrixResult run_point(const MatrixPoint& p) {
  kernels::force_kernel(p.kernel);

  sim::SimulatorConfig sim_cfg;
  sim_cfg.threads = p.threads;
  sim::Simulator simulator(sim_cfg);

  MatrixResult out;
  metrics::RunResults results;
  WallTimer timer;
  if (p.scene == Scene::kCity) {
    const trace::CityTraceConfig city =
        trace::city_config(kCityNodes, kCityContacts, kExperimentSeed);
    const util::Time duration =
        static_cast<util::Time>(city.days) * util::kDay;
    auto stream = trace::make_city_stream(city);
    const workload::KeySet keys = workload::twitter_trend_keys();
    const workload::Workload w = make_scale_workload(
        keys, kCityNodes, kCityMessages, duration, kExperimentSeed);
    const std::string spec =
        p.protocol == kTunedBsub ? kScaleDefaultProtocol : p.protocol;
    results = simulator.run(*stream, w, protocol_registry(), spec);
    std::snprintf(out.protocol, sizeof out.protocol, "%s", spec.c_str());
  } else {
    const Scenario s = p.scene == Scene::kHaggle ? haggle_scenario()
                                                 : reality_scenario();
    const workload::Workload w = s.make_workload(kMaterializedTtl);
    const std::string spec =
        p.protocol == kTunedBsub
            ? core::bsub_spec(bsub_config_for(s, kMaterializedTtl))
            : p.protocol;
    results = simulator.run(s.trace, w, protocol_registry(), spec);
    std::snprintf(out.protocol, sizeof out.protocol, "%s", spec.c_str());
  }
  out.seconds = timer.seconds();
  out.interested_deliveries = results.interested_deliveries;
  out.false_deliveries = results.false_deliveries;
  out.expected_deliveries = results.expected_deliveries;
  out.forwardings = results.forwardings;
  out.message_bytes = results.message_bytes;
  out.control_bytes = results.control_bytes;
  out.delivery_ratio = results.delivery_ratio;
  out.mean_delay_minutes = results.mean_delay_minutes;
  out.events = simulator.last_run_stats().events;
  out.events_per_sec =
      out.seconds > 0.0 ? static_cast<double>(out.events) / out.seconds : 0.0;
  out.peak_rss_bytes = peak_rss_bytes();
  out.threads_used = simulator.last_run_stats().threads_used;
  return out;
}

/// The fields two runs of the same (scenario, protocol) must agree on
/// regardless of kernel backend or thread count. Delays are computed from
/// deterministic integer timestamps, so even the doubles compare exactly.
bool semantically_identical(const MatrixResult& a, const MatrixResult& b) {
  return a.interested_deliveries == b.interested_deliveries &&
         a.false_deliveries == b.false_deliveries &&
         a.expected_deliveries == b.expected_deliveries &&
         a.forwardings == b.forwardings &&
         a.message_bytes == b.message_bytes &&
         a.control_bytes == b.control_bytes &&
         a.delivery_ratio == b.delivery_ratio &&
         a.mean_delay_minutes == b.mean_delay_minutes;
}

bool is_protocol(const MatrixResult& r, const char* prefix) {
  return std::strncmp(r.protocol, prefix, std::strlen(prefix)) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  std::vector<kernels::Kind> backends;
  for (kernels::Kind k : {kernels::Kind::kScalar, kernels::Kind::kBlocked,
                          kernels::Kind::kAvx2, kernels::Kind::kNeon}) {
    if (kernels::available(k)) backends.push_back(k);
  }
  if (smoke && backends.size() > 2) backends.resize(2);

  const std::vector<Scene> scenes =
      smoke ? std::vector<Scene>{Scene::kHaggle}
            : std::vector<Scene>{Scene::kHaggle, Scene::kReality,
                                 Scene::kCity};
  const std::vector<std::string> protocols =
      smoke ? std::vector<std::string>{kTunedBsub, "PUSH"}
            : std::vector<std::string>{kTunedBsub, "PUSH", "PULL",
                                       "SPRAY:copies=3"};
  const std::vector<std::size_t> thread_counts = {1, 4};

  std::vector<MatrixPoint> points;
  for (Scene scene : scenes) {
    for (const std::string& protocol : protocols) {
      for (kernels::Kind kernel : backends) {
        for (std::size_t threads : thread_counts) {
          points.push_back({scene, protocol, kernel, threads});
        }
      }
    }
  }
  // SPRAY budget sub-sweep for the monotone-bytes gate; copies=3 is already
  // in the main grid at (haggle, backends[0], 1 thread).
  std::size_t first_extra = points.size();
  if (!smoke) {
    for (std::uint32_t copies : {1u, 8u}) {
      points.push_back({Scene::kHaggle,
                        "SPRAY:copies=" + std::to_string(copies), backends[0],
                        1});
    }
  }

  print_header(smoke ? "Scenario x protocol matrix (CI smoke slice)"
                     : "Scenario x protocol x kernel x threads matrix");
  std::printf("%zu points: %zu scenario(s) x %zu protocol(s) x %zu "
              "kernel(s) x {1,4} threads\n\n",
              points.size(), scenes.size(), protocols.size(),
              backends.size());
  WallTimer wall;

  std::printf("%-11s | %-26s | %-7s | %2s | %8s | %9s | %11s | %11s | %8s\n",
              "scenario", "protocol", "kernel", "T", "delivery", "forwards",
              "msg bytes", "ctl bytes", "RSS MiB");

  std::vector<MatrixResult> results(points.size());
  bool all_ok = true;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const MatrixPoint& p = points[i];
    if (!run_isolated([&] { return run_point(p); }, results[i])) {
      std::fprintf(stderr, "point %s x %s x %s x %zu FAILED to run\n",
                   scene_name(p.scene), p.protocol.c_str(),
                   std::string(kernels::kind_name(p.kernel)).c_str(),
                   p.threads);
      all_ok = false;
      continue;
    }
    const MatrixResult& r = results[i];
    std::printf(
        "%-11s | %-26s | %-7s | %2llu | %8.3f | %9llu | %11llu | %11llu "
        "| %8.1f\n",
        scene_name(p.scene), r.protocol,
        std::string(kernels::kind_name(p.kernel)).c_str(),
        static_cast<unsigned long long>(r.threads_used), r.delivery_ratio,
        static_cast<unsigned long long>(r.forwardings),
        static_cast<unsigned long long>(r.message_bytes),
        static_cast<unsigned long long>(r.control_bytes),
        static_cast<double>(r.peak_rss_bytes) / (1 << 20));
  }

  // Gate 1: deliveries bounded by the workload's expectation, every point.
  for (std::size_t i = 0; i < points.size(); ++i) {
    const MatrixResult& r = results[i];
    if (r.events == 0) continue;
    if (r.interested_deliveries > r.expected_deliveries) {
      std::fprintf(stderr,
                   "gate 1 violation: %s/%s delivered %llu > expected %llu\n",
                   scene_name(points[i].scene), r.protocol,
                   static_cast<unsigned long long>(r.interested_deliveries),
                   static_cast<unsigned long long>(r.expected_deliveries));
      all_ok = false;
    }
  }

  // Gate 2: serial == parallel per (scenario, protocol, kernel).
  // Gate 3: kernel-independent per (scenario, protocol, threads).
  for (std::size_t i = 0; i < first_extra; ++i) {
    for (std::size_t j = i + 1; j < first_extra; ++j) {
      if (points[i].scene != points[j].scene ||
          points[i].protocol != points[j].protocol) {
        continue;
      }
      if (results[i].events == 0 || results[j].events == 0) continue;
      const bool same_kernel = points[i].kernel == points[j].kernel;
      const bool same_threads = points[i].threads == points[j].threads;
      if (same_kernel == same_threads) continue;  // differs in both or none
      if (!semantically_identical(results[i], results[j])) {
        std::fprintf(
            stderr,
            "gate %d violation: %s/%s diverges between %s/%zu-thread and "
            "%s/%zu-thread\n",
            same_kernel ? 2 : 3, scene_name(points[i].scene),
            results[i].protocol,
            std::string(kernels::kind_name(points[i].kernel)).c_str(),
            points[i].threads,
            std::string(kernels::kind_name(points[j].kernel)).c_str(),
            points[j].threads);
        all_ok = false;
      }
    }
  }
  std::printf("\ndeterminism: serial==parallel and %zu kernel backend(s) "
              "cross-checked on every cell\n",
              backends.size());

  // Gates 4 and 6 on the serial, first-backend column of each scenario.
  for (Scene scene : scenes) {
    const MatrixResult* push = nullptr;
    for (std::size_t i = 0; i < first_extra; ++i) {
      if (points[i].scene != scene || points[i].threads != 1 ||
          points[i].kernel != backends[0] || results[i].events == 0) {
        continue;
      }
      if (is_protocol(results[i], "PUSH")) push = &results[i];
    }
    for (std::size_t i = 0; i < first_extra; ++i) {
      if (points[i].scene != scene || points[i].threads != 1 ||
          points[i].kernel != backends[0] || results[i].events == 0) {
        continue;
      }
      const MatrixResult& r = results[i];
      const bool has_control_plane =
          is_protocol(r, "B-SUB") || is_protocol(r, "PULL");
      if (has_control_plane ? r.control_bytes == 0 : r.control_bytes != 0) {
        std::fprintf(stderr,
                     "gate 6 violation: %s/%s reports %llu control bytes\n",
                     scene_name(scene), r.protocol,
                     static_cast<unsigned long long>(r.control_bytes));
        all_ok = false;
      }
      const bool push_bounded =
          is_protocol(r, "PULL") || is_protocol(r, "SPRAY");
      if (push != nullptr && push_bounded &&
          r.delivery_ratio > push->delivery_ratio) {
        std::fprintf(stderr,
                     "gate 4 violation: %s/%s delivers %.4f > PUSH %.4f\n",
                     scene_name(scene), r.protocol, r.delivery_ratio,
                     push->delivery_ratio);
        all_ok = false;
      }
    }
  }

  // Gate 5: SPRAY bytes monotone in the copy budget (full matrix only).
  if (!smoke) {
    const MatrixResult* by_copies[3] = {};  // copies 1, 3, 8
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (points[i].scene != Scene::kHaggle || points[i].threads != 1 ||
          points[i].kernel != backends[0] || results[i].events == 0 ||
          !is_protocol(results[i], "SPRAY")) {
        continue;
      }
      if (std::strcmp(results[i].protocol, "SPRAY:copies=1") == 0)
        by_copies[0] = &results[i];
      if (std::strcmp(results[i].protocol, "SPRAY:copies=3") == 0)
        by_copies[1] = &results[i];
      if (std::strcmp(results[i].protocol, "SPRAY:copies=8") == 0)
        by_copies[2] = &results[i];
    }
    if (by_copies[0] != nullptr && by_copies[1] != nullptr &&
        by_copies[2] != nullptr) {
      std::printf("spray budget (haggle): copies 1/3/8 move %llu/%llu/%llu "
                  "message bytes\n",
                  static_cast<unsigned long long>(by_copies[0]->message_bytes),
                  static_cast<unsigned long long>(by_copies[1]->message_bytes),
                  static_cast<unsigned long long>(by_copies[2]->message_bytes));
      if (by_copies[0]->message_bytes > by_copies[1]->message_bytes ||
          by_copies[1]->message_bytes > by_copies[2]->message_bytes) {
        std::fprintf(stderr,
                     "gate 5 violation: SPRAY bytes not monotone in copies\n");
        all_ok = false;
      }
    } else {
      std::fprintf(stderr, "gate 5 violation: spray budget points missing\n");
      all_ok = false;
    }
  }

  std::vector<std::string> json_points;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const MatrixResult& r = results[i];
    if (r.events == 0) continue;
    json_points.push_back(
        JsonObject()
            .field("scenario", std::string(scene_name(points[i].scene)))
            .field("protocol", std::string(r.protocol))
            .field("kernel",
                   std::string(kernels::kind_name(points[i].kernel)))
            .field("threads", r.threads_used)
            .field("delivery_ratio", r.delivery_ratio)
            .field("deliveries", r.interested_deliveries)
            .field("false_deliveries", r.false_deliveries)
            .field("expected_deliveries", r.expected_deliveries)
            .field("forwardings", r.forwardings)
            .field("message_bytes", r.message_bytes)
            .field("control_bytes", r.control_bytes)
            .field("mean_delay_minutes", r.mean_delay_minutes)
            .field("events", r.events)
            .field("seconds", r.seconds)
            .field("events_per_sec", r.events_per_sec)
            .field("peak_rss_bytes", r.peak_rss_bytes)
            .str());
  }
  write_bench_json(smoke ? "matrix_smoke" : "matrix", wall.seconds(),
                   json_points);
  std::printf("matrix: %s\n", all_ok ? "all gates passed" : "FAILED");
  return all_ok ? 0 : 1;
}
