// City-scale streaming sweep: nodes x contacts, each point in its own
// process so its peak RSS is meaningful.
//
// The claim under test is the streaming contact plane plus the lazy/pooled
// node state: peak memory is O(idle floor + materialized participant state
// + one scheduling window). Contacts are free to *activate* state (a node
// that meets enough peers becomes a broker and materializes its ~2 KiB
// relay filter — that is protocol behavior, not overhead) but must not leak
// per-event memory. Every point streams a trace::make_city_stream scenario
// through B-SUB on the simulator substrate — no point ever materializes its
// trace, including the 10^6-node, 10^7-contact corner.
//
// Gates (exit 1 on violation):
//   1. RSS flatness, activity-adjusted: for each node count with two
//      contact volumes, the high-contact point's peak RSS must stay within
//      noise of the low-contact point's after crediting the extra
//      ever-brokers it legitimately materialized (ratio <= 1.25 + 32 MiB
//      absolute slack + kPerBrokerBytes per extra materialized relay). A
//      contact-proportional leak still trips this: the credit scales with
//      relays (capped at one per node), not with events.
//   2. Throughput floor: every setup-amortized point (events >= nodes) must
//      sustain >= 25k events/sec — a coarse pathology catch (accidental
//      O(n^2), lost batching), set 2-4x under observed single-core rates so
//      slower CI runners don't trip it on noise.
//   3. Bytes/node ceiling: every point's peak RSS per node must fit the
//      lazy-state budget kPerNodeFloor + kBaseRss/nodes +
//      relays*kPerBrokerBytes/nodes. The historical eager layout (one relay
//      filter + window maps per node, ~6.4 KB/node at 10^6 nodes) violates
//      this by 4x and more at every large point; the measured lazy layout
//      clears it with >= 10% margin (459 B/node at the 10^6 x 10^5 point).
//
// `--smoke` runs the CI subset (10^4 nodes at 10^5 and 10^6 contacts) with
// the same gates; the full sweep climbs to 10^6 nodes and 10^7 contacts.
#include "scale_common.h"

#include <algorithm>
#include <cstring>
#include <vector>

namespace {

using namespace bsub;
using namespace bsub::bench;

constexpr double kRssRatioCeiling = 1.25;
constexpr std::uint64_t kRssAbsoluteSlack = 32ull << 20;  // 32 MiB
constexpr double kThroughputFloorEps = 25000.0;           // events/sec
// Bytes/node budget terms (gate 3). kPerNodeFloor covers the always-paid
// slots/handles/indices; kBaseRss the process baseline (binary, stream
// window, workload); kPerBrokerBytes one materialized participant's state
// (2 KB relay TCBF + shadow + election ring/table + message bookkeeping).
constexpr double kPerNodeFloorBytes = 640.0;
constexpr double kBaseRssBytes = 16.0 * (1 << 20);  // 16 MiB
constexpr double kPerBrokerBytes = 5120.0;

struct NamedPoint {
  ScalePoint point;
  /// Points sharing a pair_id differ only in contact count; each pair is an
  /// RSS-flatness gate.
  int pair_id = -1;
};

std::vector<NamedPoint> smoke_points() {
  return {
      {{10000, 100000}, 0},
      {{10000, 1000000}, 0},
  };
}

std::vector<NamedPoint> full_points() {
  return {
      {{1000, 100000}, -1},
      {{10000, 100000}, 0},
      {{10000, 1000000}, 0},
      {{100000, 1000000}, 1},
      {{100000, 10000000}, 1},
      {{1000000, 100000}, 2},
      {{1000000, 10000000}, 2},
  };
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  print_header(smoke ? "City-scale streaming sweep (CI smoke subset)"
                     : "City-scale streaming sweep");
  WallTimer wall;

  const std::vector<NamedPoint> points = smoke ? smoke_points() : full_points();

  std::printf("%10s | %12s | %8s | %12s | %12s | %10s | %12s | %9s\n", "nodes",
              "contacts", "seconds", "events/sec", "peak RSS MiB",
              "bytes/node", "ever-brokers", "delivered");

  std::vector<ScaleResult> results;
  std::vector<std::string> json_points;
  bool all_ok = true;
  for (const NamedPoint& np : points) {
    ScaleResult r;
    if (!run_scale_point_isolated(np.point, kExperimentSeed, /*threads=*/1,
                                  r)) {
      std::fprintf(stderr, "point %zu nodes x %llu contacts FAILED to run\n",
                   np.point.nodes,
                   static_cast<unsigned long long>(np.point.contacts));
      all_ok = false;
      results.push_back(ScaleResult{});
      continue;
    }
    results.push_back(r);
    std::printf("%10zu | %12llu | %8.2f | %12.0f | %12.1f | %10.0f | %12llu "
                "| %9llu\n",
                np.point.nodes,
                static_cast<unsigned long long>(np.point.contacts), r.seconds,
                r.events_per_sec,
                static_cast<double>(r.peak_rss_bytes) / (1 << 20),
                r.bytes_per_node,
                static_cast<unsigned long long>(r.materialized_relays),
                static_cast<unsigned long long>(r.deliveries));
    json_points.push_back(
        JsonObject()
            .field("nodes", static_cast<std::uint64_t>(np.point.nodes))
            .field("contacts", np.point.contacts)
            .field("events", r.events)
            .field("seconds", r.seconds)
            .field("events_per_sec", r.events_per_sec)
            .field("peak_rss_bytes", r.peak_rss_bytes)
            .field("bytes_per_node", r.bytes_per_node)
            .field("materialized_relays", r.materialized_relays)
            .field("election_state_bytes", r.election_state_bytes)
            .field("deliveries", r.deliveries)
            .field("delivery_ratio", r.delivery_ratio)
            .field("forwardings", r.forwardings)
            .str());
  }

  // Gate 1: peak RSS must not grow with the contact count at a fixed node
  // count, beyond the state the extra contacts legitimately materialized
  // (more meetings -> more ever-brokers -> more relay filters; bounded by
  // one per node, so a per-event leak cannot hide in the credit).
  for (int pair = 0;; ++pair) {
    const ScaleResult* lo = nullptr;
    const ScaleResult* hi = nullptr;
    std::size_t nodes = 0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (points[i].pair_id != pair) continue;
      nodes = points[i].point.nodes;
      (lo == nullptr ? lo : hi) = &results[i];
    }
    if (lo == nullptr) break;
    if (hi == nullptr || lo->events == 0 || hi->events == 0) continue;
    const std::uint64_t extra_relays =
        hi->materialized_relays > lo->materialized_relays
            ? hi->materialized_relays - lo->materialized_relays
            : 0;
    const std::uint64_t ceiling =
        static_cast<std::uint64_t>(static_cast<double>(lo->peak_rss_bytes) *
                                   kRssRatioCeiling) +
        kRssAbsoluteSlack +
        static_cast<std::uint64_t>(static_cast<double>(extra_relays) *
                                   kPerBrokerBytes);
    const bool flat = hi->peak_rss_bytes <= ceiling;
    std::printf(
        "RSS flatness @ %zu nodes: %.1f MiB (%llu contacts) -> %.1f MiB "
        "(%llu contacts), +%llu relays, ceiling %.1f MiB: %s\n",
        nodes, static_cast<double>(lo->peak_rss_bytes) / (1 << 20),
        static_cast<unsigned long long>(lo->events),
        static_cast<double>(hi->peak_rss_bytes) / (1 << 20),
        static_cast<unsigned long long>(hi->events),
        static_cast<unsigned long long>(extra_relays),
        static_cast<double>(ceiling) / (1 << 20), flat ? "OK" : "VIOLATION");
    if (!flat) all_ok = false;
  }

  // Gate 2: throughput floor. Judged only where events >= nodes: wall time
  // includes protocol setup, which is O(nodes) (per-node slots/indices), so
  // a sparse point at a huge node count measures setup, not the per-event
  // contact plane. Such points exist in the sweep purely as RSS baselines.
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (results[i].events == 0) continue;
    if (results[i].events < points[i].point.nodes) {
      std::printf("throughput @ %zu nodes x %llu contacts: %.0f events/sec "
                  "(setup-dominated, floor not judged)\n",
                  points[i].point.nodes,
                  static_cast<unsigned long long>(points[i].point.contacts),
                  results[i].events_per_sec);
      continue;
    }
    if (results[i].events_per_sec < kThroughputFloorEps) {
      std::fprintf(stderr,
                   "throughput floor violation: %zu nodes x %llu contacts "
                   "ran at %.0f events/sec (floor %.0f)\n",
                   points[i].point.nodes,
                   static_cast<unsigned long long>(points[i].point.contacts),
                   results[i].events_per_sec, kThroughputFloorEps);
      all_ok = false;
    }
  }

  // Gate 3: per-node memory floor. Each point's RSS per node must fit the
  // lazy-state budget: the always-paid floor, the amortized process
  // baseline, and the participant state its materialized relays justify.
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ScaleResult& r = results[i];
    if (r.events == 0) continue;
    const double nodes = static_cast<double>(points[i].point.nodes);
    const double budget =
        kPerNodeFloorBytes + kBaseRssBytes / nodes +
        static_cast<double>(r.materialized_relays) * kPerBrokerBytes / nodes;
    const bool ok = r.bytes_per_node <= budget;
    std::printf("bytes/node @ %zu nodes x %llu contacts: %.0f (budget %.0f, "
                "%llu relays): %s\n",
                points[i].point.nodes,
                static_cast<unsigned long long>(points[i].point.contacts),
                r.bytes_per_node, budget,
                static_cast<unsigned long long>(r.materialized_relays),
                ok ? "OK" : "VIOLATION");
    if (!ok) all_ok = false;
  }

  write_bench_json(smoke ? "scale_sweep_smoke" : "scale_sweep", wall.seconds(),
                   json_points);
  std::printf("scale sweep: %s\n", all_ok ? "all gates passed" : "FAILED");
  return all_ok ? 0 : 1;
}
