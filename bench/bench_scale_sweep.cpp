// City-scale streaming sweep: nodes x contacts, each point in its own
// process so its peak RSS is meaningful.
//
// The claim under test is the tentpole of the streaming contact plane: peak
// memory is O(node state + one scheduling window), *flat in the contact
// count*. Every point streams a trace::make_city_stream scenario through
// B-SUB on the simulator substrate — no point ever materializes its trace,
// including the 10^6-node, 10^7-contact corner.
//
// Gates (exit 1 on violation):
//   1. RSS flatness: for each node count with two contact volumes, the
//      high-contact point's peak RSS must stay within noise of the
//      low-contact point's (ratio <= 1.25 + 32 MiB absolute slack).
//   2. Throughput floor: every setup-amortized point (events >= nodes) must
//      sustain >= 25k events/sec — a coarse pathology catch (accidental
//      O(n^2), lost batching), set 2-4x under observed single-core rates so
//      slower CI runners don't trip it on noise.
//
// `--smoke` runs the CI subset (10^4 nodes at 10^5 and 10^6 contacts) with
// the same gates; the full sweep climbs to 10^6 nodes and 10^7 contacts.
#include "scale_common.h"

#include <cstring>
#include <vector>

namespace {

using namespace bsub;
using namespace bsub::bench;

constexpr double kRssRatioCeiling = 1.25;
constexpr std::uint64_t kRssAbsoluteSlack = 32ull << 20;  // 32 MiB
constexpr double kThroughputFloorEps = 25000.0;           // events/sec

struct NamedPoint {
  ScalePoint point;
  /// Points sharing a pair_id differ only in contact count; each pair is an
  /// RSS-flatness gate.
  int pair_id = -1;
};

std::vector<NamedPoint> smoke_points() {
  return {
      {{10000, 100000}, 0},
      {{10000, 1000000}, 0},
  };
}

std::vector<NamedPoint> full_points() {
  return {
      {{1000, 100000}, -1},
      {{10000, 100000}, 0},
      {{10000, 1000000}, 0},
      {{100000, 1000000}, 1},
      {{100000, 10000000}, 1},
      {{1000000, 100000}, 2},
      {{1000000, 10000000}, 2},
  };
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  print_header(smoke ? "City-scale streaming sweep (CI smoke subset)"
                     : "City-scale streaming sweep");
  WallTimer wall;

  const std::vector<NamedPoint> points = smoke ? smoke_points() : full_points();

  std::printf("%10s | %12s | %10s | %12s | %12s | %9s\n", "nodes", "contacts",
              "seconds", "events/sec", "peak RSS MiB", "delivered");

  std::vector<ScaleResult> results;
  std::vector<std::string> json_points;
  bool all_ok = true;
  for (const NamedPoint& np : points) {
    ScaleResult r;
    if (!run_scale_point_isolated(np.point, kExperimentSeed, /*threads=*/1,
                                  r)) {
      std::fprintf(stderr, "point %zu nodes x %llu contacts FAILED to run\n",
                   np.point.nodes,
                   static_cast<unsigned long long>(np.point.contacts));
      all_ok = false;
      results.push_back(ScaleResult{});
      continue;
    }
    results.push_back(r);
    std::printf("%10zu | %12llu | %10.2f | %12.0f | %12.1f | %9llu\n",
                np.point.nodes,
                static_cast<unsigned long long>(np.point.contacts), r.seconds,
                r.events_per_sec,
                static_cast<double>(r.peak_rss_bytes) / (1 << 20),
                static_cast<unsigned long long>(r.deliveries));
    json_points.push_back(
        JsonObject()
            .field("nodes", static_cast<std::uint64_t>(np.point.nodes))
            .field("contacts", np.point.contacts)
            .field("events", r.events)
            .field("seconds", r.seconds)
            .field("events_per_sec", r.events_per_sec)
            .field("peak_rss_bytes", r.peak_rss_bytes)
            .field("deliveries", r.deliveries)
            .field("delivery_ratio", r.delivery_ratio)
            .field("forwardings", r.forwardings)
            .str());
  }

  // Gate 1: peak RSS must not grow with the contact count at a fixed node
  // count (within measurement noise).
  for (int pair = 0;; ++pair) {
    const ScaleResult* lo = nullptr;
    const ScaleResult* hi = nullptr;
    std::size_t nodes = 0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (points[i].pair_id != pair) continue;
      nodes = points[i].point.nodes;
      (lo == nullptr ? lo : hi) = &results[i];
    }
    if (lo == nullptr) break;
    if (hi == nullptr || lo->events == 0 || hi->events == 0) continue;
    const std::uint64_t ceiling =
        static_cast<std::uint64_t>(static_cast<double>(lo->peak_rss_bytes) *
                                   kRssRatioCeiling) +
        kRssAbsoluteSlack;
    const bool flat = hi->peak_rss_bytes <= ceiling;
    std::printf(
        "RSS flatness @ %zu nodes: %.1f MiB (%llu contacts) -> %.1f MiB "
        "(%llu contacts), ceiling %.1f MiB: %s\n",
        nodes, static_cast<double>(lo->peak_rss_bytes) / (1 << 20),
        static_cast<unsigned long long>(lo->events),
        static_cast<double>(hi->peak_rss_bytes) / (1 << 20),
        static_cast<unsigned long long>(hi->events),
        static_cast<double>(ceiling) / (1 << 20), flat ? "OK" : "VIOLATION");
    if (!flat) all_ok = false;
  }

  // Gate 2: throughput floor. Judged only where events >= nodes: wall time
  // includes protocol setup, which is O(nodes) (per-node filters/buffers),
  // so a sparse point at a huge node count measures setup, not the per-event
  // contact plane. Such points exist in the sweep purely as RSS baselines.
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (results[i].events == 0) continue;
    if (results[i].events < points[i].point.nodes) {
      std::printf("throughput @ %zu nodes x %llu contacts: %.0f events/sec "
                  "(setup-dominated, floor not judged)\n",
                  points[i].point.nodes,
                  static_cast<unsigned long long>(points[i].point.contacts),
                  results[i].events_per_sec);
      continue;
    }
    if (results[i].events_per_sec < kThroughputFloorEps) {
      std::fprintf(stderr,
                   "throughput floor violation: %zu nodes x %llu contacts "
                   "ran at %.0f events/sec (floor %.0f)\n",
                   points[i].point.nodes,
                   static_cast<unsigned long long>(points[i].point.contacts),
                   results[i].events_per_sec, kThroughputFloorEps);
      all_ok = false;
    }
  }

  write_bench_json(smoke ? "scale_sweep_smoke" : "scale_sweep", wall.seconds(),
                   json_points);
  std::printf("scale sweep: %s\n", all_ok ? "all gates passed" : "FAILED");
  return all_ok ? 0 : 1;
}
