// Ablation: effective link bandwidth. The paper argues B-SUB's dozens-of-
// bytes control messages make it suitable for constrained radios; this
// sweep starves the per-contact byte budget and watches PUSH collapse while
// B-SUB and PULL degrade gracefully.
#include "experiment_common.h"

int main() {
  using namespace bsub::bench;
  using namespace bsub;
  print_header("Ablation — effective bandwidth (section VII-A radio model)");

  const Scenario scenario = haggle_scenario();
  const util::Time ttl = 10 * util::kHour;
  const workload::Workload w = scenario.make_workload(ttl);
  const core::BsubConfig cfg = bsub_config_for(scenario, ttl);

  std::printf("trace: %s, TTL = 10 h (paper's effective rate: 31250 B/s)\n\n",
              scenario.trace.name().c_str());
  std::printf("%10s | %25s | %23s\n", "", "delivery ratio",
              "control bytes (MB)");
  std::printf("%10s | %7s %8s %7s | %7s %8s %6s\n", "B/s", "PUSH", "B-SUB",
              "PULL", "PUSH", "B-SUB", "PULL");
  for (double bps : {50.0, 200.0, 1000.0, 31250.0}) {
    sim::SimulatorConfig scfg;
    scfg.bandwidth_bytes_per_second = bps;
    sim::Simulator sim(scfg);

    routing::PushProtocol push;
    const auto rp = sim.run(scenario.trace, w, push);
    core::BsubProtocol bsub(cfg);
    const auto rb = sim.run(scenario.trace, w, bsub);
    routing::PullProtocol pull;
    const auto rl = sim.run(scenario.trace, w, pull);

    auto mb = [](std::uint64_t b) { return static_cast<double>(b) / 1e6; };
    std::printf("%10.0f | %7.3f %8.3f %7.3f | %7.2f %8.2f %6.2f\n", bps,
                rp.delivery_ratio, rb.delivery_ratio, rl.delivery_ratio,
                mb(rp.control_bytes), mb(rb.control_bytes),
                mb(rl.control_bytes));
  }
  std::printf(
      "\nExpected: at Bluetooth-scale budgets everyone is unconstrained; as "
      "the\nbudget starves, flooding (PUSH) loses the most delivery while "
      "B-SUB's tiny\nfilter exchanges keep working.\n");
  return 0;
}
