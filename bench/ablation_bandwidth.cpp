// Ablation: effective link bandwidth. The paper argues B-SUB's dozens-of-
// bytes control messages make it suitable for constrained radios; this
// sweep starves the per-contact byte budget and watches PUSH collapse while
// B-SUB and PULL degrade gracefully. Each budget point owns its simulator,
// so the sweep runs on the parallel runner.
#include "experiment_common.h"

int main() {
  using namespace bsub::bench;
  using namespace bsub;
  print_header("Ablation — effective bandwidth (section VII-A radio model)");

  const Scenario scenario = haggle_scenario();
  const util::Time ttl = 10 * util::kHour;
  const workload::Workload w = scenario.make_workload(ttl);
  const core::BsubConfig cfg = bsub_config_for(scenario, ttl);

  struct Row {
    metrics::RunResults push, bsub, pull;
  };

  WallTimer timer;
  const std::vector<double> budgets = {50.0, 200.0, 1000.0, 31250.0};
  const std::vector<Row> rows = run_points_parallel(budgets, [&](double bps) {
    sim::SimulatorConfig scfg;
    scfg.bandwidth_bytes_per_second = bps;
    sim::Simulator sim(scfg);

    Row r;
    r.push = sim.run(scenario.trace, w, protocol_registry(), "PUSH");
    r.bsub =
        sim.run(scenario.trace, w, protocol_registry(), core::bsub_spec(cfg));
    r.pull = sim.run(scenario.trace, w, protocol_registry(), "PULL");
    return r;
  });

  std::printf("trace: %s, TTL = 10 h (paper's effective rate: 31250 B/s)\n\n",
              scenario.trace.name().c_str());
  std::printf("%10s | %25s | %23s\n", "", "delivery ratio",
              "control bytes (MB)");
  std::printf("%10s | %7s %8s %7s | %7s %8s %6s\n", "B/s", "PUSH", "B-SUB",
              "PULL", "PUSH", "B-SUB", "PULL");
  auto mb = [](std::uint64_t b) { return static_cast<double>(b) / 1e6; };
  std::vector<std::string> points;
  for (std::size_t i = 0; i < budgets.size(); ++i) {
    const Row& r = rows[i];
    std::printf("%10.0f | %7.3f %8.3f %7.3f | %7.2f %8.2f %6.2f\n",
                budgets[i], r.push.delivery_ratio, r.bsub.delivery_ratio,
                r.pull.delivery_ratio, mb(r.push.control_bytes),
                mb(r.bsub.control_bytes), mb(r.pull.control_bytes));
    points.push_back(JsonObject()
                         .field("bytes_per_second", budgets[i])
                         .field("push_delivery", r.push.delivery_ratio)
                         .field("bsub_delivery", r.bsub.delivery_ratio)
                         .field("pull_delivery", r.pull.delivery_ratio)
                         .field("push_control_bytes", r.push.control_bytes)
                         .field("bsub_control_bytes", r.bsub.control_bytes)
                         .field("pull_control_bytes", r.pull.control_bytes)
                         .str());
  }
  std::printf(
      "\nExpected: at Bluetooth-scale budgets everyone is unconstrained; as "
      "the\nbudget starves, flooding (PUSH) loses the most delivery while "
      "B-SUB's tiny\nfilter exchanges keep working.\n");
  write_bench_json("ablation_bandwidth", timer.seconds(), points);
  return 0;
}
