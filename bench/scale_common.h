// Shared plumbing for the city-scale streaming sweep: one-point runners,
// a deterministic scale workload, and process isolation for per-point peak
// RSS measurement. Used by bench_scale_sweep (the gated harness) and the
// bsub_scale CLI (one point, interactive).
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>

#include "core/bsub_protocol.h"
#include "experiment_common.h"
#include "fork_util.h"
#include "resource_stats.h"
#include "sim/simulator.h"
#include "trace/city.h"
#include "workload/workload.h"

namespace bsub::bench {

/// One sweep point: a city of `nodes` replayed over ~`contacts` contact
/// events (the commuter budget; flash crowds add a few percent on top).
struct ScalePoint {
  std::size_t nodes = 0;
  std::uint64_t contacts = 0;
  /// Messages in the workload. Constant by default so the contact axis of
  /// the sweep is the only thing that grows; 0 gives a pure contact-plane
  /// run (useful to attribute RSS between the stream and protocol state).
  std::size_t messages = 200;
};

/// Plain-old-data result so a forked child can ship it through a pipe.
struct ScaleResult {
  std::uint64_t events = 0;        ///< contacts + message creations replayed
  double seconds = 0.0;
  double events_per_sec = 0.0;
  std::uint64_t peak_rss_bytes = 0;
  /// Peak RSS divided by the point's node count: the per-node memory floor
  /// this run demonstrated (includes the process baseline, so it is an
  /// upper bound on true protocol state per node — tightest at large node
  /// counts where the baseline amortizes away).
  double bytes_per_node = 0.0;
  std::uint64_t deliveries = 0;
  double delivery_ratio = 0.0;
  std::uint64_t forwardings = 0;
  std::size_t threads_used = 0;
  /// Lazy-state observability: how many nodes ever materialized relay
  /// state (≈ ever-broker count) and what the election's pooled windows
  /// reserved — the two main activity-driven memory terms.
  std::uint64_t materialized_relays = 0;
  std::uint64_t election_state_bytes = 0;
};

/// Deterministic workload for a city of `node_count` nodes over `duration`:
/// every node subscribes to one key round-robin; `message_count` messages
/// with hash-spread producers and evenly spread creation times. Built from
/// the explicit Workload constructor — no trace required, so the scenario
/// never materializes.
inline workload::Workload make_scale_workload(const workload::KeySet& keys,
                                              std::size_t node_count,
                                              std::size_t message_count,
                                              util::Time duration,
                                              std::uint64_t seed) {
  std::vector<workload::KeyId> interests(node_count);
  for (std::size_t n = 0; n < node_count; ++n) {
    interests[n] = static_cast<workload::KeyId>(n % keys.size());
  }
  std::vector<workload::Message> messages(message_count);
  util::Rng rng(seed ^ 0x5CA1EULL);
  for (std::size_t i = 0; i < message_count; ++i) {
    workload::Message& m = messages[i];
    m.id = i;
    m.key = static_cast<workload::KeyId>(
        rng.next_below(static_cast<std::uint64_t>(keys.size())));
    m.producer = static_cast<trace::NodeId>(
        rng.next_below(static_cast<std::uint64_t>(node_count)));
    m.size_bytes = 1 + static_cast<std::uint32_t>(rng.next_below(140));
    // Evenly spread through the middle of the trace so every message sees
    // live contact traffic before and after it.
    m.created = static_cast<util::Time>(
        (static_cast<double>(i) + 0.5) /
        static_cast<double>(message_count) * static_cast<double>(duration));
    m.ttl = 6 * util::kHour;
  }
  return workload::Workload(keys, node_count, std::move(interests),
                            std::move(messages));
}

/// Default protocol for scale runs. Fixed DF: Eq. 5's tuning needs trace
/// centrality, which a streamed scenario deliberately never computes; the
/// sweep measures the contact plane, not DF calibration, so any sane
/// constant serves every point.
inline constexpr const char* kScaleDefaultProtocol = "B-SUB:df=0.5";

/// Runs one sweep point end to end: streamed city scenario through the
/// protocol named by `protocol_spec` on the simulator substrate. The stream
/// is the only contact source — nothing is materialized at any node/contact
/// count.
inline ScaleResult run_scale_point(
    const ScalePoint& point, std::uint64_t seed = kExperimentSeed,
    std::size_t threads = 1,
    const std::string& protocol_spec = kScaleDefaultProtocol) {
  const trace::CityTraceConfig city =
      trace::city_config(point.nodes, point.contacts, seed);
  const util::Time duration =
      static_cast<util::Time>(city.days) * util::kDay;
  auto stream = trace::make_city_stream(city);

  const workload::KeySet keys = workload::twitter_trend_keys();
  const workload::Workload w =
      make_scale_workload(keys, point.nodes, point.messages, duration, seed);

  const std::unique_ptr<sim::Protocol> proto =
      protocol_registry().make(protocol_spec);

  sim::SimulatorConfig sim_cfg;
  sim_cfg.threads = threads;
  sim::Simulator simulator(sim_cfg);

  WallTimer timer;
  const metrics::RunResults results = simulator.run(*stream, w, *proto);
  ScaleResult out;
  out.seconds = timer.seconds();
  out.events = simulator.last_run_stats().events;
  out.events_per_sec = out.seconds > 0.0
                           ? static_cast<double>(out.events) / out.seconds
                           : 0.0;
  out.peak_rss_bytes = peak_rss_bytes();
  out.bytes_per_node =
      point.nodes > 0 ? static_cast<double>(out.peak_rss_bytes) /
                            static_cast<double>(point.nodes)
                      : 0.0;
  out.deliveries = results.interested_deliveries;
  out.delivery_ratio = results.delivery_ratio;
  out.forwardings = results.forwardings;
  out.threads_used = simulator.last_run_stats().threads_used;
  // B-SUB-only observability; baselines report zero (no relay/election
  // state exists to measure).
  if (const auto* bsub = dynamic_cast<const core::BsubProtocol*>(proto.get())) {
    out.materialized_relays = bsub->interests().materialized_relays();
    out.election_state_bytes = bsub->election().state_bytes_reserved();
  }
  return out;
}

/// Runs `point` in a forked child (see fork_util.h for why) and reads the
/// result back over a pipe. Returns false if the child failed (the parent
/// sweep then fails too).
inline bool run_scale_point_isolated(
    const ScalePoint& point, std::uint64_t seed, std::size_t threads,
    ScaleResult& out, const std::string& protocol_spec = kScaleDefaultProtocol) {
  return run_isolated(
      [&] { return run_scale_point(point, seed, threads, protocol_spec); },
      out);
}

}  // namespace bsub::bench
