// Reproduces paper Fig. 7(a-c): PUSH / B-SUB / PULL on the Haggle
// (Infocom'06)-calibrated trace across TTL values.
#include "fig_ttl_sweep.h"

int main() {
  using namespace bsub::bench;
  print_header("Figure 7 — Haggle (Infocom'06) trace");
  run_ttl_sweep("Fig. 7", "fig7_haggle", haggle_scenario());
  return 0;
}
