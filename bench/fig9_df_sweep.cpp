// Reproduces paper Fig. 9(a-d): delivery ratio, delay, forwardings per
// delivered message, and false-positive rate of B-SUB as the decaying
// factor sweeps over [0, 2] per minute, TTL fixed at 20 hours, on both
// traces. The DF points are independent B-SUB runs over a shared read-only
// workload, so they execute on the parallel sweep runner.
//
// FPR note: with a strict section V-D implementation, the *delivered-
// message* FPR is structurally ~0 (the final match is against a single-key
// consumer BF). The operative FPR the DF controls is the relay filters';
// we report both — the relay-filter FPR (probed with absent keys, shown
// against the 0.04 theoretical worst case) reproduces Fig. 9(d)'s shape.
#include "experiment_common.h"

#include "bloom/fpr.h"

namespace bsub::bench {
namespace {

void sweep(const Scenario& scenario, std::vector<std::string>& points) {
  const util::Time ttl = 20 * util::kHour;
  const std::vector<double> dfs = {0.0, 0.05, 0.138, 0.25, 0.5, 1.0, 1.5, 2.0};
  const workload::Workload w = scenario.make_workload(ttl);

  const std::vector<ProtocolRun> runs =
      run_points_parallel(dfs, [&](double df) {
        core::BsubConfig cfg;
        cfg.df_per_minute = df;
        return run_bsub(scenario, w, cfg);
      });

  std::printf("\ntrace: %s (TTL = 20 h)\n", scenario.trace.name().c_str());
  std::printf("%9s | %8s | %10s | %9s | %10s | %10s\n", "DF(/min)",
              "delivery", "delay(min)", "fwd/deliv", "relay FPR",
              "deliv FPR");
  for (std::size_t i = 0; i < dfs.size(); ++i) {
    const ProtocolRun& run = runs[i];
    std::printf("%9.3f | %8.3f | %10.1f | %9.2f | %10.4f | %10.4f\n", dfs[i],
                run.results.delivery_ratio, run.results.mean_delay_minutes,
                run.results.forwardings_per_delivery, run.relay_fpr,
                run.results.false_positive_rate);
    points.push_back(JsonObject()
                         .field("trace", scenario.trace.name())
                         .field("df_per_minute", dfs[i])
                         .field("delivery", run.results.delivery_ratio)
                         .field("delay_min", run.results.mean_delay_minutes)
                         .field("fwd_per_delivery",
                                run.results.forwardings_per_delivery)
                         .field("relay_fpr", run.relay_fpr)
                         .field("delivered_fpr",
                                run.results.false_positive_rate)
                         .str());
  }
}

}  // namespace
}  // namespace bsub::bench

int main() {
  using namespace bsub::bench;
  print_header("Figure 9 — metrics vs decaying factor (both traces)");
  const double theory = bsub::bloom::false_positive_rate(38, {256, 4});
  std::printf("theoretical worst-case FPR (38 keys, m=256, k=4): %.4f\n",
              theory);
  WallTimer timer;
  std::vector<std::string> points;
  sweep(haggle_scenario(), points);
  sweep(reality_scenario(), points);
  std::printf(
      "\nExpected shape (paper Fig. 9): delivery ratio, delay, and "
      "forwardings all\ndecrease as the DF grows (B-SUB degenerates toward "
      "PULL); the relay FPR is\nmaximal at DF = 0 and falls with DF, "
      "around/below the 0.04 theory bound.\n");
  write_bench_json("fig9_df_sweep", timer.seconds(), points);
  return 0;
}
