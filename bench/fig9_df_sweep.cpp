// Reproduces paper Fig. 9(a-d): delivery ratio, delay, forwardings per
// delivered message, and false-positive rate of B-SUB as the decaying
// factor sweeps over [0, 2] per minute, TTL fixed at 20 hours, on both
// traces.
//
// FPR note: with a strict section V-D implementation, the *delivered-
// message* FPR is structurally ~0 (the final match is against a single-key
// consumer BF). The operative FPR the DF controls is the relay filters';
// we report both — the relay-filter FPR (probed with absent keys, shown
// against the 0.04 theoretical worst case) reproduces Fig. 9(d)'s shape.
#include "experiment_common.h"

#include "bloom/fpr.h"

namespace bsub::bench {
namespace {

void sweep(const Scenario& scenario) {
  const util::Time ttl = 20 * util::kHour;
  const double dfs[] = {0.0, 0.05, 0.138, 0.25, 0.5, 1.0, 1.5, 2.0};
  const workload::Workload w = scenario.make_workload(ttl);

  std::printf("\ntrace: %s (TTL = 20 h)\n", scenario.trace.name().c_str());
  std::printf("%9s | %8s | %10s | %9s | %10s | %10s\n", "DF(/min)",
              "delivery", "delay(min)", "fwd/deliv", "relay FPR",
              "deliv FPR");
  for (double df : dfs) {
    core::BsubConfig cfg;
    cfg.df_per_minute = df;
    const ProtocolRun run = run_bsub(scenario, w, cfg);
    std::printf("%9.3f | %8.3f | %10.1f | %9.2f | %10.4f | %10.4f\n", df,
                run.results.delivery_ratio, run.results.mean_delay_minutes,
                run.results.forwardings_per_delivery, run.relay_fpr,
                run.results.false_positive_rate);
  }
}

}  // namespace
}  // namespace bsub::bench

int main() {
  using namespace bsub::bench;
  print_header("Figure 9 — metrics vs decaying factor (both traces)");
  const double theory = bsub::bloom::false_positive_rate(38, {256, 4});
  std::printf("theoretical worst-case FPR (38 keys, m=256, k=4): %.4f\n",
              theory);
  sweep(haggle_scenario());
  sweep(reality_scenario());
  std::printf(
      "\nExpected shape (paper Fig. 9): delivery ratio, delay, and "
      "forwardings all\ndecrease as the DF grows (B-SUB degenerates toward "
      "PULL); the relay FPR is\nmaximal at DF = 0 and falls with DF, "
      "around/below the 0.04 theory bound.\n");
  return 0;
}
