// Shared plumbing for the fleet runtime surfaces: the deterministic fleet
// scenario (synthetic community trace + explicit workload), protocol-spec
// -> FleetConfig assembly with Eq. 5 DF tuning, and the fd-limit raiser
// the per-node-socket baseline needs. Used by bench_fleet (the gated
// harness) and the bsub_fleet CLI (one point, interactive).
#pragma once

#include <sys/resource.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "core/df_tuning.h"
#include "net/fleet/fleet_runtime.h"
#include "trace/synthetic.h"
#include "util/rng.h"
#include "workload/workload.h"

namespace bsub::bench {

/// One fleet point: `nodes` live nodes meeting over `contacts` synthetic
/// community contacts, with `messages` published through the middle of the
/// window so every message sees live traffic before and after it.
struct FleetPoint {
  std::size_t nodes = 1000;
  std::size_t contacts = 8000;
  std::size_t messages = 200;
};

inline constexpr util::Time kFleetDuration = 12 * util::kHour;
inline constexpr util::Time kFleetTtl = 6 * util::kHour;

/// Deterministic scenario for a fleet point. Construct in place and keep
/// alive for the runtime's lifetime — the workload references `keys`.
struct FleetScenario {
  trace::ContactTrace trace;
  workload::KeySet keys;
  workload::Workload workload;

  FleetScenario(const FleetPoint& point, std::uint64_t seed)
      : trace([&] {
          trace::SyntheticTraceConfig cfg;
          cfg.node_count = point.nodes;
          cfg.contact_count = point.contacts;
          cfg.duration = kFleetDuration;
          cfg.community_count = std::max<std::size_t>(1, point.nodes / 50);
          cfg.seed = seed;
          return trace::generate_trace(cfg);
        }()),
        keys(workload::twitter_trend_keys()),
        workload(keys, point.nodes, make_interests(point, keys),
                 make_messages(point, keys, seed)) {}

 private:
  static std::vector<workload::KeyId> make_interests(
      const FleetPoint& point, const workload::KeySet& keys) {
    std::vector<workload::KeyId> interests(point.nodes);
    for (std::size_t n = 0; n < point.nodes; ++n) {
      interests[n] = static_cast<workload::KeyId>(n % keys.size());
    }
    return interests;
  }

  static std::vector<workload::Message> make_messages(
      const FleetPoint& point, const workload::KeySet& keys,
      std::uint64_t seed) {
    std::vector<workload::Message> messages(point.messages);
    util::Rng rng(seed ^ 0xF1EE7ULL);
    for (std::size_t i = 0; i < point.messages; ++i) {
      workload::Message& m = messages[i];
      m.id = i;
      m.key = static_cast<workload::KeyId>(
          rng.next_below(static_cast<std::uint64_t>(keys.size())));
      m.producer = static_cast<trace::NodeId>(
          rng.next_below(static_cast<std::uint64_t>(point.nodes)));
      m.size_bytes = 1 + static_cast<std::uint32_t>(rng.next_below(140));
      m.created = static_cast<util::Time>(
          (static_cast<double>(i) + 0.5) /
          static_cast<double>(std::max<std::size_t>(point.messages, 1)) *
          static_cast<double>(kFleetDuration));
      m.ttl = kFleetTtl;
    }
    return messages;
  }
};

/// FleetConfig for a scenario: a non-empty protocol spec is applied via
/// fleet_config_from_spec (B-SUB only, adaptive rejected); an empty spec
/// keeps the default config with the DF tuned against the materialized
/// trace (Eq. 5). decay_tick is 0 throughout — the loopback engine
/// requires it, and it keeps one config valid for both engines.
inline net::FleetConfig make_fleet_config(const FleetScenario& scenario,
                                          const std::string& protocol_spec) {
  net::FleetConfig cfg;
  cfg.runtime.decay_tick = 0;
  if (!protocol_spec.empty()) {
    cfg = net::fleet_config_from_spec(protocol_spec, cfg);
  } else {
    cfg.runtime.node.df_per_minute =
        core::compute_df(scenario.trace, kFleetTtl,
                         cfg.runtime.node.filter_params,
                         cfg.runtime.node.initial_counter)
            .df_per_minute;
  }
  return cfg;
}

/// Runs engine::TraceRunner over the same scenario/config and compares the
/// protocol results bit for bit (doubles by memcmp, not ==), printing each
/// mismatching field to stderr. The loopback engine's determinism gate,
/// shared by the bsub_fleet CLI and bench_fleet.
inline bool fleet_matches_engine(const FleetScenario& scenario,
                                 const net::FleetConfig& cfg,
                                 const engine::TraceRunResults& got) {
  engine::TraceRunner runner(cfg.runtime.node, cfg.election,
                             cfg.bandwidth_bytes_per_second);
  const engine::TraceRunResults expect =
      runner.run(scenario.trace, scenario.workload);
  bool ok = true;
  auto check_u64 = [&](const char* field, std::uint64_t g, std::uint64_t e) {
    if (g == e) return;
    ok = false;
    std::fprintf(stderr, "MISMATCH %s: fleet=%llu engine=%llu\n", field,
                 static_cast<unsigned long long>(g),
                 static_cast<unsigned long long>(e));
  };
  auto check_f64 = [&](const char* field, double g, double e) {
    if (std::memcmp(&g, &e, sizeof g) == 0) return;
    ok = false;
    std::fprintf(stderr, "MISMATCH %s: fleet=%.17g engine=%.17g\n", field, g,
                 e);
  };
  check_u64("deliveries", got.deliveries, expect.deliveries);
  check_u64("expected_deliveries", got.expected_deliveries,
            expect.expected_deliveries);
  check_u64("contacts_processed", got.contacts_processed,
            expect.contacts_processed);
  check_u64("frames_delivered", got.frames_delivered, expect.frames_delivered);
  check_u64("frames_dropped", got.frames_dropped, expect.frames_dropped);
  check_u64("bytes_used", got.bytes_used, expect.bytes_used);
  check_f64("delivery_ratio", got.delivery_ratio, expect.delivery_ratio);
  check_f64("mean_delay_minutes", got.mean_delay_minutes,
            expect.mean_delay_minutes);
  return ok;
}

/// Raises the soft RLIMIT_NOFILE toward `want` descriptors (capped at the
/// hard limit; never lowers). The per-node-socket baseline needs one fd
/// per node plus reactor/pipe slack; the shard modes never come close.
inline void raise_fd_limit(std::size_t want) {
  struct rlimit rl{};
  if (::getrlimit(RLIMIT_NOFILE, &rl) != 0) return;
  if (rl.rlim_cur >= static_cast<rlim_t>(want)) return;
  rl.rlim_cur = std::min<rlim_t>(static_cast<rlim_t>(want), rl.rlim_max);
  (void)::setrlimit(RLIMIT_NOFILE, &rl);
}

}  // namespace bsub::bench
