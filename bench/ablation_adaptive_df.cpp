// Extension: online per-broker DF estimation (paper section VII-B sketches
// it: "it is straightforward to set an appropriate DF online by counting
// the number of nodes a broker meets in the time window"). Compares the
// trace-analyzed global Eq. 5 DF against brokers re-deriving their own DF
// from their live election window. The fixed/adaptive runs per trace are
// independent, so all four execute on the parallel sweep runner.
#include "experiment_common.h"

int main() {
  using namespace bsub::bench;
  using namespace bsub;
  print_header("Extension — adaptive per-broker DF (section VII-B)");

  const util::Time ttl = 10 * util::kHour;
  const std::vector<Scenario> scenarios = {haggle_scenario(),
                                           reality_scenario()};

  struct Job {
    std::size_t scenario_idx = 0;
    bool adaptive = false;
  };

  WallTimer timer;
  std::vector<Job> jobs;
  for (std::size_t s = 0; s < scenarios.size(); ++s) {
    jobs.push_back({s, false});
    jobs.push_back({s, true});
  }
  const std::vector<ProtocolRun> runs =
      run_points_parallel(jobs, [&](const Job& job) {
        const Scenario& scenario = scenarios[job.scenario_idx];
        const workload::Workload w = scenario.make_workload(ttl);
        core::BsubConfig cfg = bsub_config_for(scenario, ttl);
        if (job.adaptive) {
          cfg.adaptive_df = true;
          cfg.df_window = ttl;
        }
        return run_bsub(scenario, w, cfg);
      });

  std::vector<std::string> points;
  for (std::size_t s = 0; s < scenarios.size(); ++s) {
    const ProtocolRun& fixed = runs[2 * s];
    const ProtocolRun& adaptive = runs[2 * s + 1];
    std::printf("\ntrace: %s (TTL = W = 10 h)\n",
                scenarios[s].trace.name().c_str());
    std::printf("%-22s | %8s | %10s | %9s | %10s\n", "DF mode", "delivery",
                "delay(min)", "fwd/deliv", "relay FPR");
    std::printf("%-22s | %8.3f | %10.1f | %9.2f | %10.4f\n",
                "global (Eq. 5, offline)", fixed.results.delivery_ratio,
                fixed.results.mean_delay_minutes,
                fixed.results.forwardings_per_delivery, fixed.relay_fpr);
    std::printf("%-22s | %8.3f | %10.1f | %9.2f | %10.4f\n",
                "per-broker (online)", adaptive.results.delivery_ratio,
                adaptive.results.mean_delay_minutes,
                adaptive.results.forwardings_per_delivery,
                adaptive.relay_fpr);
    for (bool is_adaptive : {false, true}) {
      const ProtocolRun& run = is_adaptive ? adaptive : fixed;
      points.push_back(
          JsonObject()
              .field("trace", scenarios[s].trace.name())
              .field("df_mode",
                     std::string(is_adaptive ? "adaptive" : "fixed"))
              .field("delivery", run.results.delivery_ratio)
              .field("delay_min", run.results.mean_delay_minutes)
              .field("fwd_per_delivery",
                     run.results.forwardings_per_delivery)
              .field("relay_fpr", run.relay_fpr)
              .str());
    }
  }
  std::printf(
      "\nExpected: the online estimate tracks the offline trace analysis "
      "closely —\nno oracle knowledge of the trace is actually needed.\n");
  write_bench_json("ablation_adaptive_df", timer.seconds(), points);
  return 0;
}
