// Extension: online per-broker DF estimation (paper section VII-B sketches
// it: "it is straightforward to set an appropriate DF online by counting
// the number of nodes a broker meets in the time window"). Compares the
// trace-analyzed global Eq. 5 DF against brokers re-deriving their own DF
// from their live election window.
#include "experiment_common.h"

int main() {
  using namespace bsub::bench;
  using namespace bsub;
  print_header("Extension — adaptive per-broker DF (section VII-B)");

  for (const Scenario& scenario : {haggle_scenario(), reality_scenario()}) {
    const util::Time ttl = 10 * util::kHour;
    const workload::Workload w = scenario.make_workload(ttl);

    core::BsubConfig fixed_cfg = bsub_config_for(scenario, ttl);
    const ProtocolRun fixed = run_bsub(scenario, w, fixed_cfg);

    core::BsubConfig adaptive_cfg = fixed_cfg;
    adaptive_cfg.adaptive_df = true;
    adaptive_cfg.df_window = ttl;
    const ProtocolRun adaptive = run_bsub(scenario, w, adaptive_cfg);

    std::printf("\ntrace: %s (TTL = W = 10 h)\n",
                scenario.trace.name().c_str());
    std::printf("%-22s | %8s | %10s | %9s | %10s\n", "DF mode", "delivery",
                "delay(min)", "fwd/deliv", "relay FPR");
    std::printf("%-22s | %8.3f | %10.1f | %9.2f | %10.4f\n",
                "global (Eq. 5, offline)", fixed.results.delivery_ratio,
                fixed.results.mean_delay_minutes,
                fixed.results.forwardings_per_delivery, fixed.relay_fpr);
    std::printf("%-22s | %8.3f | %10.1f | %9.2f | %10.4f\n",
                "per-broker (online)", adaptive.results.delivery_ratio,
                adaptive.results.mean_delay_minutes,
                adaptive.results.forwardings_per_delivery,
                adaptive.relay_fpr);
  }
  std::printf(
      "\nExpected: the online estimate tracks the offline trace analysis "
      "closely —\nno oracle knowledge of the trace is actually needed.\n");
  return 0;
}
