// Reproduces paper Table II: the top-4 Twitter-trend keys and their
// selection probabilities, plus the full-distribution facts the paper
// states in prose (38 keys, average length ~11.5 bytes, <= 5 bytes per
// encoded key at m=256/k=4).
#include "experiment_common.h"

#include "bloom/tcbf_codec.h"
#include "util/byte_io.h"

int main() {
  using namespace bsub::bench;
  using namespace bsub;
  print_header("Table II — Twitter-trend key distribution");

  const workload::KeySet keys = workload::twitter_trend_keys();
  std::printf("top 4 keys (published in the paper, spaces removed):\n");
  std::printf("%-18s | %s\n", "key", "weight");
  for (workload::KeyId k = 0; k < 4; ++k) {
    std::printf("%-18s | %.4f\n", keys.name(k).c_str(), keys.weight(k));
  }

  double tail = 0.0;
  for (workload::KeyId k = 4; k < keys.size(); ++k) tail += keys.weight(k);
  std::printf("\nremaining %zu keys (Zipf-tail substitution): total weight "
              "%.4f\n", keys.size() - 4, tail);
  std::printf("total keys: %zu (paper: 38)\n", keys.size());
  std::printf("average key length: %.2f bytes (paper: 11.5)\n",
              keys.average_key_length());

  // "At most 5 bytes are used to encode a single key": k=4 locations of
  // ceil(log2 256) = 8 bits each, plus the optional shared counter byte.
  const double per_key =
      bloom::model_wire_size_bytes(4, 256, bloom::CounterEncoding::kUniform);
  std::printf("encoded size of a single key (4 locations + counter): %.0f "
              "bytes (paper: <= 5)\n", per_key);
  return 0;
}
