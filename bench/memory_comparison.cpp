// Reproduces the paper's memory/bandwidth claim (sections IV-B, VI-C,
// VII-A): representing the interest set with a TCBF takes about half the
// space of raw strings, and each protocol exchange ships only dozens of
// bytes. On top of the wire-size table, measures the *resident* side of the
// same story: what one node of protocol state costs on the heap, eager
// (historical layout) vs lazy/pooled, using the shared allocation hooks
// from resource_stats.h.
#define BSUB_RESOURCE_STATS_COUNT_ALLOCS
#include "resource_stats.h"

#include "experiment_common.h"

#include "bloom/tcbf.h"
#include "bloom/tcbf_codec.h"
#include "core/broker_allocation.h"
#include "core/interest_manager.h"

namespace {

// Heap bytes allocated while constructing protocol state for `nodes` nodes
// and then activating `active` of them (one absorbed interest + one window
// meeting each). The alloc counter is monotone (frees are not subtracted),
// so each delta is exactly what that region allocated.
struct StateCost {
  std::uint64_t idle_bytes = 0;    ///< construction only — every node pays
  std::uint64_t active_bytes = 0;  ///< materialization for `active` nodes
};

StateCost measure_state(std::size_t nodes, std::size_t active,
                        bool reference) {
  using namespace bsub;
  const bloom::BloomParams params{256, 4};
  const std::uint64_t start = bench::allocated_bytes_now();
  core::InterestManager im(nodes, params, 50.0, 0.5,
                           /*eager_state=*/reference);
  core::BrokerElection el(nodes,
                          {3, 5, 5 * util::kHour,
                           /*reference_state=*/reference});
  StateCost cost;
  cost.idle_bytes = bench::allocated_bytes_now() - start;
  const bloom::Tcbf genuine = im.make_genuine("NewMoon");
  for (std::size_t n = 0; n < active; ++n) {
    im.absorb_genuine(static_cast<trace::NodeId>(n), genuine, "NewMoon",
                      util::kMinute);
    el.on_contact(static_cast<trace::NodeId>(n),
                  static_cast<trace::NodeId>((n + 1) % nodes), util::kMinute);
  }
  cost.active_bytes = bench::allocated_bytes_now() - start - cost.idle_bytes;
  return cost;
}

}  // namespace

int main() {
  using namespace bsub::bench;
  using namespace bsub;
  print_header("Memory comparison — TCBF vs raw strings (section VI-C)");

  const workload::KeySet keys = workload::twitter_trend_keys();
  const bloom::BloomParams params{256, 4};

  // Raw-string representation: the key bytes plus the per-key control
  // information a string list needs (1-byte length prefix per key, matching
  // the paper's "associated control information").
  const std::size_t raw_bytes = keys.total_key_bytes() + keys.size();

  bloom::Tcbf all(params, 50.0);
  for (const auto& k : keys) all.insert(k.name);

  const auto full = bloom::encode_tcbf(all, bloom::CounterEncoding::kFull);
  const auto uniform =
      bloom::encode_tcbf(all, bloom::CounterEncoding::kUniform);
  const auto bare =
      bloom::encode_tcbf(all, bloom::CounterEncoding::kCounterLess);

  std::printf("interest set: all %zu keys, %zu set bits of %zu\n",
              keys.size(), all.popcount(), params.m);
  std::printf("%-44s | %6s | %s\n", "representation", "bytes",
              "vs raw strings");
  std::printf("%-44s | %6zu | %s\n", "raw strings (+1B length each)",
              raw_bytes, "1.00x");
  auto row = [&](const char* label, std::size_t bytes) {
    std::printf("%-44s | %6zu | %.2fx\n", label, bytes,
                static_cast<double>(bytes) / static_cast<double>(raw_bytes));
  };
  row("TCBF, full counters (relay exchange)", full.size());
  row("TCBF, uniform counter (genuine filter)", uniform.size());
  row("TCBF, counter-less BF (interest report)", bare.size());

  std::printf("\nanalytical sizes (paper's section VI-C accounting, no "
              "header):\n");
  std::printf("  full:        %.0f bytes\n",
              bloom::model_wire_size_bytes(all.popcount(), params.m,
                                           bloom::CounterEncoding::kFull));
  std::printf("  uniform:     %.0f bytes\n",
              bloom::model_wire_size_bytes(all.popcount(), params.m,
                                           bloom::CounterEncoding::kUniform));
  std::printf("  counterless: %.0f bytes\n",
              bloom::model_wire_size_bytes(
                  all.popcount(), params.m,
                  bloom::CounterEncoding::kCounterLess));

  print_header("Resident state — eager (reference) vs lazy/pooled layout");
  constexpr std::size_t kNodes = 100000;
  constexpr std::size_t kActive = kNodes / 10;  // 10% ever participate
  const StateCost eager = measure_state(kNodes, kActive, /*reference=*/true);
  const StateCost lazy = measure_state(kNodes, kActive, /*reference=*/false);
  std::printf("%zu nodes, %zu active (interest + election state)\n", kNodes,
              kActive);
  std::printf("%-28s | %14s | %10s\n", "layout", "idle heap bytes",
              "bytes/node");
  auto state_row = [&](const char* label, const StateCost& c) {
    std::printf("%-28s | %14llu | %10.0f\n", label,
                static_cast<unsigned long long>(c.idle_bytes),
                static_cast<double>(c.idle_bytes) /
                    static_cast<double>(kNodes));
  };
  state_row("eager (historical)", eager);
  state_row("lazy/pooled", lazy);
  std::printf("idle floor ratio: %.1fx\n",
              static_cast<double>(eager.idle_bytes) /
                  static_cast<double>(lazy.idle_bytes));
  std::printf("activation cost:  %.0f bytes per active node (lazy; the "
              "eager layout\n                  pre-pays this for every "
              "node: %.0f measured on touch)\n",
              static_cast<double>(lazy.active_bytes) /
                  static_cast<double>(kActive),
              static_cast<double>(eager.active_bytes) /
                  static_cast<double>(kActive));

  std::printf("\npaper claim: the TCBF uses about half the space of raw "
              "strings; a single\ninterest costs <= 5 bytes (see "
              "table2_keys). Resident-state corollary: idle\nnodes cost "
              "slots, not filters — only materialized (ever-broker) state "
              "pays\nthe ~2 KiB TCBF.\n");
  return 0;
}
