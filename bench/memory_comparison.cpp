// Reproduces the paper's memory/bandwidth claim (sections IV-B, VI-C,
// VII-A): representing the interest set with a TCBF takes about half the
// space of raw strings, and each protocol exchange ships only dozens of
// bytes.
#include "experiment_common.h"

#include "bloom/tcbf.h"
#include "bloom/tcbf_codec.h"

int main() {
  using namespace bsub::bench;
  using namespace bsub;
  print_header("Memory comparison — TCBF vs raw strings (section VI-C)");

  const workload::KeySet keys = workload::twitter_trend_keys();
  const bloom::BloomParams params{256, 4};

  // Raw-string representation: the key bytes plus the per-key control
  // information a string list needs (1-byte length prefix per key, matching
  // the paper's "associated control information").
  const std::size_t raw_bytes = keys.total_key_bytes() + keys.size();

  bloom::Tcbf all(params, 50.0);
  for (const auto& k : keys) all.insert(k.name);

  const auto full = bloom::encode_tcbf(all, bloom::CounterEncoding::kFull);
  const auto uniform =
      bloom::encode_tcbf(all, bloom::CounterEncoding::kUniform);
  const auto bare =
      bloom::encode_tcbf(all, bloom::CounterEncoding::kCounterLess);

  std::printf("interest set: all %zu keys, %zu set bits of %zu\n",
              keys.size(), all.popcount(), params.m);
  std::printf("%-44s | %6s | %s\n", "representation", "bytes",
              "vs raw strings");
  std::printf("%-44s | %6zu | %s\n", "raw strings (+1B length each)",
              raw_bytes, "1.00x");
  auto row = [&](const char* label, std::size_t bytes) {
    std::printf("%-44s | %6zu | %.2fx\n", label, bytes,
                static_cast<double>(bytes) / static_cast<double>(raw_bytes));
  };
  row("TCBF, full counters (relay exchange)", full.size());
  row("TCBF, uniform counter (genuine filter)", uniform.size());
  row("TCBF, counter-less BF (interest report)", bare.size());

  std::printf("\nanalytical sizes (paper's section VI-C accounting, no "
              "header):\n");
  std::printf("  full:        %.0f bytes\n",
              bloom::model_wire_size_bytes(all.popcount(), params.m,
                                           bloom::CounterEncoding::kFull));
  std::printf("  uniform:     %.0f bytes\n",
              bloom::model_wire_size_bytes(all.popcount(), params.m,
                                           bloom::CounterEncoding::kUniform));
  std::printf("  counterless: %.0f bytes\n",
              bloom::model_wire_size_bytes(
                  all.popcount(), params.m,
                  bloom::CounterEncoding::kCounterLess));

  std::printf("\npaper claim: the TCBF uses about half the space of raw "
              "strings; a single\ninterest costs <= 5 bytes (see "
              "table2_keys).\n");
  return 0;
}
