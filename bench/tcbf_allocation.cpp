// Reproduces section VI-D: TCBF allocation for optimal FPR. Sweeps the
// storage bound, reports the binary-searched optimal filter count h*, the
// per-filter key budget, the fill-ratio threshold theta, and the joint FPR
// (Eq. 7-10), then validates the h-monotonicity the optimization relies on.
#include "experiment_common.h"

#include "bloom/allocation.h"
#include "bloom/fpr.h"

int main() {
  using namespace bsub::bench;
  using namespace bsub;
  print_header("TCBF allocation for optimal FPR (section VI-D)");

  const bloom::BloomParams params{256, 4};
  const double n_total = 114;  // e.g. three brokers' worth of 38-key sets

  std::printf("keys to store: %.0f, filter geometry m=%zu k=%u\n", n_total,
              params.m, params.k);
  std::printf("%12s | %4s | %12s | %7s | %10s | %12s\n", "bound(bytes)",
              "h*", "keys/filter", "theta", "joint FPR", "mem(bytes)");
  for (double bound : {250.0, 400.0, 600.0, 900.0, 1400.0, 2000.0, 4000.0}) {
    const bloom::AllocationPlan plan =
        bloom::optimize_allocation(n_total, bound, params);
    std::printf("%12.0f | %4u%s | %12.1f | %7.3f | %10.6f | %12.1f\n", bound,
                plan.filter_count, plan.feasible ? " " : "!",
                plan.keys_per_filter, plan.fill_threshold, plan.joint_fpr,
                plan.memory_bytes);
  }
  std::printf("('!' marks an infeasible bound: even one filter exceeds it)\n");

  std::printf("\nmonotonicity behind the binary search (Eq. 7-8):\n");
  std::printf("%4s | %10s | %12s\n", "h", "joint FPR", "memory(B)");
  for (std::uint32_t h : {1u, 2u, 4u, 8u, 16u, 32u}) {
    std::printf("%4u | %10.6f | %12.1f\n", h,
                bloom::joint_false_positive_rate_uniform(n_total, h, params),
                bloom::multi_filter_memory_bytes(n_total, h, params));
  }
  std::printf("\njoint FPR falls and memory grows with h, so the optimum is "
              "the largest\nfeasible h — found by binary search, as the "
              "paper prescribes.\n");
  return 0;
}
