// Extension: multi-key interests (paper section V-A: "It is desirable to
// use multiple keys to describe a message... it is straightforward to
// extend the analysis"). Sweeps the number of interests per node; genuine
// filters and reports hold several keys, relay filters carry more load, and
// the FPR climbs along Eq. 1 as the effective key population grows.
#include "experiment_common.h"

#include "bloom/fpr.h"

int main() {
  using namespace bsub::bench;
  using namespace bsub;
  print_header("Extension — multi-key interests per node (section V-A)");

  const Scenario scenario = haggle_scenario();
  const util::Time ttl = 10 * util::kHour;

  std::printf("trace: %s, TTL = 10 h\n\n", scenario.trace.name().c_str());
  std::printf("%9s | %8s | %10s | %9s | %10s | %12s\n", "interests",
              "delivery", "delay(min)", "fwd/deliv", "relay FPR",
              "expected/msg");
  for (std::uint32_t per_node : {1u, 2u, 4u, 8u}) {
    workload::WorkloadConfig wcfg;
    wcfg.ttl = ttl;
    wcfg.seed = kExperimentSeed + 1;
    wcfg.interests_per_node = per_node;
    const workload::Workload w(scenario.trace, scenario.keys, wcfg);

    const core::BsubConfig cfg = bsub_config_for(scenario, ttl);
    const ProtocolRun run = run_bsub(scenario, w, cfg);
    const double expected_per_msg =
        static_cast<double>(w.expected_deliveries()) /
        static_cast<double>(w.messages().size());
    std::printf("%9u | %8.3f | %10.1f | %9.2f | %10.4f | %12.1f\n", per_node,
                run.results.delivery_ratio, run.results.mean_delay_minutes,
                run.results.forwardings_per_delivery, run.relay_fpr,
                expected_per_msg);
  }
  std::printf(
      "\nExpected: more interests per node -> more subscribers per message "
      "and\nfuller relay filters: delivery work grows and the relay FPR "
      "climbs with the\neffective stored-key population (Eq. 1).\n");
  return 0;
}
