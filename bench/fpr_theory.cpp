// Reproduces the paper's in-text FPR theory (sections III, VI-B, VII-A):
// the Eq. 1 curve at the paper's filter geometry, the 0.04 worst case at 38
// keys, and a Monte-Carlo validation of the formula against real filters.
#include "experiment_common.h"

#include "bloom/bloom_filter.h"
#include "bloom/fpr.h"
#include "util/rng.h"

int main() {
  using namespace bsub::bench;
  using namespace bsub;
  print_header("FPR theory vs measurement (Eq. 1-3, m=256, k=4)");

  const bloom::BloomParams params{256, 4};
  util::Rng rng(kExperimentSeed);

  std::printf("%6s | %10s | %10s | %10s | %10s\n", "keys", "Eq.1 exact",
              "Eq.1 appr", "measured", "fill(Eq.3)");
  for (std::uint64_t n : {1, 5, 10, 20, 38, 60, 100}) {
    // Measure across many random filters to average out per-filter variance.
    std::uint64_t fp = 0, probes = 0;
    double fill = 0.0;
    const int kFilters = 40;
    for (int f = 0; f < kFilters; ++f) {
      bloom::BloomFilter bf(params);
      for (std::uint64_t i = 0; i < n; ++i) {
        bf.insert("stored" + std::to_string(rng()));
      }
      fill += bf.fill_ratio();
      for (int p = 0; p < 5000; ++p) {
        fp += bf.contains("probe" + std::to_string(rng()));
        ++probes;
      }
    }
    std::printf("%6llu | %10.4f | %10.4f | %10.4f | %10.4f\n",
                static_cast<unsigned long long>(n),
                bloom::false_positive_rate_exact(n, params),
                bloom::false_positive_rate(n, params),
                static_cast<double>(fp) / static_cast<double>(probes),
                fill / kFilters);
  }

  std::printf("\npaper claim (section VII-A): worst-case FPR at 38 keys is "
              "0.04 -> Eq. 1 gives %.4f\n",
              bloom::false_positive_rate(38, params));
  std::printf("expected fill ratio at 38 keys (Eq. 3): %.4f\n",
              bloom::expected_fill_ratio(38, params));
  return 0;
}
