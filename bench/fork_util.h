// Process isolation for per-point resource measurement: getrusage's peak
// RSS is a process-lifetime high-water mark, so measuring several sweep
// points in one process would report every point's peak as the max of all
// points run so far. Forking one child per point gives each point its own
// high-water mark (and its own TCBF kernel forcing, which is process
// global). Used by bench_scale_sweep, bench_matrix, and the bsub_scale CLI.
#pragma once

#include <cstddef>
#include <type_traits>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace bsub::bench {

/// Runs `fn` in a forked child and ships its trivially-copyable result back
/// through a pipe. Returns false when the child failed (crashed, exited
/// nonzero, or short-wrote the result); the caller decides whether that
/// fails the whole sweep. On platforms without fork the point runs in
/// process (no isolation, but correct results).
template <class Result, class Fn>
bool run_isolated(Fn&& fn, Result& out) {
  static_assert(std::is_trivially_copyable_v<Result>,
                "the result crosses a pipe as raw bytes");
#if defined(__unix__) || defined(__APPLE__)
  int fds[2];
  if (pipe(fds) != 0) return false;
  const pid_t pid = fork();
  if (pid < 0) {
    close(fds[0]);
    close(fds[1]);
    return false;
  }
  if (pid == 0) {
    close(fds[0]);
    const Result r = fn();
    const char* bytes = reinterpret_cast<const char*>(&r);
    std::size_t off = 0;
    while (off < sizeof r) {
      const ssize_t n = write(fds[1], bytes + off, sizeof r - off);
      if (n <= 0) _exit(2);
      off += static_cast<std::size_t>(n);
    }
    close(fds[1]);
    _exit(0);
  }
  close(fds[1]);
  Result r;
  char* bytes = reinterpret_cast<char*>(&r);
  std::size_t off = 0;
  while (off < sizeof r) {
    const ssize_t n = read(fds[0], bytes + off, sizeof r - off);
    if (n <= 0) break;
    off += static_cast<std::size_t>(n);
  }
  close(fds[0]);
  int status = 0;
  waitpid(pid, &status, 0);
  if (off != sizeof r || !WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    return false;
  }
  out = r;
  return true;
#else
  out = fn();
  return true;
#endif
}

}  // namespace bsub::bench
