// Shared resource accounting for the bench binaries: peak RSS and heap
// allocation counters, reported alongside throughput so the perf trajectory
// tracks memory as well as speed.
//
// Peak RSS is the kernel's high-water mark for the whole process
// (getrusage), so it is monotone: a sweep that wants per-point peaks must
// isolate each point in its own process (see run_forked in scale_common.h).
//
// Allocation counting is opt-in per binary: define
// BSUB_RESOURCE_STATS_COUNT_ALLOCS in exactly one TU (before including this
// header) to replace the global allocation functions with counting
// versions; allocs_now() then reports the process-lifetime allocation
// count and allocated_bytes_now() the cumulative bytes requested (both
// monotone — frees are not subtracted, so a delta across a code region is
// exactly the bytes that region allocated, regardless of what it later
// freed). Without the macro, the counters return 0 and
// alloc_counting_enabled() tells report code to skip the fields.
#pragma once

#include <cstdint>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#if defined(BSUB_RESOURCE_STATS_COUNT_ALLOCS)
#include <atomic>
#include <cstdlib>
#include <new>
#endif

namespace bsub::bench {

/// Peak resident set size of this process so far, in bytes (0 when the
/// platform offers no getrusage).
inline std::uint64_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(usage.ru_maxrss);  // reported in bytes
#else
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;  // in KiB
#endif
#else
  return 0;
#endif
}

}  // namespace bsub::bench

#if defined(BSUB_RESOURCE_STATS_COUNT_ALLOCS)

namespace bsub::bench::detail {
inline std::atomic<std::uint64_t> g_alloc_count{0};
inline std::atomic<std::uint64_t> g_alloc_bytes{0};

inline void* counted_alloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
}  // namespace bsub::bench::detail

// Replacing the global allocation functions in this TU counts every heap
// allocation the process makes (atomic, so multi-threaded benches count
// correctly).
void* operator new(std::size_t size) {
  return bsub::bench::detail::counted_alloc(size);
}
void* operator new[](std::size_t size) {
  return bsub::bench::detail::counted_alloc(size);
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  bsub::bench::detail::g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  bsub::bench::detail::g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  bsub::bench::detail::g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  bsub::bench::detail::g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace bsub::bench {
constexpr bool alloc_counting_enabled() { return true; }
inline std::uint64_t allocs_now() {
  return detail::g_alloc_count.load(std::memory_order_relaxed);
}
inline std::uint64_t allocated_bytes_now() {
  return detail::g_alloc_bytes.load(std::memory_order_relaxed);
}
}  // namespace bsub::bench

#else  // !BSUB_RESOURCE_STATS_COUNT_ALLOCS

namespace bsub::bench {
constexpr bool alloc_counting_enabled() { return false; }
inline std::uint64_t allocs_now() { return 0; }
inline std::uint64_t allocated_bytes_now() { return 0; }
}  // namespace bsub::bench

#endif
