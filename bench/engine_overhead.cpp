// Extension: wire-level overhead of the live protocol engine.
//
// The paper's efficiency argument (sections IV-B, VI-C) is stated in
// analytic filter sizes; this bench measures what a real deployment would
// actually put on the air. It replays the same scenario through (a) the
// simulator, which charges the analytic encoded sizes, and (b) the live
// frame engine, where every exchange is a checksummed frame with headers
// and custody acks — and reports bytes per contact and per delivery.
#include "experiment_common.h"

#include "engine/trace_runner.h"

int main() {
  using namespace bsub::bench;
  using namespace bsub;
  print_header("Extension — live-engine wire overhead vs simulator accounting");

  // A conference-scale (but sub-Table-I) scenario keeps the run short.
  trace::SyntheticTraceConfig tcfg;
  tcfg.node_count = 40;
  tcfg.contact_count = 10000;
  tcfg.duration = util::kDay;
  tcfg.seed = kExperimentSeed;
  const trace::ContactTrace t = trace::generate_trace(tcfg);
  const workload::KeySet keys = workload::twitter_trend_keys();
  workload::WorkloadConfig wcfg;
  wcfg.ttl = 8 * util::kHour;
  wcfg.seed = kExperimentSeed + 1;
  const workload::Workload w(t, keys, wcfg);

  const util::Time ttl = wcfg.ttl;
  core::BsubConfig sim_cfg;
  sim_cfg.df_per_minute =
      core::compute_df(t, ttl, sim_cfg.filter_params, sim_cfg.initial_counter)
          .df_per_minute;

  core::BsubProtocol proto(sim_cfg);
  const metrics::RunResults sim_r = sim::Simulator().run(t, w, proto);

  engine::NodeConfig node_cfg;
  node_cfg.df_per_minute = sim_cfg.df_per_minute;
  engine::TraceRunner runner(node_cfg,
                             {sim_cfg.broker_lower, sim_cfg.broker_upper,
                              sim_cfg.election_window});
  const engine::TraceRunResults eng_r = runner.run(t, w);

  const double contacts = static_cast<double>(t.contacts().size());
  std::printf("scenario: %zu nodes, %zu contacts, %zu messages, TTL = 8 h\n\n",
              t.node_count(), t.contacts().size(), w.messages().size());
  std::printf("%-34s | %12s | %12s\n", "", "simulator", "live engine");
  std::printf("%-34s | %12.3f | %12.3f\n", "delivery ratio",
              sim_r.delivery_ratio, eng_r.delivery_ratio);
  std::printf("%-34s | %12.1f | %12.1f\n", "mean delay (min)",
              sim_r.mean_delay_minutes, eng_r.mean_delay_minutes);
  std::printf("%-34s | %12.1f | %12.1f\n", "bytes per contact",
              static_cast<double>(sim_r.message_bytes + sim_r.control_bytes) /
                  contacts,
              static_cast<double>(eng_r.bytes_used) / contacts);
  std::printf("%-34s | %12.1f | %12.1f\n", "bytes per delivery",
              sim_r.interested_deliveries
                  ? static_cast<double>(sim_r.message_bytes +
                                        sim_r.control_bytes) /
                        static_cast<double>(sim_r.interested_deliveries)
                  : 0.0,
              eng_r.deliveries
                  ? static_cast<double>(eng_r.bytes_used) /
                        static_cast<double>(eng_r.deliveries)
                  : 0.0);
  std::printf("%-34s | %12s | %12.1f\n", "frames per contact", "-",
              static_cast<double>(eng_r.frames_delivered) / contacts);

  std::printf(
      "\nExpected: the engine costs a single-digit factor more than the "
      "analytic\naccounting — frame headers, checksums, custody acks, and "
      "above all re-offers\nto already-satisfied consumers (nodes keep no "
      "per-peer delivery memory) are\nthe price of running B-SUB on a real "
      "radio. Even so it stays in the low\nkilobytes per contact, under 0.1%% "
      "of a typical Bluetooth contact's budget,\nwith matching delivery "
      "ratios across the two substrates.\n");
  return 0;
}
