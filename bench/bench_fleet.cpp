// Fleet runtime benchmark: thousands of live B-SUB nodes per reactor
// thread, each point in its own process so peak RSS is per-point.
//
// Two claims under test:
//
//   1. Correct scale-out: the deterministic loopback engine at fleet scale
//      is bit-identical to engine::TraceRunner (the engine harness) — the
//      same protocol ran, just on live sessions over real reactors.
//   2. The fleet I/O plane earns its keep: epoll readiness + batched
//      sendmmsg/recvmmsg over shard sockets must beat the naive PR-5
//      scale-out (poll + one sendto/recvfrom syscall per datagram + one
//      socket per node) by >= 2x contacts/s at the 10k-node point.
//
// Full points: a 10k-node loopback differential, the four-way
// backend x io comparison (A poll+single+node-sockets, B epoll+single+
// node-sockets, C poll+batched+shard, D epoll+batched+shard) at 10k nodes,
// and a dense 10k-node D point for throughput + delivery-latency
// percentiles. `--smoke` runs the CI subset: a 256-node loopback
// differential and a 64-node real-UDP run, same gates.
//
// Gates (exit 1 on violation):
//   1. every loopback point is bit-identical to the engine harness;
//   2. D >= 2x A contacts/s (skipped where epoll or sendmmsg is missing);
//   3. throughput floors: shard-socket points >= 500 contacts/s, the
//      per-node-socket baselines >= 100 (coarse pathology catches, 20-90x
//      under observed single-core rates);
//   4. every issued contact completes, with <= 1% hard timeouts.
#include "fleet_common.h"

#include <cstring>
#include <string>
#include <vector>

#include "experiment_common.h"
#include "fork_util.h"
#include "resource_stats.h"

namespace {

using namespace bsub;
using namespace bsub::bench;

constexpr double kSpeedupFloor = 2.0;
constexpr double kShardThroughputFloor = 500.0;    // contacts/s
constexpr double kPerNodeThroughputFloor = 100.0;  // contacts/s
constexpr double kTimeoutCeiling = 0.01;           // of issued contacts

struct PointSpec {
  const char* label;
  FleetPoint point;
  bool udp = false;
  net::ReactorBackend backend = net::ReactorBackend::kAuto;
  bool batched = false;
  bool per_node_sockets = false;
  std::uint16_t base_port = 0;
  bool differential = false;  ///< loopback only
};

/// Flat POD subset of FleetRunResults (whose exec stats hold a vector and
/// cannot cross the fork pipe as raw bytes) plus per-point RSS.
struct PointResult {
  engine::TraceRunResults protocol{};
  metrics::TransportStats transport{};
  std::size_t reactor_threads = 0;
  double wall_seconds = 0.0;
  double contacts_per_second = 0.0;
  double deliveries_per_second = 0.0;
  double p50_delivery_latency_ms = 0.0;
  double p99_delivery_latency_ms = 0.0;
  std::uint64_t contacts_timed_out = 0;
  std::uint64_t send_syscalls = 0;
  std::uint64_t recv_syscalls = 0;
  std::uint64_t datagrams_out = 0;
  std::uint64_t sendq_drops = 0;
  std::uint64_t unroutable_drops = 0;
  std::uint64_t peak_rss_bytes = 0;
  bool differential_ok = true;

  void take(const net::FleetRunResults& r) {
    protocol = r.protocol;
    transport = r.transport;
    reactor_threads = r.reactor_threads;
    wall_seconds = r.wall_seconds;
    contacts_per_second = r.contacts_per_second;
    deliveries_per_second = r.deliveries_per_second;
    p50_delivery_latency_ms = r.p50_delivery_latency_ms;
    p99_delivery_latency_ms = r.p99_delivery_latency_ms;
    contacts_timed_out = r.contacts_timed_out;
    send_syscalls = r.send_syscalls;
    recv_syscalls = r.recv_syscalls;
    datagrams_out = r.datagrams_out;
    sendq_drops = r.sendq_drops;
    unroutable_drops = r.unroutable_drops;
  }
};

std::vector<PointSpec> full_points() {
  constexpr FleetPoint kCompare{10000, 8000, 100};
  constexpr FleetPoint kDense{10000, 80000, 500};
  return {
      {"loopback-10k", kDense, false, net::ReactorBackend::kAuto, false,
       false, 0, /*differential=*/true},
      {"A-poll-single-node", kCompare, true, net::ReactorBackend::kPoll,
       false, true, 21000},
      {"B-epoll-single-node", kCompare, true, net::ReactorBackend::kEpoll,
       false, true, 21000},
      {"C-poll-batched-shard", kCompare, true, net::ReactorBackend::kPoll,
       true, false, 47600},
      {"D-epoll-batched-shard", kCompare, true, net::ReactorBackend::kEpoll,
       true, false, 47600},
      {"udp-10k-dense", kDense, true, net::ReactorBackend::kEpoll, true,
       false, 47700},
  };
}

std::vector<PointSpec> smoke_points() {
  return {
      {"loopback-256", {256, 2048, 64}, false, net::ReactorBackend::kAuto,
       false, false, 0, /*differential=*/true},
      {"udp-64", {64, 1000, 50}, true, net::ReactorBackend::kAuto,
       net::fleet_udp_batched_available(), false, 47800},
  };
}

/// True when this platform can run the point as specified.
bool point_available(const PointSpec& spec) {
  if (!spec.udp) return true;
  if (!net::reactor_backend_available(spec.backend)) return false;
  if (spec.batched && !net::fleet_udp_batched_available()) return false;
  return true;
}

PointResult run_point(const PointSpec& spec) {
  const FleetScenario scenario(spec.point, kExperimentSeed);
  net::FleetConfig cfg = make_fleet_config(scenario, "");
  PointResult out;
  if (spec.udp) {
    cfg.backend = spec.backend;
    cfg.shards = 2;
    cfg.udp.base_port = spec.base_port;
    cfg.udp.batched_io = spec.batched;
    cfg.udp.per_node_sockets = spec.per_node_sockets;
    if (spec.per_node_sockets) {
      raise_fd_limit(spec.point.nodes + 4 * cfg.shards + 64);
    }
    net::FleetRuntime fleet(cfg);
    out.take(fleet.run_udp(scenario.trace, scenario.workload));
  } else {
    cfg.threads = 2;
    net::FleetRuntime fleet(cfg);
    out.take(fleet.run_loopback(scenario.trace, scenario.workload));
    if (spec.differential) {
      out.differential_ok = fleet_matches_engine(scenario, cfg, out.protocol);
    }
  }
  out.peak_rss_bytes = peak_rss_bytes();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  print_header(smoke ? "Fleet runtime (CI smoke subset)" : "Fleet runtime");
  WallTimer wall;

  const std::vector<PointSpec> points = smoke ? smoke_points() : full_points();

  std::printf("%-22s | %7s | %8s | %8s | %12s | %9s | %8s | %8s\n", "point",
              "nodes", "contacts", "seconds", "contacts/sec", "delivered",
              "p99 ms", "RSS MiB");

  std::vector<PointResult> results(points.size());
  std::vector<bool> ran(points.size(), false);
  std::vector<std::string> json_points;
  bool all_ok = true;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const PointSpec& spec = points[i];
    if (!point_available(spec)) {
      std::printf("%-22s | skipped (backend/batched io unavailable here)\n",
                  spec.label);
      continue;
    }
    if (!run_isolated([&] { return run_point(spec); }, results[i])) {
      std::fprintf(stderr, "point %s FAILED to run\n", spec.label);
      all_ok = false;
      continue;
    }
    ran[i] = true;
    const PointResult& p = results[i];
    std::printf("%-22s | %7zu | %8zu | %8.2f | %12.0f | %9llu | %8.1f | "
                "%8.1f\n",
                spec.label, spec.point.nodes, spec.point.contacts,
                p.wall_seconds, p.contacts_per_second,
                static_cast<unsigned long long>(p.protocol.deliveries),
                p.p99_delivery_latency_ms,
                static_cast<double>(p.peak_rss_bytes) / (1 << 20));
    json_points.push_back(
        JsonObject()
            .field("label", std::string(spec.label))
            .field("mode", std::string(spec.udp ? "udp" : "loopback"))
            .field("backend",
                   spec.udp ? std::string(net::reactor_backend_name(
                                  spec.backend))
                            : std::string("n/a"))
            .field("io", std::string(!spec.udp      ? "n/a"
                                     : spec.batched ? "batched"
                                                    : "single"))
            .field("sockets",
                   std::string(!spec.udp               ? "n/a"
                               : spec.per_node_sockets ? "node"
                                                       : "shard"))
            .field("nodes", static_cast<std::uint64_t>(spec.point.nodes))
            .field("contacts", static_cast<std::uint64_t>(spec.point.contacts))
            .field("messages", static_cast<std::uint64_t>(spec.point.messages))
            .field("reactor_threads",
                   static_cast<std::uint64_t>(p.reactor_threads))
            .field("seconds", p.wall_seconds)
            .field("contacts_per_sec", p.contacts_per_second)
            .field("deliveries_per_sec", p.deliveries_per_second)
            .field("deliveries", p.protocol.deliveries)
            .field("expected_deliveries", p.protocol.expected_deliveries)
            .field("p50_delivery_latency_ms", p.p50_delivery_latency_ms)
            .field("p99_delivery_latency_ms", p.p99_delivery_latency_ms)
            .field("contacts_timed_out", p.contacts_timed_out)
            .field("send_syscalls", p.send_syscalls)
            .field("recv_syscalls", p.recv_syscalls)
            .field("datagrams_out", p.datagrams_out)
            .field("sendq_drops", p.sendq_drops)
            .field("unroutable_drops", p.unroutable_drops)
            .field("peak_rss_bytes", p.peak_rss_bytes)
            .field("differential",
                   std::string(!spec.differential     ? "n/a"
                               : p.differential_ok    ? "pass"
                                                      : "FAIL"))
            .str());
  }

  // Gate 1: every loopback point is bit-identical to the engine harness.
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (!ran[i] || !points[i].differential) continue;
    std::printf("differential @ %s: %s\n", points[i].label,
                results[i].differential_ok ? "bit-identical" : "MISMATCH");
    if (!results[i].differential_ok) all_ok = false;
  }

  // Gate 2: the fleet I/O plane (D) vs the naive scale-out (A).
  {
    const PointResult* naive = nullptr;
    const PointResult* fleet = nullptr;
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (!ran[i]) continue;
      if (std::strncmp(points[i].label, "A-", 2) == 0) naive = &results[i];
      if (std::strncmp(points[i].label, "D-", 2) == 0) fleet = &results[i];
    }
    if (naive != nullptr && fleet != nullptr) {
      const double speedup =
          naive->contacts_per_second > 0.0
              ? fleet->contacts_per_second / naive->contacts_per_second
              : 0.0;
      const bool ok = speedup >= kSpeedupFloor;
      std::printf("speedup D/A: %.0f / %.0f contacts/s = %.2fx (floor "
                  "%.1fx): %s\n",
                  fleet->contacts_per_second, naive->contacts_per_second,
                  speedup, kSpeedupFloor, ok ? "OK" : "VIOLATION");
      if (!ok) all_ok = false;
    } else if (!smoke) {
      std::printf("speedup D/A: not judged (a comparison point is "
                  "unavailable on this platform)\n");
    }
  }

  // Gates 3 + 4: throughput floors; every contact completes, few time out.
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (!ran[i] || !points[i].udp) continue;
    const PointSpec& spec = points[i];
    const PointResult& p = results[i];
    const double floor = spec.per_node_sockets ? kPerNodeThroughputFloor
                                               : kShardThroughputFloor;
    if (p.contacts_per_second < floor) {
      std::fprintf(stderr,
                   "throughput floor violation @ %s: %.0f contacts/s "
                   "(floor %.0f)\n",
                   spec.label, p.contacts_per_second, floor);
      all_ok = false;
    }
    if (p.protocol.contacts_processed != spec.point.contacts) {
      std::fprintf(stderr, "lost contacts @ %s: %llu of %zu completed\n",
                   spec.label,
                   static_cast<unsigned long long>(
                       p.protocol.contacts_processed),
                   spec.point.contacts);
      all_ok = false;
    }
    if (static_cast<double>(p.contacts_timed_out) >
        kTimeoutCeiling * static_cast<double>(spec.point.contacts)) {
      std::fprintf(stderr, "timeout ceiling violation @ %s: %llu timed out\n",
                   spec.label,
                   static_cast<unsigned long long>(p.contacts_timed_out));
      all_ok = false;
    }
  }

  write_bench_json(smoke ? "fleet_smoke" : "fleet", wall.seconds(),
                   json_points);
  std::printf("fleet bench: %s\n", all_ok ? "all gates passed" : "FAILED");
  return all_ok ? 0 : 1;
}
