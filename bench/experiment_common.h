// Shared plumbing for the experiment binaries: scenario construction,
// protocol runners, and fixed-width table printing. Each binary regenerates
// one table or figure of the paper (see DESIGN.md's experiment index).
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/bsub_protocol.h"
#include "core/df_tuning.h"
#include "metrics/collector.h"
#include "routing/pull.h"
#include "routing/push.h"
#include "sim/simulator.h"
#include "trace/synthetic.h"
#include "workload/workload.h"

namespace bsub::bench {

/// Seed shared by all experiment binaries so figures are cross-consistent.
inline constexpr std::uint64_t kExperimentSeed = 2010;  // ICDCS 2010

struct Scenario {
  trace::ContactTrace trace;
  workload::KeySet keys;

  explicit Scenario(const trace::SyntheticTraceConfig& cfg)
      : trace(trace::generate_trace(cfg)),
        keys(workload::twitter_trend_keys()) {}

  workload::Workload make_workload(util::Time ttl) const {
    workload::WorkloadConfig wcfg;
    wcfg.ttl = ttl;
    wcfg.seed = kExperimentSeed + 1;
    return workload::Workload(trace, keys, wcfg);
  }
};

inline Scenario haggle_scenario() {
  return Scenario(trace::haggle_infocom06_config(kExperimentSeed));
}

inline Scenario reality_scenario() {
  return Scenario(trace::mit_reality_config(kExperimentSeed));
}

/// B-SUB with the paper's parameters and the DF derived from Eq. 5 for the
/// given delay bound (W = TTL, as section VII-B prescribes).
inline core::BsubConfig bsub_config_for(const Scenario& s, util::Time ttl) {
  core::BsubConfig cfg;
  cfg.df_per_minute =
      core::compute_df(s.trace, ttl, cfg.filter_params, cfg.initial_counter)
          .df_per_minute;
  return cfg;
}

struct ProtocolRun {
  metrics::RunResults results;
  core::BsubProtocol::TrafficBreakdown traffic;  // zero for PUSH/PULL
  double relay_fpr = 0.0;                        // B-SUB only
};

inline ProtocolRun run_push(const Scenario& s, const workload::Workload& w) {
  routing::PushProtocol proto;
  return {sim::Simulator().run(s.trace, w, proto), {}, 0.0};
}

inline ProtocolRun run_pull(const Scenario& s, const workload::Workload& w) {
  routing::PullProtocol proto;
  return {sim::Simulator().run(s.trace, w, proto), {}, 0.0};
}

inline ProtocolRun run_bsub(const Scenario& s, const workload::Workload& w,
                            const core::BsubConfig& cfg) {
  core::BsubProtocol proto(cfg);
  ProtocolRun out;
  out.results = sim::Simulator().run(s.trace, w, proto);
  out.traffic = proto.traffic();
  out.relay_fpr = proto.measured_relay_fpr();
  return out;
}

inline void print_header(const std::string& title) {
  std::printf("\n%s\n", title.c_str());
  std::printf("%s\n", std::string(title.size(), '-').c_str());
}

}  // namespace bsub::bench
