// Shared plumbing for the experiment binaries: scenario construction,
// protocol runners, parallel sweep execution, fixed-width table printing,
// and BENCH_*.json result emission. Each binary regenerates one table or
// figure of the paper (see DESIGN.md's experiment index).
#pragma once

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/bsub_protocol.h"
#include "core/df_tuning.h"
#include "core/protocol_registry.h"
#include "metrics/collector.h"
#include "sim/simulator.h"
#include "trace/synthetic.h"
#include "util/parallel.h"
#include "workload/workload.h"

namespace bsub::bench {

/// Seed shared by all experiment binaries so figures are cross-consistent.
inline constexpr std::uint64_t kExperimentSeed = 2010;  // ICDCS 2010

struct Scenario {
  trace::ContactTrace trace;
  workload::KeySet keys;

  explicit Scenario(const trace::SyntheticTraceConfig& cfg)
      : trace(trace::generate_trace(cfg)),
        keys(workload::twitter_trend_keys()) {}

  workload::Workload make_workload(util::Time ttl) const {
    workload::WorkloadConfig wcfg;
    wcfg.ttl = ttl;
    wcfg.seed = kExperimentSeed + 1;
    return workload::Workload(trace, keys, wcfg);
  }
};

inline Scenario haggle_scenario() {
  return Scenario(trace::haggle_infocom06_config(kExperimentSeed));
}

inline Scenario reality_scenario() {
  return Scenario(trace::mit_reality_config(kExperimentSeed));
}

/// B-SUB with the paper's parameters and the DF derived from Eq. 5 for the
/// given delay bound (W = TTL, as section VII-B prescribes).
inline core::BsubConfig bsub_config_for(const Scenario& s, util::Time ttl) {
  core::BsubConfig cfg;
  cfg.df_per_minute =
      core::compute_df(s.trace, ttl, cfg.filter_params, cfg.initial_counter)
          .df_per_minute;
  return cfg;
}

struct ProtocolRun {
  metrics::RunResults results;
  core::BsubProtocol::TrafficBreakdown traffic;  // zero for baselines
  double relay_fpr = 0.0;                        // B-SUB only
};

/// The full protocol table, shared by every experiment/scale/matrix entry
/// point. Benches name protocols by spec string, never by constructor.
inline const sim::ProtocolRegistry& protocol_registry() {
  static const sim::ProtocolRegistry registry = core::make_protocol_registry();
  return registry;
}

/// Runs one protocol named by spec over a materialized scenario. B-SUB's
/// extra observability (traffic breakdown, measured relay FPR) is filled
/// when the spec resolves to B-SUB; baselines report zeros.
inline ProtocolRun run_spec(const Scenario& s, const workload::Workload& w,
                            const std::string& spec) {
  const std::unique_ptr<sim::Protocol> proto = protocol_registry().make(spec);
  ProtocolRun out;
  out.results = sim::Simulator().run(s.trace, w, *proto);
  if (const auto* bsub =
          dynamic_cast<const core::BsubProtocol*>(proto.get())) {
    out.traffic = bsub->traffic();
    out.relay_fpr = bsub->measured_relay_fpr();
  }
  return out;
}

inline ProtocolRun run_push(const Scenario& s, const workload::Workload& w) {
  return run_spec(s, w, "PUSH");
}

inline ProtocolRun run_pull(const Scenario& s, const workload::Workload& w) {
  return run_spec(s, w, "PULL");
}

inline ProtocolRun run_bsub(const Scenario& s, const workload::Workload& w,
                            const core::BsubConfig& cfg) {
  // Through the exact round-trip printer, so every B-SUB experiment run
  // also exercises the registry's spec grammar.
  return run_spec(s, w, core::bsub_spec(cfg));
}

inline void print_header(const std::string& title) {
  std::printf("\n%s\n", title.c_str());
  std::printf("%s\n", std::string(title.size(), '-').c_str());
}

// --- parallel sweep execution ----------------------------------------------

/// Runs one sweep point per input, concurrently on the process-wide worker
/// count (BSUB_THREADS overrides; 1 forces serial). Every point must own its
/// mutable state — the Scenario/Workload may be shared read-only. Results
/// come back in input order, so parallel and serial runs are identical.
template <class Point, class Fn>
auto run_points_parallel(const std::vector<Point>& points, Fn&& fn,
                         std::size_t threads = 0)
    -> std::vector<decltype(fn(points[0]))> {
  return util::parallel_map(points, std::forward<Fn>(fn), threads);
}

/// Wall-clock timer for per-binary BENCH reports.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

// --- BENCH_*.json emission --------------------------------------------------

/// Minimal JSON object builder for sweep-point rows. Doubles print with
/// %.17g so serial and parallel runs serialize bit-identically.
class JsonObject {
 public:
  JsonObject& field(const char* key, double v) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return raw(key, buf);
  }
  JsonObject& field(const char* key, std::uint64_t v) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    return raw(key, buf);
  }
  JsonObject& field(const char* key, int v) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%d", v);
    return raw(key, buf);
  }
  JsonObject& field(const char* key, const std::string& v) {
    std::string quoted = "\"";
    for (char c : v) {
      if (c == '"' || c == '\\') quoted += '\\';
      quoted += c;
    }
    quoted += '"';
    return raw(key, quoted);
  }

  std::string str() const { return "{" + body_ + "}"; }

 private:
  JsonObject& raw(const char* key, const std::string& value) {
    if (!body_.empty()) body_ += ", ";
    body_ += "\"";
    body_ += key;
    body_ += "\": ";
    body_ += value;
    return *this;
  }
  std::string body_;
};

/// Renders the sweep points as a JSON array — the part of a BENCH report
/// that must be identical between serial and parallel runs.
inline std::string points_json(const std::vector<std::string>& points) {
  std::string out = "[";
  for (std::size_t i = 0; i < points.size(); ++i) {
    out += i == 0 ? "\n  " : ",\n  ";
    out += points[i];
  }
  out += "\n]";
  return out;
}

/// Writes BENCH_<name>.json into the working directory: per-binary wall
/// time plus the sweep-point results, for the perf trajectory.
inline void write_bench_json(const std::string& name, double wall_seconds,
                             const std::vector<std::string>& points) {
  const std::string path = "BENCH_" + name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f,
               "{\"bench\": \"%s\", \"threads\": %zu, \"wall_seconds\": "
               "%.3f, \"points\": %s}\n",
               name.c_str(), util::default_thread_count(), wall_seconds,
               points_json(points).c_str());
  std::fclose(f);
  std::printf("\n[%s] %.2fs wall on %zu thread(s) -> %s\n", name.c_str(),
              wall_seconds, util::default_thread_count(), path.c_str());
}

}  // namespace bsub::bench
