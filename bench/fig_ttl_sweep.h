// Shared driver for Fig. 7 (Haggle) and Fig. 8 (MIT Reality): delivery
// ratio, delay, and forwardings-per-delivered-message of PUSH / B-SUB /
// PULL across a log-scaled TTL axis.
#pragma once

#include "experiment_common.h"

namespace bsub::bench {

inline void run_ttl_sweep(const char* figure, const Scenario& scenario) {
  // The paper sweeps TTL on a log axis from ~10 to ~1200 minutes.
  const double ttl_minutes[] = {10, 30, 60, 120, 300, 600, 1200};

  std::printf("%s: PUSH vs B-SUB vs PULL over TTL (trace: %s)\n", figure,
              scenario.trace.name().c_str());
  std::printf("%8s | %25s | %29s | %26s\n", "", "delivery ratio",
              "mean delay (minutes)", "forwardings/delivery");
  std::printf("%8s | %7s %8s %7s | %9s %9s %9s | %8s %8s %7s\n",
              "TTL(min)", "PUSH", "B-SUB", "PULL", "PUSH", "B-SUB", "PULL",
              "PUSH", "B-SUB", "PULL");

  for (double ttl_min : ttl_minutes) {
    const util::Time ttl = util::from_minutes(ttl_min);
    const workload::Workload w = scenario.make_workload(ttl);
    const ProtocolRun push = run_push(scenario, w);
    const ProtocolRun bsub = run_bsub(scenario, w, bsub_config_for(scenario, ttl));
    const ProtocolRun pull = run_pull(scenario, w);
    std::printf(
        "%8.0f | %7.3f %8.3f %7.3f | %9.1f %9.1f %9.1f | %8.2f %8.2f %7.2f\n",
        ttl_min, push.results.delivery_ratio, bsub.results.delivery_ratio,
        pull.results.delivery_ratio, push.results.mean_delay_minutes,
        bsub.results.mean_delay_minutes, pull.results.mean_delay_minutes,
        push.results.forwardings_per_delivery,
        bsub.results.forwardings_per_delivery,
        pull.results.forwardings_per_delivery);
  }
  std::printf(
      "\nExpected shape (paper %s): delivery PUSH >= B-SUB > PULL with B-SUB"
      " close to PUSH;\ndelay PUSH <= B-SUB << PULL; forwardings PUSH >> "
      "B-SUB > PULL (~1).\n",
      figure);
}

}  // namespace bsub::bench
