// Shared driver for Fig. 7 (Haggle) and Fig. 8 (MIT Reality): delivery
// ratio, delay, and forwardings-per-delivered-message of PUSH / B-SUB /
// PULL across a log-scaled TTL axis. Sweep points are independent (each
// owns its workload and simulator), so they run on the parallel runner;
// results are printed in axis order and recorded to BENCH_<name>.json.
#pragma once

#include "experiment_common.h"

namespace bsub::bench {

inline void run_ttl_sweep(const char* figure, const char* bench_name,
                          const Scenario& scenario) {
  // The paper sweeps TTL on a log axis from ~10 to ~1200 minutes.
  const std::vector<double> ttl_minutes = {10, 30, 60, 120, 300, 600, 1200};

  struct Row {
    double ttl_min = 0.0;
    ProtocolRun push, bsub, pull;
  };

  WallTimer timer;
  const std::vector<Row> rows =
      run_points_parallel(ttl_minutes, [&](double ttl_min) {
        const util::Time ttl = util::from_minutes(ttl_min);
        const workload::Workload w = scenario.make_workload(ttl);
        Row r;
        r.ttl_min = ttl_min;
        r.push = run_push(scenario, w);
        r.bsub = run_bsub(scenario, w, bsub_config_for(scenario, ttl));
        r.pull = run_pull(scenario, w);
        return r;
      });

  std::printf("%s: PUSH vs B-SUB vs PULL over TTL (trace: %s)\n", figure,
              scenario.trace.name().c_str());
  std::printf("%8s | %25s | %29s | %26s\n", "", "delivery ratio",
              "mean delay (minutes)", "forwardings/delivery");
  std::printf("%8s | %7s %8s %7s | %9s %9s %9s | %8s %8s %7s\n",
              "TTL(min)", "PUSH", "B-SUB", "PULL", "PUSH", "B-SUB", "PULL",
              "PUSH", "B-SUB", "PULL");

  std::vector<std::string> points;
  for (const Row& r : rows) {
    std::printf(
        "%8.0f | %7.3f %8.3f %7.3f | %9.1f %9.1f %9.1f | %8.2f %8.2f %7.2f\n",
        r.ttl_min, r.push.results.delivery_ratio,
        r.bsub.results.delivery_ratio, r.pull.results.delivery_ratio,
        r.push.results.mean_delay_minutes, r.bsub.results.mean_delay_minutes,
        r.pull.results.mean_delay_minutes,
        r.push.results.forwardings_per_delivery,
        r.bsub.results.forwardings_per_delivery,
        r.pull.results.forwardings_per_delivery);
    points.push_back(
        JsonObject()
            .field("ttl_min", r.ttl_min)
            .field("push_delivery", r.push.results.delivery_ratio)
            .field("bsub_delivery", r.bsub.results.delivery_ratio)
            .field("pull_delivery", r.pull.results.delivery_ratio)
            .field("push_delay_min", r.push.results.mean_delay_minutes)
            .field("bsub_delay_min", r.bsub.results.mean_delay_minutes)
            .field("pull_delay_min", r.pull.results.mean_delay_minutes)
            .field("push_fwd", r.push.results.forwardings_per_delivery)
            .field("bsub_fwd", r.bsub.results.forwardings_per_delivery)
            .field("pull_fwd", r.pull.results.forwardings_per_delivery)
            .str());
  }
  std::printf(
      "\nExpected shape (paper %s): delivery PUSH >= B-SUB > PULL with B-SUB"
      " close to PUSH;\ndelay PUSH <= B-SUB << PULL; forwardings PUSH >> "
      "B-SUB > PULL (~1).\n",
      figure);
  write_bench_json(bench_name, timer.seconds(), points);
}

}  // namespace bsub::bench
