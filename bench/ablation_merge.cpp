// Ablation: M-merge vs A-merge between brokers (paper Fig. 6's
// bogus-counter argument). A-merge lets frequently-meeting brokers inflate
// each other's counters in a feedback loop, corrupting forwarder selection;
// the run shows the resulting relay bloat and traffic shift.
#include "experiment_common.h"

int main() {
  using namespace bsub::bench;
  using namespace bsub;
  print_header("Ablation — broker relay merge mode (paper Fig. 6)");

  const Scenario scenario = haggle_scenario();
  const util::Time ttl = 10 * util::kHour;
  const workload::Workload w = scenario.make_workload(ttl);

  std::printf("trace: %s, TTL = 10 h\n\n", scenario.trace.name().c_str());
  std::printf("%8s | %8s | %10s | %9s | %14s | %14s\n", "merge", "delivery",
              "delay(min)", "fwd/deliv", "max counter", "mean counter");
  for (core::BrokerMergeMode mode :
       {core::BrokerMergeMode::kMMerge, core::BrokerMergeMode::kAMerge}) {
    core::BsubConfig cfg = bsub_config_for(scenario, ttl);
    cfg.broker_merge = mode;
    core::BsubProtocol proto(cfg);
    const auto r = sim::Simulator().run(scenario.trace, w, proto);

    // Counter inflation at end of run: the Fig. 6 pathology is A-merged
    // counters growing without bound between frequently-meeting brokers.
    double max_counter = 0.0, sum = 0.0;
    std::size_t set_bits = 0;
    for (trace::NodeId n = 0; n < scenario.trace.node_count(); ++n) {
      const auto& relay = proto.interests().relay_snapshot(n);
      for (std::size_t b : relay.set_bits()) {
        max_counter = std::max(max_counter, relay.counter(b));
        sum += relay.counter(b);
        ++set_bits;
      }
    }
    const double mean_counter = set_bits ? sum / set_bits : 0.0;

    std::printf("%8s | %8.3f | %10.1f | %9.2f | %14.0f | %14.0f\n",
                mode == core::BrokerMergeMode::kMMerge ? "M-merge" : "A-merge",
                r.delivery_ratio, r.mean_delay_minutes,
                r.forwardings_per_delivery, max_counter, mean_counter);
  }
  std::printf(
      "\nExpected (paper Fig. 6): A-merge lets frequently-meeting brokers "
      "amplify each\nother's counters without bound — the inflated (bogus) "
      "counters defeat the DF's\ntimeliness/scope control (the filter "
      "behaves as if DF -> 0) and corrupt the\npreferential ranking of "
      "forwarders. M-merge keeps counters bounded by the\ngenuine "
      "reinforcement level.\n");
  return 0;
}
