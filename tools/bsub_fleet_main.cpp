// bsub_fleet: thousands of live B-SUB nodes from one command line.
//
// Runs one fleet point (synthetic community trace + workload) through the
// fleet runtime on either engine:
//
//   # deterministic loopback replay, checked bit-for-bit against the
//   # engine harness
//   bsub_fleet --nodes 1000 --contacts 8000 --threads 2 --differential
//
//   # real time over batched shard sockets on the epoll backend
//   bsub_fleet --mode udp --nodes 256 --contacts 2000 --shards 2 \
//              --backend epoll --io batched --sockets shard
//
// `--sockets node` is the measurable baseline (one UDP socket per node);
// it implies `--io single` unless batching is asked for explicitly, and
// raises RLIMIT_NOFILE toward what the fleet needs.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bloom/kernels.h"
#include "fleet_common.h"
#include "net/fleet/fleet_runtime.h"
#include "net/reactor.h"
#include "resource_stats.h"
#include "tool_listing.h"
#include "util/errors.h"

namespace {

using namespace bsub;
using namespace bsub::bench;

constexpr std::uint64_t kDefaultSeed = 2010;

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --nodes N              fleet size (default 1000)\n"
      "  --contacts C           contact events (default 8000)\n"
      "  --messages M           workload messages (default 200)\n"
      "  --seed S               scenario seed (default %llu)\n"
      "  --mode loopback|udp    engine (default loopback)\n"
      "  --threads T            loopback reactor threads (0 = auto)\n"
      "  --shards K             udp reactor threads / shard sockets "
      "(default 2)\n"
      "  --backend auto|poll|epoll  readiness backend (udp mode)\n"
      "  --io batched|single    sendmmsg/recvmmsg vs sendto/recvfrom\n"
      "  --sockets shard|node   one socket per shard or per node\n"
      "  --base-port P          first UDP port (default 47000)\n"
      "  --protocol SPEC        B-SUB spec, e.g. bsub:df=0.5,copies=5\n"
      "                         (default: DF tuned from the trace)\n"
      "  --kernel NAME          TCBF kernel: scalar|blocked|avx2|neon|auto\n"
      "  --differential         loopback only: also run the engine harness\n"
      "                         and require bit-identical results\n"
      "  --list-protocols       print the protocol registry and exit\n"
      "  --list-kernels         print the TCBF kernel backends and exit\n",
      argv0, static_cast<unsigned long long>(kDefaultSeed));
  return 2;
}

struct Options {
  FleetPoint point;
  std::uint64_t seed = kDefaultSeed;
  bool udp = false;
  std::uint64_t threads = 0;
  std::uint64_t shards = 2;
  net::ReactorBackend backend = net::ReactorBackend::kAuto;
  bool batched_io = false;
  bool io_explicit = false;
  bool per_node_sockets = false;
  std::uint64_t base_port = 47000;
  std::string protocol;
  std::string kernel;
  bool differential = false;
};

bool parse_u64(const char* s, std::uint64_t& out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') return false;
  out = v;
  return true;
}

bool parse_options(int argc, char** argv, Options& opts) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    auto next_u64 = [&](std::uint64_t& out) {
      const char* v = next();
      return v != nullptr && parse_u64(v, out);
    };
    std::uint64_t v = 0;
    if (std::strcmp(arg, "--nodes") == 0) {
      if (!next_u64(v)) return false;
      opts.point.nodes = static_cast<std::size_t>(v);
    } else if (std::strcmp(arg, "--contacts") == 0) {
      if (!next_u64(v)) return false;
      opts.point.contacts = static_cast<std::size_t>(v);
    } else if (std::strcmp(arg, "--messages") == 0) {
      if (!next_u64(v)) return false;
      opts.point.messages = static_cast<std::size_t>(v);
    } else if (std::strcmp(arg, "--seed") == 0) {
      if (!next_u64(opts.seed)) return false;
    } else if (std::strcmp(arg, "--mode") == 0) {
      const char* m = next();
      if (!m) return false;
      if (std::strcmp(m, "loopback") == 0) {
        opts.udp = false;
      } else if (std::strcmp(m, "udp") == 0) {
        opts.udp = true;
      } else {
        return false;
      }
    } else if (std::strcmp(arg, "--threads") == 0) {
      if (!next_u64(opts.threads)) return false;
    } else if (std::strcmp(arg, "--shards") == 0) {
      if (!next_u64(opts.shards) || opts.shards == 0) return false;
    } else if (std::strcmp(arg, "--backend") == 0) {
      const char* b = next();
      if (!b) return false;
      const auto parsed = net::parse_reactor_backend(b);
      if (!parsed) return false;
      opts.backend = *parsed;
    } else if (std::strcmp(arg, "--io") == 0) {
      const char* m = next();
      if (!m) return false;
      if (std::strcmp(m, "batched") == 0) {
        opts.batched_io = true;
      } else if (std::strcmp(m, "single") == 0) {
        opts.batched_io = false;
      } else {
        return false;
      }
      opts.io_explicit = true;
    } else if (std::strcmp(arg, "--sockets") == 0) {
      const char* m = next();
      if (!m) return false;
      if (std::strcmp(m, "shard") == 0) {
        opts.per_node_sockets = false;
      } else if (std::strcmp(m, "node") == 0) {
        opts.per_node_sockets = true;
      } else {
        return false;
      }
    } else if (std::strcmp(arg, "--base-port") == 0) {
      if (!next_u64(opts.base_port) || opts.base_port == 0 ||
          opts.base_port > 65535) {
        return false;
      }
    } else if (std::strcmp(arg, "--protocol") == 0) {
      const char* p = next();
      if (!p) return false;
      opts.protocol = p;
    } else if (std::strcmp(arg, "--kernel") == 0) {
      const char* k = next();
      if (!k) return false;
      opts.kernel = k;
    } else if (std::strcmp(arg, "--differential") == 0) {
      opts.differential = true;
    } else {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--list-protocols") == 0) {
      return bsub::tools::list_protocols();
    }
    if (std::strcmp(argv[i], "--list-kernels") == 0) {
      return bsub::tools::list_kernels();
    }
  }

  using namespace bsub;
  using namespace bsub::bench;

  Options opts;
  if (!parse_options(argc, argv, opts)) return usage(argv[0]);
  if (opts.differential && opts.udp) {
    std::fprintf(stderr,
                 "bsub_fleet: --differential requires --mode loopback "
                 "(real-time runs are not bit-comparable)\n");
    return 2;
  }
  if (!opts.io_explicit) {
    // Batch by default where the platform supports it; the per-node-socket
    // baseline has per-socket queues, which batching cannot help.
    opts.batched_io =
        net::fleet_udp_batched_available() && !opts.per_node_sockets;
  }

  namespace kernels = bsub::bloom::kernels;
  if (!opts.kernel.empty() && opts.kernel != "auto") {
    const auto kind = kernels::parse_kind(opts.kernel);
    if (!kind) {
      std::fprintf(stderr, "bsub_fleet: unknown --kernel %s\n",
                   opts.kernel.c_str());
      return usage(argv[0]);
    }
    if (!kernels::force_kernel(*kind)) {
      std::fprintf(stderr,
                   "bsub_fleet: --kernel %s is unavailable in this build/"
                   "CPU\n",
                   opts.kernel.c_str());
      return 1;
    }
  }

  try {
    std::printf("fleet scenario: %zu nodes, %zu contacts, %zu messages, "
                "seed %llu\n",
                opts.point.nodes, opts.point.contacts, opts.point.messages,
                static_cast<unsigned long long>(opts.seed));
    const FleetScenario scenario(opts.point, opts.seed);
    net::FleetConfig cfg = make_fleet_config(scenario, opts.protocol);
    std::printf("protocol:       %s (df=%.4g/min), kernel %s\n",
                opts.protocol.empty() ? "B-SUB (trace-tuned)"
                                      : opts.protocol.c_str(),
                cfg.runtime.node.df_per_minute,
                std::string(kernels::kind_name(kernels::active_kind()))
                    .c_str());

    net::FleetRunResults r;
    if (opts.udp) {
      cfg.backend = opts.backend;
      cfg.shards = static_cast<std::size_t>(opts.shards);
      cfg.udp.base_port = static_cast<std::uint16_t>(opts.base_port);
      cfg.udp.batched_io = opts.batched_io;
      cfg.udp.per_node_sockets = opts.per_node_sockets;
      cfg.udp.validate();
      if (opts.per_node_sockets) {
        raise_fd_limit(opts.point.nodes + 4 * opts.shards + 64);
      }
      std::printf("engine:         udp real-time, %zu shard(s), backend %s, "
                  "io %s, sockets %s\n",
                  cfg.shards,
                  std::string(net::reactor_backend_name(cfg.backend)).c_str(),
                  cfg.udp.batched_io ? "batched" : "single",
                  cfg.udp.per_node_sockets ? "node" : "shard");
      net::FleetRuntime fleet(cfg);
      r = fleet.run_udp(scenario.trace, scenario.workload);
    } else {
      cfg.threads = static_cast<std::size_t>(opts.threads);
      std::printf("engine:         loopback virtual time, %s threads\n",
                  opts.threads == 0
                      ? "auto"
                      : std::to_string(opts.threads).c_str());
      net::FleetRuntime fleet(cfg);
      r = fleet.run_loopback(scenario.trace, scenario.workload);
      if (opts.differential &&
          !fleet_matches_engine(scenario, cfg, r.protocol)) {
        std::printf("DIFFERENTIAL FAIL\n");
        return 1;
      }
      if (opts.differential) std::printf("DIFFERENTIAL PASS\n");
    }

    std::printf("reactor threads: %zu\n", r.reactor_threads);
    std::printf("contacts:       %llu processed, %llu timed out\n",
                static_cast<unsigned long long>(r.protocol.contacts_processed),
                static_cast<unsigned long long>(r.contacts_timed_out));
    std::printf("wall seconds:   %.3f\n", r.wall_seconds);
    std::printf("contacts/sec:   %.0f\n", r.contacts_per_second);
    std::printf("deliveries:     %llu / %llu expected (ratio %.3f)\n",
                static_cast<unsigned long long>(r.protocol.deliveries),
                static_cast<unsigned long long>(
                    r.protocol.expected_deliveries),
                r.protocol.delivery_ratio);
    std::printf("frames:         %llu received, %llu retransmitted\n",
                static_cast<unsigned long long>(r.transport.frames_received),
                static_cast<unsigned long long>(
                    r.transport.frames_retransmitted));
    if (opts.udp) {
      std::printf("datagrams:      %llu out / %llu in | syscalls %llu send / "
                  "%llu recv\n",
                  static_cast<unsigned long long>(r.datagrams_out),
                  static_cast<unsigned long long>(r.datagrams_in),
                  static_cast<unsigned long long>(r.send_syscalls),
                  static_cast<unsigned long long>(r.recv_syscalls));
      std::printf("drops:          %llu sendq, %llu unroutable\n",
                  static_cast<unsigned long long>(r.sendq_drops),
                  static_cast<unsigned long long>(r.unroutable_drops));
      std::printf("latency ms:     p50 %.2f, p99 %.2f\n",
                  r.p50_delivery_latency_ms, r.p99_delivery_latency_ms);
    }
    std::printf("peak RSS:       %.1f MiB\n",
                static_cast<double>(peak_rss_bytes()) / (1 << 20));
  } catch (const bsub::util::ConfigError& e) {
    std::fprintf(stderr, "bsub_fleet: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bsub_fleet: %s\n", e.what());
    return 1;
  }
  return 0;
}
