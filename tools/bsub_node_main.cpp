// bsub_node: a live B-SUB endpoint on a real UDP socket.
//
// One process = one node of the paper's HUNET: it subscribes to content
// keys, publishes messages, and runs contacts with every peer it is pointed
// at — HELLO / filter exchange / message transfer over the session layer,
// driven by the poll reactor in real time.
//
//   # terminal 1: a subscriber waiting on port 4711
//   bsub_node --id 1 --bind 127.0.0.1:4711 --subscribe news
//
//   # terminal 2: a publisher that contacts it and hands the message over
//   bsub_node --id 2 --bind 127.0.0.1:0 --peer 127.0.0.1:4711 \
//             --publish news=hello --duration-ms 2000
//
// Deliveries are printed as single "DELIVER ..." lines on stdout (the CI
// smoke test greps for them); everything diagnostic goes to stderr.
#include <atomic>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bloom/kernels.h"
#include "core/protocol_registry.h"
#include "engine/node.h"
#include "metrics/collector.h"
#include "net/clock.h"
#include "net/node_runtime.h"
#include "net/reactor.h"
#include "net/transport.h"
#include "net/udp.h"
#include "tool_listing.h"
#include "util/time.h"

namespace {

std::atomic<bool> g_interrupted{false};

void on_signal(int) { g_interrupted.store(true); }

struct Options {
  bsub::engine::NodeId id = 1;
  bsub::net::Endpoint bind = bsub::net::make_udp_endpoint(0x7F000001, 0);
  std::vector<bsub::net::Endpoint> peers;
  std::vector<std::string> subscriptions;
  std::vector<std::pair<std::string, std::string>> publishes;  // key, body
  bool broker = false;
  bsub::util::Time ttl = bsub::util::kHour;
  bsub::util::Time duration = 0;  ///< 0 = run until SIGINT
  bsub::util::Time decay_tick = bsub::util::kMinute;
  std::string kernel;    ///< TCBF kernel backend override (empty = auto)
  std::string protocol;  ///< protocol spec (empty = default B-SUB config)
};

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --id N                 node id (default 1)\n"
      "  --bind IP:PORT         UDP bind address (default 127.0.0.1:0)\n"
      "  --peer IP:PORT         contact this peer at startup (repeatable)\n"
      "  --subscribe KEY        subscribe to a content key (repeatable)\n"
      "  --publish KEY=TEXT     publish a message (repeatable)\n"
      "  --broker               start with the broker role\n"
      "  --ttl-ms N             published-message TTL (default 1h)\n"
      "  --duration-ms N        exit after N ms (default: run until SIGINT)\n"
      "  --decay-tick-ms N      TCBF decay tick period (default 1min)\n"
      "  --kernel NAME          TCBF kernel backend: scalar | blocked | avx2\n"
      "                         | neon | auto (default: auto dispatch; also\n"
      "                         settable via the BSUB_KERNEL env variable)\n"
      "  --protocol SPEC        protocol spec, e.g. bsub:df=0.5,copies=5\n"
      "                         (a live node runs only B-SUB; parameters\n"
      "                         configure it — see core::bsub_config_from_"
      "spec)\n"
      "  --list-protocols       print the protocol registry and exit\n"
      "  --list-kernels         print the TCBF kernel backends and exit\n",
      argv0);
  return 2;
}

bool parse_options(int argc, char** argv, Options& opts) {
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) return nullptr;
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--id") {
      const char* v = need_value(i);
      if (!v) return false;
      opts.id = std::strtoull(v, nullptr, 10);
    } else if (flag == "--bind") {
      const char* v = need_value(i);
      if (!v || !bsub::net::parse_udp_endpoint(v, opts.bind)) return false;
    } else if (flag == "--peer") {
      const char* v = need_value(i);
      bsub::net::Endpoint ep = 0;
      if (!v || !bsub::net::parse_udp_endpoint(v, ep)) return false;
      opts.peers.push_back(ep);
    } else if (flag == "--subscribe") {
      const char* v = need_value(i);
      if (!v) return false;
      opts.subscriptions.emplace_back(v);
    } else if (flag == "--publish") {
      const char* v = need_value(i);
      if (!v) return false;
      const std::string spec(v);
      const std::size_t eq = spec.find('=');
      if (eq == std::string::npos || eq == 0) return false;
      opts.publishes.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
    } else if (flag == "--broker") {
      opts.broker = true;
    } else if (flag == "--ttl-ms") {
      const char* v = need_value(i);
      if (!v) return false;
      opts.ttl = std::strtoll(v, nullptr, 10);
    } else if (flag == "--duration-ms") {
      const char* v = need_value(i);
      if (!v) return false;
      opts.duration = std::strtoll(v, nullptr, 10);
    } else if (flag == "--decay-tick-ms") {
      const char* v = need_value(i);
      if (!v) return false;
      opts.decay_tick = std::strtoll(v, nullptr, 10);
    } else if (flag == "--kernel") {
      const char* v = need_value(i);
      if (!v) return false;
      opts.kernel = v;
    } else if (flag == "--protocol") {
      const char* v = need_value(i);
      if (!v) return false;
      opts.protocol = v;
    } else {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--list-protocols") == 0) {
      return bsub::tools::list_protocols();
    }
    if (std::strcmp(argv[i], "--list-kernels") == 0) {
      return bsub::tools::list_kernels();
    }
  }

  Options opts;
  if (!parse_options(argc, argv, opts)) return usage(argv[0]);

  namespace kernels = bsub::bloom::kernels;
  if (!opts.kernel.empty() && opts.kernel != "auto") {
    const auto kind = kernels::parse_kind(opts.kernel);
    if (!kind) {
      std::fprintf(stderr, "bsub_node: unknown --kernel %s\n",
                   opts.kernel.c_str());
      return usage(argv[0]);
    }
    if (!kernels::force_kernel(*kind)) {
      std::fprintf(stderr,
                   "bsub_node: --kernel %s is unavailable in this build/CPU\n",
                   opts.kernel.c_str());
      return 1;
    }
  }
  std::fprintf(stderr, "bsub_node: TCBF kernel backend: %s\n",
               std::string(kernels::kind_name(kernels::active_kind()))
                   .c_str());

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  bsub::net::SteadyClock clock;
  bsub::net::Reactor reactor(clock);
  bsub::metrics::TransportCounters counters;

  try {
    bsub::net::UdpTransport transport(reactor, opts.bind);

    bsub::net::RuntimeConfig config;
    config.decay_tick = opts.decay_tick;
    if (!opts.protocol.empty()) {
      const bsub::core::BsubConfig proto =
          bsub::core::bsub_config_from_spec(opts.protocol);
      if (proto.adaptive_df) {
        std::fprintf(stderr,
                     "bsub_node: adaptive DF is not supported by the live "
                     "runtime\n");
        return 1;
      }
      config.node = bsub::engine::node_config_from(proto);
    }
    bsub::net::NodeRuntime runtime(opts.id, config, transport, reactor,
                                   counters);
    runtime.node().set_broker(opts.broker);
    for (const std::string& key : opts.subscriptions) {
      runtime.node().subscribe(key);
    }
    runtime.node().set_delivery_handler(
        [&](const bsub::engine::ContentMessage& msg, bsub::util::Time) {
          std::printf("DELIVER id=%llu key=%s bytes=%zu\n",
                      static_cast<unsigned long long>(msg.id), msg.key.c_str(),
                      msg.body.size());
          std::fflush(stdout);
        });

    std::uint64_t next_id = opts.id << 20;
    for (const auto& [key, text] : opts.publishes) {
      bsub::engine::ContentMessage msg;
      msg.id = next_id++;
      msg.key = key;
      msg.body.assign(text.begin(), text.end());
      msg.producer = opts.id;
      msg.created = clock.now();
      msg.ttl = opts.ttl;
      runtime.node().publish(std::move(msg), clock.now());
    }

    std::fprintf(stderr, "bsub_node %llu listening on %s\n",
                 static_cast<unsigned long long>(opts.id),
                 bsub::net::format_udp_endpoint(transport.local_endpoint())
                     .c_str());
    for (bsub::net::Endpoint peer : opts.peers) {
      std::fprintf(stderr, "contacting %s\n",
                   bsub::net::format_udp_endpoint(peer).c_str());
      runtime.connect(peer);
    }

    const bsub::util::Time deadline =
        opts.duration > 0 ? clock.now() + opts.duration : 0;
    while (!g_interrupted.load()) {
      if (deadline > 0 && clock.now() >= deadline) break;
      reactor.run_once(50 * bsub::util::kMillisecond);
    }

    // Goodbye: FIN every live session and give the acks a moment.
    runtime.close_all();
    const bsub::util::Time grace = clock.now() + 250;
    while (runtime.session_count() > 0 && clock.now() < grace) {
      reactor.run_once(50 * bsub::util::kMillisecond);
    }

    const bsub::metrics::TransportStats stats = counters.snapshot();
    std::fprintf(stderr,
                 "frames sent=%llu received=%llu retransmitted=%llu | "
                 "datagrams sent=%llu received=%llu dropped=%llu | "
                 "sessions opened=%llu timed-out=%llu\n",
                 static_cast<unsigned long long>(stats.frames_sent),
                 static_cast<unsigned long long>(stats.frames_received),
                 static_cast<unsigned long long>(stats.frames_retransmitted),
                 static_cast<unsigned long long>(stats.datagrams_sent),
                 static_cast<unsigned long long>(stats.datagrams_received),
                 static_cast<unsigned long long>(stats.datagrams_dropped),
                 static_cast<unsigned long long>(stats.session_opens),
                 static_cast<unsigned long long>(stats.session_timeouts));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bsub_node: %s\n", e.what());
    return 1;
  }
  return 0;
}
