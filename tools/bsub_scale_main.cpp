// bsub_scale: run one city-scale streaming point from the command line.
//
//   bsub_scale --nodes 100000 --contacts 1000000 [--seed 42] [--threads 1]
//              [--isolate]
//
// Streams a trace::make_city_stream scenario through B-SUB on the simulator
// substrate and reports wall time, event throughput, and peak RSS. With
// --isolate the point runs in a forked child so peak RSS excludes the
// parent's footprint (what bench_scale_sweep does for every point).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "scale_common.h"
#include "tool_listing.h"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--nodes N] [--contacts C] [--messages M] "
               "[--seed S] [--threads T] [--isolate] [--protocol SPEC]\n"
               "          [--list-protocols] [--list-kernels]\n"
               "  SPEC selects the routing protocol, e.g. PUSH, PULL,\n"
               "  spray:copies=8, bsub:df=0.25 (default %s)\n",
               argv0, bsub::bench::kScaleDefaultProtocol);
}

bool parse_u64(const char* s, std::uint64_t& out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') return false;
  out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bsub;
  using namespace bsub::bench;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--list-protocols") == 0) {
      return bsub::tools::list_protocols();
    }
    if (std::strcmp(argv[i], "--list-kernels") == 0) {
      return bsub::tools::list_kernels();
    }
  }

  ScalePoint point{100000, 1000000};
  std::uint64_t seed = kExperimentSeed;
  std::uint64_t threads = 1;
  bool isolate = false;
  std::string protocol = kScaleDefaultProtocol;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto next_u64 = [&](std::uint64_t& out) {
      if (i + 1 >= argc || !parse_u64(argv[++i], out)) {
        usage(argv[0]);
        std::exit(2);
      }
    };
    if (std::strcmp(arg, "--nodes") == 0) {
      std::uint64_t v = 0;
      next_u64(v);
      point.nodes = static_cast<std::size_t>(v);
    } else if (std::strcmp(arg, "--contacts") == 0) {
      next_u64(point.contacts);
    } else if (std::strcmp(arg, "--messages") == 0) {
      std::uint64_t v = 0;
      next_u64(v);
      point.messages = static_cast<std::size_t>(v);
    } else if (std::strcmp(arg, "--seed") == 0) {
      next_u64(seed);
    } else if (std::strcmp(arg, "--threads") == 0) {
      next_u64(threads);
    } else if (std::strcmp(arg, "--isolate") == 0) {
      isolate = true;
    } else if (std::strcmp(arg, "--protocol") == 0) {
      if (i + 1 >= argc) {
        usage(argv[0]);
        return 2;
      }
      protocol = argv[++i];
    } else {
      usage(argv[0]);
      return 2;
    }
  }

  // Validate the spec before committing to a long run (or a fork).
  try {
    protocol_registry().make(protocol);
  } catch (const util::ConfigError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  std::printf("city scenario: %zu nodes, %llu contacts (streamed), seed %llu, "
              "%llu thread(s), protocol %s\n",
              point.nodes, static_cast<unsigned long long>(point.contacts),
              static_cast<unsigned long long>(seed),
              static_cast<unsigned long long>(threads), protocol.c_str());

  ScaleResult r;
  if (isolate) {
    if (!run_scale_point_isolated(point, seed,
                                  static_cast<std::size_t>(threads), r,
                                  protocol)) {
      std::fprintf(stderr, "error: isolated run failed\n");
      return 1;
    }
  } else {
    r = run_scale_point(point, seed, static_cast<std::size_t>(threads),
                        protocol);
  }

  std::printf("events:         %llu\n",
              static_cast<unsigned long long>(r.events));
  std::printf("wall seconds:   %.2f\n", r.seconds);
  std::printf("events/sec:     %.0f\n", r.events_per_sec);
  std::printf("peak RSS:       %.1f MiB\n",
              static_cast<double>(r.peak_rss_bytes) / (1 << 20));
  std::printf("bytes/node:     %.0f\n", r.bytes_per_node);
  std::printf("ever-brokers:   %llu (materialized relays)\n",
              static_cast<unsigned long long>(r.materialized_relays));
  std::printf("election state: %.1f MiB\n",
              static_cast<double>(r.election_state_bytes) / (1 << 20));
  std::printf("deliveries:     %llu (ratio %.3f)\n",
              static_cast<unsigned long long>(r.deliveries),
              r.delivery_ratio);
  std::printf("forwardings:    %llu\n",
              static_cast<unsigned long long>(r.forwardings));
  return 0;
}
