// Shared --list-protocols / --list-kernels implementations for the CLI
// tools (bsub_node, bsub_scale, bsub_fleet). One entry per stdout line so
// scripts can `tool --list-protocols | grep`; both return the process exit
// code (always 0 — an empty table would be a build error, not a runtime
// condition).
#pragma once

#include <cstdio>
#include <string>

#include "bloom/kernels.h"
#include "core/protocol_registry.h"

namespace bsub::tools {

/// Prints every registered protocol: canonical name, aliases, summary.
inline int list_protocols() {
  const sim::ProtocolRegistry registry = core::make_protocol_registry();
  for (const sim::ProtocolRegistry::Entry& e : registry.entries()) {
    std::string name = e.name;
    for (const std::string& alias : e.aliases) {
      name += " | " + alias;
    }
    std::printf("%-16s %s\n", name.c_str(), e.summary.c_str());
  }
  return 0;
}

/// Prints every TCBF kernel backend with its availability on this
/// build/CPU, marking the one dispatch resolved to.
inline int list_kernels() {
  namespace kernels = bloom::kernels;
  const kernels::Kind active = kernels::active_kind();
  for (kernels::Kind kind :
       {kernels::Kind::kScalar, kernels::Kind::kBlocked, kernels::Kind::kAvx2,
        kernels::Kind::kNeon}) {
    std::printf("%-8s %s%s\n",
                std::string(kernels::kind_name(kind)).c_str(),
                kernels::available(kind) ? "available" : "unavailable",
                kind == active ? " (active)" : "");
  }
  return 0;
}

}  // namespace bsub::tools
