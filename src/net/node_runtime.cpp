#include "net/node_runtime.h"

namespace bsub::net {

NodeRuntime::NodeRuntime(engine::NodeId id, RuntimeConfig config,
                         Transport& transport, Reactor& reactor,
                         metrics::TransportCounters& counters)
    : node_(id, config.node), config_(config), transport_(transport),
      reactor_(reactor), counters_(counters) {
  transport_.set_receive_handler(
      [this](Endpoint from, std::span<const std::uint8_t> bytes) {
        on_transport_datagram(from, bytes);
      });
  if (config_.decay_tick > 0) arm_decay_tick();
}

NodeRuntime::~NodeRuntime() {
  if (decay_timer_ != TimerWheel::kInvalidTimer) {
    reactor_.cancel(decay_timer_);
  }
  transport_.set_receive_handler({});
}

void NodeRuntime::arm_decay_tick() {
  decay_timer_ = reactor_.schedule_after(config_.decay_tick, [this] {
    node_.decay_tick(reactor_.now());
    arm_decay_tick();
  });
}

Session& NodeRuntime::make_session(Endpoint peer,
                                   std::shared_ptr<sim::Link> budget) {
  // Epoch 0 means "unknown" on the receive side, so incarnations start at
  // 1 and grow per runtime; a later contact with the same peer outranks
  // any straggler datagrams from an earlier one.
  const std::uint32_t epoch = ++next_epoch_;
  auto session = std::make_unique<Session>(peer, epoch, config_.session,
                                           transport_, reactor_, counters_);
  Session* raw = session.get();
  raw->set_budget(std::move(budget));
  raw->set_frame_handler([this, raw](std::span<const std::uint8_t> frame) {
    // The node consumes the frame and answers on the same session; the
    // response frames are the protocol's next step (filters, data,
    // custody acks).
    for (auto& response : node_.handle(frame, reactor_.now())) {
      raw->offer(response);
    }
  });
  raw->set_closed_handler([this, peer](SessionCloseReason reason) {
    auto it = sessions_.find(peer);
    if (it != sessions_.end()) {
      graveyard_.push_back(std::move(it->second));
      sessions_.erase(it);
    }
    if (on_session_closed_) on_session_closed_(peer, reason);
  });
  auto [it, inserted] = sessions_.emplace(peer, std::move(session));
  (void)inserted;  // caller guarantees no live session for `peer`
  return *it->second;
}

Session& NodeRuntime::connect(Endpoint peer,
                              std::shared_ptr<sim::Link> budget) {
  graveyard_.clear();
  if (auto it = sessions_.find(peer); it != sessions_.end()) {
    return *it->second;
  }
  Session& s = make_session(peer, std::move(budget));
  for (auto& frame : node_.begin_contact(reactor_.now())) {
    s.offer(frame);
  }
  return s;
}

void NodeRuntime::on_transport_datagram(Endpoint from,
                                        std::span<const std::uint8_t> bytes) {
  graveyard_.clear();
  auto it = sessions_.find(from);
  if (it == sessions_.end()) {
    // Passive open: only a plausible session datagram may create state
    // (anything else is counted and dropped without allocating).
    try {
      const DatagramView probe = parse_datagram(bytes);
      if (probe.kind != DatagramKind::kData) {
        ++counters_.datagrams_received;
        ++counters_.datagrams_dropped;
        return;
      }
    } catch (const util::CodecError&) {
      ++counters_.datagrams_received;
      ++counters_.datagrams_dropped;
      return;
    }
    // The encounter is symmetric: the passive side says HELLO too.
    Session& s = make_session(from, nullptr);
    for (auto& frame : node_.begin_contact(reactor_.now())) {
      s.offer(frame);
    }
    s.on_datagram(bytes);
    return;
  }
  it->second->on_datagram(bytes);
}

Session* NodeRuntime::session(Endpoint peer) {
  auto it = sessions_.find(peer);
  return it == sessions_.end() ? nullptr : it->second.get();
}

void NodeRuntime::close(Endpoint peer) {
  graveyard_.clear();
  if (auto it = sessions_.find(peer); it != sessions_.end()) {
    it->second->close();
  }
}

void NodeRuntime::abort(Endpoint peer) {
  graveyard_.clear();
  if (auto it = sessions_.find(peer); it != sessions_.end()) {
    it->second->abort(SessionCloseReason::kPeerLost);
  }
}

void NodeRuntime::close_all() {
  graveyard_.clear();
  // close() mutates sessions_ via the closed handler only after FIN_ACK,
  // but be defensive: snapshot the peers first.
  std::vector<Endpoint> peers;
  peers.reserve(sessions_.size());
  for (const auto& [peer, s] : sessions_) peers.push_back(peer);
  for (Endpoint p : peers) close(p);
}

bool NodeRuntime::all_sessions_idle() const {
  for (const auto& [peer, s] : sessions_) {
    if (!s->idle()) return false;
  }
  return true;
}

}  // namespace bsub::net
