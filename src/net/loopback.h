// Deterministic in-memory transport: a hub of endpoints exchanging
// datagrams through one global FIFO queue.
//
// The hub is the test double for the network itself. Determinism comes from
// three properties: sends append to a single FIFO in call order, delivery
// pops strictly from the front, and loss is decided per-datagram by a
// seeded Rng at delivery time — so a (trace, seed) pair always produces the
// same sequence of deliveries and drops. This mirrors how the engine's
// Network harness processes a contact's frames, which is what makes the
// live loopback runtime bit-for-bit comparable to it.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "net/transport.h"
#include "util/rng.h"

namespace bsub::net {

class LoopbackTransport;

class LoopbackHub {
 public:
  struct Config {
    std::size_t mtu = 1400;         ///< max datagram bytes, like UDP
    double loss_probability = 0.0;  ///< per-datagram drop chance
    std::uint64_t loss_seed = 1;    ///< Rng seed for the drop sequence
  };

  LoopbackHub();  // defaults (gcc rejects `= {}` for a nested struct here)
  explicit LoopbackHub(Config config);
  ~LoopbackHub();

  /// Creates (and owns) a transport bound to `ep`; ids must be unique.
  LoopbackTransport& attach(Endpoint ep);

  /// Delivers (or drops, per the loss draw) the front datagram. Returns
  /// false when the queue is empty.
  bool deliver_one();

  /// Drains the queue, including datagrams enqueued by receive handlers
  /// while draining. Returns the number of datagrams delivered.
  std::size_t deliver_all();

  bool idle() const { return queue_.empty(); }

  // Tallies (lifetime).
  std::uint64_t enqueued() const { return enqueued_; }
  std::uint64_t delivered() const { return delivered_; }
  std::uint64_t dropped_loss() const { return dropped_loss_; }
  std::uint64_t dropped_unroutable() const { return dropped_unroutable_; }

 private:
  friend class LoopbackTransport;

  struct Datagram {
    Endpoint from;
    Endpoint to;
    std::vector<std::uint8_t> bytes;
  };

  bool enqueue(Endpoint from, Endpoint to,
               std::span<const std::uint8_t> bytes);

  Config config_;
  std::map<Endpoint, std::unique_ptr<LoopbackTransport>> transports_;
  std::deque<Datagram> queue_;
  util::Rng loss_rng_;
  std::uint64_t enqueued_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_loss_ = 0;
  std::uint64_t dropped_unroutable_ = 0;
};

class LoopbackTransport final : public Transport {
 public:
  bool send(Endpoint to, std::span<const std::uint8_t> datagram) override;
  std::size_t max_datagram_bytes() const override;
  Endpoint local_endpoint() const override { return endpoint_; }
  void set_receive_handler(ReceiveHandler handler) override {
    handler_ = std::move(handler);
  }

 private:
  friend class LoopbackHub;
  LoopbackTransport(LoopbackHub& hub, Endpoint ep)
      : hub_(hub), endpoint_(ep) {}

  LoopbackHub& hub_;
  Endpoint endpoint_;
  ReceiveHandler handler_;
};

}  // namespace bsub::net
