#include "net/fleet/fleet_runtime.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "core/protocol_registry.h"
#include "net/loopback.h"
#include "sim/event_stream.h"
#include "sim/link.h"
#include "util/errors.h"

namespace bsub::net {

namespace {

double elapsed_seconds(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       since)
      .count();
}

double percentile(const std::vector<std::int64_t>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return static_cast<double>(sorted[std::min(idx, sorted.size() - 1)]);
}

}  // namespace

FleetConfig fleet_config_from_spec(std::string_view protocol_spec,
                                   FleetConfig base) {
  const core::BsubConfig cfg = core::bsub_config_from_spec(protocol_spec);
  if (cfg.adaptive_df) {
    throw util::ConfigError(
        "adaptive DF is not supported by the frame-driven engine",
        "B-SUB.adaptive", "use the simulator for adaptive-DF runs");
  }
  base.runtime.node = engine::node_config_from(cfg);
  base.election.lower = cfg.broker_lower;
  base.election.upper = cfg.broker_upper;
  base.election.window = cfg.election_window;
  base.election.reference_state = cfg.reference_node_state;
  return base;
}

// ---------------------------------------------------------------------------
// Loopback lanes

/// One worker thread's private virtual-time world. Contacts executed on the
/// lane are independent episodes: the clock is reset and the reactor rebased
/// to each contact's start (legal because decay ticks are disabled and
/// sessions disarm their timers at teardown, so nothing is pending between
/// contacts).
struct FleetRuntime::Lane {
  ManualClock clock;
  Reactor reactor;
  LoopbackHub hub;
  /// Hub attachments are permanent (LoopbackHub::attach rejects
  /// duplicates), so remember which node ids this lane has seen.
  std::unordered_map<std::uint32_t, LoopbackTransport*> ports;

  explicit Lane(std::size_t mtu)
      : clock(0),
        // Lanes never register fds; poll avoids burning an epoll fd each.
        reactor(clock, ReactorBackend::kPoll),
        hub(LoopbackHub::Config{.mtu = mtu}) {}

  LoopbackTransport& port(std::uint32_t node) {
    auto it = ports.find(node);
    if (it != ports.end()) return *it->second;
    LoopbackTransport& t = hub.attach(node);
    ports.emplace(node, &t);
    return t;
  }
};

// ---------------------------------------------------------------------------
// UDP shards

struct FleetRuntime::Command {
  enum class Kind : std::uint8_t { kContact, kRole, kPublish };
  Kind kind = Kind::kContact;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  bool a_broker = false;
  bool b_broker = false;
  std::uint32_t message_index = 0;
};

/// One reactor thread of the real-time engine: its reactor + UDP slice,
/// its command inbox (driver -> shard, woken through a pipe so commands
/// interrupt the fd wait), and the per-contact liveness timers for contacts
/// this shard initiated.
struct FleetRuntime::Shard {
  std::size_t index;
  Reactor reactor;
  FleetUdpShard io;
  int wake_read = -1;
  int wake_write = -1;

  std::mutex mu;
  std::vector<Command> inbox;
  std::vector<Command> draining;
  std::atomic<bool> stop{false};
  std::thread thread;

  struct Live {
    Reactor::TimerId idle = TimerWheel::kInvalidTimer;
    Reactor::TimerId timeout = TimerWheel::kInvalidTimer;
    bool closing = false;
  };
  /// Keyed by contact_key(initiator, peer); only initiator-side closes
  /// complete a contact.
  std::unordered_map<std::uint64_t, Live> live;
  std::vector<std::int64_t> latency_ms;

  Shard(std::size_t idx, std::size_t count, Clock& clock,
        ReactorBackend backend, const FleetUdpConfig& udp)
      : index(idx), reactor(clock, backend), io(reactor, idx, count, udp) {
    int fds[2];
    if (::pipe(fds) != 0) {
      throw std::runtime_error("FleetRuntime: pipe() failed: " +
                               std::string(std::strerror(errno)));
    }
    wake_read = fds[0];
    wake_write = fds[1];
    ::fcntl(wake_read, F_SETFL, O_NONBLOCK);
    ::fcntl(wake_write, F_SETFL, O_NONBLOCK);
  }

  ~Shard() {
    if (wake_read >= 0) ::close(wake_read);
    if (wake_write >= 0) ::close(wake_write);
  }
};

// ---------------------------------------------------------------------------

FleetRuntime::FleetRuntime(FleetConfig config) : config_(std::move(config)) {
  if (config_.shards == 0) config_.shards = 1;
}

FleetRuntime::~FleetRuntime() {
  // Nodes must detach before lanes/shards die (members are declared so that
  // nodes_ destructs first, but an explicit unbind keeps the intent clear).
  for (auto& n : nodes_) {
    if (n) n->unbind();
  }
}

void FleetRuntime::require_unused() {
  if (ran_) {
    throw std::logic_error("FleetRuntime: run may be called once");
  }
  ran_ = true;
}

const engine::BsubNode& FleetRuntime::node(trace::NodeId id) const {
  if (id >= nodes_.size()) {
    throw std::out_of_range("FleetRuntime: unknown node");
  }
  return nodes_[id]->node();
}

const std::vector<engine::DeliveryRecord>& FleetRuntime::deliveries() const {
  flattened_.clear();
  for (const auto& log : per_node_deliveries_) {
    flattened_.insert(flattened_.end(), log.begin(), log.end());
  }
  return flattened_;
}

void FleetRuntime::make_nodes(std::size_t node_count,
                              const workload::Workload& workload) {
  nodes_.reserve(node_count);
  for (trace::NodeId n = 0; n < node_count; ++n) {
    nodes_.push_back(
        std::make_unique<FleetNode>(n, config_.runtime, counters_));
    engine::BsubNode& node = nodes_.back()->node();
    for (workload::KeyId k : workload.interests_of(n)) {
      node.subscribe(workload.keys().name(k));
    }
  }
  election_ =
      std::make_unique<core::BrokerElection>(node_count, config_.election);
}

// ---------------------------------------------------------------------------
// Deterministic loopback engine

FleetRuntime::Lane& FleetRuntime::lane_for_thread() {
  // The token must be unique across FleetRuntime *instances*, not just
  // runs: a later runtime allocated at a recycled address must not revive
  // another run's thread-local lane pointer.
  thread_local std::uint64_t token = 0;
  thread_local Lane* lane = nullptr;
  if (token != run_token_ || lane == nullptr) {
    auto fresh = std::make_unique<Lane>(config_.runtime.session.mtu);
    lane = fresh.get();
    {
      std::lock_guard<std::mutex> lock(lanes_mu_);
      lanes_.push_back(std::move(fresh));
    }
    token = run_token_;
  }
  return *lane;
}

void FleetRuntime::pump_lane(Lane& lane, FleetNode& a, FleetNode& b,
                             util::Time cap) {
  for (;;) {
    lane.hub.deliver_all();
    if (a.all_sessions_idle() && b.all_sessions_idle() && lane.hub.idle()) {
      return;
    }
    const util::Time next = lane.reactor.next_deadline();
    if (next == util::kTimeMax || next > cap) return;
    lane.reactor.advance_to(lane.clock, next);
  }
}

void FleetRuntime::exec_loopback_contact(Lane& lane, const trace::Contact& c) {
  // A fresh virtual-time episode at the contact's start instant. The global
  // event order only guarantees per-node monotonicity, so the lane clock may
  // have to travel backwards between contacts — reset() + rebase() instead
  // of set().
  lane.clock.reset(c.start);
  lane.reactor.rebase(c.start);

  // Election only mutates the two endpoints' state — safe inside a
  // conflict batch, exactly like TraceRunner.
  election_->on_contact(c.a, c.b, c.start);
  FleetNode& a = *nodes_[c.a];
  FleetNode& b = *nodes_[c.b];
  a.node().set_broker(election_->is_broker(c.a));
  b.node().set_broker(election_->is_broker(c.b));

  a.bind(lane.port(c.a), lane.reactor);
  b.bind(lane.port(c.b), lane.reactor);

  // One shared byte budget, charged frame-by-frame in the same order the
  // engine harness charges its FIFO (see ContactOrchestrator).
  auto budget = std::make_shared<sim::Link>(c.duration(),
                                            config_.bandwidth_bytes_per_second);
  a.connect(c.b, budget);
  b.connect(c.a, budget);

  const util::Time contact_end = c.start + c.duration();
  pump_lane(lane, a, b, contact_end);

  // Goodbye handshake; whatever survives the window is torn down as lost.
  a.close(c.b);
  b.close(c.a);
  for (;;) {
    lane.hub.deliver_all();
    if (!a.has_session(c.b) && !b.has_session(c.a)) break;
    const util::Time next = lane.reactor.next_deadline();
    if (next == util::kTimeMax || next > contact_end) {
      a.abort(c.b);
      b.abort(c.a);
      break;
    }
    lane.reactor.advance_to(lane.clock, next);
  }
  lane.hub.deliver_all();  // stray FIN_ACKs to already-gone sessions

  a.unbind();
  b.unbind();

  contacts_processed_.fetch_add(1, std::memory_order_relaxed);
  bytes_used_.fetch_add(budget->used_bytes(), std::memory_order_relaxed);
}

void FleetRuntime::exec_loopback_event(const sim::ScenarioEvent& e,
                                       const workload::Workload& workload) {
  if (e.is_message) {
    const workload::Message& m = workload.messages()[e.message_index];
    engine::ContentMessage cm;
    cm.id = m.id;
    cm.key = workload.keys().name(m.key);
    cm.body.assign(m.size_bytes, 0x5A);
    cm.created = m.created;
    cm.ttl = m.ttl;
    nodes_[m.producer]->node().publish(std::move(cm), m.created);
    return;
  }
  exec_loopback_contact(lane_for_thread(), e.contact);
}

FleetRunResults FleetRuntime::run_loopback(trace::ContactStream& contacts,
                                          const workload::Workload& workload) {
  require_unused();
  if (config_.runtime.decay_tick != 0) {
    throw util::ConfigError(
        "fleet loopback lanes require decay_tick = 0",
        "fleet.decay_tick",
        "lanes have no timeline between contacts; decay stays lazy");
  }
  const std::size_t node_count = contacts.node_count();
  make_nodes(node_count, workload);

  per_node_deliveries_.assign(node_count, {});
  for (trace::NodeId n = 0; n < node_count; ++n) {
    nodes_[n]->node().set_delivery_handler(
        [this, n](const engine::ContentMessage& msg, util::Time at) {
          per_node_deliveries_[n].push_back(
              engine::DeliveryRecord{n, msg.id, msg.key, at});
        });
  }

  const auto& messages = workload.messages();
  std::unordered_map<std::uint64_t, util::Time> created_at;
  created_at.reserve(messages.size());
  for (const workload::Message& m : messages) {
    created_at.emplace(m.id, m.created);
  }

  static std::atomic<std::uint64_t> run_sequence{0};
  run_token_ = run_sequence.fetch_add(1, std::memory_order_relaxed) + 1;
  const auto wall_start = std::chrono::steady_clock::now();

  sim::ScenarioEventStream events(contacts, workload);
  std::vector<sim::ScenarioEvent> staged;
  sim::ParallelRunConfig pcfg;
  pcfg.threads = config_.threads;
  pcfg.window_events = config_.window_events;
  pcfg.min_batch_fanout = config_.min_batch_fanout;

  FleetRunResults results;
  results.exec = sim::run_windowed_parallel(
      node_count,
      [&](std::span<sim::EventNodes> slots) {
        staged.resize(slots.size());
        std::size_t n = 0;
        while (n < slots.size() && events.next(staged[n])) {
          slots[n] = staged[n].nodes(messages);
          ++n;
        }
        return n;
      },
      [&](std::size_t j) { exec_loopback_event(staged[j], workload); }, pcfg);
  if (results.exec.events == 0) results.exec.threads_used = 1;

  results.wall_seconds = elapsed_seconds(wall_start);
  results.nodes = node_count;
  results.reactor_threads = results.exec.threads_used;

  results.protocol.contacts_processed = contacts_processed_.load();
  results.protocol.bytes_used = bytes_used_.load();
  results.transport = counters_.snapshot();
  results.protocol.frames_delivered = results.transport.frames_received;
  results.protocol.frames_dropped = results.transport.frames_dropped;

  const auto& delivered = deliveries();
  results.protocol.deliveries = delivered.size();
  results.protocol.expected_deliveries = workload.expected_deliveries();
  if (results.protocol.expected_deliveries > 0) {
    results.protocol.delivery_ratio =
        static_cast<double>(results.protocol.deliveries) /
        static_cast<double>(results.protocol.expected_deliveries);
  }
  double delay_sum = 0.0;
  for (const engine::DeliveryRecord& d : delivered) {
    delay_sum += util::to_minutes(d.at - created_at.at(d.message_id));
  }
  if (results.protocol.deliveries > 0) {
    results.protocol.mean_delay_minutes =
        delay_sum / static_cast<double>(results.protocol.deliveries);
  }
  if (results.wall_seconds > 0) {
    results.contacts_per_second =
        static_cast<double>(results.protocol.contacts_processed) /
        results.wall_seconds;
    results.deliveries_per_second =
        static_cast<double>(results.protocol.deliveries) /
        results.wall_seconds;
  }
  return results;
}

// ---------------------------------------------------------------------------
// Real-time UDP engine

void FleetRuntime::post(Shard& shard, const Command& cmd) {
  bool was_empty = false;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    was_empty = shard.inbox.empty();
    shard.inbox.push_back(cmd);
  }
  if (was_empty) {
    const char byte = 1;
    // Nonblocking: a full pipe already guarantees a pending wakeup.
    (void)!::write(shard.wake_write, &byte, 1);
  }
}

void FleetRuntime::drain_inbox(Shard& shard) {
  char buf[64];
  while (::read(shard.wake_read, buf, sizeof(buf)) > 0) {
  }
  shard.draining.clear();
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.draining.swap(shard.inbox);
  }
  for (const Command& cmd : shard.draining) {
    exec_command(shard, cmd, *workload_);
  }
}

void FleetRuntime::complete_contact(Shard& shard, std::uint64_t key) {
  auto it = shard.live.find(key);
  if (it == shard.live.end()) return;
  shard.reactor.cancel(it->second.idle);
  shard.reactor.cancel(it->second.timeout);
  shard.live.erase(it);
  completed_.fetch_add(1, std::memory_order_release);
}

void FleetRuntime::arm_idle_check(Shard& shard, std::uint32_t a,
                                  std::uint32_t b) {
  auto it = shard.live.find(contact_key(a, b));
  if (it == shard.live.end()) return;
  it->second.idle =
      shard.reactor.schedule_after(config_.idle_check_period, [this, &shard,
                                                               a, b] {
        auto lit = shard.live.find(contact_key(a, b));
        if (lit == shard.live.end()) return;
        lit->second.idle = TimerWheel::kInvalidTimer;
        Session* sess = nodes_[a]->session(b);
        if (sess == nullptr) {
          // Session vanished without our close (peer-driven teardown);
          // treat the contact as done.
          complete_contact(shard, contact_key(a, b));
          return;
        }
        if (!lit->second.closing && sess->idle()) {
          lit->second.closing = true;
          nodes_[a]->close(b);
        }
        arm_idle_check(shard, a, b);  // keep polling until it closes
      });
}

void FleetRuntime::exec_command(Shard& shard, const Command& cmd,
                                const workload::Workload& workload) {
  switch (cmd.kind) {
    case Command::Kind::kRole:
      nodes_[cmd.b]->node().set_broker(cmd.b_broker);
      return;
    case Command::Kind::kPublish: {
      const workload::Message& m = workload.messages()[cmd.message_index];
      engine::ContentMessage cm;
      cm.id = m.id;
      cm.key = workload.keys().name(m.key);
      cm.body.assign(m.size_bytes, 0x5A);
      // Real-time runs live on the shared steady clock, not trace time;
      // workload TTLs (hours) comfortably outlast the run.
      cm.created = shard.reactor.now();
      cm.ttl = m.ttl;
      publish_ms_[cmd.message_index].store(cm.created,
                                           std::memory_order_relaxed);
      nodes_[m.producer]->node().publish(std::move(cm), cm.created);
      return;
    }
    case Command::Kind::kContact:
      break;
  }

  const std::uint64_t key = contact_key(cmd.a, cmd.b);
  if (cmd.a == cmd.b || shard.live.contains(key)) {
    // Degenerate or still-running duplicate: keep the issued/completed
    // accounting balanced and let the live contact finish on its own.
    completed_.fetch_add(1, std::memory_order_release);
    return;
  }
  nodes_[cmd.a]->node().set_broker(cmd.a_broker);
  if (shard_of(cmd.b) == shard.index) {
    nodes_[cmd.b]->node().set_broker(cmd.b_broker);
  }
  nodes_[cmd.a]->connect(cmd.b);

  Shard::Live live;
  shard.live.emplace(key, live);
  arm_idle_check(shard, cmd.a, cmd.b);
  auto it = shard.live.find(key);
  it->second.timeout =
      shard.reactor.schedule_after(config_.contact_timeout, [this, &shard,
                                                             key, cmd] {
        auto lit = shard.live.find(key);
        if (lit == shard.live.end()) return;
        lit->second.timeout = TimerWheel::kInvalidTimer;
        timed_out_.fetch_add(1, std::memory_order_relaxed);
        // abort() fires the closed handler, which completes the contact.
        nodes_[cmd.a]->abort(cmd.b);
      });
}

FleetRunResults FleetRuntime::run_udp(trace::ContactStream& contacts,
                                      const workload::Workload& workload) {
  require_unused();
  config_.udp.validate();
  if (config_.udp.mtu < config_.runtime.session.mtu) {
    throw util::ConfigError(
        "fleet UDP mtu smaller than the session datagram size",
        "fleet.udp.mtu", "raise udp.mtu or lower session.mtu");
  }
  const std::size_t node_count = contacts.node_count();
  make_nodes(node_count, workload);
  workload_ = &workload;

  const auto& messages = workload.messages();
  message_index_of_.reserve(messages.size());
  for (std::uint32_t i = 0; i < messages.size(); ++i) {
    message_index_of_.emplace(messages[i].id, i);
  }
  publish_ms_ = std::make_unique<std::atomic<std::int64_t>[]>(
      std::max<std::size_t>(messages.size(), 1));
  for (std::size_t i = 0; i < messages.size(); ++i) {
    publish_ms_[i].store(-1, std::memory_order_relaxed);
  }

  // One steady clock shared by every shard reactor, so publish and delivery
  // instants are comparable across shards.
  SteadyClock clock;
  shards_.reserve(config_.shards);
  for (std::size_t s = 0; s < config_.shards; ++s) {
    shards_.push_back(std::make_unique<Shard>(s, config_.shards, clock,
                                              config_.backend, config_.udp));
  }

  // Attach every node to its home shard and wire the real-time hooks. All
  // of this happens before the shard threads start, so it needs no locks.
  for (trace::NodeId n = 0; n < node_count; ++n) {
    Shard& home = *shards_[shard_of(n)];
    FleetPort& port = home.io.add_node(n);
    nodes_[n]->bind(port, home.reactor);
    nodes_[n]->set_session_closed_handler(
        [this, &home, n](Endpoint peer, SessionCloseReason) {
          complete_contact(home,
                           contact_key(n, static_cast<std::uint32_t>(peer)));
        });
    nodes_[n]->node().set_delivery_handler(
        [this, &home](const engine::ContentMessage& msg, util::Time at) {
          live_deliveries_.fetch_add(1, std::memory_order_relaxed);
          auto it = message_index_of_.find(msg.id);
          if (it == message_index_of_.end()) return;
          const std::int64_t sent =
              publish_ms_[it->second].load(std::memory_order_relaxed);
          if (sent >= 0) home.latency_ms.push_back(at - sent);
        });
  }

  for (auto& shard : shards_) {
    Shard* s = shard.get();
    s->reactor.add_fd(s->wake_read, [this, s] { drain_inbox(*s); });
    s->thread = std::thread([this, s] {
      while (!s->stop.load(std::memory_order_acquire)) {
        s->reactor.run_once(2 * util::kMillisecond);
        s->io.flush();
      }
    });
  }

  // Driver: replay the merged scenario as fast as the in-flight window
  // allows. The scenario's virtual timestamps only order events; pacing is
  // real ("as fast as the fleet can absorb").
  const auto wall_start = std::chrono::steady_clock::now();
  sim::ScenarioEventStream events(contacts, workload);
  sim::ScenarioEvent e;
  while (events.next(e)) {
    if (e.is_message) {
      const workload::Message& m = messages[e.message_index];
      Command cmd;
      cmd.kind = Command::Kind::kPublish;
      cmd.message_index = e.message_index;
      post(*shards_[shard_of(m.producer)], cmd);
      continue;
    }
    const trace::Contact& c = e.contact;
    election_->on_contact(c.a, c.b, c.start);
    const bool a_broker = election_->is_broker(c.a);
    const bool b_broker = election_->is_broker(c.b);
    if (shard_of(c.b) != shard_of(c.a)) {
      Command role;
      role.kind = Command::Kind::kRole;
      role.b = c.b;
      role.b_broker = b_broker;
      post(*shards_[shard_of(c.b)], role);
    }
    Command cmd;
    cmd.kind = Command::Kind::kContact;
    cmd.a = c.a;
    cmd.b = c.b;
    cmd.a_broker = a_broker;
    cmd.b_broker = b_broker;
    issued_.fetch_add(1, std::memory_order_relaxed);
    post(*shards_[shard_of(c.a)], cmd);

    while (issued_.load(std::memory_order_relaxed) -
               completed_.load(std::memory_order_acquire) >
           config_.max_inflight_contacts) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }

  // Drain: every issued contact completes by idle-close or hard timeout.
  // The extra margin covers command queues and scheduler stalls.
  const double drain_cap_seconds =
      util::to_seconds(config_.contact_timeout) + 30.0;
  const auto drain_start = std::chrono::steady_clock::now();
  while (completed_.load(std::memory_order_acquire) <
         issued_.load(std::memory_order_relaxed)) {
    if (elapsed_seconds(drain_start) > drain_cap_seconds) break;
    std::this_thread::sleep_for(std::chrono::microseconds(500));
  }
  const double wall = elapsed_seconds(wall_start);

  for (auto& s : shards_) {
    s->stop.store(true, std::memory_order_release);
    const char byte = 1;
    (void)!::write(s->wake_write, &byte, 1);
  }
  for (auto& s : shards_) {
    if (s->thread.joinable()) s->thread.join();
  }
  for (auto& n : nodes_) n->unbind();

  FleetRunResults results;
  results.nodes = node_count;
  results.reactor_threads = config_.shards;
  results.wall_seconds = wall;
  results.contacts_timed_out = timed_out_.load();

  std::vector<std::int64_t> latencies;
  for (auto& s : shards_) {
    latencies.insert(latencies.end(), s->latency_ms.begin(),
                     s->latency_ms.end());
    results.send_syscalls += s->io.send_syscalls();
    results.recv_syscalls += s->io.recv_syscalls();
    results.datagrams_out += s->io.datagrams_out();
    results.datagrams_in += s->io.datagrams_in();
    results.sendq_drops += s->io.sendq_drops();
    results.unroutable_drops += s->io.unroutable_drops();
  }
  std::sort(latencies.begin(), latencies.end());
  results.p50_delivery_latency_ms = percentile(latencies, 0.50);
  results.p99_delivery_latency_ms = percentile(latencies, 0.99);

  results.transport = counters_.snapshot();
  results.protocol.contacts_processed = completed_.load();
  results.protocol.frames_delivered = results.transport.frames_received;
  results.protocol.frames_dropped = results.transport.frames_dropped;
  results.protocol.deliveries = live_deliveries_.load();
  results.protocol.expected_deliveries = workload.expected_deliveries();
  if (results.protocol.expected_deliveries > 0) {
    results.protocol.delivery_ratio =
        static_cast<double>(results.protocol.deliveries) /
        static_cast<double>(results.protocol.expected_deliveries);
  }
  if (!latencies.empty()) {
    double sum = 0.0;
    for (std::int64_t v : latencies) sum += static_cast<double>(v);
    results.protocol.mean_delay_minutes = util::to_minutes(
        static_cast<util::Time>(sum / static_cast<double>(latencies.size())));
  }
  if (wall > 0) {
    results.contacts_per_second =
        static_cast<double>(results.protocol.contacts_processed) / wall;
    results.deliveries_per_second =
        static_cast<double>(results.protocol.deliveries) / wall;
  }
  return results;
}

}  // namespace bsub::net
