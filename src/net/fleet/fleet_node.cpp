#include "net/fleet/fleet_node.h"

#include <cassert>

namespace bsub::net {

FleetNode::FleetNode(engine::NodeId id, const RuntimeConfig& config,
                     metrics::TransportCounters& counters)
    : node_(id, config.node), config_(config), counters_(counters) {}

FleetNode::~FleetNode() { unbind(); }

void FleetNode::bind(Transport& transport, Reactor& reactor) {
  assert(transport_ == nullptr && "bind() while already bound");
  transport_ = &transport;
  reactor_ = &reactor;
  transport_->set_receive_handler(
      [this](Endpoint from, std::span<const std::uint8_t> bytes) {
        on_datagram(from, bytes);
      });
  if (config_.decay_tick > 0) arm_decay_tick();
}

void FleetNode::unbind() {
  if (transport_ == nullptr) return;
  if (decay_timer_ != TimerWheel::kInvalidTimer) {
    reactor_->cancel(decay_timer_);
    decay_timer_ = TimerWheel::kInvalidTimer;
  }
  // Anything still alive is torn down locally; graceful closes are the
  // orchestration layer's job before it unbinds.
  while (!sessions_.empty()) {
    sessions_.begin()->second->abort(SessionCloseReason::kPeerLost);
  }
  graveyard_.clear();
  transport_->set_receive_handler({});
  transport_ = nullptr;
  reactor_ = nullptr;
}

void FleetNode::arm_decay_tick() {
  decay_timer_ = reactor_->schedule_after(config_.decay_tick, [this] {
    node_.decay_tick(reactor_->now());
    arm_decay_tick();
  });
}

Session& FleetNode::make_session(Endpoint peer,
                                 std::shared_ptr<sim::Link> budget) {
  // Epoch 0 means "unknown" on the receive side, so incarnations start at 1
  // and grow for the node's lifetime (across rebinds): a later contact with
  // the same peer outranks any straggler datagrams from an earlier one.
  const std::uint32_t epoch = ++next_epoch_;
  auto session = std::make_unique<Session>(peer, epoch, config_.session,
                                           *transport_, *reactor_, counters_);
  Session* raw = session.get();
  raw->set_budget(std::move(budget));
  raw->set_frame_handler([this, raw](std::span<const std::uint8_t> frame) {
    for (auto& response : node_.handle(frame, reactor_->now())) {
      raw->offer(response);
    }
  });
  raw->set_closed_handler([this, peer](SessionCloseReason reason) {
    auto it = sessions_.find(peer);
    if (it != sessions_.end()) {
      graveyard_.push_back(std::move(it->second));
      sessions_.erase(it);
    }
    if (on_session_closed_) on_session_closed_(peer, reason);
  });
  auto [it, inserted] = sessions_.emplace(peer, std::move(session));
  (void)inserted;  // caller guarantees no live session for `peer`
  return *it->second;
}

Session& FleetNode::connect(Endpoint peer, std::shared_ptr<sim::Link> budget) {
  assert(transport_ != nullptr && "connect() while unbound");
  graveyard_.clear();
  if (auto it = sessions_.find(peer); it != sessions_.end()) {
    return *it->second;
  }
  Session& s = make_session(peer, std::move(budget));
  for (auto& frame : node_.begin_contact(reactor_->now())) {
    s.offer(frame);
  }
  return s;
}

void FleetNode::on_datagram(Endpoint from,
                            std::span<const std::uint8_t> bytes) {
  if (transport_ == nullptr) return;  // datagram raced an unbind
  graveyard_.clear();
  auto it = sessions_.find(from);
  if (it == sessions_.end()) {
    // Passive open: only a plausible session datagram may create state
    // (anything else is counted and dropped without allocating).
    try {
      const DatagramView probe = parse_datagram(bytes);
      if (probe.kind != DatagramKind::kData) {
        ++counters_.datagrams_received;
        ++counters_.datagrams_dropped;
        return;
      }
    } catch (const util::CodecError&) {
      ++counters_.datagrams_received;
      ++counters_.datagrams_dropped;
      return;
    }
    // The encounter is symmetric: the passive side says HELLO too.
    Session& s = make_session(from, nullptr);
    for (auto& frame : node_.begin_contact(reactor_->now())) {
      s.offer(frame);
    }
    s.on_datagram(bytes);
    return;
  }
  it->second->on_datagram(bytes);
}

Session* FleetNode::session(Endpoint peer) {
  auto it = sessions_.find(peer);
  return it == sessions_.end() ? nullptr : it->second.get();
}

void FleetNode::close(Endpoint peer) {
  graveyard_.clear();
  if (auto it = sessions_.find(peer); it != sessions_.end()) {
    it->second->close();
  }
}

void FleetNode::abort(Endpoint peer) {
  graveyard_.clear();
  if (auto it = sessions_.find(peer); it != sessions_.end()) {
    it->second->abort(SessionCloseReason::kPeerLost);
  }
}

void FleetNode::close_all() {
  graveyard_.clear();
  std::vector<Endpoint> peers;
  peers.reserve(sessions_.size());
  for (const auto& [peer, s] : sessions_) peers.push_back(peer);
  for (Endpoint p : peers) close(p);
}

bool FleetNode::all_sessions_idle() const {
  for (const auto& [peer, s] : sessions_) {
    if (!s->idle()) return false;
  }
  return true;
}

}  // namespace bsub::net
