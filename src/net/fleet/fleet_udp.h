// Fleet UDP data plane: many node endpoints multiplexed over few sockets,
// with batched syscalls.
//
// One UdpTransport per node (PR 5) costs one socket, one pollfd slot and
// one recvfrom per datagram per node — fine for a daemon, ruinous for 10k
// in-process nodes. The fleet plane changes both axes:
//
//   sockets   In `shard` mode every reactor thread owns ONE socket
//             (127.0.0.1, base_port + shard). Node addressing moves into a
//             10-byte mux header (magic 0xF5, version, src node, dst node)
//             prepended to each session datagram; a node's home shard is
//             node % shard_count, so any sender can compute any
//             destination's socket address. `node` mode (one socket per
//             node, port base_port + node) is kept as the measurable
//             baseline — it is what the naive scale-out of PR 5 would do.
//
//   syscalls  In `batched` mode sends are queued per shard and flushed
//             with sendmmsg() in bursts, and the readable upcall drains
//             the socket with recvmmsg() into a reusable scatter array —
//             one syscall moves up to `batch_burst` datagrams. `single`
//             mode uses sendto()/recvfrom() loops (and is the only mode on
//             non-Linux builds; see fleet_udp_batched_available()).
//
// Each node sees the plane through a FleetPort — a Transport whose
// endpoints are node ids — so Session/FleetNode code is identical over
// loopback, single-socket UDP, and the batched mux. Delivery is
// best-effort exactly like UDP: a full send queue or socket buffer drops
// the datagram (counted), and the session RTO ladder recovers.
//
// Threading: a FleetUdpShard and all its ports belong to one reactor
// thread; cross-shard traffic crosses via the kernel, not shared memory.
// Datagram/frame accounting stays where it always was — in the sessions'
// shared TransportCounters; the shard only tallies its own syscall shape
// and transport-level drops (like LoopbackHub does).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "net/reactor.h"
#include "net/transport.h"

// Forward-declare enough of sockaddr_in to keep socket headers out of
// dependents. (The .cpp includes the real ones.)
struct sockaddr_in;

namespace bsub::net {

inline constexpr std::uint8_t kFleetMagic = 0xF5;
inline constexpr std::uint8_t kFleetVersion = 1;
/// magic + version + u32 src node + u32 dst node (little-endian).
inline constexpr std::size_t kFleetHeaderBytes = 10;

/// True when this build can use sendmmsg/recvmmsg (Linux).
bool fleet_udp_batched_available();

struct FleetUdpConfig {
  std::uint16_t base_port = 45000;
  std::uint32_t ipv4 = 0x7F000001;  ///< host order; default 127.0.0.1
  /// Max inner (session) datagram; the wire adds kFleetHeaderBytes.
  std::size_t mtu = 1400;
  /// `node` socket mode: one socket per node (the baseline) instead of one
  /// per shard.
  bool per_node_sockets = false;
  /// sendmmsg/recvmmsg bursts instead of sendto/recvfrom loops. Requires
  /// shard sockets (per-socket send queues would defeat the point) and a
  /// Linux build; validate() rejects unsupported combinations.
  bool batched_io = true;
  std::size_t batch_burst = 64;
  /// SO_SNDBUF / SO_RCVBUF request per socket; 0 leaves the kernel default.
  int socket_buffer_bytes = 1 << 20;

  /// Throws util::ConfigError on unsupported combinations.
  void validate() const;
};

class FleetUdpShard;

/// One node's view of the fleet plane. Endpoints are node ids.
class FleetPort final : public Transport {
 public:
  bool send(Endpoint to, std::span<const std::uint8_t> datagram) override;
  std::size_t max_datagram_bytes() const override;
  Endpoint local_endpoint() const override { return node_; }
  void set_receive_handler(ReceiveHandler handler) override {
    handler_ = std::move(handler);
  }

 private:
  friend class FleetUdpShard;
  FleetPort(FleetUdpShard& shard, std::uint32_t node, int fd)
      : shard_(shard), node_(node), fd_(fd) {}

  FleetUdpShard& shard_;
  std::uint32_t node_;
  int fd_;  ///< socket this node's traffic uses (shard's or its own)
  ReceiveHandler handler_;
};

/// The per-reactor-thread slice of the fleet plane: the shard's socket(s),
/// its local nodes' ports, the batched send queue and receive scatter
/// array.
class FleetUdpShard {
 public:
  FleetUdpShard(Reactor& reactor, std::size_t shard_index,
                std::size_t shard_count, FleetUdpConfig config);
  ~FleetUdpShard();

  FleetUdpShard(const FleetUdpShard&) = delete;
  FleetUdpShard& operator=(const FleetUdpShard&) = delete;

  /// Creates the port for a node homed on this shard (in `node` socket
  /// mode this opens and registers the node's socket). The node id must
  /// belong to this shard (node % shard_count == shard_index).
  FleetPort& add_node(std::uint32_t node);

  FleetPort* port(std::uint32_t node);

  /// Drains the batched send queue (no-op in single mode or when empty).
  /// Call once per reactor loop iteration, after dispatch.
  void flush();

  std::size_t local_nodes() const { return ports_.size(); }

  // Syscall-shape tallies for the bench harness.
  std::uint64_t send_syscalls() const { return send_syscalls_; }
  std::uint64_t recv_syscalls() const { return recv_syscalls_; }
  std::uint64_t datagrams_out() const { return datagrams_out_; }
  std::uint64_t datagrams_in() const { return datagrams_in_; }
  std::uint64_t sendq_drops() const { return sendq_drops_; }
  std::uint64_t unroutable_drops() const { return unroutable_drops_; }

 private:
  friend class FleetPort;

  struct PendingSend {
    std::uint32_t dst_node;
    std::vector<std::uint8_t> bytes;  ///< header + payload
  };

  bool submit(FleetPort& port, Endpoint to,
              std::span<const std::uint8_t> payload);
  void on_readable(int fd);
  void drain_single(int fd);
  void drain_batched(int fd);
  /// Routes one wire datagram (header included) to its local port.
  void dispatch(std::span<const std::uint8_t> wire);
  int make_socket(std::uint16_t port) const;
  void fill_addr(std::uint32_t node, sockaddr_in& out) const;
  bool send_now(int fd, std::uint32_t dst,
                std::span<const std::uint8_t> wire);

  Reactor& reactor_;
  FleetUdpConfig config_;
  std::size_t shard_index_;
  std::size_t shard_count_;
  int shard_fd_ = -1;  ///< shard-mode socket; -1 in node mode
  std::unordered_map<std::uint32_t, std::unique_ptr<FleetPort>> ports_;
  std::vector<PendingSend> sendq_;
  std::vector<std::uint8_t> recv_buf_;  ///< single-mode receive scratch
  std::vector<std::vector<std::uint8_t>> scatter_;  ///< batched receive

  std::uint64_t send_syscalls_ = 0;
  std::uint64_t recv_syscalls_ = 0;
  std::uint64_t datagrams_out_ = 0;
  std::uint64_t datagrams_in_ = 0;
  std::uint64_t sendq_drops_ = 0;
  std::uint64_t unroutable_drops_ = 0;
};

}  // namespace bsub::net
