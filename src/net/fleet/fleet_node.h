// One fleet-resident B-SUB endpoint: the NodeRuntime contract with a
// rebindable attachment point.
//
// A NodeRuntime (net/node_runtime.h) marries a BsubNode to ONE transport
// and ONE reactor for its whole life — right for a daemon process, wrong
// for a fleet where thousands of nodes share a few reactor threads and a
// deterministic loopback run migrates a node between lanes contact by
// contact. A FleetNode keeps the persistent per-node state (the BsubNode,
// its session-epoch counter) and makes the attachment explicit:
//
//   bind(transport, reactor)   claim the transport's receive upcall, start
//                              the decay tick (if configured);
//   connect/close/abort/...    the NodeRuntime session surface, verbatim;
//   unbind()                   abort any leftover sessions, release the
//                              transport.
//
// Two usage patterns:
//   - deterministic loopback lanes bind a node for exactly one contact
//     (decay_tick must be 0 — there is no timeline between contacts);
//   - UDP shards bind each node once at boot and never unbind until
//     shutdown, exactly like a NodeRuntime.
//
// All calls must come from the bound reactor's thread; like everything in
// src/net/, a FleetNode is lock-free by construction.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "engine/node.h"
#include "metrics/collector.h"
#include "net/node_runtime.h"
#include "net/reactor.h"
#include "net/session.h"
#include "net/transport.h"

namespace bsub::net {

class FleetNode {
 public:
  using SessionClosedHandler =
      std::function<void(Endpoint peer, SessionCloseReason)>;

  FleetNode(engine::NodeId id, const RuntimeConfig& config,
            metrics::TransportCounters& counters);
  ~FleetNode();

  FleetNode(const FleetNode&) = delete;
  FleetNode& operator=(const FleetNode&) = delete;

  engine::BsubNode& node() { return node_; }
  const engine::BsubNode& node() const { return node_; }
  engine::NodeId id() const { return node_.id(); }

  /// Attaches the node to a lane/shard: claims `transport`'s receive
  /// handler and arms the decay tick (if configured). Both references must
  /// outlive the binding.
  void bind(Transport& transport, Reactor& reactor);

  /// Detaches: aborts any session still alive (no datagrams are sent — the
  /// orchestration layer is expected to have closed gracefully first),
  /// disarms timers, releases the transport. Idempotent.
  void unbind();

  bool bound() const { return transport_ != nullptr; }

  /// Opens a contact session toward `peer` and sends this node's HELLO.
  /// `budget` (optional) is the shared contact byte budget.
  Session& connect(Endpoint peer, std::shared_ptr<sim::Link> budget = nullptr);

  /// Graceful FIN teardown of the session to `peer` (no-op if none).
  void close(Endpoint peer);
  /// Immediate teardown without datagrams.
  void abort(Endpoint peer);
  /// Graceful teardown of every live session (shutdown).
  void close_all();

  bool has_session(Endpoint peer) const { return sessions_.contains(peer); }
  Session* session(Endpoint peer);
  std::size_t session_count() const { return sessions_.size(); }
  bool all_sessions_idle() const;

  void set_session_closed_handler(SessionClosedHandler handler) {
    on_session_closed_ = std::move(handler);
  }

  /// Feeds one raw datagram addressed to this node (the demux upcall; also
  /// reachable through the bound transport's receive handler). Performs the
  /// passive-open dance for unknown peers, exactly like NodeRuntime.
  void on_datagram(Endpoint from, std::span<const std::uint8_t> bytes);

 private:
  Session& make_session(Endpoint peer, std::shared_ptr<sim::Link> budget);
  void arm_decay_tick();

  engine::BsubNode node_;
  RuntimeConfig config_;
  metrics::TransportCounters& counters_;
  Transport* transport_ = nullptr;
  Reactor* reactor_ = nullptr;
  std::map<Endpoint, std::unique_ptr<Session>> sessions_;
  /// Closed sessions awaiting safe destruction (a session must not be
  /// deleted while its own callback is on the stack).
  std::vector<std::unique_ptr<Session>> graveyard_;
  SessionClosedHandler on_session_closed_;
  Reactor::TimerId decay_timer_ = TimerWheel::kInvalidTimer;
  std::uint32_t next_epoch_ = 0;  ///< session incarnations, node-lifetime
};

}  // namespace bsub::net
