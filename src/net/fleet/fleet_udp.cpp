#include "net/fleet/fleet_udp.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>

#include "util/errors.h"

namespace bsub::net {

namespace {

/// Send queue backstop: beyond this the plane sheds load like a full
/// socket buffer would (counted drops; the session RTO recovers).
constexpr std::size_t kMaxSendQueue = 8192;

[[noreturn]] void throw_errno(const char* what) {
  throw std::runtime_error(std::string("FleetUdpShard: ") + what + ": " +
                           std::strerror(errno));
}

void put_u32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

bool fleet_udp_batched_available() {
#if defined(__linux__)
  return true;
#else
  return false;
#endif
}

void FleetUdpConfig::validate() const {
  if (batched_io && per_node_sockets) {
    throw util::ConfigError(
        "batched_io requires shard sockets (per-node sockets would need a "
        "send queue per socket, defeating the batching)",
        "fleet.batched_io", "use socket mode 'shard' or io mode 'single'");
  }
  if (batched_io && !fleet_udp_batched_available()) {
    throw util::ConfigError("sendmmsg/recvmmsg unavailable on this platform",
                            "fleet.batched_io", "use io mode 'single'");
  }
  if (batch_burst == 0 || batch_burst > 1024) {
    throw util::ConfigError("batch_burst must be in [1, 1024]",
                            "fleet.batch_burst", "use the default (64)");
  }
  if (mtu < 64 || mtu > 65000) {
    throw util::ConfigError("fleet mtu must be in [64, 65000]", "fleet.mtu",
                            "use the default (1400)");
  }
}

bool FleetPort::send(Endpoint to, std::span<const std::uint8_t> datagram) {
  return shard_.submit(*this, to, datagram);
}

std::size_t FleetPort::max_datagram_bytes() const {
  return shard_.config_.mtu;
}

FleetUdpShard::FleetUdpShard(Reactor& reactor, std::size_t shard_index,
                             std::size_t shard_count, FleetUdpConfig config)
    : reactor_(reactor), config_(config), shard_index_(shard_index),
      shard_count_(shard_count) {
  config_.validate();
  recv_buf_.resize(config_.mtu + kFleetHeaderBytes + 1);
  if (!config_.per_node_sockets) {
    shard_fd_ = make_socket(
        static_cast<std::uint16_t>(config_.base_port + shard_index_));
    reactor_.add_fd(shard_fd_, [this] { on_readable(shard_fd_); });
  }
  if (config_.batched_io) {
    scatter_.assign(config_.batch_burst,
                    std::vector<std::uint8_t>(recv_buf_.size()));
    sendq_.reserve(config_.batch_burst);
  }
}

FleetUdpShard::~FleetUdpShard() {
  flush();
  for (auto& [node, port] : ports_) {
    if (port->fd_ != shard_fd_ && port->fd_ >= 0) {
      reactor_.remove_fd(port->fd_);
      ::close(port->fd_);
    }
  }
  if (shard_fd_ >= 0) {
    reactor_.remove_fd(shard_fd_);
    ::close(shard_fd_);
  }
}

int FleetUdpShard::make_socket(std::uint16_t port) const {
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) throw_errno("socket");
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("fcntl(O_NONBLOCK)");
  }
  if (config_.socket_buffer_bytes > 0) {
    // Best-effort: the kernel clamps to its limits; a smaller buffer only
    // means more (counted, recovered) drops under burst.
    (void)::setsockopt(fd, SOL_SOCKET, SO_SNDBUF,
                       &config_.socket_buffer_bytes,
                       sizeof(config_.socket_buffer_bytes));
    (void)::setsockopt(fd, SOL_SOCKET, SO_RCVBUF,
                       &config_.socket_buffer_bytes,
                       sizeof(config_.socket_buffer_bytes));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(config_.ipv4);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("bind");
  }
  return fd;
}

void FleetUdpShard::fill_addr(std::uint32_t node, sockaddr_in& out) const {
  const std::uint16_t port =
      config_.per_node_sockets
          ? static_cast<std::uint16_t>(config_.base_port + node)
          : static_cast<std::uint16_t>(config_.base_port +
                                       node % shard_count_);
  std::memset(&out, 0, sizeof(out));
  out.sin_family = AF_INET;
  out.sin_addr.s_addr = htonl(config_.ipv4);
  out.sin_port = htons(port);
}

FleetPort& FleetUdpShard::add_node(std::uint32_t node) {
  if (node % shard_count_ != shard_index_) {
    throw std::invalid_argument("FleetUdpShard: node not homed here");
  }
  int fd = shard_fd_;
  if (config_.per_node_sockets) {
    fd = make_socket(static_cast<std::uint16_t>(config_.base_port + node));
    reactor_.add_fd(fd, [this, fd] { on_readable(fd); });
  }
  auto [it, inserted] =
      ports_.emplace(node, std::unique_ptr<FleetPort>(
                               new FleetPort(*this, node, fd)));
  if (!inserted) {
    throw std::invalid_argument("FleetUdpShard: duplicate node");
  }
  return *it->second;
}

FleetPort* FleetUdpShard::port(std::uint32_t node) {
  auto it = ports_.find(node);
  return it == ports_.end() ? nullptr : it->second.get();
}

bool FleetUdpShard::submit(FleetPort& port, Endpoint to,
                           std::span<const std::uint8_t> payload) {
  if (payload.size() > config_.mtu) return false;
  const auto dst = static_cast<std::uint32_t>(to);

  if (!config_.batched_io) {
    std::uint8_t wire[65536 + kFleetHeaderBytes];
    wire[0] = kFleetMagic;
    wire[1] = kFleetVersion;
    put_u32(wire + 2, port.node_);
    put_u32(wire + 6, dst);
    std::memcpy(wire + kFleetHeaderBytes, payload.data(), payload.size());
    // A refused sendto surfaces as false so the session counts the drop,
    // exactly like UdpTransport.
    return send_now(port.fd_, dst,
                    std::span<const std::uint8_t>(
                        wire, payload.size() + kFleetHeaderBytes));
  }

  if (sendq_.size() >= kMaxSendQueue) {
    flush();
    if (sendq_.size() >= kMaxSendQueue) {
      ++sendq_drops_;
      return false;  // shed load like a full socket buffer
    }
  }
  PendingSend p;
  p.dst_node = dst;
  p.bytes.resize(kFleetHeaderBytes + payload.size());
  p.bytes[0] = kFleetMagic;
  p.bytes[1] = kFleetVersion;
  put_u32(p.bytes.data() + 2, port.node_);
  put_u32(p.bytes.data() + 6, dst);
  std::memcpy(p.bytes.data() + kFleetHeaderBytes, payload.data(),
              payload.size());
  sendq_.push_back(std::move(p));
  if (sendq_.size() >= config_.batch_burst) flush();
  return true;
}

bool FleetUdpShard::send_now(int fd, std::uint32_t dst,
                             std::span<const std::uint8_t> wire) {
  sockaddr_in addr;
  fill_addr(dst, addr);
  ++send_syscalls_;
  const ssize_t n =
      ::sendto(fd, wire.data(), wire.size(), 0,
               reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  if (n == static_cast<ssize_t>(wire.size())) {
    ++datagrams_out_;
    return true;
  }
  return false;
}

void FleetUdpShard::flush() {
  if (sendq_.empty()) return;
#if defined(__linux__)
  std::size_t done = 0;
  while (done < sendq_.size()) {
    const std::size_t burst =
        std::min(config_.batch_burst, sendq_.size() - done);
    // Scatter arrays are small (<= batch_burst) stack-era vectors; building
    // them per burst is noise next to the syscall they replace.
    std::vector<sockaddr_in> addrs(burst);
    std::vector<iovec> iovs(burst);
    std::vector<mmsghdr> msgs(burst);
    for (std::size_t i = 0; i < burst; ++i) {
      PendingSend& p = sendq_[done + i];
      fill_addr(p.dst_node, addrs[i]);
      iovs[i].iov_base = p.bytes.data();
      iovs[i].iov_len = p.bytes.size();
      std::memset(&msgs[i], 0, sizeof(msgs[i]));
      msgs[i].msg_hdr.msg_name = &addrs[i];
      msgs[i].msg_hdr.msg_namelen = sizeof(addrs[i]);
      msgs[i].msg_hdr.msg_iov = &iovs[i];
      msgs[i].msg_hdr.msg_iovlen = 1;
    }
    ++send_syscalls_;
    const int sent = ::sendmmsg(shard_fd_, msgs.data(),
                                static_cast<unsigned>(burst), 0);
    if (sent < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;  // retry later
      // Hard error: shed this burst like lost datagrams (the sessions
      // already counted them as sent; the RTO ladder recovers).
      sendq_drops_ += burst;
      done += burst;
      continue;
    }
    datagrams_out_ += static_cast<std::uint64_t>(sent);
    done += static_cast<std::size_t>(sent);
    if (static_cast<std::size_t>(sent) < burst) break;  // buffer full
  }
  sendq_.erase(sendq_.begin(),
               sendq_.begin() + static_cast<std::ptrdiff_t>(done));
#else
  // No sendmmsg on this platform (validate() rejects batched_io, so this
  // path only runs if a caller bypassed validation): fall back to sendto.
  for (PendingSend& p : sendq_) {
    if (!send_now(shard_fd_, p.dst_node, p.bytes)) ++sendq_drops_;
  }
  sendq_.clear();
#endif
}

void FleetUdpShard::on_readable(int fd) {
  if (config_.batched_io) {
    drain_batched(fd);
  } else {
    drain_single(fd);
  }
}

void FleetUdpShard::drain_single(int fd) {
  for (;;) {
    ++recv_syscalls_;
    const ssize_t n = ::recv(fd, recv_buf_.data(), recv_buf_.size(), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or transient error; the next readiness retries
    }
    if (n == 0) continue;
    ++datagrams_in_;
    dispatch(std::span<const std::uint8_t>(recv_buf_.data(),
                                           static_cast<std::size_t>(n)));
  }
}

void FleetUdpShard::drain_batched(int fd) {
#if defined(__linux__)
  const std::size_t burst = scatter_.size();
  std::vector<iovec> iovs(burst);
  std::vector<mmsghdr> msgs(burst);
  for (;;) {
    for (std::size_t i = 0; i < burst; ++i) {
      iovs[i].iov_base = scatter_[i].data();
      iovs[i].iov_len = scatter_[i].size();
      std::memset(&msgs[i], 0, sizeof(msgs[i]));
      msgs[i].msg_hdr.msg_iov = &iovs[i];
      msgs[i].msg_hdr.msg_iovlen = 1;
    }
    ++recv_syscalls_;
    const int n = ::recvmmsg(fd, msgs.data(), static_cast<unsigned>(burst),
                             0, nullptr);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN: drained
    }
    for (int i = 0; i < n; ++i) {
      ++datagrams_in_;
      dispatch(std::span<const std::uint8_t>(scatter_[i].data(),
                                             msgs[i].msg_len));
    }
    if (static_cast<std::size_t>(n) < burst) return;  // socket drained
  }
#else
  drain_single(fd);
#endif
}

void FleetUdpShard::dispatch(std::span<const std::uint8_t> wire) {
  if (wire.size() < kFleetHeaderBytes ||
      wire.size() > config_.mtu + kFleetHeaderBytes ||
      wire[0] != kFleetMagic || wire[1] != kFleetVersion) {
    ++unroutable_drops_;
    return;
  }
  const std::uint32_t src = get_u32(wire.data() + 2);
  const std::uint32_t dst = get_u32(wire.data() + 6);
  auto it = ports_.find(dst);
  if (it == ports_.end() || !it->second->handler_) {
    ++unroutable_drops_;
    return;
  }
  it->second->handler_(static_cast<Endpoint>(src),
                       wire.subspan(kFleetHeaderBytes));
}

}  // namespace bsub::net
