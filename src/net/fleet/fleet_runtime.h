// Fleet runtime: thousands of live B-SUB nodes per reactor thread.
//
// The contact orchestrator (net/orchestrator.h) proves the live stack
// correct one node-pair at a time on a single reactor; the fleet runtime
// scales the same stack out in two directions, both driving contacts from
// any trace::ContactStream:
//
//   run_loopback()  deterministic virtual time, sharded across reactor
//                   threads. Contacts are scheduled with the windowed
//                   conflict-batch executor (the same discipline the
//                   parallel engine uses): node-disjoint contacts commute,
//                   so each worker thread owns a *lane* — a ManualClock +
//                   Reactor + LoopbackHub — and replays its contacts as
//                   independent virtual-time episodes (clock reset +
//                   reactor rebase per contact). FleetNodes carry the
//                   persistent per-node state between lanes. Results are
//                   bit-identical to ContactOrchestrator and — for
//                   decay_tick = 0, which this engine requires — to
//                   engine::TraceRunner, across any thread count.
//
//   run_udp()       real time over the fleet UDP plane
//                   (net/fleet/fleet_udp.h): nodes are sharded
//                   node-disjoint across reactor threads (home shard =
//                   node % shards), each shard multiplexes its nodes over
//                   one socket (or per-node sockets as the measurable
//                   baseline) with optional sendmmsg/recvmmsg batching.
//                   A driver thread replays the scenario as fast as an
//                   in-flight window allows, posting contact/role/publish
//                   commands to the owning shard over a wake pipe; each
//                   contact closes when its session goes idle and is
//                   aborted at a hard timeout. Real-time runs measure
//                   throughput and delivery latency; they are NOT
//                   bit-comparable to the virtual-time engines (real
//                   clocks, best-effort datagrams, no byte budgets).
//
// A FleetRuntime instance is single-run: construct, call run_loopback() or
// run_udp() once, then inspect node()/deliveries().
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/broker_allocation.h"
#include "engine/trace_runner.h"
#include "metrics/collector.h"
#include "net/fleet/fleet_node.h"
#include "net/fleet/fleet_udp.h"
#include "net/node_runtime.h"
#include "net/reactor.h"
#include "sim/event_stream.h"
#include "sim/parallel_executor.h"
#include "trace/contact_stream.h"
#include "trace/trace.h"
#include "workload/workload.h"

namespace bsub::net {

struct FleetConfig {
  RuntimeConfig runtime;
  core::BrokerElection::Config election{3, 5, 5 * util::kHour};
  double bandwidth_bytes_per_second = sim::kDefaultBandwidthBytesPerSecond;

  // --- run_loopback() knobs (same semantics as TraceRunnerOptions) ---
  /// 0 = util::default_thread_count() (honors BSUB_THREADS), 1 = serial.
  std::size_t threads = 0;
  std::size_t window_events = 4096;
  std::size_t min_batch_fanout = 4;

  // --- run_udp() knobs ---
  ReactorBackend backend = ReactorBackend::kAuto;
  /// Reactor threads / sockets-in-shard-mode. Nodes home at node % shards.
  std::size_t shards = 1;
  FleetUdpConfig udp;
  /// Driver-side throttle: contacts issued but not yet completed.
  std::size_t max_inflight_contacts = 128;
  /// A contact still alive this long after connect is aborted (lost peer).
  util::Time contact_timeout = 2 * util::kSecond;
  /// How often a live contact is polled for "session idle -> close".
  util::Time idle_check_period = 2 * util::kMillisecond;
};

/// Builds a FleetConfig from a B-SUB protocol spec, exactly like
/// TraceRunner::from_protocol_spec maps specs onto (NodeConfig, election).
/// All non-protocol fields are taken from `base`. Throws util::ConfigError
/// for a non-B-SUB spec or adaptive=1.
FleetConfig fleet_config_from_spec(std::string_view protocol_spec,
                                   FleetConfig base = {});

struct FleetRunResults {
  /// Same semantic fields as the other substrates. For run_udp(),
  /// bytes_used stays 0 (real contacts have no byte budget) and
  /// mean_delay_minutes is derived from real delivery latencies.
  engine::TraceRunResults protocol;
  metrics::TransportStats transport;
  /// Execution shape (run_loopback() only).
  sim::ParallelRunStats exec;

  std::size_t nodes = 0;
  std::size_t reactor_threads = 0;

  // --- real-time measurements (run_udp(); wall_seconds also set by
  // run_loopback() for throughput comparisons) ---
  double wall_seconds = 0.0;
  double contacts_per_second = 0.0;
  double deliveries_per_second = 0.0;
  double p50_delivery_latency_ms = 0.0;
  double p99_delivery_latency_ms = 0.0;
  std::uint64_t contacts_timed_out = 0;

  // Syscall shape, summed over shards (run_udp()).
  std::uint64_t send_syscalls = 0;
  std::uint64_t recv_syscalls = 0;
  std::uint64_t datagrams_out = 0;
  std::uint64_t datagrams_in = 0;
  std::uint64_t sendq_drops = 0;
  std::uint64_t unroutable_drops = 0;
};

class FleetRuntime {
 public:
  explicit FleetRuntime(FleetConfig config = {});
  ~FleetRuntime();

  FleetRuntime(const FleetRuntime&) = delete;
  FleetRuntime& operator=(const FleetRuntime&) = delete;

  /// Deterministic multi-threaded loopback replay. Requires
  /// runtime.decay_tick == 0 (lanes have no timeline between contacts);
  /// throws util::ConfigError otherwise.
  FleetRunResults run_loopback(trace::ContactStream& contacts,
                               const workload::Workload& workload);

  /// Real-time replay over the fleet UDP plane.
  FleetRunResults run_udp(trace::ContactStream& contacts,
                          const workload::Workload& workload);

  /// Materialized-scenario conveniences.
  FleetRunResults run_loopback(const trace::ContactTrace& trace,
                               const workload::Workload& workload) {
    trace::MaterializedStream stream(trace);
    return run_loopback(stream, workload);
  }
  FleetRunResults run_udp(const trace::ContactTrace& trace,
                          const workload::Workload& workload) {
    trace::MaterializedStream stream(trace);
    return run_udp(stream, workload);
  }

  /// Valid after a run.
  const engine::BsubNode& node(trace::NodeId id) const;
  /// All consumer deliveries, node-major — the canonical order shared with
  /// TraceRunner and ContactOrchestrator. Populated by run_loopback();
  /// empty after run_udp() (real-time runs only count and sample).
  const std::vector<engine::DeliveryRecord>& deliveries() const;

 private:
  struct Lane;
  struct Shard;
  struct Command;

  void require_unused();
  void make_nodes(std::size_t node_count, const workload::Workload& workload);

  // --- loopback engine ---
  Lane& lane_for_thread();
  void exec_loopback_event(const sim::ScenarioEvent& event,
                           const workload::Workload& workload);
  void exec_loopback_contact(Lane& lane, const trace::Contact& c);
  void pump_lane(Lane& lane, FleetNode& a, FleetNode& b, util::Time cap);

  // --- udp engine ---
  static std::uint64_t contact_key(std::uint32_t a, std::uint32_t b) {
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }
  std::size_t shard_of(std::uint32_t node) const {
    return node % config_.shards;
  }
  void post(Shard& shard, const Command& cmd);
  void drain_inbox(Shard& shard);
  void exec_command(Shard& shard, const Command& cmd,
                    const workload::Workload& workload);
  void arm_idle_check(Shard& shard, std::uint32_t a, std::uint32_t b);
  void complete_contact(Shard& shard, std::uint64_t key);

  FleetConfig config_;
  metrics::TransportCounters counters_;

  std::unique_ptr<core::BrokerElection> election_;
  std::vector<std::vector<engine::DeliveryRecord>> per_node_deliveries_;
  mutable std::vector<engine::DeliveryRecord> flattened_;
  std::atomic<std::uint64_t> contacts_processed_{0};
  std::atomic<std::uint64_t> bytes_used_{0};

  // Loopback lanes, created on demand (one per executing thread).
  std::mutex lanes_mu_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::uint64_t run_token_ = 0;

  // UDP shards and real-time bookkeeping.
  std::vector<std::unique_ptr<Shard>> shards_;
  const workload::Workload* workload_ = nullptr;
  std::unordered_map<std::uint64_t, std::uint32_t> message_index_of_;
  std::unique_ptr<std::atomic<std::int64_t>[]> publish_ms_;
  std::atomic<std::uint64_t> issued_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> timed_out_{0};
  std::atomic<std::uint64_t> live_deliveries_{0};

  bool ran_ = false;
  /// Declared last: FleetNode teardown (unbind) may touch lanes/shards.
  std::vector<std::unique_ptr<FleetNode>> nodes_;
};

}  // namespace bsub::net
