// One live B-SUB endpoint: an engine::BsubNode wired to a datagram
// transport through contact sessions, driven by a reactor.
//
// The runtime is the glue layer the bsub_node daemon and the contact
// orchestrator share:
//
//   - outbound: connect(peer) opens a Session and feeds it the node's
//     begin_contact() frames (the B-SUB HELLO);
//   - inbound: datagrams are routed to the peer's session (created
//     passively on first contact — the passive side also emits its own
//     HELLO, as the encounter protocol requires); each reassembled frame
//     goes through BsubNode::handle(), and the response frames go straight
//     back out on the same session;
//   - timers: a periodic decay tick drives TCBF decay and expiry purging
//     through the reactor's timer wheel, so a daemon idling between
//     contacts keeps its filters honest.
//
// Everything runs on the reactor thread; the runtime needs no locks.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "engine/node.h"
#include "metrics/collector.h"
#include "net/reactor.h"
#include "net/session.h"
#include "net/transport.h"

namespace bsub::net {

struct RuntimeConfig {
  engine::NodeConfig node;  ///< protocol constants (filters, C, DF, copies)
  SessionConfig session;
  /// Period of the TCBF decay / expiry-purge tick; 0 disables it.
  util::Time decay_tick = util::kMinute;
};

class NodeRuntime {
 public:
  using SessionClosedHandler =
      std::function<void(Endpoint peer, SessionCloseReason)>;

  NodeRuntime(engine::NodeId id, RuntimeConfig config, Transport& transport,
              Reactor& reactor, metrics::TransportCounters& counters);
  ~NodeRuntime();

  engine::BsubNode& node() { return node_; }
  const engine::BsubNode& node() const { return node_; }
  Endpoint endpoint() const { return transport_.local_endpoint(); }

  /// Opens a contact session toward `peer` and sends this node's HELLO.
  /// `budget` (optional) is the shared contact byte budget. No-op if a
  /// session to the peer is already live.
  Session& connect(Endpoint peer,
                   std::shared_ptr<sim::Link> budget = nullptr);

  /// Graceful FIN teardown of the session to `peer` (no-op if none).
  void close(Endpoint peer);
  /// Immediate teardown without datagrams.
  void abort(Endpoint peer);
  /// Graceful teardown of every live session (daemon shutdown).
  void close_all();

  bool has_session(Endpoint peer) const {
    return sessions_.contains(peer);
  }
  Session* session(Endpoint peer);
  std::size_t session_count() const { return sessions_.size(); }

  /// True when no session has frames in flight (the orchestrator's
  /// quiescence test for a contact window).
  bool all_sessions_idle() const;

  void set_session_closed_handler(SessionClosedHandler handler) {
    on_session_closed_ = std::move(handler);
  }

 private:
  void on_transport_datagram(Endpoint from,
                             std::span<const std::uint8_t> bytes);
  Session& make_session(Endpoint peer, std::shared_ptr<sim::Link> budget);
  void arm_decay_tick();

  engine::BsubNode node_;
  RuntimeConfig config_;
  Transport& transport_;
  Reactor& reactor_;
  metrics::TransportCounters& counters_;
  std::map<Endpoint, std::unique_ptr<Session>> sessions_;
  /// Sessions whose close handler already fired, awaiting safe destruction
  /// (a session must not be deleted while its own callback is on the
  /// stack); drained at the next runtime entry point.
  std::vector<std::unique_ptr<Session>> graveyard_;
  SessionClosedHandler on_session_closed_;
  Reactor::TimerId decay_timer_ = TimerWheel::kInvalidTimer;
  std::uint32_t next_epoch_ = 0;  ///< session incarnation counter
};

}  // namespace bsub::net
