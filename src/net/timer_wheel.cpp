#include "net/timer_wheel.h"

#include <algorithm>

namespace bsub::net {

namespace {

/// Slot granularity (in ms) of a level: 1, 64, 4096, 262144.
constexpr unsigned level_shift(unsigned level) { return 6 * level; }

}  // namespace

TimerWheel::TimerWheel(util::Time start) : now_(start) {}

unsigned TimerWheel::level_for(util::Time deadline) const {
  const util::Time delta = deadline > now_ ? deadline - now_ : 0;
  for (unsigned level = 0; level < kLevels; ++level) {
    const util::Time span = static_cast<util::Time>(1)
                            << level_shift(level + 1);
    if (delta < span) return level;
  }
  return kLevels;  // overflow
}

void TimerWheel::place(Entry entry) {
  const unsigned level = level_for(entry.deadline);
  if (level == kLevels) {
    overflow_.push_back(entry);
    return;
  }
  // Overdue deadlines clamp to the current instant so they sit in a slot
  // the next advance() is guaranteed to drain.
  const util::Time at = std::max(entry.deadline, now_);
  const std::uint64_t slot =
      (static_cast<std::uint64_t>(at) >> level_shift(level)) & (kSlots - 1);
  slots_[level][slot].push_back(entry);
}

TimerWheel::TimerId TimerWheel::schedule(util::Time deadline, Callback cb) {
  const TimerId id = next_id_++;
  callbacks_.emplace(id, std::move(cb));
  ++live_;
  place(Entry{id, deadline});
  heap_.emplace_back(deadline, id);
  std::push_heap(heap_.begin(), heap_.end(), HeapGreater{});
  return id;
}

bool TimerWheel::cancel(TimerId id) {
  // Lazy: the slot entry becomes a tombstone, skipped when its slot drains.
  if (callbacks_.erase(id) == 0) return false;
  --live_;
  return true;
}

util::Time TimerWheel::next_deadline() const {
  while (!heap_.empty() && !callbacks_.contains(heap_.front().second)) {
    std::pop_heap(heap_.begin(), heap_.end(), HeapGreater{});
    heap_.pop_back();
  }
  return heap_.empty() ? util::kTimeMax : heap_.front().first;
}

void TimerWheel::drain(std::vector<Entry>& slot, util::Time now,
                       std::vector<Entry>& due) {
  for (Entry& e : slot) {
    if (!callbacks_.contains(e.id)) continue;  // cancelled tombstone
    if (e.deadline <= now) {
      due.push_back(e);
    } else {
      place(e);  // cascade down: now_ has advanced, so it lands finer
    }
  }
  slot.clear();
}

std::size_t TimerWheel::advance(util::Time now) {
  if (now < now_) now = now_;
  std::size_t fired = 0;
  bool first_pass = true;
  while (true) {
    std::vector<Entry> due;
    const util::Time from = now_;
    // Re-placement during drain must use the *new* instant so surviving
    // entries cascade into the right finer-grained slot.
    now_ = now;
    if (first_pass) {
      for (unsigned level = 0; level < kLevels; ++level) {
        const unsigned shift = level_shift(level);
        const std::uint64_t begin = static_cast<std::uint64_t>(from) >> shift;
        const std::uint64_t end = static_cast<std::uint64_t>(now) >> shift;
        const std::uint64_t count = std::min<std::uint64_t>(
            end - begin + 1, kSlots);
        for (std::uint64_t i = 0; i < count; ++i) {
          drain(slots_[level][(begin + i) & (kSlots - 1)], now, due);
        }
      }
      // Entries park in overflow while they are >= one full horizon out, so
      // any advance that could strand one necessarily crosses a top-level
      // slot; re-examining overflow on those crossings is sufficient.
      if ((static_cast<std::uint64_t>(from) >> level_shift(kLevels - 1)) !=
              (static_cast<std::uint64_t>(now) >> level_shift(kLevels - 1)) &&
          !overflow_.empty()) {
        std::vector<Entry> parked;
        parked.swap(overflow_);
        drain(parked, now, due);
      }
      first_pass = false;
    } else {
      // Later passes only catch timers (re)scheduled by callbacks with
      // deadlines at or before `now`; place() clamps those into the current
      // level-0 slot.
      drain(slots_[0][static_cast<std::uint64_t>(now) & (kSlots - 1)], now,
            due);
    }
    if (due.empty()) break;
    // Deterministic firing order: deadline, then schedule order (ids are
    // handed out monotonically).
    std::sort(due.begin(), due.end(), [](const Entry& a, const Entry& b) {
      return a.deadline != b.deadline ? a.deadline < b.deadline
                                      : a.id < b.id;
    });
    for (const Entry& e : due) {
      auto it = callbacks_.find(e.id);
      if (it == callbacks_.end()) continue;  // cancelled by an earlier cb
      Callback cb = std::move(it->second);
      callbacks_.erase(it);
      --live_;
      ++fired;
      cb();
    }
  }
  return fired;
}

}  // namespace bsub::net
