#include "net/transport.h"

#include <cstdint>
#include <cstdlib>
#include <string>

namespace bsub::net {

bool parse_udp_endpoint(const std::string& text, Endpoint& out) {
  const std::size_t colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= text.size()) {
    return false;
  }
  const std::string host = text.substr(0, colon);
  const std::string port_text = text.substr(colon + 1);

  std::uint32_t ip = 0;
  std::size_t pos = 0;
  for (int octet = 0; octet < 4; ++octet) {
    if (pos >= host.size()) return false;
    std::size_t used = 0;
    unsigned long v = 0;
    try {
      v = std::stoul(host.substr(pos), &used, 10);
    } catch (...) {
      return false;
    }
    if (used == 0 || v > 255) return false;
    ip = (ip << 8) | static_cast<std::uint32_t>(v);
    pos += used;
    if (octet < 3) {
      if (pos >= host.size() || host[pos] != '.') return false;
      ++pos;
    }
  }
  if (pos != host.size()) return false;

  std::size_t used = 0;
  unsigned long port = 0;
  try {
    port = std::stoul(port_text, &used, 10);
  } catch (...) {
    return false;
  }
  // Port 0 is legal: "bind to an ephemeral port".
  if (used != port_text.size() || port > 65535) return false;

  out = make_udp_endpoint(ip, static_cast<std::uint16_t>(port));
  return true;
}

std::string format_udp_endpoint(Endpoint ep) {
  const std::uint32_t ip = endpoint_ipv4(ep);
  return std::to_string((ip >> 24) & 0xFF) + "." +
         std::to_string((ip >> 16) & 0xFF) + "." +
         std::to_string((ip >> 8) & 0xFF) + "." + std::to_string(ip & 0xFF) +
         ":" + std::to_string(endpoint_port(ep));
}

}  // namespace bsub::net
