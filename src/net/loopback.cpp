#include "net/loopback.h"

#include <stdexcept>

namespace bsub::net {

LoopbackHub::LoopbackHub() : LoopbackHub(Config{}) {}

LoopbackHub::LoopbackHub(Config config)
    : config_(config), loss_rng_(config.loss_seed) {}

LoopbackHub::~LoopbackHub() = default;

LoopbackTransport& LoopbackHub::attach(Endpoint ep) {
  auto [it, inserted] = transports_.emplace(
      ep, std::unique_ptr<LoopbackTransport>(new LoopbackTransport(*this, ep)));
  if (!inserted) {
    throw std::invalid_argument("LoopbackHub: duplicate endpoint");
  }
  return *it->second;
}

bool LoopbackHub::enqueue(Endpoint from, Endpoint to,
                          std::span<const std::uint8_t> bytes) {
  if (bytes.size() > config_.mtu) return false;
  queue_.push_back(
      Datagram{from, to, std::vector<std::uint8_t>(bytes.begin(), bytes.end())});
  ++enqueued_;
  return true;
}

bool LoopbackHub::deliver_one() {
  if (queue_.empty()) return false;
  Datagram d = std::move(queue_.front());
  queue_.pop_front();
  // The loss draw happens even for unroutable datagrams so the drop
  // sequence depends only on send order, not on topology.
  const bool lost = config_.loss_probability > 0.0 &&
                    loss_rng_.next_bool(config_.loss_probability);
  if (lost) {
    ++dropped_loss_;
    return true;
  }
  auto it = transports_.find(d.to);
  if (it == transports_.end() || !it->second->handler_) {
    ++dropped_unroutable_;
    return true;
  }
  ++delivered_;
  it->second->handler_(d.from, d.bytes);
  return true;
}

std::size_t LoopbackHub::deliver_all() {
  std::size_t n = 0;
  while (deliver_one()) ++n;
  return n;
}

bool LoopbackTransport::send(Endpoint to,
                             std::span<const std::uint8_t> datagram) {
  return hub_.enqueue(endpoint_, to, datagram);
}

std::size_t LoopbackTransport::max_datagram_bytes() const {
  return hub_.config_.mtu;
}

}  // namespace bsub::net
