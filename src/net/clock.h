// Time sources for the live runtime.
//
// The runtime never reads wall time directly: every component takes a Clock
// so the same reactor/session/transport code runs under a ManualClock
// (deterministic virtual time, advanced by the test or the contact
// orchestrator) or a SteadyClock (monotonic real time, used by the
// bsub_node daemon). util::Time stays the single time type — for the real
// clock it means "milliseconds since the clock was constructed", which
// lines up with traces measuring time since their own start.
#pragma once

#include <chrono>

#include "util/time.h"

namespace bsub::net {

class Clock {
 public:
  virtual ~Clock() = default;
  virtual util::Time now() const = 0;
};

/// Virtual time under external control; never moves on its own.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(util::Time start = 0) : now_(start) {}

  util::Time now() const override { return now_; }

  /// Time is monotonic: set() below the current instant is a logic error
  /// upstream, so it clamps rather than travels backwards.
  void set(util::Time t) {
    if (t > now_) now_ = t;
  }
  void advance(util::Time delta) {
    if (delta > 0) now_ += delta;
  }

  /// Unconditionally rewinds/forwards the clock: the escape hatch for
  /// reusing one clock across independent virtual-time episodes (a fleet
  /// lane executes node-disjoint contacts out of global time order, one
  /// episode per contact). Pair with Reactor::rebase(). Within one episode
  /// time stays monotonic via set()/advance().
  void reset(util::Time t) { now_ = t; }

 private:
  util::Time now_;
};

/// Monotonic real time, in milliseconds since construction.
class SteadyClock final : public Clock {
 public:
  SteadyClock() : start_(std::chrono::steady_clock::now()) {}

  util::Time now() const override {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    return static_cast<util::Time>(
        std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
            .count());
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace bsub::net
