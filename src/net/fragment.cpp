#include "net/fragment.h"

#include <algorithm>
#include <string>

#include "util/byte_io.h"

namespace bsub::net {

namespace {

void put_header(util::ByteWriter& w, DatagramKind kind, std::uint32_t epoch) {
  w.put_u8(kNetMagic);
  w.put_u8(kNetVersion);
  w.put_u8(static_cast<std::uint8_t>(kind));
  w.put_u32(epoch);
}

}  // namespace

DatagramView parse_datagram(std::span<const std::uint8_t> bytes) {
  util::ByteReader r(bytes);
  if (r.get_u8() != kNetMagic) {
    throw util::CodecError("bad datagram magic", 0, "0xB5", {});
  }
  const std::uint8_t version = r.get_u8();
  if (version != kNetVersion) {
    throw util::CodecError("unsupported datagram version", 1,
                           std::to_string(kNetVersion),
                           std::to_string(version));
  }
  const std::size_t kind_at = r.offset();
  const std::uint8_t kind_byte = r.get_u8();
  if (kind_byte < static_cast<std::uint8_t>(DatagramKind::kData) ||
      kind_byte > static_cast<std::uint8_t>(DatagramKind::kFinAck)) {
    throw util::CodecError("unknown datagram kind", kind_at, "kind in [1, 4]",
                           std::to_string(kind_byte));
  }
  DatagramView v;
  v.kind = static_cast<DatagramKind>(kind_byte);
  v.epoch = r.get_u32();
  switch (v.kind) {
    case DatagramKind::kData: {
      v.seq = r.get_varint();
      const std::size_t geom_at = r.offset();
      v.frag_count = r.get_varint();
      v.frag_index = r.get_varint();
      v.frame_len = r.get_varint();
      v.offset = r.get_varint();
      if (v.frag_count == 0 || v.frag_index >= v.frag_count) {
        throw util::CodecError("bad fragment geometry", geom_at,
                               "0 <= index < count, count >= 1",
                               std::to_string(v.frag_index) + "/" +
                                   std::to_string(v.frag_count));
      }
      if (v.frame_len == 0 || v.frame_len > kMaxFrameBytes) {
        throw util::CodecError("bad frame length", geom_at,
                               "1.." + std::to_string(kMaxFrameBytes),
                               std::to_string(v.frame_len));
      }
      if (v.frag_count > v.frame_len) {
        throw util::CodecError("more fragments than frame bytes", geom_at,
                               "count <= frame length",
                               std::to_string(v.frag_count));
      }
      const std::size_t n = r.remaining();
      if (n == 0) {
        throw util::CodecError("empty fragment payload", r.offset(),
                               "at least 1 payload byte", "0");
      }
      if (v.offset > v.frame_len || n > v.frame_len - v.offset) {
        throw util::CodecError("fragment exceeds frame bounds", r.offset(),
                               "offset + payload <= frame length",
                               std::to_string(v.offset) + "+" +
                                   std::to_string(n));
      }
      v.payload = r.get_span(n);
      break;
    }
    case DatagramKind::kAck:
      v.ack_next = r.get_varint();
      break;
    case DatagramKind::kFin:
    case DatagramKind::kFinAck:
      break;
  }
  r.expect_end("datagram");
  return v;
}

void fragment_frame(std::uint32_t epoch, std::uint64_t seq,
                    std::span<const std::uint8_t> frame, std::size_t mtu,
                    std::vector<std::vector<std::uint8_t>>& out) {
  const std::size_t chunk = mtu - kDataHeaderReserve;
  const std::size_t count = (frame.size() + chunk - 1) / chunk;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t offset = i * chunk;
    const std::size_t len = std::min(chunk, frame.size() - offset);
    util::ByteWriter w;
    put_header(w, DatagramKind::kData, epoch);
    w.put_varint(seq);
    w.put_varint(count);
    w.put_varint(i);
    w.put_varint(frame.size());
    w.put_varint(offset);
    w.put_bytes(frame.subspan(offset, len));
    out.push_back(std::move(w).take());
  }
}

std::vector<std::uint8_t> encode_ack(std::uint32_t epoch,
                                     std::uint64_t ack_next) {
  util::ByteWriter w;
  put_header(w, DatagramKind::kAck, epoch);
  w.put_varint(ack_next);
  return std::move(w).take();
}

std::vector<std::uint8_t> encode_fin(std::uint32_t epoch, bool is_ack) {
  util::ByteWriter w;
  put_header(w, is_ack ? DatagramKind::kFinAck : DatagramKind::kFin, epoch);
  return std::move(w).take();
}

FragmentBuffer::Add FragmentBuffer::add(const DatagramView& view) {
  if (frag_count_ == 0) {
    frag_count_ = view.frag_count;
    frame_len_ = view.frame_len;
    bytes_.assign(frame_len_, 0);
    have_.assign(frag_count_, false);
  } else if (view.frag_count != frag_count_ || view.frame_len != frame_len_) {
    return Add::kMismatch;
  }
  if (have_[view.frag_index]) return Add::kDuplicate;
  // parse_datagram already guaranteed offset + payload <= frame_len.
  std::copy(view.payload.begin(), view.payload.end(),
            bytes_.begin() + static_cast<std::ptrdiff_t>(view.offset));
  have_[view.frag_index] = true;
  ++placed_;
  return complete() ? Add::kComplete : Add::kIncomplete;
}

}  // namespace bsub::net
