// Datagram transport contract for the live runtime.
//
// A Transport moves opaque, unreliable, unordered-in-principle datagrams of
// bounded size between endpoints. Everything above it (fragmentation,
// sessions, the node runtime) is backend-agnostic; the two backends are
//
//   LoopbackTransport  deterministic in-memory hub (tests, orchestrator),
//   UdpTransport       real IPv4/UDP sockets (bsub_node daemon).
//
// Endpoints are opaque 64-bit addresses. The loopback hub uses small
// integers; UDP packs (ipv4 << 16) | port. An endpoint identifies a peer
// for the lifetime of a session.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>

namespace bsub::net {

using Endpoint = std::uint64_t;

/// Packs an IPv4 address (host byte order) and port into an Endpoint.
constexpr Endpoint make_udp_endpoint(std::uint32_t ipv4_host_order,
                                     std::uint16_t port) {
  return (static_cast<Endpoint>(ipv4_host_order) << 16) | port;
}
constexpr std::uint32_t endpoint_ipv4(Endpoint ep) {
  return static_cast<std::uint32_t>(ep >> 16);
}
constexpr std::uint16_t endpoint_port(Endpoint ep) {
  return static_cast<std::uint16_t>(ep & 0xFFFF);
}

/// "a.b.c.d:port" <-> Endpoint helpers (numeric IPv4 only). parse returns
/// false on malformed input instead of throwing: addresses come from CLI
/// flags, not from the wire.
bool parse_udp_endpoint(const std::string& text, Endpoint& out);
std::string format_udp_endpoint(Endpoint ep);

class Transport {
 public:
  using ReceiveHandler =
      std::function<void(Endpoint from, std::span<const std::uint8_t>)>;

  virtual ~Transport() = default;

  /// Best-effort datagram send; false means locally refused (oversized or
  /// the backend failed synchronously). True does NOT imply delivery.
  virtual bool send(Endpoint to, std::span<const std::uint8_t> datagram) = 0;

  /// Largest datagram send() accepts — the MTU the fragmenter packs to.
  virtual std::size_t max_datagram_bytes() const = 0;

  virtual Endpoint local_endpoint() const = 0;

  /// Installs the upcall for received datagrams. The span is only valid for
  /// the duration of the call.
  virtual void set_receive_handler(ReceiveHandler handler) = 0;
};

}  // namespace bsub::net
