// Hierarchical timer wheel for the reactor's deadlines (retransmit timers,
// session teardown grace, TCBF decay ticks).
//
// Four levels of 64 slots each, with slot granularities of 1 ms, 64 ms,
// ~4.1 s and ~4.4 min cover ~4.7 hours of future deadlines; anything
// further out parks in an overflow bucket that is re-cascaded when the
// wheel's horizon reaches it. schedule() and cancel() are O(1); advance(t)
// costs O(slots crossed + timers fired), so the virtual-time orchestrator
// can jump hours of trace time cheaply.
//
// Firing order is fully deterministic: timers due at or before the new
// instant fire ordered by (deadline, schedule sequence), regardless of
// which slots they sat in. Cancellation is lazy — a cancelled timer stays
// in its slot but is skipped (and reclaimed) when the slot drains.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/time.h"

namespace bsub::net {

class TimerWheel {
 public:
  using TimerId = std::uint64_t;
  using Callback = std::function<void()>;

  static constexpr TimerId kInvalidTimer = 0;

  explicit TimerWheel(util::Time start = 0);

  /// Schedules `cb` to fire when the wheel advances to `deadline` (or later;
  /// a deadline at or before the current instant fires on the next advance).
  TimerId schedule(util::Time deadline, Callback cb);

  /// Cancels a pending timer. Returns false if the id already fired, was
  /// already cancelled, or never existed.
  bool cancel(TimerId id);

  /// Earliest pending deadline, or util::kTimeMax when no timer is pending.
  /// (May be conservative by at most one slot-drain for cancelled timers.)
  util::Time next_deadline() const;

  /// Moves the wheel's notion of "now" to `now` (monotonic; earlier values
  /// are ignored) and fires every timer with deadline <= now, ordered by
  /// (deadline, schedule order). Returns the number of timers fired.
  /// Callbacks may schedule() and cancel() freely; timers scheduled during
  /// the advance with deadlines <= now fire within the same call.
  std::size_t advance(util::Time now);

  std::size_t pending() const { return live_; }
  util::Time now() const { return now_; }

 private:
  static constexpr unsigned kLevels = 4;
  static constexpr unsigned kSlotBits = 6;  // 64 slots per level
  static constexpr std::uint64_t kSlots = 1u << kSlotBits;

  struct Entry {
    TimerId id;
    util::Time deadline;
  };

  /// Level whose slot granularity can still distinguish the delay, i.e. the
  /// slot this deadline belongs to given the current wheel time.
  unsigned level_for(util::Time deadline) const;
  void place(Entry entry);
  /// Drains one slot (or the overflow), re-placing or collecting due timers.
  void drain(std::vector<Entry>& slot, util::Time now,
             std::vector<Entry>& due);

  struct HeapGreater {
    bool operator()(const std::pair<util::Time, TimerId>& a,
                    const std::pair<util::Time, TimerId>& b) const {
      return a > b;  // min-heap by (deadline, id)
    }
  };

  util::Time now_;
  std::vector<Entry> slots_[kLevels][kSlots];
  std::vector<Entry> overflow_;  ///< deadlines beyond the top level horizon
  std::unordered_map<TimerId, Callback> callbacks_;  ///< live timers only
  /// Min-heap over (deadline, id) pairs of every schedule() not yet known
  /// dead; next_deadline() lazily pops fired/cancelled ids.
  mutable std::vector<std::pair<util::Time, TimerId>> heap_;
  TimerId next_id_ = 1;
  std::size_t live_ = 0;
};

}  // namespace bsub::net
