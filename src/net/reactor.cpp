#include "net/reactor.h"

#include <poll.h>

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <cstdlib>
#include <stdexcept>
#include <string>

#if defined(__linux__)
#include <sys/epoll.h>
#include <unistd.h>
#define BSUB_HAVE_EPOLL 1
#else
#define BSUB_HAVE_EPOLL 0
#endif

namespace bsub::net {

namespace {

/// poll(2) backend: dense pollfd array plus an fd -> slot index so add and
/// remove are O(1) (remove swap-erases the tail slot into the hole). The
/// wait itself stays O(registered fds) — that is poll's contract and the
/// reason the fleet prefers epoll.
class PollBackend final : public detail::FdBackend {
 public:
  void add(int fd) override {
    if (index_.contains(fd)) return;
    index_.emplace(fd, pfds_.size());
    pfds_.push_back(pollfd{fd, POLLIN, 0});
  }

  void remove(int fd) override {
    auto it = index_.find(fd);
    if (it == index_.end()) return;
    const std::size_t slot = it->second;
    index_.erase(it);
    const std::size_t last = pfds_.size() - 1;
    if (slot != last) {
      pfds_[slot] = pfds_[last];
      index_[pfds_[slot].fd] = slot;
    }
    pfds_.pop_back();
  }

  std::size_t size() const override { return pfds_.size(); }

  void wait(int timeout_ms, std::vector<int>& ready) override {
    ready.clear();
    for (pollfd& p : pfds_) p.revents = 0;
    const int n = ::poll(pfds_.empty() ? nullptr : pfds_.data(),
                         static_cast<nfds_t>(pfds_.size()), timeout_ms);
    if (n <= 0) return;  // timeout, or EINTR/transient error == nothing ready
    for (const pollfd& p : pfds_) {
      if (p.revents & (POLLIN | POLLERR | POLLHUP)) ready.push_back(p.fd);
    }
  }

 private:
  std::vector<pollfd> pfds_;
  std::unordered_map<int, std::size_t> index_;
};

#if BSUB_HAVE_EPOLL

/// epoll(7) backend: the kernel owns the interest set (epoll_ctl is O(1)),
/// and epoll_wait returns only the ready fds, so a 10k-socket fleet shard
/// pays for the datagrams that arrived, not the sockets that exist.
class EpollBackend final : public detail::FdBackend {
 public:
  EpollBackend() : epfd_(::epoll_create1(EPOLL_CLOEXEC)) {
    if (epfd_ < 0) {
      throw std::runtime_error("epoll_create1 failed: errno " +
                               std::to_string(errno));
    }
  }

  ~EpollBackend() override { ::close(epfd_); }

  void add(int fd) override {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) == 0) {
      ++size_;
      return;
    }
    if (errno == EEXIST) return;  // re-registration replaces the handler only
    throw std::runtime_error("epoll_ctl(ADD) failed: errno " +
                             std::to_string(errno));
  }

  void remove(int fd) override {
    if (::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr) == 0) --size_;
    // ENOENT (never registered) and EBADF (caller closed the fd first, which
    // auto-deregisters it) are both fine for an idempotent remove.
  }

  std::size_t size() const override { return size_; }

  void wait(int timeout_ms, std::vector<int>& ready) override {
    ready.clear();
    if (events_.size() < std::max<std::size_t>(size_, 1)) {
      events_.resize(std::max<std::size_t>(size_, 64));
    }
    const int n = ::epoll_wait(epfd_, events_.data(),
                               static_cast<int>(events_.size()), timeout_ms);
    if (n <= 0) return;  // timeout, or EINTR == nothing ready
    for (int i = 0; i < n; ++i) ready.push_back(events_[i].data.fd);
  }

 private:
  int epfd_;
  std::size_t size_ = 0;
  std::vector<epoll_event> events_;
};

#endif  // BSUB_HAVE_EPOLL

std::unique_ptr<detail::FdBackend> make_backend(ReactorBackend backend) {
  switch (backend) {
    case ReactorBackend::kPoll:
      return std::make_unique<PollBackend>();
    case ReactorBackend::kEpoll:
#if BSUB_HAVE_EPOLL
      return std::make_unique<EpollBackend>();
#else
      throw std::runtime_error("epoll reactor backend unavailable here");
#endif
    case ReactorBackend::kAuto:
      break;
  }
  return make_backend(default_reactor_backend());
}

}  // namespace

bool reactor_backend_available(ReactorBackend backend) {
  switch (backend) {
    case ReactorBackend::kAuto:
    case ReactorBackend::kPoll:
      return true;
    case ReactorBackend::kEpoll:
      return BSUB_HAVE_EPOLL != 0;
  }
  return false;
}

std::string_view reactor_backend_name(ReactorBackend backend) {
  switch (backend) {
    case ReactorBackend::kAuto:
      return "auto";
    case ReactorBackend::kPoll:
      return "poll";
    case ReactorBackend::kEpoll:
      return "epoll";
  }
  return "?";
}

std::optional<ReactorBackend> parse_reactor_backend(std::string_view name) {
  if (name == "auto") return ReactorBackend::kAuto;
  if (name == "poll") return ReactorBackend::kPoll;
  if (name == "epoll") return ReactorBackend::kEpoll;
  return std::nullopt;
}

ReactorBackend default_reactor_backend() {
  if (const char* env = std::getenv("BSUB_REACTOR")) {
    const auto parsed = parse_reactor_backend(env);
    if (parsed && *parsed != ReactorBackend::kAuto &&
        reactor_backend_available(*parsed)) {
      return *parsed;
    }
  }
#if BSUB_HAVE_EPOLL
  return ReactorBackend::kEpoll;
#else
  return ReactorBackend::kPoll;
#endif
}

Reactor::Reactor(Clock& clock, ReactorBackend backend)
    : clock_(clock),
      wheel_(clock.now()),
      backend_(backend == ReactorBackend::kAuto ? default_reactor_backend()
                                                : backend),
      fds_(make_backend(backend_)) {}

Reactor::~Reactor() = default;

Reactor::TimerId Reactor::schedule_at(util::Time deadline,
                                      TimerWheel::Callback cb) {
  return wheel_.schedule(deadline, std::move(cb));
}

Reactor::TimerId Reactor::schedule_after(util::Time delay,
                                         TimerWheel::Callback cb) {
  return wheel_.schedule(clock_.now() + std::max<util::Time>(delay, 0),
                         std::move(cb));
}

bool Reactor::cancel(TimerId id) { return wheel_.cancel(id); }

void Reactor::add_fd(int fd, std::function<void()> on_readable) {
  handlers_[fd] = FdHandler{std::move(on_readable)};
  fds_->add(fd);
}

void Reactor::remove_fd(int fd) {
  if (handlers_.erase(fd) == 0) return;
  fds_->remove(fd);
}

void Reactor::advance_to(ManualClock& clock, util::Time t) {
  assert(&clock == &clock_);
  // Step deadline by deadline so every timer fires with the clock reading
  // exactly its own deadline — the property the deterministic differential
  // tests rely on.
  while (true) {
    const util::Time d = wheel_.next_deadline();
    if (d > t) break;
    clock.set(d);
    wheel_.advance(d);
  }
  clock.set(t);
  wheel_.advance(t);
}

void Reactor::rebase(util::Time t) {
  assert(wheel_.pending() == 0 &&
         "rebase with pending timers would silently drop them");
  wheel_ = TimerWheel(t);
}

bool Reactor::run_once(util::Time max_wait) {
  if (stopped_) return false;
  util::Time wait = max_wait;
  const util::Time next = wheel_.next_deadline();
  if (next != util::kTimeMax) {
    // Round the sleep up by one tick: the ms clock floors, so sleeping
    // exactly (next - now) can wake with the clock still reading one ms
    // before the deadline and busy-spin. One extra ms guarantees progress;
    // the subsequent advance() fires everything due.
    const util::Time until =
        std::max<util::Time>(next - clock_.now(), 0) + util::kMillisecond;
    wait = (wait < 0) ? until : std::min(wait, until);
  } else if (wait < 0) {
    wait = 100 * util::kMillisecond;  // no deadline: wake up periodically
  }

  const int timeout_ms =
      static_cast<int>(std::min<util::Time>(wait, 60 * util::kSecond));
  fds_->wait(timeout_ms, ready_scratch_);
  for (const int fd : ready_scratch_) {
    // Look the handler up fresh (a prior callback may have removed this fd)
    // and copy it out (the callback may remove/replace itself).
    auto it = handlers_.find(fd);
    if (it == handlers_.end()) continue;
    auto cb = it->second.on_readable;
    cb();
  }
  wheel_.advance(clock_.now());
  return !stopped_;
}

void Reactor::run() {
  while (run_once()) {
  }
}

}  // namespace bsub::net
