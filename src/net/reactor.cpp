#include "net/reactor.h"

#include <poll.h>

#include <algorithm>
#include <cassert>

namespace bsub::net {

Reactor::Reactor(Clock& clock) : clock_(clock), wheel_(clock.now()) {}

Reactor::TimerId Reactor::schedule_at(util::Time deadline,
                                      TimerWheel::Callback cb) {
  return wheel_.schedule(deadline, std::move(cb));
}

Reactor::TimerId Reactor::schedule_after(util::Time delay,
                                         TimerWheel::Callback cb) {
  return wheel_.schedule(clock_.now() + std::max<util::Time>(delay, 0),
                         std::move(cb));
}

bool Reactor::cancel(TimerId id) { return wheel_.cancel(id); }

void Reactor::add_fd(int fd, std::function<void()> on_readable) {
  fds_.push_back(FdEntry{fd, std::move(on_readable)});
}

void Reactor::remove_fd(int fd) {
  std::erase_if(fds_, [fd](const FdEntry& e) { return e.fd == fd; });
}

void Reactor::advance_to(ManualClock& clock, util::Time t) {
  assert(&clock == &clock_);
  // Step deadline by deadline so every timer fires with the clock reading
  // exactly its own deadline — the property the deterministic differential
  // tests rely on.
  while (true) {
    const util::Time d = wheel_.next_deadline();
    if (d > t) break;
    clock.set(d);
    wheel_.advance(d);
  }
  clock.set(t);
  wheel_.advance(t);
}

bool Reactor::run_once(util::Time max_wait) {
  if (stopped_) return false;
  util::Time wait = max_wait;
  const util::Time next = wheel_.next_deadline();
  if (next != util::kTimeMax) {
    const util::Time until = std::max<util::Time>(next - clock_.now(), 0);
    wait = (wait < 0) ? until : std::min(wait, until);
  } else if (wait < 0) {
    wait = 100 * util::kMillisecond;  // no deadline: wake up periodically
  }

  std::vector<pollfd> pfds;
  pfds.reserve(fds_.size());
  for (const FdEntry& e : fds_) {
    pfds.push_back(pollfd{e.fd, POLLIN, 0});
  }
  const int timeout_ms =
      static_cast<int>(std::min<util::Time>(wait, 60 * util::kSecond));
  const int ready =
      ::poll(pfds.empty() ? nullptr : pfds.data(),
             static_cast<nfds_t>(pfds.size()), timeout_ms);
  if (ready > 0) {
    // Snapshot the callbacks: a handler may add/remove fds underneath us.
    std::vector<std::function<void()>> to_run;
    for (std::size_t i = 0; i < pfds.size(); ++i) {
      if (pfds[i].revents & (POLLIN | POLLERR | POLLHUP)) {
        to_run.push_back(fds_[i].on_readable);
      }
    }
    for (auto& cb : to_run) cb();
  }
  wheel_.advance(clock_.now());
  return !stopped_;
}

void Reactor::run() {
  while (run_once()) {
  }
}

}  // namespace bsub::net
