// Contact session: reliable, in-order delivery of B-SUB wire frames to one
// peer over an unreliable datagram transport.
//
// This is the live-network incarnation of one trace contact. The B-SUB
// encounter protocol itself (HELLO / filter exchange / message transfer)
// lives in engine::BsubNode; the session's job is to carry those frames
// across a lossy, MTU-bounded link so the node sees exactly the frame
// stream it would have seen on the in-memory harness.
//
// State machine:
//
//            offer()/on_datagram(DATA|ACK)
//   kOpening ───────────────────────────────► kEstablished
//      │  local hello queued;    first valid      │
//      │  RTO retransmits it     peer datagram    │
//      │                                          │
//      │ close()                        close()   │      FIN_ACK / FIN
//      ├──────────────► kClosing ◄────────────────┘   ┌───────────────┐
//      │                   │  FIN sent, RTO-retried   │               │
//      │                   └──────────────────────────┴──► kClosed ◄──┘
//      │   retries exhausted (peer lost) / abort()         ▲
//      └───────────────────────────────────────────────────┘
//
// Reliability: every offered frame gets a session sequence number, is
// fragmented to the MTU (net/fragment.h) and kept until cumulatively
// acked. A single retransmit timer guards the oldest unacked frame with
// exponential backoff (rto_initial, ×rto_backoff, capped at rto_max);
// max_retries consecutive unanswered timeouts declare the peer lost and
// tear the session down. The receive side reassembles fragments, holds
// out-of-order frames, and releases them strictly in sequence order.
//
// Epochs: each side stamps datagrams with its session incarnation; a
// receiver drops datagrams from older incarnations and resets its receive
// state when the peer's epoch moves forward (stale-retransmit hygiene for
// repeated contacts between the same pair).
//
// Budget: an optional shared sim::Link charges each offered frame's wire
// size once — the same accounting the in-memory Network harness applies —
// so a budget-limited loopback contact drops exactly the frames the
// harness would drop. Retransmits and datagram overhead are not charged;
// they show up in TransportStats instead.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "metrics/collector.h"
#include "net/fragment.h"
#include "net/reactor.h"
#include "net/transport.h"
#include "sim/link.h"
#include "util/time.h"

namespace bsub::net {

struct SessionConfig {
  std::size_t mtu = 1400;  ///< datagram size frames are fragmented to
  util::Time rto_initial = 200 * util::kMillisecond;
  double rto_backoff = 2.0;
  util::Time rto_max = 8 * util::kSecond;
  /// Consecutive unanswered retransmits before the peer is declared lost.
  std::uint32_t max_retries = 6;
  /// Caps on hostile/degenerate receive state per session.
  std::size_t max_partial_frames = 64;
  std::size_t max_out_of_order = 256;
};

enum class SessionState : std::uint8_t {
  kOpening,
  kEstablished,
  kClosing,
  kClosed,
};

enum class SessionCloseReason : std::uint8_t {
  kNone,
  kLocalClose,  ///< our close() completed (FIN acked)
  kPeerClose,   ///< peer sent FIN
  kPeerLost,    ///< retries exhausted (or local abort)
};

class Session {
 public:
  /// Receives each reassembled frame, in sequence order.
  using FrameHandler = std::function<void(std::span<const std::uint8_t>)>;
  using ClosedHandler = std::function<void(SessionCloseReason)>;

  Session(Endpoint peer, std::uint32_t local_epoch, SessionConfig config,
          Transport& transport, Reactor& reactor,
          metrics::TransportCounters& counters);
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  Endpoint peer() const { return peer_; }
  SessionState state() const { return state_; }
  SessionCloseReason close_reason() const { return reason_; }
  std::uint32_t local_epoch() const { return local_epoch_; }

  void set_frame_handler(FrameHandler handler) {
    on_frame_ = std::move(handler);
  }
  void set_closed_handler(ClosedHandler handler) {
    on_closed_ = std::move(handler);
  }
  void set_budget(std::shared_ptr<sim::Link> budget) {
    budget_ = std::move(budget);
  }

  /// Queues one wire frame for reliable in-order delivery. Returns false
  /// when the frame is dropped: budget exhausted, or session past kClosing.
  bool offer(std::span<const std::uint8_t> frame);

  /// Feeds one raw datagram from the transport. Malformed, stale, or
  /// ill-fitting input is counted and dropped — never thrown.
  void on_datagram(std::span<const std::uint8_t> bytes);

  /// Graceful teardown: sends FIN (RTO-retried) and waits for FIN_ACK.
  void close();

  /// Immediate local teardown: no datagrams, close handler fires once.
  void abort(SessionCloseReason reason);

  /// True when nothing is pending in either direction (all sent frames
  /// acked, no partial or held-back received frames).
  bool idle() const {
    return unacked_.empty() && partials_.empty() && ready_.empty();
  }
  std::size_t unacked_frames() const { return unacked_.size(); }
  std::uint64_t retransmits() const { return retransmits_; }

 private:
  struct SendEntry {
    std::uint64_t seq;
    std::vector<std::uint8_t> frame;
  };

  void send_fragments(const SendEntry& entry, bool retransmit);
  void send_raw(const std::vector<std::uint8_t>& datagram);
  void arm_rto();
  void disarm_rto();
  void on_rto();
  void on_data(const DatagramView& view);
  void on_ack(const DatagramView& view);
  void deliver_ready();
  void enter_closed(SessionCloseReason reason);

  Endpoint peer_;
  SessionConfig config_;
  Transport& transport_;
  Reactor& reactor_;
  metrics::TransportCounters& counters_;
  std::uint32_t local_epoch_;
  std::uint32_t peer_epoch_ = 0;  ///< 0 = not yet learned

  SessionState state_ = SessionState::kOpening;
  SessionCloseReason reason_ = SessionCloseReason::kNone;
  FrameHandler on_frame_;
  ClosedHandler on_closed_;
  std::shared_ptr<sim::Link> budget_;

  // Send side.
  std::uint64_t next_send_seq_ = 0;
  std::deque<SendEntry> unacked_;
  Reactor::TimerId rto_timer_ = TimerWheel::kInvalidTimer;
  util::Time rto_current_;
  std::uint32_t retries_ = 0;
  std::uint64_t retransmits_ = 0;
  std::vector<std::vector<std::uint8_t>> fragment_scratch_;

  // Receive side.
  std::uint64_t next_recv_seq_ = 0;
  std::map<std::uint64_t, FragmentBuffer> partials_;
  std::map<std::uint64_t, std::vector<std::uint8_t>> ready_;
};

}  // namespace bsub::net
