// Event loop for the live runtime: fd readiness + deadlines.
//
// One reactor drives everything a node endpoint does: socket readiness
// (over registered fds) and deadlines (a hierarchical TimerWheel —
// retransmits, session teardown, TCBF decay ticks). Two driving modes share
// the same registration API:
//
//   real time   run()/run_once() wait on the fds with a timeout bounded by
//               the next timer deadline, then fire due timers. Used by the
//               bsub_node daemon, the fleet shards, and the UDP transports
//               (SteadyClock).
//   virtual time advance_to(t) moves a ManualClock through every timer
//               deadline up to t in deterministic order without ever
//               blocking. Used by the loopback tests, the contact
//               orchestrator, and the fleet's loopback lanes; fds are not
//               polled (loopback has none).
//
// Readiness backends, selected at construction (like the TCBF kernels are
// selected at dispatch):
//
//   kPoll   poll(2) over a dense pollfd array — portable, O(registered fds)
//           per wait. The right choice for a handful of sockets.
//   kEpoll  epoll(7) — Linux only, O(ready fds) per wait, which is what
//           lets one reactor thread multiplex thousands of fleet node
//           sockets without rescanning the registration table every tick.
//
// kAuto resolves to epoll where available (overridable with the
// BSUB_REACTOR environment variable: poll | epoll | auto). Registration is
// O(1) for both backends (poll keeps an fd -> slot index map over a
// swap-erased array; epoll delegates to epoll_ctl), and waits are
// EINTR-safe: a signal landing mid-wait is treated as a zero-ready wakeup,
// never surfaced as an error.
//
// The reactor is single-threaded by design: every callback runs on the
// loop, so sessions and nodes need no locks.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "net/clock.h"
#include "net/timer_wheel.h"
#include "util/time.h"

namespace bsub::net {

enum class ReactorBackend : std::uint8_t {
  kAuto = 0,
  kPoll = 1,
  kEpoll = 2,
};

/// True when `backend` can be constructed on this platform (kPoll always;
/// kEpoll on Linux; kAuto always — it resolves to something available).
bool reactor_backend_available(ReactorBackend backend);

std::string_view reactor_backend_name(ReactorBackend backend);

/// Parses "poll" | "epoll" | "auto" (case-sensitive, like kernel names);
/// nullopt otherwise.
std::optional<ReactorBackend> parse_reactor_backend(std::string_view name);

/// What kAuto resolves to on this platform/environment: the BSUB_REACTOR
/// environment variable if set to a valid, available backend, else epoll
/// where available, else poll.
ReactorBackend default_reactor_backend();

namespace detail {

/// One readiness backend: the fd set and the wait primitive. Registration
/// must be O(1); wait() must treat EINTR as "zero fds ready" and report the
/// ready fds through `ready` (cleared first).
class FdBackend {
 public:
  virtual ~FdBackend() = default;
  virtual void add(int fd) = 0;
  virtual void remove(int fd) = 0;
  virtual std::size_t size() const = 0;
  virtual void wait(int timeout_ms, std::vector<int>& ready) = 0;
};

}  // namespace detail

class Reactor {
 public:
  using TimerId = TimerWheel::TimerId;

  /// `backend` kAuto defers to default_reactor_backend(). Throws
  /// std::runtime_error when an explicitly requested backend cannot be
  /// constructed (epoll on a non-Linux platform).
  explicit Reactor(Clock& clock,
                   ReactorBackend backend = ReactorBackend::kAuto);
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  Clock& clock() { return clock_; }
  util::Time now() const { return clock_.now(); }

  /// The resolved backend (never kAuto).
  ReactorBackend backend() const { return backend_; }

  /// Schedules `cb` at an absolute instant / after a delay from now.
  TimerId schedule_at(util::Time deadline, TimerWheel::Callback cb);
  TimerId schedule_after(util::Time delay, TimerWheel::Callback cb);
  bool cancel(TimerId id);

  util::Time next_deadline() const { return wheel_.next_deadline(); }
  std::size_t pending_timers() const { return wheel_.pending(); }

  /// Registers `fd` for readability callbacks (real-time mode). The fd must
  /// stay valid until remove_fd(). Registering an already-registered fd
  /// replaces its callback. O(1).
  void add_fd(int fd, std::function<void()> on_readable);
  /// Unregisters `fd`; no-op when it was never registered. O(1).
  void remove_fd(int fd);
  std::size_t fd_count() const { return handlers_.size(); }

  /// Fires every timer due at the clock's current instant. Returns count.
  std::size_t fire_due() { return wheel_.advance(clock_.now()); }

  /// Virtual-time driving (ManualClock): steps the clock through each due
  /// deadline in order up to `t`, firing timers as it goes, and leaves the
  /// clock at `t`. Requires the clock passed at construction to be the same
  /// ManualClock.
  void advance_to(ManualClock& clock, util::Time t);

  /// Rewinds the timer wheel to `t` for reuse by a new virtual-time episode
  /// (the fleet's loopback lanes execute node-disjoint contacts out of
  /// global time order, one rebased episode per contact). Requires no
  /// pending timers — everything from the previous episode must have fired
  /// or been cancelled.
  void rebase(util::Time t);

  /// Real-time driving: waits until a registered fd is readable or the next
  /// timer is due, capped at `max_wait`; dispatches both. A signal
  /// interrupting the wait counts as a timeout, not an error. Returns false
  /// only on stop(). `max_wait < 0` means "until the next deadline".
  bool run_once(util::Time max_wait = 100 * util::kMillisecond);

  /// Loops run_once() until stop() is called (from a callback or a signal
  /// handler flag checked by the caller between iterations).
  void run();
  void stop() { stopped_ = true; }
  bool stopped() const { return stopped_; }

 private:
  struct FdHandler {
    std::function<void()> on_readable;
  };

  Clock& clock_;
  TimerWheel wheel_;
  ReactorBackend backend_;
  std::unique_ptr<detail::FdBackend> fds_;
  /// fd -> callback; the backend only tracks readiness membership.
  std::unordered_map<int, FdHandler> handlers_;
  std::vector<int> ready_scratch_;
  bool stopped_ = false;
};

}  // namespace bsub::net
