// Poll-based event loop for the live runtime.
//
// One reactor drives everything a node endpoint does: socket readiness
// (poll(2) over registered fds) and deadlines (a hierarchical TimerWheel —
// retransmits, session teardown, TCBF decay ticks). Two driving modes share
// the same registration API:
//
//   real time   run()/run_once() poll the fds with a timeout bounded by the
//               next timer deadline, then fire due timers. Used by the
//               bsub_node daemon and the UDP transport (SteadyClock).
//   virtual time advance_to(t) moves a ManualClock through every timer
//               deadline up to t in deterministic order without ever
//               blocking. Used by the loopback tests and the contact
//               orchestrator; fds are not polled (loopback has none).
//
// The reactor is single-threaded by design: every callback runs on the
// loop, so sessions and nodes need no locks.
#pragma once

#include <functional>
#include <vector>

#include "net/clock.h"
#include "net/timer_wheel.h"
#include "util/time.h"

namespace bsub::net {

class Reactor {
 public:
  using TimerId = TimerWheel::TimerId;

  explicit Reactor(Clock& clock);

  Clock& clock() { return clock_; }
  util::Time now() const { return clock_.now(); }

  /// Schedules `cb` at an absolute instant / after a delay from now.
  TimerId schedule_at(util::Time deadline, TimerWheel::Callback cb);
  TimerId schedule_after(util::Time delay, TimerWheel::Callback cb);
  bool cancel(TimerId id);

  util::Time next_deadline() const { return wheel_.next_deadline(); }
  std::size_t pending_timers() const { return wheel_.pending(); }

  /// Registers `fd` for readability callbacks (real-time mode). The fd must
  /// stay valid until remove_fd().
  void add_fd(int fd, std::function<void()> on_readable);
  void remove_fd(int fd);

  /// Fires every timer due at the clock's current instant. Returns count.
  std::size_t fire_due() { return wheel_.advance(clock_.now()); }

  /// Virtual-time driving (ManualClock): steps the clock through each due
  /// deadline in order up to `t`, firing timers as it goes, and leaves the
  /// clock at `t`. Requires the clock passed at construction to be the same
  /// ManualClock.
  void advance_to(ManualClock& clock, util::Time t);

  /// Real-time driving: waits (poll) until a registered fd is readable or
  /// the next timer is due, capped at `max_wait`; dispatches both. Returns
  /// false only on stop(). `max_wait < 0` means "until the next deadline".
  bool run_once(util::Time max_wait = 100 * util::kMillisecond);

  /// Loops run_once() until stop() is called (from a callback or a signal
  /// handler flag checked by the caller between iterations).
  void run();
  void stop() { stopped_ = true; }
  bool stopped() const { return stopped_; }

 private:
  Clock& clock_;
  TimerWheel wheel_;
  struct FdEntry {
    int fd;
    std::function<void()> on_readable;
  };
  std::vector<FdEntry> fds_;
  bool stopped_ = false;
};

}  // namespace bsub::net
