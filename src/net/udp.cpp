#include "net/udp.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>

namespace bsub::net {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::runtime_error(std::string("UdpTransport: ") + what + ": " +
                           std::strerror(errno));
}

}  // namespace

UdpTransport::UdpTransport(Reactor& reactor, Endpoint bind_endpoint)
    : UdpTransport(reactor, bind_endpoint, Config{}) {}

UdpTransport::UdpTransport(Reactor& reactor, Endpoint bind_endpoint,
                           Config config)
    : reactor_(reactor), config_(config) {
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) throw_errno("socket");

  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK) < 0) {
    const int saved = errno;
    ::close(fd_);
    errno = saved;
    throw_errno("fcntl(O_NONBLOCK)");
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(endpoint_ipv4(bind_endpoint));
  addr.sin_port = htons(endpoint_port(bind_endpoint));
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int saved = errno;
    ::close(fd_);
    errno = saved;
    throw_errno("bind");
  }

  // Learn the actual binding (port 0 -> kernel-assigned ephemeral port).
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    const int saved = errno;
    ::close(fd_);
    errno = saved;
    throw_errno("getsockname");
  }
  local_ = make_udp_endpoint(ntohl(bound.sin_addr.s_addr),
                             ntohs(bound.sin_port));

  recv_buffer_.resize(config_.mtu + 1);  // +1 detects oversized datagrams
  reactor_.add_fd(fd_, [this] { on_readable(); });
}

UdpTransport::~UdpTransport() {
  if (fd_ >= 0) {
    reactor_.remove_fd(fd_);
    ::close(fd_);
  }
}

bool UdpTransport::send(Endpoint to, std::span<const std::uint8_t> datagram) {
  if (datagram.size() > config_.mtu) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(endpoint_ipv4(to));
  addr.sin_port = htons(endpoint_port(to));
  const ssize_t n =
      ::sendto(fd_, datagram.data(), datagram.size(), 0,
               reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  return n == static_cast<ssize_t>(datagram.size());
}

void UdpTransport::on_readable() {
  for (;;) {
    sockaddr_in from{};
    socklen_t len = sizeof(from);
    const ssize_t n =
        ::recvfrom(fd_, recv_buffer_.data(), recv_buffer_.size(), 0,
                   reinterpret_cast<sockaddr*>(&from), &len);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      return;  // transient socket error; the next poll round retries
    }
    if (n == 0 || static_cast<std::size_t>(n) > config_.mtu) continue;
    if (!handler_) continue;
    const Endpoint peer = make_udp_endpoint(ntohl(from.sin_addr.s_addr),
                                            ntohs(from.sin_port));
    handler_(peer,
             std::span<const std::uint8_t>(recv_buffer_.data(),
                                           static_cast<std::size_t>(n)));
  }
}

}  // namespace bsub::net
