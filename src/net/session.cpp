#include "net/session.h"

#include <algorithm>

#include "util/errors.h"

namespace bsub::net {

Session::Session(Endpoint peer, std::uint32_t local_epoch,
                 SessionConfig config, Transport& transport, Reactor& reactor,
                 metrics::TransportCounters& counters)
    : peer_(peer), config_(config), transport_(transport), reactor_(reactor),
      counters_(counters), local_epoch_(local_epoch),
      rto_current_(config.rto_initial) {
  ++counters_.session_opens;
}

Session::~Session() { disarm_rto(); }

void Session::send_raw(const std::vector<std::uint8_t>& datagram) {
  if (transport_.send(peer_, datagram)) {
    ++counters_.datagrams_sent;
  } else {
    ++counters_.datagrams_dropped;
  }
}

void Session::send_fragments(const SendEntry& entry, bool retransmit) {
  fragment_scratch_.clear();
  fragment_frame(local_epoch_, entry.seq, entry.frame,
                 transport_.max_datagram_bytes() < config_.mtu
                     ? transport_.max_datagram_bytes()
                     : config_.mtu,
                 fragment_scratch_);
  for (const auto& d : fragment_scratch_) send_raw(d);
  if (retransmit) ++counters_.frames_retransmitted;
}

bool Session::offer(std::span<const std::uint8_t> frame) {
  if (state_ == SessionState::kClosing || state_ == SessionState::kClosed) {
    return false;
  }
  // Contact budget: charge the frame's wire size exactly once, at offer
  // time — identical accounting (and identical charge order) to the
  // in-memory Network harness popping its FIFO.
  if (budget_ && !budget_->try_send(frame.size())) {
    ++counters_.frames_dropped;
    return false;
  }
  SendEntry entry{next_send_seq_++,
                  std::vector<std::uint8_t>(frame.begin(), frame.end())};
  ++counters_.frames_sent;
  send_fragments(entry, /*retransmit=*/false);
  unacked_.push_back(std::move(entry));
  if (rto_timer_ == TimerWheel::kInvalidTimer) arm_rto();
  return true;
}

void Session::arm_rto() {
  disarm_rto();
  rto_timer_ = reactor_.schedule_after(rto_current_, [this] {
    rto_timer_ = TimerWheel::kInvalidTimer;
    on_rto();
  });
}

void Session::disarm_rto() {
  if (rto_timer_ != TimerWheel::kInvalidTimer) {
    reactor_.cancel(rto_timer_);
    rto_timer_ = TimerWheel::kInvalidTimer;
  }
}

void Session::on_rto() {
  if (state_ == SessionState::kClosed) return;
  ++retries_;
  if (retries_ > config_.max_retries) {
    // The peer stopped answering: walked away mid-contact, or never was
    // there. Either way the contact is over.
    ++counters_.session_timeouts;
    enter_closed(SessionCloseReason::kPeerLost);
    return;
  }
  if (state_ == SessionState::kClosing) {
    send_raw(encode_fin(local_epoch_, /*is_ack=*/false));
  } else if (!unacked_.empty()) {
    // Stop-and-repair: resend the oldest unacked frame; the cumulative ack
    // it unblocks re-opens the pipeline.
    ++retransmits_;
    send_fragments(unacked_.front(), /*retransmit=*/true);
  } else {
    // Nothing outstanding after all (acked while the timer was in flight).
    retries_ = 0;
    rto_current_ = config_.rto_initial;
    return;
  }
  rto_current_ = std::min<util::Time>(
      static_cast<util::Time>(static_cast<double>(rto_current_) *
                              config_.rto_backoff),
      config_.rto_max);
  arm_rto();
}

void Session::on_datagram(std::span<const std::uint8_t> bytes) {
  ++counters_.datagrams_received;
  if (state_ == SessionState::kClosed) {
    ++counters_.datagrams_dropped;
    return;
  }
  DatagramView view;
  try {
    view = parse_datagram(bytes);
  } catch (const util::CodecError&) {
    ++counters_.datagrams_dropped;
    return;
  }

  // Epoch hygiene: learn the peer's incarnation on first contact, drop
  // anything older, reset receive state when it moves forward.
  if (peer_epoch_ == 0) {
    peer_epoch_ = view.epoch;
  } else if (view.epoch < peer_epoch_) {
    ++counters_.datagrams_dropped;
    return;
  } else if (view.epoch > peer_epoch_) {
    peer_epoch_ = view.epoch;
    partials_.clear();
    ready_.clear();
    next_recv_seq_ = 0;
  }

  if (state_ == SessionState::kOpening) state_ = SessionState::kEstablished;

  switch (view.kind) {
    case DatagramKind::kData:
      on_data(view);
      break;
    case DatagramKind::kAck:
      on_ack(view);
      break;
    case DatagramKind::kFin:
      send_raw(encode_fin(local_epoch_, /*is_ack=*/true));
      enter_closed(SessionCloseReason::kPeerClose);
      break;
    case DatagramKind::kFinAck:
      if (state_ == SessionState::kClosing) {
        enter_closed(SessionCloseReason::kLocalClose);
      }
      break;
  }
}

void Session::on_data(const DatagramView& view) {
  if (view.seq < next_recv_seq_) {
    // Duplicate of an already-delivered frame (our ack was lost): re-ack.
    send_raw(encode_ack(local_epoch_, next_recv_seq_));
    return;
  }
  if (ready_.contains(view.seq)) {
    send_raw(encode_ack(local_epoch_, next_recv_seq_));
    return;  // complete but held for ordering; nothing to add
  }
  auto it = partials_.find(view.seq);
  if (it == partials_.end()) {
    if (partials_.size() >= config_.max_partial_frames ||
        ready_.size() >= config_.max_out_of_order) {
      ++counters_.datagrams_dropped;  // hostile/degenerate backlog
      return;
    }
    it = partials_.emplace(view.seq, FragmentBuffer{}).first;
  }
  switch (it->second.add(view)) {
    case FragmentBuffer::Add::kComplete:
      ready_.emplace(view.seq, std::move(it->second).take());
      partials_.erase(it);
      deliver_ready();
      break;
    case FragmentBuffer::Add::kIncomplete:
    case FragmentBuffer::Add::kDuplicate:
      break;
    case FragmentBuffer::Add::kMismatch:
      ++counters_.reassembly_failures;
      ++counters_.datagrams_dropped;
      break;
  }
  if (state_ == SessionState::kClosed) return;  // a frame handler closed us
  send_raw(encode_ack(local_epoch_, next_recv_seq_));
}

void Session::deliver_ready() {
  // Release strictly in sequence order so the node sees the exact frame
  // stream the sender's protocol logic produced.
  for (auto it = ready_.find(next_recv_seq_); it != ready_.end();
       it = ready_.find(next_recv_seq_)) {
    std::vector<std::uint8_t> frame = std::move(it->second);
    ready_.erase(it);
    ++next_recv_seq_;
    ++counters_.frames_received;
    if (on_frame_) on_frame_(frame);
    if (state_ == SessionState::kClosed) return;  // handler closed us
  }
}

void Session::on_ack(const DatagramView& view) {
  bool advanced = false;
  while (!unacked_.empty() && unacked_.front().seq < view.ack_next) {
    unacked_.pop_front();
    advanced = true;
  }
  if (!advanced) return;
  retries_ = 0;
  rto_current_ = config_.rto_initial;
  if (unacked_.empty()) {
    disarm_rto();
  } else {
    arm_rto();
  }
}

void Session::close() {
  if (state_ == SessionState::kClosing || state_ == SessionState::kClosed) {
    return;
  }
  state_ = SessionState::kClosing;
  // The contact is over: pending retransmissions would only prolong the
  // goodbye, so the FIN takes over the retry budget.
  unacked_.clear();
  retries_ = 0;
  rto_current_ = config_.rto_initial;
  send_raw(encode_fin(local_epoch_, /*is_ack=*/false));
  arm_rto();
}

void Session::abort(SessionCloseReason reason) {
  if (state_ == SessionState::kClosed) return;
  enter_closed(reason);
}

void Session::enter_closed(SessionCloseReason reason) {
  disarm_rto();
  state_ = SessionState::kClosed;
  reason_ = reason;
  unacked_.clear();
  partials_.clear();
  ready_.clear();
  if (on_closed_) on_closed_(reason);
}

}  // namespace bsub::net
