#include "net/orchestrator.h"

#include <stdexcept>
#include <unordered_map>

#include "sim/event_stream.h"
#include "sim/link.h"

namespace bsub::net {

ContactOrchestrator::ContactOrchestrator(OrchestratorConfig config)
    : config_(config) {}

ContactOrchestrator::~ContactOrchestrator() = default;

const engine::BsubNode& ContactOrchestrator::node(trace::NodeId id) const {
  if (id >= runtimes_.size()) {
    throw std::out_of_range("ContactOrchestrator: unknown node");
  }
  return runtimes_[id]->node();
}

const std::vector<engine::DeliveryRecord>&
ContactOrchestrator::deliveries() const {
  flattened_.clear();
  for (const auto& log : per_node_deliveries_) {
    flattened_.insert(flattened_.end(), log.begin(), log.end());
  }
  return flattened_;
}

void ContactOrchestrator::pump(util::Time cap) {
  for (;;) {
    hub_->deliver_all();
    bool idle = true;
    for (const auto& rt : runtimes_) {
      if (!rt->all_sessions_idle()) {
        idle = false;
        break;
      }
    }
    if (idle && hub_->idle()) return;
    // Something is still in flight with nothing left to deliver: only a
    // retransmit deadline can move the contact forward. (Timers always
    // include the decay ticks, so firing may be a no-op for the contact —
    // the loop just advances to the next deadline again.)
    const util::Time next = reactor_->next_deadline();
    if (next == util::kTimeMax || next > cap) return;
    reactor_->advance_to(clock_, next);
  }
}

LiveRunResults ContactOrchestrator::run(trace::ContactStream& contacts,
                                        const workload::Workload& workload) {
  if (!runtimes_.empty()) {
    throw std::logic_error("ContactOrchestrator: run() may be called once");
  }
  const std::size_t node_count = contacts.node_count();
  reactor_ = std::make_unique<Reactor>(clock_);
  LoopbackHub::Config hub_config;
  hub_config.mtu = config_.runtime.session.mtu;
  hub_config.loss_probability = config_.loss_probability;
  hub_config.loss_seed = config_.loss_seed;
  hub_ = std::make_unique<LoopbackHub>(hub_config);

  core::BrokerElection election(node_count, config_.election);

  // Endpoints are node ids; per-node delivery logs give the same canonical
  // node-major order the engine harness reports.
  per_node_deliveries_.assign(node_count, {});
  runtimes_.reserve(node_count);
  for (trace::NodeId n = 0; n < node_count; ++n) {
    LoopbackTransport& transport = hub_->attach(n);
    runtimes_.push_back(std::make_unique<NodeRuntime>(
        n, config_.runtime, transport, *reactor_, counters_));
    engine::BsubNode& node = runtimes_.back()->node();
    for (workload::KeyId k : workload.interests_of(n)) {
      node.subscribe(workload.keys().name(k));
    }
    node.set_delivery_handler(
        [this, n](const engine::ContentMessage& msg, util::Time at) {
          per_node_deliveries_[n].push_back(
              engine::DeliveryRecord{n, msg.id, msg.key, at});
        });
  }

  const auto& messages = workload.messages();

  std::unordered_map<std::uint64_t, util::Time> created_at;
  created_at.reserve(messages.size());
  for (const workload::Message& m : messages) {
    created_at.emplace(m.id, m.created);
  }

  // Merge creations and contacts with the simulator's exact tie rule,
  // pulling one event at a time — nothing is materialized.
  sim::ScenarioEventStream events(contacts, workload);

  LiveRunResults results;
  sim::ScenarioEvent e;
  while (events.next(e)) {
    if (e.is_message) {
      const workload::Message& m = messages[e.message_index];
      reactor_->advance_to(clock_, m.created);
      engine::ContentMessage cm;
      cm.id = m.id;
      cm.key = workload.keys().name(m.key);
      cm.body.assign(m.size_bytes, 0x5A);
      cm.created = m.created;
      cm.ttl = m.ttl;
      runtimes_[m.producer]->node().publish(std::move(cm), m.created);
      continue;
    }

    const trace::Contact& c = e.contact;
    reactor_->advance_to(clock_, c.start);
    election.on_contact(c.a, c.b, c.start);
    runtimes_[c.a]->node().set_broker(election.is_broker(c.a));
    runtimes_[c.b]->node().set_broker(election.is_broker(c.b));

    // One shared byte budget per contact, charged frame-by-frame by the two
    // sessions in the same order the engine harness charges its FIFO.
    auto budget = std::make_shared<sim::Link>(
        c.duration(), config_.bandwidth_bytes_per_second);
    runtimes_[c.a]->connect(c.b, budget);
    runtimes_[c.b]->connect(c.a, budget);

    // The window's wall-clock room: lossless contacts quiesce at c.start
    // without moving the clock at all; lossy ones may burn retransmit
    // deadlines until the peers drift out of range.
    const util::Time contact_end = c.start + c.duration();
    pump(contact_end);

    // Goodbye handshake (FIN / FIN_ACK, retried like data). Whatever is
    // still alive when the window shuts is torn down as a lost peer.
    runtimes_[c.a]->close(c.b);
    runtimes_[c.b]->close(c.a);
    for (;;) {
      hub_->deliver_all();
      if (!runtimes_[c.a]->has_session(c.b) &&
          !runtimes_[c.b]->has_session(c.a)) {
        break;
      }
      const util::Time next = reactor_->next_deadline();
      if (next == util::kTimeMax || next > contact_end) {
        runtimes_[c.a]->abort(c.b);
        runtimes_[c.b]->abort(c.a);
        break;
      }
      reactor_->advance_to(clock_, next);
    }
    hub_->deliver_all();  // stray FIN_ACKs to already-gone sessions

    ++results.protocol.contacts_processed;
    results.protocol.bytes_used += budget->used_bytes();
  }

  // Frame-level tallies map 1:1 onto the harness report: every frame the
  // budget admitted was delivered in-order to the peer node, every frame it
  // refused was dropped.
  results.transport = counters_.snapshot();
  results.protocol.frames_delivered = results.transport.frames_received;
  results.protocol.frames_dropped = results.transport.frames_dropped;
  results.datagrams_lost = hub_->dropped_loss();

  const auto& delivered = deliveries();
  results.protocol.deliveries = delivered.size();
  results.protocol.expected_deliveries = workload.expected_deliveries();
  if (results.protocol.expected_deliveries > 0) {
    results.protocol.delivery_ratio =
        static_cast<double>(results.protocol.deliveries) /
        static_cast<double>(results.protocol.expected_deliveries);
  }
  double delay_sum = 0.0;
  for (const engine::DeliveryRecord& d : delivered) {
    delay_sum += util::to_minutes(d.at - created_at.at(d.message_id));
  }
  if (results.protocol.deliveries > 0) {
    results.protocol.mean_delay_minutes =
        delay_sum / static_cast<double>(results.protocol.deliveries);
  }
  return results;
}

}  // namespace bsub::net
