// Real-socket transport backend: one non-blocking IPv4/UDP socket driven by
// the reactor.
//
// The socket registers its fd with the reactor; when poll(2) reports it
// readable, every queued datagram is drained (recvfrom until EAGAIN) and
// handed to the receive handler with the sender packed as a UDP Endpoint.
// Sends are fire-and-forget sendto(2): UDP's native loss model is exactly
// the unreliability the Session layer is built to repair.
//
// Binding to port 0 picks an ephemeral port; local_endpoint() reports the
// actual binding (getsockname), which is what the daemon prints so peers
// can be pointed at it.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/reactor.h"
#include "net/transport.h"

namespace bsub::net {

class UdpTransport final : public Transport {
 public:
  struct Config {
    std::size_t mtu = 1400;  ///< max datagram bytes accepted by send()
  };

  /// Opens and binds the socket (throws std::runtime_error on socket(),
  /// bind(), or fcntl() failure — a daemon that cannot open its socket
  /// cannot run) and registers it with the reactor.
  UdpTransport(Reactor& reactor, Endpoint bind_endpoint);
  UdpTransport(Reactor& reactor, Endpoint bind_endpoint, Config config);
  ~UdpTransport() override;

  UdpTransport(const UdpTransport&) = delete;
  UdpTransport& operator=(const UdpTransport&) = delete;

  bool send(Endpoint to, std::span<const std::uint8_t> datagram) override;
  std::size_t max_datagram_bytes() const override { return config_.mtu; }
  Endpoint local_endpoint() const override { return local_; }
  void set_receive_handler(ReceiveHandler handler) override {
    handler_ = std::move(handler);
  }

  int fd() const { return fd_; }

 private:
  void on_readable();

  Reactor& reactor_;
  Config config_;
  int fd_ = -1;
  Endpoint local_ = 0;
  ReceiveHandler handler_;
  std::vector<std::uint8_t> recv_buffer_;
};

}  // namespace bsub::net
