// Contact orchestrator: replays a contact trace + workload as *real
// transport contacts* between live NodeRuntimes.
//
// This is the third substrate for the same scenario, after the
// strategy-object simulator (sim::Simulator) and the in-memory frame engine
// (engine::TraceRunner). Here every trace contact becomes an actual
// session: HELLO handshake, fragmentation to the MTU, acks, optional loss
// with retransmission — over the loopback hub in deterministic virtual
// time (tests, differential validation), with the same code paths the UDP
// daemon runs in real time.
//
// Determinism & equivalence contract (loss_probability == 0): a contact is
// pumped to quiescence at its start instant, sessions charge each protocol
// frame against the shared contact byte budget in the same order the
// engine::Network harness does, and the hub's FIFO reproduces the
// harness's alternating frame processing — so LiveRunResults.protocol is
// bit-for-bit identical to TraceRunner's TraceRunResults on the same
// scenario (the live_loopback_differential test enforces this across
// seeds). Bitwise comparison additionally requires runtime.decay_tick = 0:
// periodic ticks split each TCBF decay interval into segments, and the
// segmented floating-point sum differs in the last bits from the harness's
// single lazy decay (same protocol semantics, different counter bits).
// With loss enabled the run stays deterministic in (trace, seed) but is no
// longer comparable to the lossless harness.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/broker_allocation.h"
#include "engine/trace_runner.h"
#include "metrics/collector.h"
#include "net/clock.h"
#include "net/loopback.h"
#include "net/node_runtime.h"
#include "net/reactor.h"
#include "trace/contact_stream.h"
#include "trace/trace.h"
#include "workload/workload.h"

namespace bsub::net {

struct OrchestratorConfig {
  RuntimeConfig runtime;
  core::BrokerElection::Config election{3, 5, 5 * util::kHour};
  double bandwidth_bytes_per_second = sim::kDefaultBandwidthBytesPerSecond;
  /// Per-datagram loss on the loopback hub (0 = lossless, bit-for-bit
  /// comparable to the engine harness).
  double loss_probability = 0.0;
  std::uint64_t loss_seed = 1;
};

struct LiveRunResults {
  /// Same semantic fields as the engine substrate, for direct comparison.
  engine::TraceRunResults protocol;
  /// How the datagram layer moved those frames.
  metrics::TransportStats transport;
  std::uint64_t datagrams_lost = 0;  ///< injected loopback loss
};

class ContactOrchestrator {
 public:
  explicit ContactOrchestrator(OrchestratorConfig config = {});
  ~ContactOrchestrator();

  /// Replays a streamed scenario (contacts pulled one at a time, never
  /// materialized). The runtimes stay alive afterwards for introspection
  /// (node(), deliveries()).
  LiveRunResults run(trace::ContactStream& contacts,
                     const workload::Workload& workload);

  /// Materialized-scenario convenience: adapts the trace to a stream.
  LiveRunResults run(const trace::ContactTrace& trace,
                     const workload::Workload& workload) {
    trace::MaterializedStream stream(trace);
    return run(stream, workload);
  }

  /// Valid after run().
  const engine::BsubNode& node(trace::NodeId id) const;
  /// All consumer deliveries, node-major (per node in arrival order) —
  /// the same canonical order the engine harness reports.
  const std::vector<engine::DeliveryRecord>& deliveries() const;

 private:
  /// Drains the hub and any due retransmit deadlines up to `cap`; returns
  /// when every session is idle/closed or deadlines pass the cap.
  void pump(util::Time cap);

  OrchestratorConfig config_;
  ManualClock clock_;
  std::unique_ptr<Reactor> reactor_;
  std::unique_ptr<LoopbackHub> hub_;
  metrics::TransportCounters counters_;
  std::vector<std::unique_ptr<NodeRuntime>> runtimes_;
  std::vector<std::vector<engine::DeliveryRecord>> per_node_deliveries_;
  mutable std::vector<engine::DeliveryRecord> flattened_;
};

}  // namespace bsub::net
