// Session datagram format: MTU-aware fragmentation of wire frames.
//
// A B-SUB wire frame (engine/wire.h) can exceed a datagram MTU — a full
// TCBF encoding plus a message body easily beats 1400 bytes — so the
// session layer slices every frame into datagrams of its own, each carrying
// a small header:
//
//   u8     magic    0xB5
//   u8     version  kNetVersion (reject anything else, like the wire codec)
//   u8     kind     1=DATA 2=ACK 3=FIN 4=FIN_ACK
//   u32    epoch    session incarnation of the *sender* (stale-drop key)
//   DATA:  varint seq          frame sequence number within the session
//          varint frag_count   total fragments of this frame (>= 1)
//          varint frag_index   0-based, < frag_count
//          varint frame_len    total frame bytes (bounded)
//          varint offset       this fragment's byte offset into the frame
//          bytes  payload      the slice (to the end of the datagram)
//   ACK:   varint ack_next     cumulative: all seqs < ack_next delivered
//   FIN / FIN_ACK: empty body
//
// parse_datagram() treats input as attacker-controlled and throws
// util::CodecError on anything malformed (the session counts and drops).
// FragmentBuffer reassembles one frame from its slices, rejecting
// inconsistent duplicates and out-of-bounds writes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/errors.h"

namespace bsub::net {

inline constexpr std::uint8_t kNetMagic = 0xB5;
inline constexpr std::uint8_t kNetVersion = 1;

/// Generous ceiling on one reassembled frame: the wire codec itself caps
/// payloads at 4 MiB, plus header slack.
inline constexpr std::size_t kMaxFrameBytes = (4u << 20) + 4096;

/// Bytes of datagram headroom reserved for the DATA header (worst-case
/// varints); the fragmenter packs `mtu - kDataHeaderReserve` payload bytes
/// per datagram.
inline constexpr std::size_t kDataHeaderReserve = 56;

/// Smallest MTU the session layer accepts; below this the header reserve
/// would leave no room for payload.
inline constexpr std::size_t kMinMtu = kDataHeaderReserve + 8;

enum class DatagramKind : std::uint8_t {
  kData = 1,
  kAck = 2,
  kFin = 3,
  kFinAck = 4,
};

/// A parsed datagram; `payload` aliases the input buffer.
struct DatagramView {
  DatagramKind kind = DatagramKind::kData;
  std::uint32_t epoch = 0;
  // kData only:
  std::uint64_t seq = 0;
  std::uint64_t frag_count = 0;
  std::uint64_t frag_index = 0;
  std::uint64_t frame_len = 0;
  std::uint64_t offset = 0;
  std::span<const std::uint8_t> payload;
  // kAck only:
  std::uint64_t ack_next = 0;
};

/// Throws util::CodecError on malformed input (wrong magic/version/kind,
/// inconsistent fragment geometry, out-of-range lengths).
DatagramView parse_datagram(std::span<const std::uint8_t> bytes);

/// Slices `frame` into DATA datagrams of at most `mtu` bytes and appends
/// them to `out`. Requires mtu >= kMinMtu and frame non-empty and within
/// kMaxFrameBytes.
void fragment_frame(std::uint32_t epoch, std::uint64_t seq,
                    std::span<const std::uint8_t> frame, std::size_t mtu,
                    std::vector<std::vector<std::uint8_t>>& out);

std::vector<std::uint8_t> encode_ack(std::uint32_t epoch,
                                     std::uint64_t ack_next);
std::vector<std::uint8_t> encode_fin(std::uint32_t epoch, bool is_ack);

/// Reassembles one frame from DATA fragments (any order, duplicates
/// tolerated when consistent).
class FragmentBuffer {
 public:
  enum class Add {
    kIncomplete,  ///< accepted; frame not yet whole
    kComplete,    ///< accepted; bytes() is the whole frame
    kMismatch,    ///< rejected: geometry disagrees with earlier fragments
    kDuplicate,   ///< rejected: this fragment index was already placed
  };

  /// `view.kind` must be kData (caller dispatches).
  Add add(const DatagramView& view);

  bool complete() const { return frag_count_ != 0 && placed_ == frag_count_; }
  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::vector<std::uint8_t> take() && { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
  std::vector<bool> have_;
  std::uint64_t frag_count_ = 0;  ///< 0 = no fragment accepted yet
  std::uint64_t frame_len_ = 0;
  std::uint64_t placed_ = 0;
};

}  // namespace bsub::net
