#include "core/interest_manager.h"

#include <cassert>

namespace bsub::core {

InterestManager::InterestManager(std::size_t node_count,
                                 bloom::BloomParams params,
                                 double initial_counter, double df_per_minute)
    : params_(params), initial_counter_(initial_counter),
      df_per_minute_(df_per_minute) {
  assert(df_per_minute >= 0.0);
  relays_.reserve(node_count);
  for (std::size_t i = 0; i < node_count; ++i) {
    relays_.push_back(
        RelayState{bloom::Tcbf(params, initial_counter), {}, 0, -1.0});
  }
}

bloom::Tcbf& InterestManager::relay(trace::NodeId node, util::Time now) {
  RelayState& s = relays_[node];
  if (now > s.last_decay) {
    const double df = s.df_override >= 0.0 ? s.df_override : df_per_minute_;
    if (df > 0.0) {
      const double amount = df * util::to_minutes(now - s.last_decay);
      s.filter.decay(amount);
      for (auto it = s.shadow.begin(); it != s.shadow.end();) {
        it->second -= amount;
        it = it->second <= 0.0 ? s.shadow.erase(it) : std::next(it);
      }
    }
    s.last_decay = now;
  }
  return s.filter;
}

bloom::Tcbf InterestManager::make_genuine(std::string_view key) const {
  bloom::Tcbf g(params_, initial_counter_);
  g.insert(key);
  return g;
}

bloom::Tcbf InterestManager::make_genuine(
    std::span<const std::string_view> keys) const {
  bloom::Tcbf g(params_, initial_counter_);
  for (std::string_view key : keys) g.insert(key);
  return g;
}

bloom::Tcbf InterestManager::make_genuine(
    std::span<const util::HashPair> keys) const {
  bloom::Tcbf g(params_, initial_counter_);
  for (const util::HashPair& hp : keys) g.insert(hp);
  return g;
}

bloom::BloomFilter InterestManager::make_report(std::string_view key) const {
  bloom::BloomFilter bf(params_);
  bf.insert(key);
  return bf;
}

bloom::BloomFilter InterestManager::make_report(
    std::span<const std::string_view> keys) const {
  bloom::BloomFilter bf(params_);
  for (std::string_view key : keys) bf.insert(key);
  return bf;
}

bloom::BloomFilter InterestManager::make_report(
    std::span<const util::HashPair> keys) const {
  bloom::BloomFilter bf(params_);
  for (const util::HashPair& hp : keys) bf.insert(hp);
  return bf;
}

void InterestManager::absorb_genuine(trace::NodeId broker,
                                     const bloom::Tcbf& genuine,
                                     std::string_view key, util::Time now) {
  relay(broker, now).a_merge(genuine);
  // A-merge adds the genuine counters (all = C) onto the key's bits; the
  // key's minimum counter therefore grows by exactly C.
  ShadowMap& shadow = relays_[broker].shadow;
  if (auto it = shadow.find(key); it != shadow.end()) {
    it->second += genuine.initial_counter();
  } else {
    shadow.emplace(std::string(key), genuine.initial_counter());
  }
}

void InterestManager::absorb_genuine(trace::NodeId broker,
                                     const bloom::Tcbf& genuine,
                                     std::span<const std::string_view> keys,
                                     util::Time now) {
  relay(broker, now).a_merge(genuine);
  ShadowMap& shadow = relays_[broker].shadow;
  for (std::string_view key : keys) {
    if (auto it = shadow.find(key); it != shadow.end()) {
      it->second += genuine.initial_counter();
    } else {
      shadow.emplace(std::string(key), genuine.initial_counter());
    }
  }
}

void InterestManager::merge_relay_from(trace::NodeId dst,
                                       const bloom::Tcbf& src_filter,
                                       const ShadowMap& src_shadow,
                                       BrokerMergeMode mode, util::Time now) {
  bloom::Tcbf& filter = relay(dst, now);
  ShadowMap& shadow = relays_[dst].shadow;
  if (mode == BrokerMergeMode::kMMerge) {
    filter.m_merge(src_filter);
    for (const auto& [key, value] : src_shadow) {
      auto [it, inserted] = shadow.emplace(key, value);
      if (!inserted) it->second = std::max(it->second, value);
    }
  } else {
    filter.a_merge(src_filter);
    for (const auto& [key, value] : src_shadow) shadow[key] += value;
  }
}

bool InterestManager::genuinely_contains(trace::NodeId node,
                                         std::string_view key,
                                         util::Time now) {
  relay(node, now);  // bring the shadow up to date
  auto it = relays_[node].shadow.find(key);  // transparent: no temp string
  return it != relays_[node].shadow.end() && it->second > 0.0;
}

void InterestManager::clear_relay(trace::NodeId node, util::Time now) {
  RelayState& s = relays_[node];
  s.filter.clear();
  s.shadow.clear();
  s.last_decay = now;
}

void InterestManager::set_node_df(trace::NodeId node, double df_per_minute) {
  relays_[node].df_override = df_per_minute;
}

double InterestManager::node_df(trace::NodeId node) const {
  const RelayState& s = relays_[node];
  return s.df_override >= 0.0 ? s.df_override : df_per_minute_;
}

}  // namespace bsub::core
