#include "core/interest_manager.h"

#include <cassert>

namespace bsub::core {

InterestManager::InterestManager(std::size_t node_count,
                                 bloom::BloomParams params,
                                 double initial_counter, double df_per_minute,
                                 bool eager_state)
    : params_(params), initial_counter_(initial_counter),
      df_per_minute_(df_per_minute), eager_(eager_state),
      slots_(node_count), empty_relay_(params, initial_counter) {
  assert(df_per_minute >= 0.0);
  if (eager_) {
    // Reference layout: one RelayState per node, built up front, decay
    // clocks at 0 (the historical behavior).
    for (std::size_t n = 0; n < node_count; ++n) {
      slots_[n].state = pool_.acquire([&] {
        return RelayState{bloom::Tcbf(params_, initial_counter_), {}, 0};
      });
    }
  }
}

InterestManager::RelayState& InterestManager::state_for(trace::NodeId node,
                                                        util::Time now) {
  NodeSlot& slot = slots_[node];
  if (slot.state == util::kNoPoolHandle) {
    slot.state = pool_.acquire([&] {
      return RelayState{bloom::Tcbf(params_, initial_counter_), {}, now};
    });
    // Recycled states keep their (cleared) buffers; only the clock needs
    // re-arming. Starting it at `now` equals an eager empty state decayed
    // to `now` — decaying an empty filter is a no-op.
    pool_[slot.state].last_decay = now;
  }
  return pool_[slot.state];
}

bloom::Tcbf& InterestManager::relay(trace::NodeId node, util::Time now) {
  RelayState& s = state_for(node, now);
  if (now > s.last_decay) {
    const double df_override = slots_[node].df_override;
    const double df = df_override >= 0.0 ? df_override : df_per_minute_;
    if (df > 0.0) {
      const double amount = df * util::to_minutes(now - s.last_decay);
      s.filter.decay(amount);
      for (auto it = s.shadow.begin(); it != s.shadow.end();) {
        it->second -= amount;
        it = it->second <= 0.0 ? s.shadow.erase(it) : std::next(it);
      }
    }
    s.last_decay = now;
  }
  return s.filter;
}

bloom::Tcbf InterestManager::make_genuine(std::string_view key) const {
  bloom::Tcbf g(params_, initial_counter_);
  g.insert(key);
  return g;
}

bloom::Tcbf InterestManager::make_genuine(
    std::span<const std::string_view> keys) const {
  bloom::Tcbf g(params_, initial_counter_);
  for (std::string_view key : keys) g.insert(key);
  return g;
}

bloom::Tcbf InterestManager::make_genuine(
    std::span<const util::HashPair> keys) const {
  bloom::Tcbf g(params_, initial_counter_);
  for (const util::HashPair& hp : keys) g.insert(hp);
  return g;
}

bloom::BloomFilter InterestManager::make_report(std::string_view key) const {
  bloom::BloomFilter bf(params_);
  bf.insert(key);
  return bf;
}

bloom::BloomFilter InterestManager::make_report(
    std::span<const std::string_view> keys) const {
  bloom::BloomFilter bf(params_);
  for (std::string_view key : keys) bf.insert(key);
  return bf;
}

bloom::BloomFilter InterestManager::make_report(
    std::span<const util::HashPair> keys) const {
  bloom::BloomFilter bf(params_);
  for (const util::HashPair& hp : keys) bf.insert(hp);
  return bf;
}

void InterestManager::absorb_genuine(trace::NodeId broker,
                                     const bloom::Tcbf& genuine,
                                     std::string_view key, util::Time now) {
  relay(broker, now).a_merge(genuine);
  // A-merge adds the genuine counters (all = C) onto the key's bits; the
  // key's minimum counter therefore grows by exactly C.
  ShadowMap& shadow = pool_[slots_[broker].state].shadow;
  if (auto it = shadow.find(key); it != shadow.end()) {
    it->second += genuine.initial_counter();
  } else {
    shadow.emplace(std::string(key), genuine.initial_counter());
  }
}

void InterestManager::absorb_genuine(trace::NodeId broker,
                                     const bloom::Tcbf& genuine,
                                     std::span<const std::string_view> keys,
                                     util::Time now) {
  relay(broker, now).a_merge(genuine);
  ShadowMap& shadow = pool_[slots_[broker].state].shadow;
  for (std::string_view key : keys) {
    if (auto it = shadow.find(key); it != shadow.end()) {
      it->second += genuine.initial_counter();
    } else {
      shadow.emplace(std::string(key), genuine.initial_counter());
    }
  }
}

void InterestManager::merge_relay_from(trace::NodeId dst,
                                       const bloom::Tcbf& src_filter,
                                       const ShadowMap& src_shadow,
                                       BrokerMergeMode mode, util::Time now) {
  bloom::Tcbf& filter = relay(dst, now);
  ShadowMap& shadow = pool_[slots_[dst].state].shadow;
  if (mode == BrokerMergeMode::kMMerge) {
    filter.m_merge(src_filter);
    for (const auto& [key, value] : src_shadow) {
      auto [it, inserted] = shadow.emplace(key, value);
      if (!inserted) it->second = std::max(it->second, value);
    }
  } else {
    filter.a_merge(src_filter);
    for (const auto& [key, value] : src_shadow) shadow[key] += value;
  }
}

bool InterestManager::genuinely_contains(trace::NodeId node,
                                         std::string_view key,
                                         util::Time now) {
  // An unmaterialized relay never absorbed anything: answer without
  // materializing (the eager equivalent — decaying an empty state, then
  // probing an empty shadow — observes the same `false`).
  if (slots_[node].state == util::kNoPoolHandle) return false;
  relay(node, now);  // bring the shadow up to date
  const ShadowMap& shadow = pool_[slots_[node].state].shadow;
  auto it = shadow.find(key);  // transparent: no temp string
  return it != shadow.end() && it->second > 0.0;
}

void InterestManager::clear_relay(trace::NodeId node, util::Time now) {
  NodeSlot& slot = slots_[node];
  if (slot.state == util::kNoPoolHandle) return;  // nothing to reset
  if (eager_) {
    // Reference layout: reset in place (the historical behavior).
    RelayState& s = pool_[slot.state];
    s.filter.clear();
    s.shadow.clear();
    s.last_decay = now;
    return;
  }
  // Pooled: return the state for reuse; the DF override lives in the slot
  // and deliberately survives the reset (clear_relay resets the *filter*,
  // not the node's tuning).
  pool_.release(slot.state, [](RelayState& s) {
    s.filter.clear();
    s.shadow.clear();
    s.last_decay = 0;
  });
  slot.state = util::kNoPoolHandle;
}

void InterestManager::set_node_df(trace::NodeId node, double df_per_minute) {
  slots_[node].df_override = df_per_minute;
}

double InterestManager::node_df(trace::NodeId node) const {
  const double df_override = slots_[node].df_override;
  return df_override >= 0.0 ? df_override : df_per_minute_;
}

}  // namespace bsub::core
