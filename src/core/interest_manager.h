// Relay- and genuine-filter management (paper section V-C).
//
// A consumer's interests live in a *genuine filter* (a fresh TCBF whose
// counters all equal the initial value C — built on demand when reporting).
// A broker accumulates other users' interests in its *relay filter*, which
// decays continuously at the DF; decay is applied lazily (per-filter
// timestamps) so idle nodes cost nothing.
// Ground truth: alongside every relay filter the manager keeps a *shadow
// set* — the keys the filter genuinely absorbed, with counters mirroring the
// TCBF's decay/merge arithmetic. The shadow is measurement instrumentation
// only (it costs no protocol bytes): comparing a TCBF hit against the shadow
// identifies relay-filter false positives, which feed the paper's
// false-delivery metric (Fig. 9(d)).
#pragma once

#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "bloom/bloom_filter.h"
#include "bloom/tcbf.h"
#include "core/config.h"
#include "trace/contact.h"
#include "util/hash.h"
#include "util/time.h"

namespace bsub::core {

/// Transparent string hashing so shadow lookups by string_view need no
/// temporary std::string.
struct StringHash {
  using is_transparent = void;
  std::size_t operator()(std::string_view s) const {
    return std::hash<std::string_view>{}(s);
  }
};

class InterestManager {
 public:
  /// Ground-truth key -> remaining counter value.
  using ShadowMap =
      std::unordered_map<std::string, double, StringHash, std::equal_to<>>;
  InterestManager(std::size_t node_count, bloom::BloomParams params,
                  double initial_counter, double df_per_minute);

  /// The node's relay filter, decayed up to `now`. The per-node DF override
  /// (if set) takes precedence over the global DF.
  bloom::Tcbf& relay(trace::NodeId node, util::Time now);

  /// Read-only peek without advancing the decay clock (for inspection).
  const bloom::Tcbf& relay_snapshot(trace::NodeId node) const {
    return relays_[node].filter;
  }

  /// Builds the genuine filter for a single interest key.
  bloom::Tcbf make_genuine(std::string_view key) const;

  /// Builds the genuine filter for a set of interest keys (section V-A's
  /// multi-key extension).
  bloom::Tcbf make_genuine(std::span<const std::string_view> keys) const;

  /// Interned-hash variant: no string hashing on the hot path.
  bloom::Tcbf make_genuine(std::span<const util::HashPair> keys) const;

  /// Builds the counter-less interest report (a plain BF) for a key.
  bloom::BloomFilter make_report(std::string_view key) const;

  /// Counter-less report for a set of keys.
  bloom::BloomFilter make_report(std::span<const std::string_view> keys) const;

  /// Interned-hash variant: no string hashing on the hot path.
  bloom::BloomFilter make_report(std::span<const util::HashPair> keys) const;

  /// A-merges a consumer's genuine filter into a broker's relay filter
  /// (reinforcement happens through repeated meetings). `key` is the
  /// interest the genuine filter represents, recorded in the shadow set.
  void absorb_genuine(trace::NodeId broker, const bloom::Tcbf& genuine,
                      std::string_view key, util::Time now);

  /// Multi-key absorb: every key of the genuine filter enters the shadow.
  void absorb_genuine(trace::NodeId broker, const bloom::Tcbf& genuine,
                      std::span<const std::string_view> keys, util::Time now);

  /// Merges another broker's relay state (filter + shadow) into `dst`'s,
  /// with M-merge or A-merge semantics. `dst` is decayed to `now` first.
  void merge_relay_from(trace::NodeId dst, const bloom::Tcbf& src_filter,
                        const ShadowMap& src_shadow, BrokerMergeMode mode,
                        util::Time now);

  /// Ground truth: does `node`'s relay filter genuinely hold `key` at `now`?
  /// A TCBF hit without this is a relay false positive.
  bool genuinely_contains(trace::NodeId node, std::string_view key,
                          util::Time now);

  /// Shadow set snapshot (decayed to whenever relay() was last called).
  const ShadowMap& shadow_snapshot(trace::NodeId node) const {
    return relays_[node].shadow;
  }

  /// Resets a node's relay filter (e.g. on demotion from brokership).
  void clear_relay(trace::NodeId node, util::Time now);

  /// Per-node DF override in counter units per minute (adaptive DF); pass a
  /// negative value to clear the override.
  void set_node_df(trace::NodeId node, double df_per_minute);
  double node_df(trace::NodeId node) const;

  double global_df() const { return df_per_minute_; }
  const bloom::BloomParams& params() const { return params_; }

 private:
  struct RelayState {
    bloom::Tcbf filter;
    ShadowMap shadow;
    util::Time last_decay = 0;
    double df_override = -1.0;
  };

  bloom::BloomParams params_;
  double initial_counter_;
  double df_per_minute_;
  std::vector<RelayState> relays_;
};

}  // namespace bsub::core
