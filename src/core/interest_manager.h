// Relay- and genuine-filter management (paper section V-C).
//
// A consumer's interests live in a *genuine filter* (a fresh TCBF whose
// counters all equal the initial value C — built on demand when reporting).
// A broker accumulates other users' interests in its *relay filter*, which
// decays continuously at the DF; decay is applied lazily (per-filter
// timestamps) so idle nodes cost nothing.
// Ground truth: alongside every relay filter the manager keeps a *shadow
// set* — the keys the filter genuinely absorbed, with counters mirroring the
// TCBF's decay/merge arithmetic. The shadow is measurement instrumentation
// only (it costs no protocol bytes): comparing a TCBF hit against the shadow
// identifies relay-filter false positives, which feed the paper's
// false-delivery metric (Fig. 9(d)).
//
// Storage is lazy and pooled: B-SUB's own premise is that only brokers
// carry relay filters, so a node costs 16 bytes of slot (pool handle + DF
// override) until its relay is first touched. Relay state (a full TCBF +
// shadow map) materializes from an ObjectPool on first use and returns to
// the pool on clear_relay — a re-promoted broker reuses the heap capacity a
// demoted one left behind. `eager_state` retains the historical
// one-RelayState-per-node layout as the differential-test reference; the
// two modes are bit-identical in every protocol-observable way (an
// unmaterialized relay behaves exactly like an eagerly-built empty one:
// decay of an empty filter is a no-op, so the decay-clock origin is
// unobservable until the first insert, which materializes).
#pragma once

#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "bloom/bloom_filter.h"
#include "bloom/tcbf.h"
#include "core/config.h"
#include "trace/contact.h"
#include "util/hash.h"
#include "util/pool.h"
#include "util/time.h"

namespace bsub::core {

/// Transparent string hashing so shadow lookups by string_view need no
/// temporary std::string.
struct StringHash {
  using is_transparent = void;
  std::size_t operator()(std::string_view s) const {
    return std::hash<std::string_view>{}(s);
  }
};

class InterestManager {
 public:
  /// Ground-truth key -> remaining counter value.
  using ShadowMap =
      std::unordered_map<std::string, double, StringHash, std::equal_to<>>;
  /// `eager_state` pre-materializes every node's relay state up front (the
  /// historical layout, kept as the differential-test reference).
  InterestManager(std::size_t node_count, bloom::BloomParams params,
                  double initial_counter, double df_per_minute,
                  bool eager_state = false);

  /// The node's relay filter, decayed up to `now`. The per-node DF override
  /// (if set) takes precedence over the global DF. Materializes the node's
  /// relay state on first call.
  bloom::Tcbf& relay(trace::NodeId node, util::Time now);

  /// Read-only peek without advancing the decay clock (for inspection).
  /// Unmaterialized nodes see a shared empty filter.
  const bloom::Tcbf& relay_snapshot(trace::NodeId node) const {
    const NodeSlot& s = slots_[node];
    return s.state == util::kNoPoolHandle ? empty_relay_ : pool_[s.state].filter;
  }

  /// Builds the genuine filter for a single interest key.
  bloom::Tcbf make_genuine(std::string_view key) const;

  /// Builds the genuine filter for a set of interest keys (section V-A's
  /// multi-key extension).
  bloom::Tcbf make_genuine(std::span<const std::string_view> keys) const;

  /// Interned-hash variant: no string hashing on the hot path.
  bloom::Tcbf make_genuine(std::span<const util::HashPair> keys) const;

  /// Builds the counter-less interest report (a plain BF) for a key.
  bloom::BloomFilter make_report(std::string_view key) const;

  /// Counter-less report for a set of keys.
  bloom::BloomFilter make_report(std::span<const std::string_view> keys) const;

  /// Interned-hash variant: no string hashing on the hot path.
  bloom::BloomFilter make_report(std::span<const util::HashPair> keys) const;

  /// A-merges a consumer's genuine filter into a broker's relay filter
  /// (reinforcement happens through repeated meetings). `key` is the
  /// interest the genuine filter represents, recorded in the shadow set.
  void absorb_genuine(trace::NodeId broker, const bloom::Tcbf& genuine,
                      std::string_view key, util::Time now);

  /// Multi-key absorb: every key of the genuine filter enters the shadow.
  void absorb_genuine(trace::NodeId broker, const bloom::Tcbf& genuine,
                      std::span<const std::string_view> keys, util::Time now);

  /// Merges another broker's relay state (filter + shadow) into `dst`'s,
  /// with M-merge or A-merge semantics. `dst` is decayed to `now` first.
  void merge_relay_from(trace::NodeId dst, const bloom::Tcbf& src_filter,
                        const ShadowMap& src_shadow, BrokerMergeMode mode,
                        util::Time now);

  /// Ground truth: does `node`'s relay filter genuinely hold `key` at `now`?
  /// A TCBF hit without this is a relay false positive. Never materializes:
  /// an unmaterialized relay holds nothing.
  bool genuinely_contains(trace::NodeId node, std::string_view key,
                          util::Time now);

  /// Shadow set snapshot (decayed to whenever relay() was last called).
  /// Unmaterialized nodes see a shared empty map.
  const ShadowMap& shadow_snapshot(trace::NodeId node) const {
    const NodeSlot& s = slots_[node];
    return s.state == util::kNoPoolHandle ? empty_shadow_
                                          : pool_[s.state].shadow;
  }

  /// Resets a node's relay filter (e.g. on demotion from brokership). In
  /// pooled mode the state returns to the free pool; the node's DF override
  /// survives the reset in both modes.
  void clear_relay(trace::NodeId node, util::Time now);

  /// Per-node DF override in counter units per minute (adaptive DF); pass a
  /// negative value to clear the override.
  void set_node_df(trace::NodeId node, double df_per_minute);
  double node_df(trace::NodeId node) const;

  double global_df() const { return df_per_minute_; }
  const bloom::BloomParams& params() const { return params_; }

  /// Observability for tests and memory accounting.
  bool relay_materialized(trace::NodeId node) const {
    return slots_[node].state != util::kNoPoolHandle;
  }
  std::size_t materialized_relays() const {
    return pool_.size() - pool_.free_count();
  }
  std::size_t pooled_relays() const { return pool_.free_count(); }
  std::uint64_t relays_recycled() const { return pool_.recycled(); }

 private:
  struct RelayState {
    bloom::Tcbf filter;
    ShadowMap shadow;
    util::Time last_decay = 0;
  };
  /// What every node pays, participant or not: a pool handle + DF override.
  struct NodeSlot {
    std::uint32_t state = util::kNoPoolHandle;
    double df_override = -1.0;
  };

  /// Materializes (or fetches) the node's relay state; a fresh/recycled
  /// state starts its decay clock at `now`, which is indistinguishable from
  /// an eager empty state decayed to `now`.
  RelayState& state_for(trace::NodeId node, util::Time now);

  bloom::BloomParams params_;
  double initial_counter_;
  double df_per_minute_;
  bool eager_;
  std::vector<NodeSlot> slots_;
  util::ObjectPool<RelayState> pool_;
  /// Shared snapshots for unmaterialized nodes.
  bloom::Tcbf empty_relay_;
  ShadowMap empty_shadow_;
};

}  // namespace bsub::core
