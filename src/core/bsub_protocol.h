// B-SUB: the complete publish-subscribe protocol (paper section V).
//
// Per contact between nodes x and y, in order:
//   1. TTL housekeeping on both buffers.
//   2. Broker election bookkeeping and rules (section V-B).
//   3. If both are brokers: exchange relay filters, make preferential-query
//      forwarding decisions on the pre-merge filters, then M-merge
//      (section V-C/V-D; A-merge available as the bogus-counter ablation).
//   4. Direct delivery both ways: each side reports a counter-less BF of its
//      interests; the other side hands over matching buffered messages
//      (producer-to-consumer and broker-to-consumer unified; section V-D).
//   5. Interest propagation: each side facing a broker sends its genuine
//      filter, A-merged into the broker's relay filter (section V-C).
//   6. Broker pickup: a broker sends its counter-less relay BF to the other
//      side, which replicates matching messages it produced, bounded by the
//      copy limit C (section V-D).
// Every transmission is gated by the contact's byte budget.
#pragma once

#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/broker_allocation.h"
#include "core/config.h"
#include "core/interest_manager.h"
#include "sim/expiry_index.h"
#include "sim/message_store.h"
#include "sim/protocol.h"

namespace bsub::core {

class BsubProtocol final : public sim::Protocol {
 public:
  explicit BsubProtocol(BsubConfig config = {});
  ~BsubProtocol() override;

  using sim::Protocol::on_start;
  void on_start(const sim::ScenarioInfo& scenario,
                const workload::Workload& workload,
                metrics::Collector& collector) override;
  void on_message_created(const workload::Message& msg,
                          util::Time now) override;
  void on_contact(trace::NodeId a, trace::NodeId b, util::Time now,
                  util::Time duration, sim::Link& link) override;
  void on_end(util::Time now) override;
  const char* name() const override { return "B-SUB"; }

  /// All mutable run state is per-node (buffers, filters, caches keyed by
  /// node) or commutative (relaxed-atomic tallies); the adaptive-DF cache is
  /// mutex-guarded and value-deterministic. See each member's comment.
  bool parallel_contacts_safe() const override { return true; }

  const BsubConfig& config() const { return config_; }

  /// Observability for tests and experiments (valid after on_start).
  const BrokerElection& election() const { return *election_; }
  const InterestManager& interests() const { return *interests_; }

  /// Mutable access for deployments that preset roles (and for tests that
  /// pin the election state). Valid after on_start.
  BrokerElection& election_mutable() { return *election_; }
  InterestManager& interests_mutable() { return *interests_; }

  /// Lifetime count of relay-filter false-positive pickups (ground truth).
  std::uint64_t false_injections() const {
    return false_injections_.load(std::memory_order_relaxed);
  }

  /// Breakdown of message-body transmissions by protocol step.
  struct TrafficBreakdown {
    std::uint64_t pickups = 0;           ///< producer -> broker replicas
    std::uint64_t broker_transfers = 0;  ///< broker -> broker custody moves
    std::uint64_t deliveries = 0;        ///< transfers to a consumer
  };
  /// Snapshot of the (atomic) traffic tallies; by value so readers never
  /// observe a torn struct while batch workers are still bumping it.
  TrafficBreakdown traffic() const {
    return TrafficBreakdown{
        traffic_pickups_.load(std::memory_order_relaxed),
        traffic_broker_transfers_.load(std::memory_order_relaxed),
        traffic_deliveries_.load(std::memory_order_relaxed)};
  }

  /// Time-averaged false-positive rate of the brokers' relay filters,
  /// measured by probing each relay with known-absent keys at every pickup
  /// opportunity (instrumentation; costs no protocol bytes). This is the
  /// operative FPR the paper's Fig. 9(d) tracks: it rises with relay load
  /// and falls as the DF drains interests.
  double measured_relay_fpr() const;

 private:
  struct OwnedMessage {
    sim::MessageRef msg;  ///< borrowed from the workload's message table
    std::uint32_t copies_left;
  };

  /// Per-node producer state, materialized on first publication. Only nodes
  /// that actually produce pay for the buffer + expiry index; everyone else
  /// costs one null pointer. A null entry reads as an empty buffer.
  struct ProducerState {
    /// Messages this node produced, with remaining broker-copy budget.
    std::map<workload::MessageId, OwnedMessage> produced;
    /// Expiry index over `produced` (fast path): purge pops only due
    /// entries instead of scanning the whole buffer. Entries go stale when
    /// a message leaves early (copy budget exhausted), skipped lazily.
    sim::ExpiryIndex expiry;
  };

  /// Per-node broker-custody state, materialized on the first copy taken
  /// into custody. Only nodes that ever carried pay for the store and the
  /// two id sets; a null entry reads as an empty store.
  struct CarrierState {
    /// Messages this node carries for others.
    sim::MessageStore carried;
    /// Copies whose pickup was a relay false positive.
    std::unordered_set<workload::MessageId> falsely_injected;
    /// Loop prevention: ids ever held — refused again, so a copy's
    /// broker-to-broker walk visits each broker at most once.
    std::unordered_set<workload::MessageId> carried_ever;
  };

  /// Per-node wire artifacts that are static for a run (a node's interest
  /// set never changes after on_start): the counter-less interest report,
  /// the genuine filter, and their exact encoded sizes. Built on first use;
  /// every later contact reuses them (an encode-cache hit).
  struct NodeFilterCache {
    bloom::BloomFilter report;
    std::size_t report_bytes = 0;
    bloom::Tcbf genuine;
    std::size_t genuine_bytes = 0;
    bool built = false;
  };

  const std::string& key_name(workload::KeyId key) const;
  const util::HashPair& key_hash(workload::KeyId key) const;
  /// Per-node interest key names/hashes, cached at on_start (the workload's
  /// subscriptions are static for a run) so contacts allocate nothing.
  /// Stored CSR-style (one offset array over two flat arrays), so a node
  /// costs 4 bytes of index instead of two vector headers.
  std::span<const std::string_view> interest_names(trace::NodeId node) const {
    return {interest_names_flat_.data() + interest_offsets_[node],
            interest_offsets_[node + 1] - interest_offsets_[node]};
  }
  std::span<const util::HashPair> interest_hashes(trace::NodeId node) const {
    return {interest_hashes_flat_.data() + interest_offsets_[node],
            interest_offsets_[node + 1] - interest_offsets_[node]};
  }
  /// Precomputed filter bit positions per key (fast path): the key universe
  /// and the filter geometry are both fixed for a run, so every membership
  /// probe in the contact loop reuses these instead of re-deriving k
  /// positions from the hash pair.
  const util::IndexArray& key_indices(workload::KeyId key) const {
    return key_indices_[key];
  }

  void build_filter_cache(NodeFilterCache& fc, trace::NodeId node) const;
  const NodeFilterCache& node_filters(trace::NodeId node);

  /// Materializing accessors (only the contact's own endpoints are ever
  /// touched, so writes to the pointer slots are race-free under
  /// node-disjoint batches, same as every other per-node vector here).
  ProducerState& producer_state(trace::NodeId node) {
    auto& p = producer_[node];
    if (p == nullptr) p = std::make_unique<ProducerState>();
    return *p;
  }
  CarrierState& carrier_state(trace::NodeId node) {
    auto& c = carrier_[node];
    if (c == nullptr) c = std::make_unique<CarrierState>();
    return *c;
  }
  /// Read-only view of a node's carried set; null-safe (null = never
  /// carried = empty).
  bool carries_or_carried(trace::NodeId node, workload::MessageId id) const {
    const CarrierState* c = carrier_[node].get();
    return c != nullptr &&
           (c->carried.contains(id) || c->carried_ever.contains(id));
  }

  void purge(trace::NodeId node, util::Time now);
  void handle_role_changes(trace::NodeId node, bool was_broker,
                           util::Time now);
  void broker_exchange(trace::NodeId a, trace::NodeId b, util::Time now,
                       sim::Link& link);
  void forward_between_brokers(trace::NodeId from, trace::NodeId to,
                               const bloom::Tcbf& filter_from,
                               const bloom::Tcbf& filter_to, util::Time now,
                               sim::Link& link);
  void direct_delivery(trace::NodeId from, trace::NodeId to, util::Time now,
                       sim::Link& link);
  void propagate_interest(trace::NodeId consumer, trace::NodeId broker,
                          util::Time now, sim::Link& link);
  void broker_pickup(trace::NodeId producer, trace::NodeId broker,
                     util::Time now, sim::Link& link);
  void maybe_update_adaptive_df(trace::NodeId node, util::Time now);

  BsubConfig config_;
  const workload::Workload* workload_ = nullptr;
  metrics::Collector* collector_ = nullptr;
  std::unique_ptr<BrokerElection> election_;
  std::unique_ptr<InterestManager> interests_;

  /// Lazy per-node producer/custody state: one pointer per node, null until
  /// the node first publishes / first takes custody. The overwhelming
  /// majority of nodes at city scale never do either, so they cost 16 bytes
  /// here instead of ~260 bytes of empty container headers.
  std::vector<std::unique_ptr<ProducerState>> producer_;
  std::vector<std::unique_ptr<CarrierState>> carrier_;

  /// Interest name/hash caches, CSR-indexed by node (built at on_start).
  std::vector<std::uint32_t> interest_offsets_;
  std::vector<std::string_view> interest_names_flat_;
  std::vector<util::HashPair> interest_hashes_flat_;
  /// Per-key filter bit positions, indexed by KeyId (built at on_start).
  std::vector<util::IndexArray> key_indices_;

  /// Static wire artifacts, deduplicated by interest set: a NodeFilterCache
  /// is a pure function of the node's subscription *set* (plus the run's
  /// filter params), so nodes sharing a set share one entry. Per node: one
  /// pointer, null until the node's first use (which keeps the per-node
  /// encode-cache hit/miss accounting identical to the historical per-node
  /// cache). The index map and deque are mutex-guarded; built entries are
  /// immutable and deque-stable, so the pointer fast path takes no lock.
  std::vector<const NodeFilterCache*> filter_ptr_;
  std::deque<NodeFilterCache> shared_filters_;
  std::map<std::vector<workload::KeyId>, NodeFilterCache*> filter_index_;
  std::mutex filter_mu_;
  /// Reference mode (config_.reference_node_state): the historical private
  /// cache per node.
  std::vector<NodeFilterCache> filter_cache_;

  /// Cache for the adaptive-DF Eq. 4 evaluations, keyed by degree. Shared
  /// across nodes, so it is mutex-guarded; harmless for determinism because
  /// the cached value is a pure function of the key (degree).
  std::mutex emin_mu_;
  std::unordered_map<std::size_t, double> emin_cache_;

  /// Commutative tallies — relaxed atomics so concurrent batch workers can
  /// bump them; integer addition makes the totals schedule-independent.
  std::atomic<std::uint64_t> false_injections_{0};
  std::atomic<std::uint64_t> traffic_pickups_{0};
  std::atomic<std::uint64_t> traffic_broker_transfers_{0};
  std::atomic<std::uint64_t> traffic_deliveries_{0};
  std::atomic<std::uint64_t> fpr_probes_{0};
  std::atomic<std::uint64_t> fpr_hits_{0};
};

}  // namespace bsub::core
