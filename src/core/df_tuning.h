// Decay-factor derivation (paper section VI-A, Eq. 4-5).
//
// The DF is chosen so that an interest inserted once drains out of a relay
// filter after the delay bound W, accounting for accidental counter
// refreshes by other keys: with N keys collected in a window and k hashes
// over m bits, each bit of a key is accidentally hit Binomial(N, k/m) times,
// and the key's lifetime follows the *minimum* across its k bits (Eq. 4).
// The expected total counter mass is C * (1 + E[min]), so (Eq. 5):
//
//     DF = C * (1 + E[min]) / W  + delta
//
// with a small safety constant delta for the cases the analysis omits
// (M-merge refreshes between brokers).
#pragma once

#include "bloom/bloom_params.h"
#include "trace/trace.h"
#include "util/time.h"

namespace bsub::core {

struct DfEstimate {
  double keys_per_window = 0.0;        ///< N: distinct nodes met in W (mean)
  double expected_min_increment = 0.0; ///< E[min] of Eq. 4
  double df_per_minute = 0.0;          ///< Eq. 5
};

/// Estimates N by averaging each node's distinct-peer count over
/// consecutive windows of length `window` across the trace (the paper
/// obtains it "by analyzing the traces").
double estimate_keys_per_window(const trace::ContactTrace& trace,
                                util::Time window);

/// Eq. 5 for a given N.
DfEstimate compute_df_from_keys(double keys_per_window, util::Time window,
                                bloom::BloomParams params,
                                double initial_counter,
                                double delta_per_minute = 0.01);

/// Eq. 5 end-to-end: estimate N from the trace, then apply Eq. 4/5.
DfEstimate compute_df(const trace::ContactTrace& trace, util::Time window,
                      bloom::BloomParams params, double initial_counter,
                      double delta_per_minute = 0.01);

/// Online controller for the feedback loop the paper sketches in section
/// VI-B: "tentatively adjust the DF, then re-adjust its value by observing
/// the resultant FPR, until a desirable FPR is achieved." Multiplicative
/// increase/decrease toward a target false-positive rate.
class OnlineDfController {
 public:
  OnlineDfController(double initial_df, double target_fpr,
                     double adjust_factor = 1.25)
      : df_(initial_df), target_fpr_(target_fpr), factor_(adjust_factor) {}

  /// Feeds one observation period's measured FPR; returns the updated DF.
  double observe(double measured_fpr);

  double df() const { return df_; }
  double target_fpr() const { return target_fpr_; }

 private:
  double df_;
  double target_fpr_;
  double factor_;
};

}  // namespace bsub::core
