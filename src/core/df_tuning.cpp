#include "core/df_tuning.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/binomial.h"

namespace bsub::core {

double estimate_keys_per_window(const trace::ContactTrace& trace,
                                util::Time window) {
  assert(window > 0);
  if (trace.empty() || trace.node_count() == 0) return 0.0;
  const util::Time start = trace.start_time();
  const util::Time end = trace.end_time();

  double total = 0.0;
  std::size_t samples = 0;
  for (util::Time w = start; w < end; w += window) {
    auto deg = trace.degrees_in_window(w, w + window);
    for (std::size_t d : deg) total += static_cast<double>(d);
    samples += deg.size();
  }
  return samples == 0 ? 0.0 : total / static_cast<double>(samples);
}

DfEstimate compute_df_from_keys(double keys_per_window, util::Time window,
                                bloom::BloomParams params,
                                double initial_counter,
                                double delta_per_minute) {
  assert(window > 0 && initial_counter > 0.0);
  DfEstimate est;
  est.keys_per_window = keys_per_window;
  const double p =
      static_cast<double>(params.k) / static_cast<double>(params.m);
  est.expected_min_increment = util::expected_min_binomial(
      static_cast<std::uint64_t>(std::llround(std::max(0.0, keys_per_window))),
      p, params.k);
  const double window_minutes = util::to_minutes(window);
  est.df_per_minute =
      initial_counter * (1.0 + est.expected_min_increment) / window_minutes +
      delta_per_minute;
  return est;
}

DfEstimate compute_df(const trace::ContactTrace& trace, util::Time window,
                      bloom::BloomParams params, double initial_counter,
                      double delta_per_minute) {
  return compute_df_from_keys(estimate_keys_per_window(trace, window), window,
                              params, initial_counter, delta_per_minute);
}

double OnlineDfController::observe(double measured_fpr) {
  // A higher DF removes interests sooner, lowering the filter load and the
  // FPR; so raise DF when the FPR is high, lower it when there is headroom.
  if (measured_fpr > target_fpr_) {
    df_ *= factor_;
  } else if (measured_fpr < target_fpr_ * 0.5) {
    df_ /= factor_;
  }
  return df_;
}

}  // namespace bsub::core
