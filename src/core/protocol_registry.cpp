#include "core/protocol_registry.h"

#include <cctype>
#include <cstdio>
#include <memory>

#include "core/bsub_protocol.h"
#include "routing/registry.h"

namespace bsub::core {

namespace {

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

BsubConfig config_from_params(sim::ProtocolParams& params) {
  BsubConfig cfg;
  cfg.filter_params.m = params.get_u32("m", static_cast<std::uint32_t>(
                                               cfg.filter_params.m),
                                       8);
  cfg.filter_params.k = params.get_u32("k", cfg.filter_params.k, 1);
  cfg.initial_counter = params.get_double("counter", cfg.initial_counter, 0.0);
  if (cfg.initial_counter <= 0.0) {
    params.reject("counter", "initial counter must be > 0");
  }
  cfg.df_per_minute = params.get_double("df", cfg.df_per_minute, 0.0);
  cfg.copy_limit = params.get_u32("copies", cfg.copy_limit, 1);
  cfg.broker_lower = params.get_u32("bl", cfg.broker_lower, 0);
  cfg.broker_upper = params.get_u32("bu", cfg.broker_upper, 0);
  if (cfg.broker_upper < cfg.broker_lower) {
    params.reject("bu", "broker upper threshold must be >= bl");
  }
  cfg.election_window = static_cast<util::Time>(params.get_u64(
      "window_ms", static_cast<std::uint64_t>(cfg.election_window), 1));
  const std::string merge = params.get_string(
      "merge", cfg.broker_merge == BrokerMergeMode::kMMerge ? "m" : "a");
  if (iequals(merge, "m")) {
    cfg.broker_merge = BrokerMergeMode::kMMerge;
  } else if (iequals(merge, "a")) {
    cfg.broker_merge = BrokerMergeMode::kAMerge;
  } else {
    params.reject("merge", "merge must be 'm' (M-merge) or 'a' (A-merge)");
  }
  cfg.relay_gated_delivery =
      params.get_bool("gated", cfg.relay_gated_delivery);
  cfg.adaptive_df = params.get_bool("adaptive", cfg.adaptive_df);
  cfg.df_window = static_cast<util::Time>(params.get_u64(
      "df_window_ms", static_cast<std::uint64_t>(cfg.df_window), 1));
  cfg.reference_contact_path =
      params.get_bool("reference", cfg.reference_contact_path);
  cfg.reference_node_state =
      params.get_bool("reference_state", cfg.reference_node_state);
  return cfg;
}

/// %.17g: shortest form is not needed, exactness is — 17 significant digits
/// guarantee strtod reads back the identical double.
std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

void register_bsub_protocol(sim::ProtocolRegistry& registry) {
  registry.add({
      "B-SUB",
      {"bsub"},
      "the paper's TCBF-guided pub-sub protocol (brokers, relay filters, "
      "decaying interests)",
      [](sim::ProtocolParams& params) -> std::unique_ptr<sim::Protocol> {
        return std::make_unique<BsubProtocol>(config_from_params(params));
      },
  });
}

sim::ProtocolRegistry make_protocol_registry() {
  sim::ProtocolRegistry registry;
  register_bsub_protocol(registry);
  routing::register_baseline_protocols(registry);
  return registry;
}

BsubConfig bsub_config_from_spec(const sim::ProtocolSpec& spec) {
  if (!iequals(spec.name, "B-SUB") && !iequals(spec.name, "bsub")) {
    throw util::ConfigError(
        "protocol '" + spec.name + "' cannot be mapped to a B-SUB config",
        "protocol", "this surface runs only B-SUB (spec name bsub/B-SUB)");
  }
  sim::ProtocolParams params(spec);
  BsubConfig cfg = config_from_params(params);
  params.finish();
  return cfg;
}

BsubConfig bsub_config_from_spec(std::string_view spec) {
  return bsub_config_from_spec(sim::ProtocolSpec::parse(spec));
}

std::string bsub_spec(const BsubConfig& config) {
  const BsubConfig defaults;
  sim::ProtocolSpec spec;
  spec.name = "B-SUB";
  auto add = [&spec](const char* key, std::string value) {
    spec.params.emplace_back(key, std::move(value));
  };
  if (config.filter_params.m != defaults.filter_params.m) {
    add("m", std::to_string(config.filter_params.m));
  }
  if (config.filter_params.k != defaults.filter_params.k) {
    add("k", std::to_string(config.filter_params.k));
  }
  if (config.initial_counter != defaults.initial_counter) {
    add("counter", fmt_double(config.initial_counter));
  }
  if (config.df_per_minute != defaults.df_per_minute) {
    add("df", fmt_double(config.df_per_minute));
  }
  if (config.copy_limit != defaults.copy_limit) {
    add("copies", std::to_string(config.copy_limit));
  }
  if (config.broker_lower != defaults.broker_lower) {
    add("bl", std::to_string(config.broker_lower));
  }
  if (config.broker_upper != defaults.broker_upper) {
    add("bu", std::to_string(config.broker_upper));
  }
  if (config.election_window != defaults.election_window) {
    add("window_ms", std::to_string(config.election_window));
  }
  if (config.broker_merge != defaults.broker_merge) {
    add("merge", config.broker_merge == BrokerMergeMode::kMMerge ? "m" : "a");
  }
  if (config.relay_gated_delivery != defaults.relay_gated_delivery) {
    add("gated", config.relay_gated_delivery ? "1" : "0");
  }
  if (config.adaptive_df != defaults.adaptive_df) {
    add("adaptive", config.adaptive_df ? "1" : "0");
  }
  if (config.df_window != defaults.df_window) {
    add("df_window_ms", std::to_string(config.df_window));
  }
  if (config.reference_contact_path != defaults.reference_contact_path) {
    add("reference", config.reference_contact_path ? "1" : "0");
  }
  if (config.reference_node_state != defaults.reference_node_state) {
    add("reference_state", config.reference_node_state ? "1" : "0");
  }
  return spec.str();
}

}  // namespace bsub::core
