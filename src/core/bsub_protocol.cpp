#include "core/bsub_protocol.h"

#include <algorithm>
#include <cstdio>

#include "bloom/tcbf_codec.h"
#include "core/df_tuning.h"
#include "util/binomial.h"

namespace bsub::core {

BsubProtocol::BsubProtocol(BsubConfig config) : config_(config) {}

BsubProtocol::~BsubProtocol() = default;

const std::string& BsubProtocol::key_name(workload::KeyId key) const {
  return workload_->keys().name(key);
}

const util::HashPair& BsubProtocol::key_hash(workload::KeyId key) const {
  return workload_->keys().hash(key);
}

double BsubProtocol::measured_relay_fpr() const {
  const std::uint64_t probes = fpr_probes_.load(std::memory_order_relaxed);
  const std::uint64_t hits = fpr_hits_.load(std::memory_order_relaxed);
  return probes == 0 ? 0.0
                     : static_cast<double>(hits) / static_cast<double>(probes);
}

void BsubProtocol::on_start(const sim::ScenarioInfo& scenario,
                            const workload::Workload& workload,
                            metrics::Collector& collector) {
  const std::size_t nodes = scenario.node_count;
  workload_ = &workload;
  collector_ = &collector;
  election_ = std::make_unique<BrokerElection>(
      nodes,
      BrokerElection::Config{config_.broker_lower, config_.broker_upper,
                             config_.election_window,
                             config_.reference_node_state});
  interests_ = std::make_unique<InterestManager>(
      nodes, config_.filter_params, config_.initial_counter,
      config_.df_per_minute, /*eager_state=*/config_.reference_node_state);
  producer_.clear();
  producer_.resize(nodes);
  carrier_.clear();
  carrier_.resize(nodes);
  interest_offsets_.assign(nodes + 1, 0);
  for (std::size_t n = 0; n < nodes; ++n) {
    interest_offsets_[n + 1] =
        interest_offsets_[n] +
        static_cast<std::uint32_t>(workload.interests_of(n).size());
  }
  interest_names_flat_.clear();
  interest_hashes_flat_.clear();
  interest_names_flat_.reserve(interest_offsets_[nodes]);
  interest_hashes_flat_.reserve(interest_offsets_[nodes]);
  for (std::size_t n = 0; n < nodes; ++n) {
    for (workload::KeyId k : workload.interests_of(n)) {
      interest_names_flat_.push_back(key_name(k));
      interest_hashes_flat_.push_back(key_hash(k));
    }
  }
  if (config_.reference_node_state) {
    filter_cache_.assign(nodes, NodeFilterCache());
    filter_ptr_.clear();
  } else {
    filter_ptr_.assign(nodes, nullptr);
    filter_cache_.clear();
  }
  shared_filters_.clear();
  filter_index_.clear();
  key_indices_.clear();
  key_indices_.reserve(workload.keys().size());
  for (workload::KeyId k = 0; k < workload.keys().size(); ++k) {
    key_indices_.push_back(util::bloom_indices(
        workload.keys().hash(k), config_.filter_params.k,
        config_.filter_params.m));
  }
  false_injections_.store(0, std::memory_order_relaxed);
  traffic_pickups_.store(0, std::memory_order_relaxed);
  traffic_broker_transfers_.store(0, std::memory_order_relaxed);
  traffic_deliveries_.store(0, std::memory_order_relaxed);
  fpr_probes_.store(0, std::memory_order_relaxed);
  fpr_hits_.store(0, std::memory_order_relaxed);
}

void BsubProtocol::on_message_created(const workload::Message& msg,
                                      util::Time /*now*/) {
  // The simulator hands a reference into the workload's stable message
  // table, so the fast path borrows the payload; the reference path keeps
  // the historical deep copy per producer buffer.
  auto& hp = collector_->hot_path();
  ProducerState& ps = producer_state(msg.producer);
  if (config_.reference_contact_path) {
    ps.produced.emplace(
        msg.id, OwnedMessage{std::make_shared<const workload::Message>(msg),
                             config_.copy_limit});
    ++hp.payload_copies_made;
  } else {
    ps.produced.emplace(
        msg.id, OwnedMessage{sim::borrow_message(msg), config_.copy_limit});
    ++hp.payload_copies_avoided;
  }
  ps.expiry.add(msg.expiry(), msg.id);
}

void BsubProtocol::purge(trace::NodeId node, util::Time now) {
  // Null producer/carrier state reads as empty buffers: nothing to purge.
  ProducerState* ps = producer_[node].get();
  CarrierState* cs = carrier_[node].get();
  if (config_.reference_contact_path) {
    if (ps != nullptr) {
      std::erase_if(ps->produced, [now](const auto& kv) {
        return kv.second.msg->expired_at(now);
      });
    }
    if (cs != nullptr) {
      cs->carried.purge_expired_scan(now);
      std::erase_if(cs->falsely_injected, [&](workload::MessageId id) {
        return !cs->carried.contains(id);
      });
    }
    return;
  }
  // Fast path: the expiry index proves in O(1) that nothing in produced
  // expired since the last purge; otherwise only the due ids are visited
  // (entries for messages that already left via copy exhaustion are stale
  // and skipped). falsely_injected only ever names carried ids, so its
  // rescan is needed only when the carried purge actually dropped copies.
  auto& hp = collector_->hot_path();
  if (ps != nullptr) {
    sim::ExpiryIndex& idx = ps->expiry;
    if (!idx.due(now)) {
      ++hp.purge_scans_skipped;
    } else {
      ++hp.purge_scans_run;
      auto& buffer = ps->produced;
      idx.pop_due(now, [&](workload::MessageId id) {
        auto it = buffer.find(id);
        if (it != buffer.end() && it->second.msg->expired_at(now)) {
          buffer.erase(it);
        }
      });
    }
  }
  if (cs != nullptr && cs->carried.purge_expired(now) > 0) {
    std::erase_if(cs->falsely_injected, [&](workload::MessageId id) {
      return !cs->carried.contains(id);
    });
  }
}

void BsubProtocol::build_filter_cache(NodeFilterCache& fc,
                                      trace::NodeId node) const {
  // A node's interest set is fixed for the whole run, so its interest
  // report, genuine filter, and their exact wire sizes are run constants.
  fc.report = interests_->make_report(interest_hashes(node));
  fc.report_bytes = bloom::encoded_bloom_wire_size(fc.report);
  fc.genuine = interests_->make_genuine(interest_hashes(node));
  fc.genuine_bytes = bloom::encoded_tcbf_wire_size(
      fc.genuine, bloom::CounterEncoding::kUniform);
  fc.built = true;
}

const BsubProtocol::NodeFilterCache& BsubProtocol::node_filters(
    trace::NodeId node) {
  auto& hp = collector_->hot_path();
  if (config_.reference_node_state) {
    NodeFilterCache& fc = filter_cache_[node];
    if (!fc.built) {
      build_filter_cache(fc, node);
      ++hp.encode_cache_misses;
    } else {
      ++hp.encode_cache_hits;
    }
    return fc;
  }
  if (const NodeFilterCache* fc = filter_ptr_[node]) {
    ++hp.encode_cache_hits;
    return *fc;
  }
  // First use for this node counts as a miss (same accounting as the
  // historical per-node cache), even when another node already built the
  // shared entry.
  ++hp.encode_cache_misses;
  // Canonical key: filter contents are a pure function of the interest
  // *set* — insertion order cannot change final bits/counters and repeats
  // are idempotent — so nodes sharing a subscription set share one entry.
  const std::span<const workload::KeyId> node_keys =
      workload_->interests_of(node);
  std::vector<workload::KeyId> canon(node_keys.begin(), node_keys.end());
  std::sort(canon.begin(), canon.end());
  canon.erase(std::unique(canon.begin(), canon.end()), canon.end());
  std::lock_guard<std::mutex> lock(filter_mu_);
  auto [it, inserted] = filter_index_.try_emplace(std::move(canon), nullptr);
  if (inserted) {
    shared_filters_.emplace_back();
    build_filter_cache(shared_filters_.back(), node);
    it->second = &shared_filters_.back();
  }
  filter_ptr_[node] = it->second;
  return *it->second;
}

void BsubProtocol::handle_role_changes(trace::NodeId node, bool /*was*/,
                                       util::Time /*now*/) {
  // Role flips keep the relay filter: the election churns (nodes hover
  // around the thresholds), and decay already retires stale relay state —
  // clearing on every flip would destroy live routes for nothing. A
  // re-promoted broker simply resumes from its decayed filter.
  (void)node;
}

void BsubProtocol::maybe_update_adaptive_df(trace::NodeId node,
                                            util::Time now) {
  if (!config_.adaptive_df || !election_->is_broker(node)) return;
  // The broker re-derives Eq. 5 from the distinct nodes it met in its own
  // window — the online estimation the paper sketches in section VII-B.
  const std::size_t degree = election_->degree(node, now);
  double emin;
  {
    // The cache is the only cross-node mutable map in the contact path;
    // a mutex keeps it safe under concurrent batches, and determinism is
    // unaffected because the value is a pure function of the degree (two
    // workers racing on a miss compute the identical number).
    std::lock_guard<std::mutex> lock(emin_mu_);
    auto it = emin_cache_.find(degree);
    if (it == emin_cache_.end()) {
      const double p = static_cast<double>(config_.filter_params.k) /
                       static_cast<double>(config_.filter_params.m);
      it = emin_cache_
               .emplace(degree, util::expected_min_binomial(
                                    degree, p, config_.filter_params.k))
               .first;
    }
    emin = it->second;
  }
  const double df = config_.initial_counter * (1.0 + emin) /
                        util::to_minutes(config_.df_window) +
                    0.01;
  interests_->set_node_df(node, df);
}

void BsubProtocol::on_contact(trace::NodeId a, trace::NodeId b, util::Time now,
                              util::Time /*duration*/, sim::Link& link) {
  purge(a, now);
  purge(b, now);

  const bool a_was = election_->is_broker(a);
  const bool b_was = election_->is_broker(b);
  election_->on_contact(a, b, now);
  handle_role_changes(a, a_was, now);
  handle_role_changes(b, b_was, now);
  maybe_update_adaptive_df(a, now);
  maybe_update_adaptive_df(b, now);

  const bool a_broker = election_->is_broker(a);
  const bool b_broker = election_->is_broker(b);

  if (a_broker && b_broker) broker_exchange(a, b, now, link);

  direct_delivery(a, b, now, link);
  direct_delivery(b, a, now, link);

  // Pickups run against the relay state as it stood when the nodes met;
  // absorbing this contact's own interest report happens afterwards.
  // (Otherwise every pickup would see the partner's interest freshly
  // re-inserted at full strength and the decaying factor would never bite.)
  if (b_broker) broker_pickup(a, b, now, link);
  if (a_broker) broker_pickup(b, a, now, link);

  if (b_broker) propagate_interest(a, b, now, link);
  if (a_broker) propagate_interest(b, a, now, link);
}

void BsubProtocol::broker_exchange(trace::NodeId a, trace::NodeId b,
                                   util::Time now, sim::Link& link) {
  if (config_.reference_contact_path) {
    // Decay both relay filters up to the contact, then exchange them. The
    // forwarding decisions use the pre-merge snapshots (section V-D).
    const bloom::Tcbf snap_a = interests_->relay(a, now);
    const bloom::Tcbf snap_b = interests_->relay(b, now);
    const auto shadow_a = interests_->shadow_snapshot(a);
    const auto shadow_b = interests_->shadow_snapshot(b);

    const auto enc_a =
        bloom::encode_tcbf(snap_a, bloom::CounterEncoding::kFull);
    const auto enc_b =
        bloom::encode_tcbf(snap_b, bloom::CounterEncoding::kFull);
    if (!link.try_send(enc_a.size() + enc_b.size())) return;
    collector_->record_control_bytes(enc_a.size() + enc_b.size());

    forward_between_brokers(a, b, snap_a, snap_b, now, link);
    forward_between_brokers(b, a, snap_b, snap_a, now, link);

    interests_->merge_relay_from(a, snap_b, shadow_b, config_.broker_merge,
                                 now);
    interests_->merge_relay_from(b, snap_a, shadow_a, config_.broker_merge,
                                 now);
    return;
  }
  // Fast path. Forwarding decisions run before either merge, so the live
  // (decayed) filters *are* the pre-merge snapshots — no copies needed for
  // ranking. The exchange's byte cost comes from the exact wire-size
  // formula; the encodings themselves are never materialized because the
  // simulator only charges their sizes against the link budget.
  bloom::Tcbf& relay_a = interests_->relay(a, now);
  bloom::Tcbf& relay_b = interests_->relay(b, now);
  const std::size_t bytes =
      bloom::encoded_tcbf_wire_size(relay_a, bloom::CounterEncoding::kFull) +
      bloom::encoded_tcbf_wire_size(relay_b, bloom::CounterEncoding::kFull);
  if (!link.try_send(bytes)) return;
  collector_->record_control_bytes(bytes);

  forward_between_brokers(a, b, relay_a, relay_b, now, link);
  forward_between_brokers(b, a, relay_b, relay_a, now, link);

  // The first merge mutates a, so only a's pre-merge state needs to survive
  // in scratch; b's live state feeds the first merge directly. thread_local
  // (not members) so concurrent batch workers each get their own buffers
  // while the capacity still survives across contacts on a worker.
  thread_local bloom::Tcbf scratch_relay;
  thread_local InterestManager::ShadowMap scratch_shadow;
  scratch_relay = relay_a;
  scratch_shadow = interests_->shadow_snapshot(a);
  interests_->merge_relay_from(a, relay_b, interests_->shadow_snapshot(b),
                               config_.broker_merge, now);
  interests_->merge_relay_from(b, scratch_relay, scratch_shadow,
                               config_.broker_merge, now);
}

void BsubProtocol::forward_between_brokers(trace::NodeId from,
                                           trace::NodeId to,
                                           const bloom::Tcbf& filter_from,
                                           const bloom::Tcbf& filter_to,
                                           util::Time /*now*/,
                                           sim::Link& link) {
  // Rank carried messages by the peer's preference over ours; only positive
  // preferences move (the peer is a strictly better custodian).
  struct Candidate {
    double pref;
    workload::MessageId id;
  };
  CarrierState* cs_from = carrier_[from].get();
  if (cs_from == nullptr) return;  // never carried anything: nothing to move
  std::vector<Candidate> ranked;
  const bool ref_path = config_.reference_contact_path;
  for (const auto& [id, msg] : cs_from->carried) {
    if (msg->producer == to) continue;
    if (carries_or_carried(to, id)) continue;
    // Fast path: preferential query over the interned bit positions (no
    // re-deriving k indices per filter). Bit-identical to the hash-pair
    // overload the reference path keeps exercising.
    const double pref =
        ref_path
            ? bloom::preference(filter_to, filter_from, key_hash(msg->key))
            : bloom::preference_at(filter_to, filter_from,
                                   key_indices(msg->key));
    if (pref > 0.0) ranked.push_back({pref, id});
  }
  std::sort(ranked.begin(), ranked.end(), [](const Candidate& x,
                                             const Candidate& y) {
    return std::tie(y.pref, x.id) < std::tie(x.pref, y.id);  // pref desc
  });

  for (const Candidate& c : ranked) {
    sim::MessageRef msg = cs_from->carried.find_ref(c.id);
    if (!link.try_send(msg->size_bytes)) break;
    collector_->record_forwarding(*msg);
    traffic_broker_transfers_.fetch_add(1, std::memory_order_relaxed);
    CarrierState& cs_to = carrier_state(to);
    if (config_.reference_contact_path) {
      cs_to.carried.add(*msg);  // naive reference: deep copy per custody move
    } else {
      cs_to.carried.add(msg);  // custody moves by sharing the payload
    }
    cs_to.carried_ever.insert(c.id);
    if (cs_from->falsely_injected.contains(c.id)) {
      cs_to.falsely_injected.insert(c.id);
    }
    // Single custody between brokers: the sender drops its copy.
    cs_from->carried.remove(c.id);
    cs_from->falsely_injected.erase(c.id);
  }
}

void BsubProtocol::direct_delivery(trace::NodeId from, trace::NodeId to,
                                   util::Time now, sim::Link& link) {
  // The consumer side reports a counter-less BF of its interests. Interests
  // are static per run, so the fast path reuses the cached report and its
  // exact wire size; the reference path rebuilds and re-encodes per contact.
  bloom::BloomFilter ref_report;
  const bloom::BloomFilter* report = nullptr;
  std::size_t report_bytes = 0;
  if (config_.reference_contact_path) {
    ref_report = interests_->make_report(interest_hashes(to));
    report_bytes = bloom::encode_bloom(ref_report).size();
    report = &ref_report;
  } else {
    const NodeFilterCache& fc = node_filters(to);
    report = &fc.report;
    report_bytes = fc.report_bytes;
  }
  if (!link.try_send(report_bytes)) return;
  collector_->record_control_bytes(report_bytes);

  const bool fast = !config_.reference_contact_path;

  // Returns false when the link budget is exhausted; sets `accepted` when
  // the consumer's true interest matches (it keeps the message and acks).
  // `falsely_fn` defers the false-injection lookup to the (rare) moment a
  // delivery actually happens; probes that miss pay nothing for it.
  auto try_deliver = [&](const workload::Message& msg, auto&& falsely_fn,
                         bool& accepted) -> bool {
    accepted = false;
    if (msg.producer == to) return true;
    // Interned per-key bit positions on the fast path: same bits, no
    // per-probe index derivation.
    const bool hit = fast ? report->contains_at(key_indices(msg.key))
                          : report->contains(key_hash(msg.key));
    if (!hit) return true;
    if (collector_->delivered(msg.id, to)) return true;
    if (!link.try_send(msg.size_bytes)) return false;
    collector_->record_forwarding(msg);
    traffic_deliveries_.fetch_add(1, std::memory_order_relaxed);
    accepted = workload_->is_interested(to, msg.key);
    collector_->record_delivery(msg, to, now, accepted, falsely_fn());
    return true;
  };

  bool accepted = false;
  auto not_falsely = [] { return false; };
  if (const ProducerState* ps = producer_[from].get()) {
    for (const auto& [id, owned] : ps->produced) {
      if (!try_deliver(*owned.msg, not_falsely, accepted)) return;
    }
  }
  // Carried copies stay in custody after a delivery so one replica can
  // serve several subscribers of the same key; the per-broker carried_ever
  // memory already bounds how far a copy can wander between brokers.
  // Reverse-path gating: a broker offers a copy only while its relay filter
  // still routes the key (section V-C's delivery tree). Demoted ex-brokers
  // have no relay authority anymore; they serve their leftover copies
  // ungated until TTL (they cannot acquire new ones).
  CarrierState* cs = carrier_[from].get();
  if (cs == nullptr) return;  // never carried: nothing more to offer
  const bloom::Tcbf* relay = nullptr;
  if (config_.relay_gated_delivery && !cs->carried.empty() &&
      election_->is_broker(from)) {
    relay = &interests_->relay(from, now);
  }
  for (const auto& [id, msg] : cs->carried) {
    if (fast) {
      if (relay != nullptr && !relay->contains_at(key_indices(msg->key))) {
        continue;
      }
      auto falsely = [&, &id = id] {
        return cs->falsely_injected.contains(id);
      };
      if (!try_deliver(*msg, falsely, accepted)) return;
    } else {
      if (relay != nullptr && !relay->contains(key_hash(msg->key))) continue;
      const bool fi = cs->falsely_injected.contains(id);
      if (!try_deliver(*msg, [fi] { return fi; }, accepted)) return;
    }
  }
}

void BsubProtocol::propagate_interest(trace::NodeId consumer,
                                      trace::NodeId broker, util::Time now,
                                      sim::Link& link) {
  const std::span<const std::string_view> keys = interest_names(consumer);
  if (config_.reference_contact_path) {
    const bloom::Tcbf genuine =
        interests_->make_genuine(interest_hashes(consumer));
    // Fresh genuine filters have identical counters: uniform encoding.
    const auto enc =
        bloom::encode_tcbf(genuine, bloom::CounterEncoding::kUniform);
    if (!link.try_send(enc.size())) return;
    collector_->record_control_bytes(enc.size());
    interests_->absorb_genuine(broker, genuine, keys, now);
    return;
  }
  // Fast path: the genuine filter is a pure function of the consumer's
  // static interest set — reuse the cached build and its uniform-encoding
  // wire size.
  const NodeFilterCache& fc = node_filters(consumer);
  if (!link.try_send(fc.genuine_bytes)) return;
  collector_->record_control_bytes(fc.genuine_bytes);
  interests_->absorb_genuine(broker, fc.genuine, keys, now);
}

void BsubProtocol::broker_pickup(trace::NodeId producer, trace::NodeId broker,
                                 util::Time now, sim::Link& link) {
  // The broker ships its relay filter counter-less (section VI-C: "when a
  // broker requests messages from a source, it does not need to report the
  // counters").
  const bool ref_path = config_.reference_contact_path;
  bloom::Tcbf& relay = interests_->relay(broker, now);
  bloom::BloomFilter relay_bf;
  std::size_t enc_bytes = 0;
  if (ref_path) {
    relay_bf = relay.to_bloom_filter();
    enc_bytes = bloom::encode_bloom(relay_bf).size();
  } else {
    // The TCBF answers counter-less membership directly (bit set iff its
    // effective counter is positive — exactly to_bloom_filter's bits), so
    // the fast path skips both the BF materialization and the encode.
    enc_bytes = bloom::encoded_bloom_wire_size(relay.popcount(),
                                               relay.params());
  }
  if (!link.try_send(enc_bytes)) return;
  collector_->record_control_bytes(enc_bytes);

  // Instrumentation: probe the relay with keys guaranteed absent (the \x01
  // prefix is outside the workload universe) to sample the operative relay
  // FPR over time. Probe strings rotate so the estimate averages over the
  // key space instead of pinning 8 fixed bit patterns — and they are a pure
  // function of the contact (producer, broker, time, slot), never of a
  // global sequence number, so the sampled FPR is identical whatever order
  // non-conflicting contacts execute in.
  char probe[32];
  std::uint64_t mix = static_cast<std::uint64_t>(producer) << 32 |
                      static_cast<std::uint64_t>(broker);
  mix ^= static_cast<std::uint64_t>(now) * 0x9e3779b97f4a7c15ull;
  std::uint64_t local_hits = 0;
  for (int i = 0; i < 8; ++i) {
    // splitmix64 finalizer over the contact identity + slot.
    std::uint64_t z = mix + 0x9e3779b97f4a7c15ull * (std::uint64_t)(i + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    std::snprintf(probe, sizeof(probe), "\x01probe:%016llx",
                  static_cast<unsigned long long>(z));
    local_hits += ref_path ? relay_bf.contains(probe) : relay.contains(probe);
  }
  fpr_probes_.fetch_add(8, std::memory_order_relaxed);
  fpr_hits_.fetch_add(local_hits, std::memory_order_relaxed);

  ProducerState* ps = producer_[producer].get();
  if (ps == nullptr) return;  // never produced: nothing to pick up
  for (auto it = ps->produced.begin(); it != ps->produced.end();) {
    OwnedMessage& owned = it->second;
    const workload::Message& msg = *owned.msg;
    const std::string& key = key_name(msg.key);
    const bool relay_hit = ref_path ? relay_bf.contains(key_hash(msg.key))
                                    : relay.contains_at(key_indices(msg.key));
    if (owned.copies_left == 0 || carries_or_carried(broker, msg.id) ||
        !relay_hit) {
      ++it;
      continue;
    }
    if (!link.try_send(msg.size_bytes)) break;
    collector_->record_forwarding(msg);
    traffic_pickups_.fetch_add(1, std::memory_order_relaxed);
    CarrierState& cs = carrier_state(broker);
    if (ref_path) {
      cs.carried.add(msg);  // naive deep copy into the broker buffer
    } else {
      cs.carried.add(owned.msg);  // share the producer's payload
    }
    cs.carried_ever.insert(msg.id);
    // Ground truth: a pickup whose key the relay never genuinely absorbed is
    // a false injection (Bloom false positive of the relay filter).
    if (!interests_->genuinely_contains(broker, key, now)) {
      cs.falsely_injected.insert(msg.id);
      false_injections_.fetch_add(1, std::memory_order_relaxed);
    }
    if (--owned.copies_left == 0) {
      // Copy budget exhausted: the producer forgets the message (V-D).
      it = ps->produced.erase(it);
    } else {
      ++it;
    }
  }
}

void BsubProtocol::on_end(util::Time /*now*/) {
  // Fold per-store hot-path accounting into the run's metrics so benches
  // and differential tests can read it off RunResults.
  auto& hp = collector_->hot_path();
  for (const auto& cs : carrier_) {
    if (cs == nullptr) continue;  // never carried: zero stats by definition
    const sim::MessageStore::Stats& s = cs->carried.stats();
    hp.purge_scans_skipped += s.purges_skipped;
    hp.purge_scans_run += s.purges_scanned;
    hp.payload_copies_avoided += s.shared_adds;
    hp.payload_copies_made += s.copied_adds;
  }
}

}  // namespace bsub::core
