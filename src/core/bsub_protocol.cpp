#include "core/bsub_protocol.h"

#include <algorithm>
#include <cstdio>

#include "bloom/tcbf_codec.h"
#include "core/df_tuning.h"
#include "util/binomial.h"

namespace bsub::core {

BsubProtocol::BsubProtocol(BsubConfig config) : config_(config) {}

BsubProtocol::~BsubProtocol() = default;

const std::string& BsubProtocol::key_name(workload::KeyId key) const {
  return workload_->keys().name(key);
}

const util::HashPair& BsubProtocol::key_hash(workload::KeyId key) const {
  return workload_->keys().hash(key);
}

double BsubProtocol::measured_relay_fpr() const {
  return fpr_probes_ == 0 ? 0.0
                          : static_cast<double>(fpr_hits_) /
                                static_cast<double>(fpr_probes_);
}

void BsubProtocol::on_start(const trace::ContactTrace& trace,
                            const workload::Workload& workload,
                            metrics::Collector& collector) {
  trace_ = &trace;
  workload_ = &workload;
  collector_ = &collector;
  election_ = std::make_unique<BrokerElection>(
      trace.node_count(),
      BrokerElection::Config{config_.broker_lower, config_.broker_upper,
                             config_.election_window});
  interests_ = std::make_unique<InterestManager>(
      trace.node_count(), config_.filter_params, config_.initial_counter,
      config_.df_per_minute);
  produced_.assign(trace.node_count(), {});
  carried_.assign(trace.node_count(), {});
  falsely_injected_.assign(trace.node_count(), {});
  carried_ever_.assign(trace.node_count(), {});
  interest_names_.assign(trace.node_count(), {});
  interest_hashes_.assign(trace.node_count(), {});
  for (std::size_t n = 0; n < trace.node_count(); ++n) {
    for (workload::KeyId k : workload.interests_of(n)) {
      interest_names_[n].push_back(key_name(k));
      interest_hashes_[n].push_back(key_hash(k));
    }
  }
  false_injections_ = 0;
  traffic_ = {};
  fpr_probes_ = 0;
  fpr_hits_ = 0;
}

void BsubProtocol::on_message_created(const workload::Message& msg,
                                      util::Time /*now*/) {
  produced_[msg.producer].emplace(msg.id,
                                  OwnedMessage{msg, config_.copy_limit});
}

void BsubProtocol::purge(trace::NodeId node, util::Time now) {
  std::erase_if(produced_[node], [now](const auto& kv) {
    return kv.second.msg.expired_at(now);
  });
  carried_[node].purge_expired(now);
  std::erase_if(falsely_injected_[node], [&](workload::MessageId id) {
    return !carried_[node].contains(id);
  });
}

void BsubProtocol::handle_role_changes(trace::NodeId node, bool /*was*/,
                                       util::Time /*now*/) {
  // Role flips keep the relay filter: the election churns (nodes hover
  // around the thresholds), and decay already retires stale relay state —
  // clearing on every flip would destroy live routes for nothing. A
  // re-promoted broker simply resumes from its decayed filter.
  (void)node;
}

void BsubProtocol::maybe_update_adaptive_df(trace::NodeId node,
                                            util::Time now) {
  if (!config_.adaptive_df || !election_->is_broker(node)) return;
  // The broker re-derives Eq. 5 from the distinct nodes it met in its own
  // window — the online estimation the paper sketches in section VII-B.
  const std::size_t degree = election_->degree(node, now);
  auto it = emin_cache_.find(degree);
  if (it == emin_cache_.end()) {
    const double p = static_cast<double>(config_.filter_params.k) /
                     static_cast<double>(config_.filter_params.m);
    it = emin_cache_
             .emplace(degree, util::expected_min_binomial(
                                  degree, p, config_.filter_params.k))
             .first;
  }
  const double df = config_.initial_counter * (1.0 + it->second) /
                        util::to_minutes(config_.df_window) +
                    0.01;
  interests_->set_node_df(node, df);
}

void BsubProtocol::on_contact(trace::NodeId a, trace::NodeId b, util::Time now,
                              util::Time /*duration*/, sim::Link& link) {
  purge(a, now);
  purge(b, now);

  const bool a_was = election_->is_broker(a);
  const bool b_was = election_->is_broker(b);
  election_->on_contact(a, b, now);
  handle_role_changes(a, a_was, now);
  handle_role_changes(b, b_was, now);
  maybe_update_adaptive_df(a, now);
  maybe_update_adaptive_df(b, now);

  const bool a_broker = election_->is_broker(a);
  const bool b_broker = election_->is_broker(b);

  if (a_broker && b_broker) broker_exchange(a, b, now, link);

  direct_delivery(a, b, now, link);
  direct_delivery(b, a, now, link);

  // Pickups run against the relay state as it stood when the nodes met;
  // absorbing this contact's own interest report happens afterwards.
  // (Otherwise every pickup would see the partner's interest freshly
  // re-inserted at full strength and the decaying factor would never bite.)
  if (b_broker) broker_pickup(a, b, now, link);
  if (a_broker) broker_pickup(b, a, now, link);

  if (b_broker) propagate_interest(a, b, now, link);
  if (a_broker) propagate_interest(b, a, now, link);
}

void BsubProtocol::broker_exchange(trace::NodeId a, trace::NodeId b,
                                   util::Time now, sim::Link& link) {
  // Decay both relay filters up to the contact, then exchange them. The
  // forwarding decisions use the pre-merge snapshots (section V-D).
  const bloom::Tcbf snap_a = interests_->relay(a, now);
  const bloom::Tcbf snap_b = interests_->relay(b, now);
  const auto shadow_a = interests_->shadow_snapshot(a);
  const auto shadow_b = interests_->shadow_snapshot(b);

  const auto enc_a = bloom::encode_tcbf(snap_a, bloom::CounterEncoding::kFull);
  const auto enc_b = bloom::encode_tcbf(snap_b, bloom::CounterEncoding::kFull);
  if (!link.try_send(enc_a.size() + enc_b.size())) return;
  collector_->record_control_bytes(enc_a.size() + enc_b.size());

  forward_between_brokers(a, b, snap_a, snap_b, now, link);
  forward_between_brokers(b, a, snap_b, snap_a, now, link);

  interests_->merge_relay_from(a, snap_b, shadow_b, config_.broker_merge, now);
  interests_->merge_relay_from(b, snap_a, shadow_a, config_.broker_merge, now);
}

void BsubProtocol::forward_between_brokers(trace::NodeId from,
                                           trace::NodeId to,
                                           const bloom::Tcbf& filter_from,
                                           const bloom::Tcbf& filter_to,
                                           util::Time now, sim::Link& link) {
  // Rank carried messages by the peer's preference over ours; only positive
  // preferences move (the peer is a strictly better custodian).
  struct Candidate {
    double pref;
    workload::MessageId id;
  };
  std::vector<Candidate> ranked;
  for (const auto& [id, msg] : carried_[from]) {
    if (msg.producer == to) continue;
    if (carried_[to].contains(id) || carried_ever_[to].contains(id)) continue;
    const double pref =
        bloom::preference(filter_to, filter_from, key_hash(msg.key));
    if (pref > 0.0) ranked.push_back({pref, id});
  }
  std::sort(ranked.begin(), ranked.end(), [](const Candidate& x,
                                             const Candidate& y) {
    return std::tie(y.pref, x.id) < std::tie(x.pref, y.id);  // pref desc
  });

  for (const Candidate& c : ranked) {
    const workload::Message msg = *carried_[from].find(c.id);
    if (!link.try_send(msg.size_bytes)) break;
    collector_->record_forwarding(msg);
    ++traffic_.broker_transfers;
    carried_[to].add(msg);
    carried_ever_[to].insert(c.id);
    if (falsely_injected_[from].contains(c.id)) {
      falsely_injected_[to].insert(c.id);
    }
    // Single custody between brokers: the sender drops its copy.
    carried_[from].remove(c.id);
    falsely_injected_[from].erase(c.id);
  }
}

void BsubProtocol::direct_delivery(trace::NodeId from, trace::NodeId to,
                                   util::Time now, sim::Link& link) {
  // The consumer side reports a counter-less BF of its interests.
  const bloom::BloomFilter report =
      interests_->make_report(std::span<const util::HashPair>(
          interest_hashes(to)));
  const auto enc = bloom::encode_bloom(report);
  if (!link.try_send(enc.size())) return;
  collector_->record_control_bytes(enc.size());

  // Returns false when the link budget is exhausted; sets `accepted` when
  // the consumer's true interest matches (it keeps the message and acks).
  auto try_deliver = [&](const workload::Message& msg, bool falsely_injected,
                         bool& accepted) -> bool {
    accepted = false;
    if (msg.producer == to) return true;
    if (!report.contains(key_hash(msg.key))) return true;
    if (collector_->delivered(msg.id, to)) return true;
    if (!link.try_send(msg.size_bytes)) return false;
    collector_->record_forwarding(msg);
    ++traffic_.deliveries;
    accepted = workload_->is_interested(to, msg.key);
    collector_->record_delivery(msg, to, now, accepted, falsely_injected);
    return true;
  };

  bool accepted = false;
  for (const auto& [id, owned] : produced_[from]) {
    if (!try_deliver(owned.msg, false, accepted)) return;
  }
  // Carried copies stay in custody after a delivery so one replica can
  // serve several subscribers of the same key; the per-broker carried_ever_
  // memory already bounds how far a copy can wander between brokers.
  // Reverse-path gating: a broker offers a copy only while its relay filter
  // still routes the key (section V-C's delivery tree). Demoted ex-brokers
  // have no relay authority anymore; they serve their leftover copies
  // ungated until TTL (they cannot acquire new ones).
  const bloom::Tcbf* relay = nullptr;
  if (config_.relay_gated_delivery && !carried_[from].empty() &&
      election_->is_broker(from)) {
    relay = &interests_->relay(from, now);
  }
  for (const auto& [id, msg] : carried_[from]) {
    if (relay != nullptr && !relay->contains(key_hash(msg.key))) continue;
    if (!try_deliver(msg, falsely_injected_[from].contains(id), accepted)) {
      return;
    }
  }
}

void BsubProtocol::propagate_interest(trace::NodeId consumer,
                                      trace::NodeId broker, util::Time now,
                                      sim::Link& link) {
  const std::vector<std::string_view>& keys = interest_names(consumer);
  const bloom::Tcbf genuine = interests_->make_genuine(
      std::span<const util::HashPair>(interest_hashes(consumer)));
  // Fresh genuine filters have identical counters: uniform encoding.
  const auto enc = bloom::encode_tcbf(genuine,
                                      bloom::CounterEncoding::kUniform);
  if (!link.try_send(enc.size())) return;
  collector_->record_control_bytes(enc.size());
  interests_->absorb_genuine(broker, genuine, keys, now);
}

void BsubProtocol::broker_pickup(trace::NodeId producer, trace::NodeId broker,
                                 util::Time now, sim::Link& link) {
  // The broker ships its relay filter counter-less (section VI-C: "when a
  // broker requests messages from a source, it does not need to report the
  // counters").
  bloom::Tcbf& relay = interests_->relay(broker, now);
  const bloom::BloomFilter relay_bf = relay.to_bloom_filter();
  const auto enc = bloom::encode_bloom(relay_bf);
  if (!link.try_send(enc.size())) return;
  collector_->record_control_bytes(enc.size());

  // Instrumentation: probe the relay with keys guaranteed absent (outside
  // the workload universe) to sample the operative relay FPR over time.
  // Probe strings rotate so the estimate averages over the key space
  // instead of pinning 8 fixed bit patterns.
  char probe[24];
  for (int i = 0; i < 8; ++i) {
    std::snprintf(probe, sizeof(probe), "\x01probe:%llu",
                  static_cast<unsigned long long>(fpr_probes_));
    ++fpr_probes_;
    fpr_hits_ += relay_bf.contains(probe);
  }

  for (auto it = produced_[producer].begin();
       it != produced_[producer].end();) {
    OwnedMessage& owned = it->second;
    const workload::Message& msg = owned.msg;
    const std::string& key = key_name(msg.key);
    if (owned.copies_left == 0 || carried_[broker].contains(msg.id) ||
        carried_ever_[broker].contains(msg.id) ||
        !relay_bf.contains(key_hash(msg.key))) {
      ++it;
      continue;
    }
    if (!link.try_send(msg.size_bytes)) break;
    collector_->record_forwarding(msg);
    ++traffic_.pickups;
    carried_[broker].add(msg);
    carried_ever_[broker].insert(msg.id);
    // Ground truth: a pickup whose key the relay never genuinely absorbed is
    // a false injection (Bloom false positive of the relay filter).
    if (!interests_->genuinely_contains(broker, key, now)) {
      falsely_injected_[broker].insert(msg.id);
      ++false_injections_;
    }
    if (--owned.copies_left == 0) {
      // Copy budget exhausted: the producer forgets the message (V-D).
      it = produced_[producer].erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace bsub::core
