// Decentralized broker election (paper section V-B).
//
// Every non-broker node tracks, over a sliding time window W:
//   - the distinct peers it met (its "degree"),
//   - the distinct brokers it met,
//   - the degrees of the brokers it met (to estimate the broker average).
//
// On each contact, a non-broker node applies the election rules to its peer:
//   - if it met fewer than B_l brokers in W and the peer is a normal node,
//     it designates the peer a broker;
//   - if it met more than B_u brokers in W and the peer is a broker whose
//     degree is below the average broker degree it has observed, it demotes
//     the peer to a normal node (less "popular" nodes lose brokership, so
//     socially-active nodes end up doing the forwarding).
// Brokers themselves never run the rules.
//
// Per-node storage is cache-dense and pooled: one 56-byte NodeState holding
// a ring buffer of window meetings and a single open-addressing peer table
// (meeting + broker-meeting counts per peer), both allocated from a
// per-election BlockPool arena. Idle nodes cost just the NodeState; active
// windows cost ~16 bytes per meeting + ~16 bytes per live peer. The
// historical deque + two-unordered_map layout is retained behind
// Config::reference_state as the differential-test reference — both layouts
// run the identical prune/record/elect sequence (including the order of
// floating-point add/subtract on the broker-degree average), so they are
// bit-identical in every observable.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "trace/contact.h"
#include "util/pool.h"
#include "util/time.h"

namespace bsub::core {

class BrokerElection {
 public:
  struct Config {
    std::uint32_t lower = 3;              ///< B_l
    std::uint32_t upper = 5;              ///< B_u
    util::Time window = 5 * util::kHour;  ///< W
    /// Retains the deque + two-hash-map per-node layout (the
    /// differential-test reference); default is the pooled compact layout.
    bool reference_state = false;
  };

  BrokerElection(std::size_t node_count, Config config);

  bool is_broker(trace::NodeId node) const { return broker_[node] != 0; }
  void set_broker(trace::NodeId node, bool broker);

  /// Records the meeting in both nodes' windows and applies the election
  /// rules (non-broker sides only). Role flips take effect immediately.
  void on_contact(trace::NodeId a, trace::NodeId b, util::Time now);

  std::size_t broker_count() const;
  double broker_fraction() const;

  /// Distinct peers `node` met within the window ending at `now`. Pure
  /// read-only query: the window is filtered on read instead of pruning
  /// stored state, so metrics code needs no mutable access. Equals what
  /// prune-then-count reports (meeting times are non-decreasing per node —
  /// the engines execute each node's contacts in trace order).
  std::size_t degree(trace::NodeId node, util::Time now) const;

  /// Distinct brokers `node` met within the window ending at `now` (pure
  /// read-only query, same contract as degree()).
  std::size_t brokers_met(trace::NodeId node, util::Time now) const;

  /// Lifetime counters, for observability and tests.
  std::uint64_t promotions() const {
    return promotions_.load(std::memory_order_relaxed);
  }
  std::uint64_t demotions() const {
    return demotions_.load(std::memory_order_relaxed);
  }

  /// Bytes held for per-node window state (compact mode: pool slabs; the
  /// fixed NodeState array is reported in both modes).
  std::size_t state_bytes_reserved() const;

 private:
  /// Compact meeting record: 16 bytes. Bit 31 of `degree_flag` is the
  /// peer-was-broker flag; the low 31 bits are the peer's degree at meeting
  /// time (what the peer would report in the handshake).
  struct Meeting {
    util::Time time;
    trace::NodeId peer;
    std::uint32_t degree_flag;
  };
  static constexpr std::uint32_t kBrokerFlag = 0x80000000u;

  /// Open-addressing table entry (12 bytes): meetings still in window with
  /// this peer, and how many of those were broker meetings. meetings == 0
  /// marks an empty slot (erasure backward-shifts, no tombstones).
  struct PeerEntry {
    trace::NodeId peer;
    std::uint32_t meetings;
    std::uint32_t broker_meetings;
  };

  /// Always-resident per-node state: 56 bytes. Ring and table blocks come
  /// from the election's BlockPool and are recycled on growth.
  struct NodeState {
    Meeting* ring = nullptr;
    PeerEntry* table = nullptr;
    std::uint32_t ring_cap = 0;  ///< power of two (0 until first meeting)
    std::uint32_t ring_head = 0;
    std::uint32_t ring_size = 0;
    std::uint32_t table_cap = 0;  ///< power of two (0 until first meeting)
    std::uint32_t distinct_peers = 0;    ///< live table entries
    std::uint32_t distinct_brokers = 0;  ///< entries with broker_meetings > 0
    std::uint64_t broker_degree_n = 0;
    double broker_degree_sum = 0.0;
  };

  /// Reference layout (Config::reference_state): the historical
  /// one-deque-plus-two-maps per node.
  struct RefMeeting {
    util::Time time;
    trace::NodeId peer;
    bool peer_was_broker;
    std::size_t peer_degree;
  };
  struct RefNodeState {
    std::deque<RefMeeting> meetings;
    std::unordered_map<trace::NodeId, std::uint32_t> peer_counts;
    std::unordered_map<trace::NodeId, std::uint32_t> broker_counts;
    double broker_degree_sum = 0.0;
    std::uint64_t broker_degree_n = 0;
  };

  static std::uint32_t hash_id(trace::NodeId id) {
    std::uint32_t x = id * 0x9E3779B1u;
    x ^= x >> 16;
    return x;
  }

  Meeting& ring_at(NodeState& s, std::uint32_t i) const {
    return s.ring[(s.ring_head + i) & (s.ring_cap - 1)];
  }
  const Meeting& ring_at(const NodeState& s, std::uint32_t i) const {
    return s.ring[(s.ring_head + i) & (s.ring_cap - 1)];
  }

  void ring_push(NodeState& s, const Meeting& m);
  std::uint32_t find_index(const NodeState& s, trace::NodeId peer) const;
  PeerEntry& table_entry(NodeState& s, trace::NodeId peer);
  void grow_table(NodeState& s);
  void erase_entry(NodeState& s, std::uint32_t i);

  void prune(NodeState& s, util::Time now);
  void prune_ref(RefNodeState& s, util::Time now);
  void record(trace::NodeId self, trace::NodeId peer, util::Time now);
  void elect(trace::NodeId self, trace::NodeId peer, util::Time now);
  std::size_t distinct_peers_of(trace::NodeId node) const;

  Config config_;
  // One byte per node, NOT vector<bool>: the bit-packed specialization
  // would make writes to neighboring nodes race under the conflict-batch
  // executor even though the *logical* elements are disjoint. All reads and
  // writes during a run touch only the contact's two endpoints.
  std::vector<std::uint8_t> broker_;
  std::vector<NodeState> state_;         ///< compact mode (default)
  std::vector<RefNodeState> ref_state_;  ///< reference mode only
  /// Arena for ring/table blocks. Shared across nodes, so acquire/release
  /// lock internally; blocks in use are touched only by the worker that
  /// owns the node (batch barriers order cross-batch reuse).
  util::BlockPool pool_;
  // Commutative tallies, safe to bump from concurrent batch workers.
  std::atomic<std::uint64_t> promotions_{0};
  std::atomic<std::uint64_t> demotions_{0};
};

}  // namespace bsub::core
