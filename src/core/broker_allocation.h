// Decentralized broker election (paper section V-B).
//
// Every non-broker node tracks, over a sliding time window W:
//   - the distinct peers it met (its "degree"),
//   - the distinct brokers it met,
//   - the degrees of the brokers it met (to estimate the broker average).
//
// On each contact, a non-broker node applies the election rules to its peer:
//   - if it met fewer than B_l brokers in W and the peer is a normal node,
//     it designates the peer a broker;
//   - if it met more than B_u brokers in W and the peer is a broker whose
//     degree is below the average broker degree it has observed, it demotes
//     the peer to a normal node (less "popular" nodes lose brokership, so
//     socially-active nodes end up doing the forwarding).
// Brokers themselves never run the rules.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "trace/contact.h"
#include "util/time.h"

namespace bsub::core {

class BrokerElection {
 public:
  struct Config {
    std::uint32_t lower = 3;                     ///< B_l
    std::uint32_t upper = 5;                     ///< B_u
    util::Time window = 5 * util::kHour;         ///< W
  };

  BrokerElection(std::size_t node_count, Config config);

  bool is_broker(trace::NodeId node) const { return broker_[node] != 0; }
  void set_broker(trace::NodeId node, bool broker);

  /// Records the meeting in both nodes' windows and applies the election
  /// rules (non-broker sides only). Role flips take effect immediately.
  void on_contact(trace::NodeId a, trace::NodeId b, util::Time now);

  std::size_t broker_count() const;
  double broker_fraction() const;

  /// Distinct peers `node` met within the window ending at `now`.
  std::size_t degree(trace::NodeId node, util::Time now);

  /// Distinct brokers `node` met within the window ending at `now`.
  std::size_t brokers_met(trace::NodeId node, util::Time now);

  /// Lifetime counters, for observability and tests.
  std::uint64_t promotions() const {
    return promotions_.load(std::memory_order_relaxed);
  }
  std::uint64_t demotions() const {
    return demotions_.load(std::memory_order_relaxed);
  }

 private:
  struct Meeting {
    util::Time time;
    trace::NodeId peer;
    bool peer_was_broker;
    std::size_t peer_degree;  ///< peer's degree at meeting time
  };

  struct NodeState {
    std::deque<Meeting> meetings;
    // Window-distinct counting: peer -> number of meetings still in window.
    std::unordered_map<trace::NodeId, std::uint32_t> peer_counts;
    std::unordered_map<trace::NodeId, std::uint32_t> broker_counts;
    // Sum/count of broker degrees observed in window (average estimate).
    double broker_degree_sum = 0.0;
    std::uint64_t broker_degree_n = 0;
  };

  void prune(NodeState& s, util::Time now);
  void record(trace::NodeId self, trace::NodeId peer, util::Time now);
  void elect(trace::NodeId self, trace::NodeId peer, util::Time now);

  Config config_;
  // One byte per node, NOT vector<bool>: the bit-packed specialization
  // would make writes to neighboring nodes race under the conflict-batch
  // executor even though the *logical* elements are disjoint. All reads and
  // writes during a run touch only the contact's two endpoints.
  std::vector<std::uint8_t> broker_;
  std::vector<NodeState> state_;
  // Commutative tallies, safe to bump from concurrent batch workers.
  std::atomic<std::uint64_t> promotions_{0};
  std::atomic<std::uint64_t> demotions_{0};
};

}  // namespace bsub::core
