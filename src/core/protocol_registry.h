// B-SUB's entry in the protocol registry, plus the aggregate table every
// runtime surface (Simulator runs, TraceRunner, bsub_node, bsub_scale,
// bench_matrix) resolves protocol specs against.
//
// The spec <-> BsubConfig mapping is exact in both directions:
// `make(bsub_spec(cfg))` reconstructs `cfg` bit-for-bit (doubles are
// emitted with %.17g, so strtod round-trips them), which is what lets
// benches that compute a DF analytically hand the resulting config through
// the registry without perturbing results.
#pragma once

#include <string>

#include "core/config.h"
#include "sim/protocol_registry.h"

namespace bsub::core {

/// Adds B-SUB (alias "bsub") to `registry`.
///
/// Accepted parameters (all optional, defaults = BsubConfig{}):
///   m=<u32 >= 8>           filter bits            k=<u32 >= 1>   hashes
///   counter=<double > 0>   initial counter C      df=<double >= 0>
///   copies=<u32 >= 1>      broker copy limit      bl=<u32>  bu=<u32 >= bl>
///   window_ms=<u64 >= 1>   election window        merge=<m|a>
///   gated=<bool>           relay-gated delivery   adaptive=<bool>
///   df_window_ms=<u64 >= 1>
///   reference=<bool>       naive contact-path reference
///   reference_state=<bool> eager node-state reference
void register_bsub_protocol(sim::ProtocolRegistry& registry);

/// The full table: B-SUB + the routing baselines (PUSH, PULL, SPRAY).
sim::ProtocolRegistry make_protocol_registry();

/// Parses a B-SUB spec (`bsub` / `B-SUB` with the parameters above) into a
/// BsubConfig. Throws util::ConfigError if the spec names any other
/// protocol — callers that can only run B-SUB (the frame-driven engine and
/// the live node runtime) use this to fail loudly on e.g. `--protocol push`.
BsubConfig bsub_config_from_spec(const sim::ProtocolSpec& spec);
BsubConfig bsub_config_from_spec(std::string_view spec);

/// Canonical spec string reproducing `config` exactly through
/// bsub_config_from_spec / the registry factory. Defaulted fields are
/// omitted, so BsubConfig{} renders as just "B-SUB".
std::string bsub_spec(const BsubConfig& config);

}  // namespace bsub::core
