// Tunable parameters of B-SUB (paper sections V-VII).
#pragma once

#include <cstdint>

#include "bloom/bloom_params.h"
#include "bloom/tcbf.h"
#include "util/time.h"

namespace bsub::core {

/// How brokers combine each other's relay filters.
enum class BrokerMergeMode {
  kMMerge,  ///< paper's choice: max-merge, avoids bogus counters (Fig. 6)
  kAMerge,  ///< ablation: additive merge, exhibits the Fig. 6 feedback loop
};

struct BsubConfig {
  /// Filter geometry; paper uses 256 bits x 4 hashes.
  bloom::BloomParams filter_params{256, 4};

  /// Initial counter value C; paper uses 50.
  double initial_counter = 50.0;

  /// Decaying factor, counter units per minute. 0 disables decay (interests
  /// never leave relay filters). Typically computed from Eq. 5 via
  /// `compute_df`.
  double df_per_minute = 0.1;

  /// Maximum broker copies per message, the paper's C-limit of 3. Direct
  /// producer-to-consumer deliveries are not counted.
  std::uint32_t copy_limit = 3;

  /// Broker-election thresholds B_l / B_u (paper uses 3 and 5) and window.
  std::uint32_t broker_lower = 3;
  std::uint32_t broker_upper = 5;
  util::Time election_window = 5 * util::kHour;

  /// Relay-filter combination between brokers (M-merge per the paper; the
  /// A-merge setting exists for the bogus-counter ablation).
  BrokerMergeMode broker_merge = BrokerMergeMode::kMMerge;

  /// Reverse-path gating (paper section V-C): a broker offers a carried
  /// message to a consumer only while its own relay filter still contains
  /// the message's key — the "delivery tree" is found "with the guidance of
  /// the stored bloom filters in the brokers". Once the interest decays out
  /// of the relay, the route is gone and the copy goes stale. This is what
  /// couples the decaying factor to delivery ratio, delay, and forwardings
  /// (Fig. 9); disable to let brokers offer every buffered message.
  bool relay_gated_delivery = true;

  /// When true, each broker re-derives its own DF online from the number of
  /// distinct nodes it meets in the election window (the online estimation
  /// the paper sketches in section VII-B), instead of the global
  /// df_per_minute. The interest-removal horizon used is `df_window`.
  bool adaptive_df = false;
  util::Time df_window = 10 * util::kHour;

  /// Runs the contact loop through the retained naive reference path: full
  /// purge scans every contact, filters freshly encoded per exchange, deep
  /// message copies on every buffer admission. Observable protocol behavior
  /// (deliveries, delays, traffic bytes) is identical to the fast path —
  /// the differential test asserts exactly that. Off in production.
  bool reference_contact_path = false;

  /// Runs per-node protocol state through the retained eager layouts: a
  /// RelayState per node up front, the deque + two-hash-map election state,
  /// and a private filter cache per node. The default is the lazy/pooled
  /// layout (relay state materializes on first broker use, election windows
  /// live in pooled rings + open-addressing tables, interest-filter caches
  /// dedup by interest set). Observable behavior is identical — the
  /// node-state differential test asserts exactly that. Off in production.
  bool reference_node_state = false;
};

}  // namespace bsub::core
