#include "core/broker_allocation.h"

#include <algorithm>
#include <cassert>

namespace bsub::core {

BrokerElection::BrokerElection(std::size_t node_count, Config config)
    : config_(config), broker_(node_count, 0) {
  assert(config.window > 0);
  assert(config.lower <= config.upper);
  if (config_.reference_state) {
    ref_state_.resize(node_count);
  } else {
    state_.resize(node_count);
  }
}

void BrokerElection::set_broker(trace::NodeId node, bool broker) {
  broker_[node] = broker ? 1 : 0;
}

// --- compact-layout plumbing -----------------------------------------------

void BrokerElection::ring_push(NodeState& s, const Meeting& m) {
  if (s.ring_size == s.ring_cap) {
    const std::uint32_t new_cap = s.ring_cap == 0 ? 8 : s.ring_cap * 2;
    Meeting* fresh = pool_.acquire_array<Meeting>(new_cap);
    for (std::uint32_t i = 0; i < s.ring_size; ++i) fresh[i] = ring_at(s, i);
    pool_.release_array(s.ring, s.ring_cap);
    s.ring = fresh;
    s.ring_cap = new_cap;
    s.ring_head = 0;
  }
  ring_at(s, s.ring_size) = m;
  ++s.ring_size;
}

std::uint32_t BrokerElection::find_index(const NodeState& s,
                                         trace::NodeId peer) const {
  if (s.table_cap == 0) return util::kNoPoolHandle;
  const std::uint32_t mask = s.table_cap - 1;
  for (std::uint32_t i = hash_id(peer) & mask;; i = (i + 1) & mask) {
    const PeerEntry& e = s.table[i];
    if (e.meetings == 0) return util::kNoPoolHandle;
    if (e.peer == peer) return i;
  }
}

void BrokerElection::grow_table(NodeState& s) {
  const std::uint32_t new_cap = s.table_cap == 0 ? 8 : s.table_cap * 2;
  PeerEntry* fresh = pool_.acquire_array<PeerEntry>(new_cap);
  std::fill(fresh, fresh + new_cap, PeerEntry{0, 0, 0});
  const std::uint32_t mask = new_cap - 1;
  for (std::uint32_t i = 0; i < s.table_cap; ++i) {
    const PeerEntry& e = s.table[i];
    if (e.meetings == 0) continue;
    std::uint32_t j = hash_id(e.peer) & mask;
    while (fresh[j].meetings != 0) j = (j + 1) & mask;
    fresh[j] = e;
  }
  pool_.release_array(s.table, s.table_cap);
  s.table = fresh;
  s.table_cap = new_cap;
}

BrokerElection::PeerEntry& BrokerElection::table_entry(NodeState& s,
                                                       trace::NodeId peer) {
  // Keep the probe load under 3/4 counting the slot this call may claim.
  if (s.table_cap == 0 || (s.distinct_peers + 1) * 4 > s.table_cap * 3) {
    grow_table(s);
  }
  const std::uint32_t mask = s.table_cap - 1;
  for (std::uint32_t i = hash_id(peer) & mask;; i = (i + 1) & mask) {
    PeerEntry& e = s.table[i];
    if (e.meetings == 0) {
      e.peer = peer;
      e.broker_meetings = 0;
      return e;  // claimed; the caller's increment makes it live
    }
    if (e.peer == peer) return e;
  }
}

void BrokerElection::erase_entry(NodeState& s, std::uint32_t i) {
  // Backward-shift deletion: no tombstones, probes stay short.
  const std::uint32_t mask = s.table_cap - 1;
  std::uint32_t j = i;
  for (;;) {
    s.table[i].meetings = 0;
    for (;;) {
      j = (j + 1) & mask;
      if (s.table[j].meetings == 0) return;
      const std::uint32_t k = hash_id(s.table[j].peer) & mask;
      // Entry j may fill hole i only if its home slot k does not lie in the
      // (cyclic) open interval (i, j].
      if (i <= j ? (k <= i || k > j) : (k <= i && k > j)) break;
    }
    s.table[i] = s.table[j];
    i = j;
  }
}

void BrokerElection::prune(NodeState& s, util::Time now) {
  const util::Time cutoff = now - config_.window;
  while (s.ring_size != 0 && ring_at(s, 0).time < cutoff) {
    const Meeting m = ring_at(s, 0);
    const std::uint32_t idx = find_index(s, m.peer);
    assert(idx != util::kNoPoolHandle);
    PeerEntry& e = s.table[idx];
    if ((m.degree_flag & kBrokerFlag) != 0) {
      if (--e.broker_meetings == 0) --s.distinct_brokers;
      s.broker_degree_sum -=
          static_cast<double>(m.degree_flag & ~kBrokerFlag);
      --s.broker_degree_n;
    }
    if (--e.meetings == 0) {
      --s.distinct_peers;
      erase_entry(s, idx);
    }
    s.ring_head = (s.ring_head + 1) & (s.ring_cap - 1);
    --s.ring_size;
  }
}

// --- reference-layout plumbing ---------------------------------------------

void BrokerElection::prune_ref(RefNodeState& s, util::Time now) {
  const util::Time cutoff = now - config_.window;
  while (!s.meetings.empty() && s.meetings.front().time < cutoff) {
    const RefMeeting& m = s.meetings.front();
    auto pit = s.peer_counts.find(m.peer);
    if (pit != s.peer_counts.end() && --pit->second == 0) {
      s.peer_counts.erase(pit);
    }
    if (m.peer_was_broker) {
      auto bit = s.broker_counts.find(m.peer);
      if (bit != s.broker_counts.end() && --bit->second == 0) {
        s.broker_counts.erase(bit);
      }
      s.broker_degree_sum -= static_cast<double>(m.peer_degree);
      --s.broker_degree_n;
    }
    s.meetings.pop_front();
  }
}

// --- shared election logic -------------------------------------------------

std::size_t BrokerElection::distinct_peers_of(trace::NodeId node) const {
  return config_.reference_state ? ref_state_[node].peer_counts.size()
                                 : state_[node].distinct_peers;
}

void BrokerElection::record(trace::NodeId self, trace::NodeId peer,
                            util::Time now) {
  const bool peer_broker = broker_[peer] != 0;
  // The peer's degree is what the peer would report in the handshake:
  // its own distinct-peer count over its (already-updated) window.
  const std::size_t peer_degree = distinct_peers_of(peer);
  if (config_.reference_state) {
    RefNodeState& s = ref_state_[self];
    prune_ref(s, now);
    s.meetings.push_back(RefMeeting{now, peer, peer_broker, peer_degree});
    ++s.peer_counts[peer];
    if (peer_broker) {
      ++s.broker_counts[peer];
      s.broker_degree_sum += static_cast<double>(peer_degree);
      ++s.broker_degree_n;
    }
    return;
  }
  NodeState& s = state_[self];
  prune(s, now);
  assert(peer_degree < kBrokerFlag);
  Meeting m{now, peer,
            static_cast<std::uint32_t>(peer_degree) |
                (peer_broker ? kBrokerFlag : 0)};
  ring_push(s, m);
  PeerEntry& e = table_entry(s, peer);
  if (e.meetings++ == 0) ++s.distinct_peers;
  if (peer_broker) {
    if (e.broker_meetings++ == 0) ++s.distinct_brokers;
    s.broker_degree_sum += static_cast<double>(peer_degree);
    ++s.broker_degree_n;
  }
}

void BrokerElection::elect(trace::NodeId self, trace::NodeId peer,
                           util::Time now) {
  if (broker_[self]) return;  // brokers do not run the election rules
  std::size_t brokers_seen;
  double degree_sum;
  std::uint64_t degree_n;
  if (config_.reference_state) {
    RefNodeState& s = ref_state_[self];
    prune_ref(s, now);
    brokers_seen = s.broker_counts.size();
    degree_sum = s.broker_degree_sum;
    degree_n = s.broker_degree_n;
  } else {
    NodeState& s = state_[self];
    prune(s, now);
    brokers_seen = s.distinct_brokers;
    degree_sum = s.broker_degree_sum;
    degree_n = s.broker_degree_n;
  }
  if (brokers_seen < config_.lower && !broker_[peer]) {
    broker_[peer] = 1;
    promotions_.fetch_add(1, std::memory_order_relaxed);
  } else if (brokers_seen > config_.upper && broker_[peer]) {
    // Demote only below-average brokers, so popular nodes keep the role.
    if (degree_n > 0) {
      const double avg = degree_sum / static_cast<double>(degree_n);
      const double peer_degree =
          static_cast<double>(distinct_peers_of(peer));
      if (peer_degree < avg) {
        broker_[peer] = 0;
        demotions_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
}

void BrokerElection::on_contact(trace::NodeId a, trace::NodeId b,
                                util::Time now) {
  assert(a != b);
  // Record both sides first (roles as of contact start), then run the rules.
  record(a, b, now);
  record(b, a, now);
  elect(a, b, now);
  elect(b, a, now);
}

std::size_t BrokerElection::broker_count() const {
  std::size_t n = 0;
  for (std::uint8_t b : broker_) n += b != 0;
  return n;
}

double BrokerElection::broker_fraction() const {
  return broker_.empty() ? 0.0
                         : static_cast<double>(broker_count()) /
                               static_cast<double>(broker_.size());
}

// --- read-only window queries ----------------------------------------------
//
// Both queries skip the stale *prefix* of the meeting sequence (exactly the
// entries prune would pop) and count distinct peers over the remainder, so
// they return precisely what the historical prune-then-count reported —
// without needing mutable access.

namespace {
std::size_t count_distinct(std::vector<trace::NodeId>& scratch) {
  std::sort(scratch.begin(), scratch.end());
  return static_cast<std::size_t>(
      std::unique(scratch.begin(), scratch.end()) - scratch.begin());
}
}  // namespace

std::size_t BrokerElection::degree(trace::NodeId node, util::Time now) const {
  const util::Time cutoff = now - config_.window;
  thread_local std::vector<trace::NodeId> scratch;
  scratch.clear();
  if (config_.reference_state) {
    const RefNodeState& s = ref_state_[node];
    std::size_t i = 0;
    while (i < s.meetings.size() && s.meetings[i].time < cutoff) ++i;
    for (; i < s.meetings.size(); ++i) scratch.push_back(s.meetings[i].peer);
  } else {
    const NodeState& s = state_[node];
    std::uint32_t i = 0;
    while (i < s.ring_size && ring_at(s, i).time < cutoff) ++i;
    for (; i < s.ring_size; ++i) scratch.push_back(ring_at(s, i).peer);
  }
  return count_distinct(scratch);
}

std::size_t BrokerElection::brokers_met(trace::NodeId node,
                                        util::Time now) const {
  const util::Time cutoff = now - config_.window;
  thread_local std::vector<trace::NodeId> scratch;
  scratch.clear();
  if (config_.reference_state) {
    const RefNodeState& s = ref_state_[node];
    std::size_t i = 0;
    while (i < s.meetings.size() && s.meetings[i].time < cutoff) ++i;
    for (; i < s.meetings.size(); ++i) {
      if (s.meetings[i].peer_was_broker) scratch.push_back(s.meetings[i].peer);
    }
  } else {
    const NodeState& s = state_[node];
    std::uint32_t i = 0;
    while (i < s.ring_size && ring_at(s, i).time < cutoff) ++i;
    for (; i < s.ring_size; ++i) {
      const Meeting& m = ring_at(s, i);
      if ((m.degree_flag & kBrokerFlag) != 0) scratch.push_back(m.peer);
    }
  }
  return count_distinct(scratch);
}

std::size_t BrokerElection::state_bytes_reserved() const {
  const std::size_t fixed = config_.reference_state
                                ? ref_state_.capacity() * sizeof(RefNodeState)
                                : state_.capacity() * sizeof(NodeState);
  return fixed + pool_.bytes_reserved() + broker_.capacity();
}

}  // namespace bsub::core
