#include "core/broker_allocation.h"

#include <cassert>

namespace bsub::core {

BrokerElection::BrokerElection(std::size_t node_count, Config config)
    : config_(config), broker_(node_count, 0), state_(node_count) {
  assert(config.window > 0);
  assert(config.lower <= config.upper);
}

void BrokerElection::set_broker(trace::NodeId node, bool broker) {
  broker_[node] = broker ? 1 : 0;
}

void BrokerElection::prune(NodeState& s, util::Time now) {
  const util::Time cutoff = now - config_.window;
  while (!s.meetings.empty() && s.meetings.front().time < cutoff) {
    const Meeting& m = s.meetings.front();
    auto pit = s.peer_counts.find(m.peer);
    if (pit != s.peer_counts.end() && --pit->second == 0) {
      s.peer_counts.erase(pit);
    }
    if (m.peer_was_broker) {
      auto bit = s.broker_counts.find(m.peer);
      if (bit != s.broker_counts.end() && --bit->second == 0) {
        s.broker_counts.erase(bit);
      }
      s.broker_degree_sum -= static_cast<double>(m.peer_degree);
      --s.broker_degree_n;
    }
    s.meetings.pop_front();
  }
}

void BrokerElection::record(trace::NodeId self, trace::NodeId peer,
                            util::Time now) {
  NodeState& s = state_[self];
  prune(s, now);
  Meeting m;
  m.time = now;
  m.peer = peer;
  m.peer_was_broker = broker_[peer] != 0;
  // The peer's degree is what the peer would report in the handshake:
  // its own distinct-peer count over its (already-updated) window.
  m.peer_degree = state_[peer].peer_counts.size();
  s.meetings.push_back(m);
  ++s.peer_counts[peer];
  if (m.peer_was_broker) {
    ++s.broker_counts[peer];
    s.broker_degree_sum += static_cast<double>(m.peer_degree);
    ++s.broker_degree_n;
  }
}

void BrokerElection::elect(trace::NodeId self, trace::NodeId peer,
                           util::Time now) {
  if (broker_[self]) return;  // brokers do not run the election rules
  NodeState& s = state_[self];
  prune(s, now);
  const std::size_t brokers_seen = s.broker_counts.size();
  if (brokers_seen < config_.lower && !broker_[peer]) {
    broker_[peer] = 1;
    promotions_.fetch_add(1, std::memory_order_relaxed);
  } else if (brokers_seen > config_.upper && broker_[peer]) {
    // Demote only below-average brokers, so popular nodes keep the role.
    if (s.broker_degree_n > 0) {
      const double avg =
          s.broker_degree_sum / static_cast<double>(s.broker_degree_n);
      const double peer_degree =
          static_cast<double>(state_[peer].peer_counts.size());
      if (peer_degree < avg) {
        broker_[peer] = 0;
        demotions_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
}

void BrokerElection::on_contact(trace::NodeId a, trace::NodeId b,
                                util::Time now) {
  assert(a != b);
  // Record both sides first (roles as of contact start), then run the rules.
  record(a, b, now);
  record(b, a, now);
  elect(a, b, now);
  elect(b, a, now);
}

std::size_t BrokerElection::broker_count() const {
  std::size_t n = 0;
  for (std::uint8_t b : broker_) n += b != 0;
  return n;
}

double BrokerElection::broker_fraction() const {
  return broker_.empty() ? 0.0
                         : static_cast<double>(broker_count()) /
                               static_cast<double>(broker_.size());
}

std::size_t BrokerElection::degree(trace::NodeId node, util::Time now) {
  NodeState& s = state_[node];
  prune(s, now);
  return s.peer_counts.size();
}

std::size_t BrokerElection::brokers_met(trace::NodeId node, util::Time now) {
  NodeState& s = state_[node];
  prune(s, now);
  return s.broker_counts.size();
}

}  // namespace bsub::core
