// Conflict-batch scheduling for parallel contact execution.
//
// The structural fact the whole parallel engine rests on (PAPER §VII's
// evaluation model): an event — a contact {a, b} or a message creation at
// its producer — mutates only the state of its endpoint node(s). Two events
// with disjoint endpoint sets therefore commute exactly, while two events
// sharing a node must run in trace order.
//
// The scheduler takes a window of events (already in trace order) and
// greedily partitions it into *conflict batches*: event e lands in batch
// 1 + max(batch of the previous event touching a, batch of the previous
// event touching b). By construction:
//   - every batch is node-disjoint (two events in one batch would otherwise
//     have forced each other into a later batch), so a batch's events can
//     run concurrently with no synchronization;
//   - any two conflicting events land in strictly increasing batches, in
//     trace order — executing batches sequentially with a barrier between
//     them preserves each node's exact serial event subsequence.
// This is greedy path coloring on the interval graph of endpoint reuse; the
// batch count equals the longest chain of conflicting events in the window.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "trace/contact.h"

namespace bsub::sim {

/// Endpoint set of one schedulable event. Single-node events (message
/// creations) use b == kNoNode.
struct EventNodes {
  static constexpr trace::NodeId kNoNode = 0xffffffffu;
  trace::NodeId a = kNoNode;
  trace::NodeId b = kNoNode;
};

/// A window's events grouped into node-disjoint batches. Batch k holds the
/// event indices order[offsets[k]] .. order[offsets[k+1]-1], each index
/// referring to the input span. Within a batch, indices appear in input
/// (trace) order — irrelevant for correctness (the batch is node-disjoint)
/// but it keeps chunked execution cache-friendly.
struct ConflictSchedule {
  std::vector<std::uint32_t> order;
  std::vector<std::uint32_t> offsets;  ///< size = batch_count() + 1

  std::size_t batch_count() const {
    return offsets.empty() ? 0 : offsets.size() - 1;
  }
  std::span<const std::uint32_t> batch(std::size_t k) const {
    return {order.data() + offsets[k],
            static_cast<std::size_t>(offsets[k + 1] - offsets[k])};
  }
};

/// Reusable scheduler: the per-node "last batch" table persists across
/// windows (reset between runs) so repeated scheduling does no allocation
/// in steady state.
class ConflictScheduler {
 public:
  explicit ConflictScheduler(std::size_t node_count);

  /// Partitions `events` (in trace order) into conflict batches. The
  /// result's indices refer to positions within `events`.
  ConflictSchedule schedule(std::span<const EventNodes> events);

  /// Same, reusing `out`'s storage to avoid reallocation across windows.
  void schedule(std::span<const EventNodes> events, ConflictSchedule& out);

 private:
  /// last_batch_[n] - stamp_base_ = batch of the latest event touching n in
  /// the current window; values below stamp_base_ mean "untouched", which
  /// lets reset between windows be O(1) instead of O(node_count).
  std::vector<std::uint64_t> last_batch_;
  std::uint64_t stamp_base_ = 1;
  std::vector<std::uint32_t> batch_of_;  ///< scratch: batch per event
  std::vector<std::uint32_t> counts_;    ///< scratch: events per batch
  std::vector<std::uint32_t> cursor_;    ///< scratch: fill cursor per batch
};

}  // namespace bsub::sim
