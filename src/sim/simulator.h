// Trace-driven DTN simulator (paper section VII's evaluation substrate).
//
// Replays a contact trace against a materialized workload: message-creation
// events and contact events are merged in time order and dispatched to the
// protocol under test. Deterministic: same trace + workload + protocol state
// gives identical results.
#pragma once

#include "metrics/collector.h"
#include "sim/link.h"
#include "sim/protocol.h"
#include "trace/trace.h"
#include "workload/workload.h"

namespace bsub::sim {

struct SimulatorConfig {
  double bandwidth_bytes_per_second = kDefaultBandwidthBytesPerSecond;
};

class Simulator {
 public:
  explicit Simulator(SimulatorConfig config = {}) : config_(config) {}

  /// Runs `protocol` over the scenario and returns the collected metrics.
  metrics::RunResults run(const trace::ContactTrace& trace,
                          const workload::Workload& workload,
                          Protocol& protocol);

 private:
  SimulatorConfig config_;
};

}  // namespace bsub::sim
