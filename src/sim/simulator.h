// Trace-driven DTN simulator (paper section VII's evaluation substrate).
//
// Replays a contact trace against a materialized workload: message-creation
// events and contact events are merged in time order and dispatched to the
// protocol under test. Deterministic: same trace + workload + protocol state
// gives identical results — including across thread counts. When the
// protocol opts in via Protocol::parallel_contacts_safe(), the merged event
// stream is executed by the windowed conflict-batch executor
// (parallel_executor.h), which preserves every node's serial event order;
// BSUB_THREADS=1 and N-thread runs produce byte-identical RunResults.
#pragma once

#include "metrics/collector.h"
#include "sim/link.h"
#include "sim/parallel_executor.h"
#include "sim/protocol.h"
#include "trace/trace.h"
#include "workload/workload.h"

namespace bsub::sim {

struct SimulatorConfig {
  double bandwidth_bytes_per_second = kDefaultBandwidthBytesPerSecond;
  /// Worker threads for the contact loop: 0 = util::default_thread_count()
  /// (honors BSUB_THREADS), 1 = plain serial loop. Only takes effect when
  /// the protocol reports parallel_contacts_safe().
  std::size_t threads = 0;
  /// Events per conflict-scheduling window (see ParallelRunConfig).
  std::size_t window_events = 4096;
  /// Inline-vs-fanout threshold per batch (see ParallelRunConfig).
  std::size_t min_batch_fanout = 4;
};

class Simulator {
 public:
  explicit Simulator(SimulatorConfig config = {}) : config_(config) {}

  /// Runs `protocol` over the scenario and returns the collected metrics.
  metrics::RunResults run(const trace::ContactTrace& trace,
                          const workload::Workload& workload,
                          Protocol& protocol);

  /// Execution-shape stats of the most recent run() (windows, batches,
  /// batch-size histogram). Serial runs report threads_used == 1 and no
  /// batches.
  const ParallelRunStats& last_run_stats() const { return last_run_stats_; }

 private:
  SimulatorConfig config_;
  ParallelRunStats last_run_stats_;
};

}  // namespace bsub::sim
