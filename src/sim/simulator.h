// Trace-driven DTN simulator (paper section VII's evaluation substrate).
//
// Replays a contact scenario against a materialized workload:
// message-creation events and contact events are merged in time order and
// dispatched to the protocol under test. Scenarios arrive either as a
// pull-based trace::ContactStream — the city-scale path, which never holds
// more than one scheduling window of events in memory — or as a
// materialized ContactTrace (a thin stream adapter over it).
//
// Deterministic: same scenario + workload + protocol state gives identical
// results — including across thread counts and across streamed vs.
// materialized input (the stream ordering contract makes both spell out the
// same event sequence). When the protocol opts in via
// Protocol::parallel_contacts_safe(), events are executed by the windowed
// conflict-batch executor (parallel_executor.h), which preserves every
// node's serial event order; BSUB_THREADS=1 and N-thread runs produce
// byte-identical RunResults.
#pragma once

#include "metrics/collector.h"
#include "sim/link.h"
#include "sim/parallel_executor.h"
#include "sim/protocol.h"
#include "sim/protocol_registry.h"
#include "trace/contact_stream.h"
#include "trace/trace.h"
#include "workload/workload.h"

namespace bsub::sim {

struct SimulatorConfig {
  double bandwidth_bytes_per_second = kDefaultBandwidthBytesPerSecond;
  /// Worker threads for the contact loop: 0 = util::default_thread_count()
  /// (honors BSUB_THREADS), 1 = plain serial loop. Only takes effect when
  /// the protocol reports parallel_contacts_safe().
  std::size_t threads = 0;
  /// Events per conflict-scheduling window (see ParallelRunConfig).
  std::size_t window_events = 4096;
  /// Inline-vs-fanout threshold per batch (see ParallelRunConfig).
  std::size_t min_batch_fanout = 4;
};

class Simulator {
 public:
  explicit Simulator(SimulatorConfig config = {}) : config_(config) {}

  /// Runs `protocol` over a streamed scenario and returns the collected
  /// metrics. Peak memory is O(node state + one scheduling window); the
  /// contact count never materializes. Consumes the stream from its
  /// current position (callers reuse a stream by reset()).
  metrics::RunResults run(trace::ContactStream& contacts,
                          const workload::Workload& workload,
                          Protocol& protocol);

  /// Materialized-scenario convenience: adapts the trace to a stream.
  metrics::RunResults run(const trace::ContactTrace& trace,
                          const workload::Workload& workload,
                          Protocol& protocol) {
    trace::MaterializedStream stream(trace);
    return run(stream, workload, protocol);
  }

  /// Spec-driven runs: resolves `protocol_spec` against `registry` (throws
  /// util::ConfigError for an unknown name or bad parameter) and runs the
  /// freshly constructed protocol. The registry is a parameter — not a
  /// global — so the simulator stays a pure mechanism; callers use
  /// core::make_protocol_registry() for the full table.
  metrics::RunResults run(trace::ContactStream& contacts,
                          const workload::Workload& workload,
                          const ProtocolRegistry& registry,
                          std::string_view protocol_spec) {
    std::unique_ptr<Protocol> protocol = registry.make(protocol_spec);
    return run(contacts, workload, *protocol);
  }
  metrics::RunResults run(const trace::ContactTrace& trace,
                          const workload::Workload& workload,
                          const ProtocolRegistry& registry,
                          std::string_view protocol_spec) {
    trace::MaterializedStream stream(trace);
    return run(stream, workload, registry, protocol_spec);
  }

  /// Execution-shape stats of the most recent run() (windows, batches,
  /// batch-size histogram). Serial runs report threads_used == 1 and no
  /// batches.
  const ParallelRunStats& last_run_stats() const { return last_run_stats_; }

 private:
  SimulatorConfig config_;
  ParallelRunStats last_run_stats_;
};

}  // namespace bsub::sim
